// Debit-Credit allocation study: sweeps the arrival rate for several
// database/log allocation schemes (a compact version of the paper's Figs
// 4.1-4.3), including the FORCE update strategy with a write buffer —
// demonstrating that FORCE becomes affordable once commit writes go to
// non-volatile semiconductor memory.
package main

import (
	"flag"
	"fmt"
	"log"

	tpsim "repro"
)

func main() {
	force := flag.Bool("force", false, "use the FORCE update strategy")
	buffer := flag.Int("buffer", 2000, "main memory buffer size (pages)")
	flag.Parse()

	rates := []float64{50, 150, 300, 500}
	fmt.Printf("Debit-Credit, %s, MM buffer %d pages\n\n",
		strategy(*force), *buffer)
	fmt.Printf("%-22s", "mean response [ms]")
	for _, r := range rates {
		fmt.Printf("%9.0f", r)
	}
	fmt.Println(" TPS")

	for _, scheme := range []string{"disk", "disk+write-buffer", "ssd", "nvem"} {
		fmt.Printf("%-22s", scheme)
		for _, rate := range rates {
			cfg, err := build(scheme, rate, *force, *buffer)
			if err != nil {
				log.Fatal(err)
			}
			res, err := tpsim.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			mark := ""
			if res.Saturated {
				mark = "*"
			}
			fmt.Printf("%8.2f%1s", res.RespMean, mark)
		}
		fmt.Println()
	}
	fmt.Println("\n(* = offered load exceeded the configuration's capacity)")
}

func strategy(force bool) string {
	if force {
		return "FORCE"
	}
	return "NOFORCE"
}

// build assembles one allocation scheme. All schemes share the Table 4.1 CM
// parameters and the Debit-Credit workload.
func build(scheme string, rate float64, force bool, bufferSize int) (tpsim.Config, error) {
	gen, err := tpsim.NewDebitCredit(tpsim.DefaultDebitCreditConfig(rate))
	if err != nil {
		return tpsim.Config{}, err
	}
	cfg := tpsim.Defaults()
	cfg.Partitions = gen.Partitions()
	cfg.Generator = gen
	cfg.CCModes = []tpsim.Granularity{tpsim.PageLevel, tpsim.PageLevel, tpsim.NoCC}
	cfg.WarmupMS = 8_000
	cfg.MeasureMS = 15_000

	db := tpsim.DiskUnitConfig{
		Name: "db", Type: tpsim.Regular, NumControllers: 12,
		ContrDelay: tpsim.DefaultContrDelay, TransDelay: tpsim.DefaultTransDelay,
		NumDisks: 96, DiskDelay: tpsim.DefaultDBDiskDelay,
	}
	logU := tpsim.DiskUnitConfig{
		Name: "log", Type: tpsim.Regular, NumControllers: 2,
		ContrDelay: tpsim.DefaultContrDelay, TransDelay: tpsim.DefaultTransDelay,
		NumDisks: 8, DiskDelay: tpsim.DefaultLogDiskDelay,
	}
	part := tpsim.PartitionAlloc{DiskUnit: 0}
	logAlloc := tpsim.LogAlloc{DiskUnit: 1}

	switch scheme {
	case "disk":
	case "disk+write-buffer":
		// Non-volatile controller caches absorb all page and log writes.
		db.Type = tpsim.NVCache
		db.CacheSize = 500
		db.WriteBufferOnly = true
		logU.Type = tpsim.NVCache
		logU.CacheSize = 500
		logU.WriteBufferOnly = true
	case "ssd":
		db.Type = tpsim.SSD
		db.NumDisks = 0
		db.DiskDelay = 0
		logU.Type = tpsim.SSD
		logU.NumDisks = 0
		logU.DiskDelay = 0
	case "nvem":
		part = tpsim.PartitionAlloc{NVEMResident: true}
		logAlloc = tpsim.LogAlloc{NVEMResident: true}
	default:
		return tpsim.Config{}, fmt.Errorf("unknown scheme %q", scheme)
	}

	cfg.DiskUnits = []tpsim.DiskUnitConfig{db, logU}
	cfg.Buffer = tpsim.BufferConfig{
		BufferSize: bufferSize,
		Force:      force,
		Logging:    true,
		Partitions: []tpsim.PartitionAlloc{part, part, part},
		Log:        logAlloc,
	}
	return cfg, nil
}
