// Quickstart: simulate the Debit-Credit benchmark on a disk-based storage
// configuration and on non-volatile extended memory (NVEM), and compare
// response times — the paper's headline contrast in two dozen lines of
// configuration.
package main

import (
	"fmt"
	"log"

	tpsim "repro"
)

func main() {
	const rate = 200 // transactions per second

	// The workload: Debit-Credit with the paper's Table 4.1 settings —
	// 500 branches, 50M accounts, BRANCH/TELLER clustering (three page
	// accesses per transaction), 100% updates.
	gen, err := tpsim.NewDebitCredit(tpsim.DefaultDebitCreditConfig(rate))
	if err != nil {
		log.Fatal(err)
	}

	base := tpsim.Defaults() // CM parameters of Table 4.1
	base.Partitions = gen.Partitions()
	base.Generator = gen
	// Page-level locking for ACCOUNT and BRANCH/TELLER; HISTORY appends are
	// synchronized by latches (no locks), as in the paper.
	base.CCModes = []tpsim.Granularity{tpsim.PageLevel, tpsim.PageLevel, tpsim.NoCC}
	base.WarmupMS = 10_000
	base.MeasureMS = 20_000

	// Configuration 1: database on regular disks, log on log disks.
	disk := base
	disk.DiskUnits = []tpsim.DiskUnitConfig{
		{Name: "db", Type: tpsim.Regular, NumControllers: 8,
			ContrDelay: tpsim.DefaultContrDelay, TransDelay: tpsim.DefaultTransDelay,
			NumDisks: 64, DiskDelay: tpsim.DefaultDBDiskDelay},
		{Name: "log", Type: tpsim.Regular, NumControllers: 2,
			ContrDelay: tpsim.DefaultContrDelay, TransDelay: tpsim.DefaultTransDelay,
			NumDisks: 8, DiskDelay: tpsim.DefaultLogDiskDelay},
	}
	disk.Buffer = tpsim.BufferConfig{
		BufferSize: 2000,
		Logging:    true,
		Partitions: []tpsim.PartitionAlloc{{DiskUnit: 0}, {DiskUnit: 0}, {DiskUnit: 0}},
		Log:        tpsim.LogAlloc{DiskUnit: 1},
	}

	// Configuration 2: database and log resident in NVEM.
	nvem := base
	nvem.Buffer = tpsim.BufferConfig{
		BufferSize: 2000,
		Logging:    true,
		Partitions: []tpsim.PartitionAlloc{
			{NVEMResident: true}, {NVEMResident: true}, {NVEMResident: true},
		},
		Log: tpsim.LogAlloc{NVEMResident: true},
	}

	for _, run := range []struct {
		name string
		cfg  tpsim.Config
	}{
		{"disk-based", disk},
		{"NVEM-resident", nvem},
	} {
		res, err := tpsim.Run(run.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %s\n", run.name, res)
	}
	fmt.Println("\nKeeping log and database in non-volatile semiconductor memory")
	fmt.Println("eliminates all synchronous disk I/O — response time becomes almost")
	fmt.Println("purely CPU queueing (section 4.3 of the paper).")
}
