// Trace-driven caching study: replays the synthetic real-life trace
// (matching the aggregate statistics of the paper's production trace:
// ~17.6k transactions, 12 types, ~1M accesses, ~66k distinct pages, 1.6%
// writes) and compares second-level caching options — the paper's section
// 4.6 in miniature. It also demonstrates writing/reading the trace format.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	tpsim "repro"
)

func main() {
	tr := tpsim.GenerateRealLifeTrace(42)
	st := tr.ComputeStats()
	fmt.Printf("trace: %d txs, %d types, %d accesses (%.1f%% writes), %d distinct pages in %d files\n\n",
		st.NumTxs, st.NumTypes, st.NumAccesses, 100*st.WriteFrac(), st.DistinctPages, tr.NumFiles())

	// Round-trip through the on-disk format, as a real deployment would.
	dir, err := os.MkdirTemp("", "tpsim-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "reallife.trace")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tpsim.WriteTrace(f, tr); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	tr, err = tpsim.ReadTrace(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}

	const rate = 25 // TPS
	for _, scheme := range []string{"mm-only", "volatile-disk-cache", "nvem-cache"} {
		res, err := run(tr, scheme, rate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s resp=%7.1f ms  MM hit=%5.1f%%  NVEM hit=%4.1f%%  disk-cache read hits=%d\n",
			scheme, res.RespMean, res.MMHitPct, res.NVEMAddHitPct, res.Units[0].Stats.ReadHits)
	}
	fmt.Println("\nNVEM caching avoids the double caching that limits controller disk")
	fmt.Println("caches: all pages replaced from main memory stay available one level")
	fmt.Println("down (section 4.6 of the paper).")
}

func run(tr *tpsim.Trace, scheme string, rate float64) (*tpsim.Result, error) {
	src, err := tpsim.NewTraceSource(tr, rate)
	if err != nil {
		return nil, err
	}
	cfg := tpsim.Defaults()
	cfg.Partitions = src.Partitions()
	cfg.Generator = src
	cfg.CCModes = make([]tpsim.Granularity, len(cfg.Partitions))
	for i := range cfg.CCModes {
		cfg.CCModes[i] = tpsim.PageLevel
	}
	cfg.WarmupMS = 10_000
	cfg.MeasureMS = 20_000

	db := tpsim.DiskUnitConfig{
		Name: "db", Type: tpsim.Regular, NumControllers: 12,
		ContrDelay: tpsim.DefaultContrDelay, TransDelay: tpsim.DefaultTransDelay,
		NumDisks: 96, DiskDelay: tpsim.DefaultDBDiskDelay,
	}
	part := tpsim.PartitionAlloc{DiskUnit: 0}
	buf := tpsim.BufferConfig{BufferSize: 1000, Logging: true}

	switch scheme {
	case "mm-only":
	case "volatile-disk-cache":
		db.Type = tpsim.VolatileCache
		db.CacheSize = 2000
	case "nvem-cache":
		part.NVEMCache = true
		part.NVEMCacheMode = tpsim.MigrateAll
		buf.NVEMCacheSize = 2000
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme)
	}
	for range cfg.Partitions {
		buf.Partitions = append(buf.Partitions, part)
	}

	logU := tpsim.DiskUnitConfig{
		Name: "log", Type: tpsim.Regular, NumControllers: 2,
		ContrDelay: tpsim.DefaultContrDelay, TransDelay: tpsim.DefaultTransDelay,
		NumDisks: 4, DiskDelay: tpsim.DefaultLogDiskDelay,
	}
	buf.Log = tpsim.LogAlloc{DiskUnit: 1}
	cfg.DiskUnits = []tpsim.DiskUnitConfig{db, logU}
	cfg.Buffer = buf
	return tpsim.Run(cfg)
}
