// Lock contention study: the paper's section 4.7 scenario — one update
// transaction type (ten object accesses, 100% writes), 80% of accesses to a
// small high-contention partition — run under page- and object-level
// locking for disk-based and NVEM-resident allocations. Shows lock
// thrashing under page locks on disks, and how eliminating I/O delays makes
// coarse locking viable again.
package main

import (
	"fmt"
	"log"

	tpsim "repro"
)

func main() {
	rates := []float64{50, 150, 300}
	fmt.Println("Synthetic contention workload (10 writes/tx, 80% to 1000 hot pages)")
	fmt.Printf("\n%-28s", "throughput [TPS] (resp ms)")
	for _, r := range rates {
		fmt.Printf("%18.0f", r)
	}
	fmt.Println(" offered")

	for _, v := range []struct {
		label string
		nvem  bool
		gran  tpsim.Granularity
	}{
		{"disk + page locks", false, tpsim.PageLevel},
		{"disk + object locks", false, tpsim.ObjectLevel},
		{"nvem + page locks", true, tpsim.PageLevel},
	} {
		fmt.Printf("%-28s", v.label)
		for _, rate := range rates {
			res, err := run(rate, v.nvem, v.gran)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %6.0f (%8.2f)", res.Throughput, res.RespMean)
		}
		fmt.Println()
	}
	fmt.Println("\nPage locking on disks thrashes well below the 800-TPS CPU limit;")
	fmt.Println("object locking or NVEM residence removes the bottleneck (Fig 4.8).")
}

func run(rate float64, nvemResident bool, gran tpsim.Granularity) (*tpsim.Result, error) {
	model := &tpsim.Model{
		Partitions: []tpsim.Partition{
			{Name: "hot", NumObjects: 10_000, BlockFactor: 10},
			{Name: "cold", NumObjects: 100_000, BlockFactor: 10},
		},
		TxTypes: []tpsim.TxType{{
			Name: "update", ArrivalRate: rate, TxSize: 10,
			WriteProb: 1.0, VarSize: true, RefRow: []float64{0.8, 0.2},
		}},
	}
	gen, err := tpsim.NewSynthetic(model)
	if err != nil {
		return nil, err
	}
	cfg := tpsim.Defaults()
	cfg.Partitions = model.Partitions
	cfg.Generator = gen
	cfg.CCModes = []tpsim.Granularity{gran, gran}
	// Keep the paper's 250k-instruction pathlength despite ten references.
	cfg.InstrOR = (250_000 - cfg.InstrBOT - cfg.InstrEOT) / 10
	cfg.WarmupMS = 6_000
	cfg.MeasureMS = 12_000

	cfg.DiskUnits = []tpsim.DiskUnitConfig{
		{Name: "db", Type: tpsim.Regular, NumControllers: 12,
			ContrDelay: tpsim.DefaultContrDelay, TransDelay: tpsim.DefaultTransDelay,
			NumDisks: 96, DiskDelay: tpsim.DefaultDBDiskDelay},
		{Name: "log", Type: tpsim.Regular, NumControllers: 2,
			ContrDelay: tpsim.DefaultContrDelay, TransDelay: tpsim.DefaultTransDelay,
			NumDisks: 8, DiskDelay: tpsim.DefaultLogDiskDelay},
	}
	cfg.Buffer = tpsim.BufferConfig{BufferSize: 2000, Logging: true}
	if nvemResident {
		cfg.Buffer.Partitions = []tpsim.PartitionAlloc{{NVEMResident: true}, {NVEMResident: true}}
		cfg.Buffer.Log = tpsim.LogAlloc{NVEMResident: true}
	} else {
		cfg.Buffer.Partitions = []tpsim.PartitionAlloc{{DiskUnit: 0}, {DiskUnit: 0}}
		cfg.Buffer.Log = tpsim.LogAlloc{DiskUnit: 1}
	}
	return tpsim.Run(cfg)
}
