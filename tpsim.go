// Package tpsim is a from-scratch Go implementation of TPSIM, the
// transaction-processing simulation system of Erhard Rahm's "Performance
// Evaluation of Extended Storage Architectures for Transaction Processing"
// (TR 216/91, University of Kaiserslautern, 1991 / SIGMOD 1992).
//
// TPSIM simulates an OLTP system over an extended storage hierarchy — main
// memory, non-volatile extended memory (NVEM), disk caches, solid-state
// disks (SSD) and magnetic disks — with three workload paths (a general
// synthetic model, the Debit-Credit benchmark, and database traces), strict
// two-phase locking with deadlock detection, and a buffer manager supporting
// FORCE/NOFORCE propagation, an NVEM second-level database cache, and NVEM /
// disk-cache write buffers.
//
// This package is the public facade: it re-exports the configuration and
// result types of the internal engine and the workload builders. A minimal
// run looks like:
//
//	gen, _ := tpsim.NewDebitCredit(tpsim.DefaultDebitCreditConfig(500))
//	cfg := tpsim.Defaults()
//	cfg.Partitions = gen.Partitions()
//	cfg.Generator = gen
//	cfg.CCModes = []tpsim.Granularity{tpsim.PageLevel, tpsim.PageLevel, tpsim.NoCC}
//	... configure cfg.DiskUnits and cfg.Buffer ...
//	res, err := tpsim.Run(cfg)
//	fmt.Println(res)
//
// See the examples/ directory for complete programs and internal/experiments
// for the configurations regenerating every figure and table of the paper.
package tpsim

import (
	"io"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Engine configuration and results.
type (
	// Config describes one simulation run (CM, devices, buffer, workload).
	Config = core.Config
	// Result carries the run's metrics (response time, throughput, hit
	// ratios, utilizations, lock behaviour).
	Result = core.Result
	// PartitionReport is the per-partition hit breakdown of a Result.
	PartitionReport = core.PartitionReport
	// UnitReport is one disk-unit's activity in a Result.
	UnitReport = core.UnitReport
)

// Run executes one simulation and returns its metrics.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// Multi-node data sharing and crash recovery.
type (
	// ClusterConfig describes a multi-node data-sharing simulation.
	ClusterConfig = core.ClusterConfig
	// ClusterResult carries a cluster run's aggregate and per-node metrics.
	ClusterResult = core.ClusterResult
	// FailureConfig injects one node crash into a cluster run.
	FailureConfig = core.FailureConfig
	// RestartReport describes a simulated crash and redo recovery.
	RestartReport = core.RestartReport
	// AdmissionConfig is the recovery-aware admission controller shedding
	// rerouted arrivals above a survivor-capacity threshold.
	AdmissionConfig = core.AdmissionConfig
	// PDESConfig switches a cluster run to the conservative parallel
	// engine: one kernel and private storage per node, cross-node events
	// exchanged at message-latency lookahead barriers.
	PDESConfig = core.PDESConfig
)

// RunCluster executes one multi-node data-sharing simulation.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) { return core.RunCluster(cfg) }

// MeasureRestart runs cfg like Run, then crashes the system after the
// measurement window and simulates redo recovery, filling Result.Restart.
func MeasureRestart(cfg Config, rebootMS float64) (*Result, error) {
	return core.MeasureRestart(cfg, rebootMS)
}

// Defaults returns the CM parameter settings of the paper's Table 4.1.
func Defaults() Config { return core.Defaults() }

// Standard device delays of Table 4.1 (milliseconds).
const (
	DefaultContrDelay   = core.DefaultContrDelay
	DefaultTransDelay   = core.DefaultTransDelay
	DefaultDBDiskDelay  = core.DefaultDBDiskDelay
	DefaultLogDiskDelay = core.DefaultLogDiskDelay
)

// Storage devices (Table 3.4).
type (
	// DiskUnitConfig parameterizes one disk-unit.
	DiskUnitConfig = storage.DiskUnitConfig
	// DiskUnitType selects regular disk, volatile/non-volatile cache or SSD.
	DiskUnitType = storage.DiskUnitType
	// PageKey identifies a database page (partition, page number).
	PageKey = storage.PageKey
)

// Disk-unit variants.
const (
	Regular       = storage.Regular
	VolatileCache = storage.VolatileCache
	NVCache       = storage.NVCache
	SSD           = storage.SSD
)

// Buffer management (Table 3.3, Fig 3.2).
type (
	// BufferConfig parameterizes the buffer manager.
	BufferConfig = buffer.Config
	// PartitionAlloc places one partition in the storage hierarchy.
	PartitionAlloc = buffer.PartitionAlloc
	// LogAlloc places the log file.
	LogAlloc = buffer.LogAlloc
	// MigrateMode selects which replaced pages enter the NVEM cache.
	MigrateMode = buffer.MigrateMode
)

// NVEM cache migration modes.
const (
	MigrateAll        = buffer.MigrateAll
	MigrateModified   = buffer.MigrateModified
	MigrateUnmodified = buffer.MigrateUnmodified
)

// Concurrency control.
type (
	// Granularity is the per-partition locking choice.
	Granularity = cc.Granularity
)

// Lock granularities.
const (
	NoCC        = cc.NoCC
	PageLevel   = cc.PageLevel
	ObjectLevel = cc.ObjectLevel
)

// Workload model (Table 3.1).
type (
	// Partition is a database partition (file, relation, index, ...).
	Partition = workload.Partition
	// Subpartition is one slice of the generalized b/c access rule.
	Subpartition = workload.Subpartition
	// TxType describes a synthetic transaction type.
	TxType = workload.TxType
	// Model is the synthetic database and load description.
	Model = workload.Model
	// Generator produces transactions for the engine.
	Generator = workload.Generator
	// DebitCreditConfig parameterizes the Debit-Credit generator.
	DebitCreditConfig = workload.DebitCreditConfig
)

// Access distributions (object-selection skew).
type (
	// AccessSpec describes an object access distribution; the zero value is
	// the uniform draw of the paper's evaluation.
	AccessSpec = workload.AccessSpec
	// AccessDist draws object numbers under an AccessSpec.
	AccessDist = workload.AccessDist
	// AccessKind selects the access-distribution family of an AccessSpec.
	AccessKind = workload.AccessKind
)

// Access-distribution families.
const (
	AccessUniform = workload.AccessUniform
	AccessZipf    = workload.AccessZipf
	AccessHotSpot = workload.AccessHotSpot
)

// Multi-class transaction mixes.
type (
	// ClassSpec describes one transaction class of the standard mix.
	ClassSpec = workload.ClassSpec
	// ClassReport is one class's share of a Result's accounting.
	ClassReport = core.ClassReport
)

// ClassMixModel builds the standard two-partition multi-class model from a
// class list; skew applies to the CUSTOMER draws of the random classes.
func ClassMixModel(classes []ClassSpec, skew AccessSpec) (*Model, error) {
	return workload.ClassMixModel(classes, skew)
}

// DefaultClassMix returns the conventional three-class TPC-C-style mix
// (short updates, long read-mostly queries, batch scans) at the given
// per-class arrival rates.
func DefaultClassMix(updateTPS, readTPS, scanTPS float64) []ClassSpec {
	return workload.DefaultClassMix(updateTPS, readTPS, scanTPS)
}

// Arrival processes (the pluggable interarrival layer).
type (
	// ArrivalProcess generates the interarrival gaps of one arrival stream.
	ArrivalProcess = workload.ArrivalProcess
	// ArrivalSpec describes an arrival process independently of the rate;
	// the zero value is the classic Poisson process.
	ArrivalSpec = workload.ArrivalSpec
	// ArrivalKind selects the arrival-process family of an ArrivalSpec.
	ArrivalKind = workload.ArrivalKind
)

// Arrival-process families.
const (
	ArrivalPoisson    = workload.ArrivalPoisson
	ArrivalMMPP       = workload.ArrivalMMPP
	ArrivalDiurnal    = workload.ArrivalDiurnal
	ArrivalSpike      = workload.ArrivalSpike
	ArrivalClosedLoop = workload.ArrivalClosedLoop
	ArrivalReplay     = workload.ArrivalReplay
)

// NewSynthetic builds the general synthetic workload generator.
func NewSynthetic(m *Model) (*workload.Synthetic, error) { return workload.NewSynthetic(m) }

// NewDebitCredit builds the Debit-Credit benchmark generator.
func NewDebitCredit(cfg DebitCreditConfig) (*workload.DebitCredit, error) {
	return workload.NewDebitCredit(cfg)
}

// DefaultDebitCreditConfig returns the Table 4.1 Debit-Credit settings at
// the given arrival rate (transactions per second).
func DefaultDebitCreditConfig(rate float64) DebitCreditConfig {
	return workload.DefaultDebitCreditConfig(rate)
}

// BCRule builds the classic two-subpartition b/c access rule (b fraction of
// accesses to c fraction of the objects).
func BCRule(b, c float64) []Subpartition { return workload.BCRule(b, c) }

// Traces (section 4.6).
type (
	// Trace is a recorded or synthesized page-reference workload.
	Trace = trace.Trace
	// TraceSource replays a trace as a workload generator.
	TraceSource = trace.Source
)

// GenerateRealLifeTrace synthesizes the stand-in for the paper's real-life
// trace (~17.6k transactions, 12 types, ~1M accesses, ~66k distinct pages in
// 13 files, 1.6% writes).
func GenerateRealLifeTrace(seed int64) *Trace { return trace.GenerateRealLife(seed) }

// NewTraceSource builds a replay generator submitting the trace at the given
// rate (transactions per second), preserving the original execution order.
func NewTraceSource(tr *Trace, rate float64) (*TraceSource, error) {
	return trace.NewSource(tr, rate)
}

// NewTraceSourceByType builds a replay generator with a separate arrival
// rate per transaction type (section 3.1's alternative replay mode).
func NewTraceSourceByType(tr *Trace, rates []float64) (*TraceSource, error) {
	return trace.NewSourceByType(tr, rates)
}

// WriteTrace serializes a trace in the line-oriented TPSIM-TRACE format.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.Write(w, tr) }

// ReadTrace parses and validates a trace in the TPSIM-TRACE format.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// LoadTimeline folds a trace's reference volume into buckets normalized rate
// multipliers (mean 1), ready for an ArrivalReplay spec's RateMultipliers.
func LoadTimeline(tr *Trace, buckets int) ([]float64, error) {
	return trace.LoadTimeline(tr, buckets)
}
