package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestGenerateAndStatsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reallife.trace")
	code, out, errOut := runCmd(t, "-out", path, "-seed", "7", "-top", "3")
	if code != 0 {
		t.Fatalf("generate exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"transactions:", "distinct pages:", "hottest 3 pages:", "written to " + path} {
		if !strings.Contains(out, want) {
			t.Errorf("generate output missing %q:\n%s", want, out)
		}
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}

	code, statsOut, errOut := runCmd(t, "-stats", path)
	if code != 0 {
		t.Fatalf("stats exit %d, stderr: %s", code, errOut)
	}
	// The stats report of the written file must match the report printed at
	// generation time (same trace, same aggregates).
	genReport := strings.Split(out, "hottest")[0]
	if !strings.Contains(statsOut, strings.TrimSpace(strings.Split(genReport, "\n")[0])) {
		t.Errorf("stats report diverges from generation report:\n%s\nvs\n%s", statsOut, out)
	}
	if !strings.Contains(statsOut, "update txs:") {
		t.Errorf("stats output missing aggregates:\n%s", statsOut)
	}
}

func TestStatsMissingFile(t *testing.T) {
	code, _, errOut := runCmd(t, "-stats", filepath.Join(t.TempDir(), "nope.trace"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "tracegen:") {
		t.Errorf("stderr missing error: %q", errOut)
	}
}

func TestStatsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCmd(t, "-stats", path); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCmd(t, "-bogus"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	if code, _, _ := runCmd(t, "-h"); code != 0 {
		t.Fatalf("-h exit %d, want 0", code)
	}
}

func TestNoActionShowsUsage(t *testing.T) {
	code, _, errOut := runCmd(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "-out") {
		t.Errorf("usage missing from stderr: %q", errOut)
	}
}
