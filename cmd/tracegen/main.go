// Command tracegen generates the synthetic real-life trace (section 4.6
// stand-in) or reports the aggregate statistics of an existing trace file.
//
// Usage:
//
//	tracegen -out reallife.trace [-seed 42]
//	tracegen -stats reallife.trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against the given argument list and streams; it
// returns the process exit code (0 ok, 1 runtime error, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "write the synthetic real-life trace to this file")
	statsPath := fs.String("stats", "", "print aggregate statistics of an existing trace file")
	seed := fs.Int64("seed", 42, "generator seed")
	top := fs.Int("top", 0, "also list the N hottest pages")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	switch {
	case *out != "":
		tr := trace.GenerateRealLife(*seed)
		f, err := os.Create(*out)
		if err != nil {
			return fail(stderr, err)
		}
		if err := trace.Write(f, tr); err != nil {
			f.Close()
			return fail(stderr, err)
		}
		if err := f.Close(); err != nil {
			return fail(stderr, err)
		}
		report(stdout, tr, *top)
		fmt.Fprintln(stdout, "written to", *out)
	case *statsPath != "":
		f, err := os.Open(*statsPath)
		if err != nil {
			return fail(stderr, err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			return fail(stderr, err)
		}
		report(stdout, tr, *top)
	default:
		fs.Usage()
		return 2
	}
	return 0
}

func report(w io.Writer, tr *trace.Trace, top int) {
	s := tr.ComputeStats()
	fmt.Fprintf(w, "transactions:   %d (%d types)\n", s.NumTxs, s.NumTypes)
	fmt.Fprintf(w, "accesses:       %d (%.2f%% writes)\n", s.NumAccesses, 100*s.WriteFrac())
	fmt.Fprintf(w, "update txs:     %d (%.1f%%)\n", s.UpdateTxs, 100*s.UpdateTxFrac())
	fmt.Fprintf(w, "distinct pages: %d of %d (%d files, %.1f GB at 4KB pages)\n",
		s.DistinctPages, s.TotalPages, tr.NumFiles(), float64(s.TotalPages)*4/1024/1024)
	fmt.Fprintf(w, "largest tx:     %d accesses\n", s.MaxTxSize)
	if counts := tr.TypeHistogram(); len(tr.TypeNames) == len(counts) {
		for i, c := range counts {
			fmt.Fprintf(w, "  type %-14s %6d txs\n", tr.TypeNames[i], c)
		}
	}
	if top > 0 {
		fmt.Fprintf(w, "hottest %d pages:\n", top)
		for _, r := range tr.HottestPages(top) {
			fmt.Fprintf(w, "  file %d page %d\n", r.File, r.Page)
		}
	}
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "tracegen:", err)
	return 1
}
