// Command tracegen generates the synthetic real-life trace (section 4.6
// stand-in) or reports the aggregate statistics of an existing trace file.
//
// Usage:
//
//	tracegen -out reallife.trace [-seed 42]
//	tracegen -stats reallife.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	out := flag.String("out", "", "write the synthetic real-life trace to this file")
	statsPath := flag.String("stats", "", "print aggregate statistics of an existing trace file")
	seed := flag.Int64("seed", 42, "generator seed")
	top := flag.Int("top", 0, "also list the N hottest pages")
	flag.Parse()

	switch {
	case *out != "":
		tr := trace.GenerateRealLife(*seed)
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, tr); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		report(tr, *top)
		fmt.Println("written to", *out)
	case *statsPath != "":
		f, err := os.Open(*statsPath)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		report(tr, *top)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func report(tr *trace.Trace, top int) {
	s := tr.ComputeStats()
	fmt.Printf("transactions:   %d (%d types)\n", s.NumTxs, s.NumTypes)
	fmt.Printf("accesses:       %d (%.2f%% writes)\n", s.NumAccesses, 100*s.WriteFrac())
	fmt.Printf("update txs:     %d (%.1f%%)\n", s.UpdateTxs, 100*s.UpdateTxFrac())
	fmt.Printf("distinct pages: %d of %d (%d files, %.1f GB at 4KB pages)\n",
		s.DistinctPages, s.TotalPages, tr.NumFiles(), float64(s.TotalPages)*4/1024/1024)
	fmt.Printf("largest tx:     %d accesses\n", s.MaxTxSize)
	if counts := tr.TypeHistogram(); len(tr.TypeNames) == len(counts) {
		for i, c := range counts {
			fmt.Printf("  type %-14s %6d txs\n", tr.TypeNames[i], c)
		}
	}
	if top > 0 {
		fmt.Printf("hottest %d pages:\n", top)
		for _, r := range tr.HottestPages(top) {
			fmt.Printf("  file %d page %d\n", r.File, r.Page)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
