// Command detlint is the determinism-contract linter: it statically rejects
// the nondeterminism bug classes that golden byte-identity depends on
// (wall-clock reads, global math/rand, order-leaking map iteration, raw
// goroutines outside the sanctioned seams, order-dependent float sums).
//
// Usage:
//
//	go run ./cmd/detlint ./...
//	go run ./cmd/detlint -list
//	go run ./cmd/detlint -rules maporder,floatsum ./internal/core
//	go run ./cmd/detlint -scope=all ./internal/analysis/testdata/seeded
//
// Patterns are module-root-relative package directories; "./..." walks the
// whole module (testdata excluded, like the go tool). Explicit patterns may
// point inside testdata — that is how CI asserts the seeded-violation
// fixture still trips the gate. Exit status: 0 clean, 1 diagnostics found,
// 2 usage or load error. Diagnostics print as "file:line: rule: message" in
// a stable order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scope := fs.String("scope", "sim", "rule scoping: \"sim\" applies each rule to its contracted packages; \"all\" forces every rule on every loaded package")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list the rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scope != "sim" && *scope != "all" {
		fmt.Fprintf(stderr, "detlint: bad -scope %q (want sim or all)\n", *scope)
		return 2
	}

	analyzers := analysis.All()
	if *rules != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*rules, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "detlint: unknown rule %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	count := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.RunAnalyzers(pkg, analyzers, *scope == "all") {
			fmt.Fprintln(stdout, d)
			count++
		}
	}
	if count > 0 {
		fmt.Fprintf(stderr, "detlint: %d diagnostic(s)\n", count)
		return 1
	}
	return 0
}
