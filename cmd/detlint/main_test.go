package main

import (
	"bytes"
	"strings"
	"testing"
)

func runDetlint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestTreeIsClean is the repo's own gate: the full module must lint clean.
// Every violation is either fixed or carries a reasoned //detlint:allow.
func TestTreeIsClean(t *testing.T) {
	code, stdout, stderr := runDetlint(t, "./...")
	if code != 0 {
		t.Fatalf("detlint ./... exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("detlint ./... produced output on success:\n%s", stdout)
	}
}

// TestSeededViolationCaught is the gate's self-test: the committed fixture
// with known violations must always be reported with a nonzero exit, so an
// analyzer regression cannot silently disarm CI.
func TestSeededViolationCaught(t *testing.T) {
	code, stdout, _ := runDetlint(t, "-scope=all", "./internal/analysis/testdata/seeded")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, stdout)
	}
	for _, rule := range []string{"walltime", "rngstream", "maporder", "rawgo", "floatsum"} {
		if !strings.Contains(stdout, " "+rule+": ") {
			t.Errorf("seeded fixture output missing rule %q:\n%s", rule, stdout)
		}
	}
	if !strings.Contains(stdout, "internal/analysis/testdata/seeded/seeded.go:") {
		t.Errorf("diagnostics should use module-relative file:line form:\n%s", stdout)
	}
}

// TestSeededOutsideDefaultWalk: ./... must not descend into testdata, or
// the seeded violations would fail the clean-tree gate.
func TestSeededOutsideDefaultWalk(t *testing.T) {
	code, stdout, _ := runDetlint(t, "-rules", "rngstream", "./...")
	if code != 0 || stdout != "" {
		t.Fatalf("./... descended into testdata: exit %d\n%s", code, stdout)
	}
}

func TestRuleSubset(t *testing.T) {
	code, stdout, _ := runDetlint(t, "-rules", "rngstream", "-scope=all", "./internal/analysis/testdata/seeded")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if !strings.Contains(line, " rngstream: ") {
			t.Errorf("-rules rngstream emitted a foreign diagnostic: %s", line)
		}
	}
}

func TestListRules(t *testing.T) {
	code, stdout, _ := runDetlint(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"walltime", "rngstream", "maporder", "rawgo", "floatsum"} {
		if !strings.Contains(stdout, rule) {
			t.Errorf("-list output missing %q:\n%s", rule, stdout)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := map[string][]string{
		"unknown rule":    {"-rules", "cosmicrays"},
		"bad scope":       {"-scope", "everything"},
		"bad flag":        {"-definitely-not-a-flag"},
		"missing dir":     {"./no/such/dir"},
		"module escape":   {"../outside"},
		"no go files":     {"./internal/experiments/testdata/golden"},
		"absolute path":   {"/etc"},
		"unknown pattern": {"internal/analysis/testdata/src/walltime/walltime.go"}, // a file, not a dir
	}
	for name, args := range cases {
		if code, _, _ := runDetlint(t, args...); code != 2 {
			t.Errorf("%s: run(%v) = %d, want 2", name, args, code)
		}
	}
}
