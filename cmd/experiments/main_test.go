package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListPrintsRegistry(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"fig4.1", "fig4.8", "table4.2a", "table2.1", "ablation.clustering"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errOut := runCmd(t, "-run", "nope")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "no experiment matches") {
		t.Errorf("stderr missing match error: %q", errOut)
	}
}

func TestBadPattern(t *testing.T) {
	code, _, errOut := runCmd(t, "-run", "fig4.(")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "bad pattern") {
		t.Errorf("stderr missing pattern error: %q", errOut)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCmd(t, "-bogus"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, errOut := runCmd(t, "-h")
	if code != 0 {
		t.Fatalf("-h exit %d, want 0", code)
	}
	if !strings.Contains(errOut, "-reps") {
		t.Errorf("help missing -reps flag: %q", errOut)
	}
}

func TestNoActionShowsUsage(t *testing.T) {
	code, _, errOut := runCmd(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "-run") {
		t.Errorf("usage missing from stderr: %q", errOut)
	}
}

// TestProfileFlags parses and exercises -cpuprofile/-memprofile: a real
// quick run must leave non-empty pprof files behind, and an unwritable
// CPU-profile path must fail up front with exit 1.
func TestProfileFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, _, errOut := runCmd(t,
		"-run", "table2\\.1", "-quick", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
	code, _, errOut = runCmd(t,
		"-run", "table2\\.1", "-quick", "-cpuprofile", filepath.Join(dir, "no", "such", "dir.pprof"))
	if code != 1 {
		t.Fatalf("unwritable -cpuprofile: exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "no such file or directory") {
		t.Errorf("stderr missing create error: %q", errOut)
	}
}

// TestEndToEndQuickReplicated runs one real experiment in quick mode through
// the parallel replicated path and checks the rendered mean ± CI output.
func TestEndToEndQuickReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	code, out, errOut := runCmd(t,
		"-run", "ablation\\.destage-policy", "-quick", "-reps", "2", "-parallel", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"=== ablation.destage-policy", "immediate", "deferred", "±"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
