// Command experiments regenerates the paper's figures and tables.
//
// Usage:
//
//	experiments -list
//	experiments -run fig4.1 [-quick] [-seed 1] [-reps 5] [-parallel 8]
//	experiments -run 'fig4\..*' [-quick]
//	experiments -all [-quick]
//
// -run takes an anchored regular expression over experiment ids. -reps N
// runs every simulation point N times with derived seeds and renders mean ±
// 95% confidence interval; -parallel caps the number of concurrently
// executing simulation runs (0 = GOMAXPROCS). Output is byte-identical for
// any -parallel value. -cpuprofile and -memprofile write pprof profiles of
// the selected runs (CPU over the whole invocation, heap at exit) for
// hunting the next hot path.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against the given argument list and streams; it
// returns the process exit code (0 ok, 1 runtime error, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available experiments")
	pattern := fs.String("run", "", "anchored regexp of experiment ids to run (e.g. fig4.1 or 'fig4\\..*')")
	all := fs.Bool("all", false, "run every experiment")
	quick := fs.Bool("quick", false, "shorter windows and sparser sweeps")
	seed := fs.Int64("seed", 1, "random seed")
	reps := fs.Int("reps", 1, "independent replications per simulation point (mean ± 95% CI when > 1)")
	parallel := fs.Int("parallel", 0, "max concurrent simulation runs (0 = GOMAXPROCS)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "error:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live allocations, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "error:", err)
			}
		}()
	}
	opts := experiments.Options{
		Seed: *seed, Quick: *quick,
		Replications: *reps, Parallelism: *parallel,
	}

	var selected []experiments.Experiment
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-26s %s\n", e.Name, e.Title)
		}
		return 0
	case *all:
		selected = experiments.All()
	case *pattern != "":
		var err error
		selected, err = experiments.Match(*pattern)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
	default:
		fs.Usage()
		return 2
	}

	for _, e := range selected {
		start := time.Now()
		out, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(stderr, "error: %s: %v\n", e.Name, err)
			return 1
		}
		fmt.Fprintf(stdout, "=== %s: %s ===\n%s(took %.1fs)\n\n",
			e.Name, e.Title, out, time.Since(start).Seconds())
	}
	return 0
}
