// Command experiments regenerates the paper's figures and tables.
//
// Usage:
//
//	experiments -list
//	experiments -run fig4.1 [-quick] [-seed 1]
//	experiments -all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment id to run (e.g. fig4.1)")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "shorter windows and sparser sweeps")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Quick: *quick}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.Name, e.Title)
		}
	case *all:
		for _, e := range experiments.All() {
			if err := runOne(e, opts); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
	case *run != "":
		e, err := experiments.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := runOne(e, opts); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e experiments.Experiment, opts experiments.Options) error {
	start := time.Now()
	out, err := e.Run(opts)
	if err != nil {
		return fmt.Errorf("%s: %w", e.Name, err)
	}
	fmt.Printf("=== %s: %s ===\n%s(took %.1fs)\n\n", e.Name, e.Title, out, time.Since(start).Seconds())
	return nil
}
