package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	tpsim "repro"
	"repro/internal/trace"
)

// fileConfig is the JSON schema cmd/tpsim accepts. It maps 1:1 onto the
// engine configuration plus a workload selector.
type fileConfig struct {
	Seed      int64   `json:"seed"`
	MPL       int     `json:"mpl"`
	NumCPU    int     `json:"numCPU"`
	MIPS      float64 `json:"mips"`
	InstrBOT  float64 `json:"instrBOT"`
	InstrOR   float64 `json:"instrOR"`
	InstrEOT  float64 `json:"instrEOT"`
	InstrIO   float64 `json:"instrIO"`
	InstrNVEM float64 `json:"instrNVEM"`

	WarmupMS  float64 `json:"warmupMS"`
	MeasureMS float64 `json:"measureMS"`

	Workload workloadConfig `json:"workload"`

	// CCModes: "none", "page" or "object" per partition. Empty defaults to
	// page-level locking everywhere.
	CCModes []string `json:"ccModes"`

	NVEMServers int     `json:"nvemServers"`
	NVEMDelayMS float64 `json:"nvemDelayMS"`

	DiskUnits []diskUnitConfig `json:"diskUnits"`
	Buffer    bufferConfig     `json:"buffer"`

	// Cluster switches the run to a multi-node data-sharing simulation:
	// numNodes transaction systems share the disk units and one global
	// NVEM, and workload.rate becomes the aggregate rate split evenly
	// over the nodes. Absent (or numNodes <= 1 with no other cluster
	// settings): a classic single-node run.
	Cluster *clusterConfig `json:"cluster"`
}

type clusterConfig struct {
	NumNodes        int  `json:"numNodes"`
	SharedNVEMCache bool `json:"sharedNVEMCache"`
	// NVEMAccessDelayMS is the shared-NVEM-cache interconnect latency;
	// required positive to combine sharedNVEMCache with pdes (coherence
	// needs lookahead), ignored by coupled runs.
	NVEMAccessDelayMS float64          `json:"nvemAccessDelayMS"`
	GlobalLocks       bool             `json:"globalLocks"`
	InstrLockMsg      float64          `json:"instrLockMsg"`
	LockMsgDelayMS    float64          `json:"lockMsgDelayMS"`
	TimelineBucketMS  float64          `json:"timelineBucketMS"`
	Failure           *failureConfig   `json:"failure"`
	Admission         *admissionConfig `json:"admission"`
	PDES              *pdesConfig      `json:"pdes"`
}

// pdesConfig switches the cluster run to the conservative parallel engine
// (per-node kernels and storage, lookahead barriers). workers caps the
// kernel-executing goroutines (0 → all cores); results are identical for
// every value.
type pdesConfig struct {
	Workers int `json:"workers"`
}

// admissionConfig enables the recovery-aware admission controller: while a
// node is down, rerouted arrivals are shed once the surviving target's
// input queue exceeds queueFactor × MPL (0 → the engine default of 1.0).
type admissionConfig struct {
	QueueFactor float64 `json:"queueFactor"`
}

// failureConfig injects one node crash (offset into the measurement
// window) with redo recovery after rebootMS.
type failureConfig struct {
	Node      int     `json:"node"`
	CrashAtMS float64 `json:"crashAtMS"`
	RebootMS  float64 `json:"rebootMS"`
}

type workloadConfig struct {
	Kind string  `json:"kind"` // "debitcredit", "trace", "synthetic" or "classes"
	Rate float64 `json:"rate"`

	// Arrival selects the arrival process of every transaction-type
	// stream. Absent: Poisson (the paper's evaluation).
	Arrival *arrivalConfig `json:"arrival"`

	// Access skews the object draws: the within-branch account selection
	// for debitcredit, the CUSTOMER selection for classes. Absent: uniform
	// (the paper's evaluation).
	Access *accessConfig `json:"access"`

	// Classes is the multi-class mix of workload kind "classes": the
	// standard two-partition database with one transaction class per entry,
	// reported separately in the result's per-class lines.
	Classes []classConfig `json:"classes"`

	// Debit-Credit overrides (zero = Table 4.1 defaults).
	Branches  int64 `json:"branches"`
	Accounts  int64 `json:"accounts"`
	Uncluster bool  `json:"uncluster"`

	// Trace replay. PerTypeRates switches to one arrival stream per
	// transaction type instead of a single ordered replay at Rate.
	TraceFile    string    `json:"traceFile"`
	PerTypeRates []float64 `json:"perTypeRates"`

	// General synthetic model.
	Synthetic *tpsim.Model `json:"synthetic"`
}

// accessConfig is the JSON form of tpsim.AccessSpec. Kind selects the
// family; only that family's parameters apply.
type accessConfig struct {
	Kind string `json:"kind"` // uniform (default), zipf, hotspot

	// zipf: rank-frequency exponent, 0 < theta < 1.
	Theta float64 `json:"theta"`

	// hotspot: hotAccessFrac of the draws land on the first hotDataFrac of
	// the objects (e.g. 0.9 / 0.01 — "90% of accesses to 1% of the data").
	HotAccessFrac float64 `json:"hotAccessFrac"`
	HotDataFrac   float64 `json:"hotDataFrac"`
}

// assemble maps the JSON form onto the engine spec.
func (a *accessConfig) assemble() (tpsim.AccessSpec, error) {
	spec := tpsim.AccessSpec{
		Theta:         a.Theta,
		HotAccessFrac: a.HotAccessFrac,
		HotDataFrac:   a.HotDataFrac,
	}
	switch a.Kind {
	case "uniform", "":
		spec.Kind = tpsim.AccessUniform
	case "zipf":
		spec.Kind = tpsim.AccessZipf
	case "hotspot":
		spec.Kind = tpsim.AccessHotSpot
	default:
		return spec, fmt.Errorf("unknown access kind %q", a.Kind)
	}
	return spec, spec.Validate()
}

// classConfig is the JSON form of one tpsim.ClassSpec.
type classConfig struct {
	Name       string  `json:"name"`
	Rate       float64 `json:"rate"`
	Size       float64 `json:"size"`
	WriteProb  float64 `json:"writeProb"`
	Sequential bool    `json:"sequential"`
	VarSize    bool    `json:"varSize"`
}

// arrivalConfig is the JSON form of tpsim.ArrivalSpec. Kind selects the
// family; only that family's parameters apply.
type arrivalConfig struct {
	Kind string `json:"kind"` // poisson (default), mmpp, diurnal, spike, closedloop, replay

	// mmpp: bursts at burstFactor × the mean rate covering burstFrac of
	// the time (mean burst sojourn burstMeanMS; 0 → 500 ms), base rate
	// derived so the long-run mean rate is workload.rate.
	BurstFactor float64 `json:"burstFactor"`
	BurstFrac   float64 `json:"burstFrac"`
	BurstMeanMS float64 `json:"burstMeanMS"`

	// diurnal: rate(t) = mean · (1 + amplitude · sin(2πt/periodMS + phaseRad)).
	Amplitude float64 `json:"amplitude"`
	PeriodMS  float64 `json:"periodMS"`
	PhaseRad  float64 `json:"phaseRad"`

	// spike: rate × spikeFactor over [spikeAtMS, spikeAtMS+spikeDurMS),
	// offsets into the measurement window (the clock failure.crashAtMS
	// uses, so a spike aligns with a crash by construction).
	SpikeFactor float64 `json:"spikeFactor"`
	SpikeAtMS   float64 `json:"spikeAtMS"`
	SpikeDurMS  float64 `json:"spikeDurMS"`

	// closedloop: terminals each cycle think(thinkMS) -> submit -> wait for
	// the response; workload.rate is ignored for closed-loop streams.
	Terminals int     `json:"terminals"`
	ThinkMS   float64 `json:"thinkMS"`

	// replay: piecewise-constant rate = workload.rate × the bucket's
	// multiplier, each bucket rateBucketMS long (e.g. a timeline recorded
	// from a trace); the schedule repeats past the last bucket.
	RateBucketMS    float64   `json:"rateBucketMS"`
	RateMultipliers []float64 `json:"rateMultipliers"`
}

// assemble maps the JSON form onto the engine spec.
func (a *arrivalConfig) assemble() (tpsim.ArrivalSpec, error) {
	spec := tpsim.ArrivalSpec{
		BurstFactor: a.BurstFactor,
		BurstFrac:   a.BurstFrac,
		BurstMeanMS: a.BurstMeanMS,
		Amplitude:   a.Amplitude,
		PeriodMS:    a.PeriodMS,
		PhaseRad:    a.PhaseRad,
		SpikeFactor: a.SpikeFactor,
		SpikeAtMS:   a.SpikeAtMS,
		SpikeDurMS:  a.SpikeDurMS,

		Terminals: a.Terminals,
		ThinkMS:   a.ThinkMS,

		RateBucketMS:    a.RateBucketMS,
		RateMultipliers: a.RateMultipliers,
	}
	switch a.Kind {
	case "poisson", "":
		spec.Kind = tpsim.ArrivalPoisson
	case "mmpp":
		spec.Kind = tpsim.ArrivalMMPP
	case "diurnal":
		spec.Kind = tpsim.ArrivalDiurnal
	case "spike":
		spec.Kind = tpsim.ArrivalSpike
	case "closedloop":
		spec.Kind = tpsim.ArrivalClosedLoop
	case "replay":
		spec.Kind = tpsim.ArrivalReplay
	default:
		return spec, fmt.Errorf("unknown arrival kind %q", a.Kind)
	}
	return spec, spec.Validate()
}

type diskUnitConfig struct {
	Name            string  `json:"name"`
	Type            string  `json:"type"` // regular, volatile-cache, nv-cache, ssd
	NumControllers  int     `json:"numControllers"`
	ContrDelayMS    float64 `json:"contrDelayMS"`
	TransDelayMS    float64 `json:"transDelayMS"`
	NumDisks        int     `json:"numDisks"`
	DiskDelayMS     float64 `json:"diskDelayMS"`
	CacheSize       int     `json:"cacheSize"`
	WriteBufferOnly bool    `json:"writeBufferOnly"`
}

type bufferConfig struct {
	BufferSize           int               `json:"bufferSize"`
	Force                bool              `json:"force"`
	Logging              *bool             `json:"logging"` // default true
	CheckpointIntervalMS float64           `json:"checkpointIntervalMS"`
	NVEMCacheSize        int               `json:"nvemCacheSize"`
	NVEMWriteBufferSize  int               `json:"nvemWriteBufferSize"`
	Partitions           []partitionConfig `json:"partitions"`
	Log                  logConfig         `json:"log"`
}

type partitionConfig struct {
	MMResident      bool   `json:"mmResident"`
	NVEMResident    bool   `json:"nvemResident"`
	DiskUnit        int    `json:"diskUnit"`
	SyncAccess      bool   `json:"syncAccess"`
	NVEMCache       bool   `json:"nvemCache"`
	NVEMCacheMode   string `json:"nvemCacheMode"` // all, modified, unmodified
	NVEMWriteBuffer bool   `json:"nvemWriteBuffer"`
}

type logConfig struct {
	NVEMResident    bool `json:"nvemResident"`
	DiskUnit        int  `json:"diskUnit"`
	NVEMWriteBuffer bool `json:"nvemWriteBuffer"`
}

// load reads and assembles a run configuration: the single-node engine
// configuration, plus a cluster description when the file carries a
// cluster section (the returned Config is then the cluster's Base).
func load(r io.Reader) (tpsim.Config, *tpsim.ClusterConfig, error) {
	var fc fileConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return tpsim.Config{}, nil, fmt.Errorf("parse config: %w", err)
	}
	if fc.Cluster != nil {
		return fc.assembleCluster()
	}
	cfg, err := fc.assemble()
	return cfg, nil, err
}

// assembleCluster builds the multi-node configuration: the base engine
// configuration shared by every node plus one independent generator per
// node, each fed an even share of the configured aggregate rate.
func (fc *fileConfig) assembleCluster() (tpsim.Config, *tpsim.ClusterConfig, error) {
	cl := fc.Cluster
	if cl.NumNodes <= 0 {
		return tpsim.Config{}, nil, fmt.Errorf("cluster.numNodes = %d", cl.NumNodes)
	}
	n := cl.NumNodes
	per := *fc
	per.Workload.Rate = fc.Workload.Rate / float64(n)
	if len(fc.Workload.PerTypeRates) > 0 {
		per.Workload.PerTypeRates = make([]float64, len(fc.Workload.PerTypeRates))
		for i, rate := range fc.Workload.PerTypeRates {
			per.Workload.PerTypeRates[i] = rate / float64(n)
		}
	}

	base, err := per.assemble()
	if err != nil {
		return tpsim.Config{}, nil, err
	}
	// Generators are stateful: build a fresh instance per node (assemble
	// already produced node 0's).
	gens := make([]tpsim.Generator, n)
	gens[0] = base.Generator
	for i := 1; i < n; i++ {
		nodeCfg := base
		if err := per.workload(&nodeCfg); err != nil {
			return tpsim.Config{}, nil, err
		}
		gens[i] = nodeCfg.Generator
	}

	ccfg := &tpsim.ClusterConfig{
		Base:              base,
		NumNodes:          n,
		Generators:        gens,
		SharedNVEMCache:   cl.SharedNVEMCache,
		NVEMAccessDelayMS: cl.NVEMAccessDelayMS,
		GlobalLocks:       cl.GlobalLocks,
		InstrLockMsg:      cl.InstrLockMsg,
		LockMsgDelayMS:    cl.LockMsgDelayMS,
		TimelineBucketMS:  cl.TimelineBucketMS,
	}
	if cl.Failure != nil {
		ccfg.Failure = tpsim.FailureConfig{
			Enabled:   true,
			Node:      cl.Failure.Node,
			CrashAtMS: cl.Failure.CrashAtMS,
			RebootMS:  cl.Failure.RebootMS,
		}
	}
	if cl.Admission != nil {
		ccfg.Admission = tpsim.AdmissionConfig{
			Enabled:     true,
			QueueFactor: cl.Admission.QueueFactor,
		}
	}
	if cl.PDES != nil {
		ccfg.PDES = tpsim.PDESConfig{
			Enabled: true,
			Workers: cl.PDES.Workers,
		}
	}
	return base, ccfg, nil
}

func (fc *fileConfig) assemble() (tpsim.Config, error) {
	cfg := tpsim.Defaults()
	if fc.Seed != 0 {
		cfg.Seed = fc.Seed
	}
	setIfPos(&cfg.MPL, fc.MPL)
	setIfPos(&cfg.NumCPU, fc.NumCPU)
	setIfPosF(&cfg.MIPS, fc.MIPS)
	setIfPosF(&cfg.InstrBOT, fc.InstrBOT)
	setIfPosF(&cfg.InstrOR, fc.InstrOR)
	setIfPosF(&cfg.InstrEOT, fc.InstrEOT)
	setIfPosF(&cfg.InstrIO, fc.InstrIO)
	setIfPosF(&cfg.InstrNVEM, fc.InstrNVEM)
	setIfPosF(&cfg.WarmupMS, fc.WarmupMS)
	setIfPosF(&cfg.MeasureMS, fc.MeasureMS)
	setIfPos(&cfg.NVEMServers, fc.NVEMServers)
	setIfPosF(&cfg.NVEMDelay, fc.NVEMDelayMS)

	if err := fc.workload(&cfg); err != nil {
		return cfg, err
	}
	if fc.Workload.Arrival != nil {
		spec, err := fc.Workload.Arrival.assemble()
		if err != nil {
			return cfg, err
		}
		cfg.Arrival = spec
	}

	cfg.CCModes = make([]tpsim.Granularity, len(cfg.Partitions))
	for i := range cfg.CCModes {
		mode := "page"
		if i < len(fc.CCModes) {
			mode = fc.CCModes[i]
		}
		switch mode {
		case "none":
			cfg.CCModes[i] = tpsim.NoCC
		case "page":
			cfg.CCModes[i] = tpsim.PageLevel
		case "object":
			cfg.CCModes[i] = tpsim.ObjectLevel
		default:
			return cfg, fmt.Errorf("unknown cc mode %q", mode)
		}
	}

	for _, u := range fc.DiskUnits {
		du := tpsim.DiskUnitConfig{
			Name:            u.Name,
			NumControllers:  u.NumControllers,
			ContrDelay:      u.ContrDelayMS,
			TransDelay:      u.TransDelayMS,
			NumDisks:        u.NumDisks,
			DiskDelay:       u.DiskDelayMS,
			CacheSize:       u.CacheSize,
			WriteBufferOnly: u.WriteBufferOnly,
		}
		switch u.Type {
		case "regular", "":
			du.Type = tpsim.Regular
		case "volatile-cache":
			du.Type = tpsim.VolatileCache
		case "nv-cache":
			du.Type = tpsim.NVCache
		case "ssd":
			du.Type = tpsim.SSD
		default:
			return cfg, fmt.Errorf("unknown disk unit type %q", u.Type)
		}
		cfg.DiskUnits = append(cfg.DiskUnits, du)
	}

	logging := true
	if fc.Buffer.Logging != nil {
		logging = *fc.Buffer.Logging
	}
	cfg.Buffer = tpsim.BufferConfig{
		BufferSize:           fc.Buffer.BufferSize,
		Force:                fc.Buffer.Force,
		Logging:              logging,
		CheckpointIntervalMS: fc.Buffer.CheckpointIntervalMS,
		NVEMCacheSize:        fc.Buffer.NVEMCacheSize,
		NVEMWriteBufferSize:  fc.Buffer.NVEMWriteBufferSize,
		Log: tpsim.LogAlloc{
			NVEMResident:    fc.Buffer.Log.NVEMResident,
			DiskUnit:        fc.Buffer.Log.DiskUnit,
			NVEMWriteBuffer: fc.Buffer.Log.NVEMWriteBuffer,
		},
	}
	if len(fc.Buffer.Partitions) != len(cfg.Partitions) {
		return cfg, fmt.Errorf("buffer.partitions has %d entries for %d workload partitions",
			len(fc.Buffer.Partitions), len(cfg.Partitions))
	}
	for _, p := range fc.Buffer.Partitions {
		alloc := tpsim.PartitionAlloc{
			MMResident:      p.MMResident,
			NVEMResident:    p.NVEMResident,
			DiskUnit:        p.DiskUnit,
			SyncAccess:      p.SyncAccess,
			NVEMCache:       p.NVEMCache,
			NVEMWriteBuffer: p.NVEMWriteBuffer,
		}
		switch p.NVEMCacheMode {
		case "", "all":
			alloc.NVEMCacheMode = tpsim.MigrateAll
		case "modified":
			alloc.NVEMCacheMode = tpsim.MigrateModified
		case "unmodified":
			alloc.NVEMCacheMode = tpsim.MigrateUnmodified
		default:
			return cfg, fmt.Errorf("unknown nvemCacheMode %q", p.NVEMCacheMode)
		}
		cfg.Buffer.Partitions = append(cfg.Buffer.Partitions, alloc)
	}
	return cfg, nil
}

func (fc *fileConfig) workload(cfg *tpsim.Config) error {
	w := fc.Workload
	var skew tpsim.AccessSpec
	if w.Access != nil {
		var err error
		skew, err = w.Access.assemble()
		if err != nil {
			return err
		}
		switch w.Kind {
		case "debitcredit", "", "classes":
		default:
			return fmt.Errorf("workload.access is not supported for kind %q", w.Kind)
		}
	}
	switch w.Kind {
	case "debitcredit", "":
		dcc := tpsim.DefaultDebitCreditConfig(w.Rate)
		if w.Branches > 0 {
			dcc.NumBranches = w.Branches
		}
		if w.Accounts > 0 {
			dcc.NumAccounts = w.Accounts
		}
		if w.Uncluster {
			dcc.ClusterBranchTeller = false
		}
		dcc.AccountSkew = skew
		gen, err := tpsim.NewDebitCredit(dcc)
		if err != nil {
			return err
		}
		cfg.Partitions = gen.Partitions()
		cfg.Generator = gen
	case "classes":
		if len(w.Classes) == 0 {
			return fmt.Errorf("workload.kind classes requires workload.classes")
		}
		classes := make([]tpsim.ClassSpec, len(w.Classes))
		for i, c := range w.Classes {
			classes[i] = tpsim.ClassSpec{
				Name:       c.Name,
				Rate:       c.Rate,
				Size:       c.Size,
				WriteProb:  c.WriteProb,
				Sequential: c.Sequential,
				VarSize:    c.VarSize,
			}
		}
		m, err := tpsim.ClassMixModel(classes, skew)
		if err != nil {
			return err
		}
		gen, err := tpsim.NewSynthetic(m)
		if err != nil {
			return err
		}
		cfg.Partitions = m.Partitions
		cfg.Generator = gen
	case "trace":
		f, err := os.Open(w.TraceFile)
		if err != nil {
			return err
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		var src *tpsim.TraceSource
		if len(w.PerTypeRates) > 0 {
			src, err = tpsim.NewTraceSourceByType(tr, w.PerTypeRates)
		} else {
			src, err = tpsim.NewTraceSource(tr, w.Rate)
		}
		if err != nil {
			return err
		}
		cfg.Partitions = src.Partitions()
		cfg.Generator = src
	case "synthetic":
		if w.Synthetic == nil {
			return fmt.Errorf("workload.kind synthetic requires workload.synthetic")
		}
		for i := range w.Synthetic.TxTypes {
			if w.Synthetic.TxTypes[i].ArrivalRate == 0 {
				w.Synthetic.TxTypes[i].ArrivalRate = w.Rate
			}
		}
		gen, err := tpsim.NewSynthetic(w.Synthetic)
		if err != nil {
			return err
		}
		cfg.Partitions = w.Synthetic.Partitions
		cfg.Generator = gen
	default:
		return fmt.Errorf("unknown workload kind %q", w.Kind)
	}
	return nil
}

func setIfPos(dst *int, v int) {
	if v > 0 {
		*dst = v
	}
}

func setIfPosF(dst *float64, v float64) {
	if v > 0 {
		*dst = v
	}
}
