package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd executes run() capturing both streams.
func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunExamples(t *testing.T) {
	code, out, _ := runCmd(t, "-example")
	if code != 0 || !strings.Contains(out, `"workload"`) {
		t.Fatalf("-example: code=%d out=%q", code, out)
	}
	code, out, _ = runCmd(t, "-example-cluster")
	if code != 0 || !strings.Contains(out, `"cluster"`) {
		t.Fatalf("-example-cluster: code=%d out=%q", code, out)
	}
	code, out, _ = runCmd(t, "-example-workload")
	if code != 0 || !strings.Contains(out, `"arrival"`) || !strings.Contains(out, `"admission"`) {
		t.Fatalf("-example-workload: code=%d out=%q", code, out)
	}
}

func TestRunUsageAndErrors(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Fatalf("no args: code=%d, want 2", code)
	}
	if code, _, stderr := runCmd(t, "-config", "/nonexistent.json"); code != 1 || stderr == "" {
		t.Fatalf("missing file: code=%d stderr=%q", code, stderr)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"bogus": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCmd(t, "-config", bad); code != 1 {
		t.Fatalf("bad config: code=%d, want 1", code)
	}
}

// TestRunClusterEndToEnd drives the real CLI path over a small cluster
// file, checking the report carries the cluster's recovery lines.
func TestRunClusterEndToEnd(t *testing.T) {
	cfg := `{
	  "warmupMS": 1000, "measureMS": 3000,
	  "workload": {"kind": "debitcredit", "rate": 100},
	  "diskUnits": [
	    {"name": "db", "numControllers": 4, "contrDelayMS": 1.0,
	     "transDelayMS": 0.4, "numDisks": 32, "diskDelayMS": 15},
	    {"name": "log", "numControllers": 2, "contrDelayMS": 1.0,
	     "transDelayMS": 0.4, "numDisks": 8, "diskDelayMS": 5}
	  ],
	  "buffer": {
	    "bufferSize": 500,
	    "checkpointIntervalMS": 1000,
	    "partitions": [{"diskUnit": 0}, {"diskUnit": 0}, {"diskUnit": 0}],
	    "log": {"nvemResident": true}
	  },
	  "cluster": {
	    "numNodes": 2,
	    "globalLocks": true,
	    "timelineBucketMS": 1000,
	    "failure": {"node": 1, "crashAtMS": 1000, "rebootMS": 200}
	  }
	}`
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCmd(t, "-config", path)
	if code != 0 {
		t.Fatalf("code=%d stderr=%s", code, stderr)
	}
	for _, want := range []string{"node 0:", "node 1:", "recovery:", "commit timeline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report misses %q:\n%s", want, out)
		}
	}
}

// TestRunPDESSharedNVEMEndToEnd drives the CLI over a parallel cluster
// with a shared NVEM cache: legal with a positive nvemAccessDelayMS, and
// rejected with a clear error when the delay is left at zero.
func TestRunPDESSharedNVEMEndToEnd(t *testing.T) {
	build := func(delayLine string) string {
		return `{
	  "warmupMS": 500, "measureMS": 1500,
	  "workload": {"kind": "debitcredit", "rate": 200},
	  "diskUnits": [
	    {"name": "db", "numControllers": 4, "contrDelayMS": 1.0,
	     "transDelayMS": 0.4, "numDisks": 32, "diskDelayMS": 15},
	    {"name": "log", "numControllers": 2, "contrDelayMS": 1.0,
	     "transDelayMS": 0.4, "numDisks": 8, "diskDelayMS": 5}
	  ],
	  "buffer": {
	    "bufferSize": 500,
	    "nvemCacheSize": 1000,
	    "partitions": [{"diskUnit": 0, "nvemCache": true},
	                   {"diskUnit": 0, "nvemCache": true},
	                   {"diskUnit": 0, "nvemCache": true}],
	    "log": {"nvemResident": true}
	  },
	  "cluster": {
	    "numNodes": 2,
	    "globalLocks": true,
	    "sharedNVEMCache": true,` + delayLine + `
	    "pdes": {"workers": 2}
	  }
	}`
	}
	path := filepath.Join(t.TempDir(), "pdes-shared.json")
	if err := os.WriteFile(path, []byte(build(`"nvemAccessDelayMS": 0.15,`)), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCmd(t, "-config", path)
	if code != 0 {
		t.Fatalf("code=%d stderr=%s", code, stderr)
	}
	for _, want := range []string{"node 0:", "node 1:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report misses %q:\n%s", want, out)
		}
	}

	// Same file without the delay: the validation error must name the knob.
	if err := os.WriteFile(path, []byte(build("")), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCmd(t, "-config", path)
	if code != 1 {
		t.Fatalf("zero-delay shared cache under PDES: code=%d, want 1", code)
	}
	if !strings.Contains(stderr, "NVEMAccessDelayMS") {
		t.Fatalf("error does not name the missing knob: %q", stderr)
	}
}
