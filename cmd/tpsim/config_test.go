package main

import (
	"strings"
	"testing"

	tpsim "repro"
)

func TestExampleConfigLoadsAndRuns(t *testing.T) {
	cfg, err := load(strings.NewReader(exampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.WarmupMS = 500
	cfg.MeasureMS = 1500
	res, err := tpsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := load(strings.NewReader(`{"bogus": 1}`))
	if err == nil {
		t.Fatal("unknown field must error")
	}
}

func TestLoadRejectsBadValues(t *testing.T) {
	cases := map[string]string{
		"bad cc":        `{"workload":{"kind":"debitcredit","rate":10},"ccModes":["zebra"],"diskUnits":[{"name":"d","numControllers":1,"contrDelayMS":1,"numDisks":1,"diskDelayMS":15}],"buffer":{"bufferSize":100,"partitions":[{},{},{}],"log":{}}}`,
		"bad unit type": `{"workload":{"kind":"debitcredit","rate":10},"diskUnits":[{"name":"d","type":"floppy","numControllers":1,"contrDelayMS":1,"numDisks":1,"diskDelayMS":15}],"buffer":{"bufferSize":100,"partitions":[{},{},{}],"log":{}}}`,
		"bad wl kind":   `{"workload":{"kind":"quantum","rate":10}}`,
		"bad mode":      `{"workload":{"kind":"debitcredit","rate":10},"diskUnits":[{"name":"d","numControllers":1,"contrDelayMS":1,"numDisks":1,"diskDelayMS":15}],"buffer":{"bufferSize":100,"partitions":[{"nvemCacheMode":"sideways"},{},{}],"log":{}}}`,
		"mismatch":      `{"workload":{"kind":"debitcredit","rate":10},"diskUnits":[{"name":"d","numControllers":1,"contrDelayMS":1,"numDisks":1,"diskDelayMS":15}],"buffer":{"bufferSize":100,"partitions":[{}],"log":{}}}`,
	}
	for name, in := range cases {
		if _, err := load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSyntheticWorkloadFromJSON(t *testing.T) {
	in := `{
	  "workload": {"kind": "synthetic", "rate": 50, "synthetic": {
	    "Partitions": [{"Name": "p", "NumObjects": 1000, "BlockFactor": 10}],
	    "TxTypes": [{"Name": "t", "TxSize": 5, "WriteProb": 0.5, "RefRow": [1]}]
	  }},
	  "ccModes": ["object"],
	  "diskUnits": [{"name": "d", "numControllers": 2, "contrDelayMS": 1, "transDelayMS": 0.4, "numDisks": 8, "diskDelayMS": 15}],
	  "buffer": {"bufferSize": 200, "partitions": [{"diskUnit": 0}], "log": {"diskUnit": 0}}
	}`
	cfg, err := load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.CCModes[0] != tpsim.ObjectLevel {
		t.Fatal("cc mode not applied")
	}
	// Rate filled in from workload.rate.
	_, rate := cfg.Generator.TypeInfo(0)
	if rate != 50 {
		t.Fatalf("rate = %v", rate)
	}
}

func TestTraceWorkloadFromJSON(t *testing.T) {
	// Missing trace file must error cleanly.
	in := `{"workload": {"kind": "trace", "rate": 10, "traceFile": "/nonexistent.trace"}}`
	if _, err := load(strings.NewReader(in)); err == nil {
		t.Fatal("missing trace file must error")
	}
}
