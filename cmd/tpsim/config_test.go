package main

import (
	"strings"
	"testing"

	tpsim "repro"
)

func TestExampleConfigLoadsAndRuns(t *testing.T) {
	cfg, _, err := load(strings.NewReader(exampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.WarmupMS = 500
	cfg.MeasureMS = 1500
	res, err := tpsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, _, err := load(strings.NewReader(`{"bogus": 1}`))
	if err == nil {
		t.Fatal("unknown field must error")
	}
}

func TestLoadRejectsBadValues(t *testing.T) {
	cases := map[string]string{
		"bad cc":        `{"workload":{"kind":"debitcredit","rate":10},"ccModes":["zebra"],"diskUnits":[{"name":"d","numControllers":1,"contrDelayMS":1,"numDisks":1,"diskDelayMS":15}],"buffer":{"bufferSize":100,"partitions":[{},{},{}],"log":{}}}`,
		"bad unit type": `{"workload":{"kind":"debitcredit","rate":10},"diskUnits":[{"name":"d","type":"floppy","numControllers":1,"contrDelayMS":1,"numDisks":1,"diskDelayMS":15}],"buffer":{"bufferSize":100,"partitions":[{},{},{}],"log":{}}}`,
		"bad wl kind":   `{"workload":{"kind":"quantum","rate":10}}`,
		"bad mode":      `{"workload":{"kind":"debitcredit","rate":10},"diskUnits":[{"name":"d","numControllers":1,"contrDelayMS":1,"numDisks":1,"diskDelayMS":15}],"buffer":{"bufferSize":100,"partitions":[{"nvemCacheMode":"sideways"},{},{}],"log":{}}}`,
		"mismatch":      `{"workload":{"kind":"debitcredit","rate":10},"diskUnits":[{"name":"d","numControllers":1,"contrDelayMS":1,"numDisks":1,"diskDelayMS":15}],"buffer":{"bufferSize":100,"partitions":[{}],"log":{}}}`,
	}
	for name, in := range cases {
		if _, _, err := load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSyntheticWorkloadFromJSON(t *testing.T) {
	in := `{
	  "workload": {"kind": "synthetic", "rate": 50, "synthetic": {
	    "Partitions": [{"Name": "p", "NumObjects": 1000, "BlockFactor": 10}],
	    "TxTypes": [{"Name": "t", "TxSize": 5, "WriteProb": 0.5, "RefRow": [1]}]
	  }},
	  "ccModes": ["object"],
	  "diskUnits": [{"name": "d", "numControllers": 2, "contrDelayMS": 1, "transDelayMS": 0.4, "numDisks": 8, "diskDelayMS": 15}],
	  "buffer": {"bufferSize": 200, "partitions": [{"diskUnit": 0}], "log": {"diskUnit": 0}}
	}`
	cfg, _, err := load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.CCModes[0] != tpsim.ObjectLevel {
		t.Fatal("cc mode not applied")
	}
	// Rate filled in from workload.rate.
	_, rate := cfg.Generator.TypeInfo(0)
	if rate != 50 {
		t.Fatalf("rate = %v", rate)
	}
}

func TestTraceWorkloadFromJSON(t *testing.T) {
	// Missing trace file must error cleanly.
	in := `{"workload": {"kind": "trace", "rate": 10, "traceFile": "/nonexistent.trace"}}`
	if _, _, err := load(strings.NewReader(in)); err == nil {
		t.Fatal("missing trace file must error")
	}
}

// TestClusterConfigLoadsAndRuns: the example cluster configuration
// parses into a ClusterConfig — node count, shared cache, locking,
// failure injection — and the run commits on every node, crashes
// node 0 and reports its recovery.
func TestClusterConfigLoadsAndRuns(t *testing.T) {
	base, cluster, err := load(strings.NewReader(exampleClusterConfig))
	if err != nil {
		t.Fatal(err)
	}
	if cluster == nil {
		t.Fatal("no cluster configuration")
	}
	if cluster.NumNodes != 4 || !cluster.SharedNVEMCache || !cluster.GlobalLocks {
		t.Fatalf("cluster shape: %+v", cluster)
	}
	if !cluster.Failure.Enabled || cluster.Failure.Node != 0 || cluster.Failure.CrashAtMS != 4300 {
		t.Fatalf("failure not wired: %+v", cluster.Failure)
	}
	if cluster.TimelineBucketMS != 1000 {
		t.Fatalf("timeline bucket = %v", cluster.TimelineBucketMS)
	}
	if base.Buffer.CheckpointIntervalMS != 2500 {
		t.Fatalf("checkpoint interval = %v", base.Buffer.CheckpointIntervalMS)
	}
	if len(cluster.Generators) != 4 {
		t.Fatalf("%d generators", len(cluster.Generators))
	}
	// The aggregate rate splits evenly over the nodes.
	var rate float64
	for i := 0; i < cluster.Generators[0].NumTypes(); i++ {
		_, r := cluster.Generators[0].TypeInfo(i)
		rate += r
	}
	if rate != 100 {
		t.Fatalf("per-node rate = %v, want 100", rate)
	}
	if err := cluster.Validate(); err != nil {
		t.Fatal(err)
	}

	res, err := tpsim.RunCluster(*cluster)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cluster.Commits == 0 {
		t.Fatal("no commits")
	}
	if res.Cluster.Restart == nil {
		t.Fatal("no restart report despite failure injection")
	}
	if len(res.Cluster.Timeline) == 0 || len(res.Cluster.CrashedTimeline) == 0 {
		t.Fatal("no commit timelines")
	}
	if len(res.Nodes) != 4 {
		t.Fatalf("%d node results", len(res.Nodes))
	}
}

// TestWorkloadExampleLoadsAndRuns: the spike-crash example parses — spike
// arrival process, crash-aligned failure, admission controller — and a
// shortened run sheds rerouted arrivals while the survivors keep
// committing.
func TestWorkloadExampleLoadsAndRuns(t *testing.T) {
	base, cluster, err := load(strings.NewReader(exampleWorkloadConfig))
	if err != nil {
		t.Fatal(err)
	}
	if cluster == nil {
		t.Fatal("no cluster configuration")
	}
	if base.Arrival.Kind != tpsim.ArrivalSpike {
		t.Fatalf("arrival kind = %v, want spike", base.Arrival.Kind)
	}
	if base.Arrival.SpikeFactor != 5 || base.Arrival.SpikeAtMS != 3000 || base.Arrival.SpikeDurMS != 5000 {
		t.Fatalf("spike parameters not wired: %+v", base.Arrival)
	}
	if base.Arrival.SpikeAtMS != cluster.Failure.CrashAtMS {
		t.Fatalf("example spike (%v) not aligned with the crash (%v)",
			base.Arrival.SpikeAtMS, cluster.Failure.CrashAtMS)
	}
	if !cluster.Admission.Enabled || cluster.Admission.QueueFactor != 0.25 {
		t.Fatalf("admission not wired: %+v", cluster.Admission)
	}
	res, err := tpsim.RunCluster(*cluster)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cluster.Commits == 0 {
		t.Fatal("no commits")
	}
	if res.Cluster.Shed == 0 {
		t.Fatal("spike-crash example shed nothing")
	}
	if res.Cluster.SurvivorRespMean == 0 {
		t.Fatal("no survivor response time")
	}
	if !strings.Contains(res.Cluster.Report(), "admission control:") {
		t.Fatalf("report missing admission line:\n%s", res.Cluster.Report())
	}
}

// TestArrivalConfigFromJSON covers the arrival-section parsing for every
// kind plus its error paths.
func TestArrivalConfigFromJSON(t *testing.T) {
	prefix := `{"workload":{"kind":"debitcredit","rate":40,"arrival":`
	suffix := `},
	  "diskUnits":[{"name":"d","numControllers":1,"contrDelayMS":1,"numDisks":4,"diskDelayMS":15}],
	  "buffer":{"bufferSize":100,"partitions":[{},{},{}],"log":{}}}`
	good := map[string]tpsim.ArrivalKind{
		`{"kind":"poisson"}`: tpsim.ArrivalPoisson,
		`{}`:                 tpsim.ArrivalPoisson,
		`{"kind":"mmpp","burstFactor":4,"burstFrac":0.1}`:     tpsim.ArrivalMMPP,
		`{"kind":"diurnal","amplitude":0.8,"periodMS":10000}`: tpsim.ArrivalDiurnal,
		`{"kind":"spike","spikeFactor":3,"spikeDurMS":2000}`:  tpsim.ArrivalSpike,
	}
	for in, kind := range good {
		cfg, _, err := load(strings.NewReader(prefix + in + suffix))
		if err != nil {
			t.Errorf("%s: %v", in, err)
			continue
		}
		if cfg.Arrival.Kind != kind {
			t.Errorf("%s: kind %v, want %v", in, cfg.Arrival.Kind, kind)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", in, err)
		}
	}
	bad := []string{
		`{"kind":"fractal"}`,
		`{"kind":"mmpp","burstFactor":0.5,"burstFrac":0.1}`,
		`{"kind":"mmpp","burstFactor":20,"burstFrac":0.1}`,
		`{"kind":"diurnal","amplitude":1.5,"periodMS":1000}`,
		`{"kind":"spike","spikeFactor":3}`,
	}
	for _, in := range bad {
		if _, _, err := load(strings.NewReader(prefix + in + suffix)); err == nil {
			t.Errorf("%s: expected error", in)
		}
	}
}

// TestClusterConfigRejectsBadValues covers cluster-section validation.
func TestClusterConfigRejectsBadValues(t *testing.T) {
	min := `"workload":{"kind":"debitcredit","rate":40},
	  "diskUnits":[{"name":"d","numControllers":1,"contrDelayMS":1,"numDisks":4,"diskDelayMS":15}],
	  "buffer":{"bufferSize":100,"partitions":[{},{},{}],"log":{}}`
	cases := map[string]string{
		"zero nodes":   `{` + min + `, "cluster": {"numNodes": 0}}`,
		"bad failure":  `{` + min + `, "cluster": {"numNodes": 2, "failure": {"node": 9, "crashAtMS": 100}}}`,
		"shared nvem0": `{` + min + `, "cluster": {"numNodes": 2, "sharedNVEMCache": true}}`,
	}
	for name, in := range cases {
		_, cluster, err := load(strings.NewReader(in))
		if err != nil {
			continue // rejected at parse/assemble time: fine
		}
		if cluster == nil {
			t.Errorf("%s: no cluster parsed", name)
			continue
		}
		if err := cluster.Validate(); err == nil {
			t.Errorf("%s: Validate passed", name)
		}
	}
}
