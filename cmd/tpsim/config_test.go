package main

import (
	"strings"
	"testing"

	tpsim "repro"
)

func TestExampleConfigLoadsAndRuns(t *testing.T) {
	cfg, _, err := load(strings.NewReader(exampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.WarmupMS = 500
	cfg.MeasureMS = 1500
	res, err := tpsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, _, err := load(strings.NewReader(`{"bogus": 1}`))
	if err == nil {
		t.Fatal("unknown field must error")
	}
}

func TestLoadRejectsBadValues(t *testing.T) {
	cases := map[string]string{
		"bad cc":        `{"workload":{"kind":"debitcredit","rate":10},"ccModes":["zebra"],"diskUnits":[{"name":"d","numControllers":1,"contrDelayMS":1,"numDisks":1,"diskDelayMS":15}],"buffer":{"bufferSize":100,"partitions":[{},{},{}],"log":{}}}`,
		"bad unit type": `{"workload":{"kind":"debitcredit","rate":10},"diskUnits":[{"name":"d","type":"floppy","numControllers":1,"contrDelayMS":1,"numDisks":1,"diskDelayMS":15}],"buffer":{"bufferSize":100,"partitions":[{},{},{}],"log":{}}}`,
		"bad wl kind":   `{"workload":{"kind":"quantum","rate":10}}`,
		"bad mode":      `{"workload":{"kind":"debitcredit","rate":10},"diskUnits":[{"name":"d","numControllers":1,"contrDelayMS":1,"numDisks":1,"diskDelayMS":15}],"buffer":{"bufferSize":100,"partitions":[{"nvemCacheMode":"sideways"},{},{}],"log":{}}}`,
		"mismatch":      `{"workload":{"kind":"debitcredit","rate":10},"diskUnits":[{"name":"d","numControllers":1,"contrDelayMS":1,"numDisks":1,"diskDelayMS":15}],"buffer":{"bufferSize":100,"partitions":[{}],"log":{}}}`,
	}
	for name, in := range cases {
		if _, _, err := load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSyntheticWorkloadFromJSON(t *testing.T) {
	in := `{
	  "workload": {"kind": "synthetic", "rate": 50, "synthetic": {
	    "Partitions": [{"Name": "p", "NumObjects": 1000, "BlockFactor": 10}],
	    "TxTypes": [{"Name": "t", "TxSize": 5, "WriteProb": 0.5, "RefRow": [1]}]
	  }},
	  "ccModes": ["object"],
	  "diskUnits": [{"name": "d", "numControllers": 2, "contrDelayMS": 1, "transDelayMS": 0.4, "numDisks": 8, "diskDelayMS": 15}],
	  "buffer": {"bufferSize": 200, "partitions": [{"diskUnit": 0}], "log": {"diskUnit": 0}}
	}`
	cfg, _, err := load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.CCModes[0] != tpsim.ObjectLevel {
		t.Fatal("cc mode not applied")
	}
	// Rate filled in from workload.rate.
	_, rate := cfg.Generator.TypeInfo(0)
	if rate != 50 {
		t.Fatalf("rate = %v", rate)
	}
}

func TestTraceWorkloadFromJSON(t *testing.T) {
	// Missing trace file must error cleanly.
	in := `{"workload": {"kind": "trace", "rate": 10, "traceFile": "/nonexistent.trace"}}`
	if _, _, err := load(strings.NewReader(in)); err == nil {
		t.Fatal("missing trace file must error")
	}
}

// TestClusterConfigLoadsAndRuns: the example cluster configuration
// parses into a ClusterConfig — node count, shared cache, locking,
// failure injection — and the run commits on every node, crashes
// node 0 and reports its recovery.
func TestClusterConfigLoadsAndRuns(t *testing.T) {
	base, cluster, err := load(strings.NewReader(exampleClusterConfig))
	if err != nil {
		t.Fatal(err)
	}
	if cluster == nil {
		t.Fatal("no cluster configuration")
	}
	if cluster.NumNodes != 4 || !cluster.SharedNVEMCache || !cluster.GlobalLocks {
		t.Fatalf("cluster shape: %+v", cluster)
	}
	if !cluster.Failure.Enabled || cluster.Failure.Node != 0 || cluster.Failure.CrashAtMS != 4300 {
		t.Fatalf("failure not wired: %+v", cluster.Failure)
	}
	if cluster.TimelineBucketMS != 1000 {
		t.Fatalf("timeline bucket = %v", cluster.TimelineBucketMS)
	}
	if base.Buffer.CheckpointIntervalMS != 2500 {
		t.Fatalf("checkpoint interval = %v", base.Buffer.CheckpointIntervalMS)
	}
	if len(cluster.Generators) != 4 {
		t.Fatalf("%d generators", len(cluster.Generators))
	}
	// The aggregate rate splits evenly over the nodes.
	var rate float64
	for i := 0; i < cluster.Generators[0].NumTypes(); i++ {
		_, r := cluster.Generators[0].TypeInfo(i)
		rate += r
	}
	if rate != 100 {
		t.Fatalf("per-node rate = %v, want 100", rate)
	}
	if err := cluster.Validate(); err != nil {
		t.Fatal(err)
	}

	res, err := tpsim.RunCluster(*cluster)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cluster.Commits == 0 {
		t.Fatal("no commits")
	}
	if res.Cluster.Restart == nil {
		t.Fatal("no restart report despite failure injection")
	}
	if len(res.Cluster.Timeline) == 0 || len(res.Cluster.CrashedTimeline) == 0 {
		t.Fatal("no commit timelines")
	}
	if len(res.Nodes) != 4 {
		t.Fatalf("%d node results", len(res.Nodes))
	}
}

// TestClusterConfigRejectsBadValues covers cluster-section validation.
func TestClusterConfigRejectsBadValues(t *testing.T) {
	min := `"workload":{"kind":"debitcredit","rate":40},
	  "diskUnits":[{"name":"d","numControllers":1,"contrDelayMS":1,"numDisks":4,"diskDelayMS":15}],
	  "buffer":{"bufferSize":100,"partitions":[{},{},{}],"log":{}}`
	cases := map[string]string{
		"zero nodes":   `{` + min + `, "cluster": {"numNodes": 0}}`,
		"bad failure":  `{` + min + `, "cluster": {"numNodes": 2, "failure": {"node": 9, "crashAtMS": 100}}}`,
		"shared nvem0": `{` + min + `, "cluster": {"numNodes": 2, "sharedNVEMCache": true}}`,
	}
	for name, in := range cases {
		_, cluster, err := load(strings.NewReader(in))
		if err != nil {
			continue // rejected at parse/assemble time: fine
		}
		if cluster == nil {
			t.Errorf("%s: no cluster parsed", name)
			continue
		}
		if err := cluster.Validate(); err == nil {
			t.Errorf("%s: Validate passed", name)
		}
	}
}
