// Command tpsim runs one simulation described by a JSON configuration file
// and prints the full result report.
//
// Usage:
//
//	tpsim -config run.json
//	tpsim -example            # print a commented example configuration
//
// The JSON schema mirrors the engine configuration: CM parameters (Table
// 3.3 of the paper), disk units (Table 3.4), buffer-manager allocation
// (Fig 3.2) and a workload selector (debitcredit / trace / synthetic).
package main

import (
	"flag"
	"fmt"
	"os"

	tpsim "repro"
)

const exampleConfig = `{
  "seed": 1,
  "warmupMS": 8000,
  "measureMS": 20000,
  "workload": {"kind": "debitcredit", "rate": 200},
  "ccModes": ["page", "page", "none"],
  "diskUnits": [
    {"name": "db", "type": "regular", "numControllers": 8,
     "contrDelayMS": 1.0, "transDelayMS": 0.4, "numDisks": 64, "diskDelayMS": 15},
    {"name": "log", "type": "nv-cache", "numControllers": 2,
     "contrDelayMS": 1.0, "transDelayMS": 0.4, "numDisks": 4, "diskDelayMS": 5,
     "cacheSize": 500, "writeBufferOnly": true}
  ],
  "buffer": {
    "bufferSize": 2000,
    "partitions": [{"diskUnit": 0}, {"diskUnit": 0}, {"diskUnit": 0}],
    "log": {"diskUnit": 1}
  }
}`

func main() {
	path := flag.String("config", "", "JSON configuration file")
	example := flag.Bool("example", false, "print an example configuration and exit")
	flag.Parse()

	if *example {
		fmt.Println(exampleConfig)
		return
	}
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*path)
	if err != nil {
		fatal(err)
	}
	cfg, err := load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	res, err := tpsim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Report())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpsim:", err)
	os.Exit(1)
}
