// Command tpsim runs one simulation described by a JSON configuration file
// and prints the full result report.
//
// Usage:
//
//	tpsim -config run.json
//	tpsim -example            # print an example single-node configuration
//	tpsim -example-cluster    # print an example multi-node configuration
//	tpsim -example-workload   # print an example spike-crash workload configuration
//	tpsim -example-closedloop # print an example closed-loop terminals configuration
//	tpsim -example-skew       # print an example skewed multi-class configuration
//
// The JSON schema mirrors the engine configuration: CM parameters (Table
// 3.3 of the paper), disk units (Table 3.4), buffer-manager allocation
// (Fig 3.2, including the fuzzy-checkpoint interval) and a workload
// selector (debitcredit / trace / synthetic / classes). A
// "workload.arrival" section swaps the arrival process (poisson / mmpp /
// diurnal / spike / closedloop / replay); a "workload.access" section
// skews the object draws (uniform / zipf / hotspot). Workload kind
// "classes" runs a multi-class mix with per-class accounting in the
// report. A "cluster" section switches to a multi-node data-sharing run —
// node count, shared vs. private NVEM cache, global vs. local locking,
// optional crash injection with redo recovery, and the recovery-aware
// admission controller ("cluster.admission") that sheds rerouted arrivals
// above a survivor-capacity threshold.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	tpsim "repro"
)

const exampleConfig = `{
  "seed": 1,
  "warmupMS": 8000,
  "measureMS": 20000,
  "workload": {"kind": "debitcredit", "rate": 200},
  "ccModes": ["page", "page", "none"],
  "diskUnits": [
    {"name": "db", "type": "regular", "numControllers": 8,
     "contrDelayMS": 1.0, "transDelayMS": 0.4, "numDisks": 64, "diskDelayMS": 15},
    {"name": "log", "type": "nv-cache", "numControllers": 2,
     "contrDelayMS": 1.0, "transDelayMS": 0.4, "numDisks": 4, "diskDelayMS": 5,
     "cacheSize": 500, "writeBufferOnly": true}
  ],
  "buffer": {
    "bufferSize": 2000,
    "partitions": [{"diskUnit": 0}, {"diskUnit": 0}, {"diskUnit": 0}],
    "log": {"diskUnit": 1}
  }
}`

const exampleClusterConfig = `{
  "seed": 1,
  "warmupMS": 6000,
  "measureMS": 12000,
  "workload": {"kind": "debitcredit", "rate": 400},
  "ccModes": ["page", "page", "none"],
  "nvemServers": 1,
  "nvemDelayMS": 0.05,
  "diskUnits": [
    {"name": "db", "type": "regular", "numControllers": 12,
     "contrDelayMS": 1.0, "transDelayMS": 0.4, "numDisks": 96, "diskDelayMS": 15},
    {"name": "log", "type": "regular", "numControllers": 2,
     "contrDelayMS": 1.0, "transDelayMS": 0.4, "numDisks": 8, "diskDelayMS": 5}
  ],
  "buffer": {
    "bufferSize": 500,
    "checkpointIntervalMS": 2500,
    "nvemCacheSize": 2000,
    "partitions": [{"nvemCache": true}, {"nvemCache": true}, {"nvemCache": true}],
    "log": {"nvemResident": true}
  },
  "cluster": {
    "numNodes": 4,
    "sharedNVEMCache": true,
    "globalLocks": true,
    "timelineBucketMS": 1000,
    "failure": {"node": 0, "crashAtMS": 4300, "rebootMS": 500}
  }
}`

// exampleWorkloadConfig is the spike-crash scenario: a 5× load spike lands
// on a 4-node cluster at the same instant node 0 crashes, and the admission
// controller sheds rerouted overflow above a quarter-MPL survivor queue.
// Swap the arrival section for {"kind": "mmpp", "burstFactor": 4,
// "burstFrac": 0.1} or {"kind": "diurnal", "amplitude": 0.8, "periodMS":
// 10000} for bursty or day/night load.
const exampleWorkloadConfig = `{
  "seed": 1,
  "warmupMS": 6000,
  "measureMS": 12000,
  "workload": {
    "kind": "debitcredit",
    "rate": 400,
    "arrival": {"kind": "spike", "spikeFactor": 5, "spikeAtMS": 3000, "spikeDurMS": 5000}
  },
  "ccModes": ["page", "page", "none"],
  "nvemServers": 1,
  "nvemDelayMS": 0.05,
  "diskUnits": [
    {"name": "db", "type": "regular", "numControllers": 12,
     "contrDelayMS": 1.0, "transDelayMS": 0.4, "numDisks": 96, "diskDelayMS": 15},
    {"name": "log", "type": "regular", "numControllers": 2,
     "contrDelayMS": 1.0, "transDelayMS": 0.4, "numDisks": 8, "diskDelayMS": 5}
  ],
  "buffer": {
    "bufferSize": 500,
    "checkpointIntervalMS": 2600,
    "nvemCacheSize": 2000,
    "partitions": [{"nvemCache": true}, {"nvemCache": true}, {"nvemCache": true}],
    "log": {"nvemResident": true}
  },
  "cluster": {
    "numNodes": 4,
    "sharedNVEMCache": true,
    "globalLocks": true,
    "timelineBucketMS": 1000,
    "failure": {"node": 0, "crashAtMS": 3000, "rebootMS": 500},
    "admission": {"queueFactor": 0.25}
  }
}`

// exampleClosedLoopConfig replaces the open Poisson stream with 120
// emulated terminals cycling think -> submit -> wait; the workload rate is
// ignored and throughput follows N/(Z+R). The report gains a "closed loop:"
// line with the fraction of terminals stuck waiting for an MPL slot — the
// closed-loop saturation signal.
const exampleClosedLoopConfig = `{
  "seed": 1,
  "warmupMS": 6000,
  "measureMS": 12000,
  "mpl": 50,
  "workload": {
    "kind": "debitcredit",
    "arrival": {"kind": "closedloop", "terminals": 120, "thinkMS": 200}
  },
  "ccModes": ["page", "page", "none"],
  "diskUnits": [
    {"name": "db", "type": "regular", "numControllers": 8,
     "contrDelayMS": 1.0, "transDelayMS": 0.4, "numDisks": 64, "diskDelayMS": 15},
    {"name": "log", "type": "regular", "numControllers": 2,
     "contrDelayMS": 1.0, "transDelayMS": 0.4, "numDisks": 4, "diskDelayMS": 5}
  ],
  "buffer": {
    "bufferSize": 2000,
    "partitions": [{"diskUnit": 0}, {"diskUnit": 0}, {"diskUnit": 0}],
    "log": {"diskUnit": 1}
  }
}`

// exampleSkewConfig runs the three-class mix (short updates, read-mostly
// queries, batch scans) with a 90/1 hot-spot skew on the CUSTOMER draws;
// the report carries one accounting line per class.
const exampleSkewConfig = `{
  "seed": 1,
  "warmupMS": 6000,
  "measureMS": 12000,
  "workload": {
    "kind": "classes",
    "access": {"kind": "hotspot", "hotAccessFrac": 0.9, "hotDataFrac": 0.01},
    "classes": [
      {"name": "short-update", "rate": 30, "size": 6, "writeProb": 0.8},
      {"name": "read-mostly", "rate": 8, "size": 24, "writeProb": 0.02, "varSize": true},
      {"name": "batch-scan", "rate": 0.5, "size": 400, "sequential": true}
    ]
  },
  "ccModes": ["page", "page"],
  "diskUnits": [
    {"name": "db", "type": "regular", "numControllers": 12,
     "contrDelayMS": 1.0, "transDelayMS": 0.4, "numDisks": 96, "diskDelayMS": 15},
    {"name": "log", "type": "regular", "numControllers": 2,
     "contrDelayMS": 1.0, "transDelayMS": 0.4, "numDisks": 8, "diskDelayMS": 5}
  ],
  "buffer": {
    "bufferSize": 2000,
    "partitions": [{"diskUnit": 0}, {"diskUnit": 0}],
    "log": {"diskUnit": 1}
  }
}`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against the given argument list and streams;
// it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tpsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	path := fs.String("config", "", "JSON configuration file")
	example := fs.Bool("example", false, "print an example single-node configuration and exit")
	exampleCluster := fs.Bool("example-cluster", false, "print an example multi-node configuration and exit")
	exampleWorkload := fs.Bool("example-workload", false, "print an example spike-crash workload configuration and exit")
	exampleClosedLoop := fs.Bool("example-closedloop", false, "print an example closed-loop terminals configuration and exit")
	exampleSkew := fs.Bool("example-skew", false, "print an example skewed multi-class configuration and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	switch {
	case *example:
		fmt.Fprintln(stdout, exampleConfig)
		return 0
	case *exampleCluster:
		fmt.Fprintln(stdout, exampleClusterConfig)
		return 0
	case *exampleWorkload:
		fmt.Fprintln(stdout, exampleWorkloadConfig)
		return 0
	case *exampleClosedLoop:
		fmt.Fprintln(stdout, exampleClosedLoopConfig)
		return 0
	case *exampleSkew:
		fmt.Fprintln(stdout, exampleSkewConfig)
		return 0
	case *path == "":
		fs.Usage()
		return 2
	}
	f, err := os.Open(*path)
	if err != nil {
		return fatal(stderr, err)
	}
	cfg, cluster, err := load(f)
	f.Close()
	if err != nil {
		return fatal(stderr, err)
	}
	if cluster != nil {
		res, err := tpsim.RunCluster(*cluster)
		if err != nil {
			return fatal(stderr, err)
		}
		fmt.Fprint(stdout, res.Report())
		return 0
	}
	res, err := tpsim.Run(cfg)
	if err != nil {
		return fatal(stderr, err)
	}
	fmt.Fprint(stdout, res.Report())
	return 0
}

func fatal(w io.Writer, err error) int {
	fmt.Fprintln(w, "tpsim:", err)
	return 1
}
