package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeConfig drops a config file into a fresh temp dir and returns its path.
func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const e2eDevices = `
  "diskUnits": [
    {"name": "db", "numControllers": 4, "contrDelayMS": 1.0,
     "transDelayMS": 0.4, "numDisks": 32, "diskDelayMS": 15},
    {"name": "log", "numControllers": 2, "contrDelayMS": 1.0,
     "transDelayMS": 0.4, "numDisks": 8, "diskDelayMS": 5}
  ]`

// TestRunWorkloadExamples checks the new example flags emit the sections the
// doc comment advertises.
func TestRunWorkloadExamples(t *testing.T) {
	code, out, _ := runCmd(t, "-example-closedloop")
	if code != 0 || !strings.Contains(out, `"closedloop"`) || !strings.Contains(out, `"terminals"`) {
		t.Fatalf("-example-closedloop: code=%d out=%q", code, out)
	}
	code, out, _ = runCmd(t, "-example-skew")
	if code != 0 || !strings.Contains(out, `"access"`) || !strings.Contains(out, `"classes"`) {
		t.Fatalf("-example-skew: code=%d out=%q", code, out)
	}
}

// TestRunClosedLoopEndToEnd drives the CLI over a closed-loop terminals
// file and checks the report carries the closed-loop accounting line.
func TestRunClosedLoopEndToEnd(t *testing.T) {
	cfg := `{
	  "warmupMS": 1000, "measureMS": 3000, "mpl": 20,
	  "workload": {
	    "kind": "debitcredit",
	    "arrival": {"kind": "closedloop", "terminals": 40, "thinkMS": 100}
	  },` + e2eDevices + `,
	  "buffer": {
	    "bufferSize": 500,
	    "partitions": [{"diskUnit": 0}, {"diskUnit": 0}, {"diskUnit": 0}],
	    "log": {"diskUnit": 1}
	  }
	}`
	code, out, stderr := runCmd(t, "-config", writeConfig(t, cfg))
	if code != 0 {
		t.Fatalf("code=%d stderr=%s", code, stderr)
	}
	for _, want := range []string{"closed loop:", "40 terminals", "ms think"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report misses %q:\n%s", want, out)
		}
	}
	// A closed loop has no open-loop rate clock: offered load reads zero.
	if !strings.Contains(out, "offered load:      0.0 TPS") {
		t.Fatalf("closed-loop report should show a zero offered rate:\n%s", out)
	}
}

// TestRunClassesEndToEnd drives the CLI over a skewed multi-class file and
// checks one accounting line per class shows up.
func TestRunClassesEndToEnd(t *testing.T) {
	cfg := `{
	  "warmupMS": 1000, "measureMS": 3000,
	  "workload": {
	    "kind": "classes",
	    "access": {"kind": "zipf", "theta": 0.8},
	    "classes": [
	      {"name": "short-update", "rate": 20, "size": 6, "writeProb": 0.8},
	      {"name": "batch-scan", "rate": 0.5, "size": 400, "sequential": true}
	    ]
	  },
	  "ccModes": ["page", "page"],` + e2eDevices + `,
	  "buffer": {
	    "bufferSize": 500,
	    "partitions": [{"diskUnit": 0}, {"diskUnit": 0}],
	    "log": {"diskUnit": 1}
	  }
	}`
	code, out, stderr := runCmd(t, "-config", writeConfig(t, cfg))
	if code != 0 {
		t.Fatalf("code=%d stderr=%s", code, stderr)
	}
	for _, want := range []string{"class short-update", "class batch-scan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report misses %q:\n%s", want, out)
		}
	}
}

// TestRunSkewedDebitCredit checks workload.access reaches the Debit-Credit
// account draws: a hot-spot run must differ from a uniform one while staying
// deterministic for a fixed seed.
func TestRunSkewedDebitCredit(t *testing.T) {
	base := `{
	  "seed": 7, "warmupMS": 1000, "measureMS": 3000,
	  "workload": {"kind": "debitcredit", "rate": 100%s},` + e2eDevices + `,
	  "buffer": {
	    "bufferSize": 500,
	    "partitions": [{"diskUnit": 0}, {"diskUnit": 0}, {"diskUnit": 0}],
	    "log": {"diskUnit": 1}
	  }
	}`
	hot := `,
	    "access": {"kind": "hotspot", "hotAccessFrac": 0.9, "hotDataFrac": 0.001}`
	run := func(access string) string {
		t.Helper()
		code, out, stderr := runCmd(t, "-config", writeConfig(t, strings.Replace(base, "%s", access, 1)))
		if code != 0 {
			t.Fatalf("code=%d stderr=%s", code, stderr)
		}
		return out
	}
	uniform, skewed := run(""), run(hot)
	if uniform == skewed {
		t.Fatal("hot-spot access produced a byte-identical report to uniform: skew not wired through")
	}
	if again := run(hot); again != skewed {
		t.Fatal("skewed run not deterministic for a fixed seed")
	}
}

// TestWorkloadConfigErrors pins the validation paths of the new JSON
// vocabulary.
func TestWorkloadConfigErrors(t *testing.T) {
	cases := []struct {
		name, workload, wantErr string
	}{
		{"bad access kind",
			`{"kind": "debitcredit", "rate": 10, "access": {"kind": "pareto"}}`,
			"unknown access kind"},
		{"zipf without theta",
			`{"kind": "debitcredit", "rate": 10, "access": {"kind": "zipf"}}`,
			"Theta"},
		{"access on trace workload",
			`{"kind": "trace", "rate": 10, "traceFile": "x", "access": {"kind": "zipf", "theta": 0.8}}`,
			"not supported"},
		{"classes without class list",
			`{"kind": "classes", "rate": 10}`,
			"requires workload.classes"},
		{"closedloop without terminals",
			`{"kind": "debitcredit", "arrival": {"kind": "closedloop", "thinkMS": 100}}`,
			"Terminals"},
		{"replay without multipliers",
			`{"kind": "debitcredit", "rate": 10, "arrival": {"kind": "replay", "rateBucketMS": 500}}`,
			"multiplier"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := `{"warmupMS": 1000, "measureMS": 2000, "workload": ` + tc.workload + `,` +
				e2eDevices + `,
			  "buffer": {"bufferSize": 500,
			    "partitions": [{"diskUnit": 0}, {"diskUnit": 0}, {"diskUnit": 0}],
			    "log": {"diskUnit": 1}}}`
			code, _, stderr := runCmd(t, "-config", writeConfig(t, cfg))
			if code != 1 {
				t.Fatalf("code=%d, want 1 (stderr=%q)", code, stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr %q misses %q", stderr, tc.wantErr)
			}
		})
	}
}
