package sim

import "fmt"

// Resource models a pool of identical servers with a FIFO wait queue —
// the building block for CPUs, disk controllers, disk arms and NVEM ports.
// A process acquires one server, holds it for its service time, and releases
// it. Utilization and queueing statistics are integrated over time.
type Resource struct {
	sim      *Sim
	name     string
	capacity int

	busy  int
	queue []waiter // FIFO ring: live entries are queue[qhead:]
	qhead int

	// pend holds waiters whose wake event is already scheduled but has not
	// fired yet; wake (bound once at construction) pops the head. Wake
	// events fire in schedule order, so FIFO over pend matches FIFO over
	// the scheduled events and no per-wake closure is needed.
	pend     []waiter
	pendHead int
	wake     func()

	// Time-integrated statistics.
	lastChange Time
	busyInt    float64 // ∫ busy dt
	queueInt   float64 // ∫ len(queue) dt
	acquires   int64
	waits      int64 // acquires that had to queue
	waitInt    float64
	peakQueue  int // max queue length since creation or ResetPeakQueueLen
}

// waiter is one queued acquisition. A plain Acquire stores fire; a timed
// Use stores (k, dt) instead so the queued path needs no wrapper closure —
// on wake the kernel schedules k at +dt with the release riding the event.
type waiter struct {
	fire  func(waited Time) // Acquire continuation; nil for Use waiters
	k     func()            // Use completion
	dt    Time              // Use service time
	start Time
}

// NewResource creates a resource with the given number of servers.
func (s *Sim) NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	r := &Resource{sim: s, name: name, capacity: capacity, lastChange: s.now}
	r.wake = r.fireWake
	return r
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of servers.
func (r *Resource) Capacity() int { return r.capacity }

// Busy returns the number of servers currently held.
func (r *Resource) Busy() int { return r.busy }

// QueueLen returns the number of continuations waiting.
func (r *Resource) QueueLen() int { return len(r.queue) - r.qhead }

func (r *Resource) integrate() {
	dt := r.sim.now - r.lastChange
	if dt > 0 {
		r.busyInt += float64(r.busy) * dt
		r.queueInt += float64(len(r.queue)-r.qhead) * dt
		r.lastChange = r.sim.now
	}
}

// push appends one waiter to the FIFO ring, compacting spent head slots so
// the backing array is reused instead of regrown.
func (r *Resource) push(w waiter) {
	if r.qhead > 0 && len(r.queue) == cap(r.queue) {
		n := copy(r.queue, r.queue[r.qhead:])
		for i := n; i < len(r.queue); i++ {
			r.queue[i] = waiter{}
		}
		r.queue = r.queue[:n]
		r.qhead = 0
	}
	r.queue = append(r.queue, w)
	if q := len(r.queue) - r.qhead; q > r.peakQueue {
		r.peakQueue = q
	}
}

// pop removes and returns the FIFO head; the queue must be non-empty.
func (r *Resource) pop() waiter {
	w := r.queue[r.qhead]
	r.queue[r.qhead] = waiter{}
	r.qhead++
	if r.qhead == len(r.queue) {
		r.queue = r.queue[:0]
		r.qhead = 0
	}
	return w
}

// fireWake is the single pre-bound wake continuation: it consumes the
// oldest pending waiter and hands it the server slot transferred by the
// Release that scheduled this event.
func (r *Resource) fireWake() {
	next := r.pend[r.pendHead]
	r.pend[r.pendHead] = waiter{}
	r.pendHead++
	if r.pendHead == len(r.pend) {
		r.pend = r.pend[:0]
		r.pendHead = 0
	}
	waited := r.sim.now - next.start
	r.waitInt += waited
	if next.fire != nil {
		next.fire(waited)
		return
	}
	r.sim.scheduleRelease(r, next.dt, next.k)
}

// Acquire obtains one server for process p. If a server is free and nobody
// queues ahead, k runs immediately (in the caller's event) with a zero wait;
// otherwise the request queues FCFS and k runs when Release transfers a
// server slot, with the time spent waiting.
func (r *Resource) Acquire(p *Process, k func(waited Time)) {
	r.integrate()
	r.acquires++
	if r.busy < r.capacity && r.QueueLen() == 0 {
		r.busy++
		k(0)
		return
	}
	r.waits++
	r.push(waiter{fire: k, start: r.sim.now})
}

// Release frees one server. If requests are waiting, the head of the queue
// inherits the server slot and its continuation is scheduled immediately.
func (r *Resource) Release() {
	r.integrate()
	if r.busy == 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	if r.QueueLen() > 0 {
		// busy stays unchanged: the slot passes straight to the head
		// waiter, parked on pend until the pre-bound wake event fires.
		r.pend = append(r.pend, r.pop())
		r.sim.Schedule(0, r.wake)
		return
	}
	r.busy--
}

// Use acquires a server, holds it for service time dt, releases it, and then
// runs k. The uncontended path allocates nothing: the release rides on the
// scheduled event itself.
func (r *Resource) Use(p *Process, dt Time, k func()) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: negative hold %v", dt))
	}
	r.integrate()
	r.acquires++
	if r.busy < r.capacity && r.QueueLen() == 0 {
		r.busy++
		r.sim.scheduleRelease(r, dt, k)
		return
	}
	r.waits++
	r.push(waiter{k: k, dt: dt, start: r.sim.now})
}

// PeakQueueLen returns the maximum wait-queue length observed since the
// resource was created or the peak was last reset.
func (r *Resource) PeakQueueLen() int { return r.peakQueue }

// ResetPeakQueueLen restarts peak tracking from the current queue length,
// so callers can observe the peak over a measurement window.
func (r *Resource) ResetPeakQueueLen() { r.peakQueue = r.QueueLen() }

// BusyIntegral returns ∫ busy dt over [0, now]; callers can snapshot it to
// compute utilization over a measurement window.
func (r *Resource) BusyIntegral() float64 {
	r.integrate()
	return r.busyInt
}

// QueueIntegral returns ∫ len(queue) dt over [0, now]; callers can snapshot
// it to compute the mean wait-queue length over a measurement window (the
// closed-loop saturation rule does).
func (r *Resource) QueueIntegral() float64 {
	r.integrate()
	return r.queueInt
}

// Utilization returns the mean fraction of servers busy over [0, now].
func (r *Resource) Utilization() float64 {
	r.integrate()
	if r.sim.now <= 0 {
		return 0
	}
	return r.busyInt / (float64(r.capacity) * r.sim.now)
}

// MeanQueueLen returns the time-averaged wait-queue length over [0, now].
func (r *Resource) MeanQueueLen() float64 {
	r.integrate()
	if r.sim.now <= 0 {
		return 0
	}
	return r.queueInt / r.sim.now
}

// Acquires returns the number of Acquire calls so far.
func (r *Resource) Acquires() int64 { return r.acquires }

// Waits returns the number of Acquire calls that had to queue.
func (r *Resource) Waits() int64 { return r.waits }

// MeanWait returns the average waiting time per Acquire (including zero
// waits).
func (r *Resource) MeanWait() Time {
	if r.acquires == 0 {
		return 0
	}
	return r.waitInt / float64(r.acquires)
}
