package sim

import "fmt"

// Resource models a pool of identical servers with a FIFO wait queue —
// the building block for CPUs, disk controllers, disk arms and NVEM ports.
// A process acquires one server, holds it for its service time, and releases
// it. Utilization and queueing statistics are integrated over time.
type Resource struct {
	sim      *Sim
	name     string
	capacity int

	busy  int
	queue []*Process

	// Time-integrated statistics.
	lastChange Time
	busyInt    float64 // ∫ busy dt
	queueInt   float64 // ∫ len(queue) dt
	acquires   int64
	waits      int64 // acquires that had to queue
	waitInt    float64
}

// NewResource creates a resource with the given number of servers.
func (s *Sim) NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{sim: s, name: name, capacity: capacity, lastChange: s.now}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of servers.
func (r *Resource) Capacity() int { return r.capacity }

// Busy returns the number of servers currently held.
func (r *Resource) Busy() int { return r.busy }

// QueueLen returns the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) integrate() {
	dt := r.sim.now - r.lastChange
	if dt > 0 {
		r.busyInt += float64(r.busy) * dt
		r.queueInt += float64(len(r.queue)) * dt
		r.lastChange = r.sim.now
	}
}

// Acquire obtains one server for process p, queueing FCFS if all servers are
// busy. It returns the time spent waiting.
func (r *Resource) Acquire(p *Process) Time {
	r.integrate()
	r.acquires++
	if r.busy < r.capacity && len(r.queue) == 0 {
		r.busy++
		return 0
	}
	r.waits++
	start := r.sim.now
	r.queue = append(r.queue, p)
	p.Passivate() // woken by Release with the server slot already transferred
	waited := r.sim.now - start
	r.waitInt += waited
	return waited
}

// Release frees one server. If processes are waiting, the head of the queue
// inherits the server slot and is activated immediately.
func (r *Resource) Release() {
	r.integrate()
	if r.busy == 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	for len(r.queue) > 0 {
		next := r.queue[0]
		copy(r.queue, r.queue[1:])
		r.queue[len(r.queue)-1] = nil
		r.queue = r.queue[:len(r.queue)-1]
		if next.state == stateDone {
			// The waiter died while queued (simulation shutdown); skip it.
			continue
		}
		// busy stays unchanged: the slot passes straight to next.
		r.sim.Activate(next, 0)
		return
	}
	r.busy--
}

// Use acquires a server, holds it for service time dt, and releases it.
// It returns the total delay experienced (wait + service).
func (r *Resource) Use(p *Process, dt Time) Time {
	start := r.sim.now
	r.Acquire(p)
	p.Hold(dt)
	r.Release()
	return r.sim.now - start
}

// BusyIntegral returns ∫ busy dt over [0, now]; callers can snapshot it to
// compute utilization over a measurement window.
func (r *Resource) BusyIntegral() float64 {
	r.integrate()
	return r.busyInt
}

// Utilization returns the mean fraction of servers busy over [0, now].
func (r *Resource) Utilization() float64 {
	r.integrate()
	if r.sim.now <= 0 {
		return 0
	}
	return r.busyInt / (float64(r.capacity) * r.sim.now)
}

// MeanQueueLen returns the time-averaged wait-queue length over [0, now].
func (r *Resource) MeanQueueLen() float64 {
	r.integrate()
	if r.sim.now <= 0 {
		return 0
	}
	return r.queueInt / r.sim.now
}

// Acquires returns the number of Acquire calls so far.
func (r *Resource) Acquires() int64 { return r.acquires }

// Waits returns the number of Acquire calls that had to queue.
func (r *Resource) Waits() int64 { return r.waits }

// MeanWait returns the average waiting time per Acquire (including zero
// waits).
func (r *Resource) MeanWait() Time {
	if r.acquires == 0 {
		return 0
	}
	return r.waitInt / float64(r.acquires)
}
