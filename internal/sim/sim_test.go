package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestScheduleRunsInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.RunAll()
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(1, func() { fired++ })
	s.Schedule(5, func() { fired++ })
	s.Schedule(10, func() { fired++ })
	s.Run(5)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (events at t<=5)", fired)
	}
	if s.Now() != 5 {
		t.Fatalf("now = %v, want 5", s.Now())
	}
	s.Run(100)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestProcessHold(t *testing.T) {
	s := New()
	var marks []Time
	s.Spawn("holder", 0, func(p *Process) {
		marks = append(marks, p.Now())
		p.Hold(10, func() {
			marks = append(marks, p.Now())
			p.Hold(5, func() {
				marks = append(marks, p.Now())
			})
		})
	})
	s.RunAll()
	want := []Time{0, 10, 15}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v, want %v", marks, want)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestNegativeHoldPanics(t *testing.T) {
	s := New()
	s.Spawn("bad", 0, func(p *Process) { p.Hold(-1, func() {}) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative hold")
		}
	}()
	s.RunAll()
}

func TestSpawnDelay(t *testing.T) {
	s := New()
	var started Time = -1
	s.Spawn("late", 7, func(p *Process) { started = p.Now() })
	s.RunAll()
	if started != 7 {
		t.Fatalf("started = %v, want 7", started)
	}
}

func TestPassivateActivate(t *testing.T) {
	s := New()
	var woke Time = -1
	sleeper := s.Spawn("sleeper", 0, func(p *Process) {
		p.Passivate(func() { woke = p.Now() })
	})
	s.Spawn("waker", 5, func(p *Process) {
		s.Activate(sleeper, 2)
	})
	s.RunAll()
	if woke != 7 {
		t.Fatalf("woke = %v, want 7", woke)
	}
	if sleeper.Passive() {
		t.Fatal("sleeper still passive after activation")
	}
}

func TestActivateNonPassivePanics(t *testing.T) {
	s := New()
	p := s.Spawn("idle", 0, func(p *Process) { p.Hold(100, func() {}) })
	s.Run(50) // p is now holding (continuation scheduled), not passive
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic activating a non-passive process")
		}
	}()
	s.Activate(p, 0)
}

func TestDoublePassivatePanics(t *testing.T) {
	s := New()
	s.Spawn("greedy", 0, func(p *Process) {
		p.Passivate(func() {})
		p.Passivate(func() {})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Passivate")
		}
	}()
	s.RunAll()
}

func TestEqualTimeProcessesRunInSpawnOrder(t *testing.T) {
	s := New()
	var order []string
	for _, name := range []string{"a", "b", "c", "d"} {
		name := name
		s.Spawn(name, 1, func(p *Process) { order = append(order, name) })
	}
	s.RunAll()
	if got := strings.Join(order, ""); got != "abcd" {
		t.Fatalf("order = %q", got)
	}
}

func TestShutdownDropsPendingEvents(t *testing.T) {
	s := New()
	fired := 0
	for i := 0; i < 5; i++ {
		s.Spawn("p", 0, func(p *Process) {
			p.Hold(100, func() { fired++ })
		})
	}
	s.Run(10)
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
	s.Shutdown()
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after shutdown", s.Pending())
	}
	s.RunAll()
	if fired != 0 {
		t.Fatalf("fired = %d: continuations must not survive Shutdown", fired)
	}
}

func TestShutdownWithNeverStartedProcess(t *testing.T) {
	s := New()
	s.Spawn("never", 1000, func(p *Process) { t.Error("body must not run") })
	s.Run(1) // before first activation
	s.Shutdown()
	s.RunAll()
}

func TestProcessPanicSurfacesInRun(t *testing.T) {
	s := New()
	s.Spawn("bomb", 1, func(p *Process) { panic("boom") })
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("recover = %v, want panic containing boom", r)
		}
	}()
	s.RunAll()
}

// Determinism: two identical simulations visit events in exactly the same
// order and produce the same trace.
func TestDeterminism(t *testing.T) {
	build := func() string {
		var log []string
		s := New()
		for i := 0; i < 10; i++ {
			i := i
			s.Spawn(fmt.Sprintf("w%d", i), Time(i%3), func(p *Process) {
				j := 0
				var step func()
				step = func() {
					if j >= 4 {
						return
					}
					d := Time((i*7+j*3)%5) + 0.5
					j++
					p.Hold(d, func() {
						log = append(log, fmt.Sprintf("%s@%.1f", p.Name(), p.Now()))
						step()
					})
				}
				step()
			})
		}
		s.RunAll()
		return strings.Join(log, ",")
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("runs diverged:\n%s\n%s", a, b)
	}
}

func TestProcessIdentity(t *testing.T) {
	s := New()
	p := s.Spawn("named", 0, func(p *Process) {})
	if p.Name() != "named" || p.ID() != 1 || p.Sim() != s {
		t.Fatalf("identity wrong: %q %d", p.Name(), p.ID())
	}
	q := s.Spawn("second", 0, func(p *Process) {})
	if q.ID() != 2 {
		t.Fatalf("second id = %d", q.ID())
	}
	s.RunAll()
}

func TestNestedSpawn(t *testing.T) {
	s := New()
	var childTime Time = -1
	s.Spawn("parent", 0, func(p *Process) {
		p.Hold(3, func() {
			s.Spawn("child", 2, func(c *Process) { childTime = c.Now() })
			p.Hold(10, func() {})
		})
	})
	s.RunAll()
	if childTime != 5 {
		t.Fatalf("child ran at %v, want 5", childTime)
	}
}

// --- blocking compatibility shim ---

func TestBlockingProcessHold(t *testing.T) {
	s := New()
	var marks []Time
	s.SpawnBlocking("holder", 0, func(b *BlockingProcess) {
		marks = append(marks, b.Now())
		b.Hold(10)
		marks = append(marks, b.Now())
		b.Hold(5)
		marks = append(marks, b.Now())
	})
	s.RunAll()
	want := []Time{0, 10, 15}
	if fmt.Sprint(marks) != fmt.Sprint(want) {
		t.Fatalf("marks = %v, want %v", marks, want)
	}
}

func TestBlockingProcessSynchronousAwait(t *testing.T) {
	// An Await whose operation completes without suspending must continue
	// the body inline, without consuming a heap event.
	s := New()
	ran := false
	s.SpawnBlocking("sync", 0, func(b *BlockingProcess) {
		b.Await(func(done func()) { done() })
		ran = true
		if b.Now() != 0 {
			t.Errorf("now = %v, want 0", b.Now())
		}
	})
	s.RunAll()
	if !ran {
		t.Fatal("body did not complete")
	}
}

func TestBlockingProcessInterleavesDeterministically(t *testing.T) {
	// Blocking bodies and continuation processes must share one timeline:
	// equal-time events fire in scheduling order regardless of style.
	s := New()
	var order []string
	s.SpawnBlocking("b", 1, func(b *BlockingProcess) {
		order = append(order, "b0")
		b.Hold(1)
		order = append(order, "b1")
	})
	s.Spawn("c", 1, func(p *Process) {
		order = append(order, "c0")
		p.Hold(1, func() { order = append(order, "c1") })
	})
	s.RunAll()
	if got := strings.Join(order, ","); got != "b0,c0,b1,c1" {
		t.Fatalf("order = %q, want b0,c0,b1,c1", got)
	}
}

func TestBlockingProcessResource(t *testing.T) {
	s := New()
	r := s.NewResource("dev", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		s.SpawnBlocking("job", 0, func(b *BlockingProcess) {
			b.Use(r, 10)
			finish = append(finish, b.Now())
		})
	}
	s.RunAll()
	if fmt.Sprint(finish) != fmt.Sprint([]Time{10, 20, 30}) {
		t.Fatalf("finish = %v", finish)
	}
}
