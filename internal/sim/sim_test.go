package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestScheduleRunsInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.RunAll()
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(1, func() { fired++ })
	s.Schedule(5, func() { fired++ })
	s.Schedule(10, func() { fired++ })
	s.Run(5)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (events at t<=5)", fired)
	}
	if s.Now() != 5 {
		t.Fatalf("now = %v, want 5", s.Now())
	}
	s.Run(100)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestProcessHold(t *testing.T) {
	s := New()
	var marks []Time
	s.Spawn("holder", 0, func(p *Process) {
		marks = append(marks, p.Now())
		p.Hold(10)
		marks = append(marks, p.Now())
		p.Hold(5)
		marks = append(marks, p.Now())
	})
	s.RunAll()
	want := []Time{0, 10, 15}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
	if s.LiveProcesses() != 0 {
		t.Fatalf("live processes = %d", s.LiveProcesses())
	}
}

func TestSpawnDelay(t *testing.T) {
	s := New()
	var started Time = -1
	s.Spawn("late", 7, func(p *Process) { started = p.Now() })
	s.RunAll()
	if started != 7 {
		t.Fatalf("started = %v, want 7", started)
	}
}

func TestPassivateActivate(t *testing.T) {
	s := New()
	var woke Time = -1
	var sleeper *Process
	sleeper = s.Spawn("sleeper", 0, func(p *Process) {
		p.Passivate()
		woke = p.Now()
	})
	s.Spawn("waker", 5, func(p *Process) {
		s.Activate(sleeper, 2)
	})
	s.RunAll()
	if woke != 7 {
		t.Fatalf("woke = %v, want 7", woke)
	}
}

func TestActivateNonPassivePanics(t *testing.T) {
	s := New()
	p := s.Spawn("idle", 0, func(p *Process) { p.Hold(100) })
	s.Run(50) // p is now holding (scheduled), not passive
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic activating a scheduled process")
		}
	}()
	s.Activate(p, 0)
}

func TestEqualTimeProcessesRunInSpawnOrder(t *testing.T) {
	s := New()
	var order []string
	for _, name := range []string{"a", "b", "c", "d"} {
		name := name
		s.Spawn(name, 1, func(p *Process) { order = append(order, name) })
	}
	s.RunAll()
	if got := strings.Join(order, ""); got != "abcd" {
		t.Fatalf("order = %q", got)
	}
}

func TestShutdownUnwindsProcesses(t *testing.T) {
	s := New()
	cleaned := 0
	for i := 0; i < 5; i++ {
		s.Spawn("p", 0, func(p *Process) {
			defer func() { cleaned++ }()
			p.Passivate() // never activated
		})
	}
	s.Run(10)
	if s.LiveProcesses() != 5 {
		t.Fatalf("live = %d, want 5", s.LiveProcesses())
	}
	s.Shutdown()
	if cleaned != 5 {
		t.Fatalf("cleaned = %d, want 5 (defers must run)", cleaned)
	}
	if s.LiveProcesses() != 0 {
		t.Fatalf("live = %d after shutdown", s.LiveProcesses())
	}
}

func TestShutdownWithNeverStartedProcess(t *testing.T) {
	s := New()
	s.Spawn("never", 1000, func(p *Process) { t.Error("body must not run") })
	s.Run(1) // before first activation
	s.Shutdown()
	if s.LiveProcesses() != 0 {
		t.Fatalf("live = %d", s.LiveProcesses())
	}
}

func TestProcessPanicSurfacesInRun(t *testing.T) {
	s := New()
	s.Spawn("bomb", 1, func(p *Process) { panic("boom") })
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("recover = %v, want panic containing boom", r)
		}
	}()
	s.RunAll()
}

func TestHoldOutsideBodyPanics(t *testing.T) {
	s := New()
	var captured *Process
	s.Spawn("p", 0, func(p *Process) { captured = p; p.Hold(5) })
	s.Run(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic calling Hold from kernel context")
		}
	}()
	captured.Hold(1)
}

// Determinism: two identical simulations visit events in exactly the same
// order and produce the same trace.
func TestDeterminism(t *testing.T) {
	build := func() string {
		var log []string
		s := New()
		for i := 0; i < 10; i++ {
			i := i
			s.Spawn(fmt.Sprintf("w%d", i), Time(i%3), func(p *Process) {
				for j := 0; j < 4; j++ {
					p.Hold(Time((i*7+j*3)%5) + 0.5)
					log = append(log, fmt.Sprintf("%s@%.1f", p.Name(), p.Now()))
				}
			})
		}
		s.RunAll()
		return strings.Join(log, ",")
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("runs diverged:\n%s\n%s", a, b)
	}
}

func TestProcessIdentity(t *testing.T) {
	s := New()
	p := s.Spawn("named", 0, func(p *Process) {})
	if p.Name() != "named" || p.ID() != 1 || p.Sim() != s {
		t.Fatalf("identity wrong: %q %d", p.Name(), p.ID())
	}
	q := s.Spawn("second", 0, func(p *Process) {})
	if q.ID() != 2 {
		t.Fatalf("second id = %d", q.ID())
	}
	s.RunAll()
}

func TestNestedSpawn(t *testing.T) {
	s := New()
	var childTime Time = -1
	s.Spawn("parent", 0, func(p *Process) {
		p.Hold(3)
		s.Spawn("child", 2, func(c *Process) { childTime = c.Now() })
		p.Hold(10)
	})
	s.RunAll()
	if childTime != 5 {
		t.Fatalf("child ran at %v, want 5", childTime)
	}
}
