package sim

import "math"

// calQueue is a calendar queue (Brown, CACM 1988): a power-of-two ring of
// time buckets of equal width, scanned in time order, with a binary-heap
// overflow band for events beyond the ring's window. For the simulator's
// workloads — dense near-future timer populations with a thin far-future
// tail (checkpoints, phase boundaries) — enqueue and dequeue are O(1)
// amortized, versus O(log n) for the heap it replaces.
//
// Bucket assignment is by integer bucket id, bid(at) = ⌊at/width⌋, a pure
// function of the timestamp. The window covers bids [curBid, curBid+nb);
// bucket id b lives at ring slot b&mask. Everything with a bid at or past
// the window's end waits in the overflow heap and is drained into the ring
// as curBid advances. Because curBid only ever advances to the bid of a
// popped minimum, every live ring event has bid ≥ curBid, so one ring slot
// holds exactly one bid and the first nonempty slot from curBid holds the
// queue's minimum (bid is monotone in at: bid(a) < bid(b) ⟹ a < b).
//
// Width self-tunes from the smoothed nonzero inter-pop gap, checked every
// calCheckMask+1 pops; the ring re-lays out (rare, O(n)) when the width is
// off by 4× either way or when ring occupancy exceeds 2 events per bucket.
type calQueue struct {
	width    Time      // bucket width in simulated time
	nb       int       // number of ring buckets (power of two)
	mask     int64     // nb - 1
	curBid   int64     // bucket id at the start of the window
	buckets  [][]event // ring storage; slot caps persist across pops
	inWin    int       // events currently in the ring
	overflow eventHeap // far-future band: bid ≥ curBid+nb

	lastAt  Time // timestamp of the most recent pop
	gapEWMA Time // smoothed nonzero inter-pop gap
	gapInit bool
	pops    uint64

	memo calMemo
}

// calMemo caches the minimum located by the last scan so the kernel's
// Peek-then-Pop pattern costs one scan per event. Any Push invalidates it.
type calMemo struct {
	valid bool
	slot  int // ring slot the minimum lives in
	i     int // its position within that slot
	ev    event
}

const (
	calInitWidth = 1.0  // ms; adapts after the first width check
	calInitNB    = 64   // initial ring size
	calMinWidth  = 1e-9 // width floor against zero-gap degenerate programs
	calCheckMask = 1023 // width checked every 1024 pops
	// calMaxBidF guards the at/width → int64 conversion: anything mapping
	// this far out is clamped to a single huge bid, which always lands in
	// (and correctly drains from) the overflow band.
	calMaxBidF = float64(1) * (1 << 62)
)

func newCalQueue() *calQueue {
	return &calQueue{
		width:   calInitWidth,
		nb:      calInitNB,
		mask:    calInitNB - 1,
		buckets: make([][]event, calInitNB),
	}
}

// Len reports the number of pending events.
func (q *calQueue) Len() int { return q.inWin + q.overflow.Len() }

func (q *calQueue) bidOf(at Time) int64 {
	f := at / q.width
	if f >= calMaxBidF {
		return math.MaxInt64
	}
	return int64(f)
}

// place appends an in-window event to its ring slot. Bids below curBid
// (impossible under the kernel's non-negative-delay contract, but cheap to
// tolerate) are clamped into the current bucket, which the scan visits
// first, so such an event still pops in correct (at, seq) order.
func (q *calQueue) place(e event, bid int64) {
	if bid < q.curBid {
		bid = q.curBid
	}
	slot := int(bid & q.mask)
	q.buckets[slot] = append(q.buckets[slot], e)
	q.inWin++
}

// Push inserts an event.
func (q *calQueue) Push(e event) {
	q.memo.valid = false
	if bid := q.bidOf(e.at); bid-q.curBid >= int64(q.nb) {
		q.overflow.Push(e)
	} else {
		q.place(e, bid)
	}
	if q.inWin > 2*q.nb {
		q.relayout(q.width, q.nb*2)
	}
}

// findMin locates the earliest event and memoizes its position. The queue
// must not be empty.
func (q *calQueue) findMin() {
	if q.inWin == 0 {
		// Ring empty: re-anchor the window at the overflow's head and pull
		// the near band in.
		q.curBid = q.bidOf(q.overflow.Peek().at)
		q.drainOverflow()
	}
	for b := q.curBid; ; b++ {
		slot := int(b & q.mask)
		bucket := q.buckets[slot]
		if len(bucket) == 0 {
			continue
		}
		mi := 0
		for i := 1; i < len(bucket); i++ {
			if bucket[i].at < bucket[mi].at ||
				(bucket[i].at == bucket[mi].at && bucket[i].seq < bucket[mi].seq) {
				mi = i
			}
		}
		q.memo = calMemo{valid: true, slot: slot, i: mi, ev: bucket[mi]}
		return
	}
}

// Peek returns the earliest event without removing it. It must not be
// called on an empty queue.
func (q *calQueue) Peek() event {
	if !q.memo.valid {
		q.findMin()
	}
	return q.memo.ev
}

// Pop removes and returns the earliest event. It must not be called on an
// empty queue.
func (q *calQueue) Pop() event {
	if !q.memo.valid {
		q.findMin()
	}
	m := q.memo
	q.memo.valid = false

	bucket := q.buckets[m.slot]
	n := len(bucket) - 1
	bucket[m.i] = bucket[n]
	bucket[n] = event{} // release fn for GC
	q.buckets[m.slot] = bucket[:n]
	q.inWin--

	if bid := q.bidOf(m.ev.at); bid > q.curBid {
		q.curBid = bid
		q.drainOverflow()
	}

	// Width feedback: smooth the nonzero inter-pop gap and occasionally
	// re-lay out if the configured width has drifted 4× off the target of
	// ~3 gaps per bucket.
	if gap := m.ev.at - q.lastAt; gap > 0 {
		if !q.gapInit {
			q.gapEWMA, q.gapInit = gap, true
		} else {
			q.gapEWMA += (gap - q.gapEWMA) / 16
		}
	}
	q.lastAt = m.ev.at
	q.pops++
	if q.pops&calCheckMask == 0 && q.gapInit {
		target := 3 * q.gapEWMA
		if target < calMinWidth {
			target = calMinWidth
		}
		if q.width > 4*target || 4*q.width < target {
			q.relayout(target, q.sizeFor(q.Len()))
		}
	}
	return m.ev
}

// drainOverflow moves overflow events whose bid entered the window into
// the ring. Call after any curBid advance.
func (q *calQueue) drainOverflow() {
	lim := q.curBid + int64(q.nb)
	for q.overflow.Len() > 0 {
		bid := q.bidOf(q.overflow.Peek().at)
		if bid >= lim {
			return
		}
		q.place(q.overflow.Pop(), bid)
	}
}

// sizeFor picks a ring size for n live events: the next power of two ≥ n,
// floored at calInitNB.
func (q *calQueue) sizeFor(n int) int {
	nb := calInitNB
	for nb < n {
		nb *= 2
	}
	return nb
}

// relayout rebuilds the ring with a new width and bucket count,
// redistributing every live event. O(n); triggered rarely (occupancy
// growth or a 4× width drift at a 1024-pop checkpoint).
func (q *calQueue) relayout(width Time, nb int) {
	all := make([]event, 0, q.Len())
	for i := range q.buckets {
		all = append(all, q.buckets[i]...)
	}
	all = append(all, q.overflow.items...)
	q.overflow.items = q.overflow.items[:0]

	q.width = width
	q.nb = nb
	q.mask = int64(nb - 1)
	q.buckets = make([][]event, nb)
	q.inWin = 0
	q.memo.valid = false

	minAt := q.lastAt
	if len(all) > 0 {
		minAt = all[0].at
		for _, e := range all[1:] {
			if e.at < minAt {
				minAt = e.at
			}
		}
	}
	q.curBid = q.bidOf(minAt)
	lim := q.curBid + int64(q.nb)
	for _, e := range all {
		if bid := q.bidOf(e.at); bid >= lim {
			q.overflow.Push(e)
		} else {
			q.place(e, bid)
		}
	}
}

// Clear drops every pending event.
func (q *calQueue) Clear() {
	q.buckets = make([][]event, q.nb)
	q.inWin = 0
	q.overflow.Clear()
	q.memo.valid = false
}
