package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// This file is the continuation kernel's executable contract: randomized
// programs of schedule/hold/passivate/activate/resource operations are run
// against three properties the rest of the simulator relies on.
//
//  1. Time monotonicity — events fire in non-decreasing simulated time.
//  2. Deterministic FIFO at equal timestamps — events scheduled for the
//     same instant fire in scheduling order, regardless of what other work
//     interleaves.
//  3. Empty-heap termination — RunAll drains every scheduled continuation
//     and stops; nothing fires after Shutdown.
//
// Delays are quantized (multiples of 0.5, with plenty of zeros) to force
// timestamp collisions, which is exactly where property 2 bites.

// trackRec is one tracked event: the instant it must fire at, and a
// scheduling sequence number that breaks timestamp ties.
type trackRec struct {
	at  Time
	idx int
}

// propRun drives one randomized program on a fresh kernel and checks all
// three properties.
func propRun(t *testing.T, seed int64) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	s := New()
	res := s.NewResource("dev", 1+rnd.Intn(3))

	var fired, expected []trackRec
	idx := 0
	last := Time(-1)

	// track registers a continuation scheduled for now+delay and returns the
	// body that must run then.
	track := func(delay Time, body func()) func() {
		rec := trackRec{at: s.Now() + delay, idx: idx}
		idx++
		expected = append(expected, rec)
		return func() {
			if s.Now() < last {
				t.Fatalf("seed %d: time ran backwards: %v after %v", seed, s.Now(), last)
			}
			if s.Now() != rec.at {
				t.Fatalf("seed %d: event fired at %v, scheduled for %v", seed, s.Now(), rec.at)
			}
			last = s.Now()
			fired = append(fired, rec)
			if body != nil {
				body()
			}
		}
	}

	delay := func() Time { return Time(rnd.Intn(5)) * 0.5 } // many zero/tied delays

	// op emits one random operation; nested ops spend the remaining budget.
	var op func(budget int)
	op = func(budget int) {
		if budget <= 0 {
			return
		}
		switch rnd.Intn(4) {
		case 0: // plain scheduled event, possibly scheduling more work
			d := delay()
			s.Schedule(d, track(d, func() { op(budget - 1) }))
		case 1: // process with a random Hold chain
			hops := 1 + rnd.Intn(3)
			s.Spawn("chain", delay(), func(p *Process) {
				var hop func()
				hop = func() {
					if hops == 0 {
						op(budget - 1)
						return
					}
					hops--
					d := delay()
					p.Hold(d, track(d, hop))
				}
				hop()
			})
		case 2: // passivate now, activate from a strictly later scheduling
			d := delay()
			proc := s.Spawn("sleeper", d, func(p *Process) {
				p.Passivate(func() { op(budget - 1) })
			})
			ad := delay()
			s.Schedule(d+ad, func() {
				if !proc.Passive() {
					return // already activated (possible via nested ops? defensive)
				}
				wake := delay()
				s.Activate(proc, 0)
				// The activation consumed the stored continuation; re-track a
				// plain event to keep exercising collisions at this instant.
				s.Schedule(wake, track(wake, nil))
			})
		default: // resource usage: untracked interleaved load
			s.Spawn("user", delay(), func(p *Process) {
				res.Use(p, delay(), func() {
					if res.Busy() > res.Capacity() {
						t.Fatalf("seed %d: busy %d > capacity %d", seed, res.Busy(), res.Capacity())
					}
					op(budget - 1)
				})
			})
		}
	}

	for i := 0; i < 20; i++ {
		op(3)
	}
	s.RunAll()

	// Property 3: the heap drained and every tracked continuation ran.
	if s.Pending() != 0 {
		t.Fatalf("seed %d: %d events pending after RunAll", seed, s.Pending())
	}
	if len(fired) != len(expected) {
		t.Fatalf("seed %d: fired %d of %d tracked events", seed, len(fired), len(expected))
	}
	if res.QueueLen() != 0 || res.Busy() != 0 {
		t.Fatalf("seed %d: resource not drained: queue=%d busy=%d", seed, res.QueueLen(), res.Busy())
	}

	// Property 2: fired order is exactly (at, scheduling order). Tracked
	// scheduling indices increase with the kernel's internal sequence
	// numbers, so the sorted expectation is the unique legal firing order.
	sort.SliceStable(expected, func(i, j int) bool {
		if expected[i].at != expected[j].at {
			return expected[i].at < expected[j].at
		}
		return expected[i].idx < expected[j].idx
	})
	for i := range expected {
		if fired[i] != expected[i] {
			t.Fatalf("seed %d: event %d fired as (at=%v idx=%d), want (at=%v idx=%d)",
				seed, i, fired[i].at, fired[i].idx, expected[i].at, expected[i].idx)
		}
	}
}

func TestKernelProperties(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		propRun(t, seed)
	}
}

// TestKernelShutdownCancelsEverything is the cancellation side of the
// contract: Shutdown at an arbitrary cut point drops every pending
// continuation — suspended processes, queued resource waiters, scheduled
// events — and nothing fires afterwards.
func TestKernelShutdownCancelsEverything(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		s := New()
		res := s.NewResource("dev", 1)
		firedLate := false
		cut := Time(rnd.Intn(10))
		for i := 0; i < 30; i++ {
			d := Time(rnd.Intn(20)) * 0.75
			switch rnd.Intn(3) {
			case 0:
				s.Schedule(d, func() {
					if s.Now() > cut {
						firedLate = true
					}
				})
			case 1:
				s.Spawn("holder", d, func(p *Process) {
					p.Hold(5, func() {
						if s.Now() > cut {
							firedLate = true
						}
					})
				})
			default:
				s.Spawn("user", d, func(p *Process) {
					res.Use(p, 3, func() {
						if s.Now() > cut {
							firedLate = true
						}
					})
				})
			}
		}
		s.Run(cut)
		s.Shutdown()
		if s.Pending() != 0 {
			t.Fatalf("seed %d: pending after shutdown", seed)
		}
		s.RunAll()
		if firedLate {
			t.Fatalf("seed %d: continuation fired after the t=%v shutdown", seed, cut)
		}
	}
}
