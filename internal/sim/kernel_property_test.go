package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// This file is the continuation kernel's executable contract: randomized
// programs of schedule/hold/passivate/activate/resource operations are run
// against three properties the rest of the simulator relies on.
//
//  1. Time monotonicity — events fire in non-decreasing simulated time.
//  2. Deterministic FIFO at equal timestamps — events scheduled for the
//     same instant fire in scheduling order, regardless of what other work
//     interleaves.
//  3. Empty-heap termination — RunAll drains every scheduled continuation
//     and stops; nothing fires after Shutdown.
//
// Delays are quantized (multiples of 0.5, with plenty of zeros) to force
// timestamp collisions, which is exactly where property 2 bites.

// trackRec is one tracked event: the instant it must fire at, and a
// scheduling sequence number that breaks timestamp ties.
type trackRec struct {
	at  Time
	idx int
}

// propRun drives one randomized program on a fresh kernel and checks all
// three properties.
func propRun(t *testing.T, seed int64, kind QueueKind) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	s := NewWithQueue(kind)
	res := s.NewResource("dev", 1+rnd.Intn(3))

	var fired, expected []trackRec
	idx := 0
	last := Time(-1)

	// track registers a continuation scheduled for now+delay and returns the
	// body that must run then.
	track := func(delay Time, body func()) func() {
		rec := trackRec{at: s.Now() + delay, idx: idx}
		idx++
		expected = append(expected, rec)
		return func() {
			if s.Now() < last {
				t.Fatalf("seed %d: time ran backwards: %v after %v", seed, s.Now(), last)
			}
			if s.Now() != rec.at {
				t.Fatalf("seed %d: event fired at %v, scheduled for %v", seed, s.Now(), rec.at)
			}
			last = s.Now()
			fired = append(fired, rec)
			if body != nil {
				body()
			}
		}
	}

	delay := func() Time { return Time(rnd.Intn(5)) * 0.5 } // many zero/tied delays

	// op emits one random operation; nested ops spend the remaining budget.
	var op func(budget int)
	op = func(budget int) {
		if budget <= 0 {
			return
		}
		switch rnd.Intn(4) {
		case 0: // plain scheduled event, possibly scheduling more work
			d := delay()
			s.Schedule(d, track(d, func() { op(budget - 1) }))
		case 1: // process with a random Hold chain
			hops := 1 + rnd.Intn(3)
			s.Spawn("chain", delay(), func(p *Process) {
				var hop func()
				hop = func() {
					if hops == 0 {
						op(budget - 1)
						return
					}
					hops--
					d := delay()
					p.Hold(d, track(d, hop))
				}
				hop()
			})
		case 2: // passivate now, activate from a strictly later scheduling
			d := delay()
			proc := s.Spawn("sleeper", d, func(p *Process) {
				p.Passivate(func() { op(budget - 1) })
			})
			ad := delay()
			s.Schedule(d+ad, func() {
				if !proc.Passive() {
					return // already activated (possible via nested ops? defensive)
				}
				wake := delay()
				s.Activate(proc, 0)
				// The activation consumed the stored continuation; re-track a
				// plain event to keep exercising collisions at this instant.
				s.Schedule(wake, track(wake, nil))
			})
		default: // resource usage: untracked interleaved load
			s.Spawn("user", delay(), func(p *Process) {
				res.Use(p, delay(), func() {
					if res.Busy() > res.Capacity() {
						t.Fatalf("seed %d: busy %d > capacity %d", seed, res.Busy(), res.Capacity())
					}
					op(budget - 1)
				})
			})
		}
	}

	for i := 0; i < 20; i++ {
		op(3)
	}
	s.RunAll()

	// Property 3: the heap drained and every tracked continuation ran.
	if s.Pending() != 0 {
		t.Fatalf("seed %d: %d events pending after RunAll", seed, s.Pending())
	}
	if len(fired) != len(expected) {
		t.Fatalf("seed %d: fired %d of %d tracked events", seed, len(fired), len(expected))
	}
	if res.QueueLen() != 0 || res.Busy() != 0 {
		t.Fatalf("seed %d: resource not drained: queue=%d busy=%d", seed, res.QueueLen(), res.Busy())
	}

	// Property 2: fired order is exactly (at, scheduling order). Tracked
	// scheduling indices increase with the kernel's internal sequence
	// numbers, so the sorted expectation is the unique legal firing order.
	sort.SliceStable(expected, func(i, j int) bool {
		if expected[i].at != expected[j].at {
			return expected[i].at < expected[j].at
		}
		return expected[i].idx < expected[j].idx
	})
	for i := range expected {
		if fired[i] != expected[i] {
			t.Fatalf("seed %d: event %d fired as (at=%v idx=%d), want (at=%v idx=%d)",
				seed, i, fired[i].at, fired[i].idx, expected[i].at, expected[i].idx)
		}
	}
}

func TestKernelProperties(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		propRun(t, seed, QueueCalendar)
		propRun(t, seed, QueueHeap)
	}
}

// TestQueueDifferential runs randomized event programs through the binary
// heap and the calendar queue and demands identical (time, seq) pop
// sequences. Programs interleave pushes and pops, mix dense near-term
// timestamps with a far-future band (exercising the calendar queue's
// overflow heap and window advances), and include heavy timestamp ties.
func TestQueueDifferential(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		heap := &eventHeap{}
		cal := newCalQueue()
		var seq uint64
		now := Time(0)

		push := func() {
			var at Time
			switch rnd.Intn(10) {
			case 0: // far-future band → calendar overflow
				at = now + 1_000 + Time(rnd.Intn(100_000))
			case 1, 2: // tie with the current instant
				at = now
			default: // dense near band, quantized for more ties
				at = now + Time(rnd.Intn(40))*0.25
			}
			seq++
			ev := event{at: at, seq: seq}
			heap.Push(ev)
			cal.Push(ev)
		}
		pop := func() {
			if heap.Len() == 0 {
				return
			}
			if pa, pb := heap.Peek(), cal.Peek(); pa.at != pb.at || pa.seq != pb.seq {
				t.Fatalf("seed %d: peek diverged: heap (at=%v seq=%d), cal (at=%v seq=%d)",
					seed, pa.at, pa.seq, pb.at, pb.seq)
			}
			a, b := heap.Pop(), cal.Pop()
			if a.at != b.at || a.seq != b.seq {
				t.Fatalf("seed %d: pop diverged: heap (at=%v seq=%d), cal (at=%v seq=%d)",
					seed, a.at, a.seq, b.at, b.seq)
			}
			if a.at < now {
				t.Fatalf("seed %d: time ran backwards: %v after %v", seed, a.at, now)
			}
			now = a.at
		}

		for i := 0; i < 3000; i++ {
			if rnd.Intn(5) < 3 {
				push()
			} else {
				pop()
			}
			if heap.Len() != cal.Len() {
				t.Fatalf("seed %d: length diverged: heap %d, cal %d", seed, heap.Len(), cal.Len())
			}
		}
		for heap.Len() > 0 {
			pop()
		}
		if cal.Len() != 0 {
			t.Fatalf("seed %d: calendar queue not drained: %d left", seed, cal.Len())
		}
	}
}

// TestCalendarDrainRefill pins the bucket-rotation edge case: draining the
// ring completely and refilling far beyond the old window must re-anchor
// the window (pulling the overflow band back in) without losing events or
// breaking (at, seq) order. The refill count also exceeds twice the initial
// bucket count, forcing a grow-and-redistribute cycle mid-sequence.
func TestCalendarDrainRefill(t *testing.T) {
	q := newCalQueue()
	var seq uint64
	push := func(at Time) {
		seq++
		q.Push(event{at: at, seq: seq})
	}
	popAt := func(want Time) {
		t.Helper()
		ev := q.Pop()
		if ev.at != want {
			t.Fatalf("popped at=%v, want %v", ev.at, want)
		}
	}

	for cycle := 0; cycle < 5; cycle++ {
		// Jump the epoch far past the previous window so the refill starts
		// life entirely in the overflow band.
		base := Time(cycle) * 1e7
		n := 3 * calInitNB // > 2*nb → forces a grow mid-cycle
		for i := n - 1; i >= 0; i-- {
			push(base + Time(i)*0.5)
		}
		for i := 0; i < n; i++ {
			popAt(base + Time(i)*0.5)
		}
		if q.Len() != 0 {
			t.Fatalf("cycle %d: %d events left after drain", cycle, q.Len())
		}
	}
}

// TestRunDrainedClockAdvances pins the sim-clock contract: Run(until) lands
// the clock exactly on until whether it stops because the next event is too
// late or because the queue drained early. Before the fix the drained path
// left Now() at the last event's timestamp, under-counting window lengths.
func TestRunDrainedClockAdvances(t *testing.T) {
	for _, kind := range []QueueKind{QueueCalendar, QueueHeap} {
		s := NewWithQueue(kind)
		fired := 0
		s.Schedule(3, func() { fired++ })

		// Queue drains before until: the clock must still advance to until.
		if got := s.Run(10); got != 10 || s.Now() != 10 {
			t.Fatalf("kind %d: Run(10) on a draining queue: returned %v, Now()=%v, want 10", kind, got, s.Now())
		}
		if fired != 1 {
			t.Fatalf("kind %d: event fired %d times, want 1", kind, fired)
		}

		// The clock never moves backwards: a shorter Run on an empty queue
		// keeps the later timestamp.
		if got := s.Run(5); got != 10 || s.Now() != 10 {
			t.Fatalf("kind %d: Run(5) after t=10: returned %v, Now()=%v, want 10", kind, got, s.Now())
		}

		// Early exit (next event after until) still lands exactly on until.
		s.Schedule(7, func() { fired++ })
		if got := s.Run(12); got != 12 || s.Now() != 12 || fired != 1 {
			t.Fatalf("kind %d: Run(12) with event at 17: returned %v, Now()=%v, fired=%d", kind, got, s.Now(), fired)
		}
		if got := s.RunAll(); got != 17 || fired != 2 {
			t.Fatalf("kind %d: RunAll: returned %v, fired=%d", kind, got, fired)
		}
	}
}

// TestKernelShutdownCancelsEverything is the cancellation side of the
// contract: Shutdown at an arbitrary cut point drops every pending
// continuation — suspended processes, queued resource waiters, scheduled
// events — and nothing fires afterwards.
func TestKernelShutdownCancelsEverything(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		s := New()
		res := s.NewResource("dev", 1)
		firedLate := false
		cut := Time(rnd.Intn(10))
		for i := 0; i < 30; i++ {
			d := Time(rnd.Intn(20)) * 0.75
			switch rnd.Intn(3) {
			case 0:
				s.Schedule(d, func() {
					if s.Now() > cut {
						firedLate = true
					}
				})
			case 1:
				s.Spawn("holder", d, func(p *Process) {
					p.Hold(5, func() {
						if s.Now() > cut {
							firedLate = true
						}
					})
				})
			default:
				s.Spawn("user", d, func(p *Process) {
					res.Use(p, 3, func() {
						if s.Now() > cut {
							firedLate = true
						}
					})
				})
			}
		}
		s.Run(cut)
		s.Shutdown()
		if s.Pending() != 0 {
			t.Fatalf("seed %d: pending after shutdown", seed)
		}
		s.RunAll()
		if firedLate {
			t.Fatalf("seed %d: continuation fired after the t=%v shutdown", seed, cut)
		}
	}
}
