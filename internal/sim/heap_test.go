package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrdersByTime(t *testing.T) {
	var h eventHeap
	times := []Time{5, 1, 3, 2, 4, 0, 9, 7, 8, 6}
	for i, at := range times {
		h.Push(event{at: at, seq: uint64(i)})
	}
	prev := Time(-1)
	for h.Len() > 0 {
		e := h.Pop()
		if e.at < prev {
			t.Fatalf("heap returned %v after %v", e.at, prev)
		}
		prev = e.at
	}
}

func TestHeapTieBreaksBySeq(t *testing.T) {
	var h eventHeap
	for i := 0; i < 20; i++ {
		h.Push(event{at: 1.0, seq: uint64(i)})
	}
	for i := 0; i < 20; i++ {
		e := h.Pop()
		if e.seq != uint64(i) {
			t.Fatalf("pop %d: got seq %d", i, e.seq)
		}
	}
}

func TestHeapPeekMatchesPop(t *testing.T) {
	var h eventHeap
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		h.Push(event{at: rng.Float64() * 100, seq: uint64(i)})
	}
	for h.Len() > 0 {
		want := h.Peek()
		got := h.Pop()
		if want.at != got.at || want.seq != got.seq {
			t.Fatalf("peek (%v,%d) != pop (%v,%d)", want.at, want.seq, got.at, got.seq)
		}
	}
}

// Property: for any input multiset of timestamps, popping yields them in
// non-decreasing time order and equal times in insertion order.
func TestHeapSortProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var h eventHeap
		for i, v := range raw {
			// Coarse timestamps force plenty of ties.
			h.Push(event{at: Time(v % 16), seq: uint64(i)})
		}
		type key struct {
			at  Time
			seq uint64
		}
		var got []key
		for h.Len() > 0 {
			e := h.Pop()
			got = append(got, key{e.at, e.seq})
		}
		if len(got) != len(raw) {
			return false
		}
		sorted := sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].at != got[j].at {
				return got[i].at < got[j].at
			}
			return got[i].seq < got[j].seq
		})
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	var h eventHeap
	rng := rand.New(rand.NewSource(42))
	var seq uint64
	now := Time(0)
	for round := 0; round < 1000; round++ {
		if h.Len() == 0 || rng.Intn(2) == 0 {
			seq++
			h.Push(event{at: now + rng.Float64()*10, seq: seq})
		} else {
			e := h.Pop()
			if e.at < now {
				t.Fatalf("time went backwards: %v < %v", e.at, now)
			}
			now = e.at
		}
	}
}
