package sim

// event is a scheduled occurrence in the simulation. Events with equal
// timestamps fire in scheduling order (seq), which keeps runs deterministic.
// release, when non-nil, is a resource the kernel releases immediately
// before running fn: carrying it in the event spares the hot acquire → hold
// → release → continue pattern (Resource.Use) a wrapper closure allocation
// per operation.
type event struct {
	at      Time
	seq     uint64
	fn      func()
	release *Resource
}

// eventHeap is a binary min-heap ordered by (at, seq). It is implemented
// directly (rather than via container/heap) to avoid interface boxing on the
// simulator's hottest path.
type eventHeap struct {
	items []event
}

// Len reports the number of pending events.
func (h *eventHeap) Len() int { return len(h.items) }

// Clear drops every pending event.
func (h *eventHeap) Clear() { h.items = nil }

// Push inserts an event.
func (h *eventHeap) Push(e event) {
	h.items = append(h.items, e)
	h.up(len(h.items) - 1)
}

// Peek returns the earliest event without removing it. It must not be called
// on an empty heap.
func (h *eventHeap) Peek() event { return h.items[0] }

// Pop removes and returns the earliest event. It must not be called on an
// empty heap.
func (h *eventHeap) Pop() event {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items[n] = event{} // release fn for GC
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
	return top
}

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
