package sim

import "fmt"

// procState tracks where a process is in its lifecycle.
type procState uint8

const (
	stateScheduled procState = iota // a resumption event is on the heap
	stateRunning                    // currently executing
	statePassive                    // suspended, waiting for Activate
	stateDone                       // body returned or process was killed
)

// errKilled is the panic value used to unwind a process during Shutdown.
type errKilledType struct{}

var errKilled = errKilledType{}

// Process is a simulation coroutine. Its body runs in its own goroutine, but
// the kernel guarantees that at most one process executes at a time and only
// while the kernel is suspended, so process bodies may freely access shared
// simulation state without locking.
type Process struct {
	sim  *Sim
	id   int
	name string

	// resume carries kernel→process hand-offs: true resumes execution,
	// false unwinds the process (Shutdown).
	resume chan bool
	state  procState
}

// Spawn creates a process and schedules its first activation after delay.
// The name is used in diagnostics only.
func (s *Sim) Spawn(name string, delay Time, body func(p *Process)) *Process {
	s.nextPID++
	p := &Process{
		sim:    s,
		id:     s.nextPID,
		name:   name,
		resume: make(chan bool),
		state:  stateScheduled,
	}
	s.live[p] = struct{}{}
	go p.run(body)
	s.Schedule(delay, func() { s.transfer(p) })
	return p
}

// run is the goroutine wrapper around the process body. It waits for the
// first activation, executes the body, and always hands control back to the
// kernel exactly once at the end, even on panic.
func (p *Process) run(body func(p *Process)) {
	defer func() {
		r := recover()
		p.state = stateDone
		delete(p.sim.live, p)
		if r != nil {
			if _, killed := r.(errKilledType); !killed {
				p.sim.fatal = fmt.Sprintf("process %q (#%d): %v", p.name, p.id, r)
			}
		}
		p.sim.cur = nil
		p.sim.park <- struct{}{}
	}()
	if !<-p.resume {
		panic(errKilled)
	}
	body(p)
}

// transfer hands control from the kernel to p until p yields or finishes.
// It runs in kernel context.
func (s *Sim) transfer(p *Process) {
	if p.state == stateDone {
		return
	}
	p.state = stateRunning
	s.cur = p
	p.resume <- true
	<-s.park
}

// yield returns control to the kernel. The process blocks until resumed
// (or unwinds if the simulation is shutting down).
func (p *Process) yield() {
	p.sim.cur = nil
	p.sim.park <- struct{}{}
	if !<-p.resume {
		panic(errKilled)
	}
	p.sim.cur = p
}

// Name returns the diagnostic name given at Spawn.
func (p *Process) Name() string { return p.name }

// ID returns the process's unique id (1-based, in spawn order).
func (p *Process) ID() int { return p.id }

// Sim returns the simulation the process belongs to.
func (p *Process) Sim() *Sim { return p.sim }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.sim.now }

// Hold suspends the process for dt simulated time units.
func (p *Process) Hold(dt Time) {
	p.mustBeCurrent("Hold")
	if dt < 0 {
		panic(fmt.Sprintf("sim: negative hold %v", dt))
	}
	p.state = stateScheduled
	p.sim.Schedule(dt, func() { p.sim.transfer(p) })
	p.yield()
}

// Passivate suspends the process indefinitely; some other entity must call
// Activate to resume it. This is the building block for queues and locks.
func (p *Process) Passivate() {
	p.mustBeCurrent("Passivate")
	p.state = statePassive
	p.yield()
}

// Activate schedules a passivated process to resume after delay. It panics
// if the process is not passive (running, already scheduled, or done):
// double activation would corrupt queue disciplines built on Passivate.
func (s *Sim) Activate(p *Process, delay Time) {
	if p.state != statePassive {
		panic(fmt.Sprintf("sim: Activate on process %q (#%d) in state %d", p.name, p.id, p.state))
	}
	p.state = stateScheduled
	s.Schedule(delay, func() { s.transfer(p) })
}

func (p *Process) mustBeCurrent(op string) {
	if p.sim.cur != p {
		panic(fmt.Sprintf("sim: %s called on process %q (#%d) from outside its own body", op, p.name, p.id))
	}
}
