package sim

import "fmt"

// Process is a simulation process: a resumable state machine identified for
// diagnostics and passivation. A process does not own a stack — its body
// runs in kernel context until it issues a blocking operation, which
// registers a continuation and returns. The kernel serializes all
// continuations, so process code may freely access shared simulation state
// without locking.
type Process struct {
	sim  *Sim
	id   int
	name string

	// k is the stored continuation while the process is passivated; nil
	// otherwise. Activate schedules and clears it.
	k func()
}

// Spawn creates a process and schedules its body after delay. The body runs
// to its first blocking call; the name is used in diagnostics only.
func (s *Sim) Spawn(name string, delay Time, body func(p *Process)) *Process {
	s.nextPID++
	p := &Process{sim: s, id: s.nextPID, name: name}
	s.Schedule(delay, func() { body(p) })
	return p
}

// NewProcess creates a process without scheduling anything. It is the
// carrier for pooled state machines that drive themselves through Schedule:
// the caller owns activation, and the process can be reused across logical
// lifetimes because the kernel keeps no reference to it.
func (s *Sim) NewProcess(name string) *Process {
	s.nextPID++
	return &Process{sim: s, id: s.nextPID, name: name}
}

// Name returns the diagnostic name given at Spawn.
func (p *Process) Name() string { return p.name }

// ID returns the process's unique id (1-based, in spawn order).
func (p *Process) ID() int { return p.id }

// Sim returns the simulation the process belongs to.
func (p *Process) Sim() *Sim { return p.sim }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.sim.now }

// Hold suspends the process for dt simulated time units, then runs k.
func (p *Process) Hold(dt Time, k func()) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: negative hold %v", dt))
	}
	p.sim.Schedule(dt, k)
}

// Passivate suspends the process indefinitely with k as its resumption;
// some other entity must call Activate to schedule it. This is the building
// block for bespoke queues and locks. It panics if the process is already
// passive: two pending resumptions would corrupt any queue discipline built
// on top.
func (p *Process) Passivate(k func()) {
	if p.k != nil {
		panic(fmt.Sprintf("sim: Passivate on already-passive process %q (#%d)", p.name, p.id))
	}
	if k == nil {
		panic(fmt.Sprintf("sim: Passivate with nil continuation on process %q (#%d)", p.name, p.id))
	}
	p.k = k
}

// Activate schedules a passivated process's continuation after delay. It
// panics if the process is not passive (running, already scheduled, or
// finished): double activation would corrupt queue disciplines built on
// Passivate.
func (s *Sim) Activate(p *Process, delay Time) {
	if p.k == nil {
		panic(fmt.Sprintf("sim: Activate on non-passive process %q (#%d)", p.name, p.id))
	}
	k := p.k
	p.k = nil
	s.Schedule(delay, k)
}

// Passive reports whether the process is suspended awaiting Activate.
func (p *Process) Passive() bool { return p.k != nil }
