package sim

import (
	"math"
	"testing"
)

func TestResourceSingleServerSerializes(t *testing.T) {
	s := New()
	r := s.NewResource("cpu", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		s.Spawn("job", 0, func(p *Process) {
			r.Use(p, 10, func() { finish = append(finish, p.Now()) })
		})
	}
	s.RunAll()
	want := []Time{10, 20, 30}
	if len(finish) != len(want) {
		t.Fatalf("finish = %v, want %v", finish, want)
	}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceMultiServerParallel(t *testing.T) {
	s := New()
	r := s.NewResource("cpus", 3)
	var finish []Time
	for i := 0; i < 3; i++ {
		s.Spawn("job", 0, func(p *Process) {
			r.Use(p, 10, func() { finish = append(finish, p.Now()) })
		})
	}
	s.RunAll()
	if len(finish) != 3 {
		t.Fatalf("finish = %v", finish)
	}
	for _, f := range finish {
		if f != 10 {
			t.Fatalf("finish = %v, want all 10", finish)
		}
	}
}

func TestResourceFCFS(t *testing.T) {
	s := New()
	r := s.NewResource("disk", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Spawn("job", Time(i), func(p *Process) {
			r.Use(p, 100, func() { order = append(order, i) })
		})
	}
	s.RunAll()
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v, want FCFS", order)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	s := New()
	r := s.NewResource("dev", 1)
	s.Spawn("job", 0, func(p *Process) { r.Use(p, 25, func() {}) })
	s.Spawn("spacer", 0, func(p *Process) { p.Hold(100, func() {}) })
	s.RunAll()
	if got := r.Utilization(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
}

func TestResourceWaitAccounting(t *testing.T) {
	s := New()
	r := s.NewResource("dev", 1)
	var waited Time = -1
	s.Spawn("first", 0, func(p *Process) { r.Use(p, 10, func() {}) })
	s.Spawn("second", 0, func(p *Process) {
		r.Acquire(p, func(w Time) {
			waited = w
			p.Hold(5, func() { r.Release() })
		})
	})
	s.RunAll()
	if waited != 10 {
		t.Fatalf("waited = %v, want 10", waited)
	}
	if r.Acquires() != 2 || r.Waits() != 1 {
		t.Fatalf("acquires=%d waits=%d", r.Acquires(), r.Waits())
	}
	if got := r.MeanWait(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("mean wait = %v, want 5", got)
	}
}

func TestResourceSlotTransfer(t *testing.T) {
	// When a server is released to a waiter, busy count must stay constant
	// (no window where the slot looks free).
	s := New()
	r := s.NewResource("dev", 1)
	s.Spawn("a", 0, func(p *Process) { r.Use(p, 10, func() {}) })
	s.Spawn("b", 0, func(p *Process) { r.Use(p, 10, func() {}) })
	s.Spawn("watcher", 10, func(p *Process) {
		if r.Busy() != 1 {
			t.Errorf("busy = %d at handover instant, want 1", r.Busy())
		}
	})
	s.RunAll()
	if r.Busy() != 0 {
		t.Fatalf("busy = %d at end", r.Busy())
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	s := New()
	r := s.NewResource("dev", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Release()
}

func TestZeroCapacityPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.NewResource("bad", 0)
}

func TestResourceMeanQueueLen(t *testing.T) {
	s := New()
	r := s.NewResource("dev", 1)
	// Three jobs arrive at t=0; service 10 each. Queue length is 2 during
	// [0,10), 1 during [10,20), 0 during [20,30): integral = 30 over 30.
	for i := 0; i < 3; i++ {
		s.Spawn("job", 0, func(p *Process) { r.Use(p, 10, func() {}) })
	}
	s.RunAll()
	if got := r.MeanQueueLen(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("mean queue len = %v, want 1.0", got)
	}
}

// M/D/1-style sanity: with many deterministic jobs the resource never
// exceeds capacity and all jobs complete.
func TestResourceInvariants(t *testing.T) {
	s := New()
	r := s.NewResource("dev", 2)
	done := 0
	violated := false
	for i := 0; i < 200; i++ {
		s.Spawn("job", Time(i%17), func(p *Process) {
			r.Acquire(p, func(Time) {
				if r.Busy() > r.Capacity() {
					violated = true
				}
				p.Hold(3, func() {
					r.Release()
					done++
				})
			})
		})
	}
	s.RunAll()
	if violated {
		t.Fatal("busy exceeded capacity")
	}
	if done != 200 {
		t.Fatalf("done = %d, want 200", done)
	}
	if r.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", r.QueueLen())
	}
}

// TestPeakQueueLen: the peak wait-queue length is tracked across both
// Acquire and Use queueing, and ResetPeakQueueLen restarts tracking from
// the current queue.
func TestPeakQueueLen(t *testing.T) {
	s := New()
	r := s.NewResource("r", 1)
	for i := 0; i < 4; i++ {
		r.Use(nil, 10, func() {})
	}
	if got := r.PeakQueueLen(); got != 3 {
		t.Fatalf("peak = %d, want 3", got)
	}
	s.Run(15) // one holder done, one waiter promoted: queue is 2
	if got := r.QueueLen(); got != 2 {
		t.Fatalf("queue = %d, want 2", got)
	}
	r.ResetPeakQueueLen()
	if got := r.PeakQueueLen(); got != 2 {
		t.Fatalf("peak after reset = %d, want current queue 2", got)
	}
	s.RunAll()
	if got := r.PeakQueueLen(); got != 2 {
		t.Fatalf("peak = %d after drain, want 2 (no growth past reset)", got)
	}
}

// TestResourceContendedZeroAlloc pins the pooled queue-entry path: once the
// waiter ring and pending-wake ring are warm, a fully contended
// acquire/use/release storm allocates nothing. This is the steady-state
// contract the engine's hot path depends on — deleting the ring reuse in
// push/pop/fireWake fails this test.
func TestResourceContendedZeroAlloc(t *testing.T) {
	s := New()
	r := s.NewResource("dev", 1)
	p := s.Spawn("driver", 0, func(*Process) {})
	s.RunAll()
	noop := func() {}
	onAcq := func(Time) { r.Release() }
	allocs := testing.AllocsPerRun(50, func() {
		// Three users on a single server: two queue behind the first, so
		// every Release exercises the slot-transfer wake. Zero-length
		// holds keep the events inside the current calendar bucket — the
		// measurement is the resource path, not ring-slot warmup.
		r.Use(p, 0, noop)
		r.Use(p, 0, noop)
		r.Use(p, 0, noop)
		// A plain Acquire that queues behind the last Use.
		r.Acquire(p, onAcq)
		s.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("contended resource path allocates %.0f/op, want 0", allocs)
	}
}
