package sim

// BlockingProcess adapts the continuation kernel back to straight-line,
// blocking process bodies for code where continuation chaining is not worth
// the rewrite — primarily test drivers that script long sequences of device
// operations. It is the one place the old goroutine hand-off survives: the
// body runs on its own goroutine, and strict hand-off channels guarantee
// that exactly one of the kernel or the body executes at any instant, so
// determinism is preserved. None of the simulator's hot paths use it.
type BlockingProcess struct {
	p *Process

	// Strict hand-off pair: toBody resumes the body goroutine, toKernel
	// returns control to the kernel. Both are unbuffered, so every transfer
	// is a synchronous rendezvous (and a happens-before edge for -race).
	toBody   chan struct{}
	toKernel chan struct{}
}

// SpawnBlocking creates a process whose body runs blocking-style on its own
// goroutine, starting after delay. The body must run to completion before
// the simulation is abandoned; a body suspended forever (e.g. awaiting a
// continuation that never fires) leaks its goroutine.
func (s *Sim) SpawnBlocking(name string, delay Time, body func(b *BlockingProcess)) *Process {
	b := &BlockingProcess{
		toBody:   make(chan struct{}),
		toKernel: make(chan struct{}),
	}
	b.p = s.Spawn(name, delay, func(p *Process) {
		//detlint:allow rawgo strict hand-off shim: unbuffered channel pair guarantees exactly one of kernel/body runs at any instant, so scheduling order cannot vary
		go func() {
			<-b.toBody
			body(b)
			b.toKernel <- struct{}{}
		}()
		b.resumeBody()
	})
	return b.p
}

// resumeBody hands control to the body goroutine and blocks the kernel until
// the body yields (parks in Await or finishes).
func (b *BlockingProcess) resumeBody() {
	b.toBody <- struct{}{}
	<-b.toKernel
}

// Proc returns the underlying kernel process, for passing to continuation
// APIs inside Await.
func (b *BlockingProcess) Proc() *Process { return b.p }

// Now returns the current simulated time.
func (b *BlockingProcess) Now() Time { return b.p.sim.now }

// Sim returns the simulation the process belongs to.
func (b *BlockingProcess) Sim() *Sim { return b.p.sim }

// Await runs one continuation-style operation and blocks the body until the
// operation's continuation fires. op must arrange for done to be called
// exactly once — either synchronously (no simulated delay) or from a later
// kernel event.
func (b *BlockingProcess) Await(op func(done func())) {
	sync, completed := true, false
	op(func() {
		if sync {
			// The operation completed without suspending; the body simply
			// continues.
			completed = true
			return
		}
		// Kernel context: the continuation fired in a later event. Hand
		// control back to the body until it yields again.
		b.resumeBody()
	})
	sync = false
	if completed {
		return
	}
	// The operation suspended: yield to the kernel and park until the
	// continuation resumes us.
	b.toKernel <- struct{}{}
	<-b.toBody
}

// Hold suspends the body for dt simulated time units.
func (b *BlockingProcess) Hold(dt Time) {
	b.Await(func(done func()) { b.p.Hold(dt, done) })
}

// Acquire obtains one server of r blocking-style and returns the time spent
// waiting.
func (b *BlockingProcess) Acquire(r *Resource) Time {
	var waited Time
	b.Await(func(done func()) {
		r.Acquire(b.p, func(w Time) {
			waited = w
			done()
		})
	})
	return waited
}

// Use acquires a server of r, holds it for dt, and releases it.
func (b *BlockingProcess) Use(r *Resource, dt Time) {
	b.Await(func(done func()) { r.Use(b.p, dt, done) })
}
