// Package sim provides a deterministic process-oriented discrete-event
// simulation kernel. It replaces the DeNet simulation language the paper's
// TPSIM system was written in.
//
// The kernel executes events from a time-ordered heap. A Process is a
// coroutine (backed by a goroutine with strict hand-off): exactly one of the
// kernel or a single process runs at any instant, so simulations are fully
// deterministic — equal-time events fire in scheduling order, and all
// randomness comes from explicitly seeded generators outside this package.
package sim

import "fmt"

// Time is simulated time. TPSIM models express it in milliseconds.
type Time = float64

// Sim is a discrete-event simulation instance. It is not safe for concurrent
// use; all interaction must happen from the goroutine that calls Run or from
// within process bodies (which the kernel serializes).
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64

	// park is the strict hand-off channel: a running process sends on it to
	// return control to the kernel.
	park chan struct{}
	cur  *Process
	live map[*Process]struct{}

	// fatal records a panic raised inside a process body so the kernel can
	// re-raise it with context instead of deadlocking.
	fatal any

	nextPID int
}

// New creates an empty simulation at time zero.
func New() *Sim {
	return &Sim{
		park: make(chan struct{}),
		live: make(map[*Process]struct{}),
	}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Pending reports the number of scheduled events (including process
// resumptions).
func (s *Sim) Pending() int { return s.events.Len() }

// Schedule runs fn in kernel context at now+delay. delay must be
// non-negative. fn must not block; to model activity that takes simulated
// time, spawn a Process instead.
func (s *Sim) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.seq++
	s.events.Push(event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run executes events until the event heap is empty or the next event would
// fire after the until timestamp. It returns the simulated time at which it
// stopped. Events exactly at until still fire.
func (s *Sim) Run(until Time) Time {
	for s.events.Len() > 0 {
		if s.events.Peek().at > until {
			s.now = until
			return s.now
		}
		ev := s.events.Pop()
		s.now = ev.at
		ev.fn()
		if s.fatal != nil {
			panic(fmt.Sprintf("sim: process panic at t=%v: %v", s.now, s.fatal))
		}
	}
	return s.now
}

// RunAll executes events until none remain.
func (s *Sim) RunAll() Time {
	for s.events.Len() > 0 {
		ev := s.events.Pop()
		s.now = ev.at
		ev.fn()
		if s.fatal != nil {
			panic(fmt.Sprintf("sim: process panic at t=%v: %v", s.now, s.fatal))
		}
	}
	return s.now
}

// LiveProcesses reports how many spawned processes have not yet finished.
func (s *Sim) LiveProcesses() int { return len(s.live) }

// Shutdown terminates every live process (unwinding their stacks so deferred
// cleanup runs) and drops all pending events. After Shutdown the simulation
// can be inspected but no longer advanced. It must be called from kernel
// context (not from within a process body).
func (s *Sim) Shutdown() {
	if s.cur != nil {
		panic("sim: Shutdown called from within a process")
	}
	victims := make([]*Process, 0, len(s.live))
	for p := range s.live {
		victims = append(victims, p)
	}
	for _, p := range victims {
		if p.state == stateDone {
			continue
		}
		p.resume <- false
		<-s.park
	}
	s.events.items = nil
	if s.fatal != nil {
		panic(fmt.Sprintf("sim: process panic during shutdown: %v", s.fatal))
	}
}
