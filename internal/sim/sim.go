// Package sim provides a deterministic process-oriented discrete-event
// simulation kernel. It replaces the DeNet simulation language the paper's
// TPSIM system was written in.
//
// The kernel is continuation-based: every blocking operation (Hold, resource
// acquisition, passivation) returns control to the scheduler by enqueuing a
// continuation on the time-ordered event heap instead of parking a
// goroutine. Everything runs on the kernel's own stack, so there are no
// channel hand-offs, no context switches and no cross-goroutine panic
// plumbing on the hot path. Simulations are fully deterministic — events
// with equal timestamps fire in scheduling order, and all randomness comes
// from explicitly seeded generators outside this package.
package sim

import "fmt"

// Time is simulated time. TPSIM models express it in milliseconds.
type Time = float64

// Sim is a discrete-event simulation instance. It is not safe for concurrent
// use; all interaction must happen from the goroutine that calls Run or from
// within event continuations (which the kernel serializes).
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64

	nextPID int
}

// New creates an empty simulation at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Pending reports the number of scheduled events (including process
// continuations).
func (s *Sim) Pending() int { return s.events.Len() }

// Schedule runs fn in kernel context at now+delay. delay must be
// non-negative. fn must not block; activity that takes simulated time is
// expressed by scheduling a continuation for the remainder.
func (s *Sim) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.seq++
	s.events.Push(event{at: s.now + delay, seq: s.seq, fn: fn})
}

// scheduleRelease schedules fn at now+delay with r released first at fire
// time — the allocation-free backbone of Resource.Use.
func (s *Sim) scheduleRelease(r *Resource, delay Time, fn func()) {
	s.seq++
	s.events.Push(event{at: s.now + delay, seq: s.seq, fn: fn, release: r})
}

// Run executes events until the event heap is empty or the next event would
// fire after the until timestamp. It returns the simulated time at which it
// stopped. Events exactly at until still fire.
func (s *Sim) Run(until Time) Time {
	for s.events.Len() > 0 {
		if s.events.Peek().at > until {
			s.now = until
			return s.now
		}
		ev := s.events.Pop()
		s.now = ev.at
		if ev.release != nil {
			ev.release.Release()
		}
		ev.fn()
	}
	return s.now
}

// RunAll executes events until none remain.
func (s *Sim) RunAll() Time {
	for s.events.Len() > 0 {
		ev := s.events.Pop()
		s.now = ev.at
		if ev.release != nil {
			ev.release.Release()
		}
		ev.fn()
	}
	return s.now
}

// Shutdown drops all pending events: suspended processes and queued
// continuations are abandoned where they stand. After Shutdown the
// simulation can be inspected but no longer advanced.
func (s *Sim) Shutdown() {
	s.events.items = nil
}
