// Package sim provides a deterministic process-oriented discrete-event
// simulation kernel. It replaces the DeNet simulation language the paper's
// TPSIM system was written in.
//
// The kernel is continuation-based: every blocking operation (Hold, resource
// acquisition, passivation) returns control to the scheduler by enqueuing a
// continuation on the time-ordered event heap instead of parking a
// goroutine. Everything runs on the kernel's own stack, so there are no
// channel hand-offs, no context switches and no cross-goroutine panic
// plumbing on the hot path. Simulations are fully deterministic — events
// with equal timestamps fire in scheduling order, and all randomness comes
// from explicitly seeded generators outside this package.
package sim

import "fmt"

// Time is simulated time. TPSIM models express it in milliseconds.
type Time = float64

// Sim is a discrete-event simulation instance. It is not safe for concurrent
// use; all interaction must happen from the goroutine that calls Run or from
// within event continuations (which the kernel serializes).
type Sim struct {
	now    Time
	events eventQueue
	seq    uint64

	nextPID int
}

// eventQueue is the pending-event set behind a Sim. Both implementations
// order strictly by (at, seq), which is the kernel's determinism contract:
// any two queues fed the same pushes produce the same pop sequence.
type eventQueue interface {
	Len() int
	Push(event)
	// Peek and Pop return the (at, seq)-minimum; they must not be called
	// on an empty queue.
	Peek() event
	Pop() event
	Clear()
}

// QueueKind selects the event-queue implementation backing a Sim.
type QueueKind int

const (
	// QueueCalendar is the default: a calendar queue with O(1) amortized
	// operations and a heap-backed far-future overflow band.
	QueueCalendar QueueKind = iota
	// QueueHeap is the plain binary heap — O(log n), kept as the
	// reference implementation for differential tests.
	QueueHeap
)

// New creates an empty simulation at time zero, backed by the calendar
// queue.
func New() *Sim { return NewWithQueue(QueueCalendar) }

// NewWithQueue creates an empty simulation at time zero backed by the given
// event-queue implementation. Both kinds honor the same (at, seq) ordering
// contract, so the choice affects performance only.
func NewWithQueue(kind QueueKind) *Sim {
	if kind == QueueHeap {
		return &Sim{events: &eventHeap{}}
	}
	return &Sim{events: newCalQueue()}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Pending reports the number of scheduled events (including process
// continuations).
func (s *Sim) Pending() int { return s.events.Len() }

// Schedule runs fn in kernel context at now+delay. delay must be
// non-negative. fn must not block; activity that takes simulated time is
// expressed by scheduling a continuation for the remainder.
func (s *Sim) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.seq++
	s.events.Push(event{at: s.now + delay, seq: s.seq, fn: fn})
}

// scheduleRelease schedules fn at now+delay with r released first at fire
// time — the allocation-free backbone of Resource.Use.
func (s *Sim) scheduleRelease(r *Resource, delay Time, fn func()) {
	s.seq++
	s.events.Push(event{at: s.now + delay, seq: s.seq, fn: fn, release: r})
}

// Run executes events until the event queue is empty or the next event
// would fire after the until timestamp. It returns the simulated time at
// which it stopped. Events exactly at until still fire. The clock always
// lands on until (never before, never after): draining the queue early
// advances now to until just as the next-event-too-late exit does, so
// window-length math via Now() stays exact either way.
func (s *Sim) Run(until Time) Time {
	for s.events.Len() > 0 {
		if s.events.Peek().at > until {
			s.now = until
			return s.now
		}
		ev := s.events.Pop()
		s.now = ev.at
		if ev.release != nil {
			ev.release.Release()
		}
		ev.fn()
	}
	if s.now < until {
		s.now = until
	}
	return s.now
}

// RunAll executes events until none remain.
func (s *Sim) RunAll() Time {
	for s.events.Len() > 0 {
		ev := s.events.Pop()
		s.now = ev.at
		if ev.release != nil {
			ev.release.Release()
		}
		ev.fn()
	}
	return s.now
}

// Shutdown drops all pending events: suspended processes and queued
// continuations are abandoned where they stand. After Shutdown the
// simulation can be inspected but no longer advanced.
func (s *Sim) Shutdown() {
	s.events.Clear()
}
