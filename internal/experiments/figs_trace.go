package experiments

import (
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
)

// The real-life trace is deterministic per seed and read-only once built;
// share it across runs.
var (
	traceOnce   sync.Once
	sharedTrace *trace.Trace
)

func realLifeTrace() *trace.Trace {
	traceOnce.Do(func() { sharedTrace = trace.GenerateRealLife(42) })
	return sharedTrace
}

// traceRate is the replay arrival rate for the trace experiments. The paper
// used "a fixed arrival rate" without naming it; 20 TPS keeps the CPUs
// lightly loaded and lock contention subcritical, so the response time is
// I/O dominated as in Figs 4.6/4.7 (long queries make higher rates unstable
// under strict 2PL — see EXPERIMENTS.md).
const traceRate = 20

// TraceSetup describes one trace-driven simulation point (sections 4.6).
type TraceSetup struct {
	MMBuffer int
	DB       DBSpec // Regular, VolCache, NVCache, SSD, NVEMResident, NVEMCache
	Log      LogSpec
}

// Build assembles the engine configuration for a trace replay.
func (s TraceSetup) Build(o Options) (core.Config, error) {
	src, err := trace.NewSource(realLifeTrace(), traceRate)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Defaults()
	cfg.Seed = o.seed()
	cfg.WarmupMS, cfg.MeasureMS = o.windows()
	cfg.Partitions = src.Partitions()
	cfg.Generator = src
	cfg.CCModes = make([]cc.Granularity, len(cfg.Partitions))
	for i := range cfg.CCModes {
		cfg.CCModes[i] = cc.PageLevel
	}

	dbUnit := storage.DiskUnitConfig{
		Name: "db", Type: storage.Regular,
		NumControllers: 12, ContrDelay: core.DefaultContrDelay,
		TransDelay: core.DefaultTransDelay,
		NumDisks:   96, DiskDelay: core.DefaultDBDiskDelay,
	}
	part := buffer.PartitionAlloc{DiskUnit: 0}
	bufCfg := buffer.Config{
		BufferSize: s.MMBuffer,
		Logging:    true,
	}
	switch s.DB.Kind {
	case DBRegular:
	case DBVolCache:
		dbUnit.Type = storage.VolatileCache
		dbUnit.CacheSize = orDefault(s.DB.Size, 2000)
	case DBNVCache:
		dbUnit.Type = storage.NVCache
		dbUnit.CacheSize = orDefault(s.DB.Size, 2000)
	case DBSSD:
		dbUnit.Type = storage.SSD
		dbUnit.NumDisks = 0
		dbUnit.DiskDelay = 0
	case DBNVEMResident:
		part = buffer.PartitionAlloc{NVEMResident: true}
	case DBNVEMCache:
		part.NVEMCache = true
		part.NVEMCacheMode = buffer.MigrateAll
		bufCfg.NVEMCacheSize = orDefault(s.DB.Size, 2000)
	default:
		return core.Config{}, fmt.Errorf("experiments: trace DB kind %d unsupported", s.DB.Kind)
	}
	for range cfg.Partitions {
		bufCfg.Partitions = append(bufCfg.Partitions, part)
	}

	if s.Log.Disks == 0 {
		s.Log.Disks = 4
	}
	logUnit := storage.DiskUnitConfig{
		Name: "log", Type: storage.Regular,
		NumControllers: 2, ContrDelay: core.DefaultContrDelay,
		TransDelay: core.DefaultTransDelay,
		NumDisks:   s.Log.Disks, DiskDelay: core.DefaultLogDiskDelay,
	}
	switch s.Log.Kind {
	case LogDisk:
		bufCfg.Log = buffer.LogAlloc{DiskUnit: 1}
	case LogDiskWB:
		logUnit.Type = storage.NVCache
		logUnit.CacheSize = orDefault(s.Log.Size, 500)
		logUnit.WriteBufferOnly = true
		bufCfg.Log = buffer.LogAlloc{DiskUnit: 1}
	case LogNVEM:
		bufCfg.Log = buffer.LogAlloc{NVEMResident: true}
	default:
		return core.Config{}, fmt.Errorf("experiments: trace log kind %d unsupported", s.Log.Kind)
	}

	cfg.DiskUnits = []storage.DiskUnitConfig{dbUnit, logUnit}
	cfg.Buffer = bufCfg
	return cfg, nil
}

// Run builds and executes the setup.
func (s TraceSetup) Run(o Options) (*core.Result, error) {
	cfg, err := s.Build(o)
	if err != nil {
		return nil, err
	}
	return core.Run(cfg)
}

func (o Options) traceMMSizes() []int {
	if o.Quick {
		return []int{500, 2000}
	}
	return []int{100, 200, 500, 1000, 2000}
}

// Fig46 reproduces Fig 4.6: impact of the main-memory buffer size for the
// real-life workload, with fixed 2000-page second-level caches, plus the
// complete SSD and NVEM allocations.
func Fig46(o Options) (*stats.Figure, error) {
	sizes := o.traceMMSizes()
	fig := &stats.Figure{
		Title:  "Fig 4.6: Main memory buffer size, real-life trace (NOFORCE, 2nd-level 2000 pages)",
		XLabel: "MM buffer [pages]",
		YLabel: "mean response time [ms]",
	}
	for _, s := range sizes {
		fig.X = append(fig.X, float64(s))
	}
	schemes := []struct {
		label string
		db    DBSpec
		log   LogSpec
	}{
		{"mm-only", DBSpec{Kind: DBRegular}, LogSpec{Kind: LogDisk}},
		{"vol-disk-cache-2000", DBSpec{Kind: DBVolCache, Size: 2000}, LogSpec{Kind: LogDisk}},
		{"nv-disk-cache-2000", DBSpec{Kind: DBNVCache, Size: 2000}, LogSpec{Kind: LogDiskWB, Size: 500}},
		{"nvem-cache-2000", DBSpec{Kind: DBNVEMCache, Size: 2000}, LogSpec{Kind: LogNVEM}},
		{"ssd", DBSpec{Kind: DBSSD}, LogSpec{Kind: LogDiskWB, Size: 500}},
		{"nvem-resident", DBSpec{Kind: DBNVEMResident}, LogSpec{Kind: LogNVEM}},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	err := sweepFigure(o, fig, labels, func(si, xi int, o Options) (*core.Result, error) {
		sc, mm := schemes[si], sizes[xi]
		res, err := TraceSetup{MMBuffer: mm, DB: sc.db, Log: sc.log}.Run(o)
		if err != nil {
			return nil, fmt.Errorf("fig4.6 %s mm=%d: %w", sc.label, mm, err)
		}
		return res, nil
	}, respMean)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

func (o Options) traceSecondSizes() []int {
	if o.Quick {
		return []int{0, 2000}
	}
	return []int{0, 500, 1000, 2000, 5000}
}

// Fig47 reproduces Fig 4.7: impact of the 2nd-level buffer size for the
// real-life workload (1000-page main-memory buffer). Size 0 is main-memory
// caching only.
func Fig47(o Options) (*stats.Figure, error) {
	sizes := o.traceSecondSizes()
	fig := &stats.Figure{
		Title:  "Fig 4.7: 2nd-level buffer size, real-life trace (NOFORCE, MM=1000)",
		XLabel: "2nd-level size [pages]",
		YLabel: "mean response time [ms]",
	}
	for _, s := range sizes {
		fig.X = append(fig.X, float64(s))
	}
	schemes := []struct {
		label string
		kind  DBKind
		log   LogSpec
	}{
		{"vol-disk-cache", DBVolCache, LogSpec{Kind: LogDisk}},
		{"nv-disk-cache", DBNVCache, LogSpec{Kind: LogDiskWB, Size: 500}},
		{"nvem-cache", DBNVEMCache, LogSpec{Kind: LogNVEM}},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	err := sweepFigure(o, fig, labels, func(si, xi int, o Options) (*core.Result, error) {
		sc, size := schemes[si], sizes[xi]
		setup := TraceSetup{MMBuffer: 1000, Log: sc.log}
		if size == 0 {
			setup.DB = DBSpec{Kind: DBRegular}
			setup.Log = LogSpec{Kind: LogDisk}
		} else {
			setup.DB = DBSpec{Kind: sc.kind, Size: size}
		}
		res, err := setup.Run(o)
		if err != nil {
			return nil, fmt.Errorf("fig4.7 %s size=%d: %w", sc.label, size, err)
		}
		return res, nil
	}, respMean)
	if err != nil {
		return nil, err
	}
	return fig, nil
}
