package experiments

import (
	"strings"
	"testing"
)

// TestEveryExperimentRunsQuick executes the complete registry in quick mode
// — the same code paths cmd/experiments and bench_test.go use — and checks
// each output renders with its series/rows present.
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	wantFragments := map[string][]string{
		"fig4.1":                     {"log-single-disk", "log-nvem"},
		"fig4.2":                     {"disk", "ssd", "nvem-resident", "mm-resident"},
		"fig4.3":                     {"FORCE:disk", "NOFORCE:nvem-resident"},
		"fig4.4":                     {"mm-only", "nvem-cache-1000"},
		"fig4.5":                     {"Fig 4.5a", "Fig 4.5b", "nvem-cache"},
		"fig4.6":                     {"mm-only", "ssd", "nvem-resident"},
		"fig4.7":                     {"vol-disk-cache", "nvem-cache"},
		"fig4.8":                     {"disk:page-locks", "nvem:page-locks"},
		"table4.2a":                  {"main memory", "NVEM cache 500"},
		"table4.2b":                  {"main memory", "FORCE"},
		"table2.1":                   {"extended memory", "measured response"},
		"ablation.group-commit":      {"group-commit"},
		"ablation.async-replacement": {"async-replacement"},
		"ablation.migration-modes":   {"nvem-add-hit-pct"},
		"ablation.destage-policy":    {"immediate", "deferred"},
		"ablation.clustering":        {"clustered", "unclustered"},
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			out, err := e.Run(quick)
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", e.Name)
			}
			for _, frag := range wantFragments[e.Name] {
				if !strings.Contains(out, frag) {
					t.Errorf("%s output missing %q:\n%s", e.Name, frag, out)
				}
			}
		})
	}
}
