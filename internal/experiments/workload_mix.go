package experiments

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Second-wave workload-realism experiments (ROADMAP "Workload realism"):
// the paper's evaluation draws every object uniformly, runs a single
// transaction class, and drives it open-loop at a fixed Poisson rate.
// These experiments relax each assumption in turn on the same storage
// schemes: access skew vs. NVEM cache size (workload.skew), a TPC-C-style
// multi-class mix sharing the buffer (workload.multiclass), closed-loop
// terminals with think times (workload.closedloop), and a recorded rate
// timeline replayed through the Replay arrival process (workload.replay).

// --- workload.skew -------------------------------------------------------

// Skew experiment constants. The hot-spot spec puts 90% of the
// within-branch account draws on the first 10 accounts of each branch —
// exactly one hot ACCOUNT page per branch, 500 hot pages in total. The
// main-memory buffer is kept well below that working set, so the sweep of
// the NVEM second-level cache size crosses "hot set almost fits" between
// the smallest and largest size.
const (
	skewRate     = 300
	skewMMBuffer = 300
	skewHotFrac  = 0.9
	skewHotData  = 0.0001
	skewTheta    = 0.95
)

func (o Options) skewNVEMSizes() []int {
	if o.Quick {
		return []int{125, 500, 2000}
	}
	return []int{125, 250, 500, 1000, 2000}
}

// WorkloadSkew sweeps the NVEM second-level cache size under three
// within-branch account access distributions at a fixed 300 TPS. Uniform
// draws (the paper's benchmark definition) spread account accesses over 5M
// pages and the NVEM cache can only capture the small BRANCH/TELLER
// partition; the hot-spot distribution concentrates 90% of them on 500
// pages, so response time falls off a knee once the cache grows past the
// hot set; Zipf sits in between.
func WorkloadSkew(o Options) (*stats.Figure, *stats.Figure, error) {
	sizes := o.skewNVEMSizes()
	resp := &stats.Figure{
		Title: fmt.Sprintf("Access skew vs. NVEM cache size (Debit-Credit %d TPS, MM=%d)",
			skewRate, skewMMBuffer),
		XLabel: "NVEM cache [pages]",
		YLabel: "mean response time [ms]",
	}
	for _, s := range sizes {
		resp.X = append(resp.X, float64(s))
	}
	hits := &stats.Figure{
		Title:  "Access skew: additional NVEM cache hits",
		XLabel: "NVEM cache [pages]",
		YLabel: "NVEM hit ratio [%]",
		X:      resp.X,
	}
	schemes := []struct {
		label string
		skew  workload.AccessSpec
	}{
		{"uniform", workload.AccessSpec{}},
		{"zipf-0.95", workload.AccessSpec{Kind: workload.AccessZipf, Theta: skewTheta}},
		{"hotspot-90/0.01", workload.AccessSpec{Kind: workload.AccessHotSpot,
			HotAccessFrac: skewHotFrac, HotDataFrac: skewHotData}},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	g := newGrid(o, len(schemes), len(sizes))
	for si := range schemes {
		for xi := range sizes {
			si, xi := si, xi
			g.add(si, xi, func(o Options) (*core.Result, error) {
				sc, size := schemes[si], sizes[xi]
				res, err := DCSetup{Rate: skewRate, MMBuffer: skewMMBuffer,
					DB:   DBSpec{Kind: DBNVEMCache, Size: size},
					Log:  LogSpec{Kind: LogNVEM},
					Skew: sc.skew}.Run(o)
				if err != nil {
					return nil, fmt.Errorf("workload.skew %s nvem=%d: %w", sc.label, size, err)
				}
				return res, nil
			})
		}
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, err
	}
	for si, label := range labels {
		points, cis := seriesOf(cells[si], respMean)
		if err := resp.AddSeriesCI(label, points, cis); err != nil {
			return nil, nil, err
		}
		h, hCI := seriesOf(cells[si], func(r *core.Result) float64 { return r.NVEMAddHitPct })
		if err := hits.AddSeriesCI(label, h, hCI); err != nil {
			return nil, nil, err
		}
	}
	return resp, hits, nil
}

// --- workload.multiclass -------------------------------------------------

// Mix experiment constants: the short-update and read-mostly classes run at
// fixed rates while the batch-scan rate is swept. Scans read-lock long runs
// of ORDERS pages under strict 2PL and flush the shared buffer, so the
// short classes degrade as the scan rate grows.
const (
	mixUpdateTPS = 30
	mixReadTPS   = 8
)

func (o Options) mixScanRates() []float64 {
	if o.Quick {
		return []float64{0, 0.8, 1.6}
	}
	return []float64{0, 0.4, 0.8, 1.2, 1.6}
}

// MixSetup is one multi-class simulation point: the standard three-class
// mix (workload.DefaultClassMix) on the shared two-partition database.
type MixSetup struct {
	UpdateTPS float64
	ReadTPS   float64
	ScanTPS   float64
	Skew      workload.AccessSpec
}

// Build assembles the engine configuration for the mix.
func (s MixSetup) Build(o Options) (core.Config, error) {
	model, err := workload.ClassMixModel(
		workload.DefaultClassMix(s.UpdateTPS, s.ReadTPS, s.ScanTPS), s.Skew)
	if err != nil {
		return core.Config{}, err
	}
	gen, err := workload.NewSynthetic(model)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Defaults()
	cfg.Seed = o.seed()
	cfg.WarmupMS, cfg.MeasureMS = o.windows()
	cfg.Partitions = model.Partitions
	cfg.Generator = gen
	cfg.CCModes = []cc.Granularity{cc.PageLevel, cc.PageLevel}
	// One CPU: a 400-object batch scan is a ~320 ms CPU burst, so the mix
	// contends on the processor the way mixed OLTP/batch systems do — the
	// short classes queue behind in-progress scans.
	cfg.NumCPU = 1

	cfg.DiskUnits = []storage.DiskUnitConfig{
		{Name: "db", Type: storage.Regular, NumControllers: 12,
			ContrDelay: core.DefaultContrDelay, TransDelay: core.DefaultTransDelay,
			NumDisks: 96, DiskDelay: core.DefaultDBDiskDelay},
		{Name: "log", Type: storage.Regular, NumControllers: 2,
			ContrDelay: core.DefaultContrDelay, TransDelay: core.DefaultTransDelay,
			NumDisks: 8, DiskDelay: core.DefaultLogDiskDelay},
	}
	cfg.Buffer = buffer.Config{
		BufferSize: 2000,
		Logging:    true,
		Partitions: []buffer.PartitionAlloc{{DiskUnit: 0}, {DiskUnit: 0}},
		Log:        buffer.LogAlloc{DiskUnit: 1},
	}
	return cfg, nil
}

// Run builds and executes the setup.
func (s MixSetup) Run(o Options) (*core.Result, error) {
	cfg, err := s.Build(o)
	if err != nil {
		return nil, err
	}
	return core.Run(cfg)
}

// classMetric maps a run to a per-class metric, 0 when the class is absent.
func classMetric(name string, f func(core.ClassReport) float64) func(*core.Result) float64 {
	return func(r *core.Result) float64 {
		for _, c := range r.Classes {
			if c.Name == name {
				return f(c)
			}
		}
		return 0
	}
}

// WorkloadMulticlass sweeps the batch-scan arrival rate under the standard
// three-class mix and reports each class's mean response time, plus the
// full per-class accounting at the highest scan rate. The interesting
// number is not the scans' own response time but the collateral damage:
// scans hold read locks on ORDERS page runs and churn the shared buffer,
// so the short updates slow down although their own load never changes.
func WorkloadMulticlass(o Options) (*stats.Figure, *stats.Table, error) {
	scanRates := o.mixScanRates()
	fig := &stats.Figure{
		Title: fmt.Sprintf("Multi-class mix: per-class response vs. batch-scan rate (update %d TPS, read-mostly %d TPS)",
			mixUpdateTPS, mixReadTPS),
		XLabel: "scan TPS",
		YLabel: "mean response time [ms]",
		X:      scanRates,
	}
	classes := []string{"short-update", "read-mostly", "batch-scan"}
	g := newGrid(o, 1, len(scanRates))
	for xi := range scanRates {
		xi := xi
		g.add(0, xi, func(o Options) (*core.Result, error) {
			res, err := MixSetup{UpdateTPS: mixUpdateTPS, ReadTPS: mixReadTPS,
				ScanTPS: scanRates[xi]}.Run(o)
			if err != nil {
				return nil, fmt.Errorf("workload.multiclass scan=%v: %w", scanRates[xi], err)
			}
			return res, nil
		})
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, err
	}
	for _, name := range classes {
		points, cis := seriesOf(cells[0], classMetric(name, func(c core.ClassReport) float64 {
			return c.RespMean
		}))
		if err := fig.AddSeriesCI(name, points, cis); err != nil {
			return nil, nil, err
		}
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Per-class accounting at scan TPS = %v", scanRates[len(scanRates)-1]),
		"class", classes,
		[]string{"commits", "aborts", "dropped", "shed", "resp-ms", "p95-ms"})
	metrics := []func(core.ClassReport) float64{
		func(c core.ClassReport) float64 { return float64(c.Commits) },
		func(c core.ClassReport) float64 { return float64(c.Aborts) },
		func(c core.ClassReport) float64 { return float64(c.Dropped) },
		func(c core.ClassReport) float64 { return float64(c.Shed) },
		func(c core.ClassReport) float64 { return c.RespMean },
		func(c core.ClassReport) float64 { return c.RespP95 },
	}
	last := cells[0][len(scanRates)-1]
	for r, name := range classes {
		for c, metric := range metrics {
			mean, ci := last.meanCI(classMetric(name, metric))
			if o.reps() > 1 {
				tbl.SetCI(r, c, mean, ci)
			} else {
				tbl.Set(r, c, mean)
			}
		}
	}
	return fig, tbl, nil
}

// --- workload.closedloop -------------------------------------------------

func (o Options) terminalCounts() []int {
	if o.Quick {
		return []int{16, 64, 256}
	}
	return []int{8, 16, 32, 64, 128, 256}
}

// thinkTimesMS are the closed-loop think-time series: the short think time
// reaches CPU saturation inside the terminal sweep, the long one stays in
// the linear N/(Z+R) regime throughout.
var thinkTimesMS = []float64{50, 500}

// closedLoopMPL caps concurrent transactions well below the largest
// terminal count, so past the capacity knee the surplus terminals pile up
// in the MPL queue — the occupancy the closed-loop saturation rule reads.
const closedLoopMPL = 50

// WorkloadClosedLoop replaces the open-loop Poisson source with emulated
// terminals (think → submit → completion) and sweeps the terminal count for
// two think times on the disk-based Debit-Credit configuration. With 50 ms
// think the offered load crosses the CPU capacity mid-sweep: throughput
// flattens and response time turns the classic closed-loop knee upward,
// with the new terminal-wait saturation signal crossing its threshold at
// the same point. With 500 ms think the same terminals stay subcritical.
func WorkloadClosedLoop(o Options) (*stats.Figure, *stats.Figure, *stats.Table, error) {
	counts := o.terminalCounts()
	resp := &stats.Figure{
		Title:  "Closed-loop terminals: response time (Debit-Credit, disk-based, NOFORCE)",
		XLabel: "terminals",
		YLabel: "mean response time [ms]",
	}
	for _, n := range counts {
		resp.X = append(resp.X, float64(n))
	}
	tput := &stats.Figure{
		Title:  "Closed-loop terminals: throughput",
		XLabel: "terminals",
		YLabel: "committed TPS",
		X:      resp.X,
	}
	labels := make([]string, len(thinkTimesMS))
	colLabels := make([]string, len(counts))
	for i, z := range thinkTimesMS {
		labels[i] = fmt.Sprintf("think-%.0fms", z)
	}
	for i, n := range counts {
		colLabels[i] = fmt.Sprintf("N=%d", n)
	}
	g := newGrid(o, len(thinkTimesMS), len(counts))
	for si := range thinkTimesMS {
		for xi := range counts {
			si, xi := si, xi
			g.add(si, xi, func(o Options) (*core.Result, error) {
				cfg, err := DCSetup{
					DB:  DBSpec{Kind: DBRegular},
					Log: LogSpec{Kind: LogDisk},
					Arrival: workload.ArrivalSpec{
						Kind:      workload.ArrivalClosedLoop,
						Terminals: counts[xi],
						ThinkMS:   thinkTimesMS[si],
					}}.Build(o)
				if err == nil {
					cfg.MPL = closedLoopMPL
					var res *core.Result
					if res, err = runEngine(cfg); err == nil {
						return res, nil
					}
				}
				return nil, fmt.Errorf("workload.closedloop %s N=%d: %w",
					labels[si], counts[xi], err)
			})
		}
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, nil, err
	}
	wait := stats.NewTable("Fraction of terminals waiting for an MPL slot",
		"think time", labels, colLabels)
	for si, label := range labels {
		points, cis := seriesOf(cells[si], respMean)
		if err := resp.AddSeriesCI(label, points, cis); err != nil {
			return nil, nil, nil, err
		}
		tp, tpCI := seriesOf(cells[si], throughput)
		if err := tput.AddSeriesCI(label, tp, tpCI); err != nil {
			return nil, nil, nil, err
		}
		for xi := range counts {
			mean, ci := cells[si][xi].meanCI(func(r *core.Result) float64 {
				return r.TerminalWaitFrac
			})
			if o.reps() > 1 {
				wait.SetCI(si, xi, mean, ci)
			} else {
				wait.Set(si, xi, mean)
			}
		}
	}
	return resp, tput, wait, nil
}

// --- workload.replay -----------------------------------------------------

// Replay experiment constants: the real-life trace's reference volume is
// folded into replayBuckets rate multipliers (mean 1) and replayed
// cyclically with replayBucketMS per bucket, against the same mean rate the
// Poisson row uses — the comparison isolates pure rate variance recorded
// from a production system.
const (
	replayRate     = 650.0
	replayBuckets  = 32
	replayBucketMS = 500.0
)

// WorkloadReplay drives the disk-based Debit-Credit configuration once with
// the paper's Poisson arrivals and once with the recorded rate timeline of
// the real-life trace (internal/trace.LoadTimeline) at the same mean rate.
// The replayed timeline concentrates the same offered load into its busy
// buckets, which shows up in the tail, not the mean.
func WorkloadReplay(o Options) (*stats.Table, error) {
	mult, err := trace.LoadTimeline(realLifeTrace(), replayBuckets)
	if err != nil {
		return nil, err
	}
	arrivals := []struct {
		label string
		spec  workload.ArrivalSpec
	}{
		{"poisson", workload.ArrivalSpec{}},
		{"trace-replay", workload.ArrivalSpec{
			Kind:            workload.ArrivalReplay,
			RateBucketMS:    replayBucketMS,
			RateMultipliers: mult,
		}},
	}
	labels := make([]string, len(arrivals))
	for i, a := range arrivals {
		labels[i] = a.label
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Recorded rate timeline vs. Poisson at %.0f TPS mean (Debit-Credit, disk-based, %d buckets x %.0f ms)",
			replayRate, replayBuckets, replayBucketMS),
		"arrivals", labels,
		[]string{"resp-ms", "p95-ms", "commits", "dropped"})
	g := newGrid(o, len(arrivals), 1)
	for si, a := range arrivals {
		si, a := si, a
		g.add(si, 0, func(o Options) (*core.Result, error) {
			res, err := DCSetup{Rate: replayRate,
				DB:      DBSpec{Kind: DBRegular},
				Log:     LogSpec{Kind: LogDisk},
				Arrival: a.spec}.Run(o)
			if err != nil {
				return nil, fmt.Errorf("workload.replay %s: %w", a.label, err)
			}
			return res, nil
		})
	}
	cells, err := g.run()
	if err != nil {
		return nil, err
	}
	metrics := []func(*core.Result) float64{respMean, respP95, commitCount, droppedCount}
	for si := range arrivals {
		for c, metric := range metrics {
			mean, ci := cells[si][0].meanCI(metric)
			if o.reps() > 1 {
				tbl.SetCI(si, c, mean, ci)
			} else {
				tbl.Set(si, c, mean)
			}
		}
	}
	return tbl, nil
}
