package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/costmodel"
)

// Table21 reproduces Table 2.1 and extends it with the cost-effectiveness
// analysis the paper's conclusions sketch: for each Fig 4.2 database
// allocation scheme, the storage cost of the configuration is estimated
// (Debit-Credit database: 5M ACCOUNT pages ≈ 20 GB, 500 BRANCH/TELLER
// pages, a 1 GB HISTORY/log budget) alongside its measured response time at
// the given rate — showing the price of each millisecond saved.
func Table21(o Options) (string, error) {
	var b strings.Builder
	b.WriteString(costmodel.RenderTable21())
	b.WriteString("\n")

	const (
		accountPages = 5_000_000
		btPages      = 500
		histLogMB    = 1024.0
		dbMB         = float64(accountPages+btPages)*costmodel.PageMB + histLogMB
		mmBufPages   = 2000
	)
	rate := 200.0
	if o.Quick {
		rate = 100
	}

	b.WriteString(fmt.Sprintf("Cost-effectiveness of the Fig 4.2 allocation schemes (Debit-Credit, %.0f TPS):\n\n", rate))
	schemes := dbSchemes42()
	g := newGrid(o, len(schemes), 1)
	for si, sc := range schemes {
		g.add(si, 0, func(o Options) (*core.Result, error) {
			res, err := DCSetup{Rate: rate, DB: sc.DB, Log: sc.Log}.Run(o)
			if err != nil {
				return nil, fmt.Errorf("table2.1 %s: %w", sc.Label, err)
			}
			return res, nil
		})
	}
	cells, err := g.run()
	if err != nil {
		return "", err
	}
	for si, sc := range schemes {
		br := costmodel.Breakdown{Label: sc.Label}
		br.AddPages("main-memory buffer", costmodel.MainMemory, mmBufPages)
		switch sc.DB.Kind {
		case DBRegular:
			br.Add("database on disk", costmodel.Disk, dbMB)
		case DBDiskCacheWB:
			br.Add("database on disk", costmodel.Disk, dbMB)
			br.AddPages("nv disk-cache write buffer", costmodel.DiskCache, int64(2*sc.DB.Size))
		case DBNVEMWB:
			br.Add("database on disk", costmodel.Disk, dbMB)
			br.AddPages("NVEM write buffer", costmodel.ExtendedMemory, int64(sc.DB.Size))
		case DBSSD:
			br.Add("database on SSD", costmodel.SolidStateDisk, dbMB)
		case DBNVEMResident:
			br.Add("database in NVEM", costmodel.ExtendedMemory, dbMB)
		case DBMMResident:
			br.Add("database in main memory", costmodel.MainMemory, dbMB)
			br.Add("log on disk", costmodel.Disk, histLogMB)
		}
		b.WriteString(br.Render())
		c := cells[si][0]
		b.WriteString(fmt.Sprintf("  -> measured response time %s ms (%s TPS)\n\n",
			c.fmtMeanCI("%.2f", respMean), c.fmtMeanCI("%.1f", throughput)))
	}
	b.WriteString("The orderings confirm section 5: full NVEM residence buys the best\n")
	b.WriteString("response times at by far the highest cost; a small write buffer\n")
	b.WriteString("captures most of the improvement at a tiny fraction of the price.\n\n")

	if err := downtimeCost(o, &b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// downtimeCostPerMin prices one minute of a node outage (lost work,
// penalties, reputation — the high-availability literature's canonical
// justification for redundant hardware). The absolute number only scales
// the column; the break-even comparison against the NVEM premium is the
// point.
const downtimeCostPerMin = 10_000.0

// downtimeCost extends the cost-effectiveness analysis with the ROADMAP's
// downtime-cost item: the recovery.availability outage lengths priced at
// $/min of unavailability against the NVEM price premium that buys the
// shorter restart. It reruns the shared availability scenario (recovery.go:
// node 0 of 4 crashes mid-window) without timelines; the crashed node's
// restart time is the outage.
func downtimeCost(o Options, b *strings.Builder) error {
	schemes := availSchemes()
	g := newGrid(o, len(schemes), 1)
	for si, sc := range schemes {
		g.add(si, 0, func(o Options) (*core.Result, error) {
			res, err := availSetup(sc, 0).Run(o)
			if err != nil {
				return nil, fmt.Errorf("table2.1 downtime %s: %w", sc.label, err)
			}
			return res, nil
		})
	}
	cells, err := g.run()
	if err != nil {
		return err
	}

	fmt.Fprintf(b, "Downtime cost vs. NVEM premium (%d-node crash, $%.0f/min of unavailability):\n\n",
		availNodes, downtimeCostPerMin)
	fmt.Fprintf(b, "  %-14s %12s %14s %14s %16s\n",
		"scheme", "outage-ms", "$-per-crash", "nvem-premium-$", "break-even-crashes")
	outage := make([]float64, len(schemes))
	baseline := 0.0
	for si, sc := range schemes {
		outage[si], _ = cells[si][0].meanCI(restartMS)
		if sc.label == "disk-only" {
			baseline = outage[si]
		}
	}
	if baseline == 0 {
		return fmt.Errorf("table2.1 downtime: no disk-only baseline in the availability schemes")
	}
	for si, sc := range schemes {
		// The premium is the extended-memory price of the NVEM frames the
		// scheme adds over disk-only (the NVEM-resident log budget rides
		// along as cache-sized in this sizing, so frames alone price it).
		frames := sc.shared + sc.private*availNodes
		premium := float64(frames) * costmodel.PageMB * costmodel.Table21()[costmodel.ExtendedMemory].PricePerMB.Mid()
		perCrash := outage[si] / 60_000 * downtimeCostPerMin
		fmt.Fprintf(b, "  %-14s %12.1f %14.2f %14.0f", sc.label, outage[si], perCrash, premium)
		if saved := (baseline - outage[si]) / 60_000 * downtimeCostPerMin; saved > 0 && premium > 0 {
			fmt.Fprintf(b, " %18.0f", premium/saved)
		} else {
			fmt.Fprintf(b, " %18s", "-")
		}
		fmt.Fprintf(b, "\n")
	}
	b.WriteString("\nOutage length is the crashed node's simulated restart; the premium is\n")
	b.WriteString("amortized once the crash count reaches the break-even column — and the\n")
	b.WriteString("same NVEM frames buy the steady-state response-time gains above for free.\n")
	return nil
}
