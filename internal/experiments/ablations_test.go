package experiments

import (
	"testing"
)

// TestGroupCommitRescuesSingleLogDisk: with group commit, one log disk
// carries the log traffic of many transactions per I/O, so 500 TPS works;
// without it, the disk saturates near 200 TPS (section 4.2's discussion).
func TestGroupCommitRescuesSingleLogDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	base := DCSetup{Rate: 500, DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogDisk, Disks: 1}}

	plain, err := base.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := base.Build(quick)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Buffer.GroupCommit = true
	cfg.Buffer.GroupCommitWaitMS = 5
	grouped, err := runEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Throughput > 260 {
		t.Errorf("plain single log disk sustained %.0f TPS", plain.Throughput)
	}
	if grouped.Throughput < 450 {
		t.Errorf("group commit sustained only %.0f TPS", grouped.Throughput)
	}
	if grouped.Buffer.GroupCommits == 0 {
		t.Error("no groups flushed")
	}
	// Far fewer physical log writes than commits.
	if grouped.Buffer.LogWrites*2 > grouped.Commits {
		t.Errorf("log writes %d vs commits %d: batching ineffective",
			grouped.Buffer.LogWrites, grouped.Commits)
	}
}

// TestAsyncReplacementNarrowsGap: software async replacement removes the
// synchronous victim write, landing between plain disk and the NV write
// buffer (section 4.3's footnote discussion).
func TestAsyncReplacementNarrowsGap(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	base := DCSetup{Rate: 200, DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogDisk}}
	sync, err := base.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := base.Build(quick)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Buffer.AsyncReplacement = true
	async, err := runEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := DCSetup{Rate: 200, DB: DBSpec{Kind: DBDiskCacheWB, Size: 500},
		Log: LogSpec{Kind: LogDiskWB, Size: 500}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !(wb.RespMean < async.RespMean && async.RespMean < sync.RespMean) {
		t.Errorf("expected wb (%.2f) < async (%.2f) < sync (%.2f)",
			wb.RespMean, async.RespMean, sync.RespMean)
	}
	if async.Buffer.VictimWrites != 0 || async.Buffer.VictimAsync == 0 {
		t.Errorf("async replacement accounting wrong: %+v", async.Buffer)
	}
}

// TestMigrationModeAllBest reproduces the section 4.6 finding that the best
// NVEM hit ratios result when all pages migrate from main memory to NVEM.
func TestMigrationModeAllBest(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	fig, err := AblationMigrationModes(quick)
	if err != nil {
		t.Fatal(err)
	}
	hits := fig.Series[0].Points // all, modified, unmodified
	// For a 98.4%-read trace, "all" and "unmodified" are nearly the same
	// policy; allow sampling noise there, but "modified"-only must be far
	// worse (almost nothing migrates).
	const eps = 0.5
	if hits[0]+eps < hits[1] || hits[0]+eps < hits[2] {
		t.Errorf("migrate-all hits %.2f%% must be >= modified %.2f%% and unmodified %.2f%%",
			hits[0], hits[1], hits[2])
	}
	if hits[1] > hits[0]/2 {
		t.Errorf("modified-only hits %.2f%% suspiciously close to all-pages %.2f%%", hits[1], hits[0])
	}
}

// TestDeferredDestageReducesForceWrites checks the section 3.2 trade-off.
func TestDeferredDestageReducesForceWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	mk := func(deferred bool) int64 {
		cfg, err := DCSetup{Rate: 500, Force: true, MMBuffer: 2000,
			DB: DBSpec{Kind: DBNVEMCache, Size: 1000}, Log: LogSpec{Kind: LogNVEM}}.Build(quick)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Buffer.NVEMDeferredDestage = deferred
		res, err := runEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Units[0].Stats.Writes
	}
	immediate := mk(false)
	deferred := mk(true)
	if deferred >= immediate {
		t.Errorf("deferred destage wrote %d pages, immediate %d: no saving", deferred, immediate)
	}
}
