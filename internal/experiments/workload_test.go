package experiments

import (
	"strings"
	"testing"
)

// TestAdmissionReducesSurvivorResponse pins the admission controller's
// reason to exist: in the spike-crash scenario, shedding rerouted overflow
// at the survivor-capacity threshold must (a) actually shed something and
// (b) leave the survivors with a lower mean response time than queueing
// everything.
func TestAdmissionReducesSurvivorResponse(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	run := func(admission bool) (survivorResp float64, shed int64) {
		t.Helper()
		res, err := spikeCrashSetup(admission).Run(quick)
		if err != nil {
			t.Fatal(err)
		}
		return res.SurvivorRespMean, res.Shed
	}
	offResp, offShed := run(false)
	onResp, onShed := run(true)
	if offShed != 0 {
		t.Errorf("admission-off shed %d arrivals, want 0", offShed)
	}
	if onShed == 0 {
		t.Error("admission-on shed nothing: the spike never hit the survivor-capacity threshold")
	}
	if onResp >= offResp {
		t.Errorf("admission-on survivor response %.2f ms >= admission-off %.2f ms; shedding bought nothing",
			onResp, offResp)
	}
	if offResp == 0 || onResp == 0 {
		t.Errorf("survivor response not populated: off=%v on=%v", offResp, onResp)
	}
}

// TestWorkloadExperimentsDeterministicAcrossParallelism re-checks the
// registry-wide determinism gate specifically for the arrival-process
// experiments (stateful MMPP/spike processes must not leak scheduling
// order into the output).
func TestWorkloadExperimentsDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	exps, err := Match(`workload\..*`)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 7 {
		t.Fatalf("expected 7 workload experiments, got %d", len(exps))
	}
	serial := Options{Quick: true, Seed: 11, Parallelism: 1}
	parallel := Options{Quick: true, Seed: 11, Parallelism: wideParallelism()}
	for _, e := range exps {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			a, err := e.Run(serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := e.Run(parallel)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("output differs between worker counts:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
			}
		})
	}
}

// TestBurstinessMonotoneAtModerateFactors pins the burstiness experiment's
// qualitative claim in the pre-saturation regime: at a fixed mean rate,
// response time does not improve when bursts concentrate the same load
// (burst factor 1 → 4, quick sweep).
func TestBurstinessMonotoneAtModerateFactors(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	base, err := DCSetup{Rate: 200, DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogDisk},
		Arrival: burstSpec(1)}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := DCSetup{Rate: 200, DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogDisk},
		Arrival: burstSpec(4)}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	if bursty.RespP95 <= base.RespP95 {
		t.Errorf("p95 at burst factor 4 (%.2f ms) <= factor 1 (%.2f ms)", bursty.RespP95, base.RespP95)
	}
}

// TestWorkloadSpikeCrashOutput sanity-checks the rendered experiment.
func TestWorkloadSpikeCrashOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	fig, tbl, err := WorkloadSpikeCrash(quick)
	if err != nil {
		t.Fatal(err)
	}
	out := fig.Render() + tbl.Render()
	for _, frag := range []string{"admission-on:cluster", "admission-off:node0", "survivor-resp-ms"} {
		if !strings.Contains(out, frag) {
			t.Errorf("spike-crash output missing %q:\n%s", frag, out)
		}
	}
}
