package experiments

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Experiment is one reproducible unit of the paper's evaluation.
type Experiment struct {
	Name  string // id used on the command line, e.g. "fig4.1"
	Title string
	Run   func(o Options) (string, error)
}

// All returns every experiment, sorted by name.
func All() []Experiment {
	exps := []Experiment{
		{
			Name:  "fig4.1",
			Title: "Influence of log file allocation (Debit-Credit, NOFORCE)",
			Run: func(o Options) (string, error) {
				fig, err := Fig41(o)
				if err != nil {
					return "", err
				}
				return fig.Render(), nil
			},
		},
		{
			Name:  "fig4.2",
			Title: "Impact of database allocation (Debit-Credit, NOFORCE)",
			Run: func(o Options) (string, error) {
				fig, err := Fig42(o)
				if err != nil {
					return "", err
				}
				return fig.Render(), nil
			},
		},
		{
			Name:  "fig4.3",
			Title: "FORCE vs. NOFORCE update strategy (Debit-Credit)",
			Run: func(o Options) (string, error) {
				fig, err := Fig43(o)
				if err != nil {
					return "", err
				}
				return fig.Render(), nil
			},
		},
		{
			Name:  "fig4.4",
			Title: "Impact of caching for different main-memory buffer sizes (NOFORCE, 500 TPS)",
			Run: func(o Options) (string, error) {
				fig, err := Fig44(o)
				if err != nil {
					return "", err
				}
				return fig.Render(), nil
			},
		},
		{
			Name:  "table4.2a",
			Title: "MM and 2nd-level cache hit ratios, NOFORCE",
			Run: func(o Options) (string, error) {
				tbl, err := Table42(o, false)
				if err != nil {
					return "", err
				}
				return tbl.Render(), nil
			},
		},
		{
			Name:  "table4.2b",
			Title: "MM and 2nd-level cache hit ratios, FORCE",
			Run: func(o Options) (string, error) {
				tbl, err := Table42(o, true)
				if err != nil {
					return "", err
				}
				return tbl.Render(), nil
			},
		},
		{
			Name:  "fig4.5",
			Title: "Impact of 2nd-level buffer size (NOFORCE, 500 TPS, MM=500)",
			Run: func(o Options) (string, error) {
				resp, hits, err := Fig45(o)
				if err != nil {
					return "", err
				}
				return resp.Render() + "\n" + hits.Render(), nil
			},
		},
		{
			Name:  "fig4.6",
			Title: "Main-memory buffer size for the real-life trace workload",
			Run: func(o Options) (string, error) {
				fig, err := Fig46(o)
				if err != nil {
					return "", err
				}
				return fig.Render(), nil
			},
		},
		{
			Name:  "fig4.7",
			Title: "2nd-level buffer size for the real-life trace workload",
			Run: func(o Options) (string, error) {
				fig, err := Fig47(o)
				if err != nil {
					return "", err
				}
				return fig.Render(), nil
			},
		},
		{
			Name:  "fig4.8",
			Title: "Page- vs. object-locking under lock contention",
			Run: func(o Options) (string, error) {
				fig, err := Fig48(o)
				if err != nil {
					return "", err
				}
				return fig.Render(), nil
			},
		},
		{
			Name:  "table2.1",
			Title: "Storage prices / access times and cost-effectiveness",
			Run:   Table21,
		},
		{
			Name:  "ablation.group-commit",
			Title: "Group commit vs. NV memory on a single log disk",
			Run: func(o Options) (string, error) {
				fig, err := AblationGroupCommit(o)
				if err != nil {
					return "", err
				}
				return fig.Render(), nil
			},
		},
		{
			Name:  "ablation.async-replacement",
			Title: "Asynchronous buffer replacement vs. write buffer",
			Run: func(o Options) (string, error) {
				fig, err := AblationAsyncReplacement(o)
				if err != nil {
					return "", err
				}
				return fig.Render(), nil
			},
		},
		{
			Name:  "ablation.migration-modes",
			Title: "NVEM cache migration modes on the trace workload",
			Run: func(o Options) (string, error) {
				fig, err := AblationMigrationModes(o)
				if err != nil {
					return "", err
				}
				return fig.Render(), nil
			},
		},
		{
			Name:  "ablation.destage-policy",
			Title: "Immediate vs. deferred NVEM→disk propagation under FORCE",
			Run:   AblationDestagePolicy,
		},
		{
			Name:  "ablation.clustering",
			Title: "BRANCH/TELLER clustering vs. separate record types",
			Run:   AblationClustering,
		},
		{
			Name:  "recovery.restart",
			Title: "Restart time after a crash vs. log/database placement",
			Run: func(o Options) (string, error) {
				tbl, err := RecoveryRestart(o)
				if err != nil {
					return "", err
				}
				return tbl.Render(), nil
			},
		},
		{
			Name:  "recovery.checkpoint",
			Title: "Fuzzy-checkpoint interval: runtime overhead vs. restart time",
			Run: func(o Options) (string, error) {
				resp, restart, err := RecoveryCheckpoint(o)
				if err != nil {
					return "", err
				}
				return resp.Render() + "\n" + restart.Render(), nil
			},
		},
		{
			Name:  "recovery.availability",
			Title: "Cluster throughput dip and ramp-back around a node crash (shared vs. private NVEM)",
			Run: func(o Options) (string, error) {
				fig, tbl, err := RecoveryAvailability(o)
				if err != nil {
					return "", err
				}
				return fig.Render() + "\n" + tbl.Render(), nil
			},
		},
		{
			Name:  "workload.burstiness",
			Title: "Response time vs. MMPP burst coefficient at fixed mean TPS",
			Run: func(o Options) (string, error) {
				resp, p95, err := WorkloadBurstiness(o)
				if err != nil {
					return "", err
				}
				return resp.Render() + "\n" + p95.Render(), nil
			},
		},
		{
			Name:  "workload.spike-crash",
			Title: "Crash-coincident load spike: recovery-aware admission control on vs. off",
			Run: func(o Options) (string, error) {
				fig, tbl, err := WorkloadSpikeCrash(o)
				if err != nil {
					return "", err
				}
				return fig.Render() + "\n" + tbl.Render(), nil
			},
		},
		{
			Name:  "workload.diurnal",
			Title: "Diurnal (sinusoidal) rate modulation over a long window",
			Run: func(o Options) (string, error) {
				resp, p95, err := WorkloadDiurnal(o)
				if err != nil {
					return "", err
				}
				return resp.Render() + "\n" + p95.Render(), nil
			},
		},
		{
			Name:  "workload.skew",
			Title: "Access skew (Zipf / hot-spot) vs. NVEM second-level cache size",
			Run: func(o Options) (string, error) {
				resp, hits, err := WorkloadSkew(o)
				if err != nil {
					return "", err
				}
				return resp.Render() + "\n" + hits.Render(), nil
			},
		},
		{
			Name:  "workload.multiclass",
			Title: "Multi-class mix: batch scans vs. short updates sharing the buffer",
			Run: func(o Options) (string, error) {
				fig, tbl, err := WorkloadMulticlass(o)
				if err != nil {
					return "", err
				}
				return fig.Render() + "\n" + tbl.Render(), nil
			},
		},
		{
			Name:  "workload.closedloop",
			Title: "Closed-loop terminals: response-time knee vs. terminal count",
			Run: func(o Options) (string, error) {
				resp, tput, wait, err := WorkloadClosedLoop(o)
				if err != nil {
					return "", err
				}
				return resp.Render() + "\n" + tput.Render() + "\n" + wait.Render(), nil
			},
		},
		{
			Name:  "workload.replay",
			Title: "Recorded rate-timeline replay vs. Poisson at equal mean rate",
			Run: func(o Options) (string, error) {
				tbl, err := WorkloadReplay(o)
				if err != nil {
					return "", err
				}
				return tbl.Render(), nil
			},
		},
		{
			Name:  "cluster.scaleout",
			Title: "Multi-node scale-out at fixed aggregate load (shared NVEM vs. disk-only)",
			Run: func(o Options) (string, error) {
				resp, hits, err := ClusterScaleout(o)
				if err != nil {
					return "", err
				}
				return resp.Render() + "\n" + hits.Render(), nil
			},
		},
		{
			Name:  "cluster.scaleout64",
			Title: "64-node scale-up under the conservative parallel engine (PDES)",
			Run: func(o Options) (string, error) {
				resp, tput, err := ClusterScaleout64(o)
				if err != nil {
					return "", err
				}
				return resp.Render() + "\n" + tput.Render(), nil
			},
		},
		{
			Name:  "cluster.scaleout256",
			Title: "256-node scale-up under PDES: shared vs. private NVEM cache coherence",
			Run: func(o Options) (string, error) {
				resp, tput, err := ClusterScaleout256(o)
				if err != nil {
					return "", err
				}
				return resp.Render() + "\n" + tput.Render(), nil
			},
		},
		{
			Name:  "cluster.allocation",
			Title: "Shared vs. private NVEM caches on a 4-node data-sharing cluster",
			Run: func(o Options) (string, error) {
				fig, err := ClusterAllocation(o)
				if err != nil {
					return "", err
				}
				return fig.Render(), nil
			},
		},
		{
			Name:  "cluster.locking",
			Title: "Global vs. local locking under contention (2-node data sharing)",
			Run: func(o Options) (string, error) {
				resp, msgs, err := ClusterLocking(o)
				if err != nil {
					return "", err
				}
				return resp.Render() + "\n" + msgs.Render(), nil
			},
		},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].Name < exps[j].Name })
	return exps
}

// ByName finds an experiment by id.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
		name, strings.Join(names(), ", "))
}

// Match returns the experiments whose id matches the anchored regular
// expression pattern, in registry order. A plain id like "fig4.1" selects
// that single experiment; "fig4\..*" selects all figures. It is an error
// when the pattern is invalid or matches nothing.
func Match(pattern string) ([]Experiment, error) {
	re, err := regexp.Compile("^(?:" + pattern + ")$")
	if err != nil {
		return nil, fmt.Errorf("experiments: bad pattern %q: %v", pattern, err)
	}
	var out []Experiment
	for _, e := range All() {
		if re.MatchString(e.Name) {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no experiment matches %q (known: %s)",
			pattern, strings.Join(names(), ", "))
	}
	return out, nil
}

// names lists every experiment id.
func names() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name)
	}
	return out
}
