package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

// The paper's evaluation is a grid of independent simulation runs: every
// figure sweeps an arrival rate or buffer size over a handful of storage
// configurations, and each (series, x, replication) point is one core.Run
// with no shared mutable state. This file fans those runs out over a bounded
// worker pool. Determinism is preserved by construction: every run's seed
// derives only from (base seed, replication index), and results land in
// index-addressed slots, so rendered output is byte-identical regardless of
// worker count or scheduling order.

// reps returns the number of independent replications per simulation point.
func (o Options) reps() int {
	if o.Replications <= 0 {
		return 1
	}
	return o.Replications
}

// parallelism returns the worker count of the run pool.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runPool executes job(0..n-1) on min(workers, n) goroutines and blocks
// until all jobs finished. Jobs are claimed through a shared counter, so the
// job→worker assignment is scheduling-dependent; callers must write results
// into per-index slots to stay deterministic.
func runPool(workers, n int, job func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// cell holds the replicated results of one grid position, in replication
// order.
type cell struct {
	results []*core.Result
}

// meanCI aggregates metric over the cell's replications into the mean and
// the 95%-confidence half-width, without materializing the value slice.
func (c cell) meanCI(metric func(*core.Result) float64) (mean, ci float64) {
	return stats.MeanCI95Seq(len(c.results), func(i int) float64 { return metric(c.results[i]) })
}

// fmtMeanCI renders the replication mean with the given verb, appending
// "±ci" when the cell holds more than one run. With a single replication the
// output matches formatting the raw result directly.
func (c cell) fmtMeanCI(format string, metric func(*core.Result) float64) string {
	mean, ci := c.meanCI(metric)
	if len(c.results) <= 1 {
		return fmt.Sprintf(format, mean)
	}
	return fmt.Sprintf(format+"±"+format, mean, ci)
}

// grid runs a rows×cols matrix of simulation points, each replicated
// o.reps() times, on o.parallelism() workers.
type grid struct {
	o          Options
	rows, cols int
	jobs       []func(Options) (*core.Result, error)
}

// newGrid allocates an empty grid of the given shape.
func newGrid(o Options, rows, cols int) *grid {
	return &grid{o: o, rows: rows, cols: cols,
		jobs: make([]func(Options) (*core.Result, error), rows*cols)}
}

// add registers the simulation at (row, col). job receives Options carrying
// the derived seed of its replication and must build and execute one run.
func (g *grid) add(row, col int, job func(Options) (*core.Result, error)) {
	g.jobs[row*g.cols+col] = job
}

// run executes every registered point × replication and returns the cells
// indexed [row][col]. On failure it returns the error of the lowest-indexed
// failing run (deterministic regardless of scheduling).
func (g *grid) run() ([][]cell, error) {
	reps := g.o.reps()
	type spec struct{ cellIdx, rep int }
	specs := make([]spec, 0, len(g.jobs)*reps)
	for i, job := range g.jobs {
		if job == nil {
			continue
		}
		for r := 0; r < reps; r++ {
			specs = append(specs, spec{i, r})
		}
	}
	results := make([]*core.Result, len(specs))
	errs := make([]error, len(specs))
	base := g.o.seed()
	runPool(g.o.parallelism(), len(specs), func(k int) {
		sp := specs[k]
		o := g.o
		o.Seed = rng.Derive(base, sp.rep)
		results[k], errs[k] = g.jobs[sp.cellIdx](o)
	})
	for k := range errs {
		if errs[k] != nil {
			return nil, errs[k]
		}
	}
	cells := make([][]cell, g.rows)
	for r := range cells {
		cells[r] = make([]cell, g.cols)
	}
	// specs is cell-major (all replications of a point are consecutive), so
	// every cell's results are a contiguous, capacity-capped window of the
	// one per-grid accumulation buffer — no per-cell slices.
	for k := 0; k < len(specs); k += reps {
		idx := specs[k].cellIdx
		cells[idx/g.cols][idx%g.cols].results = results[k : k+reps : k+reps]
	}
	return cells, nil
}

// seriesOf maps one grid row to y-points under metric. The second return
// holds the 95%-confidence half-widths, nil when the row is unreplicated.
func seriesOf(row []cell, metric func(*core.Result) float64) (points, cis []float64) {
	points = make([]float64, len(row))
	cis = make([]float64, len(row))
	replicated := false
	for i, c := range row {
		points[i], cis[i] = c.meanCI(metric)
		if len(c.results) > 1 {
			replicated = true
		}
	}
	if !replicated {
		cis = nil
	}
	return points, cis
}

// sweepFigure fills fig with one series per label: run(si, xi, o) executes
// the simulation of series si at x index xi, and metric maps each run to its
// y value. All points (× replications) run on the shared pool.
func sweepFigure(o Options, fig *stats.Figure, labels []string,
	run func(si, xi int, o Options) (*core.Result, error),
	metric func(*core.Result) float64) error {
	g := newGrid(o, len(labels), len(fig.X))
	for si := range labels {
		for xi := range fig.X {
			g.add(si, xi, func(o Options) (*core.Result, error) { return run(si, xi, o) })
		}
	}
	cells, err := g.run()
	if err != nil {
		return err
	}
	for si, label := range labels {
		points, cis := seriesOf(cells[si], metric)
		if err := fig.AddSeriesCI(label, points, cis); err != nil {
			return err
		}
	}
	return nil
}

// Shared metric extractors.

func respMean(r *core.Result) float64      { return r.RespMean }
func respP95(r *core.Result) float64       { return r.RespP95 }
func throughput(r *core.Result) float64    { return r.Throughput }
func mmHitPct(r *core.Result) float64      { return r.MMHitPct }
func nvemAddHitPct(r *core.Result) float64 { return r.NVEMAddHitPct }

// unitReadHitPct is the disk-cache read-hit ratio of the database unit as a
// fraction of all buffer fixes (the second-level hit metric of Tables 4.2a/b
// and Figs 4.5b/4.7 for controller caches).
func unitReadHitPct(r *core.Result) float64 {
	if r.Buffer.Fixes == 0 {
		return 0
	}
	return 100 * float64(r.Units[0].Stats.ReadHits) / float64(r.Buffer.Fixes)
}
