package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Fig41 reproduces Fig 4.1: influence of log file allocation on Debit-Credit
// response time (NOFORCE). Four allocations: a single log disk, a single log
// disk with a 500-page non-volatile cache write buffer, SSD, and NVEM.
func Fig41(o Options) (*stats.Figure, error) {
	fig := &stats.Figure{
		Title:  "Fig 4.1: Influence of log file allocation (Debit-Credit, NOFORCE)",
		XLabel: "TPS",
		YLabel: "mean response time [ms]",
		X:      o.rates(),
	}
	schemes := []struct {
		label string
		log   LogSpec
	}{
		{"log-single-disk", LogSpec{Kind: LogDisk, Disks: 1}},
		{"log-disk+nv-cache", LogSpec{Kind: LogDiskWB, Disks: 1, Size: 500}},
		{"log-ssd", LogSpec{Kind: LogSSD}},
		{"log-nvem", LogSpec{Kind: LogNVEM}},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	err := sweepFigure(o, fig, labels, func(si, xi int, o Options) (*core.Result, error) {
		sc, rate := schemes[si], fig.X[xi]
		res, err := DCSetup{Rate: rate, DB: DBSpec{Kind: DBRegular}, Log: sc.log}.Run(o)
		if err != nil {
			return nil, fmt.Errorf("fig4.1 %s @%v: %w", sc.label, rate, err)
		}
		return res, nil
	}, respMean)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// dbSchemes42 are the six database allocations of Fig 4.2. Database
// partitions and log use the same device type to emphasize the relative
// differences (section 4.3).
func dbSchemes42() []struct {
	Label string
	DB    DBSpec
	Log   LogSpec
} {
	return []struct {
		Label string
		DB    DBSpec
		Log   LogSpec
	}{
		{"disk", DBSpec{Kind: DBRegular}, LogSpec{Kind: LogDisk}},
		{"disk-cache-wb", DBSpec{Kind: DBDiskCacheWB, Size: 500}, LogSpec{Kind: LogDiskWB, Size: 500}},
		{"nvem-wb", DBSpec{Kind: DBNVEMWB, Size: 1000}, LogSpec{Kind: LogNVEMWB}},
		{"ssd", DBSpec{Kind: DBSSD}, LogSpec{Kind: LogSSD}},
		{"nvem-resident", DBSpec{Kind: DBNVEMResident}, LogSpec{Kind: LogNVEM}},
		{"mm-resident", DBSpec{Kind: DBMMResident}, LogSpec{Kind: LogDisk}},
	}
}

// Fig42 reproduces Fig 4.2: impact of database allocation (Debit-Credit,
// NOFORCE).
func Fig42(o Options) (*stats.Figure, error) {
	fig := &stats.Figure{
		Title:  "Fig 4.2: Impact of database allocation (Debit-Credit, NOFORCE)",
		XLabel: "TPS",
		YLabel: "mean response time [ms]",
		X:      o.rates(),
	}
	schemes := dbSchemes42()
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.Label
	}
	err := sweepFigure(o, fig, labels, func(si, xi int, o Options) (*core.Result, error) {
		sc, rate := schemes[si], fig.X[xi]
		res, err := DCSetup{Rate: rate, DB: sc.DB, Log: sc.Log}.Run(o)
		if err != nil {
			return nil, fmt.Errorf("fig4.2 %s @%v: %w", sc.Label, rate, err)
		}
		return res, nil
	}, respMean)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig43 reproduces Fig 4.3: FORCE vs NOFORCE for three storage allocations
// (disk-based, disk-cache write buffer, NVEM-resident).
func Fig43(o Options) (*stats.Figure, error) {
	fig := &stats.Figure{
		Title:  "Fig 4.3: FORCE vs. NOFORCE (Debit-Credit)",
		XLabel: "TPS",
		YLabel: "mean response time [ms]",
		X:      o.rates(),
	}
	schemes := []struct {
		label string
		db    DBSpec
		log   LogSpec
	}{
		{"disk", DBSpec{Kind: DBRegular}, LogSpec{Kind: LogDisk}},
		{"disk-cache-wb", DBSpec{Kind: DBDiskCacheWB, Size: 500}, LogSpec{Kind: LogDiskWB, Size: 500}},
		{"nvem-resident", DBSpec{Kind: DBNVEMResident}, LogSpec{Kind: LogNVEM}},
	}
	type variant struct {
		label string
		force bool
		db    DBSpec
		log   LogSpec
	}
	var variants []variant
	for _, sc := range schemes {
		for _, force := range []bool{true, false} {
			name := "NOFORCE"
			if force {
				name = "FORCE"
			}
			variants = append(variants, variant{name + ":" + sc.label, force, sc.db, sc.log})
		}
	}
	labels := make([]string, len(variants))
	for i, v := range variants {
		labels[i] = v.label
	}
	err := sweepFigure(o, fig, labels, func(si, xi int, o Options) (*core.Result, error) {
		v, rate := variants[si], fig.X[xi]
		res, err := DCSetup{Rate: rate, Force: v.force, DB: v.db, Log: v.log}.Run(o)
		if err != nil {
			return nil, fmt.Errorf("fig4.3 %s @%v: %w", v.label, rate, err)
		}
		return res, nil
	}, respMean)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// cachingSchemes are the second-level-cache configurations of Fig 4.4 and
// Tables 4.2a/b. In configurations with non-volatile disk caches or NVEM,
// those storage types are also used for logging (section 4.5).
func cachingSchemes() []struct {
	Label string
	DB    DBSpec
	Log   LogSpec
} {
	return []struct {
		Label string
		DB    DBSpec
		Log   LogSpec
	}{
		{"mm-only", DBSpec{Kind: DBRegular}, LogSpec{Kind: LogDisk}},
		{"vol-cache-1000", DBSpec{Kind: DBVolCache, Size: 1000}, LogSpec{Kind: LogDisk}},
		{"wb-in-nv-cache", DBSpec{Kind: DBDiskCacheWB, Size: 500}, LogSpec{Kind: LogDiskWB, Size: 500}},
		{"nv-cache-1000", DBSpec{Kind: DBNVCache, Size: 1000}, LogSpec{Kind: LogDiskWB, Size: 500}},
		{"nvem-cache-500", DBSpec{Kind: DBNVEMCache, Size: 500}, LogSpec{Kind: LogNVEM}},
		{"nvem-cache-1000", DBSpec{Kind: DBNVEMCache, Size: 1000}, LogSpec{Kind: LogNVEM}},
	}
}

// fig44Sizes is the main-memory buffer sweep of Fig 4.4.
func (o Options) mmSizes() []int {
	if o.Quick {
		return []int{500, 2000}
	}
	return []int{200, 500, 1000, 2000, 5000}
}

// Fig44 reproduces Fig 4.4: impact of caching for different main-memory
// buffer sizes (NOFORCE, 500 TPS).
func Fig44(o Options) (*stats.Figure, error) {
	sizes := o.mmSizes()
	fig := &stats.Figure{
		Title:  "Fig 4.4: Impact of caching vs. main memory buffer size (NOFORCE, 500 TPS)",
		XLabel: "MM buffer [pages]",
		YLabel: "mean response time [ms]",
	}
	for _, s := range sizes {
		fig.X = append(fig.X, float64(s))
	}
	schemes := cachingSchemes()
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.Label
	}
	err := sweepFigure(o, fig, labels, func(si, xi int, o Options) (*core.Result, error) {
		sc, mm := schemes[si], sizes[xi]
		res, err := DCSetup{Rate: 500, MMBuffer: mm, DB: sc.DB, Log: sc.Log}.Run(o)
		if err != nil {
			return nil, fmt.Errorf("fig4.4 %s mm=%d: %w", sc.Label, mm, err)
		}
		return res, nil
	}, respMean)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Table42 reproduces Table 4.2a (NOFORCE) or 4.2b (FORCE): main-memory and
// second-level cache hit ratios for different buffer sizes at 500 TPS.
// The first row is the main-memory hit ratio of the cacheless configuration;
// the remaining rows are the ADDITIONAL hits in each second-level cache.
func Table42(o Options, force bool) (*stats.Table, error) {
	sizes := o.mmSizes()
	cols := make([]string, len(sizes))
	for i, s := range sizes {
		cols[i] = fmt.Sprint(s)
	}
	variant, name := "a", "NOFORCE"
	if force {
		variant, name = "b", "FORCE"
	}
	rows := []string{"main memory", "vol. disk cache 1000", "nv disk cache 1000", "NVEM cache 1000"}
	if !force {
		rows = append(rows, "NVEM cache 500")
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Table 4.2%s: MM and 2nd-level cache hit ratios in %% (%s, 500 TPS)", variant, name),
		"cache \\ MM size", rows, cols)

	type rowSpec struct {
		db  DBSpec
		log LogSpec
	}
	specs := []rowSpec{
		{DBSpec{Kind: DBRegular}, LogSpec{Kind: LogDisk}},
		{DBSpec{Kind: DBVolCache, Size: 1000}, LogSpec{Kind: LogDisk}},
		{DBSpec{Kind: DBNVCache, Size: 1000}, LogSpec{Kind: LogDiskWB, Size: 500}},
		{DBSpec{Kind: DBNVEMCache, Size: 1000}, LogSpec{Kind: LogNVEM}},
	}
	if !force {
		specs = append(specs, rowSpec{DBSpec{Kind: DBNVEMCache, Size: 500}, LogSpec{Kind: LogNVEM}})
	}
	g := newGrid(o, len(specs), len(sizes))
	for r, spec := range specs {
		for c, mm := range sizes {
			g.add(r, c, func(o Options) (*core.Result, error) {
				res, err := DCSetup{Rate: 500, Force: force, MMBuffer: mm, DB: spec.db, Log: spec.log}.Run(o)
				if err != nil {
					return nil, fmt.Errorf("table4.2%s row %d mm=%d: %w", variant, r, mm, err)
				}
				return res, nil
			})
		}
	}
	cells, err := g.run()
	if err != nil {
		return nil, err
	}
	for r, spec := range specs {
		// Row 0 is the main-memory hit ratio; the remaining rows are the
		// ADDITIONAL second-level hits: NVEM cache hits from the buffer
		// manager, disk-cache read hits from the unit (as a fraction of
		// fixes).
		metric := mmHitPct
		switch {
		case r == 0:
		case spec.db.Kind == DBNVEMCache:
			metric = nvemAddHitPct
		default:
			metric = unitReadHitPct
		}
		for c := range sizes {
			mean, ci := cells[r][c].meanCI(metric)
			if o.reps() > 1 {
				tbl.SetCI(r, c, mean, ci)
			} else {
				tbl.Set(r, c, mean)
			}
		}
	}
	return tbl, nil
}

// fig45Sizes is the second-level cache sweep of Fig 4.5.
func (o Options) secondLevelSizes() []int {
	if o.Quick {
		return []int{500, 2000}
	}
	return []int{200, 500, 1000, 2000, 5000}
}

// Fig45 reproduces Fig 4.5: impact of the 2nd-level buffer size (NOFORCE,
// 500 TPS, 500-page main-memory buffer): response times and additional hit
// ratios per cache type.
func Fig45(o Options) (*stats.Figure, *stats.Figure, error) {
	sizes := o.secondLevelSizes()
	respFig := &stats.Figure{
		Title:  "Fig 4.5a: Response time vs. 2nd-level cache size (NOFORCE, 500 TPS, MM=500)",
		XLabel: "2nd-level size [pages]",
		YLabel: "mean response time [ms]",
	}
	hitFig := &stats.Figure{
		Title:  "Fig 4.5b: Additional 2nd-level hit ratio vs. cache size (in % of all fixes)",
		XLabel: "2nd-level size [pages]",
		YLabel: "hit ratio [%]",
	}
	for _, s := range sizes {
		respFig.X = append(respFig.X, float64(s))
		hitFig.X = append(hitFig.X, float64(s))
	}
	schemes := []struct {
		label string
		kind  DBKind
		log   LogSpec
	}{
		{"vol-disk-cache", DBVolCache, LogSpec{Kind: LogDisk}},
		{"nv-disk-cache", DBNVCache, LogSpec{Kind: LogDiskWB, Size: 500}},
		{"nvem-cache", DBNVEMCache, LogSpec{Kind: LogNVEM}},
	}
	g := newGrid(o, len(schemes), len(sizes))
	for si, sc := range schemes {
		for xi, size := range sizes {
			g.add(si, xi, func(o Options) (*core.Result, error) {
				res, err := DCSetup{
					Rate: 500, MMBuffer: 500,
					DB:  DBSpec{Kind: sc.kind, Size: size},
					Log: sc.log,
				}.Run(o)
				if err != nil {
					return nil, fmt.Errorf("fig4.5 %s size=%d: %w", sc.label, size, err)
				}
				return res, nil
			})
		}
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, err
	}
	for si, sc := range schemes {
		resp, respCI := seriesOf(cells[si], respMean)
		hitMetric := unitReadHitPct
		if sc.kind == DBNVEMCache {
			hitMetric = nvemAddHitPct
		}
		hits, hitCI := seriesOf(cells[si], hitMetric)
		if err := respFig.AddSeriesCI(sc.label, resp, respCI); err != nil {
			return nil, nil, err
		}
		if err := hitFig.AddSeriesCI(sc.label, hits, hitCI); err != nil {
			return nil, nil, err
		}
	}
	return respFig, hitFig, nil
}
