package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cc"
)

var quick = Options{Quick: true}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 31 {
		t.Fatalf("registry has %d experiments, want 31", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Name == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"fig4.1", "fig4.2", "fig4.3", "fig4.4", "fig4.5",
		"fig4.6", "fig4.7", "fig4.8", "table4.2a", "table4.2b", "table2.1",
		"cluster.scaleout", "cluster.scaleout64", "cluster.scaleout256",
		"cluster.allocation", "cluster.locking",
		"recovery.restart", "recovery.checkpoint", "recovery.availability",
		"workload.burstiness", "workload.spike-crash", "workload.diurnal"} {
		if !seen[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, err := ByName("fig4.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestDCSetupBuildValidates(t *testing.T) {
	if _, err := (DCSetup{Rate: 100, DB: DBSpec{Kind: DBKind(99)}}).Build(quick); err == nil {
		t.Fatal("bad DB kind must error")
	}
	if _, err := (DCSetup{Rate: 100, Log: LogSpec{Kind: LogKind(99)}}).Build(quick); err == nil {
		t.Fatal("bad log kind must error")
	}
	cfg, err := DCSetup{Rate: 100, DB: DBSpec{Kind: DBNVEMCache}, Log: LogSpec{Kind: LogNVEM}}.Build(quick)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFig41Saturation reproduces Fig 4.1's headline: a single log disk
// saturates near 200 TPS while SSD- and NVEM-resident logs sustain the load,
// with NVEM having the lowest response time.
func TestFig41Saturation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	single, err := DCSetup{Rate: 500, DB: DBSpec{Kind: DBRegular},
		Log: LogSpec{Kind: LogDisk, Disks: 1}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	if single.Throughput > 260 {
		t.Errorf("single log disk sustained %.0f TPS, must cap near 200", single.Throughput)
	}
	ssd, err := DCSetup{Rate: 500, DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogSSD}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	nvem, err := DCSetup{Rate: 500, DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogNVEM}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	if ssd.Saturated || nvem.Saturated {
		t.Error("SSD/NVEM logs must sustain 500 TPS")
	}
	if nvem.RespMean >= ssd.RespMean {
		t.Errorf("NVEM log (%.2f) must beat SSD log (%.2f)", nvem.RespMean, ssd.RespMean)
	}
}

// TestAggregateBufferEquivalence verifies the section 4.5 result at engine
// level: under NOFORCE, MM(500) + NVEM cache(500) achieves the same combined
// hit ratio as MM(1000) alone (the paper quotes 66.7%).
func TestAggregateBufferEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	split, err := DCSetup{Rate: 500, MMBuffer: 500,
		DB: DBSpec{Kind: DBNVEMCache, Size: 500}, Log: LogSpec{Kind: LogNVEM}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := DCSetup{Rate: 500, MMBuffer: 1000,
		DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogNVEM}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	combined := split.MMHitPct + split.NVEMAddHitPct
	if math.Abs(combined-mono.MMHitPct) > 1.5 {
		t.Errorf("combined hit %.1f%% vs monolithic %.1f%%: aggregate equivalence violated",
			combined, mono.MMHitPct)
	}
	if math.Abs(mono.MMHitPct-66.7) > 3 {
		t.Errorf("MM(1000) hit ratio %.1f%%, paper reports 66.7%%", mono.MMHitPct)
	}
}

// TestVolatileCacheUselessWhenMMLarger reproduces the double-caching result:
// once the main-memory buffer reaches the volatile disk cache's size, the
// cache yields no read hits at all (section 4.5).
func TestVolatileCacheUselessWhenMMLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	res, err := DCSetup{Rate: 500, MMBuffer: 2000,
		DB: DBSpec{Kind: DBVolCache, Size: 1000}, Log: LogSpec{Kind: LogDisk}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	fixes := res.Buffer.Fixes
	hits := res.Units[0].Stats.ReadHits
	if pct := 100 * float64(hits) / float64(fixes); pct > 0.5 {
		t.Errorf("volatile cache still hit %.2f%% with MM 2000 >= cache 1000", pct)
	}
}

// TestForceWriteBufferBeatsNoforceDisk checks the section 4.4 claim that
// "FORCE using a write buffer supports even better response times than
// NOFORCE without using non-volatile semiconductor memory".
func TestForceWriteBufferBeatsNoforceDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	forceWB, err := DCSetup{Rate: 200, Force: true,
		DB: DBSpec{Kind: DBDiskCacheWB, Size: 500}, Log: LogSpec{Kind: LogDiskWB, Size: 500}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	noforceDisk, err := DCSetup{Rate: 200,
		DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogDisk}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	if forceWB.RespMean >= noforceDisk.RespMean {
		t.Errorf("FORCE+WB %.2f ms must beat NOFORCE disk %.2f ms",
			forceWB.RespMean, noforceDisk.RespMean)
	}

	// And FORCE gains more from NV memory than NOFORCE: the FORCE/NOFORCE
	// gap with a write buffer must be far smaller than on plain disks.
	forceDisk, err := DCSetup{Rate: 200, Force: true,
		DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogDisk}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	noforceWB, err := DCSetup{Rate: 200,
		DB: DBSpec{Kind: DBDiskCacheWB, Size: 500}, Log: LogSpec{Kind: LogDiskWB, Size: 500}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	gapDisk := forceDisk.RespMean - noforceDisk.RespMean
	gapWB := forceWB.RespMean - noforceWB.RespMean
	if gapWB >= gapDisk {
		t.Errorf("FORCE penalty must shrink with NV memory: disk gap %.2f, WB gap %.2f",
			gapDisk, gapWB)
	}
}

// TestContentionThrashing reproduces Fig 4.8's qualitative result: at 300
// TPS page locking thrashes for the disk-based allocation, object locking
// removes the bottleneck, and the NVEM-resident allocation needs only page
// locking.
func TestContentionThrashing(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	pageDisk, err := ContentionSetup{Rate: 300, Alloc: ContDisk, Granularity: cc.PageLevel}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	objDisk, err := ContentionSetup{Rate: 300, Alloc: ContDisk, Granularity: cc.ObjectLevel}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	nvemPage, err := ContentionSetup{Rate: 300, Alloc: ContNVEM, Granularity: cc.PageLevel}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	if pageDisk.Throughput > 250 {
		t.Errorf("disk+page-locks sustained %.0f TPS at offered 300, expected lock thrashing", pageDisk.Throughput)
	}
	if objDisk.Throughput < 250 {
		t.Errorf("disk+object-locks reached only %.0f TPS, locking bottleneck not removed", objDisk.Throughput)
	}
	if nvemPage.Throughput < 250 || nvemPage.RespMean > 30 {
		t.Errorf("nvem+page-locks: %.0f TPS / %.2f ms, expected no contention problem",
			nvemPage.Throughput, nvemPage.RespMean)
	}
	if objDisk.Locks.Deadlocks == 0 && pageDisk.Locks.Deadlocks == 0 {
		t.Log("note: no deadlocks observed (possible but unusual)")
	}
}

// TestTraceVolNvSimilar reproduces the section 4.6 observation that for the
// read-dominated trace, volatile disk caches achieve about the same hit
// ratios as non-volatile ones.
func TestTraceVolNvSimilar(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	vol, err := TraceSetup{MMBuffer: 1000, DB: DBSpec{Kind: DBVolCache, Size: 2000},
		Log: LogSpec{Kind: LogDisk}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := TraceSetup{MMBuffer: 1000, DB: DBSpec{Kind: DBNVCache, Size: 2000},
		Log: LogSpec{Kind: LogDiskWB, Size: 500}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	volHit := 100 * float64(vol.Units[0].Stats.ReadHits) / float64(vol.Buffer.Fixes)
	nvHit := 100 * float64(nv.Units[0].Stats.ReadHits) / float64(nv.Buffer.Fixes)
	if math.Abs(volHit-nvHit) > 2.5 {
		t.Errorf("volatile %.1f%% vs non-volatile %.1f%% read hits: should be close for 1.6%% writes",
			volHit, nvHit)
	}
}

// TestTraceNVEMCacheBest: NVEM caching is the most effective second-level
// cache for the trace workload (better hit ratios, no double caching).
func TestTraceNVEMCacheBest(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	mmOnly, err := TraceSetup{MMBuffer: 1000, DB: DBSpec{Kind: DBRegular},
		Log: LogSpec{Kind: LogDisk}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	nvem, err := TraceSetup{MMBuffer: 1000, DB: DBSpec{Kind: DBNVEMCache, Size: 2000},
		Log: LogSpec{Kind: LogNVEM}}.Run(quick)
	if err != nil {
		t.Fatal(err)
	}
	if nvem.RespMean >= mmOnly.RespMean {
		t.Errorf("NVEM cache %.1f ms must beat mm-only %.1f ms", nvem.RespMean, mmOnly.RespMean)
	}
	if nvem.NVEMAddHitPct <= 0 {
		t.Error("NVEM cache produced no additional hits")
	}
}

func TestTable21Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	out, err := Table21(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 2.1", "extended memory", "solid-state disk",
		"nvem-resident", "measured response time"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2.1 output missing %q", want)
		}
	}
}

func TestContentionSetupValidates(t *testing.T) {
	if _, err := (ContentionSetup{Rate: 10, Alloc: ContentionAlloc(9)}).Build(quick); err == nil {
		t.Fatal("bad allocation must error")
	}
	cfg, err := ContentionSetup{Rate: 10, Alloc: ContMixed, Granularity: cc.ObjectLevel}.Build(quick)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.InstrOR != 16_000 {
		t.Fatalf("InstrOR = %v, want 16000 (250k pathlength)", cfg.InstrOR)
	}
}

func TestTraceSetupValidates(t *testing.T) {
	if _, err := (TraceSetup{MMBuffer: 100, DB: DBSpec{Kind: DBMMResident}}).Build(quick); err == nil {
		t.Fatal("unsupported trace DB kind must error")
	}
	cfg, err := TraceSetup{MMBuffer: 100, DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogDisk}}.Build(quick)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Partitions) != 13 {
		t.Fatalf("trace config has %d partitions, want 13 files", len(cfg.Partitions))
	}
}
