package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Crash-recovery experiments: the axis of the paper's argument that
// steady-state figures cannot show. NOFORCE is only viable with fuzzy
// checkpointing, and placing the log (and database) on non-volatile
// semiconductor memory is what makes fast restart possible — so these
// experiments crash the simulated system and measure what happens:
// restart time per storage placement (recovery.restart), the
// checkpoint-interval trade-off (recovery.checkpoint), and the cluster
// throughput dip and ramp-back around a node failure
// (recovery.availability).

// defaultCkptIntervalMS is the fuzzy-checkpoint interval of the
// restart-placement experiment (quick windows fit ~3 checkpoints, full
// windows ~7); the interval sweep below varies it explicitly.
const defaultCkptIntervalMS = 5_000

// RecoverySetup is one single-node crash-recovery simulation point: a
// Debit-Credit run with the checkpoint daemon on, crashed after the
// measurement window to measure restart time (core.MeasureRestart).
type RecoverySetup struct {
	DC           DCSetup
	CheckpointMS float64
	RebootMS     float64
}

// Run builds and executes the setup.
func (s RecoverySetup) Run(o Options) (*core.Result, error) {
	cfg, err := s.DC.Build(o)
	if err != nil {
		return nil, err
	}
	cfg.Buffer.CheckpointIntervalMS = s.CheckpointMS
	return core.MeasureRestart(cfg, s.RebootMS)
}

// Restart metrics.

func restartMS(r *core.Result) float64 {
	if r.Restart == nil {
		return 0
	}
	return r.Restart.RestartMS
}

func logScanMS(r *core.Result) float64 {
	if r.Restart == nil {
		return 0
	}
	return r.Restart.LogScanMS
}

func redoMS(r *core.Result) float64 {
	if r.Restart == nil {
		return 0
	}
	return r.Restart.RedoMS
}

func restartEstimateMS(r *core.Result) float64 {
	if r.Restart == nil {
		return 0
	}
	return r.Restart.EstimateMS
}

func restartLogPages(r *core.Result) float64 {
	if r.Restart == nil {
		return 0
	}
	return float64(r.Restart.Snapshot.LogPages)
}

func restartRedoPages(r *core.Result) float64 {
	if r.Restart == nil {
		return 0
	}
	return float64(r.Restart.Snapshot.RedoPages)
}

// RecoveryRestart measures restart time after a crash for the log and
// database placements of Fig 3.2: the redo log scan is device-bound, so
// restart orders NVEM < SSD < disk; putting the database itself on SSD
// additionally collapses the redo page I/O.
func RecoveryRestart(o Options) (*stats.Table, error) {
	type rowSpec struct {
		label string
		dc    DCSetup
	}
	const rate = 200
	rows := []rowSpec{
		{"log-disk / db-disk", DCSetup{Rate: rate, DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogDisk}}},
		{"log-wb / db-disk", DCSetup{Rate: rate, DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogDiskWB, Size: 500}}},
		{"log-ssd / db-disk", DCSetup{Rate: rate, DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogSSD}}},
		{"log-nvem / db-disk", DCSetup{Rate: rate, DB: DBSpec{Kind: DBRegular}, Log: LogSpec{Kind: LogNVEM}}},
		{"log-nvem / db-ssd", DCSetup{Rate: rate, DB: DBSpec{Kind: DBSSD}, Log: LogSpec{Kind: LogNVEM}}},
	}
	cols := []string{"restart-ms", "log-scan-ms", "redo-ms", "est-ms", "log-pages", "redo-pages"}
	metrics := []func(*core.Result) float64{
		restartMS, logScanMS, redoMS, restartEstimateMS, restartLogPages, restartRedoPages,
	}
	labels := make([]string, len(rows))
	for i, r := range rows {
		labels[i] = r.label
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Restart time by log/database placement (Debit-Credit %d TPS, NOFORCE, ckpt %.0fs)",
			rate, defaultCkptIntervalMS/1000.0),
		"placement", labels, cols)

	g := newGrid(o, len(rows), 1)
	for r, spec := range rows {
		g.add(r, 0, func(o Options) (*core.Result, error) {
			res, err := RecoverySetup{DC: spec.dc, CheckpointMS: defaultCkptIntervalMS, RebootMS: 500}.Run(o)
			if err != nil {
				return nil, fmt.Errorf("recovery.restart %s: %w", spec.label, err)
			}
			return res, nil
		})
	}
	cells, err := g.run()
	if err != nil {
		return nil, err
	}
	for r := range rows {
		for c, metric := range metrics {
			mean, ci := cells[r][0].meanCI(metric)
			if o.reps() > 1 {
				tbl.SetCI(r, c, mean, ci)
			} else {
				tbl.Set(r, c, mean)
			}
		}
	}
	return tbl, nil
}

// ckptIntervals is the checkpoint-interval sweep (milliseconds).
func (o Options) ckptIntervals() []float64 {
	if o.Quick {
		return []float64{2_000, 5_000, 10_000}
	}
	return []float64{2_000, 5_000, 10_000, 20_000}
}

// RecoveryCheckpoint sweeps the fuzzy-checkpoint interval: the runtime
// cost of checkpointing (response time with the daemon's flush I/O in
// the background) against the restart time it buys. Short intervals
// bound the redo log tightly; the log device then decides how much that
// still matters.
func RecoveryCheckpoint(o Options) (*stats.Figure, *stats.Figure, error) {
	resp := &stats.Figure{
		Title:  "Checkpoint interval: runtime cost (Debit-Credit 200 TPS, NOFORCE)",
		XLabel: "interval ms",
		YLabel: "mean response time [ms]",
		X:      o.ckptIntervals(),
	}
	restart := &stats.Figure{
		Title:  "Checkpoint interval: restart time",
		XLabel: "interval ms",
		YLabel: "restart time [ms]",
		X:      o.ckptIntervals(),
	}
	type scheme struct {
		label string
		log   LogSpec
	}
	schemes := []scheme{
		{"log-disk", LogSpec{Kind: LogDisk}},
		{"log-nvem", LogSpec{Kind: LogNVEM}},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	g := newGrid(o, len(schemes), len(resp.X))
	for si := range schemes {
		for xi := range resp.X {
			si, xi := si, xi
			g.add(si, xi, func(o Options) (*core.Result, error) {
				sc, interval := schemes[si], resp.X[xi]
				res, err := RecoverySetup{
					DC:           DCSetup{Rate: 200, DB: DBSpec{Kind: DBRegular}, Log: sc.log},
					CheckpointMS: interval,
					RebootMS:     500,
				}.Run(o)
				if err != nil {
					return nil, fmt.Errorf("recovery.checkpoint %s @%v: %w", sc.label, interval, err)
				}
				return res, nil
			})
		}
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, err
	}
	for si, label := range labels {
		points, cis := seriesOf(cells[si], respMean)
		if err := resp.AddSeriesCI(label, points, cis); err != nil {
			return nil, nil, err
		}
		r, rCI := seriesOf(cells[si], restartMS)
		if err := restart.AddSeriesCI(label, r, rCI); err != nil {
			return nil, nil, err
		}
	}
	return resp, restart, nil
}

// bucketMetric extracts one timeline bucket as a grid metric.
func bucketMetric(timeline func(*core.Result) []int64, b int) func(*core.Result) float64 {
	return func(r *core.Result) float64 {
		tl := timeline(r)
		if b >= len(tl) {
			return 0
		}
		return float64(tl[b])
	}
}

// The recovery.availability scenario, shared with table2.1's downtime-cost
// analysis so the two stay in lockstep: node 0 of a 4-node cluster at 400
// TPS aggregate crashes 3 s into the window and recovers after a 500 ms
// reboot plus device-dependent redo.
const (
	availNodes     = 4
	availRate      = 400.0
	availCrashAtMS = 3_000.0
	availRebootMS  = 500.0
	// Not a divisor of the crash instant in either window setting, so the
	// crash never lands exactly on a checkpoint (which would leave zero
	// redo pages).
	availCkptMS = 2_600.0
)

// availScheme is one storage scheme of the availability scenario.
type availScheme struct {
	label           string
	shared, private int
}

// availSchemes returns the storage schemes the scenario compares; the
// "disk-only" entry is the baseline the NVEM premiums are judged against.
func availSchemes() []availScheme {
	return []availScheme{
		{"shared-nvem", 2000, 0},
		{"private-nvem", 0, 2000 / availNodes},
		{"disk-only", 0, 0},
	}
}

// availSetup assembles the scenario for one scheme; timelineBucketMS > 0
// additionally records the commit timelines.
func availSetup(sc availScheme, timelineBucketMS float64) ClusterSetup {
	return ClusterSetup{
		Nodes: availNodes, AggregateRate: availRate,
		SharedNVEM: sc.shared, PrivateNVEM: sc.private,
		GlobalLocks:  true,
		CheckpointMS: availCkptMS,
		CrashAtMS:    availCrashAtMS, CrashNode: 0, RebootMS: availRebootMS,
		TimelineBucketMS: timelineBucketMS,
	}
}

// RecoveryAvailability crashes node 0 of a 4-node data-sharing cluster
// mid-window and charts two commit timelines per storage scheme: the
// cluster-wide one (the survivors absorb the rerouted arrivals, so it
// holds — that is the availability argument for data sharing) and the
// crashed node's own (its zero gap is the outage; its length is what the
// log and checkpoint placement decide). NVEM schemes keep the log in
// extended memory and restart quickly; the disk-only scheme pays a
// device-speed log scan and redo on top of the same reboot.
func RecoveryAvailability(o Options) (*stats.Figure, *stats.Table, error) {
	const bucketMS = 1_000.0
	_, measure := o.windows()
	buckets := int(measure / bucketMS)
	x := make([]float64, buckets)
	for i := range x {
		x[i] = float64(i)
	}
	fig := &stats.Figure{
		Title: fmt.Sprintf("Cluster availability: node 0 of %d crashes at +%.0f s (Debit-Credit %.0f TPS aggregate)",
			availNodes, availCrashAtMS/1000, availRate),
		XLabel: "window second",
		YLabel: "commits per second",
		X:      x,
	}
	schemes := availSchemes()
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	tbl := stats.NewTable("Restart breakdown", "scheme", labels,
		[]string{"restart-ms", "log-scan-ms", "redo-ms", "log-pages", "redo-pages"})

	g := newGrid(o, len(schemes), 1)
	for si, sc := range schemes {
		g.add(si, 0, func(o Options) (*core.Result, error) {
			res, err := availSetup(sc, bucketMS).Run(o)
			if err != nil {
				return nil, fmt.Errorf("recovery.availability %s: %w", sc.label, err)
			}
			return res, nil
		})
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, err
	}
	series := []struct {
		suffix   string
		timeline func(*core.Result) []int64
	}{
		{"cluster", func(r *core.Result) []int64 { return r.Timeline }},
		{"node0", func(r *core.Result) []int64 { return r.CrashedTimeline }},
	}
	for si, label := range labels {
		for _, sr := range series {
			points := make([]float64, buckets)
			cis := make([]float64, buckets)
			for b := range points {
				points[b], cis[b] = cells[si][0].meanCI(bucketMetric(sr.timeline, b))
			}
			if len(cells[si][0].results) <= 1 {
				cis = nil
			}
			if err := fig.AddSeriesCI(label+":"+sr.suffix, points, cis); err != nil {
				return nil, nil, err
			}
		}
		metrics := []func(*core.Result) float64{restartMS, logScanMS, redoMS, restartLogPages, restartRedoPages}
		for c, metric := range metrics {
			mean, ci := cells[si][0].meanCI(metric)
			if o.reps() > 1 {
				tbl.SetCI(si, c, mean, ci)
			} else {
				tbl.Set(si, c, mean)
			}
		}
	}
	return fig, tbl, nil
}
