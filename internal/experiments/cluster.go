package experiments

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Multi-node data-sharing experiments (the paper's section 5 outlook:
// extended storage as globally accessible storage shared by multiple
// transaction systems). Every point runs core.RunCluster: N identical
// nodes share the database disks, the log device and one global NVEM used
// as shared second-level cache and log store, with write-invalidate
// coherence and an optional cluster-wide lock manager.

// ClusterSetup describes one multi-node simulation point. The aggregate
// arrival rate is split evenly over the nodes, so sweeps over Nodes hold
// the offered load constant while adding processing capacity (and
// coherence/locking overhead).
type ClusterSetup struct {
	Nodes         int
	AggregateRate float64 // TPS across the whole cluster
	MMBuffer      int     // per-node main-memory frames (0 → 2000 split over nodes)
	SharedNVEM    int     // shared NVEM cache frames (log goes NVEM-resident too)
	PrivateNVEM   int     // per-node private NVEM cache frames (exclusive with SharedNVEM)
	GlobalLocks   bool
	Contention    bool           // section 4.7 contention workload instead of Debit-Credit
	Granularity   cc.Granularity // lock granularity for the contention workload

	// Recovery / availability knobs (the recovery.* experiments).
	CheckpointMS     float64 // fuzzy-checkpoint interval (0: no daemon)
	CrashAtMS        float64 // crash CrashNode this far into the window (0: no crash)
	CrashNode        int
	RebootMS         float64
	TimelineBucketMS float64 // record cluster commits per bucket

	// Workload-realism knobs (the workload.* experiments): the arrival
	// process every node's streams draw from, and the recovery-aware
	// admission controller on the rerouter.
	Arrival   workload.ArrivalSpec
	Admission core.AdmissionConfig

	// Parallel-simulation knobs (the cluster.scaleout64/256 experiments):
	// run the cluster under the conservative PDES engine, one kernel and
	// private storage per node. Combining PDES with SharedNVEM requires a
	// positive NVEMAccessDelayMS — the modeled interconnect latency that
	// gives shared-cache coherence its lookahead.
	PDES              bool
	PDESWorkers       int
	NVEMAccessDelayMS float64

	// WindowScale scales both simulation windows by the given factor; 0
	// keeps the standard o.windows() length. The 256-node sweep uses it to
	// stay affordable — per-node confidence comes from 256 nodes sharing
	// one window, not from window length.
	WindowScale float64

	// Per-node storage sizing overrides (0 → the shared-storage defaults
	// of 12/96 db and 2/8 log controllers/disks). The PDES engine gives
	// every node its own devices, so large clusters size them per node
	// instead of replicating the full shared farm N times.
	DBControllers, DBDisks   int
	LogControllers, LogDisks int
}

// Build assembles the cluster configuration.
func (s ClusterSetup) Build(o Options) (core.ClusterConfig, error) {
	if s.Nodes <= 0 {
		return core.ClusterConfig{}, fmt.Errorf("experiments: cluster with %d nodes", s.Nodes)
	}
	if s.SharedNVEM > 0 && s.PrivateNVEM > 0 {
		return core.ClusterConfig{}, fmt.Errorf("experiments: shared and private NVEM caches are exclusive")
	}
	perNodeRate := s.AggregateRate / float64(s.Nodes)

	base := core.Defaults()
	base.Seed = o.seed()
	base.WarmupMS, base.MeasureMS = o.windows()
	if s.WindowScale > 0 {
		base.WarmupMS *= s.WindowScale
		base.MeasureMS *= s.WindowScale
	}
	base.Arrival = s.Arrival

	gens := make([]workload.Generator, s.Nodes)
	if s.Contention {
		model := contentionModel(perNodeRate)
		for i := range gens {
			gen, err := workload.NewSynthetic(contentionModel(perNodeRate))
			if err != nil {
				return core.ClusterConfig{}, err
			}
			gens[i] = gen
		}
		base.Partitions = model.Partitions
		base.CCModes = []cc.Granularity{s.Granularity, s.Granularity}
		applyContentionPathlength(&base)
	} else {
		for i := range gens {
			gen, err := workload.NewDebitCredit(workload.DefaultDebitCreditConfig(perNodeRate))
			if err != nil {
				return core.ClusterConfig{}, err
			}
			gens[i] = gen
			if i == 0 {
				base.Partitions = gen.Partitions()
			}
		}
		base.CCModes = []cc.Granularity{cc.PageLevel, cc.PageLevel, cc.NoCC}
	}

	mm := s.MMBuffer
	if mm == 0 {
		mm = 2000 / s.Nodes // fixed aggregate main memory across the sweep
	}
	part := buffer.PartitionAlloc{DiskUnit: 0}
	bufCfg := buffer.Config{BufferSize: mm, Logging: true}
	logAlloc := buffer.LogAlloc{DiskUnit: 1}
	switch {
	case s.SharedNVEM > 0:
		part.NVEMCache = true
		part.NVEMCacheMode = buffer.MigrateAll
		bufCfg.NVEMCacheSize = s.SharedNVEM
		// The global NVEM is the cluster's log store as well.
		logAlloc = buffer.LogAlloc{NVEMResident: true}
	case s.PrivateNVEM > 0:
		part.NVEMCache = true
		part.NVEMCacheMode = buffer.MigrateAll
		bufCfg.NVEMCacheSize = s.PrivateNVEM
		logAlloc = buffer.LogAlloc{NVEMResident: true}
	}
	parts := make([]buffer.PartitionAlloc, len(base.Partitions))
	for i := range parts {
		parts[i] = part
	}
	bufCfg.Partitions = parts
	bufCfg.Log = logAlloc
	bufCfg.CheckpointIntervalMS = s.CheckpointMS
	base.Buffer = bufCfg

	dbc, dbd, lgc, lgd := 12, 96, 2, 8
	if s.DBControllers > 0 {
		dbc = s.DBControllers
	}
	if s.DBDisks > 0 {
		dbd = s.DBDisks
	}
	if s.LogControllers > 0 {
		lgc = s.LogControllers
	}
	if s.LogDisks > 0 {
		lgd = s.LogDisks
	}
	base.DiskUnits = []storage.DiskUnitConfig{
		{Name: "db", Type: storage.Regular, NumControllers: dbc,
			ContrDelay: core.DefaultContrDelay, TransDelay: core.DefaultTransDelay,
			NumDisks: dbd, DiskDelay: core.DefaultDBDiskDelay},
		{Name: "log", Type: storage.Regular, NumControllers: lgc,
			ContrDelay: core.DefaultContrDelay, TransDelay: core.DefaultTransDelay,
			NumDisks: lgd, DiskDelay: core.DefaultLogDiskDelay},
	}

	cfg := core.ClusterConfig{
		Base:              base,
		NumNodes:          s.Nodes,
		Generators:        gens,
		SharedNVEMCache:   s.SharedNVEM > 0,
		NVEMAccessDelayMS: s.NVEMAccessDelayMS,
		GlobalLocks:       s.GlobalLocks,
		TimelineBucketMS:  s.TimelineBucketMS,
		Admission:         s.Admission,
		PDES:              core.PDESConfig{Enabled: s.PDES, Workers: s.PDESWorkers},
	}
	if s.CrashAtMS > 0 {
		cfg.Failure = core.FailureConfig{
			Enabled:   true,
			Node:      s.CrashNode,
			CrashAtMS: s.CrashAtMS,
			RebootMS:  s.RebootMS,
		}
	}
	return cfg, nil
}

// Run builds and executes the setup, returning the cluster-wide aggregate
// (which plugs into the shared figure machinery).
func (s ClusterSetup) Run(o Options) (*core.Result, error) {
	cfg, err := s.Build(o)
	if err != nil {
		return nil, err
	}
	res, err := core.RunCluster(cfg)
	if err != nil {
		return nil, err
	}
	return res.Cluster, nil
}

// nodeCounts is the node-count sweep of the scale-out experiment.
func (o Options) nodeCounts() []float64 {
	if o.Quick {
		return []float64{1, 2, 4}
	}
	return []float64{1, 2, 4, 8}
}

// ClusterScaleout sweeps the node count at a fixed aggregate load: shared
// NVEM (second-level cache + log) against a disk-only allocation, both
// under global locking. Per-node main memory shrinks as 2000/N frames, so
// aggregate memory is constant: the shared NVEM cache absorbs the local
// hit-ratio loss while disk-only clusters pay it in I/O.
func ClusterScaleout(o Options) (*stats.Figure, *stats.Figure, error) {
	resp := &stats.Figure{
		Title:  "Cluster scale-out at 400 TPS aggregate (Debit-Credit, global locks)",
		XLabel: "nodes",
		YLabel: "mean response time [ms]",
		X:      o.nodeCounts(),
	}
	hits := &stats.Figure{
		Title:  "Cluster scale-out: aggregate hit ratios",
		XLabel: "nodes",
		YLabel: "hit ratio [%]",
		X:      o.nodeCounts(),
	}
	type scheme struct {
		label  string
		shared int
	}
	schemes := []scheme{
		{"shared-nvem", 2000},
		{"disk-only", 0},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	g := newGrid(o, len(schemes), len(resp.X))
	for si := range schemes {
		for xi := range resp.X {
			si, xi := si, xi
			g.add(si, xi, func(o Options) (*core.Result, error) {
				sc, nodes := schemes[si], int(resp.X[xi])
				res, err := ClusterSetup{Nodes: nodes, AggregateRate: 400,
					SharedNVEM: sc.shared, GlobalLocks: true}.Run(o)
				if err != nil {
					return nil, fmt.Errorf("cluster.scaleout %s @%d: %w", sc.label, nodes, err)
				}
				return res, nil
			})
		}
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, err
	}
	for si, label := range labels {
		points, cis := seriesOf(cells[si], respMean)
		if err := resp.AddSeriesCI(label, points, cis); err != nil {
			return nil, nil, err
		}
		mm, mmCI := seriesOf(cells[si], mmHitPct)
		if err := hits.AddSeriesCI(label+":mm", mm, mmCI); err != nil {
			return nil, nil, err
		}
	}
	nvemPts, nvemCI := seriesOf(cells[0], nvemAddHitPct)
	if err := hits.AddSeriesCI("shared-nvem:nvem", nvemPts, nvemCI); err != nil {
		return nil, nil, err
	}
	return resp, hits, nil
}

// pdesNodeCounts is the node-count sweep of the PDES scale-up experiment:
// unlike nodeCounts it grows the offered load with the cluster, so the
// interesting axis is coordination overhead at scale, not load splitting.
func (o Options) pdesNodeCounts() []float64 {
	if o.Quick {
		return []float64{4, 16, 64}
	}
	return []float64{4, 16, 64, 128}
}

// ClusterScaleout64 extends the scale-out story to 64 nodes and beyond
// under the conservative parallel engine: every node carries a fixed 50
// TPS of Debit-Credit with its own storage (2/12 db, 1/2 log
// controllers/disks, 500 MM frames), global locking on, so the sweep
// isolates what scale itself costs — lock-manager round trips and
// write-invalidate traffic growing with the node count. Private NVEM
// caches are compared against disk-only nodes; the shared cache at scale
// is cluster.scaleout256's subject.
func ClusterScaleout64(o Options) (*stats.Figure, *stats.Figure, error) {
	resp := &stats.Figure{
		Title:  "PDES scale-up at 50 TPS per node (Debit-Credit, global locks, per-node storage)",
		XLabel: "nodes",
		YLabel: "mean response time [ms]",
		X:      o.pdesNodeCounts(),
	}
	tput := &stats.Figure{
		Title:  "PDES scale-up: aggregate throughput",
		XLabel: "nodes",
		YLabel: "committed TPS",
		X:      o.pdesNodeCounts(),
	}
	type scheme struct {
		label   string
		private int
	}
	schemes := []scheme{
		{"private-nvem", 500},
		{"disk-only", 0},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	g := newGrid(o, len(schemes), len(resp.X))
	for si := range schemes {
		for xi := range resp.X {
			si, xi := si, xi
			g.add(si, xi, func(o Options) (*core.Result, error) {
				sc, nodes := schemes[si], int(resp.X[xi])
				res, err := ClusterSetup{Nodes: nodes, AggregateRate: 50 * float64(nodes),
					MMBuffer: 500, PrivateNVEM: sc.private, GlobalLocks: true,
					PDES:          true,
					DBControllers: 2, DBDisks: 12, LogControllers: 1, LogDisks: 2}.Run(o)
				if err != nil {
					return nil, fmt.Errorf("cluster.scaleout64 %s @%d: %w", sc.label, nodes, err)
				}
				return res, nil
			})
		}
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, err
	}
	for si, label := range labels {
		points, cis := seriesOf(cells[si], respMean)
		if err := resp.AddSeriesCI(label, points, cis); err != nil {
			return nil, nil, err
		}
		tp, tpCI := seriesOf(cells[si], throughput)
		if err := tput.AddSeriesCI(label, tp, tpCI); err != nil {
			return nil, nil, err
		}
	}
	return resp, tput, nil
}

// pdes256NodeCounts is the node-count sweep of the 256-node experiment.
func (o Options) pdes256NodeCounts() []float64 {
	if o.Quick {
		return []float64{64, 256}
	}
	return []float64{64, 128, 256}
}

// ClusterScaleout256 is the shared-NVEM coherence story at the scale the
// barrier fast path exists for: 64→256 nodes under PDES, 50 TPS per node
// with per-node storage, comparing one cluster-shared NVEM cache (2000
// frames, coherence travelling as NVEMAccessDelayMS interconnect
// messages) against private 500-frame caches. Windows are scaled down —
// at 256 nodes one short window already aggregates hundreds of thousands
// of transactions — and PDESWorkers is pinned so the rendered output is
// reproducible on any host (worker-count invariance is pinned separately
// by TestPDESWorkerCountInvariant256).
func ClusterScaleout256(o Options) (*stats.Figure, *stats.Figure, error) {
	resp := &stats.Figure{
		Title:  "PDES scale-up to 256 nodes (Debit-Credit, shared vs. private NVEM cache)",
		XLabel: "nodes",
		YLabel: "mean response time [ms]",
		X:      o.pdes256NodeCounts(),
	}
	tput := &stats.Figure{
		Title:  "PDES scale-up to 256 nodes: aggregate throughput",
		XLabel: "nodes",
		YLabel: "committed TPS",
		X:      o.pdes256NodeCounts(),
	}
	type scheme struct {
		label           string
		shared, private int
	}
	schemes := []scheme{
		{"shared-nvem", 2000, 0},
		{"private-nvem", 0, 500},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	g := newGrid(o, len(schemes), len(resp.X))
	for si := range schemes {
		for xi := range resp.X {
			si, xi := si, xi
			g.add(si, xi, func(o Options) (*core.Result, error) {
				sc, nodes := schemes[si], int(resp.X[xi])
				res, err := ClusterSetup{Nodes: nodes, AggregateRate: 50 * float64(nodes),
					MMBuffer: 500, SharedNVEM: sc.shared, PrivateNVEM: sc.private,
					GlobalLocks: true, PDES: true, PDESWorkers: 4,
					NVEMAccessDelayMS: 0.15, WindowScale: 0.2,
					DBControllers: 2, DBDisks: 12, LogControllers: 1, LogDisks: 2}.Run(o)
				if err != nil {
					return nil, fmt.Errorf("cluster.scaleout256 %s @%d: %w", sc.label, nodes, err)
				}
				return res, nil
			})
		}
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, err
	}
	for si, label := range labels {
		points, cis := seriesOf(cells[si], respMean)
		if err := resp.AddSeriesCI(label, points, cis); err != nil {
			return nil, nil, err
		}
		tp, tpCI := seriesOf(cells[si], throughput)
		if err := tput.AddSeriesCI(label, tp, tpCI); err != nil {
			return nil, nil, err
		}
	}
	return resp, tput, nil
}

// ClusterAllocation compares, at four nodes over an aggregate-rate sweep,
// one shared NVEM cache against the same frames split into private
// per-node caches and against the disk-only baseline. The shared pool
// avoids replicating hot pages once per node and serves remote destages.
func ClusterAllocation(o Options) (*stats.Figure, error) {
	fig := &stats.Figure{
		Title:  "Shared vs. private NVEM caching, 4-node data sharing (Debit-Credit)",
		XLabel: "aggregate TPS",
		YLabel: "mean response time [ms]",
		X:      o.rates(),
	}
	const nodes = 4
	type scheme struct {
		label           string
		shared, private int
	}
	schemes := []scheme{
		{"shared-nvem-cache", 2000, 0},
		{"private-nvem-caches", 0, 2000 / nodes},
		{"disk-only", 0, 0},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	err := sweepFigure(o, fig, labels, func(si, xi int, o Options) (*core.Result, error) {
		sc, rate := schemes[si], fig.X[xi]
		res, err := ClusterSetup{Nodes: nodes, AggregateRate: rate,
			SharedNVEM: sc.shared, PrivateNVEM: sc.private, GlobalLocks: true}.Run(o)
		if err != nil {
			return nil, fmt.Errorf("cluster.allocation %s @%v: %w", sc.label, rate, err)
		}
		return res, nil
	}, respMean)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// lockMsgsPerTx is the global lock-manager message traffic per committed
// transaction.
func lockMsgsPerTx(r *core.Result) float64 {
	if r.Commits == 0 {
		return 0
	}
	return float64(r.LockMsgs) / float64(r.Commits)
}

// ClusterLocking runs the section 4.7 contention workload on a two-node
// cluster: idealized local locking (no messages) against the global lock
// manager at page and object granularity. The second figure pins the
// message traffic the global manager costs per transaction.
func ClusterLocking(o Options) (*stats.Figure, *stats.Figure, error) {
	resp := &stats.Figure{
		Title:  "Global vs. local locking under contention (2-node data sharing)",
		XLabel: "TPS",
		YLabel: "mean response time [ms]",
		X:      o.rates(),
	}
	msgs := &stats.Figure{
		Title:  "Global lock-manager messages",
		XLabel: "TPS",
		YLabel: "messages per committed tx",
		X:      o.rates(),
	}
	type scheme struct {
		label  string
		global bool
		gran   cc.Granularity
	}
	schemes := []scheme{
		{"local:page-locks", false, cc.PageLevel},
		{"global:page-locks", true, cc.PageLevel},
		{"global:object-locks", true, cc.ObjectLevel},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	g := newGrid(o, len(schemes), len(resp.X))
	for si := range schemes {
		for xi := range resp.X {
			si, xi := si, xi
			g.add(si, xi, func(o Options) (*core.Result, error) {
				sc, rate := schemes[si], resp.X[xi]
				res, err := ClusterSetup{Nodes: 2, AggregateRate: rate,
					GlobalLocks: sc.global, Contention: true, Granularity: sc.gran}.Run(o)
				if err != nil {
					return nil, fmt.Errorf("cluster.locking %s @%v: %w", sc.label, rate, err)
				}
				return res, nil
			})
		}
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, err
	}
	for si, label := range labels {
		points, cis := seriesOf(cells[si], respMean)
		if err := resp.AddSeriesCI(label, points, cis); err != nil {
			return nil, nil, err
		}
		if !schemes[si].global {
			continue
		}
		m, mCI := seriesOf(cells[si], lockMsgsPerTx)
		if err := msgs.AddSeriesCI(label, m, mCI); err != nil {
			return nil, nil, err
		}
	}
	return resp, msgs, nil
}
