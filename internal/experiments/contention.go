package experiments

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

// ContentionAlloc enumerates the storage allocations of section 4.7.
type ContentionAlloc int

// Allocations of Fig 4.8.
const (
	// ContDisk stores both partitions and the log on disks.
	ContDisk ContentionAlloc = iota
	// ContMixed keeps the small high-contention partition and the log in
	// NVEM, the large partition on disk.
	ContMixed
	// ContNVEM keeps everything NVEM-resident.
	ContNVEM
)

func (a ContentionAlloc) String() string {
	switch a {
	case ContDisk:
		return "disk-based"
	case ContMixed:
		return "mixed"
	case ContNVEM:
		return "nvem-resident"
	default:
		return fmt.Sprintf("ContentionAlloc(%d)", int(a))
	}
}

// ContentionSetup is one point of the lock-contention experiment: a single
// variable-size transaction type (10 object accesses on average, 100%
// updates), 80% of accesses to a 10,000-object partition and 20% to a
// 100,000-object partition, blocking factor 10 (section 4.7).
type ContentionSetup struct {
	Rate        float64
	Alloc       ContentionAlloc
	Granularity cc.Granularity
}

// contentionModel is the section 4.7 workload at the given arrival rate:
// one variable-size update type averaging ten object references, 80% of
// accesses on a small hot partition. Shared by Fig 4.8 and the
// cluster.locking experiment so both provably run the same workload.
func contentionModel(rate float64) *workload.Model {
	return &workload.Model{
		Partitions: []workload.Partition{
			{Name: "hot", NumObjects: 10_000, BlockFactor: 10},
			{Name: "cold", NumObjects: 100_000, BlockFactor: 10},
		},
		TxTypes: []workload.TxType{
			{
				Name:        "update",
				ArrivalRate: rate,
				TxSize:      10,
				WriteProb:   1.0,
				VarSize:     true,
				RefRow:      []float64{0.8, 0.2},
			},
		},
	}
}

// applyContentionPathlength sets the per-object CPU cost so the total
// pathlength stays at 250k instructions: "Like for Debit-Credit, an
// average pathlength of 250.000 instructions per transaction has been
// chosen" (section 4.7) — with ten object references the per-object cost
// shrinks to keep the total constant.
func applyContentionPathlength(cfg *core.Config) {
	cfg.InstrOR = (250_000 - cfg.InstrBOT - cfg.InstrEOT) / 10
}

// Build assembles the engine configuration.
func (s ContentionSetup) Build(o Options) (core.Config, error) {
	model := contentionModel(s.Rate)
	gen, err := workload.NewSynthetic(model)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Defaults()
	cfg.Seed = o.seed()
	cfg.WarmupMS, cfg.MeasureMS = o.windows()
	cfg.Partitions = model.Partitions
	cfg.Generator = gen
	cfg.CCModes = []cc.Granularity{s.Granularity, s.Granularity}
	applyContentionPathlength(&cfg)

	cfg.DiskUnits = []storage.DiskUnitConfig{
		{Name: "db", Type: storage.Regular, NumControllers: 12,
			ContrDelay: core.DefaultContrDelay, TransDelay: core.DefaultTransDelay,
			NumDisks: 96, DiskDelay: core.DefaultDBDiskDelay},
		{Name: "log", Type: storage.Regular, NumControllers: 2,
			ContrDelay: core.DefaultContrDelay, TransDelay: core.DefaultTransDelay,
			NumDisks: 8, DiskDelay: core.DefaultLogDiskDelay},
	}
	cfg.Buffer = buffer.Config{
		BufferSize: 2000,
		Logging:    true,
	}
	switch s.Alloc {
	case ContDisk:
		cfg.Buffer.Partitions = []buffer.PartitionAlloc{{DiskUnit: 0}, {DiskUnit: 0}}
		cfg.Buffer.Log = buffer.LogAlloc{DiskUnit: 1}
	case ContMixed:
		cfg.Buffer.Partitions = []buffer.PartitionAlloc{{NVEMResident: true}, {DiskUnit: 0}}
		cfg.Buffer.Log = buffer.LogAlloc{NVEMResident: true}
	case ContNVEM:
		cfg.Buffer.Partitions = []buffer.PartitionAlloc{{NVEMResident: true}, {NVEMResident: true}}
		cfg.Buffer.Log = buffer.LogAlloc{NVEMResident: true}
	default:
		return core.Config{}, fmt.Errorf("experiments: unknown contention allocation %d", s.Alloc)
	}
	return cfg, nil
}

// Run builds and executes the setup.
func (s ContentionSetup) Run(o Options) (*core.Result, error) {
	cfg, err := s.Build(o)
	if err != nil {
		return nil, err
	}
	return core.Run(cfg)
}

// Fig48 reproduces Fig 4.8: page- vs. object-level locking for the three
// allocation strategies. Under page locking the disk-based and mixed
// configurations thrash on locks well below the CPU limit; the NVEM-resident
// allocation keeps lock holding times so short that page locking suffices.
func Fig48(o Options) (*stats.Figure, error) {
	fig := &stats.Figure{
		Title:  "Fig 4.8: Page- vs. object-locking for different allocation strategies",
		XLabel: "TPS",
		YLabel: "mean response time [ms]",
		X:      o.rates(),
	}
	type scheme struct {
		label string
		alloc ContentionAlloc
		gran  cc.Granularity
	}
	schemes := []scheme{
		{"disk:page-locks", ContDisk, cc.PageLevel},
		{"mixed:page-locks", ContMixed, cc.PageLevel},
		{"disk:object-locks", ContDisk, cc.ObjectLevel},
		{"mixed:object-locks", ContMixed, cc.ObjectLevel},
		{"nvem:page-locks", ContNVEM, cc.PageLevel},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	err := sweepFigure(o, fig, labels, func(si, xi int, o Options) (*core.Result, error) {
		sc, rate := schemes[si], fig.X[xi]
		res, err := ContentionSetup{Rate: rate, Alloc: sc.alloc, Granularity: sc.gran}.Run(o)
		if err != nil {
			return nil, fmt.Errorf("fig4.8 %s @%v: %w", sc.label, rate, err)
		}
		return res, nil
	}, respMean)
	if err != nil {
		return nil, err
	}
	return fig, nil
}
