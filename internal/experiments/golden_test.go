package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate golden experiment outputs")

// TestGoldenOutputs executes the complete registry in quick mode — the same
// code paths cmd/experiments and bench_test.go use — and locks each rendered
// output to a byte-exact golden file under testdata/golden/. The corpus is
// the simulator's regression contract: any change to the event kernel, the
// engine, the storage models or the render layer that alters even one byte
// of one experiment fails here. Key landmark fragments are asserted too, so
// a wholesale -update that wipes out a series is still caught.
//
// Regenerate with:
//
//	go test ./internal/experiments -run TestGoldenOutputs -update
//
// and review the diff like any other code change. The corpus uses the
// package's canonical quick options (seed 1, single replication);
// parallelism is irrelevant because rendered output is byte-identical for
// every worker count (TestDeterministicAcrossParallelism guards that).
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	wantFragments := map[string][]string{
		"fig4.1":                     {"log-single-disk", "log-nvem"},
		"fig4.2":                     {"disk", "ssd", "nvem-resident", "mm-resident"},
		"fig4.3":                     {"FORCE:disk", "NOFORCE:nvem-resident"},
		"fig4.4":                     {"mm-only", "nvem-cache-1000"},
		"fig4.5":                     {"Fig 4.5a", "Fig 4.5b", "nvem-cache"},
		"fig4.6":                     {"mm-only", "ssd", "nvem-resident"},
		"fig4.7":                     {"vol-disk-cache", "nvem-cache"},
		"fig4.8":                     {"disk:page-locks", "nvem:page-locks"},
		"table4.2a":                  {"main memory", "NVEM cache 500"},
		"table4.2b":                  {"main memory", "FORCE"},
		"table2.1":                   {"extended memory", "measured response", "break-even-crashes"},
		"ablation.group-commit":      {"group-commit"},
		"ablation.async-replacement": {"async-replacement"},
		"ablation.migration-modes":   {"nvem-add-hit-pct"},
		"ablation.destage-policy":    {"immediate", "deferred"},
		"ablation.clustering":        {"clustered", "unclustered"},
		"recovery.restart":           {"log-disk / db-disk", "log-nvem / db-ssd", "restart-ms", "redo-pages"},
		"recovery.checkpoint":        {"log-disk", "log-nvem", "restart time"},
		"recovery.availability":      {"shared-nvem", "private-nvem", "Restart breakdown", "restart-ms"},
		"cluster.scaleout":           {"shared-nvem", "disk-only", "shared-nvem:nvem"},
		"cluster.scaleout64":         {"private-nvem", "disk-only", "committed TPS"},
		"cluster.scaleout256":        {"shared-nvem", "private-nvem", "committed TPS"},
		"workload.burstiness":        {"disk", "log-nvem", "db+log-nvem", "burst-state rate multiplier"},
		"workload.spike-crash":       {"admission-off", "admission-on", "survivor-resp-ms", "shed"},
		"workload.diurnal":           {"log-single-disk", "log-nvem", "amplitude"},
		"workload.skew":              {"uniform", "zipf-0.95", "hotspot-90/0.01", "NVEM cache [pages]"},
		"workload.multiclass":        {"short-update", "read-mostly", "batch-scan", "Per-class accounting"},
		"workload.closedloop":        {"think-50ms", "think-500ms", "terminals", "waiting for an MPL slot"},
		"workload.replay":            {"poisson", "trace-replay", "p95-ms"},
		"cluster.allocation":         {"shared-nvem-cache", "private-nvem-caches", "disk-only"},
		"cluster.locking":            {"local:page-locks", "global:object-locks", "messages per committed tx"},
	}
	checkCorpusFiles(t)
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			out, err := e.Run(quick)
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", e.Name)
			}
			for _, frag := range wantFragments[e.Name] {
				if !strings.Contains(out, frag) {
					t.Errorf("%s output missing %q:\n%s", e.Name, frag, out)
				}
			}
			path := filepath.Join("testdata", "golden", e.Name+".txt")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if string(want) != out {
				t.Errorf("%s output diverged from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
					e.Name, path, out, want)
			}
		})
	}
}

// checkCorpusFiles keeps testdata/golden/ and the registry in lockstep: an
// experiment that was renamed or removed must not leave a stale golden file
// behind. Under -update the directory is created and stale files are pruned.
func checkCorpusFiles(t *testing.T) {
	t.Helper()
	dir := filepath.Join("testdata", "golden")
	known := make(map[string]bool)
	for _, e := range All() {
		known[e.Name+".txt"] = true
	}
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("golden corpus missing (run with -update to create): %v", err)
	}
	for _, ent := range entries {
		if known[ent.Name()] {
			continue
		}
		if *updateGolden {
			if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
				t.Fatal(err)
			}
			continue
		}
		t.Errorf("stale golden file %s: no experiment %q in the registry (run with -update to prune)",
			filepath.Join(dir, ent.Name()), strings.TrimSuffix(ent.Name(), ".txt"))
	}
}
