package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Workload-realism experiments (ROADMAP "Workload realism"): the paper
// drives every configuration with Poisson arrivals, which hides exactly the
// regime where NVEM allocation and fast restart matter — bursty and
// time-varying load, and load spikes coinciding with a crash. These
// experiments drive the same storage schemes through the pluggable
// arrival-process layer (workload.ArrivalSpec): MMPP burstiness
// (workload.burstiness), a crash-coincident spike with the recovery-aware
// admission controller on and off (workload.spike-crash), and a sinusoidal
// day/night cycle over a long window (workload.diurnal).

// burstFactors is the burst-coefficient sweep of workload.burstiness: the
// x value is the MMPP burst-state rate multiplier (1 = both states at the
// mean rate, i.e. Poisson-equivalent load).
func (o Options) burstFactors() []float64 {
	if o.Quick {
		return []float64{1, 4, 8}
	}
	return []float64{1, 2, 4, 6, 8}
}

// burstSpec builds the MMPP spec of the burstiness sweep: bursts cover 10%
// of the time at factor × the mean rate (500 ms mean burst sojourn), with
// the base rate derived so the long-run mean rate stays at the configured
// TPS — the sweep varies burstiness at strictly constant offered load.
func burstSpec(factor float64) workload.ArrivalSpec {
	return workload.ArrivalSpec{
		Kind:        workload.ArrivalMMPP,
		BurstFactor: factor,
		BurstFrac:   0.1,
		BurstMeanMS: 500,
	}
}

// WorkloadBurstiness sweeps the MMPP burst coefficient at a fixed 200 TPS
// mean across three memory schemes. Burstiness converts the log device's
// spare headroom into queueing: the disk-log scheme degrades steeply while
// NVEM placements flatten the curve — the paper's Poisson-only evaluation
// cannot show this separation.
func WorkloadBurstiness(o Options) (*stats.Figure, *stats.Figure, error) {
	const rate = 200
	resp := &stats.Figure{
		Title: fmt.Sprintf("Response time vs. burst coefficient (Debit-Credit %d TPS mean, MMPP 10%% burst time)",
			rate),
		XLabel: "burst-state rate multiplier",
		YLabel: "mean response time [ms]",
		X:      o.burstFactors(),
	}
	p95 := &stats.Figure{
		Title:  "Burstiness tail latency",
		XLabel: "burst-state rate multiplier",
		YLabel: "p95 response time [ms]",
		X:      o.burstFactors(),
	}
	type scheme struct {
		label string
		db    DBSpec
		log   LogSpec
	}
	schemes := []scheme{
		{"disk", DBSpec{Kind: DBRegular}, LogSpec{Kind: LogDisk}},
		{"log-nvem", DBSpec{Kind: DBRegular}, LogSpec{Kind: LogNVEM}},
		{"db+log-nvem", DBSpec{Kind: DBNVEMResident}, LogSpec{Kind: LogNVEM}},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	g := newGrid(o, len(schemes), len(resp.X))
	for si := range schemes {
		for xi := range resp.X {
			si, xi := si, xi
			g.add(si, xi, func(o Options) (*core.Result, error) {
				sc, factor := schemes[si], resp.X[xi]
				res, err := DCSetup{Rate: rate, DB: sc.db, Log: sc.log,
					Arrival: burstSpec(factor)}.Run(o)
				if err != nil {
					return nil, fmt.Errorf("workload.burstiness %s @%v: %w", sc.label, factor, err)
				}
				return res, nil
			})
		}
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, err
	}
	for si, label := range labels {
		points, cis := seriesOf(cells[si], respMean)
		if err := resp.AddSeriesCI(label, points, cis); err != nil {
			return nil, nil, err
		}
		tail, tailCI := seriesOf(cells[si], respP95)
		if err := p95.AddSeriesCI(label, tail, tailCI); err != nil {
			return nil, nil, err
		}
	}
	return resp, p95, nil
}

// Spike-crash scenario constants: node 0 of 4 crashes 3 s into the window
// and a 5× load spike lands on the whole cluster at the same instant,
// outlasting the recovery (shared-NVEM restart ≈ 4 s). The survivors see
// their own spiked load plus the crashed node's rerouted (equally spiked)
// arrivals — the regime the admission controller exists for.
const (
	spikeNodes     = 4
	spikeRate      = 400.0
	spikeCrashAtMS = 3_000.0
	spikeRebootMS  = 500.0
	spikeFactor    = 5.0
	spikeDurMS     = 5_000.0
	spikeBucketMS  = 1_000.0
	// spikeQueueFactor sheds rerouted arrivals once a survivor queues a
	// quarter of its MPL — load above that level outlives the outage as
	// backlog, so queueing it buys nothing.
	spikeQueueFactor = 0.25
)

// spikeCrashSetup assembles the shared scenario with the admission
// controller on or off.
func spikeCrashSetup(admission bool) ClusterSetup {
	return ClusterSetup{
		Nodes: spikeNodes, AggregateRate: spikeRate,
		SharedNVEM: 2000, GlobalLocks: true,
		CheckpointMS: 2_600,
		CrashAtMS:    spikeCrashAtMS, CrashNode: 0, RebootMS: spikeRebootMS,
		TimelineBucketMS: spikeBucketMS,
		Arrival: workload.ArrivalSpec{
			Kind:        workload.ArrivalSpike,
			SpikeFactor: spikeFactor,
			SpikeAtMS:   spikeCrashAtMS,
			SpikeDurMS:  spikeDurMS,
		},
		Admission: core.AdmissionConfig{Enabled: admission, QueueFactor: spikeQueueFactor},
	}
}

// Spike-crash metrics.

func survivorRespMean(r *core.Result) float64 { return r.SurvivorRespMean }
func shedCount(r *core.Result) float64        { return float64(r.Shed) }
func droppedCount(r *core.Result) float64     { return float64(r.Dropped) }
func commitCount(r *core.Result) float64      { return float64(r.Commits) }

// WorkloadSpikeCrash crashes node 0 of a 4-node cluster under a coincident
// cluster-wide load spike and compares the recovery-aware admission
// controller against plain queueing. Without admission the survivors queue
// the crashed node's rerouted spike on top of their own and the backlog
// outlives the recovery; with admission the overflow is shed at the
// survivor-capacity threshold and the survivors stay responsive.
func WorkloadSpikeCrash(o Options) (*stats.Figure, *stats.Table, error) {
	_, measure := o.windows()
	buckets := int(measure / spikeBucketMS)
	x := make([]float64, buckets)
	for i := range x {
		x[i] = float64(i)
	}
	fig := &stats.Figure{
		Title: fmt.Sprintf("Crash-coincident %.0f× spike: node 0 of %d crashes at +%.0f s (Debit-Credit %.0f TPS mean)",
			spikeFactor, spikeNodes, spikeCrashAtMS/1000, spikeRate),
		XLabel: "window second",
		YLabel: "commits per second",
		X:      x,
	}
	schemes := []struct {
		label     string
		admission bool
	}{
		{"admission-off", false},
		{"admission-on", true},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	tbl := stats.NewTable("Admission control during the spike-crash window", "scheme", labels,
		[]string{"survivor-resp-ms", "resp-ms", "shed", "dropped", "commits", "restart-ms"})

	g := newGrid(o, len(schemes), 1)
	for si, sc := range schemes {
		g.add(si, 0, func(o Options) (*core.Result, error) {
			res, err := spikeCrashSetup(sc.admission).Run(o)
			if err != nil {
				return nil, fmt.Errorf("workload.spike-crash %s: %w", sc.label, err)
			}
			return res, nil
		})
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, err
	}
	metrics := []func(*core.Result) float64{
		survivorRespMean, respMean, shedCount, droppedCount, commitCount, restartMS,
	}
	for si, label := range labels {
		for _, sr := range []struct {
			suffix   string
			timeline func(*core.Result) []int64
		}{
			{"cluster", func(r *core.Result) []int64 { return r.Timeline }},
			{"node0", func(r *core.Result) []int64 { return r.CrashedTimeline }},
		} {
			points := make([]float64, buckets)
			cis := make([]float64, buckets)
			for b := range points {
				points[b], cis[b] = cells[si][0].meanCI(bucketMetric(sr.timeline, b))
			}
			if len(cells[si][0].results) <= 1 {
				cis = nil
			}
			if err := fig.AddSeriesCI(label+":"+sr.suffix, points, cis); err != nil {
				return nil, nil, err
			}
		}
		for c, metric := range metrics {
			mean, ci := cells[si][0].meanCI(metric)
			if o.reps() > 1 {
				tbl.SetCI(si, c, mean, ci)
			} else {
				tbl.Set(si, c, mean)
			}
		}
	}
	return fig, tbl, nil
}

// diurnalAmplitudes is the modulation-depth sweep of workload.diurnal.
func (o Options) diurnalAmplitudes() []float64 {
	if o.Quick {
		return []float64{0, 0.45, 0.9}
	}
	return []float64{0, 0.3, 0.6, 0.9}
}

// WorkloadDiurnal sweeps the sinusoidal modulation depth at 150 TPS mean
// over a doubled measurement window holding two full day/night cycles
// (period = half the window). The mean rate is amplitude-invariant, so the
// sweep isolates pure time-variance — and it reprises Fig 4.1's log-device
// argument under realistic load: a single log disk sized for the mean
// (~200 update tx/s capacity) is fine at amplitude 0 but the daily peak
// pushes it past saturation, paying super-linear queueing the off-peak
// trough cannot buy back, while the NVEM-resident log stays flat at every
// amplitude.
func WorkloadDiurnal(o Options) (*stats.Figure, *stats.Figure, error) {
	const (
		rate         = 150
		measureScale = 2
	)
	_, measure := o.windows()
	periodMS := measure * measureScale / 2
	resp := &stats.Figure{
		Title: fmt.Sprintf("Diurnal modulation depth vs. log allocation (Debit-Credit %d TPS mean, %.0f s period, two cycles)",
			rate, periodMS/1000),
		XLabel: "amplitude",
		YLabel: "mean response time [ms]",
		X:      o.diurnalAmplitudes(),
	}
	p95 := &stats.Figure{
		Title:  "Diurnal tail latency",
		XLabel: "amplitude",
		YLabel: "p95 response time [ms]",
		X:      o.diurnalAmplitudes(),
	}
	type scheme struct {
		label string
		log   LogSpec
	}
	schemes := []scheme{
		{"log-single-disk", LogSpec{Kind: LogDisk, Disks: 1}},
		{"log-disks", LogSpec{Kind: LogDisk}},
		{"log-nvem", LogSpec{Kind: LogNVEM}},
	}
	labels := make([]string, len(schemes))
	for i, sc := range schemes {
		labels[i] = sc.label
	}
	g := newGrid(o, len(schemes), len(resp.X))
	for si := range schemes {
		for xi := range resp.X {
			si, xi := si, xi
			g.add(si, xi, func(o Options) (*core.Result, error) {
				sc, amp := schemes[si], resp.X[xi]
				res, err := DCSetup{Rate: rate, DB: DBSpec{Kind: DBRegular}, Log: sc.log,
					MeasureScale: measureScale,
					Arrival: workload.ArrivalSpec{
						Kind:      workload.ArrivalDiurnal,
						Amplitude: amp,
						PeriodMS:  periodMS,
					}}.Run(o)
				if err != nil {
					return nil, fmt.Errorf("workload.diurnal %s @%v: %w", sc.label, amp, err)
				}
				return res, nil
			})
		}
	}
	cells, err := g.run()
	if err != nil {
		return nil, nil, err
	}
	for si, label := range labels {
		points, cis := seriesOf(cells[si], respMean)
		if err := resp.AddSeriesCI(label, points, cis); err != nil {
			return nil, nil, err
		}
		tail, tailCI := seriesOf(cells[si], respP95)
		if err := p95.AddSeriesCI(label, tail, tailCI); err != nil {
			return nil, nil, err
		}
	}
	return resp, p95, nil
}
