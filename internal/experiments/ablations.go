package experiments

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

// AblationGroupCommit quantifies the claim of section 4.2: group commit
// permits much higher transaction rates on a single log disk because the
// log data of multiple transactions is written in one I/O — and the same
// rates are reachable without group commit by moving the log to NVEM, which
// is why NV memory "reduces the need for optimizations like group commit".
func AblationGroupCommit(o Options) (*stats.Figure, error) {
	fig := &stats.Figure{
		Title:  "Ablation A1: group commit vs. NV memory on a single log disk (Debit-Credit, NOFORCE)",
		XLabel: "TPS",
		YLabel: "mean response time [ms]",
		X:      o.rates(),
	}
	variants := []struct {
		label string
		mut   func(*core.Config)
	}{
		{"single-log-disk", func(*core.Config) {}},
		{"single-log-disk+group-commit", func(c *core.Config) {
			c.Buffer.GroupCommit = true
			c.Buffer.GroupCommitWaitMS = 5
		}},
		{"log-nvem-no-group-commit", nil}, // built from the NVEM log scheme
	}
	labels := make([]string, len(variants))
	for i, v := range variants {
		labels[i] = v.label
	}
	err := sweepFigure(o, fig, labels, func(si, xi int, o Options) (*core.Result, error) {
		v, rate := variants[si], fig.X[xi]
		setup := DCSetup{Rate: rate, DB: DBSpec{Kind: DBRegular},
			Log: LogSpec{Kind: LogDisk, Disks: 1}}
		if v.mut == nil {
			setup.Log = LogSpec{Kind: LogNVEM}
		}
		cfg, err := setup.Build(o)
		if err != nil {
			return nil, err
		}
		if v.mut != nil {
			v.mut(&cfg)
		}
		res, err := core.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation group-commit %s @%v: %w", v.label, rate, err)
		}
		return res, nil
	}, respMean)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// AblationAsyncReplacement quantifies footnote 3 / section 4.3: writing
// dirty victims asynchronously in software leaves only the read and the log
// write synchronous, considerably reducing the gap to the write-buffer
// configurations — at the cost of a more sophisticated buffer manager.
func AblationAsyncReplacement(o Options) (*stats.Figure, error) {
	fig := &stats.Figure{
		Title:  "Ablation A2: asynchronous buffer replacement (software) vs. write buffer (NV memory)",
		XLabel: "TPS",
		YLabel: "mean response time [ms]",
		X:      o.rates(),
	}
	variants := []struct {
		label string
		db    DBSpec
		log   LogSpec
		async bool
	}{
		{"disk-sync-replacement", DBSpec{Kind: DBRegular}, LogSpec{Kind: LogDisk}, false},
		{"disk-async-replacement", DBSpec{Kind: DBRegular}, LogSpec{Kind: LogDisk}, true},
		{"disk-cache-write-buffer", DBSpec{Kind: DBDiskCacheWB, Size: 500}, LogSpec{Kind: LogDiskWB, Size: 500}, false},
	}
	labels := make([]string, len(variants))
	for i, v := range variants {
		labels[i] = v.label
	}
	err := sweepFigure(o, fig, labels, func(si, xi int, o Options) (*core.Result, error) {
		v, rate := variants[si], fig.X[xi]
		cfg, err := DCSetup{Rate: rate, DB: v.db, Log: v.log}.Build(o)
		if err != nil {
			return nil, err
		}
		cfg.Buffer.AsyncReplacement = v.async
		res, err := core.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation async-replacement %s @%v: %w", v.label, rate, err)
		}
		return res, nil
	}, respMean)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// AblationMigrationModes compares the NVEM-cache migration modes on the
// trace workload; the paper found migrating all pages gives the best NVEM
// hit ratios (section 4.6).
func AblationMigrationModes(o Options) (*stats.Figure, error) {
	fig := &stats.Figure{
		Title:  "Ablation A3: NVEM cache migration modes (trace workload, MM=1000, NVEM=2000)",
		XLabel: "mode(0=all 1=modified 2=unmodified)",
		YLabel: "additional NVEM hit ratio [%] / response [ms]",
		X:      []float64{0, 1, 2},
	}
	modes := []buffer.MigrateMode{buffer.MigrateAll, buffer.MigrateModified, buffer.MigrateUnmodified}
	g := newGrid(o, 1, len(modes))
	for xi, mode := range modes {
		g.add(0, xi, func(o Options) (*core.Result, error) {
			cfg, err := TraceSetup{MMBuffer: 1000,
				DB: DBSpec{Kind: DBNVEMCache, Size: 2000}, Log: LogSpec{Kind: LogNVEM}}.Build(o)
			if err != nil {
				return nil, err
			}
			for i := range cfg.Buffer.Partitions {
				cfg.Buffer.Partitions[i].NVEMCacheMode = mode
			}
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("ablation migration mode %v: %w", mode, err)
			}
			return res, nil
		})
	}
	cells, err := g.run()
	if err != nil {
		return nil, err
	}
	hits, hitCI := seriesOf(cells[0], nvemAddHitPct)
	resp, respCI := seriesOf(cells[0], respMean)
	if err := fig.AddSeriesCI("nvem-add-hit-pct", hits, hitCI); err != nil {
		return nil, err
	}
	if err := fig.AddSeriesCI("resp-ms", resp, respCI); err != nil {
		return nil, err
	}
	return fig, nil
}

// Metric extractors local to the clustering ablation.

func fixesPerTx(r *core.Result) float64 {
	if r.Commits == 0 {
		return 0
	}
	return float64(r.Buffer.Fixes) / float64(r.Commits)
}

func lockConflicts(r *core.Result) float64 { return float64(r.Locks.Conflicts) }

// AblationClustering quantifies the BRANCH/TELLER clustering option of
// section 3.1: storing TELLER records in their BRANCH record's page reduces
// the page accesses per transaction from four to three, improves hit ratios
// and (under page-level CC) reduces data contention.
func AblationClustering(o Options) (string, error) {
	out := "Ablation A5: BRANCH/TELLER clustering (Debit-Credit, 500 TPS, disk-based)\n"
	variants := []bool{true, false}
	g := newGrid(o, len(variants), 1)
	for vi, clustered := range variants {
		g.add(vi, 0, func(o Options) (*core.Result, error) {
			dcc := workload.DefaultDebitCreditConfig(500)
			dcc.ClusterBranchTeller = clustered
			gen, err := workload.NewDebitCredit(dcc)
			if err != nil {
				return nil, err
			}
			cfg := core.Defaults()
			cfg.Seed = o.seed()
			cfg.WarmupMS, cfg.MeasureMS = o.windows()
			cfg.Partitions = gen.Partitions()
			cfg.Generator = gen
			cfg.CCModes = make([]cc.Granularity, len(cfg.Partitions))
			for i := range cfg.CCModes {
				cfg.CCModes[i] = cc.PageLevel
			}
			cfg.CCModes[gen.HistoryPartition()] = cc.NoCC
			cfg.DiskUnits = []storage.DiskUnitConfig{
				{Name: "db", Type: storage.Regular, NumControllers: 12,
					ContrDelay: core.DefaultContrDelay, TransDelay: core.DefaultTransDelay,
					NumDisks: 96, DiskDelay: core.DefaultDBDiskDelay},
				{Name: "log", Type: storage.Regular, NumControllers: 2,
					ContrDelay: core.DefaultContrDelay, TransDelay: core.DefaultTransDelay,
					NumDisks: 8, DiskDelay: core.DefaultLogDiskDelay},
			}
			cfg.Buffer = buffer.Config{BufferSize: 2000, Logging: true,
				Log: buffer.LogAlloc{DiskUnit: 1}}
			for range cfg.Partitions {
				cfg.Buffer.Partitions = append(cfg.Buffer.Partitions, buffer.PartitionAlloc{DiskUnit: 0})
			}
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("ablation clustering=%v: %w", clustered, err)
			}
			return res, nil
		})
	}
	cells, err := g.run()
	if err != nil {
		return "", err
	}
	for vi, clustered := range variants {
		label := "clustered"
		if !clustered {
			label = "unclustered"
		}
		c := cells[vi][0]
		out += fmt.Sprintf("  %-11s resp=%s ms  fixes/tx=%s  mmHit=%s%%  lock conflicts=%s\n",
			label, c.fmtMeanCI("%6.2f", respMean), c.fmtMeanCI("%.2f", fixesPerTx),
			c.fmtMeanCI("%.1f", mmHitPct), c.fmtMeanCI("%.0f", lockConflicts))
	}
	out += "Clustering reduces the distinct pages per transaction from four to\n"
	out += "three: the TELLER access always finds its BRANCH page buffered, which\n"
	out += "raises the hit ratio and (with page-level CC) lowers data contention.\n"
	return out, nil
}

// AblationDestagePolicy compares immediate vs. deferred NVEM→disk
// propagation under FORCE, where pages are re-forced frequently and deferred
// destage saves disk writes (the section 3.2 discussion).
func AblationDestagePolicy(o Options) (string, error) {
	out := "Ablation A4: NVEM destage policy under FORCE (Debit-Credit, 500 TPS, NVEM cache 1000)\n"
	variants := []bool{false, true}
	g := newGrid(o, len(variants), 1)
	for vi, deferred := range variants {
		g.add(vi, 0, func(o Options) (*core.Result, error) {
			cfg, err := DCSetup{Rate: 500, Force: true, MMBuffer: 2000,
				DB: DBSpec{Kind: DBNVEMCache, Size: 1000}, Log: LogSpec{Kind: LogNVEM}}.Build(o)
			if err != nil {
				return nil, err
			}
			cfg.Buffer.NVEMDeferredDestage = deferred
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("ablation destage deferred=%v: %w", deferred, err)
			}
			return res, nil
		})
	}
	cells, err := g.run()
	if err != nil {
		return "", err
	}
	for vi, deferred := range variants {
		policy := "immediate"
		if deferred {
			policy = "deferred"
		}
		c := cells[vi][0]
		out += fmt.Sprintf("  %-9s resp=%s ms  async disk writes=%s  evict destages=%s  disk writes=%s\n",
			policy, c.fmtMeanCI("%6.2f", respMean),
			c.fmtMeanCI("%6.0f", func(r *core.Result) float64 { return float64(r.Buffer.AsyncDiskWrites) }),
			c.fmtMeanCI("%5.0f", func(r *core.Result) float64 { return float64(r.Buffer.NVEMEvictWrites) }),
			c.fmtMeanCI("%6.0f", func(r *core.Result) float64 { return float64(r.Units[0].Stats.Writes) }))
	}
	out += "Deferred destage trades disk-write traffic for an extra NVEM transfer\n"
	out += "per eviction; it pays off when forced pages are modified repeatedly.\n"
	return out, nil
}
