package experiments

import (
	"testing"
)

// scaleout256Point is the cluster.scaleout256 shared-NVEM point at 256
// nodes, window-scaled further down so running it at four worker counts
// stays affordable in CI.
func scaleout256Point(workers int) ClusterSetup {
	return ClusterSetup{Nodes: 256, AggregateRate: 50 * 256,
		MMBuffer: 500, SharedNVEM: 2000,
		GlobalLocks: true, PDES: true, PDESWorkers: workers,
		NVEMAccessDelayMS: 0.15, WindowScale: 0.05,
		DBControllers: 2, DBDisks: 12, LogControllers: 1, LogDisks: 2}
}

// TestScaleout256WorkerInvariance pins the cluster.scaleout256 golden's
// independence from PDESWorkers: the experiment bakes Workers = 4 into
// its setup, and this test proves any other supported worker count would
// have rendered the identical result — the golden is a property of the
// model, not of the host's parallelism.
func TestScaleout256WorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node sweep")
	}
	run := func(workers int) string {
		t.Helper()
		res, err := scaleout256Point(workers).Run(quick)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report()
	}
	base := run(1)
	if base == "" {
		t.Fatal("empty report")
	}
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); got != base {
			t.Fatalf("PDESWorkers=%d diverged from the serial run:\n%s\nvs\n%s",
				workers, got, base)
		}
	}
}
