package experiments

import (
	"strings"
	"testing"
)

// TestRecoveryRestartOrdering reads the rendered restart table and pins
// the paper's device ordering end to end: NVEM log restarts faster than
// SSD log, which restarts faster than disk log, and putting the database
// on SSD collapses redo.
func TestRecoveryRestartOrdering(t *testing.T) {
	tbl, err := RecoveryRestart(quick)
	if err != nil {
		t.Fatal(err)
	}
	row := func(label string) []float64 {
		for i, lbl := range tbl.RowLbls {
			if lbl == label {
				return tbl.Cells[i]
			}
		}
		t.Fatalf("row %q missing from %v", label, tbl.RowLbls)
		return nil
	}
	const restartCol = 0
	disk := row("log-disk / db-disk")[restartCol]
	ssd := row("log-ssd / db-disk")[restartCol]
	nvem := row("log-nvem / db-disk")[restartCol]
	dbSSD := row("log-nvem / db-ssd")[restartCol]
	if !(nvem < ssd && ssd < disk) {
		t.Fatalf("restart ordering violated: nvem=%.1f ssd=%.1f disk=%.1f", nvem, ssd, disk)
	}
	if dbSSD >= nvem {
		t.Fatalf("db-ssd restart %.1f not below db-disk %.1f", dbSSD, nvem)
	}
}

// TestRecoveryCheckpointMonotone: longer checkpoint intervals mean
// longer redo logs and strictly longer restarts.
func TestRecoveryCheckpointMonotone(t *testing.T) {
	_, restart, err := RecoveryCheckpoint(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range restart.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i] <= s.Points[i-1] {
				t.Fatalf("series %s restart not increasing with interval: %v", s.Label, s.Points)
			}
		}
	}
}

// TestRecoveryAvailabilityShapes: the crashed node's timeline shows a
// zero outage gap while the cluster-wide timeline never goes dark
// (survivors absorb the rerouted arrivals), and the rendered output
// carries the restart table.
func TestRecoveryAvailabilityShapes(t *testing.T) {
	fig, tbl, err := RecoveryAvailability(quick)
	if err != nil {
		t.Fatal(err)
	}
	series := func(label string) []float64 {
		for _, s := range fig.Series {
			if s.Label == label {
				return s.Points
			}
		}
		t.Fatalf("series %q missing", label)
		return nil
	}
	for _, scheme := range []string{"shared-nvem", "private-nvem", "disk-only"} {
		node0 := series(scheme + ":node0")
		cluster := series(scheme + ":cluster")
		gap := 0
		for i := range node0 {
			if node0[i] == 0 {
				gap++
			}
			if cluster[i] == 0 {
				t.Fatalf("%s: cluster went dark in bucket %d: %v", scheme, i, cluster)
			}
		}
		if gap == 0 {
			t.Fatalf("%s: node0 timeline shows no outage: %v", scheme, node0)
		}
		if node0[0] == 0 || node0[len(node0)-1] == 0 {
			t.Fatalf("%s: node0 never ran before the crash or after rejoining: %v", scheme, node0)
		}
	}
	if !strings.Contains(tbl.Render(), "restart-ms") {
		t.Fatalf("restart table misses restart-ms:\n%s", tbl.Render())
	}
}
