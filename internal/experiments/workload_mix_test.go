package experiments

import (
	"strings"
	"testing"
)

// TestSkewKneeVisible pins workload.skew's headline claim: growing the NVEM
// second-level cache past the hot set buys the hot-spot workload a large
// response-time drop, while the same growth buys the uniform workload (whose
// account working set is ~5M pages) far less. The knee is the experiment's
// reason to exist — if a code change flattens it, the experiment is lying.
func TestSkewKneeVisible(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	resp, hits, err := WorkloadSkew(quick)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := func(label string) []float64 {
		t.Helper()
		for _, s := range resp.Series {
			if s.Label == label {
				return s.Points
			}
		}
		t.Fatalf("series %q missing", label)
		return nil
	}
	uniform, hotspot := byLabel("uniform"), byLabel("hotspot-90/0.01")
	last := len(resp.X) - 1
	hotGain := hotspot[0] / hotspot[last]
	uniGain := uniform[0] / uniform[last]
	if hotGain < 2 {
		t.Errorf("hot-spot response only improved %.2fx across the NVEM sweep (%.2f -> %.2f ms); no knee",
			hotGain, hotspot[0], hotspot[last])
	}
	if hotGain < 1.5*uniGain {
		t.Errorf("hot-spot gain %.2fx not clearly above uniform gain %.2fx: skew not rewarded",
			hotGain, uniGain)
	}
	// At every cache size the skewed workload must respond faster than the
	// uniform one — its misses are the same, its hits more frequent.
	for i := range resp.X {
		if hotspot[i] >= uniform[i] {
			t.Errorf("at NVEM=%v: hotspot %.2f ms >= uniform %.2f ms", resp.X[i], hotspot[i], uniform[i])
		}
	}
	for _, s := range hits.Series {
		if s.Label != "hotspot-90/0.01" {
			continue
		}
		if s.Points[last] <= s.Points[0] {
			t.Errorf("hot-spot NVEM hit ratio did not grow with cache size: %v", s.Points)
		}
	}
}

// TestMulticlassScanInterference pins the mixed-workload story: raising only
// the batch-scan rate slows the short updates on the shared CPU, and every
// class appears in the per-class accounting.
func TestMulticlassScanInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	fig, tbl, err := WorkloadMulticlass(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if s.Label != "short-update" {
			continue
		}
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last < 1.5*first {
			t.Errorf("short-update response %.2f -> %.2f ms across the scan sweep; scans cost them nothing",
				first, last)
		}
	}
	out := tbl.Render()
	for _, frag := range []string{"short-update", "read-mostly", "batch-scan", "commits"} {
		if !strings.Contains(out, frag) {
			t.Errorf("per-class table missing %q:\n%s", frag, out)
		}
	}
}

// TestClosedLoopKnee pins workload.closedloop's two regimes: with a short
// think time the largest terminal count sits past the capacity knee (sharply
// higher response, majority of terminals waiting for an MPL slot), while the
// long think time stays subcritical with near-linear throughput in N.
func TestClosedLoopKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	resp, tput, wait, err := WorkloadClosedLoop(quick)
	if err != nil {
		t.Fatal(err)
	}
	last := len(resp.X) - 1
	for _, s := range resp.Series {
		switch s.Label {
		case "think-50ms":
			if s.Points[last] < 3*s.Points[0] {
				t.Errorf("think-50ms response %.2f -> %.2f ms: no knee at N=%v",
					s.Points[0], s.Points[last], resp.X[last])
			}
		case "think-500ms":
			if s.Points[last] > 3*s.Points[0] {
				t.Errorf("think-500ms response %.2f -> %.2f ms: long-think series saturated",
					s.Points[0], s.Points[last])
			}
		}
	}
	for _, s := range tput.Series {
		if s.Label != "think-500ms" {
			continue
		}
		// Subcritical closed loop: throughput ~ N/(Z+R); N grows 16x, so
		// committed TPS must grow nearly as much (allowing queueing losses).
		if s.Points[last] < 8*s.Points[0] {
			t.Errorf("think-500ms throughput %.1f -> %.1f TPS over a 16x terminal growth",
				s.Points[0], s.Points[last])
		}
	}
	if len(wait.Cells) == 0 || wait.Cells[0][len(wait.Cells[0])-1] < 0.5 {
		t.Errorf("think-50ms terminal-wait fraction at the largest N = %v, want >= 0.5 (saturation rule input)",
			wait.Cells[0])
	}
}

// TestReplayTailAbovePoisson pins workload.replay's point: replaying the
// recorded (bursty) rate timeline at the same mean rate must not shrink the
// tail relative to Poisson — the busy buckets cross capacity and queue.
func TestReplayTailAbovePoisson(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	tbl, err := WorkloadReplay(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: 0 = poisson, 1 = trace-replay; col 1 = p95-ms.
	poisson, replay := tbl.Cells[0][1], tbl.Cells[1][1]
	if replay <= poisson {
		t.Errorf("trace-replay p95 %.1f ms <= poisson %.1f ms: recorded burstiness vanished",
			replay, poisson)
	}
}
