// Package experiments builds and runs the storage configurations of the
// paper's evaluation (section 4) and renders each figure and table as a
// text series. Every experiment id from DESIGN.md's per-experiment index
// (fig4.1 ... fig4.8, table4.2a/b, table2.1) has a runner here, shared by
// cmd/experiments and the benchmark harness in bench_test.go.
package experiments

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Options tunes run length and sweep density. The zero value means full
// paper-scale runs; Quick shrinks windows and sweep points for benchmarks
// and smoke tests.
type Options struct {
	Seed  int64
	Quick bool

	// Replications is the number of independent runs per simulation point.
	// Replication r runs with seed rng.Derive(Seed, r), and figures and
	// tables report the replication mean ± its 95% confidence interval.
	// 0 or 1 means a single run with unchanged output.
	Replications int

	// Parallelism caps the number of simulation runs executing concurrently
	// inside one experiment. 0 means GOMAXPROCS. Rendered output is
	// byte-identical for every value, including 1.
	Parallelism int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// warm/measure windows (simulated milliseconds).
func (o Options) windows() (warm, measure float64) {
	if o.Quick {
		return 6_000, 10_000
	}
	return 12_000, 25_000
}

// rates returns the arrival-rate sweep (TPS) of the Debit-Credit figures.
func (o Options) rates() []float64 {
	if o.Quick {
		return []float64{50, 200, 500}
	}
	return []float64{10, 100, 200, 300, 500, 700}
}

// DBKind enumerates the database allocation schemes of sections 4.2-4.5.
type DBKind int

// Database allocation schemes.
const (
	DBRegular      DBKind = iota // partitions on regular disks
	DBDiskCacheWB                // disks, non-volatile controller cache as pure write buffer
	DBVolCache                   // disks with a volatile controller cache (LRU)
	DBNVCache                    // disks with a non-volatile controller cache (LRU)
	DBSSD                        // partitions on solid-state disks
	DBNVEMResident               // partitions resident in NVEM
	DBMMResident                 // partitions resident in main memory
	DBNVEMWB                     // disks + NVEM write buffer
	DBNVEMCache                  // disks + NVEM second-level database cache
)

// DBSpec is a database allocation with its cache/buffer size where relevant.
type DBSpec struct {
	Kind DBKind
	Size int // frames: disk cache, NVEM cache, or NVEM write buffer size
}

// LogKind enumerates the log allocation schemes of section 4.2.
type LogKind int

// Log allocation schemes.
const (
	LogDisk   LogKind = iota // log disks without write buffer
	LogDiskWB                // log disk(s) with a non-volatile cache write buffer
	LogSSD                   // log on solid-state disk
	LogNVEM                  // log resident in NVEM
	LogNVEMWB                // log disk(s) behind the NVEM write buffer
)

// LogSpec is a log allocation with its disk count and write-buffer size.
type LogSpec struct {
	Kind  LogKind
	Disks int // log disk servers (1 reproduces the Fig 4.1 bottleneck)
	Size  int // write-buffer frames for LogDiskWB
}

// DCSetup fully describes one Debit-Credit simulation point.
type DCSetup struct {
	Rate     float64
	Force    bool
	MMBuffer int
	DB       DBSpec
	Log      LogSpec
	// Arrival selects the arrival process driving the load (the zero
	// value is the paper's Poisson process).
	Arrival workload.ArrivalSpec
	// Skew is the within-branch account access distribution (the zero
	// value is the benchmark's uniform draw).
	Skew workload.AccessSpec
	// MeasureScale scales the measurement window by the given factor
	// (the diurnal experiment needs several modulation periods inside the
	// window); 0 keeps the standard o.windows() length.
	MeasureScale float64
}

// Build assembles the engine configuration for the setup.
func (s DCSetup) Build(o Options) (core.Config, error) {
	dcCfg := workload.DefaultDebitCreditConfig(s.Rate)
	dcCfg.AccountSkew = s.Skew
	gen, err := workload.NewDebitCredit(dcCfg)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Defaults()
	cfg.Seed = o.seed()
	cfg.WarmupMS, cfg.MeasureMS = o.windows()
	if s.MeasureScale > 0 {
		cfg.MeasureMS *= s.MeasureScale
	}
	cfg.Arrival = s.Arrival
	cfg.Partitions = gen.Partitions()
	cfg.Generator = gen
	cfg.CCModes = []cc.Granularity{cc.PageLevel, cc.PageLevel, cc.NoCC}

	if s.MMBuffer == 0 {
		s.MMBuffer = 2000 // Table 4.1 default
	}
	if s.Log.Disks == 0 {
		s.Log.Disks = 8 // "sufficient to avoid bottlenecks"
	}

	dbUnit := storage.DiskUnitConfig{
		Name: "db", Type: storage.Regular,
		NumControllers: 12, ContrDelay: core.DefaultContrDelay,
		TransDelay: core.DefaultTransDelay,
		NumDisks:   96, DiskDelay: core.DefaultDBDiskDelay,
	}
	part := buffer.PartitionAlloc{DiskUnit: 0}
	bufCfg := buffer.Config{
		BufferSize: s.MMBuffer,
		Force:      s.Force,
		Logging:    true,
	}

	switch s.DB.Kind {
	case DBRegular:
	case DBDiskCacheWB:
		dbUnit.Type = storage.NVCache
		dbUnit.CacheSize = orDefault(s.DB.Size, 500)
		dbUnit.WriteBufferOnly = true
	case DBVolCache:
		dbUnit.Type = storage.VolatileCache
		dbUnit.CacheSize = orDefault(s.DB.Size, 1000)
	case DBNVCache:
		dbUnit.Type = storage.NVCache
		dbUnit.CacheSize = orDefault(s.DB.Size, 1000)
	case DBSSD:
		dbUnit.Type = storage.SSD
		dbUnit.NumDisks = 0
		dbUnit.DiskDelay = 0
	case DBNVEMResident:
		part = buffer.PartitionAlloc{NVEMResident: true}
	case DBMMResident:
		part = buffer.PartitionAlloc{MMResident: true}
	case DBNVEMWB:
		part.NVEMWriteBuffer = true
		bufCfg.NVEMWriteBufferSize = orDefault(s.DB.Size, 1000)
	case DBNVEMCache:
		part.NVEMCache = true
		part.NVEMCacheMode = buffer.MigrateAll
		bufCfg.NVEMCacheSize = orDefault(s.DB.Size, 1000)
	default:
		return core.Config{}, fmt.Errorf("experiments: unknown DB kind %d", s.DB.Kind)
	}
	bufCfg.Partitions = []buffer.PartitionAlloc{part, part, part}

	logUnit := storage.DiskUnitConfig{
		Name: "log", Type: storage.Regular,
		NumControllers: 2, ContrDelay: core.DefaultContrDelay,
		TransDelay: core.DefaultTransDelay,
		NumDisks:   s.Log.Disks, DiskDelay: core.DefaultLogDiskDelay,
	}
	switch s.Log.Kind {
	case LogDisk:
	case LogDiskWB:
		logUnit.Type = storage.NVCache
		logUnit.CacheSize = orDefault(s.Log.Size, 500)
		logUnit.WriteBufferOnly = true
	case LogSSD:
		logUnit.Type = storage.SSD
		logUnit.NumDisks = 0
		logUnit.DiskDelay = 0
	case LogNVEM:
		bufCfg.Log = buffer.LogAlloc{NVEMResident: true}
	case LogNVEMWB:
		bufCfg.Log = buffer.LogAlloc{DiskUnit: 1, NVEMWriteBuffer: true}
		if bufCfg.NVEMWriteBufferSize == 0 {
			bufCfg.NVEMWriteBufferSize = 1000
		}
	default:
		return core.Config{}, fmt.Errorf("experiments: unknown log kind %d", s.Log.Kind)
	}
	if s.Log.Kind != LogNVEM && s.Log.Kind != LogNVEMWB {
		bufCfg.Log = buffer.LogAlloc{DiskUnit: 1}
	}

	cfg.DiskUnits = []storage.DiskUnitConfig{dbUnit, logUnit}
	cfg.Buffer = bufCfg
	return cfg, nil
}

// Run builds and executes the setup.
func (s DCSetup) Run(o Options) (*core.Result, error) {
	cfg, err := s.Build(o)
	if err != nil {
		return nil, err
	}
	return core.Run(cfg)
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}
