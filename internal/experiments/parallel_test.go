package experiments

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// wideParallelism oversubscribes the pool relative to the host so the
// concurrent path is exercised even on single-core CI runners.
func wideParallelism() int {
	p := 2 * runtime.GOMAXPROCS(0)
	if p < 4 {
		p = 4
	}
	return p
}

func TestRunPoolRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		counts := make([]int, n)
		runPool(workers, n, func(i int) { counts[i]++ })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunPoolZeroJobs(t *testing.T) {
	runPool(8, 0, func(i int) { t.Fatalf("job %d must not run", i) })
}

// TestGridSeedDerivation: replication r of every cell must run with
// rng.Derive(base, r), independent of worker count.
func TestGridSeedDerivation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		o := Options{Seed: 11, Quick: true, Replications: 3, Parallelism: workers}
		var mu sync.Mutex
		seen := map[int64]int{}
		g := newGrid(o, 2, 2)
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				g.add(r, c, func(o Options) (*core.Result, error) {
					mu.Lock()
					seen[o.Seed]++
					mu.Unlock()
					return &core.Result{Commits: o.Seed}, nil
				})
			}
		}
		cells, err := g.run()
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			want := rng.Derive(11, r)
			if seen[want] != 4 {
				t.Errorf("workers=%d: seed %d used %d times, want once per cell (4)",
					workers, want, seen[want])
			}
		}
		// Replication order inside each cell is preserved.
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				for rep, res := range cells[r][c].results {
					if got, want := res.Commits, rng.Derive(11, rep); got != want {
						t.Errorf("cell(%d,%d) rep %d ran with seed %d, want %d", r, c, rep, got, want)
					}
				}
			}
		}
	}
}

// TestGridFirstErrorDeterministic: the reported error is the lowest-indexed
// failure regardless of scheduling.
func TestGridFirstErrorDeterministic(t *testing.T) {
	o := Options{Quick: true, Parallelism: 8}
	g := newGrid(o, 1, 3)
	for c := 0; c < 3; c++ {
		g.add(0, c, func(Options) (*core.Result, error) {
			if c >= 1 {
				return nil, errors.New("boom-" + string(rune('0'+c)))
			}
			return &core.Result{}, nil
		})
	}
	_, err := g.run()
	if err == nil || err.Error() != "boom-1" {
		t.Fatalf("got error %v, want boom-1", err)
	}
}

// TestDeterministicAcrossParallelism is the determinism regression gate:
// every experiment in the registry renders byte-identical output between a
// serial run and an oversubscribed parallel run at the same seed (which also
// covers run-to-run determinism, since the two runs share nothing).
func TestDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	serial := Options{Quick: true, Seed: 7, Parallelism: 1}
	parallel := Options{Quick: true, Seed: 7, Parallelism: wideParallelism()}
	for _, e := range All() {
		t.Run(e.Name, func(t *testing.T) {
			a, err := e.Run(serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := e.Run(parallel)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("output differs between Parallelism 1 and %d:\n--- serial ---\n%s\n--- parallel ---\n%s",
					parallel.Parallelism, a, b)
			}
		})
	}
}

// TestDeterministicReplicated: replicated runs (mean ± CI output) are also
// byte-identical across worker counts.
func TestDeterministicReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	serial := Options{Quick: true, Seed: 3, Replications: 3, Parallelism: 1}
	parallel := serial
	parallel.Parallelism = wideParallelism()
	fa, err := Fig41(serial)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fig41(parallel)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fa.Render(), fb.Render()
	if a != b {
		t.Errorf("replicated output differs across parallelism:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "±") {
		t.Errorf("replicated figure missing ± columns:\n%s", a)
	}
}

// TestReplicationsWidenNoCIAtOne: a single replication must not change the
// rendered output format (no ± columns).
func TestReplicationsWidenNoCIAtOne(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	fig, err := AblationMigrationModes(Options{Quick: true, Seed: 5, Parallelism: wideParallelism()})
	if err != nil {
		t.Fatal(err)
	}
	if out := fig.Render(); strings.Contains(out, "±") {
		t.Errorf("single-replication figure must not render ±:\n%s", out)
	}
}

// TestConcurrentExperimentsRace is the race-detector smoke test: distinct
// experiments sharing the process (and the lazily built real-life trace) run
// concurrently, each fanning out its own worker pool.
func TestConcurrentExperimentsRace(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	o := Options{Quick: true, Seed: 9, Parallelism: 2}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errs[0] = AblationDestagePolicy(o)
	}()
	go func() {
		defer wg.Done()
		// Trace-driven: touches the shared sync.Once real-life trace.
		_, errs[1] = AblationMigrationModes(o)
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent experiment %d: %v", i, err)
		}
	}
}
