package experiments

import "repro/internal/core"

// runEngine executes an already-assembled configuration; used by ablation
// variants that mutate a built configuration.
func runEngine(cfg core.Config) (*core.Result, error) { return core.Run(cfg) }
