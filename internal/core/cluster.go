package core

import (
	"fmt"
	"math"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Default cost of one message to the global lock manager: CPU pathlength
// on the sending node and the request/response round trip (the paper's
// data-sharing discussion in section 5 assumes a dedicated communication
// path to the globally accessible store).
const (
	DefaultInstrLockMsg   = 5_000
	DefaultLockMsgDelayMS = 0.1
)

// DefaultAdmissionQueueFactor is the survivor-capacity threshold of the
// admission controller when AdmissionConfig.QueueFactor is zero: a rerouted
// arrival is shed once the target's input queue holds one full MPL batch.
const DefaultAdmissionQueueFactor = 1.0

// AdmissionConfig is the recovery-aware admission controller on the
// cluster's arrival rerouter. While a node is down its arrivals reroute to
// the survivors; without admission control they queue there without bound
// and the backlog outlives the recovery. With Enabled, a rerouted arrival
// is shed (counted in Result.Shed, not executed) when the surviving
// target's input queue already holds QueueFactor × MPL waiting
// transactions — the survivors keep serving their own load at normal
// response times instead of dragging everyone into the backlog.
type AdmissionConfig struct {
	Enabled bool
	// QueueFactor is the shedding threshold in multiples of the target
	// node's MPL. Zero means DefaultAdmissionQueueFactor.
	QueueFactor float64
}

// validate checks the admission description.
func (a *AdmissionConfig) validate() error {
	if a.QueueFactor < 0 {
		return fmt.Errorf("core: admission QueueFactor = %v", a.QueueFactor)
	}
	return nil
}

// ClusterConfig describes a multi-node data-sharing simulation: N
// transaction-processing nodes — each with its own CPUs, MPL, main-memory
// buffer and arrival streams — sharing the disk units and one global NVEM
// that serves as second-level cache and log store.
type ClusterConfig struct {
	// Base is the per-node template. Its CPU/MPL/buffer/CC/partition and
	// window settings apply to every node; its DiskUnits and NVEM
	// parameters describe the storage shared by all nodes. Base.Generator
	// is ignored — Generators supplies the per-node arrival streams.
	Base Config

	NumNodes int

	// Generators holds one workload generator per node. Generators are
	// stateful, so nodes must not share an instance.
	Generators []workload.Generator

	// SharedNVEMCache shares a single NVEM second-level cache of
	// Base.Buffer.NVEMCacheSize frames across all nodes: a page destaged
	// by one node is hittable by every other, with write-invalidate
	// coherence. When false each node gets a private cache (or none when
	// the buffer configuration uses no NVEM cache).
	SharedNVEMCache bool

	// NVEMAccessDelayMS is the modeled interconnect latency of one
	// shared-NVEM-cache access (probe, insert, dirty hand-off). The
	// coupled engine resolves coherence instantaneously and ignores it;
	// under PDES it is what makes a shared cache parallelizable at all —
	// every coherence action becomes a cross-node message arriving this
	// many milliseconds later, and the barrier lookahead becomes
	// min(LockMsgDelayMS, NVEMAccessDelayMS). PDES + SharedNVEMCache is
	// therefore rejected unless this is positive.
	NVEMAccessDelayMS float64

	// GlobalLocks routes every lock request through one cluster-wide lock
	// manager. Each request costs InstrLockMsg instructions of message
	// pathlength on the requesting node's CPU plus a LockMsgDelayMS round
	// trip; releases cost one more message. Zero values take the
	// defaults. When false each node locks locally with no inter-node
	// messages — an idealized lower bound used for overhead ablations.
	GlobalLocks    bool
	InstrLockMsg   float64
	LockMsgDelayMS float64

	// Failure injects one node crash into the measurement window: the
	// node's volatile state is lost, its arrivals reroute to the
	// surviving nodes, and after RebootMS it replays its redo log and
	// rejoins (recovery.go). The zero value disables injection.
	Failure FailureConfig

	// Admission sheds rerouted arrivals above a survivor-capacity
	// threshold while a node is down, instead of queueing them. The zero
	// value queues everything (the pre-admission behaviour).
	Admission AdmissionConfig

	// TimelineBucketMS, when positive, records cluster-wide commits per
	// time bucket over the measurement window (Result.Timeline) — the
	// availability experiments read the throughput dip and ramp-back
	// around a crash from it.
	TimelineBucketMS float64

	// PDES runs the cluster as a conservative parallel simulation: one
	// kernel and private storage per node, cross-node events exchanged at
	// lookahead barriers (pdes.go). Compatible with SharedNVEMCache only
	// when NVEMAccessDelayMS is positive — instantaneous coherence has
	// zero lookahead and cannot be parallelized conservatively.
	PDES PDESConfig
}

// Validate checks the cluster description.
func (c *ClusterConfig) Validate() error {
	if c.NumNodes <= 0 {
		return fmt.Errorf("core: cluster NumNodes = %d", c.NumNodes)
	}
	if len(c.Generators) != c.NumNodes {
		return fmt.Errorf("core: %d generators for %d nodes", len(c.Generators), c.NumNodes)
	}
	if c.InstrLockMsg < 0 || c.LockMsgDelayMS < 0 {
		return fmt.Errorf("core: negative global-lock message cost")
	}
	if c.SharedNVEMCache && c.Base.Buffer.NVEMCacheSize <= 0 {
		return fmt.Errorf("core: SharedNVEMCache with NVEMCacheSize = %d", c.Base.Buffer.NVEMCacheSize)
	}
	if c.NVEMAccessDelayMS < 0 {
		return fmt.Errorf("core: NVEMAccessDelayMS = %v", c.NVEMAccessDelayMS)
	}
	if err := c.Failure.validate(c.NumNodes, c.Base.MeasureMS); err != nil {
		return err
	}
	if c.Failure.Enabled && c.Base.Arrival.Kind == workload.ArrivalClosedLoop {
		// A crash kills in-flight transactions without completing them, so
		// their terminals would never think again — the terminal population
		// silently shrinks and the post-recovery load is wrong.
		return fmt.Errorf("core: closed-loop arrivals cannot run with failure injection")
	}
	if err := c.Admission.validate(); err != nil {
		return err
	}
	if err := c.PDES.validate(); err != nil {
		return err
	}
	if c.PDES.Enabled && c.SharedNVEMCache && c.NVEMAccessDelayMS <= 0 {
		return fmt.Errorf("core: PDES with a shared NVEM cache requires NVEMAccessDelayMS > 0 (instantaneous coherence has zero lookahead); set ClusterConfig.NVEMAccessDelayMS")
	}
	if c.TimelineBucketMS < 0 {
		return fmt.Errorf("core: TimelineBucketMS = %v", c.TimelineBucketMS)
	}
	for i, g := range c.Generators {
		if g == nil {
			return fmt.Errorf("core: nil generator for node %d", i)
		}
		cfg := c.Base
		cfg.Generator = g
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("core: node %d: %w", i, err)
		}
	}
	return nil
}

// ClusterResult carries a multi-node run's metrics: the cluster-wide
// aggregate over the measurement window plus each node's own view.
type ClusterResult struct {
	Cluster *Result   // aggregate (includes shared disk-unit and NVEM reports)
	Nodes   []*Result // per-node metrics (no shared-device reports)
}

// Report renders the aggregate report followed by one summary line per
// node.
func (r *ClusterResult) Report() string {
	out := r.Cluster.Report()
	for i, n := range r.Nodes {
		out += fmt.Sprintf("node %d: %s\n", i, n.String())
	}
	return out
}

// RunCluster executes one multi-node data-sharing simulation.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nodeCfgs := make([]Config, cfg.NumNodes)
	for i := range nodeCfgs {
		nodeCfgs[i] = cfg.Base
		nodeCfgs[i].Generator = cfg.Generators[i]
	}
	opts := clusterOpts{
		sharedNVEM:       cfg.SharedNVEMCache,
		failure:          cfg.Failure,
		trackActive:      cfg.Failure.Enabled,
		timelineBucketMS: cfg.TimelineBucketMS,
		admission:        cfg.Admission,
		pdes:             cfg.PDES,
	}
	if cfg.PDES.Enabled {
		// The lock-message latency governs lock traffic even when global
		// locking is off: it is the model's inter-node messaging latency,
		// and invalidations and reroutes travel at the same speed. With a
		// shared NVEM cache, coherence traffic instead travels at the NVEM
		// access latency, and the barrier horizon is the smaller of the two
		// (no message may arrive inside the window that sent it).
		opts.pdesLockDelay = cfg.LockMsgDelayMS
		if opts.pdesLockDelay == 0 {
			opts.pdesLockDelay = DefaultLockMsgDelayMS
		}
		opts.pdesLookahead = opts.pdesLockDelay
		if cfg.SharedNVEMCache {
			opts.nvemAccessDelay = cfg.NVEMAccessDelayMS
			if opts.nvemAccessDelay < opts.pdesLookahead {
				opts.pdesLookahead = opts.nvemAccessDelay
			}
		}
	}
	if cfg.GlobalLocks {
		opts.globalLocks = true
		opts.instrLockMsg = cfg.InstrLockMsg
		opts.lockMsgDelay = cfg.LockMsgDelayMS
		if opts.instrLockMsg == 0 {
			opts.instrLockMsg = DefaultInstrLockMsg
		}
		if opts.lockMsgDelay == 0 {
			opts.lockMsgDelay = DefaultLockMsgDelayMS
		}
	}
	c, err := newCluster(cfg.Base.Seed, nodeCfgs, opts)
	if err != nil {
		return nil, err
	}
	c.runPhases()
	out := &ClusterResult{}
	for _, n := range c.nodes {
		out.Nodes = append(out.Nodes, n.collect())
	}
	out.Cluster = c.aggregate(out.Nodes)
	c.attachShared(out.Cluster)
	c.attachTimeline(out.Cluster)
	if cfg.Failure.Enabled {
		out.Cluster.Restart = c.nodes[cfg.Failure.Node].restartReport()
		out.Cluster.CrashedTimeline = out.Nodes[cfg.Failure.Node].Timeline
		out.Cluster.SurvivorRespMean = survivorRespMean(out.Nodes, cfg.Failure.Node)
	}
	c.finish()
	return out, nil
}

// clusterOpts are the cluster-level switches of an internal build.
type clusterOpts struct {
	sharedNVEM   bool
	globalLocks  bool
	instrLockMsg float64
	lockMsgDelay float64

	// failure injects a crash boundary into the phase schedule;
	// trackActive makes nodes register in-flight transactions so a crash
	// can kill them (also set by MeasureRestart, which crashes after the
	// window). timelineBucketMS enables the commit timeline. admission
	// sheds rerouted arrivals above the survivor-capacity threshold.
	failure          FailureConfig
	trackActive      bool
	timelineBucketMS float64
	admission        AdmissionConfig

	// pdes switches the build to per-node kernels and storage;
	// pdesLookahead is the resolved barrier horizon (ms), pdesLockDelay
	// the resolved lock/invalidate/reroute message latency, and
	// nvemAccessDelay the shared-NVEM-cache access latency (positive only
	// when a shared cache runs under PDES).
	pdes            PDESConfig
	pdesLookahead   float64
	pdesLockDelay   float64
	nvemAccessDelay float64
}

// cluster wires shared storage and N nodes into one simulation kernel —
// or, under PDES, one kernel with private storage per node (pdes.go).
type cluster struct {
	s      *sim.Sim // coupled mode: the single shared kernel (nil under PDES)
	units  []*storage.DiskUnit
	nvem   *storage.NVEM
	nodes  []*node
	stride int // node count; txn ids are k*stride+nodeID

	glocks       *cc.Global // non-nil: cluster-wide lock manager
	instrLockMsg float64
	lockMsgDelay float64
	baseGlobal   cc.Stats

	shared *buffer.SharedNVEMCache // non-nil: coherent shared NVEM cache

	pdes *pdesState // non-nil: conservative parallel engine

	warmup, measure float64

	// Lifecycle / recovery (phase.go, recovery.go).
	failure     FailureConfig
	trackActive bool
	admission   AdmissionConfig
	rr          int // round-robin cursor of the arrival rerouter

	// Commit-timeline bucket width (availability runs); each node
	// records its own buckets.
	timelineBucketMS float64
}

// newCluster builds the shared storage and every node. nodeCfgs[0]
// supplies the shared parameters (devices, NVEM, windows); callers
// guarantee all node configurations agree on them.
func newCluster(seed int64, nodeCfgs []Config, opts clusterOpts) (*cluster, error) {
	shared := nodeCfgs[0]
	c := &cluster{
		stride:           len(nodeCfgs),
		instrLockMsg:     opts.instrLockMsg,
		lockMsgDelay:     opts.lockMsgDelay,
		warmup:           shared.WarmupMS,
		measure:          shared.MeasureMS,
		failure:          opts.failure,
		trackActive:      opts.trackActive,
		timelineBucketMS: opts.timelineBucketMS,
		admission:        opts.admission,
	}
	if c.admission.QueueFactor == 0 {
		c.admission.QueueFactor = DefaultAdmissionQueueFactor
	}

	if opts.pdes.Enabled {
		// Parallel build: no shared kernel and no shared storage — each
		// node constructs its own devices in newNode.
		c.pdes = newPDES(c, len(nodeCfgs), sim.Time(opts.pdesLookahead), opts.pdes.Workers)
		if opts.pdesLockDelay > 0 {
			c.pdes.lockDelay = sim.Time(opts.pdesLockDelay)
		}
		if opts.nvemAccessDelay > 0 {
			c.pdes.cohDelay = sim.Time(opts.nvemAccessDelay)
		}
	} else {
		c.s = sim.New()
		unitRnd := rng.NewStream(seed, "disk-units")
		for i := range shared.DiskUnits {
			u, err := storage.NewDiskUnit(c.s, shared.DiskUnits[i], unitRnd)
			if err != nil {
				return nil, err
			}
			c.units = append(c.units, u)
		}
		usesNVEM := false
		for i := range nodeCfgs {
			usesNVEM = usesNVEM || nodeCfgs[i].Buffer.UsesNVEM()
		}
		if usesNVEM {
			nvem, err := storage.NewNVEM(c.s, shared.NVEMServers, shared.NVEMDelay)
			if err != nil {
				return nil, err
			}
			c.nvem = nvem
		}
	}
	if opts.sharedNVEM {
		sc, err := buffer.NewSharedNVEMCache(shared.Buffer.NVEMCacheSize)
		if err != nil {
			return nil, err
		}
		c.shared = sc
	}
	if opts.globalLocks {
		c.glocks = cc.NewGlobal(len(nodeCfgs), func(txn cc.TxnID) {
			c.nodes[int(int64(txn)%int64(c.stride))].onLockGrant(txn)
		})
	}

	for i := range nodeCfgs {
		n, err := newNode(c, i, len(nodeCfgs), seed, nodeCfgs[i])
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// invalidate drops every other node's copy of key before writer modifies
// the page (write-invalidate coherence). Nodes are visited in id order for
// determinism. Under PDES the invalidation travels as a message and lands
// on each peer one lookahead later; either way the node that held the page
// counts the hand-off.
func (c *cluster) invalidate(writer int, key storage.PageKey) {
	if c.stride == 1 {
		return
	}
	if c.pdes != nil {
		c.pdes.sendInvalidate(c.nodes[writer], key)
		return
	}
	for _, n := range c.nodes {
		if n.id == writer {
			continue
		}
		had, dirty := n.bm.Invalidate(key)
		if had {
			n.invalidations++
			if dirty {
				n.dirtyHandoffs++
			}
		}
	}
}

// reroute picks the surviving node the next rerouted arrival runs on,
// round-robin over the running nodes for balance. It returns nil when no
// node is running (the cluster is unavailable).
func (c *cluster) reroute() *node {
	for range c.nodes {
		n := c.nodes[c.rr]
		c.rr = (c.rr + 1) % c.stride
		if n.phase == nodeRunning {
			return n
		}
	}
	return nil
}

// shedReroute is the admission-control rule: a rerouted arrival aimed at
// target is shed when the controller is enabled and target's input queue
// already holds QueueFactor × MPL waiting transactions. Arrivals a running
// node receives for itself are never shed — only rerouted overflow is.
func (c *cluster) shedReroute(target *node) bool {
	if !c.admission.Enabled {
		return false
	}
	return float64(target.mpl.QueueLen()) >= c.admission.QueueFactor*float64(target.cfg.MPL)
}

// timelineBuckets is the padded timeline length: the full window
// including a trailing partial bucket, so every run of one configuration
// reports the same number of buckets regardless of where its last
// commit landed.
func (c *cluster) timelineBuckets(recorded int) int {
	buckets := int(math.Ceil(c.measure / c.timelineBucketMS))
	if buckets < recorded {
		buckets = recorded
	}
	return buckets
}

// attachTimeline sums the per-node commit timelines into the aggregate
// result.
func (c *cluster) attachTimeline(res *Result) {
	if c.timelineBucketMS <= 0 {
		return
	}
	longest := 0
	for _, n := range c.nodes {
		if len(n.timeline) > longest {
			longest = len(n.timeline)
		}
	}
	res.TimelineBucketMS = c.timelineBucketMS
	res.Timeline = make([]int64, c.timelineBuckets(longest))
	for _, n := range c.nodes {
		for i, v := range n.timeline {
			res.Timeline[i] += v
		}
	}
}

// finish stops the arrival streams and abandons all pending work.
func (c *cluster) finish() {
	for _, n := range c.nodes {
		n.stopArrivals = true
	}
	if c.pdes != nil {
		for _, k := range c.pdes.kernels {
			k.Shutdown()
		}
		return
	}
	c.s.Shutdown()
}

// attachShared adds the shared-device reports (disk units, NVEM
// utilization) to a result: the single node's result in a one-node run,
// the aggregate in a cluster run. Under PDES each node owns private
// devices, so the report sums the per-node unit counters and averages the
// utilizations (the nodes share one measurement window).
func (c *cluster) attachShared(res *Result) {
	cfg := c.nodes[0].cfg
	if c.pdes != nil {
		for i := range cfg.DiskUnits {
			rep := UnitReport{
				Name: cfg.DiskUnits[i].Name,
				Type: cfg.DiskUnits[i].Type,
			}
			for _, n := range c.nodes {
				u := n.units[i]
				rep.Stats = addUnitStats(rep.Stats, u.Stats())
				rep.DiskUtilization += u.DiskUtilization()
				rep.CtrlUtilization += u.ControllerUtilization()
			}
			rep.DiskUtilization /= float64(len(c.nodes))
			rep.CtrlUtilization /= float64(len(c.nodes))
			res.Units = append(res.Units, rep)
		}
		var util float64
		withNVEM := 0
		for _, n := range c.nodes {
			if n.nvem != nil {
				util += n.nvem.Utilization()
				withNVEM++
			}
		}
		if withNVEM > 0 {
			res.NVEMUtil = util / float64(withNVEM)
		}
		return
	}
	for i, u := range c.units {
		res.Units = append(res.Units, UnitReport{
			Name:            cfg.DiskUnits[i].Name,
			Type:            cfg.DiskUnits[i].Type,
			Stats:           u.Stats(),
			DiskUtilization: u.DiskUtilization(),
			CtrlUtilization: u.ControllerUtilization(),
		})
	}
	if c.nvem != nil {
		res.NVEMUtil = c.nvem.Utilization()
	}
}

// addUnitStats sums two disk-unit counter snapshots field by field.
func addUnitStats(a, b storage.DiskUnitStats) storage.DiskUnitStats {
	a.Reads += b.Reads
	a.Writes += b.Writes
	a.ReadHits += b.ReadHits
	a.WriteHits += b.WriteHits
	a.CacheWrites += b.CacheWrites
	a.SyncDiskWrites += b.SyncDiskWrites
	a.Destages += b.Destages
	a.DiskAccesses += b.DiskAccesses
	return a
}

// survivorRespMean is the commit-weighted mean response time over every
// node except the crashed one — the metric the admission controller is
// judged on: did shedding rerouted overflow keep the survivors responsive?
func survivorRespMean(nodes []*Result, crashed int) float64 {
	var w, sum float64
	for i, r := range nodes {
		if i == crashed {
			continue
		}
		w += float64(r.Commits)
		sum += float64(r.Commits) * r.RespMean
	}
	if w == 0 {
		return 0
	}
	return sum / w
}

// aggregate folds per-node window metrics into the cluster-wide result:
// counters sum, time metrics are commit-weighted means, utilization is
// CPU-weighted, and hit ratios are recomputed from the summed counters.
func (c *cluster) aggregate(nodes []*Result) *Result {
	agg := &Result{}
	var commits float64
	var cpuBusy, cpuCap float64
	window := c.nodes[0].s.Now() - c.nodes[0].warmStartTime
	for i, r := range nodes {
		n := c.nodes[i]
		agg.OfferedTPS += r.OfferedTPS
		agg.Commits += r.Commits
		agg.Aborts += r.Aborts
		agg.Dropped += r.Dropped
		agg.Shed += r.Shed
		agg.Throughput += r.Throughput
		agg.LockMsgs += r.LockMsgs
		agg.Saturated = agg.Saturated || r.Saturated
		agg.Terminals += r.Terminals
		if r.ThinkMS > 0 {
			agg.ThinkMS = r.ThinkMS
		}
		// Terminal-weighted: the aggregate is total waiting terminals over
		// total terminals.
		agg.TerminalWaitFrac += float64(r.Terminals) * r.TerminalWaitFrac
		for ci, cr := range r.Classes {
			if ci == len(agg.Classes) {
				agg.Classes = append(agg.Classes, ClassReport{Name: cr.Name})
			}
			ac := &agg.Classes[ci]
			ac.Commits += cr.Commits
			ac.Aborts += cr.Aborts
			ac.Dropped += cr.Dropped
			ac.Shed += cr.Shed
			ac.RespMean += float64(cr.Commits) * cr.RespMean
			if cr.RespP95 > ac.RespP95 {
				ac.RespP95 = cr.RespP95
			}
		}
		w := float64(r.Commits)
		commits += w
		agg.RespMean += w * r.RespMean
		// Percentiles do not average; the worst node's p95 bounds the
		// cluster-wide p95 from above (exact for homogeneous nodes).
		if r.RespP95 > agg.RespP95 {
			agg.RespP95 = r.RespP95
		}
		agg.LockWaitMean += w * r.LockWaitMean
		agg.IOWaitMean += w * r.IOWaitMean
		cpuBusy += (n.cpu.BusyIntegral() - n.baseCPUBusy)
		cpuCap += float64(n.cfg.NumCPU)
		agg.Buffer = agg.Buffer.Add(r.Buffer)
		agg.Locks = agg.Locks.Add(r.Locks)
		for pi, p := range r.Partitions {
			if pi == len(agg.Partitions) {
				agg.Partitions = append(agg.Partitions, PartitionReport{Name: p.Name})
			}
			agg.Partitions[pi].Fixes += p.Fixes
			agg.Partitions[pi].MMHits += p.MMHits
			agg.Partitions[pi].NVEMHits += p.NVEMHits
		}
	}
	if commits > 0 {
		agg.RespMean /= commits
		agg.LockWaitMean /= commits
		agg.IOWaitMean /= commits
	}
	if agg.Terminals > 0 {
		agg.TerminalWaitFrac /= float64(agg.Terminals)
	}
	for i := range agg.Classes {
		if ac := &agg.Classes[i]; ac.Commits > 0 {
			ac.RespMean /= float64(ac.Commits)
		}
	}
	if window > 0 && cpuCap > 0 {
		agg.CPUUtil = cpuBusy / (cpuCap * window)
	}
	if agg.Buffer.Fixes > 0 {
		agg.MMHitPct = 100 * float64(agg.Buffer.MMHits) / float64(agg.Buffer.Fixes)
		agg.NVEMAddHitPct = 100 * float64(agg.Buffer.NVEMCacheHits) / float64(agg.Buffer.Fixes)
	}
	for i := range agg.Partitions {
		p := &agg.Partitions[i]
		if p.Fixes > 0 {
			p.MMHitPct = 100 * float64(p.MMHits) / float64(p.Fixes)
			p.NVEMHitPct = 100 * float64(p.NVEMHits) / float64(p.Fixes)
		}
	}
	if c.glocks != nil {
		agg.Locks = c.glocks.Stats().Sub(c.baseGlobal)
	}
	for _, n := range c.nodes {
		agg.Invalidations += n.invalidations - n.baseInval
		agg.DirtyHandoffs += n.dirtyHandoffs - n.baseHandoffs
	}
	return agg
}
