package core

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// dcCluster builds an N-node Debit-Credit cluster over the dcConfig
// template: the aggregate rate splits evenly, nodes share the disk units
// and (with sharedNVEM) one NVEM cache, all under the global lock manager.
func dcCluster(t *testing.T, nodes int, aggregateRate float64, sharedNVEM bool) ClusterConfig {
	t.Helper()
	base := dcConfig(t, aggregateRate/float64(nodes))
	base.WarmupMS = 1500
	base.MeasureMS = 4000
	gens := make([]workload.Generator, nodes)
	for i := range gens {
		gen, err := workload.NewDebitCredit(workload.DefaultDebitCreditConfig(aggregateRate / float64(nodes)))
		if err != nil {
			t.Fatal(err)
		}
		gens[i] = gen
	}
	cfg := ClusterConfig{
		Base:        base,
		NumNodes:    nodes,
		Generators:  gens,
		GlobalLocks: true,
	}
	if sharedNVEM {
		for i := range cfg.Base.Buffer.Partitions {
			cfg.Base.Buffer.Partitions[i].NVEMCache = true
		}
		cfg.Base.Buffer.NVEMCacheSize = 1000
		cfg.SharedNVEMCache = true
	}
	return cfg
}

// TestClusterValidate covers the cluster-level configuration checks.
func TestClusterValidate(t *testing.T) {
	cfg := dcCluster(t, 2, 200, false)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.NumNodes = 0
	if _, err := RunCluster(bad); err == nil {
		t.Fatal("NumNodes = 0 must error")
	}
	bad = cfg
	bad.Generators = bad.Generators[:1]
	if _, err := RunCluster(bad); err == nil {
		t.Fatal("generator count mismatch must error")
	}
	bad = dcCluster(t, 2, 200, false)
	bad.SharedNVEMCache = true // without NVEMCacheSize
	if _, err := RunCluster(bad); err == nil {
		t.Fatal("shared cache without a size must error")
	}
	bad = dcCluster(t, 2, 200, false)
	bad.Generators[1] = nil
	if _, err := RunCluster(bad); err == nil {
		t.Fatal("nil generator must error")
	}
}

// TestSingleNodeClusterMatchesRun: a one-node cluster is the classic
// engine — same seed, same metrics as core.Run.
func TestSingleNodeClusterMatchesRun(t *testing.T) {
	single, err := Run(dcConfig(t, 150))
	if err != nil {
		t.Fatal(err)
	}
	base := dcConfig(t, 150)
	res, err := RunCluster(ClusterConfig{
		Base:       base,
		NumNodes:   1,
		Generators: []workload.Generator{base.Generator},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Cluster.String(), single.String(); got != want {
		t.Fatalf("one-node cluster diverged from Run:\n%s\nvs\n%s", got, want)
	}
	if res.Cluster.Commits != single.Commits || res.Cluster.Dropped != single.Dropped {
		t.Fatalf("counter mismatch: %+v vs %+v", res.Cluster, single)
	}
	if res.Cluster.Buffer != single.Buffer {
		t.Fatalf("buffer stats mismatch:\n%+v\nvs\n%+v", res.Cluster.Buffer, single.Buffer)
	}
	if len(res.Nodes) != 1 {
		t.Fatalf("%d node results, want 1", len(res.Nodes))
	}
}

// TestClusterDeterministic: identical cluster runs render byte-identical
// reports.
func TestClusterDeterministic(t *testing.T) {
	a, err := RunCluster(dcCluster(t, 3, 240, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(dcCluster(t, 3, 240, true))
	if err != nil {
		t.Fatal(err)
	}
	if ar, br := a.Report(), b.Report(); ar != br {
		t.Fatalf("cluster runs diverged:\n%s\nvs\n%s", ar, br)
	}
}

// TestClusterSharedNVEMAndCoherence: a multi-node shared-cache run must
// show cross-node activity: second-level hits, remote-write invalidations
// and dirty hand-offs, and per-node metrics that sum to the aggregate.
func TestClusterSharedNVEMAndCoherence(t *testing.T) {
	res, err := RunCluster(dcCluster(t, 2, 300, true))
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Cluster
	if agg.Commits == 0 {
		t.Fatal("no commits")
	}
	if agg.Buffer.NVEMCacheHits == 0 {
		t.Fatal("shared NVEM cache never hit")
	}
	if agg.Invalidations == 0 {
		t.Fatal("no coherence invalidations despite shared write traffic")
	}
	if agg.DirtyHandoffs == 0 {
		t.Fatal("no dirty hand-offs despite update transactions")
	}
	if agg.LockMsgs == 0 {
		t.Fatal("global locking produced no messages")
	}
	var commits, msgs int64
	for _, n := range res.Nodes {
		commits += n.Commits
		msgs += n.LockMsgs
		if n.Commits == 0 {
			t.Fatalf("idle node in a balanced cluster: %+v", n)
		}
	}
	if commits != agg.Commits {
		t.Fatalf("node commits sum %d != aggregate %d", commits, agg.Commits)
	}
	if msgs != agg.LockMsgs {
		t.Fatalf("node lock messages sum %d != aggregate %d", msgs, agg.LockMsgs)
	}
	// Throughput must still track the aggregate offered load.
	if math.Abs(agg.Throughput-300) > 25 {
		t.Fatalf("aggregate throughput %v, want ~300", agg.Throughput)
	}
}

// TestGlobalLockingCostsMoreThanLocal: the message pathlength and round
// trips of the global lock manager must show up as higher response time
// than idealized local locking on the same workload.
func TestGlobalLockingCostsMoreThanLocal(t *testing.T) {
	local := dcCluster(t, 2, 200, false)
	local.GlobalLocks = false
	lres, err := RunCluster(local)
	if err != nil {
		t.Fatal(err)
	}
	global := dcCluster(t, 2, 200, false)
	global.InstrLockMsg = 20_000 // exaggerate so the ordering is robust
	gres, err := RunCluster(global)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Cluster.LockMsgs != 0 {
		t.Fatalf("local locking sent %d messages", lres.Cluster.LockMsgs)
	}
	if gres.Cluster.LockMsgs == 0 {
		t.Fatal("global locking sent no messages")
	}
	if gres.Cluster.RespMean <= lres.Cluster.RespMean {
		t.Fatalf("global locking (%.2f ms) not slower than local (%.2f ms)",
			gres.Cluster.RespMean, lres.Cluster.RespMean)
	}
}
