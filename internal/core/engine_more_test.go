package core

import (
	"math"
	"testing"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestMaxQueueDropsArrivals(t *testing.T) {
	cfg := dcConfig(t, 600)
	cfg.MPL = 4
	cfg.MaxQueue = 10
	cfg.WarmupMS = 500
	cfg.MeasureMS = 3000
	// Single slow CPU so the system cannot keep up.
	cfg.NumCPU = 1
	cfg.MIPS = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("expected dropped arrivals at the queue cap")
	}
	if !res.Saturated {
		t.Fatal("saturation flag not set")
	}
}

func TestObjectLevelLockingRuns(t *testing.T) {
	cfg := dcConfig(t, 150)
	cfg.CCModes = []cc.Granularity{cc.ObjectLevel, cc.ObjectLevel, cc.NoCC}
	cfg.WarmupMS = 1000
	cfg.MeasureMS = 5000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 || res.Locks.Requests == 0 {
		t.Fatalf("object-locking run empty: %+v", res)
	}
}

func TestNoCCDisablesLocking(t *testing.T) {
	cfg := dcConfig(t, 150)
	cfg.CCModes = []cc.Granularity{cc.NoCC, cc.NoCC, cc.NoCC}
	cfg.WarmupMS = 1000
	cfg.MeasureMS = 5000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Locks.Requests != 0 {
		t.Fatalf("lock requests = %d with CC off", res.Locks.Requests)
	}
}

func TestTraceSourceDrivesEngine(t *testing.T) {
	tr := &trace.Trace{
		FilePages: []int64{500, 100},
		TypeNames: []string{"q", "u"},
	}
	// Deterministic mini-trace: alternating small read and update txs.
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			tr.Txs = append(tr.Txs, trace.Tx{Type: 0, Refs: []trace.Ref{
				{File: 0, Page: int64(i % 500)}, {File: 1, Page: int64(i % 100)},
			}})
		} else {
			tr.Txs = append(tr.Txs, trace.Tx{Type: 1, Refs: []trace.Ref{
				{File: 0, Page: int64(i % 500), Write: true},
			}})
		}
	}
	src, err := trace.NewSource(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults()
	cfg.WarmupMS = 1000
	cfg.MeasureMS = 5000
	cfg.Partitions = src.Partitions()
	cfg.Generator = src
	cfg.CCModes = []cc.Granularity{cc.PageLevel, cc.PageLevel}
	cfg.DiskUnits = []storage.DiskUnitConfig{
		{Name: "db", Type: storage.Regular, NumControllers: 4, ContrDelay: 1,
			TransDelay: 0.4, NumDisks: 16, DiskDelay: 15},
	}
	cfg.Buffer = buffer.Config{
		BufferSize: 300,
		Logging:    true,
		Partitions: []buffer.PartitionAlloc{{DiskUnit: 0}, {DiskUnit: 0}},
		Log:        buffer.LogAlloc{DiskUnit: 0},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no trace transactions committed")
	}
	// Only update transactions write the log: about half the commits.
	if res.Buffer.LogWrites == 0 || res.Buffer.LogWrites >= res.Commits {
		t.Fatalf("log writes = %d for %d commits, want ~half", res.Buffer.LogWrites, res.Commits)
	}
}

func TestMultiTypeSyntheticWorkload(t *testing.T) {
	model := &workload.Model{
		Partitions: []workload.Partition{
			{Name: "a", NumObjects: 10_000, BlockFactor: 10},
			{Name: "b", NumObjects: 10_000, BlockFactor: 10},
		},
		TxTypes: []workload.TxType{
			{Name: "short", ArrivalRate: 100, TxSize: 2, WriteProb: 0, RefRow: []float64{1, 0}},
			{Name: "long", ArrivalRate: 20, TxSize: 8, WriteProb: 0.5, VarSize: true, RefRow: []float64{0.5, 0.5}},
		},
	}
	gen, err := workload.NewSynthetic(model)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults()
	cfg.WarmupMS = 1000
	cfg.MeasureMS = 8000
	cfg.Partitions = model.Partitions
	cfg.Generator = gen
	cfg.CCModes = []cc.Granularity{cc.PageLevel, cc.PageLevel}
	cfg.DiskUnits = []storage.DiskUnitConfig{
		{Name: "db", Type: storage.Regular, NumControllers: 4, ContrDelay: 1,
			TransDelay: 0.4, NumDisks: 32, DiskDelay: 15},
	}
	cfg.Buffer = buffer.Config{
		BufferSize: 500,
		Logging:    true,
		Partitions: []buffer.PartitionAlloc{{DiskUnit: 0}, {DiskUnit: 0}},
		Log:        buffer.LogAlloc{DiskUnit: 0},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both arrival streams contribute: aggregate ≈ 120 TPS.
	if math.Abs(res.Throughput-120) > 15 {
		t.Fatalf("throughput = %v, want ~120", res.Throughput)
	}
}

func TestResultReportRenders(t *testing.T) {
	cfg := dcConfig(t, 100)
	cfg.WarmupMS = 500
	cfg.MeasureMS = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	for _, want := range []string{"throughput", "response time", "CPU utilization",
		"ACCOUNT", "unit db", "unit log"} {
		if !contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if res.String() == "" {
		t.Error("String() empty")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestResponseCompositionConsistency(t *testing.T) {
	res, err := Run(dcConfig(t, 250))
	if err != nil {
		t.Fatal(err)
	}
	// Mean fix (I/O) time per transaction cannot exceed the mean response.
	if res.IOWaitMean > res.RespMean {
		t.Fatalf("io wait %v > response %v", res.IOWaitMean, res.RespMean)
	}
	if res.LockWaitMean > res.RespMean {
		t.Fatalf("lock wait %v > response %v", res.LockWaitMean, res.RespMean)
	}
	if res.RespP95 < res.RespMean*0.5 {
		t.Fatalf("p95 %v implausibly below mean %v", res.RespP95, res.RespMean)
	}
	// Utilizations are fractions.
	if res.CPUUtil < 0 || res.CPUUtil > 1 || res.NVEMUtil < 0 || res.NVEMUtil > 1 {
		t.Fatalf("bad utilizations: cpu=%v nvem=%v", res.CPUUtil, res.NVEMUtil)
	}
}

func TestNVEMWriteBufferEnginePath(t *testing.T) {
	cfg := dcConfig(t, 250)
	for i := range cfg.Buffer.Partitions {
		cfg.Buffer.Partitions[i].NVEMWriteBuffer = true
	}
	cfg.Buffer.NVEMWriteBufferSize = 2000
	cfg.Buffer.Log = buffer.LogAlloc{DiskUnit: 1, NVEMWriteBuffer: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Buffer.VictimToWB == 0 {
		t.Fatal("write buffer never used")
	}
	if res.NVEMUtil <= 0 {
		t.Fatal("NVEM utilization not recorded")
	}
	if res.Buffer.AsyncDiskWrites == 0 {
		t.Fatal("no asynchronous destages from the write buffer")
	}
}

func TestGroupCommitEngineIntegration(t *testing.T) {
	cfg := dcConfig(t, 300)
	cfg.DiskUnits[1].NumDisks = 1
	cfg.DiskUnits[1].NumControllers = 1
	cfg.Buffer.GroupCommit = true
	cfg.Buffer.GroupCommitWaitMS = 5
	cfg.WarmupMS = 2000
	cfg.MeasureMS = 8000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One log disk at 300 TPS only works because of batching.
	if res.Saturated {
		t.Fatalf("group commit failed to sustain 300 TPS on one log disk: %+v", res)
	}
	if res.Buffer.GroupCommits == 0 || res.Buffer.LogWrites >= res.Commits {
		t.Fatalf("batching ineffective: %+v", res.Buffer)
	}
}
