package core

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/storage"
)

// TestPoolPoisonInvariance runs the same configuration with and without
// freelist poisoning across every pooled layer — transaction records and
// host operations here, buffer operations, disk operations, lock records —
// and requires byte-identical reports. Poison fills freed records with
// sentinel garbage, so any reset line deleted from any reuse path makes
// the poisoned run's report diverge (or panic on a sentinel state).
func TestPoolPoisonInvariance(t *testing.T) {
	run := func() string {
		res, err := Run(dcConfig(t, 150))
		if err != nil {
			t.Fatal(err)
		}
		return res.Report()
	}
	clean := run()

	poolPoison = true
	buffer.SetPoolPoison(true)
	storage.SetPoolPoison(true)
	cc.SetPoolPoison(true)
	defer func() {
		poolPoison = false
		buffer.SetPoolPoison(false)
		storage.SetPoolPoison(false)
		cc.SetPoolPoison(false)
	}()
	if poisoned := run(); poisoned != clean {
		t.Fatalf("poisoned run diverges from clean run:\n--- clean ---\n%s\n--- poisoned ---\n%s", clean, poisoned)
	}
}

// TestTxRunFreelistRecycles verifies committed transactions return their
// records to the node freelist and that a poisoned recycled record is
// fully re-initialized (the poison-invariance test above proves the
// behavioral side; this pins the mechanism itself).
func TestTxRunFreelistRecycles(t *testing.T) {
	poolPoison = true
	defer func() { poolPoison = false }()

	cfg := dcConfig(t, 150)
	cfg.WarmupMS, cfg.MeasureMS = 1000, 1000
	c, err := newCluster(cfg.Seed, []Config{cfg}, clusterOpts{})
	if err != nil {
		t.Fatal(err)
	}
	c.runPhases()
	e := c.nodes[0]
	if e.freeTx == nil {
		t.Fatal("no committed transaction record returned to the freelist")
	}
	if head := e.freeTx; head.txn != -1 || head.i != -1 || !head.dead {
		t.Fatalf("freed txRun not poisoned: txn=%d i=%d dead=%v", head.txn, head.i, head.dead)
	}
	res := c.nodes[0].collect()
	c.finish()
	if res.Commits == 0 {
		t.Fatal("run committed nothing; freelist assertion is vacuous")
	}
}
