package core

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/rng"
	"repro/internal/storage"
	"repro/internal/workload"
)

// scriptGen replays a fixed list of transactions, then produces empty ones
// (which the engine never admits). It lets a test saturate the warm-up
// phase and leave the measurement window idle under a constant arrival
// rate.
type scriptGen struct {
	rate float64
	txs  []workload.Tx
	i    int
}

func (g *scriptGen) NumTypes() int                  { return 1 }
func (g *scriptGen) TypeInfo(int) (string, float64) { return "script", g.rate }
func (g *scriptGen) Next(_ int, _ *rng.Stream) workload.Tx {
	if g.i < len(g.txs) {
		g.i++
		return g.txs[g.i-1]
	}
	return workload.Tx{TypeName: "script"}
}

// scriptConfig is a minimal one-partition, one-disk configuration around a
// scripted generator.
func scriptConfig(gen *scriptGen) Config {
	cfg := Defaults()
	cfg.Partitions = []workload.Partition{{Name: "db", NumObjects: 100_000, BlockFactor: 1}}
	cfg.CCModes = []cc.Granularity{cc.PageLevel}
	cfg.Generator = gen
	cfg.DiskUnits = []storage.DiskUnitConfig{
		{Name: "db", Type: storage.Regular, NumControllers: 2,
			ContrDelay: DefaultContrDelay, TransDelay: DefaultTransDelay,
			NumDisks: 4, DiskDelay: DefaultDBDiskDelay},
	}
	cfg.Buffer = buffer.Config{
		BufferSize: 50,
		Logging:    false,
		Partitions: []buffer.PartitionAlloc{{DiskUnit: 0}},
		Log:        buffer.LogAlloc{DiskUnit: 0},
	}
	return cfg
}

// access builds one read or write access to a distinct page.
func access(page int64, write bool) workload.Access {
	return workload.Access{Partition: 0, Object: page, Page: page, Write: write}
}

// TestWarmupDropsExcluded saturates the input queue during warm-up only:
// a burst of slow transactions overwhelms MPL=1 and the tiny queue cap,
// then the load stops well before the snapshot. Drops (and the Saturated
// flag derived from them) must not leak into the measured window.
func TestWarmupDropsExcluded(t *testing.T) {
	gen := &scriptGen{rate: 200} // 5ms interarrivals
	for i := 0; i < 40; i++ {
		tx := workload.Tx{TypeName: "heavy"}
		for j := 0; j < 3; j++ {
			tx.Accesses = append(tx.Accesses, access(int64(i*10+j), false))
		}
		gen.txs = append(gen.txs, tx)
	}
	cfg := scriptConfig(gen)
	cfg.MPL = 1
	cfg.NumCPU = 1
	cfg.MaxQueue = 3
	cfg.WarmupMS = 5000
	cfg.MeasureMS = 3000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The burst arrives and saturates within the first ~200ms of warm-up:
	// only 1 running + 3 queued survive, everything else is dropped there.
	// The queue drains long before the snapshot, so the measured window
	// sees no arrivals, no drops and no saturation.
	if res.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0: warm-up drops leaked into the window", res.Dropped)
	}
	if res.Saturated {
		t.Fatal("Saturated set although the measured window was idle")
	}
	if res.Commits != 0 {
		t.Fatalf("Commits = %d, want 0 (all survivors commit during warm-up)", res.Commits)
	}
}

// TestBoundaryStraddlingLockWaitClamped: a lock wait that begins before
// the warm-up snapshot and ends inside the window must only be credited
// its in-window part. The holder grabs a write lock at t≈5ms and keeps
// running for ~1.7 simulated seconds past the 1s warm-up boundary; the
// waiter's full wait (~1.7s) would exceed the clamped wait (~0.7s) by far.
func TestBoundaryStraddlingLockWaitClamped(t *testing.T) {
	holder := workload.Tx{TypeName: "holder"}
	holder.Accesses = append(holder.Accesses, access(0, true))
	for j := int64(1); j <= 100; j++ {
		holder.Accesses = append(holder.Accesses, access(j, false))
	}
	waiter := workload.Tx{TypeName: "waiter",
		Accesses: []workload.Access{access(0, true)}}
	gen := &scriptGen{rate: 400, txs: []workload.Tx{holder, waiter}}
	cfg := scriptConfig(gen)
	cfg.WarmupMS = 1000
	cfg.MeasureMS = 4000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 2 {
		t.Fatalf("Commits = %d, want 2 (holder and waiter inside the window)", res.Commits)
	}
	waitSum := res.LockWaitMean * float64(res.Commits)
	if waitSum <= 0 {
		t.Fatal("no lock wait recorded for the straddling conflict")
	}
	// Unclamped accounting would record the whole ~1.7s wait; the clamp
	// caps the credited part at (grant time - warm start) < 1.3s even
	// with generous variance on the holder's disk reads.
	if waitSum >= 1300 {
		t.Fatalf("lock wait sum = %.1f ms: straddling wait not clamped to the window", waitSum)
	}
	if res.IOWaitMean > res.RespMean {
		t.Fatalf("io wait %v > response %v", res.IOWaitMean, res.RespMean)
	}
}

// TestTinyMaxQueueIdleNotSaturated pins the saturation threshold's
// rounding: with MaxQueue = 1, plain integer division made the threshold
// ⌊1/2⌋ = 0, so peakQueue >= 0 held vacuously and an entirely idle run
// reported Saturated. The half-queue threshold must round up, keeping an
// idle run with a tiny queue cap unsaturated.
func TestTinyMaxQueueIdleNotSaturated(t *testing.T) {
	gen := &scriptGen{rate: 100} // no scripted txs: the run stays idle
	cfg := scriptConfig(gen)
	cfg.MPL = 1
	cfg.NumCPU = 1
	cfg.MaxQueue = 1
	cfg.WarmupMS = 1000
	cfg.MeasureMS = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 || res.Commits != 0 {
		t.Fatalf("idle run: Dropped=%d Commits=%d, want 0/0", res.Dropped, res.Commits)
	}
	if res.Saturated {
		t.Fatal("Saturated set for an idle run with MaxQueue = 1")
	}
}

// TestPeakQueueSaturation: sustained overload mid-window must flag
// Saturated even when the queue happens to be drained at collection time.
// A burst that saturates inside the window (but drains before its end)
// leaves drops and a peak queue behind.
func TestPeakQueueSaturation(t *testing.T) {
	gen := &scriptGen{rate: 200}
	// Empty warm-up; the burst lands inside the measured window.
	for i := 0; i < 40; i++ {
		tx := workload.Tx{TypeName: "heavy"}
		for j := 0; j < 3; j++ {
			tx.Accesses = append(tx.Accesses, access(int64(i*10+j), false))
		}
		gen.txs = append(gen.txs, tx)
	}
	cfg := scriptConfig(gen)
	cfg.MPL = 1
	cfg.NumCPU = 1
	cfg.MaxQueue = 3
	cfg.WarmupMS = 0
	cfg.MeasureMS = 8000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("expected in-window drops from the burst")
	}
	if !res.Saturated {
		t.Fatal("Saturated not set despite in-window overload")
	}
}
