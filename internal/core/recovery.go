package core

import (
	"fmt"
	"sort"

	"repro/internal/cc"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// This file implements the crash–recovery side of the node lifecycle:
// failure injection, the crash transition (kill in-flight transactions,
// drop volatile state), the simulated restart (reboot, device-dependent
// redo log scan, redo page I/O), and the restart-time measurement entry
// point. The pure recovery model lives in internal/recovery; here it is
// executed against the real device models inside the kernel.

// FailureConfig injects one node crash into a cluster run. The zero
// value disables failure injection.
type FailureConfig struct {
	Enabled bool
	// Node is the index of the node to crash.
	Node int
	// CrashAtMS is the crash instant as an offset into the measurement
	// window (the crash must land inside it).
	CrashAtMS float64
	// RebootMS is the failure-detection plus system-restart delay before
	// redo recovery begins.
	RebootMS float64
}

// validate checks the failure description against the cluster shape.
func (f *FailureConfig) validate(numNodes int, measureMS float64) error {
	if !f.Enabled {
		return nil
	}
	switch {
	case f.Node < 0 || f.Node >= numNodes:
		return fmt.Errorf("core: failure node %d of %d", f.Node, numNodes)
	case f.CrashAtMS <= 0 || f.CrashAtMS >= measureMS:
		return fmt.Errorf("core: CrashAtMS = %v outside the %v ms window", f.CrashAtMS, measureMS)
	case f.RebootMS < 0:
		return fmt.Errorf("core: RebootMS = %v", f.RebootMS)
	}
	return nil
}

// RestartReport describes one simulated crash and restart.
type RestartReport struct {
	Node      int
	CrashAtMS float64 // simulated crash instant
	RebootMS  float64 // configured reboot delay

	// Simulated restart breakdown. RestartMS = RebootMS + LogScanMS +
	// RedoMS when the node recovered inside the simulated horizon.
	LogScanMS float64
	RedoMS    float64
	RestartMS float64
	Recovered bool

	// Snapshot is the crash-time recovery state; EstimateMS is the
	// analytic restart-time formula priced from the device parameters
	// (recovery.Snapshot.EstimateMS), reported for cross-checking the
	// simulated scan.
	Snapshot   recovery.Snapshot
	EstimateMS float64
}

// String renders a one-line restart summary.
func (r *RestartReport) String() string {
	state := "NOT RECOVERED"
	if r.Recovered {
		state = fmt.Sprintf("restart %.1f ms (reboot %.1f + log scan %.1f + redo %.1f)",
			r.RestartMS, r.RebootMS, r.LogScanMS, r.RedoMS)
	}
	return fmt.Sprintf("node %d crashed @%.0f ms: %s; %d log pages, %d redo pages, est %.1f ms",
		r.Node, r.CrashAtMS, state, r.Snapshot.LogPages, r.Snapshot.RedoPages, r.EstimateMS)
}

// MeasureRestart runs cfg exactly like Run, then crashes the node after
// the measurement window closes and simulates its restart, filling
// Result.Restart. The measurement-window metrics are identical to a
// plain Run of the same configuration; the restart drains the kernel
// after them.
func MeasureRestart(cfg Config, rebootMS float64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rebootMS < 0 {
		return nil, fmt.Errorf("core: rebootMS = %v", rebootMS)
	}
	c, err := newCluster(cfg.Seed, []Config{cfg}, clusterOpts{trackActive: true})
	if err != nil {
		return nil, err
	}
	c.runPhases()
	n := c.nodes[0]
	res := n.collect()
	c.attachShared(res)
	// Quiesce everything that regenerates events, crash, and drain the
	// kernel: only the reboot timer, the redo scan and leftover
	// asynchronous device work remain, all finite.
	n.stopArrivals = true
	n.bm.StopCheckpoints()
	n.crashNow(rebootMS)
	c.s.RunAll()
	res.Restart = n.restartReport()
	c.finish()
	return res, nil
}

// crashNow fails the node at the current simulated instant: the recovery
// snapshot is captured, every in-flight transaction dies (its locks are
// released so remote waiters unblock), the volatile state — MM buffer,
// MPL slots, volatile device caches — is dropped, and the reboot timer
// is scheduled. Non-volatile tiers (NVEM cache/write buffer/resident
// partitions, NV disk caches, SSDs, disks) keep their content.
func (e *node) crashNow(rebootMS float64) {
	e.phase = nodeCrashed
	e.crashed = true
	e.crashedAt = e.s.Now()
	e.rebootMS = rebootMS

	e.redoKeys = e.bm.DirtyKeys()
	e.snapAtCrash = recovery.Snapshot{
		LogPages:  e.bm.LogSinceCkpt(),
		RedoPages: len(e.redoKeys),
		Resident:  e.bm.MMLen(),
	}
	e.estimateMS = e.estimateRestart()

	// Kill in-flight transactions in txn-id order (map iteration order
	// must not leak into lock-release order). Waiting continuations are
	// dropped first so a release cannot resume a dead transaction.
	e.waiting = make(map[cc.TxnID]func())
	ids := make([]cc.TxnID, 0, len(e.active))
	for id := range e.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e.active[id].dead = true
	}
	for _, id := range ids {
		e.releaseLocks(id)
	}
	e.active = make(map[cc.TxnID]*txRun)

	// Fresh MPL slots: the held and queued slots of dead transactions are
	// abandoned with them (queued admissions are work lost in the crash).
	// The input-queue peak observed so far is carried over so pre-crash
	// overload still reaches the Saturated derivation in collect.
	if p := e.mpl.PeakQueueLen(); p > e.peakBeforeCrash {
		e.peakBeforeCrash = p
	}
	e.mpl = e.s.NewResource(e.procName("mpl"), e.cfg.MPL)

	e.bm.StopCheckpoints() // a crashed node cannot checkpoint
	e.bm.Crash()
	for _, u := range e.units {
		u.CrashVolatile()
	}

	e.s.Schedule(rebootMS, e.startRecovery)
}

// estimateRestart prices the captured snapshot with the analytic
// formula: device-dependent log scan plus per-partition redo reads.
func (e *node) estimateRestart() float64 {
	logRead := recovery.LogReadMS(e.cfg.Buffer.Log, e.cfg.DiskUnits, e.cfg.NVEMDelay)
	est := e.rebootMS + float64(e.snapAtCrash.LogPages)*logRead
	for _, key := range e.redoKeys {
		est += recovery.RedoReadMS(e.cfg.Buffer.Partitions[key.Partition], e.cfg.DiskUnits, e.cfg.NVEMDelay)
	}
	return est
}

// startRecovery fires when the reboot delay elapses: the node enters the
// recovering phase and a recovery process replays the redo log — the
// sequential device-dependent log scan, then one redo fix per dirty page
// lost in the crash (which also rewarms that part of the cold buffer).
// When redo completes the node rejoins: arrivals route to it again and
// the remaining cold-buffer rewarm is paid by regular transactions.
func (e *node) startRecovery() {
	e.phase = nodeRecovering
	e.s.Spawn(e.procName("recovery"), 0, func(p *sim.Process) {
		scanStart := p.Now()
		e.bm.RecoveryScan(p, e.snapAtCrash.LogPages, func() {
			e.logScanMS = p.Now() - scanStart
			redoStart := p.Now()
			i := 0
			var redo func()
			redo = func() {
				if i == len(e.redoKeys) {
					e.redoMS = p.Now() - redoStart
					e.recoveredAt = p.Now()
					e.phase = nodeRunning
					// Rejoined: checkpointing resumes (not on a quiesced
					// node — a draining restart measurement must end).
					if !e.stopArrivals {
						e.bm.ResumeCheckpoints()
					}
					return
				}
				key := e.redoKeys[i]
				i++
				e.bm.Fix(p, key, true, redo)
			}
			redo()
		})
	})
}

// restartReport summarizes the node's crash, or nil if it never crashed.
func (e *node) restartReport() *RestartReport {
	if !e.crashed {
		return nil
	}
	rep := &RestartReport{
		Node:       e.id,
		CrashAtMS:  e.crashedAt,
		RebootMS:   e.rebootMS,
		LogScanMS:  e.logScanMS,
		RedoMS:     e.redoMS,
		Recovered:  e.recoveredAt > 0,
		Snapshot:   e.snapAtCrash,
		EstimateMS: e.estimateMS,
	}
	if rep.Recovered {
		rep.RestartMS = e.recoveredAt - e.crashedAt
	}
	return rep
}
