package core

import (
	"fmt"
	"strings"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/storage"
)

// PartitionReport is the per-partition hit breakdown over the measurement
// window. Raw hit counters ride along so cluster aggregation can recompute
// exact percentages from summed counts.
type PartitionReport struct {
	Name       string
	Fixes      int64
	MMHits     int64
	NVEMHits   int64
	MMHitPct   float64
	NVEMHitPct float64
}

// ClassReport is one transaction class's share of the window metrics,
// reported only for multi-class generators. Dropped and Shed split the
// scalar Result counters by class — the scalars stay the aggregate, so
// single-class runs are unchanged.
type ClassReport struct {
	Name     string
	Commits  int64
	Aborts   int64
	Dropped  int64
	Shed     int64
	RespMean float64 // ms
	RespP95  float64 // ms
}

// UnitReport is one disk-unit's activity over the whole run.
type UnitReport struct {
	Name            string
	Type            storage.DiskUnitType
	Stats           storage.DiskUnitStats
	DiskUtilization float64
	CtrlUtilization float64
}

// Result carries every metric a simulation run produces.
type Result struct {
	// Load.
	OfferedTPS float64 // configured aggregate arrival rate
	Commits    int64   // transactions committed in the window
	Aborts     int64   // deadlock aborts in the window (restarts)
	Dropped    int64   // arrivals dropped at the input-queue cap
	Shed       int64   // rerouted arrivals shed by the admission controller
	Saturated  bool    // input queue hit its cap: offered load unsustainable

	// Primary metrics (section 4: response time is the headline metric).
	Throughput   float64 // committed transactions per second
	RespMean     float64 // ms
	RespP95      float64 // ms
	LockWaitMean float64 // mean lock wait per transaction, ms
	IOWaitMean   float64 // mean time in Fix (buffer/storage) per transaction, ms

	// Utilization over the measurement window.
	CPUUtil  float64
	NVEMUtil float64

	// Per-class breakdown (empty for single-class generators).
	Classes []ClassReport

	// Closed-loop runs (ArrivalClosedLoop; Terminals > 0 marks one).
	// TerminalWaitFrac is the mean fraction of terminals waiting for an
	// MPL slot over the window — the closed-loop saturation signal.
	Terminals        int
	ThinkMS          float64
	TerminalWaitFrac float64

	// Caching.
	MMHitPct      float64 // main-memory buffer hit ratio (%)
	NVEMAddHitPct float64 // additional hits in the NVEM cache (%)
	Partitions    []PartitionReport

	// Component detail.
	Buffer buffer.Stats // window delta
	Locks  cc.Stats     // window delta
	Units  []UnitReport

	// Data-sharing cluster metrics (zero for single-node runs).
	LockMsgs      int64 // messages to the global lock manager (window)
	Invalidations int64 // MM copies invalidated by remote writers (window; aggregate only)
	DirtyHandoffs int64 // invalidations that handed off a dirty copy (window; aggregate only)

	// SurvivorRespMean is the commit-weighted mean response time over the
	// non-crashed nodes (set on the cluster aggregate of a
	// failure-injection run) — the admission controller's target metric.
	SurvivorRespMean float64

	// Crash recovery (nil/empty without failure injection or restart
	// measurement).
	Restart          *RestartReport
	TimelineBucketMS float64 // width of one Timeline bucket
	Timeline         []int64 // commits per bucket over the window
	// CrashedTimeline is the crashed node's own commit timeline (set on
	// the cluster aggregate of a failure-injection run): its zero gap is
	// the outage, its resumption the rejoin.
	CrashedTimeline []int64
}

// String renders a compact one-line summary for logs and examples.
func (r *Result) String() string {
	return fmt.Sprintf(
		"offered=%.0f tps thruput=%.1f tps resp=%.2f ms p95=%.2f ms cpu=%.1f%% mmHit=%.1f%% nvemHit=%.1f%% aborts=%d%s",
		r.OfferedTPS, r.Throughput, r.RespMean, r.RespP95,
		100*r.CPUUtil, r.MMHitPct, r.NVEMAddHitPct, r.Aborts,
		map[bool]string{true: " SATURATED", false: ""}[r.Saturated])
}

// Report renders a multi-line human-readable report.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered load:      %.1f TPS\n", r.OfferedTPS)
	fmt.Fprintf(&b, "throughput:        %.1f TPS (%d commits, %d aborts, %d dropped)\n",
		r.Throughput, r.Commits, r.Aborts, r.Dropped)
	if r.Terminals > 0 {
		fmt.Fprintf(&b, "closed loop:       %d terminals, %.0f ms think, %.1f%% waiting for MPL\n",
			r.Terminals, r.ThinkMS, 100*r.TerminalWaitFrac)
	}
	fmt.Fprintf(&b, "response time:     %.2f ms mean, %.2f ms p95\n", r.RespMean, r.RespP95)
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "  class %-13s commits=%d aborts=%d dropped=%d shed=%d resp=%.2f ms p95=%.2f ms\n",
			c.Name, c.Commits, c.Aborts, c.Dropped, c.Shed, c.RespMean, c.RespP95)
	}
	fmt.Fprintf(&b, "  lock wait:       %.2f ms/tx\n", r.LockWaitMean)
	fmt.Fprintf(&b, "  fix (I/O) time:  %.2f ms/tx\n", r.IOWaitMean)
	fmt.Fprintf(&b, "CPU utilization:   %.1f%%\n", 100*r.CPUUtil)
	if r.NVEMUtil > 0 {
		fmt.Fprintf(&b, "NVEM utilization:  %.1f%%\n", 100*r.NVEMUtil)
	}
	fmt.Fprintf(&b, "hit ratios:        %.1f%% MM + %.1f%% NVEM cache\n", r.MMHitPct, r.NVEMAddHitPct)
	for _, p := range r.Partitions {
		fmt.Fprintf(&b, "  %-14s %8d fixes  %5.1f%% MM  %5.1f%% NVEM\n",
			p.Name, p.Fixes, p.MMHitPct, p.NVEMHitPct)
	}
	for _, u := range r.Units {
		fmt.Fprintf(&b, "unit %-12s %-14s reads=%d writes=%d rHits=%d wHits=%d destages=%d disk=%.1f%% ctrl=%.1f%%\n",
			u.Name, u.Type, u.Stats.Reads, u.Stats.Writes, u.Stats.ReadHits,
			u.Stats.WriteHits, u.Stats.Destages, 100*u.DiskUtilization, 100*u.CtrlUtilization)
	}
	if r.Shed > 0 {
		fmt.Fprintf(&b, "admission control: %d rerouted arrivals shed (survivor resp %.2f ms)\n",
			r.Shed, r.SurvivorRespMean)
	}
	if r.LockMsgs > 0 {
		fmt.Fprintf(&b, "global lock msgs:  %d\n", r.LockMsgs)
	}
	if r.Invalidations > 0 {
		fmt.Fprintf(&b, "coherence:         %d invalidations (%d dirty hand-offs)\n",
			r.Invalidations, r.DirtyHandoffs)
	}
	if r.Restart != nil {
		fmt.Fprintf(&b, "recovery:          %s\n", r.Restart)
	}
	if len(r.Timeline) > 0 {
		fmt.Fprintf(&b, "commit timeline (%.0f ms buckets):", r.TimelineBucketMS)
		for _, n := range r.Timeline {
			fmt.Fprintf(&b, " %d", n)
		}
		fmt.Fprintf(&b, "\n")
	}
	if r.Saturated {
		fmt.Fprintf(&b, "WARNING: input queue saturated; offered load exceeds capacity\n")
	}
	return b.String()
}
