package core

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/recovery"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

// node is one transaction-processing system: its own CPUs, MPL slots,
// main-memory buffer, lock state and workload arrival streams. Shared
// storage (disk units, NVEM) and cluster-wide concerns (global lock
// manager, buffer coherence) live on the owning cluster; a classic
// single-system run is a cluster of one node.
type node struct {
	c   *cluster
	id  int
	cfg Config
	s   *sim.Sim

	cpu     *sim.Resource
	mpl     *sim.Resource
	nvem    *storage.NVEM
	units   []*storage.DiskUnit
	bm      *buffer.Manager
	locks   *cc.Manager // local lock manager; nil under global locking
	waiting map[cc.TxnID]func()

	// Coherence counters of pages this node surrendered to a remote
	// writer (whole run; baselined at the warmup snapshot).
	invalidations int64
	dirtyHandoffs int64
	baseInval     int64
	baseHandoffs  int64

	// Lifecycle (phase.go, recovery.go). active tracks in-flight
	// transactions only when the cluster may crash a node (trackActive),
	// so failure-free runs pay nothing on the transaction hot path.
	phase      nodePhase
	nameSuffix string // "" single-node, "/n<id>" in clusters
	active     map[cc.TxnID]*txRun

	// Crash/restart state (recovery.go). peakBeforeCrash preserves the
	// MPL input-queue peak across the crash's resource replacement.
	peakBeforeCrash int
	crashed         bool
	crashedAt       sim.Time
	recoveredAt     sim.Time
	rebootMS        float64
	logScanMS       float64
	redoMS          float64
	redoKeys        []storage.PageKey
	snapAtCrash     recovery.Snapshot
	estimateMS      float64

	// Random streams: one per concern for reproducibility.
	cpuRnd *rng.Stream
	genRnd *rng.Stream
	arrRnd *rng.Stream

	nextTxn int64

	// Measurement. Counters guarded by warm (or baselined at snapshot)
	// cover exactly the measurement window; see DESIGN.md for the
	// measurement-window contract.
	warm         bool
	resp         *stats.Summary
	lockWait     *stats.Summary
	ioWait       *stats.Summary
	commits      int64
	aborts       int64
	dropped      int64
	shed         int64
	stopArrivals bool
	// Per-class window accounting, allocated only for multi-class
	// generators (nil otherwise) and indexed by Tx.Type. The scalar
	// counters above stay the source of truth for aggregates.
	classes []classAcc
	// Closed-loop arrivals (ArrivalClosedLoop): terminals drive arrivals
	// from completions, and saturation is read off the MPL queue integral
	// instead of drops (a closed loop never drops).
	closedLoop    bool
	terminals     int
	baseQueueInt  float64
	baseBuf       buffer.Stats
	basePart      []buffer.PartitionStats
	baseLocks     cc.Stats
	baseCPUBusy   float64
	baseLockMsgs  int64
	warmStartTime sim.Time

	// timeline counts this node's commits per TimelineBucketMS bucket
	// over the measurement window (availability runs only).
	timeline []int64

	// Freelists of the transaction hot path: finished txRun records (their
	// processes and pre-bound continuations ride along) and host operations
	// (the synchronous NVEM-transfer / device-I/O sequences). Dead
	// transactions — killed by a crash — are never recycled: their pending
	// kernel events still reference the record.
	freeTx   *txRun
	freeHost *hostOp
}

// poolPoison, when true, fills freed pool records with sentinel garbage so
// a missing reset in a reuse path surfaces in the pool-contract tests.
var poolPoison = false

// Run executes one single-node simulation described by cfg and returns its
// metrics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c, err := newCluster(cfg.Seed, []Config{cfg}, clusterOpts{})
	if err != nil {
		return nil, err
	}
	c.runPhases()
	res := c.nodes[0].collect()
	c.attachShared(res)
	c.finish()
	return res, nil
}

// newNode wires one transaction system into the cluster's kernel. stream
// names carry a node suffix only in multi-node runs, so single-node runs
// draw the exact random sequences of the original engine. Under PDES the
// node gets its own kernel and its own storage devices instead of the
// cluster's shared ones.
func newNode(c *cluster, id, numNodes int, seed int64, cfg Config) (*node, error) {
	suffix := func(base string) string {
		if numNodes == 1 {
			return base
		}
		return fmt.Sprintf("%s/n%d", base, id)
	}
	n := &node{
		c:        c,
		id:       id,
		cfg:      cfg,
		s:        c.s,
		nvem:     c.nvem,
		units:    c.units,
		waiting:  make(map[cc.TxnID]func()),
		active:   make(map[cc.TxnID]*txRun),
		resp:     stats.NewSummary("response", true),
		lockWait: stats.NewSummary("lock-wait", false),
		ioWait:   stats.NewSummary("io-wait", false),
		cpuRnd:   rng.NewStream(seed, suffix("cpu")),
		genRnd:   rng.NewStream(seed, suffix("workload")),
		arrRnd:   rng.NewStream(seed, suffix("arrivals")),
	}
	if numNodes > 1 {
		n.nameSuffix = fmt.Sprintf("/n%d", id)
	}
	if c.pdes != nil {
		n.s = c.pdes.kernels[id]
		unitRnd := rng.NewStream(seed, suffix("disk-units"))
		n.units = nil
		for i := range cfg.DiskUnits {
			u, err := storage.NewDiskUnit(n.s, cfg.DiskUnits[i], unitRnd)
			if err != nil {
				return nil, err
			}
			n.units = append(n.units, u)
		}
		if cfg.Buffer.UsesNVEM() {
			nvem, err := storage.NewNVEM(n.s, cfg.NVEMServers, cfg.NVEMDelay)
			if err != nil {
				return nil, err
			}
			n.nvem = nvem
		}
	}
	n.cpu = n.s.NewResource(suffix("cpu"), cfg.NumCPU)
	n.mpl = n.s.NewResource(suffix("mpl"), cfg.MPL)

	names := make([]string, len(cfg.Partitions))
	for i := range cfg.Partitions {
		names[i] = cfg.Partitions[i].Name
	}
	var bm *buffer.Manager
	var err error
	if c.pdes != nil && c.shared != nil {
		// Parallel shared cache: the node reaches it only through the
		// lookahead interconnect; the coordinator applies the operations at
		// barriers (pdes.go).
		bm, err = buffer.NewRemote(cfg.Buffer, names, n.units, n.nvem, n, c.shared,
			&pdesNVEMBus{pd: c.pdes, e: n})
	} else {
		bm, err = buffer.NewShared(cfg.Buffer, names, n.units, n.nvem, n, c.shared)
	}
	if err != nil {
		return nil, err
	}
	n.bm = bm
	if c.glocks == nil {
		n.locks = cc.NewManager(n.onLockGrant)
	}

	// Per-class accounting only exists when classes can actually share the
	// node — single-type generators keep the exact scalar path (and byte-
	// identical reports).
	if nt := cfg.Generator.NumTypes(); nt > 1 {
		n.classes = make([]classAcc, nt)
		for i := range n.classes {
			name, _ := cfg.Generator.TypeInfo(i)
			n.classes[i] = classAcc{name: name, resp: stats.NewSummary("resp-"+name, true)}
		}
	}

	// Arrival processes, one per transaction type.
	for i := 0; i < cfg.Generator.NumTypes(); i++ {
		if err := n.spawnArrivals(i); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// classAcc is one transaction class's measurement-window accounting.
type classAcc struct {
	name    string
	commits int64
	aborts  int64
	dropped int64
	shed    int64
	resp    *stats.Summary
}

// classOf returns the class slot for a transaction type, or nil on a
// single-class node (or a type index outside the generator's declared
// range, which trace replay in common-rate mode produces).
func (e *node) classOf(typeIdx int) *classAcc {
	if e.classes == nil || typeIdx < 0 || typeIdx >= len(e.classes) {
		return nil
	}
	return &e.classes[typeIdx]
}

// procName appends the node's cluster suffix to a diagnostic name, the
// same scheme newNode's stream naming uses.
func (e *node) procName(base string) string { return base + e.nameSuffix }

// newTxn allocates a cluster-unique transaction id: node ids interleave,
// so id mod the node count recovers the owner (the global lock manager's
// grant routing relies on this). With one node this degenerates to the
// plain 1, 2, 3, ... sequence.
func (e *node) newTxn() cc.TxnID {
	e.nextTxn++
	return cc.TxnID(e.nextTxn*int64(e.c.stride) + int64(e.id))
}

// --- buffer.Host implementation ---

// instrTime converts an exponentially drawn instruction count to CPU
// milliseconds (MIPS = thousand instructions per millisecond).
func (e *node) instrTime(meanInstr float64) sim.Time {
	return e.cpuRnd.Exp(meanInstr) / (e.cfg.MIPS * 1000)
}

// cpuBurst runs an exponentially distributed instruction burst on a CPU,
// then k. The burst length is drawn when the burst is issued (before any
// CPU queueing), matching the paper's open queueing model.
func (e *node) cpuBurst(p *sim.Process, meanInstr float64, k func()) {
	e.cpu.Use(p, e.instrTime(meanInstr), k)
}

// IOOverhead implements buffer.Host: the CPU pathlength of one I/O.
func (e *node) IOOverhead(p *sim.Process, k func()) { e.cpuBurst(p, e.cfg.InstrIO, k) }

// hostOp stages.
const (
	hoNVAcq    uint8 = iota // CPU acquired: hold the NVEM instruction overhead
	hoNVAccess              // overhead held: perform the NVEM access
	hoIOAcq                 // CPU acquired: hold the I/O instruction overhead
	hoDev                   // overhead held: run the device access
	hoDone                  // access complete: release the CPU, continue
)

// hostOp is one CPU-synchronous host operation — an NVEM page transfer or
// a synchronous device I/O — pooled per node. The acquire callback and the
// step continuation are bound once at allocation; the instruction-time
// draws happen exactly where the closure formulation drew them (after the
// CPU is acquired), so the random sequences are unchanged.
type hostOp struct {
	e     *node
	p     *sim.Process
	k     func()
	dev   func(done func())
	state uint8
	step  func()
	acq   func(sim.Time)
	next  *hostOp
}

func (e *node) getHostOp() *hostOp {
	op := e.freeHost
	if op == nil {
		op = &hostOp{e: e}
		op.step = op.run
		op.acq = func(sim.Time) { op.run() }
		return op
	}
	e.freeHost = op.next
	op.next = nil
	return op
}

func (e *node) putHostOp(op *hostOp) {
	op.p, op.k, op.dev = nil, nil, nil
	if poolPoison {
		op.state = 0xff
	}
	op.next = e.freeHost
	e.freeHost = op
}

// run advances the host operation by one stage.
func (op *hostOp) run() {
	e := op.e
	switch op.state {
	case hoNVAcq:
		op.state = hoNVAccess
		op.p.Hold(e.instrTime(e.cfg.InstrNVEM), op.step)
	case hoNVAccess:
		op.state = hoDone
		e.nvem.Access(op.p, op.step)
	case hoIOAcq:
		op.state = hoDev
		op.p.Hold(e.instrTime(e.cfg.InstrIO), op.step)
	case hoDev:
		op.state = hoDone
		op.dev(op.step)
	case hoDone:
		e.cpu.Release()
		k := op.k
		e.putHostOp(op)
		k()
	default:
		panic(fmt.Sprintf("core: hostOp in invalid state %d", op.state))
	}
}

// SyncDeviceIO implements buffer.Host: the whole device access runs with
// the CPU held (AccessMode=synchronous, Table 3.3).
func (e *node) SyncDeviceIO(p *sim.Process, dev func(done func()), k func()) {
	op := e.getHostOp()
	op.p, op.k, op.dev = p, k, dev
	op.state = hoIOAcq
	e.cpu.Acquire(p, op.acq)
}

// NVEMTransfer implements buffer.Host: a synchronous NVEM page transfer —
// the CPU stays busy for the instruction overhead AND the transfer itself
// (a process switch would cost more than the 50µs delay, section 2).
func (e *node) NVEMTransfer(p *sim.Process, k func()) {
	op := e.getHostOp()
	op.p, op.k = p, k
	op.state = hoNVAcq
	e.cpu.Acquire(p, op.acq)
}

// SpawnAsync implements buffer.Host.
func (e *node) SpawnAsync(name string, fn func(p *sim.Process)) {
	e.s.Spawn(name, 0, fn)
}

// Sim implements buffer.Host.
func (e *node) Sim() *sim.Sim { return e.s }

// --- lock integration ---

func (e *node) onLockGrant(txn cc.TxnID) {
	k, ok := e.waiting[txn]
	if !ok {
		return
	}
	delete(e.waiting, txn)
	if pd := e.c.pdes; pd != nil && e.c.glocks != nil {
		// Global grants fire while a release message is applied at a
		// barrier; the waiter resumes at that message's arrival instant,
		// which lies inside the window about to run.
		e.s.Schedule(pd.msgTime-e.s.Now(), k)
		return
	}
	e.s.Schedule(0, k)
}

// requestLock requests the next access's lock and continues through
// t.locked with the outcome: false on deadlock (the caller must abort). On
// a conflict the continuation is deferred until the lock manager grants
// the queued request. Under global locking the request first pays the
// message pathlength and round trip to the cluster-wide lock manager
// (states txLockMsg/txLockSent).
func (t *txRun) requestLock() {
	e := t.e
	acc := &t.tx.Accesses[t.i]
	granularity := e.cfg.CCModes[acc.Partition]
	if granularity == cc.NoCC {
		t.onLocked(true)
		return
	}
	id := acc.Page
	if granularity == cc.ObjectLevel {
		id = acc.Object
	}
	mode := cc.Read
	if acc.Write {
		mode = cc.Write
	}
	g := cc.Granule{Partition: acc.Partition, ID: id}
	if e.c.glocks != nil {
		t.g, t.mode = g, mode
		t.state = txLockMsg
		e.cpuBurst(t.p, e.c.instrLockMsg, t.resume)
		return
	}
	t.onVerdict(e.locks.Acquire(t.txn, g, mode))
}

// sendLockRequest runs after the request message's CPU pathlength: the
// request departs for the cluster-wide lock manager.
func (t *txRun) sendLockRequest() {
	e := t.e
	if pd := e.c.pdes; pd != nil {
		// The request crosses the node boundary as a PDES message; the
		// verdict materializes one lookahead (= the round-trip latency)
		// later, at the next barrier (pdes.go).
		pd.sendLockReq(e, t.txn, t.g, t.mode, t.locked)
		return
	}
	t.state = txLockSent
	t.p.Hold(e.c.lockMsgDelay, t.resume)
}

// deliverLockRequest lands the request at the global lock manager after
// the round trip.
func (t *txRun) deliverLockRequest() {
	e := t.e
	// A crash while the request message was in flight killed the
	// transaction and purged it from the active table; the request must
	// not reach the global lock manager, where nobody would ever release
	// it.
	if e.c.trackActive {
		if _, alive := e.active[t.txn]; !alive {
			return
		}
	}
	t.onVerdict(e.c.glocks.AcquireFrom(e.id, t.txn, t.g, t.mode))
}

// onVerdict continues after the lock manager's verdict.
func (t *txRun) onVerdict(res cc.Result) {
	switch res {
	case cc.Granted:
		t.onLocked(true)
	case cc.Wait:
		t.waitStart = t.p.Now()
		t.e.waiting[t.txn] = t.granted
	default: // cc.Deadlock
		t.onLocked(false)
	}
}

// onGranted resumes a conflicted lock request once the manager grants it,
// crediting the wait to the lock-wait statistic. A wait straddling the
// warmup boundary is only credited its in-window part.
func (t *txRun) onGranted() {
	e := t.e
	if e.warm {
		start := t.waitStart
		if start < e.warmStartTime {
			start = e.warmStartTime
		}
		e.lockWait.Add(t.p.Now() - start)
	}
	t.onLocked(true)
}

// releaseLocks releases the transaction's locks at the local or global
// lock manager. Under PDES the global release is a one-way message: the
// locks drop when it lands at the manager, one lookahead later.
func (e *node) releaseLocks(txn cc.TxnID) {
	if e.c.glocks != nil {
		if pd := e.c.pdes; pd != nil {
			pd.sendLockRelease(e, txn)
			return
		}
		e.c.glocks.ReleaseAllFrom(e.id, txn)
		return
	}
	e.locks.ReleaseAll(txn)
}

// --- workload arrival and transaction execution ---

func (e *node) spawnArrivals(typeIdx int) error {
	if e.cfg.Arrival.Kind == workload.ArrivalClosedLoop {
		// Closed loop: no rate clock — completions schedule arrivals, so
		// the stream exists even at a zero configured rate.
		e.spawnTerminals(typeIdx)
		return nil
	}
	_, rate := e.cfg.Generator.TypeInfo(typeIdx)
	if rate <= 0 {
		return nil
	}
	// One arrival-process instance per stream (processes carry state, e.g.
	// the MMPP state machine). Window-relative spec parameters are anchored
	// at the end of warm-up, the same clock FailureConfig.CrashAtMS uses.
	proc, err := e.cfg.Arrival.NewProcess(rate, e.cfg.WarmupMS)
	if err != nil {
		return err
	}
	e.s.Spawn(fmt.Sprintf("arrivals-%d", typeIdx), 0, func(p *sim.Process) {
		// arrive is the one closure the whole arrival stream reuses: each
		// firing admits a transaction and schedules itself after the gap
		// the arrival process draws.
		var arrive func()
		arrive = func() {
			if e.stopArrivals {
				return
			}
			tx := e.cfg.Generator.Next(typeIdx, e.genRnd)
			if len(tx.Accesses) > 0 {
				e.admitArrival(tx)
			}
			p.Hold(proc.NextGapMS(p.Now(), e.arrRnd), arrive)
		}
		p.Hold(proc.NextGapMS(p.Now(), e.arrRnd), arrive)
	})
	return nil
}

// spawnTerminals starts the closed-loop arrival mode for one transaction
// type: Terminals emulated users, each cycling think → submit → (completion)
// → think. The think time is exponential with mean ThinkMS, drawn from the
// arrival stream like open-loop gaps; the transaction itself comes from the
// workload stream, exactly as in the open-loop path. Closed-loop arrivals
// never hit the MaxQueue drop: the terminal population is the admission
// limit, and a "dropped" terminal would silently shrink it for the rest of
// the run.
func (e *node) spawnTerminals(typeIdx int) {
	spec := &e.cfg.Arrival
	e.closedLoop = true
	e.terminals += spec.Terminals
	for ti := 0; ti < spec.Terminals; ti++ {
		e.s.Spawn(fmt.Sprintf("terminal-%d-%d", typeIdx, ti), 0, func(p *sim.Process) {
			var think func()
			submit := func() {
				if e.stopArrivals {
					return
				}
				tx := e.cfg.Generator.Next(typeIdx, e.genRnd)
				if len(tx.Accesses) == 0 {
					think()
					return
				}
				e.startTx(tx, think)
			}
			think = func() {
				if e.stopArrivals {
					return
				}
				p.Hold(e.arrRnd.Exp(spec.ThinkMS), submit)
			}
			think()
		})
	}
}

// admitArrival routes one arrival: run it locally, or — while this node is
// down — reroute it to a surviving node (clients reconnect); with nobody
// running the arrival is lost, the cluster is unavailable.
func (e *node) admitArrival(tx workload.Tx) {
	if e.phase == nodeRunning {
		// Dropped arrivals count only inside the measurement window,
		// like commits and aborts.
		if e.mpl.QueueLen() >= e.cfg.MaxQueue {
			if e.warm {
				e.dropped++
				if c := e.classOf(tx.Type); c != nil {
					c.dropped++
				}
			}
			return
		}
		e.startTx(tx, nil)
		return
	}
	if pd := e.c.pdes; pd != nil {
		// The reconnect decision reads cluster-wide state (survivor
		// phases, queue lengths); under PDES it is taken at the next
		// barrier, one message latency later.
		pd.sendReroute(e, tx)
		return
	}
	target := e.c.reroute()
	switch {
	case target == nil:
		if e.warm {
			e.dropped++
			if c := e.classOf(tx.Type); c != nil {
				c.dropped++
			}
		}
	case e.c.shedReroute(target):
		// The admission controller sheds rerouted overflow instead of
		// queueing it behind the survivor's backlog.
		if e.warm {
			e.shed++
			if c := e.classOf(tx.Type); c != nil {
				c.shed++
			}
		}
	case target.mpl.QueueLen() >= target.cfg.MaxQueue:
		if e.warm {
			e.dropped++
			if c := e.classOf(tx.Type); c != nil {
				c.dropped++
			}
		}
	default:
		target.startTx(tx, nil)
	}
}

// txState names the continuation a txRun resumes into when its pending
// simulated delay elapses. A transaction has exactly one pending
// continuation at any instant, so a single dispatch closure plus this state
// tag replaces a fresh closure per blocking call.
type txState uint8

const (
	txStep     txState = iota // run the next access (or enter commit)
	txFixed                   // page fix completed
	txPhase1                  // EOT burst done: log + force writes
	txLogged                  // log write durable
	txFinish                  // force writes done: release and finish
	txLockMsg                 // lock-request pathlength charged: send it
	txLockSent                // round trip elapsed: deliver to the manager
	txAborted                 // release pathlength charged: release, retry
)

// txRun is one transaction's resumable state machine. Its continuations are
// bound once at spawn (instead of allocating fresh closures per access and
// per commit phase) and advance it through MPL admission, lock acquisition,
// page fixes and the two commit phases, restarting on deadlock aborts
// (access invariance: the restarted transaction repeats the same accesses).
type txRun struct {
	e       *node
	p       *sim.Process
	tx      workload.Tx
	txn     cc.TxnID
	arrival sim.Time
	fixTime sim.Time // cumulative I/O wait across all attempts
	start   sim.Time // current fix start
	i       int      // next access index
	state   txState
	relPaid bool // release-message pathlength charged (global locking)
	// dead marks a transaction killed by its node's crash: its locks are
	// already released and every later continuation must fall through
	// (pending kernel events cannot be unscheduled). Dead records are
	// never recycled.
	dead bool
	// done, when non-nil, runs after commit phase 2 releases the MPL slot
	// — the closed-loop completion hook that puts the submitting terminal
	// back into its think phase.
	done func()

	// Pending global lock request (txLockMsg/txLockSent) and the start of
	// the current conflicted wait.
	g         cc.Granule
	mode      cc.Mode
	waitStart sim.Time

	// mod is the reusable modified-page scratch ForcePages reads; valid
	// until the commit's force writes finish, rebuilt per commit.
	mod []storage.PageKey

	// Pre-bound continuations and the record's process identity, bound
	// once when the record is first allocated and reused across its whole
	// pooled lifetime.
	begin    func()
	admitted func(sim.Time)
	resume   func()
	locked   func(bool)
	granted  func()
	next     *txRun // freelist link
}

// getTx pops a recycled transaction record (resetting the per-transaction
// state its last run left behind) or allocates one with its process and
// continuations bound.
func (e *node) getTx() *txRun {
	t := e.freeTx
	if t == nil {
		t = &txRun{e: e, p: e.s.NewProcess("tx")}
		t.begin = t.onBegin
		t.admitted = t.onAdmitted
		t.resume = t.dispatch
		t.locked = t.onLocked
		t.granted = t.onGranted
		return t
	}
	e.freeTx = t.next
	t.next = nil
	t.fixTime, t.start = 0, 0
	t.dead = false
	return t
}

// putTx recycles a finished (never a dead) transaction record.
func (e *node) putTx(t *txRun) {
	t.done = nil
	t.tx = workload.Tx{}
	if poolPoison {
		t.txn = -1
		t.arrival, t.fixTime, t.start, t.waitStart = -1, -1, -1, -1
		t.i = -1
		t.state = txState(0xff)
		t.relPaid, t.dead = true, true
		t.g = cc.Granule{Partition: -1, ID: -1}
		for i := range t.mod {
			t.mod[i] = storage.PageKey{Partition: -1, Page: -1}
		}
	}
	t.mod = t.mod[:0]
	t.next = e.freeTx
	e.freeTx = t
}

// startTx launches one transaction on a pooled record: one +0 kernel
// event, exactly like the process spawn it replaces. done (when non-nil)
// runs after the transaction commits and frees its MPL slot.
func (e *node) startTx(tx workload.Tx, done func()) {
	e.startTxAt(0, tx, done)
}

// startTxAt is startTx with an arrival delay (PDES reroutes land at their
// message-arrival instant).
func (e *node) startTxAt(delay sim.Time, tx workload.Tx, done func()) {
	t := e.getTx()
	t.tx = tx
	t.done = done
	e.s.Schedule(delay, t.begin)
}

// onBegin runs at the transaction's arrival instant: request admission.
func (t *txRun) onBegin() {
	t.arrival = t.p.Now()
	t.e.mpl.Acquire(t.p, t.admitted)
}

// dispatch resumes the state the transaction parked in. A transaction
// killed by a crash resumes into nothing.
func (t *txRun) dispatch() {
	if t.dead {
		return
	}
	switch t.state {
	case txStep:
		t.doStep()
	case txFixed:
		t.onFixed()
	case txPhase1:
		t.doCommitPhase1()
	case txLogged:
		t.onLogged()
	case txFinish:
		t.finish()
	case txLockMsg:
		t.sendLockRequest()
	case txLockSent:
		t.deliverLockRequest()
	case txAborted:
		t.finishAbort()
	default:
		panic(fmt.Sprintf("core: txRun in invalid state %d", t.state))
	}
}

// onAdmitted starts the first attempt once an MPL slot is granted.
func (t *txRun) onAdmitted(sim.Time) {
	if t.dead {
		return
	}
	t.beginAttempt()
}

// beginAttempt starts one execution attempt under a fresh transaction id.
// The BOT burst guarantees simulated time advances between attempts.
func (t *txRun) beginAttempt() {
	t.txn = t.e.newTxn()
	t.i = 0
	t.state = txStep
	t.relPaid = false
	if t.e.c.trackActive {
		t.e.active[t.txn] = t
	}
	t.e.cpuBurst(t.p, t.e.cfg.InstrBOT, t.resume)
}

// doStep processes the next access, or enters commit once all are done.
func (t *txRun) doStep() {
	if t.i == len(t.tx.Accesses) {
		t.state = txPhase1
		t.e.cpuBurst(t.p, t.e.cfg.InstrEOT, t.resume)
		return
	}
	t.requestLock()
}

// onLocked continues after the lock decision: fix the page, or abort on
// deadlock. In a multi-node cluster a write fix first invalidates every
// other node's copy of the page (write-invalidate coherence).
func (t *txRun) onLocked(ok bool) {
	if t.dead {
		return
	}
	if !ok {
		t.abort() // deadlock victim
		return
	}
	acc := &t.tx.Accesses[t.i]
	key := storage.PageKey{Partition: acc.Partition, Page: acc.Page}
	if acc.Write {
		t.e.c.invalidate(t.e.id, key)
	}
	t.start = t.p.Now()
	t.state = txFixed
	t.e.bm.Fix(t.p, key, acc.Write, t.resume)
}

// onFixed accounts the fix delay and runs the per-access CPU burst. A fix
// straddling the warmup boundary is only credited its in-window part.
func (t *txRun) onFixed() {
	if t.e.warm {
		start := t.start
		if start < t.e.warmStartTime {
			start = t.e.warmStartTime
		}
		t.fixTime += t.p.Now() - start
	}
	t.i++
	t.state = txStep
	t.e.cpuBurst(t.p, t.e.cfg.InstrOR, t.resume)
}

// abort releases everything and retries the whole transaction. Under
// global locking the release message's pathlength is charged first.
func (t *txRun) abort() {
	if t.e.warm {
		t.e.aborts++
		if c := t.e.classOf(t.tx.Type); c != nil {
			c.aborts++
		}
	}
	if t.e.c.glocks != nil {
		// A crash during the release burst already released the locks (the
		// transaction was still registered as active); dispatch's dead
		// check drops the continuation then.
		t.state = txAborted
		t.e.cpuBurst(t.p, t.e.c.instrLockMsg, t.resume)
		return
	}
	t.finishAbort()
}

// finishAbort releases the aborted attempt's locks and retries.
func (t *txRun) finishAbort() {
	t.e.releaseLocks(t.txn)
	if t.e.c.trackActive {
		delete(t.e.active, t.txn)
	}
	t.beginAttempt()
}

// doCommitPhase1 runs after the EOT burst: log write and forced page writes
// for update transactions.
func (t *txRun) doCommitPhase1() {
	if !t.tx.Update() {
		t.finish()
		return
	}
	t.state = txLogged
	t.e.bm.WriteLog(t.p, t.resume)
}

// onLogged forces modified pages under FORCE, then finishes.
func (t *txRun) onLogged() {
	if t.e.cfg.Buffer.Force {
		t.state = txFinish
		t.e.bm.ForcePages(t.p, t.modifiedPages(), t.resume)
		return
	}
	t.finish()
}

// finish is commit phase 2: release locks, record measurements, free the
// MPL slot. Under global locking the release message's CPU pathlength is
// charged before the locks drop.
func (t *txRun) finish() {
	e := t.e
	if e.c.glocks != nil && !t.relPaid {
		t.relPaid = true
		t.state = txFinish
		e.cpuBurst(t.p, e.c.instrLockMsg, t.resume)
		return
	}
	e.releaseLocks(t.txn)
	if e.c.trackActive {
		delete(e.active, t.txn)
	}
	if e.warm {
		e.commits++
		e.resp.Add(t.p.Now() - t.arrival)
		e.ioWait.Add(t.fixTime)
		e.recordCommit(t.p.Now())
		if c := e.classOf(t.tx.Type); c != nil {
			c.commits++
			c.resp.Add(t.p.Now() - t.arrival)
		}
	}
	e.mpl.Release()
	done := t.done
	e.putTx(t)
	if done != nil {
		done()
	}
}

// recordCommit adds one committed transaction to the node's availability
// timeline (no-op unless the cluster configured a bucket width).
func (e *node) recordCommit(now sim.Time) {
	if e.c.timelineBucketMS <= 0 {
		return
	}
	idx := int((now - e.warmStartTime) / e.c.timelineBucketMS)
	if idx < 0 {
		return
	}
	for len(e.timeline) <= idx {
		e.timeline = append(e.timeline, 0)
	}
	e.timeline[idx]++
}

// modifiedPages returns the distinct pages the transaction wrote, in
// first-write order, in the record's reusable scratch (transactions write
// a handful of pages, so the linear dedup beats a fresh map).
func (t *txRun) modifiedPages() []storage.PageKey {
	out := t.mod[:0]
outer:
	for i := range t.tx.Accesses {
		acc := &t.tx.Accesses[i]
		if !acc.Write {
			continue
		}
		key := storage.PageKey{Partition: acc.Partition, Page: acc.Page}
		for _, k := range out {
			if k == key {
				continue outer
			}
		}
		out = append(out, key)
	}
	t.mod = out
	return out
}

// --- measurement ---

// snapshot opens the measurement window: counters guarded by warm start
// accumulating, and cumulative statistics (buffer, partition, lock, CPU
// busy integral, lock messages, peak input queue) are baselined so collect
// can report window deltas.
func (e *node) snapshot() {
	e.warm = true
	e.warmStartTime = e.s.Now()
	e.baseBuf = e.bm.Stats()
	e.basePart = e.bm.PartitionStats()
	if e.locks != nil {
		e.baseLocks = e.locks.Stats()
	}
	if e.c.glocks != nil {
		e.baseLockMsgs = e.c.glocks.Messages(e.id)
	}
	e.baseCPUBusy = e.cpu.BusyIntegral()
	e.baseInval = e.invalidations
	e.baseHandoffs = e.dirtyHandoffs
	e.baseQueueInt = e.mpl.QueueIntegral()
	e.mpl.ResetPeakQueueLen()
}

// collect reports the node's measurement-window metrics. Shared-device
// reports (disk units, NVEM utilization) are attached by the cluster.
func (e *node) collect() *Result {
	window := e.s.Now() - e.warmStartTime
	res := &Result{
		Commits: e.commits,
		Aborts:  e.aborts,
		Dropped: e.dropped,
		Shed:    e.shed,
	}
	for i := 0; i < e.cfg.Generator.NumTypes(); i++ {
		_, rate := e.cfg.Generator.TypeInfo(i)
		res.OfferedTPS += rate
	}
	if window > 0 {
		res.Throughput = float64(e.commits) / (window / 1000)
		res.CPUUtil = (e.cpu.BusyIntegral() - e.baseCPUBusy) / (float64(e.cfg.NumCPU) * window)
	}
	res.RespMean = e.resp.Mean()
	if e.resp.N() > 0 {
		res.RespP95 = e.resp.Percentile(0.95)
	}
	if e.commits > 0 {
		res.LockWaitMean = e.lockWait.Sum() / float64(e.commits)
		res.IOWaitMean = e.ioWait.Sum() / float64(e.commits)
	}
	// Saturation over the measured window. Open loop: drops are
	// window-only, and the peak queue length (not the instantaneous
	// end-of-run length, which a single lucky drain can hide) marks
	// sustained overload. A crash replaced the MPL resource, so the
	// pre-crash peak rides along. The half-MaxQueue threshold rounds up:
	// plain integer division would make it 0 for MaxQueue <= 1, flagging
	// such configs saturated even when the queue never forms.
	//
	// A closed loop can reach neither signal — terminals never drop, and
	// at most `terminals` transactions exist, usually far below MaxQueue —
	// so saturation is read off the sustained MPL occupancy instead: the
	// time-averaged input-queue length over the window, i.e. the mean
	// number of terminals waiting for an MPL slot. When half the terminal
	// population queues behind the MPL, response time is dominated by the
	// queue and adding terminals only adds waiting — the closed-loop
	// meaning of "offered load exceeds capacity".
	if e.closedLoop {
		res.Terminals = e.terminals
		res.ThinkMS = e.cfg.Arrival.ThinkMS
		if window > 0 && e.terminals > 0 {
			meanQueue := (e.mpl.QueueIntegral() - e.baseQueueInt) / window
			if meanQueue < 0 {
				meanQueue = 0
			}
			res.TerminalWaitFrac = meanQueue / float64(e.terminals)
		}
		res.Saturated = res.TerminalWaitFrac >= 0.5
	} else {
		peakQueue := e.mpl.PeakQueueLen()
		if e.peakBeforeCrash > peakQueue {
			peakQueue = e.peakBeforeCrash
		}
		res.Saturated = e.dropped > 0 || peakQueue >= (e.cfg.MaxQueue+1)/2
	}

	for i := range e.classes {
		c := &e.classes[i]
		cr := ClassReport{
			Name:    c.name,
			Commits: c.commits,
			Aborts:  c.aborts,
			Dropped: c.dropped,
			Shed:    c.shed,
		}
		cr.RespMean = c.resp.Mean()
		if c.resp.N() > 0 {
			cr.RespP95 = c.resp.Percentile(0.95)
		}
		res.Classes = append(res.Classes, cr)
	}

	res.Buffer = e.bm.Stats().Sub(e.baseBuf)
	if e.locks != nil {
		res.Locks = e.locks.Stats().Sub(e.baseLocks)
	}
	if e.c.glocks != nil {
		res.LockMsgs = e.c.glocks.Messages(e.id) - e.baseLockMsgs
	}
	if res.Buffer.Fixes > 0 {
		res.MMHitPct = 100 * float64(res.Buffer.MMHits) / float64(res.Buffer.Fixes)
		res.NVEMAddHitPct = 100 * float64(res.Buffer.NVEMCacheHits) / float64(res.Buffer.Fixes)
	}
	parts := e.bm.PartitionStats()
	for i := range parts {
		d := buffer.PartitionStats{
			Fixes:    parts[i].Fixes - e.basePart[i].Fixes,
			MMHits:   parts[i].MMHits - e.basePart[i].MMHits,
			NVEMHits: parts[i].NVEMHits - e.basePart[i].NVEMHits,
		}
		pr := PartitionReport{Name: e.cfg.Partitions[i].Name, Fixes: d.Fixes,
			MMHits: d.MMHits, NVEMHits: d.NVEMHits}
		if d.Fixes > 0 {
			pr.MMHitPct = 100 * float64(d.MMHits) / float64(d.Fixes)
			pr.NVEMHitPct = 100 * float64(d.NVEMHits) / float64(d.Fixes)
		}
		res.Partitions = append(res.Partitions, pr)
	}
	if e.c.timelineBucketMS > 0 {
		res.TimelineBucketMS = e.c.timelineBucketMS
		res.Timeline = make([]int64, e.c.timelineBuckets(len(e.timeline)))
		copy(res.Timeline, e.timeline)
	}
	return res
}
