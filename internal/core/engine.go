package core

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

// engine is one wired-up simulation instance.
type engine struct {
	cfg Config
	s   *sim.Sim

	cpu     *sim.Resource
	mpl     *sim.Resource
	nvem    *storage.NVEM
	units   []*storage.DiskUnit
	bm      *buffer.Manager
	locks   *cc.Manager
	waiting map[cc.TxnID]*sim.Process

	// Random streams: one per concern for reproducibility.
	cpuRnd  *rng.Stream
	genRnd  *rng.Stream
	arrRnd  *rng.Stream
	unitRnd *rng.Stream

	nextTxn cc.TxnID

	// Measurement.
	warm          bool
	resp          *stats.Summary
	lockWait      *stats.Summary
	ioWait        *stats.Summary
	commits       int64
	aborts        int64
	dropped       int64
	stopArrivals  bool
	baseBuf       buffer.Stats
	basePart      []buffer.PartitionStats
	baseLocks     cc.Stats
	baseCPUBusy   float64
	warmStartTime sim.Time
}

// Run executes one simulation described by cfg and returns its metrics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &engine{
		cfg:      cfg,
		s:        sim.New(),
		waiting:  make(map[cc.TxnID]*sim.Process),
		resp:     stats.NewSummary("response", true),
		lockWait: stats.NewSummary("lock-wait", false),
		ioWait:   stats.NewSummary("io-wait", false),
		cpuRnd:   rng.NewStream(cfg.Seed, "cpu"),
		genRnd:   rng.NewStream(cfg.Seed, "workload"),
		arrRnd:   rng.NewStream(cfg.Seed, "arrivals"),
		unitRnd:  rng.NewStream(cfg.Seed, "disk-units"),
	}
	e.cpu = e.s.NewResource("cpu", cfg.NumCPU)
	e.mpl = e.s.NewResource("mpl", cfg.MPL)

	for i := range cfg.DiskUnits {
		u, err := storage.NewDiskUnit(e.s, cfg.DiskUnits[i], e.unitRnd)
		if err != nil {
			return nil, err
		}
		e.units = append(e.units, u)
	}
	if cfg.Buffer.UsesNVEM() {
		nvem, err := storage.NewNVEM(e.s, cfg.NVEMServers, cfg.NVEMDelay)
		if err != nil {
			return nil, err
		}
		e.nvem = nvem
	}

	names := make([]string, len(cfg.Partitions))
	for i := range cfg.Partitions {
		names[i] = cfg.Partitions[i].Name
	}
	bm, err := buffer.New(cfg.Buffer, names, e.units, e.nvem, e)
	if err != nil {
		return nil, err
	}
	e.bm = bm
	e.locks = cc.NewManager(e.onLockGrant)

	// Arrival processes, one per transaction type.
	for i := 0; i < cfg.Generator.NumTypes(); i++ {
		e.spawnArrivals(i)
	}

	// Warm-up, snapshot, measure.
	e.s.Run(cfg.WarmupMS)
	e.snapshot()
	e.s.Run(cfg.WarmupMS + cfg.MeasureMS)
	res := e.collect()
	e.stopArrivals = true
	e.s.Shutdown()
	return res, nil
}

// --- buffer.Host implementation ---

// instrTime converts an exponentially drawn instruction count to CPU
// milliseconds (MIPS = thousand instructions per millisecond).
func (e *engine) instrTime(meanInstr float64) sim.Time {
	return e.cpuRnd.Exp(meanInstr) / (e.cfg.MIPS * 1000)
}

// cpuBurst runs an exponentially distributed instruction burst on a CPU.
func (e *engine) cpuBurst(p *sim.Process, meanInstr float64) {
	e.cpu.Use(p, e.instrTime(meanInstr))
}

// IOOverhead implements buffer.Host: the CPU pathlength of one I/O.
func (e *engine) IOOverhead(p *sim.Process) { e.cpuBurst(p, e.cfg.InstrIO) }

// SyncDeviceIO implements buffer.Host: the whole device access runs with
// the CPU held (AccessMode=synchronous, Table 3.3).
func (e *engine) SyncDeviceIO(p *sim.Process, fn func()) {
	e.cpu.Acquire(p)
	p.Hold(e.instrTime(e.cfg.InstrIO))
	fn()
	e.cpu.Release()
}

// NVEMTransfer implements buffer.Host: a synchronous NVEM page transfer —
// the CPU stays busy for the instruction overhead AND the transfer itself
// (a process switch would cost more than the 50µs delay, section 2).
func (e *engine) NVEMTransfer(p *sim.Process) {
	e.cpu.Acquire(p)
	p.Hold(e.instrTime(e.cfg.InstrNVEM))
	e.nvem.Access(p)
	e.cpu.Release()
}

// SpawnAsync implements buffer.Host.
func (e *engine) SpawnAsync(name string, fn func(p *sim.Process)) {
	e.s.Spawn(name, 0, fn)
}

// --- lock integration ---

func (e *engine) onLockGrant(txn cc.TxnID) {
	p, ok := e.waiting[txn]
	if !ok {
		return
	}
	delete(e.waiting, txn)
	e.s.Activate(p, 0)
}

// acquireLock requests the access's lock; it returns false on deadlock
// (the caller must abort). It blocks while the request waits.
func (e *engine) acquireLock(p *sim.Process, txn cc.TxnID, acc *workload.Access) bool {
	granularity := e.cfg.CCModes[acc.Partition]
	if granularity == cc.NoCC {
		return true
	}
	id := acc.Page
	if granularity == cc.ObjectLevel {
		id = acc.Object
	}
	mode := cc.Read
	if acc.Write {
		mode = cc.Write
	}
	switch e.locks.Acquire(txn, cc.Granule{Partition: acc.Partition, ID: id}, mode) {
	case cc.Granted:
		return true
	case cc.Wait:
		start := p.Now()
		e.waiting[txn] = p
		p.Passivate()
		if e.warm {
			e.lockWait.Add(p.Now() - start)
		}
		return true
	default: // cc.Deadlock
		return false
	}
}

// --- workload arrival and transaction execution ---

func (e *engine) spawnArrivals(typeIdx int) {
	_, rate := e.cfg.Generator.TypeInfo(typeIdx)
	if rate <= 0 {
		return
	}
	meanInterarrival := 1000.0 / rate // ms
	e.s.Spawn(fmt.Sprintf("arrivals-%d", typeIdx), 0, func(p *sim.Process) {
		for !e.stopArrivals {
			p.Hold(e.arrRnd.Exp(meanInterarrival))
			if e.stopArrivals {
				return
			}
			tx := e.cfg.Generator.Next(typeIdx, e.genRnd)
			if len(tx.Accesses) == 0 {
				continue
			}
			if e.mpl.QueueLen() >= e.cfg.MaxQueue {
				e.dropped++
				continue
			}
			e.s.Spawn("tx", 0, func(tp *sim.Process) { e.runTx(tp, tx) })
		}
	})
}

// runTx executes one transaction to commit, restarting on deadlock aborts
// (access invariance: the restarted transaction repeats the same accesses).
func (e *engine) runTx(p *sim.Process, tx workload.Tx) {
	arrival := p.Now()
	e.mpl.Acquire(p)
	defer e.mpl.Release()

	fixTime := sim.Time(0)
	for {
		e.nextTxn++
		txn := e.nextTxn
		committed := e.attempt(p, txn, tx, &fixTime)
		if committed {
			break
		}
		if e.warm {
			e.aborts++
		}
		// Abort: release everything and retry. The fresh BOT burst below
		// guarantees simulated time advances between attempts.
		e.locks.ReleaseAll(txn)
	}

	if e.warm {
		e.commits++
		e.resp.Add(p.Now() - arrival)
		e.ioWait.Add(fixTime)
	}
}

// attempt runs one execution attempt of tx under transaction id txn.
// It returns false if the attempt was aborted by deadlock detection.
func (e *engine) attempt(p *sim.Process, txn cc.TxnID, tx workload.Tx, fixTime *sim.Time) bool {
	e.cpuBurst(p, e.cfg.InstrBOT)

	for i := range tx.Accesses {
		acc := &tx.Accesses[i]
		if !e.acquireLock(p, txn, acc) {
			return false // deadlock victim
		}
		start := p.Now()
		e.bm.Fix(p, storage.PageKey{Partition: acc.Partition, Page: acc.Page}, acc.Write)
		if e.warm {
			*fixTime += p.Now() - start
		}
		e.cpuBurst(p, e.cfg.InstrOR)
	}

	// Commit phase 1: EOT processing, log write, forced page writes.
	e.cpuBurst(p, e.cfg.InstrEOT)
	if tx.Update() {
		e.bm.WriteLog(p)
		if e.cfg.Buffer.Force {
			e.bm.ForcePages(p, modifiedPages(tx))
		}
	}
	// Commit phase 2: release locks.
	e.locks.ReleaseAll(txn)
	return true
}

// modifiedPages returns the distinct pages a transaction wrote, in first-
// write order.
func modifiedPages(tx workload.Tx) []storage.PageKey {
	seen := make(map[storage.PageKey]struct{}, len(tx.Accesses))
	var out []storage.PageKey
	for i := range tx.Accesses {
		acc := &tx.Accesses[i]
		if !acc.Write {
			continue
		}
		key := storage.PageKey{Partition: acc.Partition, Page: acc.Page}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, key)
	}
	return out
}

// --- measurement ---

func (e *engine) snapshot() {
	e.warm = true
	e.warmStartTime = e.s.Now()
	e.baseBuf = e.bm.Stats()
	e.basePart = e.bm.PartitionStats()
	e.baseLocks = e.locks.Stats()
	e.baseCPUBusy = e.cpu.BusyIntegral()
}

func (e *engine) collect() *Result {
	window := e.s.Now() - e.warmStartTime
	res := &Result{
		Commits: e.commits,
		Aborts:  e.aborts,
		Dropped: e.dropped,
	}
	for i := 0; i < e.cfg.Generator.NumTypes(); i++ {
		_, rate := e.cfg.Generator.TypeInfo(i)
		res.OfferedTPS += rate
	}
	if window > 0 {
		res.Throughput = float64(e.commits) / (window / 1000)
		res.CPUUtil = (e.cpu.BusyIntegral() - e.baseCPUBusy) / (float64(e.cfg.NumCPU) * window)
	}
	res.RespMean = e.resp.Mean()
	if e.resp.N() > 0 {
		res.RespP95 = e.resp.Percentile(0.95)
	}
	if e.commits > 0 {
		res.LockWaitMean = e.lockWait.Sum() / float64(e.commits)
		res.IOWaitMean = e.ioWait.Sum() / float64(e.commits)
	}
	res.Saturated = e.dropped > 0 || e.mpl.QueueLen() >= e.cfg.MaxQueue/2

	res.Buffer = subBufferStats(e.bm.Stats(), e.baseBuf)
	res.Locks = subLockStats(e.locks.Stats(), e.baseLocks)
	if res.Buffer.Fixes > 0 {
		res.MMHitPct = 100 * float64(res.Buffer.MMHits) / float64(res.Buffer.Fixes)
		res.NVEMAddHitPct = 100 * float64(res.Buffer.NVEMCacheHits) / float64(res.Buffer.Fixes)
	}
	parts := e.bm.PartitionStats()
	for i := range parts {
		d := buffer.PartitionStats{
			Fixes:    parts[i].Fixes - e.basePart[i].Fixes,
			MMHits:   parts[i].MMHits - e.basePart[i].MMHits,
			NVEMHits: parts[i].NVEMHits - e.basePart[i].NVEMHits,
		}
		pr := PartitionReport{Name: e.cfg.Partitions[i].Name, Fixes: d.Fixes}
		if d.Fixes > 0 {
			pr.MMHitPct = 100 * float64(d.MMHits) / float64(d.Fixes)
			pr.NVEMHitPct = 100 * float64(d.NVEMHits) / float64(d.Fixes)
		}
		res.Partitions = append(res.Partitions, pr)
	}
	for i, u := range e.units {
		res.Units = append(res.Units, UnitReport{
			Name:            e.cfg.DiskUnits[i].Name,
			Type:            e.cfg.DiskUnits[i].Type,
			Stats:           u.Stats(),
			DiskUtilization: u.DiskUtilization(),
			CtrlUtilization: u.ControllerUtilization(),
		})
	}
	if e.nvem != nil {
		res.NVEMUtil = e.nvem.Utilization()
	}
	return res
}
