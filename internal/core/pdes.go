package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"repro/internal/cc"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Conservative parallel discrete-event simulation of a cluster run.
//
// Each node becomes one logical process with its own kernel, disk units and
// NVEM; the only interactions that cross node boundaries — global
// lock-manager traffic, write-invalidate coherence, shared-NVEM-cache
// probes and destages, and crash rerouting — already pay a message latency
// in the model: LockMsgDelayMS for lock traffic and rerouting,
// NVEMAccessDelayMS for coherence traffic against a shared NVEM cache. The
// smaller of the two is the lookahead: every kernel can safely run
// [T, T+lookahead] without seeing its peers, because anything a peer sends
// during that window arrives strictly after T+lookahead's window began. The
// coordinator therefore alternates two steps: deliver all messages whose
// arrival falls inside the next window (single-threaded, sorted by
// (arrive, sender, sender-sequence) so the schedule is independent of the
// worker count), then let every kernel run the window in parallel (the
// spin-then-park barrier in barrier.go).
//
// Determinism contract: a PDES run's per-node Results are identical for
// every Workers value, because cross-node state is only touched at
// barriers, in sorted order, on the coordinator. PDES is not event-for-
// event identical to the coupled single-kernel mode — the coupled mode
// resolves lock verdicts, invalidations and shared-cache probes
// instantaneously at shared state, which has zero lookahead by
// construction.

// PDESConfig switches a cluster run to the conservative parallel engine.
type PDESConfig struct {
	Enabled bool
	// Workers caps the kernel-executing goroutines (0 = GOMAXPROCS,
	// further capped by the node count). Results are identical for every
	// value; 1 runs the windows inline.
	Workers int
}

// validate checks the parallel-engine description.
func (p *PDESConfig) validate() error {
	if p.Workers < 0 {
		return fmt.Errorf("core: PDES Workers = %d", p.Workers)
	}
	return nil
}

// pdesMsgKind tags one cross-node message.
type pdesMsgKind uint8

const (
	pdesLockReq pdesMsgKind = iota
	pdesLockRelease
	pdesInvalidate
	pdesReroute
	pdesNVEMProbe
	pdesNVEMPut
)

// pdesMsg is one cross-node event in flight: sent by node from's logical
// process during a window, applied by the coordinator at the barrier
// preceding the window its arrival time falls into. seq is a per-sender
// sequence number; (arrive, from, seq) totally orders every batch.
type pdesMsg struct {
	kind   pdesMsgKind
	from   int
	seq    uint64
	arrive sim.Time

	// Lock traffic.
	txn  cc.TxnID
	g    cc.Granule
	mode cc.Mode
	k    func(bool)

	// Coherence / shared-cache traffic.
	key   storage.PageKey
	dirty bool
	nk    func(hit, dirty bool)

	// Rerouted arrival.
	tx workload.Tx
}

// pdesState is the coordinator of a parallel cluster run: the per-node
// kernels, the in-flight messages and the worker pool.
type pdesState struct {
	c         *cluster
	kernels   []*sim.Sim
	lookahead sim.Time
	workers   int

	// lockDelay is the latency of lock-manager and reroute messages;
	// cohDelay the latency of coherence traffic (invalidations and shared-
	// NVEM-cache probes/destages). Without a shared cache both equal the
	// lookahead; with one, lookahead = min(lockDelay, cohDelay), so every
	// message still arrives at or after the next window's start.
	lockDelay sim.Time
	cohDelay  sim.Time

	// outboxes[i] collects node i's messages during a window; only node
	// i's logical process appends, so windows need no message locking.
	// Slices are reused across windows.
	outboxes [][]pdesMsg
	seqs     []uint64
	inbox    []pdesMsg // reusable merge buffer, coordinator-only

	// pending counts queued messages across all outboxes, so an empty
	// barrier skips the merge entirely (O(1) instead of sweeping every
	// outbox per window). Atomic: senders append from parallel kernels.
	pending atomic.Int64

	// msgTime is the arrival instant of the message currently being
	// applied at a barrier. Grant callbacks fired by the global lock
	// manager during a release read it to timestamp the wakeup.
	msgTime sim.Time

	barrier *pdesBarrier // non-nil when workers > 1
}

// newPDES builds the per-node kernels and (for Workers > 1) the persistent
// worker pool. lookahead must be positive — it is the resolved message
// latency floor of the cluster.
func newPDES(c *cluster, numNodes int, lookahead sim.Time, workers int) *pdesState {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numNodes {
		workers = numNodes
	}
	pd := &pdesState{
		c:         c,
		lookahead: lookahead,
		lockDelay: lookahead,
		cohDelay:  lookahead,
		workers:   workers,
		kernels:   make([]*sim.Sim, numNodes),
		outboxes:  make([][]pdesMsg, numNodes),
		seqs:      make([]uint64, numNodes),
	}
	for i := range pd.kernels {
		pd.kernels[i] = sim.New()
	}
	if pd.workers > 1 {
		pd.barrier = newPDESBarrier(pd.kernels, pd.workers)
	}
	return pd
}

// stop shuts the worker pool down (idempotent).
func (pd *pdesState) stop() {
	if pd.barrier != nil {
		pd.barrier.stop()
	}
}

// run drives the phase schedule: windows of one lookahead, a message
// barrier before each. Phase transitions (window snapshot, crash
// injection) run on the coordinator at their exact boundary — every kernel
// sits precisely at the boundary then, because sim.Run lands the clock on
// its horizon even when a kernel drains early.
func (pd *pdesState) run(steps []phaseStep) {
	now := sim.Time(0)
	for _, st := range steps {
		for now < st.at {
			w := now + pd.lookahead
			if w > st.at {
				w = st.at
			}
			pd.deliver()
			pd.runWindow(w)
			now = w
		}
		if st.run != nil {
			st.run()
		}
	}
	pd.stop()
}

// runWindow advances every kernel to w.
func (pd *pdesState) runWindow(w sim.Time) {
	if pd.barrier != nil {
		pd.barrier.runWindow(w)
		return
	}
	for _, k := range pd.kernels {
		k.Run(w)
	}
}

// send queues one message from its sender's logical process. Called only
// from the sending node's kernel (or from the coordinator at a barrier,
// e.g. crash-time lock releases — outbox and sequence slots are per-node
// either way, so only the pending count needs an atomic).
func (pd *pdesState) send(m pdesMsg) {
	pd.seqs[m.from]++
	m.seq = pd.seqs[m.from]
	pd.outboxes[m.from] = append(pd.outboxes[m.from], m)
	pd.pending.Add(1)
}

// sendLockReq ships a lock request to the global lock manager; the verdict
// materializes at the message's arrival.
func (pd *pdesState) sendLockReq(e *node, txn cc.TxnID, g cc.Granule, mode cc.Mode, k func(bool)) {
	pd.send(pdesMsg{kind: pdesLockReq, from: e.id, arrive: e.s.Now() + pd.lockDelay,
		txn: txn, g: g, mode: mode, k: k})
}

// sendLockRelease ships a one-way release of every lock txn holds.
func (pd *pdesState) sendLockRelease(e *node, txn cc.TxnID) {
	pd.send(pdesMsg{kind: pdesLockRelease, from: e.id, arrive: e.s.Now() + pd.lockDelay, txn: txn})
}

// sendInvalidate broadcasts a write-invalidation for key.
func (pd *pdesState) sendInvalidate(e *node, key storage.PageKey) {
	pd.send(pdesMsg{kind: pdesInvalidate, from: e.id, arrive: e.s.Now() + pd.cohDelay, key: key})
}

// sendReroute ships an arrival that hit a non-running node to the
// coordinator; the reconnect decision needs cluster-wide state (survivor
// phases, queue lengths) and is taken at the barrier.
func (pd *pdesState) sendReroute(e *node, tx workload.Tx) {
	pd.send(pdesMsg{kind: pdesReroute, from: e.id, arrive: e.s.Now() + pd.lockDelay, tx: tx})
}

// sendNVEMProbe ships a shared-NVEM-cache lookup; the verdict (and, under
// NOFORCE, the promoted copy's dirty bit) materializes at the message's
// arrival on the requesting node.
func (pd *pdesState) sendNVEMProbe(e *node, key storage.PageKey, nk func(hit, dirty bool)) {
	pd.send(pdesMsg{kind: pdesNVEMProbe, from: e.id, arrive: e.s.Now() + pd.cohDelay, key: key, nk: nk})
}

// sendNVEMPut ships a one-way page insert into the shared NVEM cache
// (victim migration, FORCE destage, or a coherence hand-off).
func (pd *pdesState) sendNVEMPut(e *node, key storage.PageKey, dirty bool) {
	pd.send(pdesMsg{kind: pdesNVEMPut, from: e.id, arrive: e.s.Now() + pd.cohDelay, key: key, dirty: dirty})
}

// deliver merges every outbox and applies the batch in (arrive, from, seq)
// order. All pending arrivals fall inside the window about to run: a
// message sent at T travels at least one lookahead, and windows are at
// most one lookahead wide. When no node sent anything the barrier is
// empty and the merge is skipped outright.
func (pd *pdesState) deliver() {
	if pd.pending.Load() == 0 {
		return
	}
	pd.pending.Store(0)
	batch := pd.inbox[:0]
	for i := range pd.outboxes {
		batch = append(batch, pd.outboxes[i]...)
		pd.outboxes[i] = pd.outboxes[i][:0]
	}
	sort.Slice(batch, func(i, j int) bool {
		a, b := &batch[i], &batch[j]
		if a.arrive != b.arrive {
			return a.arrive < b.arrive
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.seq < b.seq
	})
	for i := range batch {
		pd.dispatch(&batch[i])
	}
	for i := range batch {
		batch[i] = pdesMsg{} // drop closure references before reuse
	}
	pd.inbox = batch[:0]
}

// dispatch applies one message on the coordinator.
func (pd *pdesState) dispatch(m *pdesMsg) {
	c := pd.c
	pd.msgTime = m.arrive
	switch m.kind {
	case pdesLockReq:
		e := c.nodes[m.from]
		if c.trackActive {
			// The sender crashed while the request was in flight: the
			// transaction is dead and its locks already released; the
			// request must not reach the manager (see acquireLock).
			if _, alive := e.active[m.txn]; !alive {
				return
			}
		}
		k := m.k
		switch c.glocks.AcquireFrom(m.from, m.txn, m.g, m.mode) {
		case cc.Granted:
			e.s.Schedule(m.arrive-e.s.Now(), func() { k(true) })
		case cc.Wait:
			// Registered here, not via a kernel event: a release in the
			// same batch may grant this transaction before its kernel
			// runs again, and the grant must find the waiter.
			start := m.arrive
			e.waiting[m.txn] = func() {
				if e.warm {
					s := start
					if s < e.warmStartTime {
						s = e.warmStartTime
					}
					e.lockWait.Add(e.s.Now() - s)
				}
				k(true)
			}
		default: // cc.Deadlock
			e.s.Schedule(m.arrive-e.s.Now(), func() { k(false) })
		}
	case pdesLockRelease:
		// Grant cascades fire c.glocks' callback synchronously; the PDES
		// branch of onLockGrant timestamps them with msgTime.
		c.glocks.ReleaseAllFrom(m.from, m.txn)
	case pdesInvalidate:
		for _, n := range c.nodes {
			if n.id == m.from {
				continue
			}
			n, key := n, m.key
			n.s.Schedule(m.arrive-n.s.Now(), func() {
				if had, dirty := n.bm.Invalidate(key); had {
					n.invalidations++
					if dirty {
						n.dirtyHandoffs++
					}
				}
			})
		}
	case pdesReroute:
		// Same decision chain as the coupled rerouter (admitArrival),
		// taken at the barrier where survivor state is coherent. Drops
		// and sheds count against the node whose arrival it was.
		e := c.nodes[m.from]
		target := c.reroute()
		switch {
		case target == nil:
			if e.warm {
				e.dropped++
			}
		case c.shedReroute(target):
			if e.warm {
				e.shed++
			}
		case target.mpl.QueueLen() >= target.cfg.MaxQueue:
			if e.warm {
				e.dropped++
			}
		default:
			target.startTxAt(m.arrive-target.s.Now(), m.tx, nil)
		}
	case pdesNVEMProbe:
		// Shared-cache lookup on the requester's behalf. The cache is
		// examined (and, under NOFORCE, the copy removed) here at the
		// barrier in arrival order — equivalent to examining it at the
		// arrival instant, because every shared-cache mutation happens at
		// barriers in the same total order. The verdict reaches the
		// requesting kernel at the arrival instant.
		e := c.nodes[m.from]
		hit, dirty := e.bm.ApplySharedProbe(m.key)
		nk := m.nk
		e.s.Schedule(m.arrive-e.s.Now(), func() { nk(hit, dirty) })
	case pdesNVEMPut:
		// One-way insert; an evicted deferred-dirty frame destages on the
		// sender's (quiescent) kernel, mirroring the coupled mode where
		// whoever's Put triggers the eviction pays the destage.
		c.nodes[m.from].bm.ApplySharedPut(m.key, m.dirty)
	}
}

// pdesNVEMBus routes one node's shared-NVEM-cache operations over the
// message layer; it implements buffer.RemoteNVEMCache.
type pdesNVEMBus struct {
	pd *pdesState
	e  *node
}

func (b *pdesNVEMBus) Probe(key storage.PageKey, k func(hit, dirty bool)) {
	b.pd.sendNVEMProbe(b.e, key, k)
}

func (b *pdesNVEMBus) Put(key storage.PageKey, dirty bool) {
	b.pd.sendNVEMPut(b.e, key, dirty)
}
