package core

import (
	"sort"

	"repro/internal/sim"
)

// This file is the engine's run controller. A simulation is no longer a
// hard-coded warmup→measure pair of kernel runs: it is a sorted schedule
// of phase boundaries, each advancing the kernel to a timestamp and then
// performing a transition (open the measurement window, inject a node
// crash, ...). Crash/restart is just one more boundary plus the kernel
// events it schedules, and each node tracks its own lifecycle phase
// (running → crashed → recovering → rejoined-as-running) independently
// of the cluster-wide schedule.

// nodePhase is one node's lifecycle state.
type nodePhase uint8

const (
	// nodeRunning: the node accepts arrivals and executes transactions.
	// A recovered node returns here when it rejoins.
	nodeRunning nodePhase = iota
	// nodeCrashed: volatile state lost; arrivals reroute to survivors.
	nodeCrashed
	// nodeRecovering: reboot finished, redo recovery in progress.
	nodeRecovering
)

func (p nodePhase) String() string {
	switch p {
	case nodeRunning:
		return "running"
	case nodeCrashed:
		return "crashed"
	default:
		return "recovering"
	}
}

// phaseStep is one boundary of the run schedule: advance simulated time
// to at, then run the transition.
type phaseStep struct {
	name string
	at   sim.Time
	run  func()
}

// phases builds the run schedule: the measurement-window snapshot at the
// end of warm-up, an optional crash injection inside the window, and the
// end-of-run boundary. Steps are sorted by time (stable, so equal-time
// steps keep their declaration order).
func (c *cluster) phases() []phaseStep {
	steps := []phaseStep{
		{name: "measure", at: c.warmup, run: c.openWindow},
	}
	if c.failure.Enabled {
		steps = append(steps, phaseStep{
			name: "crash",
			at:   c.warmup + c.failure.CrashAtMS,
			run:  c.injectCrash,
		})
	}
	steps = append(steps, phaseStep{name: "end", at: c.warmup + c.measure})
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].at < steps[j].at })
	return steps
}

// runPhases executes the schedule: every event up to each boundary fires
// before the boundary's transition runs (events exactly at the boundary
// included), exactly like the former monolithic warmup→measure flow.
// Under PDES the parallel coordinator advances the per-node kernels in
// lookahead windows between the same boundaries (pdes.go).
func (c *cluster) runPhases() {
	steps := c.phases()
	if c.pdes != nil {
		c.pdes.run(steps)
		return
	}
	for _, st := range steps {
		c.s.Run(st.at)
		if st.run != nil {
			st.run()
		}
	}
}

// openWindow starts the measurement window on every node and baselines
// the cluster-wide counters.
func (c *cluster) openWindow() {
	for _, n := range c.nodes {
		n.snapshot()
	}
	if c.glocks != nil {
		c.baseGlobal = c.glocks.Stats()
	}
}

// injectCrash fails the configured node at the current instant.
func (c *cluster) injectCrash() {
	c.nodes[c.failure.Node].crashNow(c.failure.RebootMS)
}
