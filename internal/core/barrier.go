// This file is a sanctioned concurrency seam: the PDES window barrier.
// It spawns the persistent worker pool and synchronizes it with atomics
// and park/wake channels. Determinism is proven by the worker-count
// invariance tests in pdes_test.go (every kernel runs on exactly one
// goroutine per window; cross-node state moves only at barriers).
//
//detlint:allow rawgo persistent PDES worker pool; kernels are claimed exclusively per window and the coordinator observes quiescence before touching cross-node state (TestPDESWorkerCountInvariant)
package core

import (
	"runtime"
	"sync/atomic"

	"repro/internal/sim"
)

// pdesBarrier is the low-overhead window barrier of the parallel engine:
// a persistent pool of workers that advance the per-node kernels to each
// window horizon, synchronized by an epoch counter instead of per-window
// channel round trips.
//
// The coordinator publishes a window by resetting the claim counter and
// bumping the epoch; workers observe the new epoch (spinning briefly, then
// parking), dynamically claim kernels off the shared atomic counter, and
// the last one out wakes the coordinator. Dynamic claiming replaces the
// old static stride assignment, so a drained or crashed node's near-empty
// kernel cannot idle a whole stride of the pool — legal because each
// kernel is still run by exactly one goroutine per window, and the window
// schedule itself never depends on which goroutine ran which kernel.
//
// Parking uses the Dekker pattern: a worker flags itself parked, re-checks
// the epoch, and only then blocks on its wake channel; the coordinator
// bumps the epoch first and only then wakes flagged workers. Either the
// worker sees the new epoch on its re-check, or the coordinator sees the
// flag and sends a token the buffered channel cannot lose. Stale tokens
// (worker unparked itself on the re-check) are absorbed by re-checking the
// epoch after every receive.
//
// Memory ordering: kernel state written during window n is published to
// window n+1's (possibly different) claimer through the release/acquire
// chain live.Add(-1) → live.Load → epoch.Add → epoch.Load.
type pdesBarrier struct {
	kernels []*sim.Sim

	// window is the horizon of the published window; written by the
	// coordinator strictly before the epoch bump that publishes it.
	window sim.Time
	// quit is set (before the final epoch bump) to shut the pool down.
	quit    bool
	stopped bool

	epoch atomic.Uint64 // bumped once per window (and once to stop)
	claim atomic.Int64  // next kernel index to claim in this window
	live  atomic.Int64  // claimers still draining the current window

	// spinRounds bounds the yield-spin before a goroutine parks. Zero on
	// a single-CPU runtime: spinning there only steals the core from the
	// goroutine being waited on.
	spinRounds int

	parked []atomic.Bool   // parked[j]: worker j is (about to be) blocked
	wake   []chan struct{} // buffered(1) wake tokens, one per worker

	coordParked atomic.Bool
	coordWake   chan struct{}
}

// newPDESBarrier starts workers-1 pool goroutines; the coordinator itself
// is the remaining claimer, so `workers` goroutines drain every window.
func newPDESBarrier(kernels []*sim.Sim, workers int) *pdesBarrier {
	b := &pdesBarrier{
		kernels:   kernels,
		parked:    make([]atomic.Bool, workers-1),
		wake:      make([]chan struct{}, workers-1),
		coordWake: make(chan struct{}, 1),
	}
	if runtime.GOMAXPROCS(0) > 1 {
		b.spinRounds = 64
	}
	for j := range b.wake {
		b.wake[j] = make(chan struct{}, 1)
		go b.worker(j)
	}
	return b
}

// runWindow advances every kernel to w using the whole pool, returning
// once all kernels sit exactly at w.
func (b *pdesBarrier) runWindow(w sim.Time) {
	b.window = w
	b.claim.Store(0)
	b.live.Store(int64(len(b.wake)) + 1)
	b.epoch.Add(1)
	b.wakeWorkers()
	b.drain(w)
	if b.live.Add(-1) > 0 {
		b.awaitIdle()
	}
}

// drain claims kernels off the shared counter until none remain.
func (b *pdesBarrier) drain(w sim.Time) {
	for {
		i := int(b.claim.Add(1)) - 1
		if i >= len(b.kernels) {
			return
		}
		b.kernels[i].Run(w)
	}
}

// stop shuts the pool down (idempotent). Workers observe the epoch bump,
// see quit, and exit.
func (b *pdesBarrier) stop() {
	if b.stopped {
		return
	}
	b.stopped = true
	b.quit = true
	b.epoch.Add(1)
	b.wakeWorkers()
}

// wakeWorkers sends a token to every worker flagged parked. The buffered
// channel makes the send non-blocking and lossless: a full buffer means a
// token is already waiting.
func (b *pdesBarrier) wakeWorkers() {
	for j := range b.parked {
		if b.parked[j].Load() {
			select {
			case b.wake[j] <- struct{}{}:
			default:
			}
		}
	}
}

// worker is one pool goroutine: await the next epoch, drain the window,
// and wake the coordinator when last out.
func (b *pdesBarrier) worker(j int) {
	var seen uint64
	for {
		seen = b.awaitEpoch(j, seen)
		if b.quit {
			return
		}
		b.drain(b.window)
		if b.live.Add(-1) == 0 && b.coordParked.Load() {
			select {
			case b.coordWake <- struct{}{}:
			default:
			}
		}
	}
}

// awaitEpoch blocks worker j until the epoch moves past seen, spinning
// briefly before parking.
func (b *pdesBarrier) awaitEpoch(j int, seen uint64) uint64 {
	for {
		for s := 0; s <= b.spinRounds; s++ {
			if e := b.epoch.Load(); e != seen {
				return e
			}
			if s < b.spinRounds {
				runtime.Gosched()
			}
		}
		b.parked[j].Store(true)
		if e := b.epoch.Load(); e != seen {
			b.parked[j].Store(false)
			return e
		}
		<-b.wake[j]
		b.parked[j].Store(false)
	}
}

// awaitIdle blocks the coordinator until every claimer has left the
// current window, spinning briefly before parking (symmetric to
// awaitEpoch, with live==0 as the wake condition).
func (b *pdesBarrier) awaitIdle() {
	for {
		for s := 0; s <= b.spinRounds; s++ {
			if b.live.Load() == 0 {
				return
			}
			if s < b.spinRounds {
				runtime.Gosched()
			}
		}
		b.coordParked.Store(true)
		if b.live.Load() == 0 {
			b.coordParked.Store(false)
			return
		}
		<-b.coordWake
		b.coordParked.Store(false)
	}
}
