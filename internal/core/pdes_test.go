package core

import (
	"reflect"
	"testing"
)

// pdesCluster builds a PDES-enabled Debit-Credit cluster over the
// dcCluster template (global locking on, shared NVEM off).
func pdesCluster(t *testing.T, nodes int, aggregateRate float64, workers int) ClusterConfig {
	t.Helper()
	cfg := dcCluster(t, nodes, aggregateRate, false)
	cfg.PDES = PDESConfig{Enabled: true, Workers: workers}
	return cfg
}

// pdesSharedCluster builds a PDES cluster with the cluster-shared NVEM
// cache and the positive access latency that makes it parallelizable.
func pdesSharedCluster(t *testing.T, nodes int, aggregateRate float64, workers int) ClusterConfig {
	t.Helper()
	cfg := dcCluster(t, nodes, aggregateRate, true)
	cfg.PDES = PDESConfig{Enabled: true, Workers: workers}
	cfg.NVEMAccessDelayMS = 0.15
	return cfg
}

// runPDES executes one PDES cluster run.
func runPDES(t *testing.T, cfg ClusterConfig) *ClusterResult {
	t.Helper()
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPDESWorkerCountInvariant is the parallel engine's determinism pin: a
// serial coordinator (Workers = 1) and a parallel one must produce
// identical per-node Results — cross-node state is only touched at
// barriers, in (arrive, sender, seq) order, independent of which goroutine
// ran which kernel.
func TestPDESWorkerCountInvariant(t *testing.T) {
	serial := runPDES(t, pdesCluster(t, 3, 300, 1))
	if serial.Cluster.Commits == 0 {
		t.Fatal("PDES run produced no commits")
	}
	if serial.Cluster.LockMsgs == 0 {
		t.Fatal("global locking under PDES produced no messages")
	}
	for _, workers := range []int{2, 4, 0} {
		parallel := runPDES(t, pdesCluster(t, 3, 300, workers))
		for i := range serial.Nodes {
			if !reflect.DeepEqual(serial.Nodes[i], parallel.Nodes[i]) {
				t.Fatalf("workers=%d: node %d diverged from the serial run:\n%+v\nvs\n%+v",
					workers, i, parallel.Nodes[i], serial.Nodes[i])
			}
		}
		if got, want := parallel.Report(), serial.Report(); got != want {
			t.Fatalf("workers=%d: report diverged:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestPDESFailureWorkerCountInvariant extends the worker-count pin across
// the hardest schedule: a mid-window crash whose arrivals reroute through
// barrier messages, admission shedding on the survivors, in-flight lock
// requests of killed transactions, and redo recovery on the crashed node's
// own kernel.
func TestPDESFailureWorkerCountInvariant(t *testing.T) {
	build := func(workers int) ClusterConfig {
		cfg := pdesCluster(t, 3, 360, workers)
		cfg.Base.Buffer.CheckpointIntervalMS = 1000
		cfg.Failure = FailureConfig{Enabled: true, Node: 1, CrashAtMS: 800, RebootMS: 600}
		cfg.Admission = AdmissionConfig{Enabled: true}
		cfg.TimelineBucketMS = 250
		return cfg
	}
	serial := runPDES(t, build(1))
	if serial.Cluster.Restart == nil {
		t.Fatal("crash injected but no restart report")
	}
	parallel := runPDES(t, build(4))
	for i := range serial.Nodes {
		if !reflect.DeepEqual(serial.Nodes[i], parallel.Nodes[i]) {
			t.Fatalf("node %d diverged across worker counts:\n%+v\nvs\n%+v",
				i, parallel.Nodes[i], serial.Nodes[i])
		}
	}
	if got, want := parallel.Report(), serial.Report(); got != want {
		t.Fatalf("failure-run report diverged:\n%s\nvs\n%s", got, want)
	}
	// The crashed node's outage must be visible: its arrivals rerouted to
	// the survivors, so it commits strictly less than either of them.
	for _, i := range []int{0, 2} {
		if serial.Nodes[1].Commits >= serial.Nodes[i].Commits {
			t.Fatalf("crashed node committed %d, survivor %d committed %d — no outage visible",
				serial.Nodes[1].Commits, i, serial.Nodes[i].Commits)
		}
	}
}

// TestPDESWorkerCountInvariant256 pins the determinism contract at the
// scale the barrier fast path exists for: 256 kernels, every supported
// worker count, short windows so the pin stays cheap enough for -race CI.
func TestPDESWorkerCountInvariant256(t *testing.T) {
	build := func(workers int) ClusterConfig {
		cfg := pdesCluster(t, 256, 2560, workers)
		cfg.Base.WarmupMS = 150
		cfg.Base.MeasureMS = 300
		return cfg
	}
	serial := runPDES(t, build(1))
	if serial.Cluster.Commits == 0 {
		t.Fatal("256-node PDES run produced no commits")
	}
	for _, workers := range []int{2, 4, 8} {
		parallel := runPDES(t, build(workers))
		for i := range serial.Nodes {
			if !reflect.DeepEqual(serial.Nodes[i], parallel.Nodes[i]) {
				t.Fatalf("workers=%d: node %d diverged from the serial run:\n%+v\nvs\n%+v",
					workers, i, parallel.Nodes[i], serial.Nodes[i])
			}
		}
		if got, want := parallel.Report(), serial.Report(); got != want {
			t.Fatalf("workers=%d: report diverged:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestPDESCrash256 is the 256-node crash scenario CI runs under the race
// detector: a mid-window crash with rerouted arrivals and redo recovery,
// replayed serially and on the full 8-worker barrier pool. Divergence or
// a data race here means the fast-path barrier broke the contract under
// the hardest schedule at full scale.
func TestPDESCrash256(t *testing.T) {
	build := func(workers int) ClusterConfig {
		cfg := pdesCluster(t, 256, 2560, workers)
		cfg.Base.WarmupMS = 150
		cfg.Base.MeasureMS = 300
		cfg.Base.Buffer.CheckpointIntervalMS = 200
		cfg.Failure = FailureConfig{Enabled: true, Node: 17, CrashAtMS: 200, RebootMS: 150}
		return cfg
	}
	serial := runPDES(t, build(1))
	if serial.Cluster.Restart == nil {
		t.Fatal("crash injected but no restart report")
	}
	parallel := runPDES(t, build(8))
	for i := range serial.Nodes {
		if !reflect.DeepEqual(serial.Nodes[i], parallel.Nodes[i]) {
			t.Fatalf("node %d diverged across worker counts:\n%+v\nvs\n%+v",
				i, parallel.Nodes[i], serial.Nodes[i])
		}
	}
	if got, want := parallel.Report(), serial.Report(); got != want {
		t.Fatalf("256-node crash report diverged:\n%s\nvs\n%s", got, want)
	}
}

// TestPDESSharedNVEMWorkerCountInvariant pins the newest cross-node
// traffic class — shared-NVEM-cache probes, inserts and dirty hand-offs
// travelling as lookahead messages — to the same worker-count contract,
// and checks the shared cache actually serves remote hits under PDES.
func TestPDESSharedNVEMWorkerCountInvariant(t *testing.T) {
	serial := runPDES(t, pdesSharedCluster(t, 3, 300, 1))
	if serial.Cluster.Commits == 0 {
		t.Fatal("shared-NVEM PDES run produced no commits")
	}
	if serial.Cluster.Buffer.NVEMCacheHits == 0 {
		t.Fatal("shared NVEM cache under PDES served no hits")
	}
	if serial.Cluster.Invalidations == 0 {
		t.Fatal("write-invalidate coherence under PDES recorded no invalidations")
	}
	for _, workers := range []int{2, 4, 0} {
		parallel := runPDES(t, pdesSharedCluster(t, 3, 300, workers))
		for i := range serial.Nodes {
			if !reflect.DeepEqual(serial.Nodes[i], parallel.Nodes[i]) {
				t.Fatalf("workers=%d: node %d diverged from the serial run:\n%+v\nvs\n%+v",
					workers, i, parallel.Nodes[i], serial.Nodes[i])
			}
		}
		if got, want := parallel.Report(), serial.Report(); got != want {
			t.Fatalf("workers=%d: report diverged:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestPDESSharedNVEMRepeatable: the shared-cache configuration renders
// identical reports across two runs (the golden corpus relies on it).
func TestPDESSharedNVEMRepeatable(t *testing.T) {
	a := runPDES(t, pdesSharedCluster(t, 2, 200, 2))
	b := runPDES(t, pdesSharedCluster(t, 2, 200, 2))
	if ar, br := a.Report(), b.Report(); ar != br {
		t.Fatalf("shared-NVEM PDES runs diverged:\n%s\nvs\n%s", ar, br)
	}
}

// TestPDESRepeatable: two PDES runs of one configuration render identical
// reports (the cluster-level determinism the golden corpus relies on).
func TestPDESRepeatable(t *testing.T) {
	a := runPDES(t, pdesCluster(t, 2, 200, 2))
	b := runPDES(t, pdesCluster(t, 2, 200, 2))
	if ar, br := a.Report(), b.Report(); ar != br {
		t.Fatalf("PDES runs diverged:\n%s\nvs\n%s", ar, br)
	}
}

// TestPDESValidate covers the parallel engine's configuration checks.
func TestPDESValidate(t *testing.T) {
	bad := dcCluster(t, 2, 200, true) // shared NVEM cache, no access delay
	bad.PDES = PDESConfig{Enabled: true}
	if _, err := RunCluster(bad); err == nil {
		t.Fatal("PDES with a shared NVEM cache and NVEMAccessDelayMS = 0 must error")
	}
	bad.NVEMAccessDelayMS = -0.1
	if _, err := RunCluster(bad); err == nil {
		t.Fatal("negative NVEMAccessDelayMS must error")
	}
	ok := pdesSharedCluster(t, 2, 200, 1)
	if err := ok.Validate(); err != nil {
		t.Fatalf("PDES with a shared NVEM cache and a positive delay must validate: %v", err)
	}
	bad = pdesCluster(t, 2, 200, -1)
	if _, err := RunCluster(bad); err == nil {
		t.Fatal("negative Workers must error")
	}
}
