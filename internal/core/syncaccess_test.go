package core

import (
	"testing"
)

// TestSyncDiskAccessHoldsCPU: with AccessMode=synchronous on the database
// partitions, the CPU stays busy during the 16.4ms disk accesses, so CPU
// utilization rises far above the asynchronous configuration at the same
// load (the reason the paper defaults disks to asynchronous access).
func TestSyncDiskAccessHoldsCPU(t *testing.T) {
	asyncCfg := dcConfig(t, 100)
	asyncCfg.WarmupMS = 2000
	asyncCfg.MeasureMS = 8000
	asyncRes, err := Run(asyncCfg)
	if err != nil {
		t.Fatal(err)
	}

	syncCfg := dcConfig(t, 100)
	syncCfg.WarmupMS = 2000
	syncCfg.MeasureMS = 8000
	for i := range syncCfg.Buffer.Partitions {
		syncCfg.Buffer.Partitions[i].SyncAccess = true
	}
	syncRes, err := Run(syncCfg)
	if err != nil {
		t.Fatal(err)
	}

	// ~2 disk I/Os of 16.4ms per tx at 100 TPS is ~3.3 CPU-seconds/s held
	// across 4 CPUs ≈ +80% utilization.
	if syncRes.CPUUtil < asyncRes.CPUUtil*2 {
		t.Fatalf("sync CPU util %.3f vs async %.3f: synchronous access must hold the CPU",
			syncRes.CPUUtil, asyncRes.CPUUtil)
	}
	if syncRes.Commits == 0 {
		t.Fatal("no commits in synchronous mode")
	}
}
