package core

import (
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

// loopGen produces an endless stream of fixed-size read transactions over
// rotating pages — each one misses the tiny test buffer, so service time is
// disk-bound and predictable.
type loopGen struct {
	rate     float64
	accesses int
	page     int64
}

func (g *loopGen) NumTypes() int                  { return 1 }
func (g *loopGen) TypeInfo(int) (string, float64) { return "loop", g.rate }
func (g *loopGen) Next(_ int, _ *rng.Stream) workload.Tx {
	tx := workload.Tx{TypeName: "loop"}
	for j := 0; j < g.accesses; j++ {
		g.page = (g.page + 1) % 90_000
		tx.Accesses = append(tx.Accesses, access(g.page, false))
	}
	return tx
}

func closedLoopConfig(gen Generator, terminals int, thinkMS float64) Config {
	cfg := scriptConfig(&scriptGen{})
	cfg.Generator = gen
	cfg.Arrival = workload.ArrivalSpec{
		Kind:      workload.ArrivalClosedLoop,
		Terminals: terminals,
		ThinkMS:   thinkMS,
	}
	return cfg
}

// Generator is re-declared here to accept any generator in the helper.
type Generator = workload.Generator

// TestClosedLoopSaturationRegression pins the closed-loop saturation rule
// (the open-loop rule was unreachable: a closed loop never drops, and its
// at-most-`terminals` queue never nears MaxQueue/2). An overloaded closed
// loop — MPL 1, disk-bound transactions, negligible think time — keeps
// nearly every terminal waiting for the MPL slot, and must report
// Saturated even though both old signals stay silent.
func TestClosedLoopSaturationRegression(t *testing.T) {
	gen := &loopGen{accesses: 3}
	cfg := closedLoopConfig(gen, 16, 5)
	cfg.MPL = 1
	cfg.NumCPU = 1
	cfg.WarmupMS = 1000
	cfg.MeasureMS = 5000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both inputs of the open-loop rule must be absent, proving the old
	// derivation (dropped > 0 || peak >= MaxQueue/2) would report false.
	if res.Dropped != 0 {
		t.Fatalf("Dropped = %d: closed loop must never drop", res.Dropped)
	}
	if 16 >= (cfg.MaxQueue+1)/2 {
		t.Fatalf("test broken: %d terminals cannot stay below MaxQueue/2 = %d",
			16, (cfg.MaxQueue+1)/2)
	}
	if res.TerminalWaitFrac < 0.5 {
		t.Fatalf("TerminalWaitFrac = %.3f, want >= 0.5 under 16 terminals on MPL 1",
			res.TerminalWaitFrac)
	}
	if !res.Saturated {
		t.Fatal("Saturated not set for an overloaded closed loop")
	}
	if res.Terminals != 16 || res.ThinkMS != 5 {
		t.Fatalf("closed-loop config not reported: terminals=%d think=%v",
			res.Terminals, res.ThinkMS)
	}
	if res.Commits == 0 {
		t.Fatal("no commits: terminals are not cycling")
	}
	if !strings.Contains(res.Report(), "closed loop:") {
		t.Fatal("report lacks the closed-loop line")
	}
}

// TestClosedLoopLightLoadUnsaturated: a lightly loaded closed loop (long
// think, ample MPL) commits steadily, keeps terminals thinking rather than
// queueing, and must not be flagged saturated.
func TestClosedLoopLightLoadUnsaturated(t *testing.T) {
	gen := &loopGen{accesses: 1}
	cfg := closedLoopConfig(gen, 4, 500)
	cfg.WarmupMS = 1000
	cfg.MeasureMS = 8000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	if res.Saturated {
		t.Fatalf("Saturated set at TerminalWaitFrac = %.3f", res.TerminalWaitFrac)
	}
	if res.TerminalWaitFrac > 0.1 {
		t.Fatalf("TerminalWaitFrac = %.3f, want ~0 with MPL %d >> 4 terminals",
			res.TerminalWaitFrac, cfg.MPL)
	}
	// Closed-loop throughput law: N/(think + resp), within tolerance.
	want := 4.0 / (500 + res.RespMean) * 1000
	if res.Throughput < 0.7*want || res.Throughput > 1.3*want {
		t.Fatalf("throughput %.2f TPS, want ~%.2f (N/(Z+R))", res.Throughput, want)
	}
	// An open-loop line item: offered TPS is 0 (no rate clock).
	if res.OfferedTPS != 0 {
		t.Fatalf("OfferedTPS = %v for a closed loop", res.OfferedTPS)
	}
}

// TestClosedLoopDeterministic: two identical closed-loop runs produce
// byte-identical reports (the property the golden corpus relies on).
func TestClosedLoopDeterministic(t *testing.T) {
	run := func() string {
		cfg := closedLoopConfig(&loopGen{accesses: 2}, 8, 50)
		cfg.WarmupMS = 500
		cfg.MeasureMS = 2000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("closed-loop runs diverge:\n%s\nvs\n%s", a, b)
	}
}

// TestClosedLoopRejectsFailureInjection: a crash would strand terminals
// whose in-flight transactions die, silently shrinking the population.
func TestClosedLoopRejectsFailureInjection(t *testing.T) {
	base := closedLoopConfig(&loopGen{accesses: 1}, 4, 100)
	cfg := ClusterConfig{
		Base:     base,
		NumNodes: 2,
		Generators: []workload.Generator{
			&loopGen{accesses: 1}, &loopGen{accesses: 1},
		},
		Failure: FailureConfig{Enabled: true, Node: 0, CrashAtMS: 1000, RebootMS: 500},
	}
	if _, err := RunCluster(cfg); err == nil ||
		!strings.Contains(err.Error(), "closed-loop") {
		t.Fatalf("closed loop + failure injection accepted (err=%v)", err)
	}
}

// twoClassGen floods two transaction classes at independent rates with
// distinct page ranges and sizes, so drops under a tiny queue cap hit both.
type twoClassGen struct {
	rates [2]float64
	sizes [2]int
	page  [2]int64
}

func (g *twoClassGen) NumTypes() int { return 2 }
func (g *twoClassGen) TypeInfo(i int) (string, float64) {
	return [2]string{"alpha", "beta"}[i], g.rates[i]
}
func (g *twoClassGen) Next(i int, _ *rng.Stream) workload.Tx {
	tx := workload.Tx{Type: i, TypeName: [2]string{"alpha", "beta"}[i]}
	for j := 0; j < g.sizes[i]; j++ {
		g.page[i] = (g.page[i] + 1) % 40_000
		tx.Accesses = append(tx.Accesses, access(int64(i)*40_000+g.page[i], false))
	}
	return tx
}

// TestPerClassDropAttribution pins the per-class split of the Dropped
// counter: with two classes flooding a MPL-1 node behind a 2-slot queue,
// each class's drops land on its own ClassReport, the per-class counters
// sum exactly to the scalar aggregates, and the report gains the gated
// class lines.
func TestPerClassDropAttribution(t *testing.T) {
	gen := &twoClassGen{rates: [2]float64{150, 150}, sizes: [2]int{3, 3}}
	cfg := scriptConfig(&scriptGen{})
	cfg.Generator = gen
	cfg.MPL = 1
	cfg.NumCPU = 1
	cfg.MaxQueue = 2
	cfg.WarmupMS = 0
	cfg.MeasureMS = 6000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 2 {
		t.Fatalf("got %d class reports, want 2", len(res.Classes))
	}
	if res.Classes[0].Name != "alpha" || res.Classes[1].Name != "beta" {
		t.Fatalf("class names %q/%q", res.Classes[0].Name, res.Classes[1].Name)
	}
	var commits, aborts, dropped, shed int64
	for _, c := range res.Classes {
		if c.Dropped == 0 {
			t.Errorf("class %s reports no drops under sustained overload", c.Name)
		}
		if c.Commits == 0 {
			t.Errorf("class %s reports no commits", c.Name)
		}
		commits += c.Commits
		aborts += c.Aborts
		dropped += c.Dropped
		shed += c.Shed
	}
	if commits != res.Commits || aborts != res.Aborts || dropped != res.Dropped || shed != res.Shed {
		t.Fatalf("class sums diverge from scalars: commits %d/%d aborts %d/%d dropped %d/%d shed %d/%d",
			commits, res.Commits, aborts, res.Aborts, dropped, res.Dropped, shed, res.Shed)
	}
	if res.Dropped == 0 {
		t.Fatal("no drops at all: the test load is not overloading the queue")
	}
	rep := res.Report()
	if !strings.Contains(rep, "class alpha") || !strings.Contains(rep, "class beta") {
		t.Fatalf("report lacks per-class lines:\n%s", rep)
	}
}

// TestSingleClassReportUngated: single-type generators must not grow class
// lines (the gate that keeps every pre-existing golden byte-identical).
func TestSingleClassReportUngated(t *testing.T) {
	gen := &loopGen{rate: 50, accesses: 1}
	cfg := scriptConfig(&scriptGen{})
	cfg.Generator = gen
	cfg.WarmupMS = 500
	cfg.MeasureMS = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 0 {
		t.Fatalf("single-class run produced %d class reports", len(res.Classes))
	}
	if strings.Contains(res.Report(), "class ") {
		t.Fatal("single-class report grew class lines")
	}
}
