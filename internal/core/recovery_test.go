package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/workload"
)

// recoveryConfig is dcConfig plus the fuzzy-checkpoint daemon, with the
// log allocation swapped per variant.
func recoveryConfig(t *testing.T, logKind string) Config {
	t.Helper()
	cfg := dcConfig(t, 250)
	cfg.Buffer.CheckpointIntervalMS = 6000
	switch logKind {
	case "disk":
	case "ssd":
		cfg.DiskUnits[1] = storage.DiskUnitConfig{Name: "log", Type: storage.SSD,
			NumControllers: 2, ContrDelay: DefaultContrDelay, TransDelay: DefaultTransDelay}
	case "nvem":
		cfg.Buffer.Log = buffer.LogAlloc{NVEMResident: true}
	default:
		t.Fatalf("unknown log kind %q", logKind)
	}
	return cfg
}

// TestRestartOrderingByLogDevice pins the paper's core recovery claim:
// under an identical workload and checkpoint regime, restart time orders
// NVEM-resident log < SSD log < magnetic-disk log, because the redo log
// scan is device-bound.
func TestRestartOrderingByLogDevice(t *testing.T) {
	restart := func(kind string) *RestartReport {
		res, err := MeasureRestart(recoveryConfig(t, kind), 500)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		r := res.Restart
		if r == nil || !r.Recovered {
			t.Fatalf("%s: no completed restart: %+v", kind, r)
		}
		if r.Snapshot.LogPages == 0 {
			t.Fatalf("%s: empty redo log — checkpointing never let log accumulate?", kind)
		}
		return r
	}
	nvem := restart("nvem")
	ssd := restart("ssd")
	disk := restart("disk")
	if !(nvem.RestartMS < ssd.RestartMS && ssd.RestartMS < disk.RestartMS) {
		t.Fatalf("restart ordering violated: nvem=%.1f ssd=%.1f disk=%.1f ms",
			nvem.RestartMS, ssd.RestartMS, disk.RestartMS)
	}
	if !(nvem.EstimateMS < ssd.EstimateMS && ssd.EstimateMS < disk.EstimateMS) {
		t.Fatalf("analytic ordering violated: nvem=%.1f ssd=%.1f disk=%.1f ms",
			nvem.EstimateMS, ssd.EstimateMS, disk.EstimateMS)
	}
}

// TestMeasureRestartBreakdown: the simulated restart decomposes exactly
// into reboot + log scan + redo, the window metrics match a plain Run of
// the same configuration, and the report line renders.
func TestMeasureRestartBreakdown(t *testing.T) {
	cfg := recoveryConfig(t, "disk")
	res, err := MeasureRestart(cfg, 750)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Restart
	if r == nil || !r.Recovered {
		t.Fatalf("no restart report: %+v", r)
	}
	sum := r.RebootMS + r.LogScanMS + r.RedoMS
	if math.Abs(r.RestartMS-sum) > 1e-6 {
		t.Fatalf("restart %.6f != reboot+scan+redo %.6f", r.RestartMS, sum)
	}
	if r.RebootMS != 750 {
		t.Fatalf("reboot %v, want 750", r.RebootMS)
	}
	if r.Snapshot.RedoPages == 0 || r.Snapshot.Resident == 0 {
		t.Fatalf("empty crash snapshot: %+v", r.Snapshot)
	}
	if r.EstimateMS <= r.RebootMS {
		t.Fatalf("estimate %v prices no I/O", r.EstimateMS)
	}
	if !strings.Contains(res.Report(), "recovery:") {
		t.Fatalf("report misses the recovery line:\n%s", res.Report())
	}

	plain, err := Run(recoveryConfig(t, "disk"))
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != res.String() {
		t.Fatalf("restart measurement perturbed the window metrics:\n%s\nvs\n%s",
			plain.String(), res.String())
	}
}

// TestMeasureRestartValidates covers the error paths.
func TestMeasureRestartValidates(t *testing.T) {
	if _, err := MeasureRestart(Config{}, 0); err == nil {
		t.Fatal("invalid config must error")
	}
	if _, err := MeasureRestart(dcConfig(t, 100), -1); err == nil {
		t.Fatal("negative reboot must error")
	}
}

// failCluster builds a 2-node cluster with checkpointing, a node-0 crash
// mid-window and the commit timeline enabled.
func failCluster(t *testing.T, crashAt float64) ClusterConfig {
	t.Helper()
	cfg := dcCluster(t, 2, 300, true)
	cfg.Base.MeasureMS = 8000
	cfg.Base.Buffer.CheckpointIntervalMS = 1500
	cfg.Failure = FailureConfig{Enabled: true, Node: 0, CrashAtMS: crashAt, RebootMS: 200}
	cfg.TimelineBucketMS = 500
	return cfg
}

// TestClusterFailureValidate covers failure-injection validation.
func TestClusterFailureValidate(t *testing.T) {
	for name, mutate := range map[string]func(*ClusterConfig){
		"node out of range": func(c *ClusterConfig) { c.Failure.Node = 7 },
		"crash before window": func(c *ClusterConfig) {
			c.Failure.CrashAtMS = 0
			c.Failure.Enabled = true
		},
		"crash after window": func(c *ClusterConfig) { c.Failure.CrashAtMS = c.Base.MeasureMS + 1 },
		"negative reboot":    func(c *ClusterConfig) { c.Failure.RebootMS = -1 },
		"negative timeline":  func(c *ClusterConfig) { c.TimelineBucketMS = -1 },
	} {
		cfg := failCluster(t, 1000)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate passed", name)
		}
	}
}

// TestClusterFailureAvailability: after a mid-window crash the cluster
// keeps committing (survivors absorb rerouted arrivals), throughput dips
// around the outage and ramps back once the node rejoins, and the whole
// run is deterministic.
func TestClusterFailureAvailability(t *testing.T) {
	run := func() *ClusterResult {
		res, err := RunCluster(failCluster(t, 1000))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	agg := res.Cluster
	if agg.Restart == nil || !agg.Restart.Recovered {
		t.Fatalf("node 0 never recovered: %+v", agg.Restart)
	}
	if agg.Restart.Node != 0 {
		t.Fatalf("restart report for node %d, want 0", agg.Restart.Node)
	}
	if len(agg.Timeline) == 0 {
		t.Fatal("no commit timeline")
	}
	var total int64
	for _, n := range agg.Timeline {
		total += n
	}
	if total != agg.Commits {
		t.Fatalf("timeline sums to %d commits, aggregate has %d", total, agg.Commits)
	}
	// The crash lands in bucket 2 (1000 ms / 500 ms buckets); the cluster
	// must still commit in every bucket after it — node 1 absorbs the load.
	crashBucket := int(1000 / 500)
	for i := crashBucket; i < len(agg.Timeline); i++ {
		if agg.Timeline[i] == 0 {
			t.Fatalf("bucket %d has no commits — survivors did not absorb the load: %v",
				i, agg.Timeline)
		}
	}
	// Both nodes commit over the window: node 0 before the crash and
	// after rejoining, node 1 throughout.
	for i, n := range res.Nodes {
		if n.Commits == 0 {
			t.Fatalf("node %d committed nothing", i)
		}
	}
	if a, b := run().Report(), res.Report(); a != b {
		t.Fatalf("failure-injection run is nondeterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestClusterCrashWithoutRecoveryWindow: a crash so late the node cannot
// finish redo inside the window still reports, unrecovered.
func TestClusterCrashWithoutRecoveryWindow(t *testing.T) {
	cfg := failCluster(t, 7990)
	cfg.Failure.RebootMS = 60_000 // reboot alone outlasts the window
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Cluster.Restart
	if r == nil || r.Recovered {
		t.Fatalf("want an unrecovered restart report, got %+v", r)
	}
	if !strings.Contains(r.String(), "NOT RECOVERED") {
		t.Fatalf("report line misses the unrecovered marker: %s", r)
	}
}

// TestSingleNodeClusterCrashDropsArrivals: with every node down the
// rerouter finds no target and in-window arrivals are dropped.
func TestSingleNodeClusterCrashDropsArrivals(t *testing.T) {
	base := dcConfig(t, 200)
	base.WarmupMS = 1000
	base.MeasureMS = 6000
	base.Buffer.CheckpointIntervalMS = 800
	cfg := ClusterConfig{
		Base:       base,
		NumNodes:   1,
		Generators: []workload.Generator{base.Generator},
		Failure:    FailureConfig{Enabled: true, Node: 0, CrashAtMS: 1000, RebootMS: 100},
	}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cluster.Dropped == 0 {
		t.Fatal("no arrivals dropped during a single-node outage")
	}
	if res.Cluster.Restart == nil || !res.Cluster.Restart.Recovered {
		t.Fatalf("node never recovered: %+v", res.Cluster.Restart)
	}
}
