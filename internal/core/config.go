// Package core is TPSIM's simulation engine: it wires the SOURCE (workload
// generators), the computing module (transaction manager, CPU servers,
// concurrency control, buffer manager) and the external storage devices into
// one discrete-event simulation and reports the paper's performance metrics
// (response time, throughput, hit ratios, utilizations, lock behaviour).
package core

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Config is the complete description of one simulation run: CM parameters
// (Table 3.3), external device parameters (Table 3.4), buffer-manager
// allocation (Fig 3.2) and the workload source.
type Config struct {
	Seed int64

	// --- transaction manager / CPU (Table 3.3) ---
	MPL      int     // multiprogramming level (max concurrent transactions)
	InstrBOT float64 // mean instructions at begin-of-transaction
	InstrOR  float64 // mean instructions per object reference
	InstrEOT float64 // mean instructions at end-of-transaction
	NumCPU   int
	MIPS     float64 // per CPU
	InstrIO  float64 // mean instructions of CPU overhead per I/O
	// InstrNVEM is the CPU cost per NVEM access; the transfer itself is
	// synchronous (CPU held, section 2).
	InstrNVEM float64

	// CCModes selects the lock granularity per database partition.
	CCModes []cc.Granularity

	// --- buffer manager (Table 3.3) and allocation (Fig 3.2) ---
	Buffer buffer.Config

	// --- external devices (Table 3.4) ---
	DiskUnits   []storage.DiskUnitConfig
	NVEMServers int
	NVEMDelay   float64 // ms per page transfer

	// --- workload ---
	Partitions []workload.Partition
	Generator  workload.Generator
	// Arrival selects the arrival process driving every transaction-type
	// stream (Poisson, MMPP bursty, diurnal, spike). The zero value is the
	// classic Poisson process of the paper's evaluation. Window-relative
	// parameters (spike offsets) are anchored at the end of warm-up.
	Arrival workload.ArrivalSpec

	// --- run control ---
	WarmupMS  float64 // simulated warm-up excluded from measurements
	MeasureMS float64 // measured window
	// MaxQueue caps the transaction input queue; arrivals beyond it are
	// dropped and the run flagged Saturated (an open system under overload
	// would otherwise queue unboundedly).
	MaxQueue int
}

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	switch {
	case c.MPL <= 0:
		return fmt.Errorf("core: MPL = %d", c.MPL)
	case c.NumCPU <= 0:
		return fmt.Errorf("core: NumCPU = %d", c.NumCPU)
	case c.MIPS <= 0:
		return fmt.Errorf("core: MIPS = %v", c.MIPS)
	case c.InstrBOT < 0 || c.InstrOR < 0 || c.InstrEOT < 0 || c.InstrIO < 0 || c.InstrNVEM < 0:
		return fmt.Errorf("core: negative instruction count")
	case len(c.Partitions) == 0:
		return fmt.Errorf("core: no partitions")
	case c.Generator == nil:
		return fmt.Errorf("core: no workload generator")
	case len(c.CCModes) != len(c.Partitions):
		return fmt.Errorf("core: %d CC modes for %d partitions", len(c.CCModes), len(c.Partitions))
	case c.MeasureMS <= 0:
		return fmt.Errorf("core: MeasureMS = %v", c.MeasureMS)
	case c.WarmupMS < 0:
		return fmt.Errorf("core: WarmupMS = %v", c.WarmupMS)
	case c.MaxQueue < 0:
		return fmt.Errorf("core: MaxQueue = %v", c.MaxQueue)
	}
	if err := c.Arrival.Validate(); err != nil {
		return err
	}
	names := make([]string, len(c.Partitions))
	for i := range c.Partitions {
		names[i] = c.Partitions[i].Name
	}
	if err := c.Buffer.Validate(names, len(c.DiskUnits)); err != nil {
		return err
	}
	for i := range c.DiskUnits {
		if err := c.DiskUnits[i].Validate(); err != nil {
			return err
		}
	}
	if c.Buffer.UsesNVEM() {
		if c.NVEMServers <= 0 {
			return fmt.Errorf("core: NVEM used but NVEMServers = %d", c.NVEMServers)
		}
		if c.NVEMDelay < 0 {
			return fmt.Errorf("core: NVEMDelay = %v", c.NVEMDelay)
		}
	}
	return nil
}

// Defaults returns the CM and device parameter settings of Table 4.1 with
// no partitions, devices or generator; experiment builders fill those in.
func Defaults() Config {
	return Config{
		Seed:        1,
		MPL:         200,
		InstrBOT:    40_000,
		InstrOR:     40_000,
		InstrEOT:    50_000,
		NumCPU:      4,
		MIPS:        50,
		InstrIO:     3_000,
		InstrNVEM:   300,
		NVEMServers: 1,
		NVEMDelay:   0.05, // 50 microseconds per 4KB page
		WarmupMS:    5_000,
		MeasureMS:   30_000,
		MaxQueue:    10_000,
	}
}

// Standard device delays of Table 4.1 (milliseconds).
const (
	DefaultContrDelay  = 1.0
	DefaultTransDelay  = 0.4
	DefaultDBDiskDelay = 15.0
	// Log disks are sequentially accessed, shortening seeks (section 4.1).
	DefaultLogDiskDelay = 5.0
)
