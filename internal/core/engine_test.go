package core

import (
	"math"
	"testing"

	"repro/internal/buffer"
	"repro/internal/cc"
	"repro/internal/storage"
	"repro/internal/workload"
)

// dcConfig builds a small Debit-Credit run: partitions on one regular DB
// unit, log on a log-disk unit, NOFORCE.
func dcConfig(t *testing.T, rate float64) Config {
	t.Helper()
	return dcConfigSeed(t, rate, 1)
}

func dcConfigSeed(t *testing.T, rate float64, seed int64) Config {
	t.Helper()
	gen, err := workload.NewDebitCredit(workload.DefaultDebitCreditConfig(rate))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults()
	cfg.Seed = seed
	// The 2000-frame buffer fills at roughly one new page per transaction;
	// warm long enough to reach cache steady state at the test rates.
	cfg.WarmupMS = 12_000
	cfg.MeasureMS = 20_000
	cfg.Partitions = gen.Partitions()
	cfg.Generator = gen
	cfg.CCModes = []cc.Granularity{cc.PageLevel, cc.PageLevel, cc.NoCC}
	cfg.DiskUnits = []storage.DiskUnitConfig{
		{Name: "db", Type: storage.Regular, NumControllers: 8, ContrDelay: DefaultContrDelay,
			TransDelay: DefaultTransDelay, NumDisks: 48, DiskDelay: DefaultDBDiskDelay},
		{Name: "log", Type: storage.Regular, NumControllers: 2, ContrDelay: DefaultContrDelay,
			TransDelay: DefaultTransDelay, NumDisks: 8, DiskDelay: DefaultLogDiskDelay},
	}
	cfg.Buffer = buffer.Config{
		BufferSize: 2000,
		Logging:    true,
		Partitions: []buffer.PartitionAlloc{
			{DiskUnit: 0}, {DiskUnit: 0}, {DiskUnit: 0},
		},
		Log: buffer.LogAlloc{DiskUnit: 1},
	}
	return cfg
}

func TestRunValidatesConfig(t *testing.T) {
	cfg := dcConfig(t, 250)
	cfg.MPL = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected validation error")
	}
	cfg = dcConfig(t, 250)
	cfg.CCModes = cfg.CCModes[:1]
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected CC modes mismatch error")
	}
}

func TestDebitCreditDiskBasedRun(t *testing.T) {
	res, err := Run(dcConfig(t, 250))
	if err != nil {
		t.Fatal(err)
	}
	// Throughput must track the arrival rate (open system, no saturation).
	if math.Abs(res.Throughput-250) > 15 {
		t.Fatalf("throughput = %v, want ~250", res.Throughput)
	}
	if res.Saturated {
		t.Fatal("250 TPS must not saturate this configuration")
	}
	// Disk-based Debit-Credit: ~2 DB I/Os + 1 log I/O ≈ 40 ms + CPU.
	if res.RespMean < 25 || res.RespMean > 70 {
		t.Fatalf("response = %v ms, want ~40", res.RespMean)
	}
	// Main-memory hit ratio ≈ 72.5% with a 2000-page buffer (section 4.3).
	if math.Abs(res.MMHitPct-72.5) > 3 {
		t.Fatalf("MM hit ratio = %v%%, want ~72.5%%", res.MMHitPct)
	}
	if res.Commits < 500 {
		t.Fatalf("commits = %d, too few for the window", res.Commits)
	}
	if res.Buffer.LogWrites == 0 {
		t.Fatal("no log writes recorded")
	}
}

// TestFootnote6HitRatios checks the per-partition hit pattern the paper
// reports: ~0% ACCOUNT, ~95% HISTORY (block factor 20), ~95% BRANCH page
// fetched by the BRANCH access, 100% TELLER (clustered, same page).
func TestFootnote6HitRatios(t *testing.T) {
	res, err := Run(dcConfig(t, 250))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PartitionReport{}
	for _, p := range res.Partitions {
		byName[p.Name] = p
	}
	if acc := byName["ACCOUNT"]; acc.MMHitPct > 2 {
		t.Errorf("ACCOUNT hit ratio = %v%%, want ~0%%", acc.MMHitPct)
	}
	if hist := byName["HISTORY"]; math.Abs(hist.MMHitPct-95) > 2 {
		t.Errorf("HISTORY hit ratio = %v%%, want ~95%%", hist.MMHitPct)
	}
	// BRANCH/TELLER combined: (95+100)/2 ≈ 97.5%.
	if bt := byName["BRANCH/TELLER"]; math.Abs(bt.MMHitPct-97.5) > 2 {
		t.Errorf("BRANCH/TELLER hit ratio = %v%%, want ~97.5%%", bt.MMHitPct)
	}
}

func TestNVEMResidentFastResponse(t *testing.T) {
	cfg := dcConfig(t, 250)
	cfg.Buffer.Partitions = []buffer.PartitionAlloc{
		{NVEMResident: true}, {NVEMResident: true}, {NVEMResident: true},
	}
	cfg.Buffer.Log = buffer.LogAlloc{NVEMResident: true}
	cfg.DiskUnits = nil
	cfg.Buffer.Partitions[0].DiskUnit = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// NVEM-resident: response time almost exclusively CPU (≈5 ms service).
	if res.RespMean > 12 {
		t.Fatalf("NVEM-resident response = %v ms, want < 12", res.RespMean)
	}
	if res.Buffer.DeviceReads != 0 {
		t.Fatal("NVEM-resident run touched disk units")
	}
}

func TestResponseTimeOrderingAcrossAllocations(t *testing.T) {
	disk, err := Run(dcConfig(t, 250))
	if err != nil {
		t.Fatal(err)
	}

	// Write buffer in NVEM for all DB partitions + log.
	wb := dcConfig(t, 250)
	for i := range wb.Buffer.Partitions {
		wb.Buffer.Partitions[i].NVEMWriteBuffer = true
	}
	wb.Buffer.Log = buffer.LogAlloc{DiskUnit: 1, NVEMWriteBuffer: true}
	wb.Buffer.NVEMWriteBufferSize = 2000
	wbRes, err := Run(wb)
	if err != nil {
		t.Fatal(err)
	}

	nv := dcConfig(t, 250)
	nv.Buffer.Partitions = []buffer.PartitionAlloc{
		{NVEMResident: true}, {NVEMResident: true}, {NVEMResident: true},
	}
	nv.Buffer.Log = buffer.LogAlloc{NVEMResident: true}
	nvRes, err := Run(nv)
	if err != nil {
		t.Fatal(err)
	}

	// Paper ordering (Fig 4.2): NVEM-resident < write buffer < disk.
	if !(nvRes.RespMean < wbRes.RespMean && wbRes.RespMean < disk.RespMean) {
		t.Fatalf("ordering violated: nvem=%.2f wb=%.2f disk=%.2f",
			nvRes.RespMean, wbRes.RespMean, disk.RespMean)
	}
	// The write buffer should roughly halve disk-based response times
	// (section 4.3: "response times could be cut by a factor 2").
	if wbRes.RespMean > 0.75*disk.RespMean {
		t.Fatalf("write buffer saved too little: wb=%.2f disk=%.2f",
			wbRes.RespMean, disk.RespMean)
	}
}

func TestSingleLogDiskSaturates(t *testing.T) {
	cfg := dcConfig(t, 400)
	cfg.DiskUnits[1].NumDisks = 1
	cfg.DiskUnits[1].NumControllers = 1
	cfg.WarmupMS = 1000
	cfg.MeasureMS = 6000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One 5ms log disk sustains ≈200 log writes/s; offered 400 TPS must
	// saturate (section 4.2).
	if !res.Saturated && res.Throughput > 260 {
		t.Fatalf("expected saturation: %+v", res)
	}
	if res.Throughput > 260 {
		t.Fatalf("throughput = %v, single log disk must cap near 200", res.Throughput)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(dcConfigSeed(t, 80, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(dcConfigSeed(t, 80, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Commits != b.Commits || a.RespMean != b.RespMean || a.MMHitPct != b.MMHitPct {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	c, err := Run(dcConfigSeed(t, 80, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Commits == c.Commits && a.RespMean == c.RespMean {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestForceMoreWrites(t *testing.T) {
	noforce, err := Run(dcConfig(t, 250))
	if err != nil {
		t.Fatal(err)
	}
	fcfg := dcConfig(t, 250)
	fcfg.Buffer.Force = true
	force, err := Run(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if force.Buffer.ForceWrites == 0 {
		t.Fatal("FORCE run recorded no force writes")
	}
	// FORCE writes 3 pages per transaction at commit; response time must be
	// clearly higher than NOFORCE on a disk-based configuration (Fig 4.3).
	if force.RespMean <= noforce.RespMean*1.3 {
		t.Fatalf("FORCE resp %.2f vs NOFORCE %.2f: expected much higher",
			force.RespMean, noforce.RespMean)
	}
}

func TestMMResidentOnlyLogIO(t *testing.T) {
	cfg := dcConfig(t, 250)
	cfg.Buffer.Partitions = []buffer.PartitionAlloc{
		{MMResident: true}, {MMResident: true}, {MMResident: true},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Buffer.DeviceReads != 0 || res.Buffer.VictimWrites != 0 {
		t.Fatalf("MM-resident run did DB I/O: %+v", res.Buffer)
	}
	if res.Buffer.LogWrites == 0 {
		t.Fatal("logging must still happen")
	}
	if res.MMHitPct < 99.9 {
		t.Fatalf("hit ratio = %v%%", res.MMHitPct)
	}
}

func TestLockConflictsAccounted(t *testing.T) {
	// High rate on the small BRANCH/TELLER partition with page locks must
	// produce some lock conflicts.
	cfg := dcConfig(t, 300)
	cfg.WarmupMS = 1000
	cfg.MeasureMS = 5000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Locks.Requests == 0 {
		t.Fatal("no lock requests recorded")
	}
	// Debit-Credit orders record types consistently: deadlock-free.
	if res.Locks.Deadlocks != 0 {
		t.Fatalf("deadlocks = %d, Debit-Credit must be deadlock-free", res.Locks.Deadlocks)
	}
}

func TestThroughputScalesWithRate(t *testing.T) {
	lo, err := Run(dcConfig(t, 50))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(dcConfig(t, 200))
	if err != nil {
		t.Fatal(err)
	}
	if hi.Throughput < lo.Throughput*3 {
		t.Fatalf("throughput did not scale: %v → %v", lo.Throughput, hi.Throughput)
	}
}
