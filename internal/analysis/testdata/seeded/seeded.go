// Package seeded is the CI gate's self-test: a file with known
// determinism-contract violations that `go run ./cmd/detlint -scope=all
// ./internal/analysis/testdata/seeded` must always report with a nonzero
// exit. If an analyzer regression ever makes detlint wave this file
// through, the CI step fails and the gate cannot silently rot.
//
// Do not fix these violations — they are the point.
package seeded

import (
	"math/rand"
	"time"
)

// Stamp violates walltime: simulation code consulting the host clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Jitter violates rngstream: a draw on the global math/rand generator.
func Jitter() float64 { return rand.Float64() }

// Sum violates maporder and floatsum: order-dependent float reduction in
// map-iteration order.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Fire violates rawgo: a goroutine outside the whitelisted seams.
func Fire(done chan struct{}) {
	go func() { close(done) }()
	<-done
}
