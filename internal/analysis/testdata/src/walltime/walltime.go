// Package walltime is the fixture for the walltime rule: simulation code
// must take time from the sim clock, never the host.
package walltime

import (
	"os"
	"time"
)

// simNowMS stands in for the sim clock.
var simNowMS float64

func bad() {
	_ = time.Now()               // want `walltime: time\.Now reads host state`
	_ = time.Since(time.Time{})  // want `walltime: time\.Since reads host state`
	time.Sleep(time.Millisecond) // want `walltime: time\.Sleep reads host state`
	_ = os.Getenv("TPSIM_SEED")  // want `walltime: os\.Getenv reads host state`
	_, _ = os.LookupEnv("HOME")  // want `walltime: os\.LookupEnv reads host state`
	_ = time.After(time.Second)  // want `walltime: time\.After reads host state`
	<-time.Tick(time.Second)     // want `walltime: time\.Tick reads host state`
	_ = time.NewTimer(1)         // want `walltime: time\.NewTimer reads host state`
	clock := time.Now            // want `walltime: time\.Now reads host state`
	_ = clock
}

func good() time.Duration {
	// Types, constants and arithmetic from package time are legal; only
	// host reads are forbidden.
	var d time.Duration = 3 * time.Millisecond
	simNowMS += float64(d.Milliseconds())
	_ = os.Args
	return d
}
