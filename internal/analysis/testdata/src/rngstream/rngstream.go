// Package rngstream is the fixture for the rngstream rule: every random
// draw must flow from an internal/rng substream.
package rngstream

import (
	"math/rand"

	"repro/internal/rng"
)

func bad(seed int64) {
	_ = rand.Intn(10)                  // want `rngstream: math/rand\.Intn uses the global math/rand generator`
	_ = rand.Float64()                 // want `rngstream: math/rand\.Float64 uses the global math/rand generator`
	rand.Shuffle(3, func(i, j int) {}) // want `rngstream: math/rand\.Shuffle uses the global math/rand generator`
	_ = rand.New(rand.NewSource(42))   // want `rngstream: rand\.NewSource seed is not derived`
	_ = rand.New(rand.NewSource(seed)) // want `rngstream: rand\.NewSource seed is not derived`
	src := rand.NewSource(7)           // want `rngstream: math/rand\.NewSource outside the sanctioned`
	_ = rand.New(src)                  // want `rngstream: math/rand\.New outside the sanctioned`
}

func good(base int64, run int) float64 {
	// The sanctioned composition: a local generator seeded through
	// rng.Derive, or better, an rng.Stream.
	r := rand.New(rand.NewSource(rng.Derive(base, run)))
	s := rng.NewStream(rng.Derive(base, run), "fixture")
	// Instance draws are fine — the stream is derived.
	return r.Float64() + s.Float64()
}

// typeRefsOK: naming math/rand types is how internal/rng wraps the
// generator; only draws are forbidden.
func typeRefsOK(r *rand.Rand, s rand.Source) (*rand.Rand, rand.Source) {
	return r, s
}
