// Package maporder is the fixture for the maporder rule: map iteration
// order must not leak into results. Diagnostics anchor at the `for` line of
// the offending loop.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func appendLeak(m map[string]int) []string {
	var keys []string
	for k := range m { // want `maporder: map iteration order leaks into results: append to keys`
		keys = append(keys, k)
	}
	return keys
}

func collectThenSortOK(m map[string]int) []string {
	// The sanctioned idiom: the appended slice is sorted before use.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sendLeak(m map[string]int, ch chan string) {
	for k := range m { // want `maporder: map iteration order leaks into results: channel send per map entry`
		ch <- k
	}
}

func goroutineLeak(m map[string]int) {
	for k := range m { // want `maporder: map iteration order leaks into results: goroutine launched per map entry`
		go func(string) {}(k)
	}
}

func lastWriterLeak(m map[int]string) string {
	var last string
	for _, v := range m { // want `maporder: map iteration order leaks into results: last-writer-wins assignment to last`
		last = v
	}
	return last
}

func floatLeak(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `maporder: map iteration order leaks into results: float accumulation into total`
		total += v
	}
	return total
}

func stringLeak(m map[string]string) string {
	out := ""
	for _, v := range m { // want `maporder: map iteration order leaks into results: string concatenation into out`
		out += v
	}
	return out
}

func intDivLeak(m map[string]int) int {
	acc := 1 << 30
	for _, v := range m { // want `maporder: map iteration order leaks into results: non-commutative /= accumulation`
		acc /= v
	}
	return acc
}

func renderLeak(m map[string]int, sb *strings.Builder) {
	// Two leaks in one loop: two diagnostics, both anchored here.
	for k := range m { // want `maporder: .*fmt\.Println renders output in map order` `maporder: .*sb\.WriteString writes output in map order`
		fmt.Println(k)
		sb.WriteString(k)
	}
}

func commutativeOK(m map[string]int) (int, map[string]int) {
	// Exact, commutative accumulation and keyed writes are
	// order-independent.
	sum := 0
	counts := make(map[string]int)
	for k, v := range m {
		sum += v
		counts[k] = v
		local := v * 2
		_ = local
	}
	return sum, counts
}

func annotatedOK(m map[int]string) string {
	var any string
	//detlint:ordered all values are identical by construction; any entry serves
	for _, v := range m {
		any = v
	}
	return any
}

func trailingAnnotationOK(m map[int]string) string {
	var any string
	for _, v := range m { //detlint:ordered all values are identical by construction
		any = v
	}
	return any
}

func derefLeak(m map[string]float64, total *float64) {
	// Writing through a pointer deref still escapes the loop.
	for _, v := range m { // want `maporder: map iteration order leaks into results: float accumulation into \*total`
		*total += v
	}
}

func fieldLeak(m map[string]float64, res *struct{ Sum float64 }) {
	for _, v := range m { // want `maporder: map iteration order leaks into results: float accumulation into res\.Sum`
		(res.Sum) += v
	}
}

func keyedWriteOK(m map[string]int, slots []int) {
	// Keyed writes are trusted to be order-independent; a fixed index like
	// slots[0] is a known false negative of that heuristic, accepted so
	// that the overwhelmingly common slots[k] pattern needs no annotation.
	for _, v := range m {
		slots[0] = v
	}
}

func sliceRangeOK(xs []float64) float64 {
	// Ranging a slice is ordered; nothing to flag.
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}
