// Package floatsum is the fixture for the floatsum rule: float accumulation
// must happen in a deterministic order.
package floatsum

func mapSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `floatsum: float accumulation into total inside a map-range body`
	}
	return total
}

func selfAssignSum(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t = t + v // want `floatsum: float accumulation into t inside a map-range body`
	}
	return t
}

func nestedFieldSum(m map[int]float64, agg *struct{ Mean float64 }) {
	for _, v := range m {
		agg.Mean += v // want `floatsum: float accumulation into agg\.Mean inside a map-range body`
	}
}

func goroutineSum(xs []float64, done chan struct{}) float64 {
	var sum float64
	for _, x := range xs {
		go func(x float64) {
			sum += x // want `floatsum: float accumulation into sum inside a goroutine body`
			done <- struct{}{}
		}(x)
	}
	for range xs {
		<-done
	}
	return sum
}

func positionalOK(m map[int]float64, out []float64) {
	// Keyed slots are order-independent; the deterministic reduction
	// happens later over the slice.
	for k, v := range m {
		out[k] = v
	}
}

func sliceSumOK(xs []float64) float64 {
	// Slice order is program order: deterministic.
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func localInLoopOK(m map[string]float64) {
	// Accumulation into a variable scoped to one iteration never crosses
	// entries.
	for _, v := range m {
		local := 0.0
		local += v
		_ = local
	}
}

func workerPoolOK(xs []float64, done chan struct{}) float64 {
	// The sanctioned shape: goroutines write positional slots; the join
	// reduces in fixed order.
	partial := make([]float64, len(xs))
	for i, x := range xs {
		go func(i int, x float64) {
			partial[i] = x * x
			done <- struct{}{}
		}(i, x)
	}
	for range xs {
		<-done
	}
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}
