// barrierseam.go carries a file-scoped allow, the mechanism the real
// PDES barrier (internal/core/barrier.go) uses: a //detlint:allow before
// the package clause covers every goroutine and multi-case select in the
// file, so none of the spawns below may produce a diagnostic — while the
// identical unannotated pool in rawgo.go still trips the gate.
//
//detlint:allow rawgo fixture twin of the PDES barrier pool; workers are claimed exclusively per window and quiescence is observed before cross-goroutine reads
package rawgo

func seamPool(workers int, park []chan struct{}) {
	for w := 1; w < workers; w++ {
		go seamWorker(park[w])
	}
}

func seamWorker(park chan struct{}) {
	for range park {
	}
}

func seamMultiplex(wake, stop chan struct{}) bool {
	select {
	case <-wake:
		return true
	case <-stop:
		return false
	}
}
