// Package rawgo is the fixture for the rawgo rule: raw concurrency is
// confined to the whitelisted seams; sim code runs single-threaded
// continuation style.
package rawgo

func spawn(done chan struct{}) {
	go func() {}() // want `rawgo: go statement outside the whitelisted concurrency seams`
	<-done
}

func spawnNamed() {
	go helper() // want `rawgo: go statement outside the whitelisted concurrency seams`
}

func helper() {}

func multiplex(a, b chan int) int {
	select { // want `rawgo: multi-case select outside the whitelisted concurrency seams`
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

func singleCaseOK(a chan int) int {
	// A one-armed select is just a blocking op; only multiplexing is
	// scheduler-ordered.
	select {
	case x := <-a:
		return x
	}
}

func allowedInline(done chan struct{}) {
	//detlint:allow rawgo bounded test-script shim; joined before any metric is read
	go func() { close(done) }()
	<-done
}

// unannotatedBarrier mimics the PDES barrier's persistent worker pool
// WITHOUT the file-scoped allow that barrierseam.go (and the real
// internal/core/barrier.go) carries: spawning the pool must trip the
// gate — moving the pool out of a whitelisted seam file is not a way to
// dodge the determinism contract.
func unannotatedBarrier(workers int, park []chan struct{}) {
	for w := 1; w < workers; w++ {
		go barrierWorker(park[w]) // want `rawgo: go statement outside the whitelisted concurrency seams`
	}
}

func barrierWorker(park chan struct{}) {
	for range park {
	}
}
