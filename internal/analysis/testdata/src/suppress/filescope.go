//detlint:allow walltime whole-file fixture: this file stands in for a CLI-layer clock wrapper

package suppress

import "time"

// fileScopedA and fileScopedB are both covered by the file-scoped
// directive above the package clause: no diagnostics anywhere in this file.
func fileScopedA() int64 { return time.Now().UnixNano() }

func fileScopedB() time.Time { return time.Now() }
