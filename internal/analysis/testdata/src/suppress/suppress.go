// Package suppress is the fixture for the suppression machinery: a
// well-formed //detlint:allow silences a finding, a reasonless or
// unknown-rule directive is itself reported and silences nothing.
package suppress

import "time"

func trailingAllowed() int64 {
	return time.Now().UnixNano() //detlint:allow walltime fixture exercises a sanctioned suppression
}

func aboveAllowed() int64 {
	//detlint:allow walltime fixture exercises a sanctioned suppression
	return time.Now().UnixNano()
}

func missingReason() int64 {
	//detlint:allow walltime
	return time.Now().UnixNano() // want `walltime: time\.Now reads host state`
}

func unknownRule() int64 {
	//detlint:allow cosmicrays bit flips are rare
	return time.Now().UnixNano() // want `walltime: time\.Now reads host state`
}

func unknownVerb() int64 {
	//detlint:ignore walltime wrong verb
	return time.Now().UnixNano() // want `walltime: time\.Now reads host state`
}

func wrongRuleDoesNotSuppress() int64 {
	//detlint:allow maporder reason names the wrong rule
	return time.Now().UnixNano() // want `walltime: time\.Now reads host state`
}

func orderedMissingReason(m map[string]int) []string {
	var keys []string
	//detlint:ordered
	for k := range m { // want `maporder: map iteration order leaks into results: append to keys`
		keys = append(keys, k)
	}
	return keys
}
