package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RngstreamAnalyzer forces all randomness through internal/rng substreams.
//
// Replicated parallel experiments are byte-identical to serial ones only
// because every random draw comes from a stream seeded by rng.Derive(base,
// runIndex) — a pure function of the replication index. The global math/rand
// generator is shared process state: the interleaving of draws depends on
// worker count and scheduling, which is exactly what the contract forbids.
// Flagged:
//
//   - any call of a package-level math/rand function (rand.Intn,
//     rand.Float64, rand.Shuffle, ... — the implicit global generator);
//   - rand.New(rand.NewSource(seed)) whose seed expression does not involve
//     a call to internal/rng's Derive (an underived constant or wall-clock
//     seed silently decorrelates replications, or correlates all of them).
//
// Referring to math/rand types (rand.Rand, rand.Source) stays legal — that
// is how internal/rng wraps the generator.
var RngstreamAnalyzer = &Analyzer{
	Name: "rngstream",
	Doc: "all randomness must flow from internal/rng substreams (rng.Derive); " +
		"the global math/rand generator and underived rand.NewSource seeds are forbidden",
	// Module-wide: a stray global draw in a cmd or example becomes sim
	// input the moment someone pipes it into a config. internal/rng is the
	// sanctioned wrapper and stays exempt.
	Applies: moduleWide("internal/rng"),
	Run:     runRngstream,
}

func isMathRand(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// derivePath is the sanctioned seed-derivation package (suffix match keeps
// the rule valid for fixtures living under a testdata import path).
const derivePath = "internal/rng"

func runRngstream(pass *Pass) {
	// allowedNew collects the rand.New / rand.NewSource call expressions
	// that appear inside a sanctioned rand.New(rand.NewSource(derive(...)))
	// composition, so the second walk can skip them.
	allowedNew := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, sel := selectorCallee(pass.Info, call.Fun)
			if sel == nil || !isMathRand(pkgPath) || sel.Name != "New" || len(call.Args) != 1 {
				return true
			}
			inner, ok := call.Args[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			innerPath, innerSel := selectorCallee(pass.Info, inner.Fun)
			if innerSel == nil || !isMathRand(innerPath) || innerSel.Name != "NewSource" || len(inner.Args) != 1 {
				return true
			}
			if seedIsDerived(pass.Info, inner.Args[0]) {
				allowedNew[call.Fun] = true
				allowedNew[inner.Fun] = true
			} else {
				pass.Reportf(inner.Pos(), "rngstream",
					"rand.NewSource seed is not derived from internal/rng (use rng.Derive or an rng.Stream)")
				allowedNew[call.Fun] = true // already reported at the seed
				allowedNew[inner.Fun] = true
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			pkgPath, sel := selectorCallee(pass.Info, n)
			if sel == nil || !isMathRand(pkgPath) || allowedNew[n] {
				return true
			}
			// Only package-level functions are draws on the global
			// generator; type and constant references are fine.
			if _, ok := pass.Info.Uses[sel].(*types.Func); !ok {
				return true
			}
			if sel.Name == "New" || sel.Name == "NewSource" {
				pass.Reportf(n.Pos(), "rngstream",
					"%s.%s outside the sanctioned rand.New(rand.NewSource(rng.Derive(...))) composition",
					pkgPath, sel.Name)
			} else {
				pass.Reportf(n.Pos(), "rngstream",
					"%s.%s uses the global math/rand generator; draw from an internal/rng stream instead",
					pkgPath, sel.Name)
			}
			return true
		})
	}
}

// seedIsDerived reports whether the seed expression contains a call to
// internal/rng's Derive (or any internal/rng function/method — a value
// produced by the sanctioned package is by construction stream-derived).
func seedIsDerived(info *types.Info, seed ast.Expr) bool {
	derived := false
	ast.Inspect(seed, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			// Package function rng.Derive(...) or method stream.Int63n(...).
			if obj := info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil &&
				strings.HasSuffix(obj.Pkg().Path(), derivePath) {
				derived = true
				return false
			}
		case *ast.Ident:
			if obj := info.Uses[fun]; obj != nil && obj.Pkg() != nil &&
				strings.HasSuffix(obj.Pkg().Path(), derivePath) {
				derived = true
				return false
			}
		}
		return true
	})
	return derived
}
