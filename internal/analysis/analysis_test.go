package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScopes(t *testing.T) {
	simPkgs := []string{
		"repro/internal/sim", "repro/internal/core", "repro/internal/buffer",
		"repro/internal/cc", "repro/internal/storage", "repro/internal/workload",
		"repro/internal/recovery", "repro/internal/experiments",
		"repro/internal/trace", "repro/internal/stats",
		"repro/internal/costmodel", "repro/internal/lru",
	}
	for _, p := range simPkgs {
		if !inSimScope(p) {
			t.Errorf("inSimScope(%q) = false, want true", p)
		}
	}
	for _, p := range []string{
		"repro", "repro/cmd/tpsim", "repro/cmd/detlint",
		"repro/internal/rng", "repro/internal/analysis",
		"repro/examples/quickstart",
	} {
		if inSimScope(p) {
			t.Errorf("inSimScope(%q) = true, want false", p)
		}
	}
	// rngstream runs module-wide except the sanctioned wrapper itself.
	if RngstreamAnalyzer.Applies("repro/internal/rng") {
		t.Error("rngstream must not apply to internal/rng")
	}
	if !RngstreamAnalyzer.Applies("repro/cmd/experiments") {
		t.Error("rngstream must apply to cmd packages")
	}
	for _, f := range rawgoSeams {
		if !rawgoSeam(f) {
			t.Errorf("rawgoSeam(%q) = false", f)
		}
	}
	if rawgoSeam("internal/core/engine.go") {
		t.Error("engine.go must not be a concurrency seam")
	}
	// The PDES coordinator lost its seam status when the worker pool moved
	// into barrier.go (which carries a file-scoped //detlint:allow instead).
	if rawgoSeam("internal/core/pdes.go") {
		t.Error("pdes.go must no longer be a concurrency seam")
	}
}

func TestRuleNamesMatchRegistry(t *testing.T) {
	names := RuleNames()
	if len(names) != len(All()) {
		t.Fatalf("RuleNames() has %d entries, want %d", len(names), len(All()))
	}
	for _, a := range All() {
		if !names[a.Name] {
			t.Errorf("missing rule %q", a.Name)
		}
		if a.Doc == "" || a.Applies == nil || a.Run == nil {
			t.Errorf("rule %q is missing Doc/Applies/Run", a.Name)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "internal/core/engine.go", Line: 42, Column: 7},
		Rule:    "maporder",
		Message: "map iteration order leaks into results",
	}
	want := "internal/core/engine.go:42: maporder: map iteration order leaks into results"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d, want)
	}
}

// TestDefaultScopeHonored: without -scope=all the seeded fixture (whose
// import path is not a simulation package) only trips the module-wide
// rngstream rule — which is why the CI self-test passes -scope=all.
func TestDefaultScopeHonored(t *testing.T) {
	pkg := loadFixture(t, "internal/analysis/testdata/seeded")
	for _, d := range RunAnalyzers(pkg, All(), false) {
		if d.Rule != "rngstream" {
			t.Errorf("rule %q applied outside its scope: %s", d.Rule, d)
		}
	}
}

// TestRealSeamsStayClean locks the whitelist + annotation story for the
// real concurrency seams: the PDES engine, the experiment pool, and the
// blocking shim all lint clean, while the same rules do fire on fixtures
// (proven by the fixture tests) — so a clean run is a checked negative,
// not a skipped check.
func TestRealSeamsStayClean(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"internal/sim", "internal/core", "internal/experiments", "internal/buffer"} {
		pkgs, err := l.Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range RunAnalyzers(pkgs[0], All(), false) {
			t.Errorf("%s: unexpected diagnostic: %s", dir, d)
		}
	}
}

func TestLoaderErrors(t *testing.T) {
	tmp := t.TempDir()
	if _, err := NewLoader(tmp); err == nil {
		t.Error("NewLoader outside any module should fail")
	}

	// A go.mod without a module line is rejected.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "go.mod"), []byte("go 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLoader(bad); err == nil || !strings.Contains(err.Error(), "no module line") {
		t.Errorf("NewLoader(bad go.mod) err = %v, want module-line error", err)
	}

	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, pat := range []string{"../escape", "/abs", "no/such/dir", "internal/experiments/testdata/golden"} {
		if _, err := l.Load(pat); err == nil {
			t.Errorf("Load(%q) succeeded, want error", pat)
		}
	}
}

func TestLoaderCachesPackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.Load("internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Load("internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Error("loading the same dir twice should return the cached package")
	}
	if a[0].Path != "repro/internal/rng" || a[0].RelDir != "internal/rng" {
		t.Errorf("unexpected identity: path %q reldir %q", a[0].Path, a[0].RelDir)
	}
}

// TestWalkSkipsTestdataAndAnalysisFixtures: the ./... expansion must never
// descend into testdata, or the seeded violations would break the
// clean-tree gate.
func TestWalkSkipsTestdata(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	foundCore := false
	for _, p := range pkgs {
		if strings.Contains(p.RelDir, "testdata") {
			t.Errorf("./... descended into %s", p.RelDir)
		}
		if p.Path == "repro/internal/core" {
			foundCore = true
		}
	}
	if !foundCore || len(pkgs) < 20 {
		t.Errorf("./... loaded %d packages (core found: %v); expected the whole module", len(pkgs), foundCore)
	}
}
