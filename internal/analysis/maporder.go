package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MaporderAnalyzer flags `for range` over a map whose body lets the
// iteration order leak into results. Go randomizes map iteration order on
// purpose; any order-dependent effect inside such a loop makes output differ
// run to run — the exact bug class of PR 1 (lock release in map order
// reordered waiter wakeups under contention) and PR 2 (map-order waiter
// wakeup).
//
// Order leaks the rule recognizes in the body:
//
//   - append to a slice declared outside the loop (element order = map
//     order) — unless a later statement in the same block sorts that slice,
//     which is the sanctioned collect-keys-sort-iterate idiom;
//   - a channel send or a goroutine launch per entry (cross-goroutine order);
//   - plain `=` assignment to anything declared outside the loop
//     (last-writer-wins picks a random entry);
//   - floating-point or string accumulation into an outer variable
//     (rounding/concatenation order differs run to run);
//   - integer `/=`, `%=`, and shift accumulation (integer division and
//     shifts do not commute);
//   - writing bytes to an output sink (fmt.Fprint*/Print*, or
//     Write/WriteString/WriteByte/WriteRune methods on an outer value) —
//     rendered output in map order, the reporting-path variant of the bug.
//
// Commutative, exact accumulation stays legal: integer `+= -= *= |= &= ^=`,
// `++`/`--`, and keyed writes (`m2[k] = v`, `counts[v]++`) are
// order-independent. A loop the author can argue is order-free carries
// `//detlint:ordered <reason>`.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "for-range over a map must not leak iteration order into results; " +
		"sort the keys first or annotate //detlint:ordered <reason>",
	Applies: inSimScope,
	Run:     runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, stmt := range list {
				if lab, ok := stmt.(*ast.LabeledStmt); ok {
					stmt = lab.Stmt
				}
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				tv, ok := pass.Info.Types[rng.X]
				if !ok {
					continue
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					continue
				}
				for _, lk := range orderLeaks(pass, rng) {
					// The collect-then-sort idiom: an append whose target
					// is sorted later in the same block is order-free.
					if lk.appendTo != nil && sortedLater(pass, list[i+1:], lk.appendTo) {
						continue
					}
					// Diagnostics anchor at the loop, not the leaking
					// statement, so a //detlint:ordered directive on the
					// loop suppresses every leak it argues away; the leak
					// line rides in the message.
					pass.Reportf(rng.Pos(), "maporder",
						"map iteration order leaks into results: %s (line %d); iterate sorted keys or annotate //detlint:ordered <reason>",
						lk.what, pass.Fset.Position(lk.pos).Line)
				}
			}
			return true
		})
	}
}

type leak struct {
	pos  token.Pos
	what string
	// appendTo is the slice object an append targets, for the
	// collect-then-sort exemption; nil for every other leak kind.
	appendTo types.Object
}

// orderLeaks scans a map-range body for order-dependent effects.
func orderLeaks(pass *Pass, rng *ast.RangeStmt) []leak {
	var leaks []leak
	report := func(pos token.Pos, format string, args ...any) {
		leaks = append(leaks, leak{pos: pos, what: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			report(st.Pos(), "channel send per map entry")
		case *ast.GoStmt:
			report(st.Pos(), "goroutine launched per map entry")
		case *ast.AssignStmt:
			checkAssign(pass, rng, st, &leaks)
		case *ast.CallExpr:
			checkOutputCall(pass, rng, st, report)
		}
		return true
	})
	return leaks
}

// checkAssign classifies one assignment inside a map-range body.
func checkAssign(pass *Pass, rng *ast.RangeStmt, st *ast.AssignStmt, leaks *[]leak) {
	if st.Tok == token.DEFINE {
		return
	}
	for i, lhs := range st.Lhs {
		// Keyed writes (m2[k] = v) are order-independent: each entry
		// lands in its own slot.
		if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
			continue
		}
		root := rootIdent(lhs)
		if root == nil || root.Name == "_" || !declaredOutside(pass.Info, root, rng) {
			continue
		}
		name := exprString(lhs)
		// out = append(out, ...) — element order is map order.
		if st.Tok == token.ASSIGN && i < len(st.Rhs) {
			if call, ok := st.Rhs[i].(*ast.CallExpr); ok && isBuiltinAppend(pass.Info, call) {
				*leaks = append(*leaks, leak{
					pos:      st.Pos(),
					what:     fmt.Sprintf("append to %s", name),
					appendTo: pass.Info.ObjectOf(root),
				})
				continue
			}
		}
		var basic *types.Basic
		if t := pass.Info.TypeOf(lhs); t != nil {
			basic, _ = t.Underlying().(*types.Basic)
		}
		add := func(format string, args ...any) {
			*leaks = append(*leaks, leak{pos: st.Pos(), what: fmt.Sprintf(format, args...)})
		}
		switch st.Tok {
		case token.ASSIGN:
			add("last-writer-wins assignment to %s", name)
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
			if basic == nil || basic.Info()&(types.IsFloat|types.IsComplex) != 0 {
				add("float accumulation into %s (order-dependent rounding)", name)
			} else if basic.Info()&types.IsString != 0 {
				add("string concatenation into %s", name)
			}
			// Integer +=/-=/*= commute exactly; allowed.
		case token.QUO_ASSIGN, token.REM_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN:
			add("non-commutative %s accumulation into %s", st.Tok, name)
		}
	}
}

// checkOutputCall flags rendering calls that emit bytes from inside the
// loop: the rendered order is the map order.
func checkOutputCall(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr,
	report func(token.Pos, string, ...any)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if id, _ := sel.X.(*ast.Ident); id != nil && pkgPathOf(pass.Info, id) == "fmt" {
		if strings.HasPrefix(sel.Sel.Name, "Fprint") || strings.HasPrefix(sel.Sel.Name, "Print") {
			report(call.Pos(), "fmt.%s renders output in map order", sel.Sel.Name)
		}
		return
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if root := rootIdent(sel.X); root != nil && declaredOutside(pass.Info, root, rng) {
			report(call.Pos(), "%s.%s writes output in map order", exprString(sel.X), sel.Sel.Name)
		}
	}
}

// sortedLater reports whether a statement after the loop sorts the given
// slice (a call into package sort or slices mentioning the object).
func sortedLater(pass *Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, sel := selectorCallee(pass.Info, call.Fun)
			if sel == nil || (pkg != "sort" && pkg != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if mentionsObj(pass.Info, arg, obj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentionsObj reports whether expr references obj.
func mentionsObj(info *types.Info, expr ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// rootIdent unwraps an lvalue to its base identifier (res.Count → res,
// (*p).f → p, s[i] → s).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether id's object was declared outside the span
// of node n (so a write to it from inside n escapes n).
func declaredOutside(info *types.Info, id *ast.Ident, n ast.Node) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < n.Pos() || obj.Pos() > n.End()
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// exprString renders a short lvalue for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	default:
		return "expression"
	}
}
