// Package analysis is detlint: a static-analysis pass that turns the
// determinism contract of DESIGN.md into machine-checked rules. The
// simulator's golden outputs are trusted only because a run is
// bit-deterministic at any -parallel worker count; three past PRs each lost
// review time to nondeterminism found after the fact (map-order lock
// release, map-order waiter wakeup, stale sim clock). detlint rejects those
// bug classes at lint time, the way -race rejects data races at run time.
//
// The driver is built on the stdlib go/parser + go/types toolchain only, so
// the module stays dependency-free. Each rule is an independent Analyzer
// value; the shape deliberately mirrors golang.org/x/tools/go/analysis so
// rules can later be lifted onto that framework unchanged in spirit.
//
// Suppressions: a finding can be acknowledged in source with
//
//	//detlint:allow <rule> <reason>
//
// on the flagged line, on the line directly above it, or — before the
// package clause — for the whole file. maporder additionally honors the
// loop-specific form
//
//	//detlint:ordered <reason>
//
// A suppression without a reason is itself a diagnostic and does not
// suppress anything: every exception to the contract must say why.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical file:line: rule: message form. File paths are
// kept as the loader produced them (module-root relative).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Pass carries everything one analyzer needs to inspect one package.
type Pass struct {
	Fset *token.FileSet
	Path string // import path, e.g. repro/internal/core
	// RelDir is the package directory relative to the module root, with
	// forward slashes ("internal/core"). File-scoped whitelists key on
	// RelDir + "/" + filename.
	RelDir string
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// RelFile returns pos's filename relative to the module root (slash form),
// for whitelist matching and stable diagnostics.
func (p *Pass) RelFile(pos token.Pos) string {
	return filepath.ToSlash(p.Fset.Position(pos).Filename)
}

// An Analyzer is one independent determinism rule.
type Analyzer struct {
	Name string
	// Doc is the one-paragraph rule statement shown by detlint -list.
	Doc string
	// Applies reports whether the rule is in force for a package path.
	// The driver's -scope=all flag overrides it (used by fixtures and the
	// seeded-violation self-test).
	Applies func(pkgPath string) bool
	Run     func(*Pass)
}

// simScope lists the package suffixes (under the module path) where the full
// contract is in force: everything that executes inside, or renders output
// of, the simulation. internal/rng is the one sanctioned randomness source
// and internal/analysis is the linter itself; neither simulates anything.
var simScope = []string{
	"internal/sim", "internal/core", "internal/buffer", "internal/cc",
	"internal/storage", "internal/workload", "internal/recovery",
	"internal/experiments",
	// Reporting/aggregation paths: these render the golden bytes, so
	// map-order and float-order rules matter just as much here.
	"internal/trace", "internal/stats", "internal/costmodel", "internal/lru",
}

// inSimScope reports whether pkgPath is one of the simulation packages.
func inSimScope(pkgPath string) bool {
	for _, s := range simScope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// moduleWide applies a rule to every package except the named suffixes.
func moduleWide(except ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, e := range except {
			if pkgPath == e || strings.HasSuffix(pkgPath, "/"+e) {
				return false
			}
		}
		return true
	}
}

// All returns the analyzers in their fixed reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		WalltimeAnalyzer,
		RngstreamAnalyzer,
		MaporderAnalyzer,
		RawgoAnalyzer,
		FloatsumAnalyzer,
	}
}

// RuleNames returns the set of valid rule names (for directive validation).
func RuleNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// RunAnalyzers executes the given analyzers over one loaded package,
// applies the package's suppression directives, and returns the surviving
// diagnostics sorted by position. When force is true the per-analyzer
// Applies scope check is skipped.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, force bool) []Diagnostic {
	pass := &Pass{
		Fset:   pkg.Fset,
		Path:   pkg.Path,
		RelDir: pkg.RelDir,
		Files:  pkg.Files,
		Pkg:    pkg.Types,
		Info:   pkg.Info,
	}
	for _, a := range analyzers {
		if !force && a.Applies != nil && !a.Applies(pkg.Path) {
			continue
		}
		a.Run(pass)
	}
	sup := collectSuppressions(pkg.Fset, pkg.Files, RuleNames())
	diags := sup.filter(pass.diags)
	diags = append(diags, sup.malformed...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// pkgPathOf resolves the package path of the object an identifier uses, or
// "" when it is not a package-level import reference.
func pkgPathOf(info *types.Info, id *ast.Ident) string {
	obj := info.Uses[id]
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// selectorCallee matches n as pkg.Name and returns the imported package
// path and selected identifier, or "" when n is not such a selector.
func selectorCallee(info *types.Info, n ast.Node) (pkgPath string, sel *ast.Ident) {
	s, ok := n.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	id, ok := s.X.(*ast.Ident)
	if !ok {
		return "", nil
	}
	return pkgPathOf(info, id), s.Sel
}
