package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives let a human overrule a rule — but only with a
// recorded reason. Two forms exist:
//
//	//detlint:allow <rule> <reason>   any rule; line- or file-scoped
//	//detlint:ordered <reason>        maporder only; reads naturally at a loop
//
// A line-scoped directive covers its own line and the next one, so it works
// both as a trailing comment on the flagged line and as a comment directly
// above it. A directive that appears before the package clause covers the
// whole file. A directive with no reason, or naming an unknown rule, is
// reported as a "suppress" diagnostic and suppresses nothing.
type suppressor struct {
	// line[file][line][rule]: line-scoped allowances.
	line map[string]map[int]map[string]bool
	// file[file][rule]: file-scoped allowances.
	file      map[string]map[string]bool
	malformed []Diagnostic
}

// collectSuppressions scans every comment in the files for detlint
// directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File, rules map[string]bool) *suppressor {
	s := &suppressor{
		line: make(map[string]map[int]map[string]bool),
		file: make(map[string]map[string]bool),
	}
	for _, f := range files {
		pkgPos := fset.Position(f.Package)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//detlint:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				verb, rest, _ := strings.Cut(text, " ")
				var rule, reason string
				switch verb {
				case "allow":
					rule, reason, _ = strings.Cut(strings.TrimSpace(rest), " ")
				case "ordered":
					rule, reason = "maporder", rest
				default:
					s.reject(pos, "unknown directive //detlint:%s", verb)
					continue
				}
				if rule == "" || !rules[rule] {
					s.reject(pos, "//detlint:allow needs a known rule, got %q", rule)
					continue
				}
				if strings.TrimSpace(reason) == "" {
					s.reject(pos, "//detlint:%s requires a reason", verb)
					continue
				}
				if pos.Filename == pkgPos.Filename && pos.Line < pkgPos.Line {
					fw := s.file[pos.Filename]
					if fw == nil {
						fw = make(map[string]bool)
						s.file[pos.Filename] = fw
					}
					fw[rule] = true
					continue
				}
				s.allowLine(pos.Filename, pos.Line, rule)
				s.allowLine(pos.Filename, pos.Line+1, rule)
			}
		}
	}
	return s
}

func (s *suppressor) reject(pos token.Position, format string, args ...any) {
	s.malformed = append(s.malformed, Diagnostic{Pos: pos, Rule: "suppress", Message: fmt.Sprintf(format, args...)})
}

func (s *suppressor) allowLine(file string, line int, rule string) {
	byLine := s.line[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s.line[file] = byLine
	}
	byRule := byLine[line]
	if byRule == nil {
		byRule = make(map[string]bool)
		byLine[line] = byRule
	}
	byRule[rule] = true
}

// filter drops diagnostics covered by a well-formed suppression.
func (s *suppressor) filter(diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if s.file[d.Pos.Filename][d.Rule] || s.line[d.Pos.Filename][d.Pos.Line][d.Rule] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
