package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatsumAnalyzer flags floating-point accumulation whose summation order
// is not fixed by program order. (a+b)+c != a+(b+c) in floats; when the
// terms arrive in map-iteration or goroutine-completion order, the low bits
// of the sum differ run to run and golden byte-identity silently breaks —
// usually far downstream, in the fourth decimal of a report cell.
//
// Two contexts are flagged:
//
//   - accumulation (`+= -= *= /=` or `x = x <op> ...`) into a variable
//     declared outside a map-range loop, from inside that loop;
//   - accumulation into a variable declared outside a goroutine's function
//     literal, from inside it (join-order-dependent even when the join
//     itself is synchronized).
//
// The fix is the same in both cases: accumulate positionally (into a slice
// slot owned by the iteration) and reduce in a fixed order afterwards, as
// the experiment worker pool does with its per-run results slice.
var FloatsumAnalyzer = &Analyzer{
	Name: "floatsum",
	Doc: "no float accumulation in map-range or goroutine bodies; " +
		"sum in a deterministic order (collect positionally, reduce sorted)",
	Applies: inSimScope,
	Run:     runFloatsum,
}

func runFloatsum(pass *Pass) {
	seen := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch ctx := n.(type) {
			case *ast.RangeStmt:
				tv, ok := pass.Info.Types[ctx.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				flagFloatAccum(pass, ctx.Body, ctx, "map-range", seen)
			case *ast.GoStmt:
				if lit, ok := ctx.Call.Fun.(*ast.FuncLit); ok {
					flagFloatAccum(pass, lit.Body, lit, "goroutine", seen)
				}
			}
			return true
		})
	}
}

// flagFloatAccum reports float accumulation inside body into variables
// declared outside span.
func flagFloatAccum(pass *Pass, body *ast.BlockStmt, span ast.Node, ctx string, seen map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || seen[st.Pos()] {
			return true
		}
		for i, lhs := range st.Lhs {
			if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
				continue // positional/keyed slot: order-independent target
			}
			root := rootIdent(lhs)
			if root == nil || root.Name == "_" || !declaredOutside(pass.Info, root, span) {
				continue
			}
			t := pass.Info.TypeOf(lhs)
			if t == nil {
				continue
			}
			basic, ok := t.Underlying().(*types.Basic)
			if !ok || basic.Info()&(types.IsFloat|types.IsComplex) == 0 {
				continue
			}
			switch st.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			case token.ASSIGN:
				// x = x + y (self-referential update) accumulates too.
				if i >= len(st.Rhs) || !mentionsObj(pass.Info, st.Rhs[i], pass.Info.ObjectOf(root)) {
					continue
				}
			default:
				continue
			}
			seen[st.Pos()] = true
			pass.Reportf(st.Pos(), "floatsum",
				"float accumulation into %s inside a %s body has order-dependent rounding; accumulate positionally and reduce in fixed order",
				exprString(lhs), ctx)
		}
		return true
	})
}
