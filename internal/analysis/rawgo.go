package analysis

import (
	"go/ast"
	"strings"
)

// rawgoSeams are the files allowed to spawn goroutines or multiplex with
// multi-case select: the sanctioned concurrency seams, each of which is
// proven worker-count-invariant by its own determinism tests. Paths are
// module-root relative.
//
// A seam can also opt in locally with a file-scoped
// `//detlint:allow rawgo <reason>` before its package clause (see
// internal/core/barrier.go, the PDES worker pool): that keeps the
// reasoning next to the code it excuses instead of in this list. The
// PDES coordinator (internal/core/pdes.go) itself no longer spawns
// goroutines — all raw concurrency moved behind the barrier seam.
var rawgoSeams = []string{
	"internal/experiments/parallel.go", // replication/grid worker pool
	"internal/buffer/checkpoint.go",    // async checkpoint flush writers
}

// RawgoAnalyzer confines raw concurrency to the whitelisted seams.
//
// The sim kernel executes continuations on one stack in timestamp order;
// determinism holds because nothing else runs. A `go` statement or a
// multi-case `select` anywhere else in simulation code reintroduces
// scheduler ordering into the model — the class of bug the PR-2 kernel
// rewrite removed. Single-case select (a plain blocking op) stays legal.
var RawgoAnalyzer = &Analyzer{
	Name: "rawgo",
	Doc: "go statements and multi-case select are confined to whitelisted " +
		"concurrency seams; sim code is single-threaded continuation style",
	Applies: inSimScope,
	Run:     runRawgo,
}

func runRawgo(pass *Pass) {
	for _, f := range pass.Files {
		file := pass.RelFile(f.Pos())
		if rawgoSeam(file) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(st.Pos(), "rawgo",
					"go statement outside the whitelisted concurrency seams (%s)",
					strings.Join(rawgoSeams, ", "))
			case *ast.SelectStmt:
				if len(st.Body.List) > 1 {
					pass.Reportf(st.Pos(), "rawgo",
						"multi-case select outside the whitelisted concurrency seams (%s)",
						strings.Join(rawgoSeams, ", "))
				}
			}
			return true
		})
	}
}

// rawgoSeam reports whether file (module-relative, slash form) is a
// sanctioned concurrency seam.
func rawgoSeam(file string) bool {
	for _, s := range rawgoSeams {
		if file == s || strings.HasSuffix(file, "/"+s) {
			return true
		}
	}
	return false
}
