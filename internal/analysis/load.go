package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked module package.
type Package struct {
	Fset   *token.FileSet
	Path   string // import path ("repro/internal/core")
	RelDir string // module-root-relative dir ("internal/core", "" for root)
	Dir    string // absolute dir
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Loader loads and typechecks packages of the enclosing module using only
// the stdlib toolchain: module packages are parsed from source under the
// module root, stdlib dependencies are located with go/build and typechecked
// from $GOROOT/src. No export data, no subprocesses, no external deps.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	pkgs map[string]*Package       // module packages by import path
	std  map[string]*types.Package // non-module packages by import path
	busy map[string]bool           // cycle guard
}

// NewLoader locates the module root by ascending from dir to the nearest
// go.mod and reads the module path from it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("detlint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("detlint: no module line in %s/go.mod", root)
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		ModuleRoot: root,
		ModulePath: modPath,
		pkgs:       make(map[string]*Package),
		std:        make(map[string]*types.Package),
		busy:       make(map[string]bool),
	}, nil
}

// Load resolves patterns to module packages. "./..." (or "...") walks the
// whole module, skipping testdata and hidden directories the way the go tool
// does. Any other pattern is a module-root-relative directory and may point
// inside testdata — that is how fixture and seeded-violation packages are
// linted deliberately.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(rel string) {
		rel = filepath.ToSlash(rel)
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" {
			walked, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
			continue
		}
		rel := filepath.Clean(filepath.FromSlash(pat))
		if rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) || filepath.IsAbs(rel) {
			return nil, fmt.Errorf("detlint: pattern %q escapes the module", pat)
		}
		if rel == "." {
			rel = ""
		}
		ok, err := l.hasGoFiles(filepath.Join(l.ModuleRoot, rel))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("detlint: no Go files in %q", pat)
		}
		add(rel)
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, rel := range dirs {
		pkg, err := l.loadRelDir(rel)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walkModule finds every module-root-relative directory holding a
// non-test Go file, excluding testdata and dot-directories.
func (l *Loader) walkModule() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if isSourceFile(d.Name()) {
			rel, err := filepath.Rel(l.ModuleRoot, filepath.Dir(p))
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
				dirs = append(dirs, rel)
			}
		}
		return nil
	})
	return dirs, err
}

// isSourceFile reports whether name is a lintable Go file: not a test, not
// editor/tool detritus.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

func (l *Loader) hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// importPath maps a module-root-relative dir to its import path.
func (l *Loader) importPath(rel string) string {
	if rel == "" {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// loadRelDir parses and typechecks one module package. Source files are
// registered in the FileSet under their module-root-relative names so
// diagnostics print stable, cd-independent paths.
func (l *Loader) loadRelDir(rel string) (*Package, error) {
	path := l.importPath(rel)
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("detlint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	dir := filepath.Join(l.ModuleRoot, rel)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		relName := filepath.ToSlash(filepath.Join(rel, e.Name()))
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, relName, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("detlint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(l.importDep), FakeImportC: true}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("detlint: typecheck %s: %v", path, err)
	}
	pkg := &Package{
		Fset:   l.Fset,
		Path:   path,
		RelDir: filepath.ToSlash(rel),
		Dir:    dir,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// importDep resolves an import for the typechecker: module packages load
// recursively from the module tree; everything else is found with go/build
// (stdlib under $GOROOT/src) and typechecked from source.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadRelDir(filepath.FromSlash(rel))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if p, ok := l.std[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("detlint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	bp, err := build.Import(path, "", 0)
	if err != nil {
		return nil, fmt.Errorf("detlint: locate %s: %v", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(bp.Dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: importerFunc(l.importDep), FakeImportC: true}
	tpkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("detlint: typecheck dependency %s: %v", path, err)
	}
	l.std[path] = tpkg
	return tpkg, nil
}
