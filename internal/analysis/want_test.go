package analysis

// The fixture harness mirrors x/tools' analysistest in miniature: fixture
// packages under testdata/src/<rule>/ carry `// want `+"`regex`"+`` comments
// on the lines where a diagnostic must appear; the harness runs one or more
// analyzers over the fixture (scope forced, as the driver's -scope=all
// does), matches diagnostics to wants line by line, and fails on either an
// unexpected diagnostic or an unmatched expectation. Malformed-suppression
// ("suppress" rule) diagnostics are asserted by substring instead, because
// they land on the directive's own line where a want comment cannot sit.

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%q) = %d packages, want 1", dir, len(pkgs))
	}
	return pkgs[0]
}

type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantChunk = regexp.MustCompile("`([^`]*)`")

func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				chunks := wantChunk.FindAllStringSubmatch(rest, -1)
				if len(chunks) == 0 {
					t.Fatalf("%s:%d: want comment without backtick-quoted regex", pos.Filename, pos.Line)
				}
				for _, m := range chunks {
					wants = append(wants, &want{
						file: pos.Filename,
						line: pos.Line,
						rx:   regexp.MustCompile(m[1]),
					})
				}
			}
		}
	}
	return wants
}

// runWant checks a fixture package against its want comments.
// wantMalformed lists substrings of expected "suppress" diagnostics.
func runWant(t *testing.T, dir string, analyzers []*Analyzer, wantMalformed []string) {
	t.Helper()
	pkg := loadFixture(t, dir)
	wants := parseWants(t, pkg)
	var malformed []Diagnostic
	for _, d := range RunAnalyzers(pkg, analyzers, true) {
		if d.Rule == "suppress" {
			malformed = append(malformed, d)
			continue
		}
		text := fmt.Sprintf("%s: %s", d.Rule, d.Message)
		found := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
	if len(malformed) != len(wantMalformed) {
		t.Fatalf("got %d malformed-suppression diagnostics %v, want %d", len(malformed), malformed, len(wantMalformed))
	}
	used := make([]bool, len(malformed))
	for _, sub := range wantMalformed {
		found := false
		for i, d := range malformed {
			if !used[i] && strings.Contains(d.Message, sub) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no suppress diagnostic containing %q in %v", sub, malformed)
		}
	}
}

const fixtureRoot = "internal/analysis/testdata/src/"

func TestWalltimeFixture(t *testing.T) {
	runWant(t, fixtureRoot+"walltime", []*Analyzer{WalltimeAnalyzer}, nil)
}

func TestRngstreamFixture(t *testing.T) {
	runWant(t, fixtureRoot+"rngstream", []*Analyzer{RngstreamAnalyzer}, nil)
}

func TestMaporderFixture(t *testing.T) {
	runWant(t, fixtureRoot+"maporder", []*Analyzer{MaporderAnalyzer}, nil)
}

func TestRawgoFixture(t *testing.T) {
	runWant(t, fixtureRoot+"rawgo", []*Analyzer{RawgoAnalyzer}, nil)
}

func TestFloatsumFixture(t *testing.T) {
	runWant(t, fixtureRoot+"floatsum", []*Analyzer{FloatsumAnalyzer}, nil)
}

func TestSuppressFixture(t *testing.T) {
	runWant(t, fixtureRoot+"suppress",
		[]*Analyzer{WalltimeAnalyzer, MaporderAnalyzer},
		[]string{
			"requires a reason",  // allow without reason
			"requires a reason",  // ordered without reason
			"needs a known rule", // unknown rule name
			"unknown directive",  // detlint:ignore
		})
}

// TestSeededFixture proves the CI self-test file trips every rule — the
// property the pipeline's seeded-violation step depends on.
func TestSeededFixture(t *testing.T) {
	pkg := loadFixture(t, "internal/analysis/testdata/seeded")
	rules := make(map[string]bool)
	for _, d := range RunAnalyzers(pkg, All(), true) {
		rules[d.Rule] = true
	}
	for _, a := range All() {
		if !rules[a.Name] {
			t.Errorf("seeded fixture does not trip rule %q; the CI gate self-test would rot", a.Name)
		}
	}
}
