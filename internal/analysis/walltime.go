package analysis

import (
	"go/ast"
)

// forbiddenWalltime maps a package path to identifiers that read the wall
// clock or the process environment. Simulation code must take all time from
// the sim kernel's clock and all configuration through Config structs;
// consulting the host at run time makes output depend on when and where the
// simulator runs. The list is a strict superset of the names that have
// actually caused review churn (time.Now/Since/Sleep, os.Getenv): the timer
// constructors are included because any use of them in sim code is the same
// bug about to happen.
var forbiddenWalltime = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true, "Sleep": true,
		"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
		"AfterFunc": true,
	},
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true,
	},
}

// WalltimeAnalyzer forbids wall-clock and environment reads in simulation
// packages.
var WalltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock and environment reads (time.Now/Since/Sleep/timers, " +
		"os.Getenv) in simulation packages; only the sim clock may be consulted",
	Applies: inSimScope,
	Run:     runWalltime,
}

func runWalltime(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			pkgPath, sel := selectorCallee(pass.Info, n)
			if sel == nil {
				return true
			}
			if forbiddenWalltime[pkgPath][sel.Name] {
				pass.Reportf(n.Pos(), "walltime",
					"%s.%s reads host state; simulation code must use the sim clock (sim.Time)",
					pkgPath, sel.Name)
			}
			return true
		})
	}
}
