package rng

import (
	"testing"
	"testing/quick"
)

func TestDeriveIndexZeroIsBase(t *testing.T) {
	for _, base := range []int64{1, 42, -7, 1 << 40} {
		if got := Derive(base, 0); got != base {
			t.Errorf("Derive(%d, 0) = %d, want the base seed", base, got)
		}
	}
}

func TestDeriveDeterministic(t *testing.T) {
	f := func(base int64, idx uint8) bool {
		return Derive(base, int(idx)) == Derive(base, int(idx))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDeriveDistinct checks that substreams of one base seed do not collide
// with each other or with neighbouring base seeds over a realistic
// replication range.
func TestDeriveDistinct(t *testing.T) {
	seen := map[int64]string{}
	for base := int64(1); base <= 8; base++ {
		for idx := 0; idx < 64; idx++ {
			s := Derive(base, idx)
			key := string(rune(base)) + "/" + string(rune(idx))
			if prev, dup := seen[s]; dup {
				t.Fatalf("Derive collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

// TestDeriveNeverZero: a zero seed means "use the default" to Options-style
// callers, so Derive must never produce it.
func TestDeriveNeverZero(t *testing.T) {
	f := func(base int64, idx uint16) bool {
		if idx == 0 {
			return true // index 0 passes the base through by design
		}
		return Derive(base, int(idx)) != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDerivedStreamsDecorrelated: streams seeded from adjacent replication
// indices must not produce correlated draws.
func TestDerivedStreamsDecorrelated(t *testing.T) {
	a := NewStream(Derive(1, 1), "x")
	b := NewStream(Derive(1, 2), "x")
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Intn(100) == b.Intn(100) {
			same++
		}
	}
	// Expected ~1% matches; 5% signals correlated streams.
	if same > n/20 {
		t.Errorf("adjacent substreams agreed on %d/%d draws", same, n)
	}
}
