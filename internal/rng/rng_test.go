package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42, "cpu")
	b := NewStream(42, "cpu")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+component diverged")
		}
	}
}

func TestStreamsDecorrelated(t *testing.T) {
	a := NewStream(42, "cpu")
	b := NewStream(42, "disk")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for different components identical in %d/100 draws", same)
	}
}

func TestExpMean(t *testing.T) {
	s := NewStream(1, "exp")
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.2 {
		t.Fatalf("exp mean = %v, want ~10", mean)
	}
}

func TestExpNonNegative(t *testing.T) {
	s := NewStream(2, "exp")
	for i := 0; i < 10000; i++ {
		if v := s.Exp(5); v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
	}
}

func TestExpDegenerateMean(t *testing.T) {
	s := NewStream(3, "exp")
	if s.Exp(0) != 0 || s.Exp(-1) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
}

func TestExpIntMin(t *testing.T) {
	s := NewStream(4, "size")
	for i := 0; i < 1000; i++ {
		if v := s.ExpInt(2, 1); v < 1 {
			t.Fatalf("ExpInt below min: %d", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := NewStream(5, "bool")
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", p)
	}
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestUniformRange(t *testing.T) {
	s := NewStream(6, "uni")
	for i := 0; i < 10000; i++ {
		v := s.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestDiscreteFrequencies(t *testing.T) {
	d := MustDiscrete([]float64{1, 2, 7})
	s := NewStream(7, "disc")
	const n = 200000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[d.Sample(s)]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i, w := range want {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.01 {
			t.Fatalf("category %d frequency %v, want %v", i, got, w)
		}
	}
}

func TestDiscreteZeroWeightNeverSampled(t *testing.T) {
	d := MustDiscrete([]float64{0, 1, 0})
	s := NewStream(8, "disc")
	for i := 0; i < 10000; i++ {
		if got := d.Sample(s); got != 1 {
			t.Fatalf("sampled zero-weight category %d", got)
		}
	}
}

func TestDiscreteErrors(t *testing.T) {
	if _, err := NewDiscrete(nil); err == nil {
		t.Fatal("empty weights must error")
	}
	if _, err := NewDiscrete([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights must error")
	}
	if _, err := NewDiscrete([]float64{1, -1}); err == nil {
		t.Fatal("negative weight must error")
	}
	if _, err := NewDiscrete([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN weight must error")
	}
}

func TestMustDiscretePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustDiscrete(nil)
}

// Property: Sample always returns a valid index in [0, len) for any
// positive-weight vector.
func TestDiscreteIndexInRange(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		total := 0.0
		for i, v := range raw {
			weights[i] = float64(v)
			total += weights[i]
		}
		if total == 0 {
			return true
		}
		d, err := NewDiscrete(weights)
		if err != nil {
			return false
		}
		s := NewStream(seed, "q")
		for i := 0; i < 50; i++ {
			idx := d.Sample(s)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnAndInt63n(t *testing.T) {
	s := NewStream(9, "n")
	for i := 0; i < 1000; i++ {
		if v := s.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := s.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}
