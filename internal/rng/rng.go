// Package rng provides the random-variate generation TPSIM needs: seeded,
// named streams with exponential, uniform and discrete draws. Every model
// component takes its own stream so experiments are reproducible and
// variance between configurations is reduced (common random numbers).
package rng

import (
	"fmt"
	"math"
	"math/rand"
)

// Stream is a deterministic pseudo-random number stream.
type Stream struct {
	r *rand.Rand
}

// NewStream returns a stream seeded from the given master seed and a
// component name, so distinct components get decorrelated substreams that
// stay stable as the codebase evolves.
func NewStream(seed int64, component string) *Stream {
	h := fnv64(component)
	return &Stream{r: rand.New(rand.NewSource(seed ^ int64(h)))}
}

// Derive maps a base seed and a replication index to the seed of that
// replicated run. Index 0 returns the base seed itself, so a single
// replication reproduces the unreplicated run exactly; higher indices are
// decorrelated through a SplitMix64 finalizer. The mapping depends only on
// (base, runIndex) — never on worker count or scheduling order — which is
// what makes replicated parallel experiments byte-identical to serial ones.
func Derive(base int64, runIndex int) int64 {
	if runIndex == 0 {
		return base
	}
	z := uint64(base) + uint64(runIndex)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	out := int64(z)
	if out == 0 {
		out = 1 // 0 means "use the default seed" to callers; avoid colliding
	}
	return out
}

// fnv64 hashes a component name (FNV-1a) to derive substream seeds.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Float64 returns a uniform draw in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Int63n returns a uniform draw in [0, n). It panics if n <= 0.
func (s *Stream) Int63n(n int64) int64 { return s.r.Int63n(n) }

// Exp returns an exponentially distributed draw with the given mean.
// A zero or negative mean returns 0 (degenerate distribution), which the
// simulation uses for "instantaneous" services.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := s.r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Uniform returns a uniform draw in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// ExpInt returns a draw from an exponential distribution with the given
// mean, rounded to an integer and clamped to at least min. TPSIM uses this
// for variable transaction sizes and instruction counts.
func (s *Stream) ExpInt(mean float64, min int) int {
	n := int(math.Round(s.Exp(mean)))
	if n < min {
		n = min
	}
	return n
}

// Discrete samples an index according to a weight vector. Weights must be
// non-negative with a positive sum.
type Discrete struct {
	cum []float64
}

// NewDiscrete builds a discrete distribution from weights.
func NewDiscrete(weights []float64) (*Discrete, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("rng: empty weight vector")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("rng: weight[%d] = %v", i, w)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: weights sum to %v", total)
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[len(cum)-1] = 1 // exactly, despite rounding
	return &Discrete{cum: cum}, nil
}

// MustDiscrete is NewDiscrete that panics on invalid weights; for use with
// static tables.
func MustDiscrete(weights []float64) *Discrete {
	d, err := NewDiscrete(weights)
	if err != nil {
		panic(err)
	}
	return d
}

// Sample draws an index proportional to the weights.
func (d *Discrete) Sample(s *Stream) int {
	u := s.Float64()
	// Binary search over the cumulative vector.
	lo, hi := 0, len(d.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Len returns the number of categories.
func (d *Discrete) Len() int { return len(d.cum) }
