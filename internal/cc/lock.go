// Package cc implements TPSIM's concurrency-control component: strict
// two-phase locking with long read/write locks, FCFS lock queues with
// upgrade priority, and wait-for-graph deadlock detection performed on every
// denied request, aborting the requester that closes the cycle (section
// 3.2). Lock granularity (none, page or object level) is chosen per
// partition by the engine.
package cc

import "fmt"

// TxnID identifies a transaction for locking purposes.
type TxnID int64

// Mode is a lock mode.
type Mode uint8

// Lock modes. Write conflicts with everything; Read is shared.
const (
	Read Mode = iota
	Write
)

func (m Mode) String() string {
	if m == Read {
		return "R"
	}
	return "W"
}

// Granularity is the per-partition concurrency-control choice (CCmode in
// Table 3.3).
type Granularity uint8

// Granularity values.
const (
	NoCC Granularity = iota // accesses synchronized elsewhere (latches)
	PageLevel
	ObjectLevel
)

// Granule identifies a lockable unit: a page or an object of a partition.
type Granule struct {
	Partition int
	ID        int64
}

// Result is the outcome of an Acquire call.
type Result uint8

// Acquire outcomes.
const (
	Granted  Result = iota // lock held; proceed
	Wait                   // queued; the manager will call onGrant later
	Deadlock               // request would close a cycle; caller must abort
)

// request is one queued lock request.
type request struct {
	txn     TxnID
	mode    Mode
	upgrade bool
}

// holder is one granted lock on a granule. Holder sets are small (usually a
// handful of readers or one writer), so a slice beats a map allocation on
// the per-transaction hot path.
type holder struct {
	txn  TxnID
	mode Mode
}

// lockEntry is the state of one granule's lock.
type lockEntry struct {
	holders []holder
	queue   []request
}

func (e *lockEntry) compatible(txn TxnID, mode Mode) bool {
	for _, h := range e.holders {
		if h.txn == txn {
			continue
		}
		if mode == Write || h.mode == Write {
			return false
		}
	}
	return true
}

// holds reports whether txn is among the entry's holders.
func (e *lockEntry) holds(txn TxnID) bool {
	for _, h := range e.holders {
		if h.txn == txn {
			return true
		}
	}
	return false
}

// setHolder grants or upgrades txn's hold on the entry.
func (e *lockEntry) setHolder(txn TxnID, mode Mode) {
	for i := range e.holders {
		if e.holders[i].txn == txn {
			e.holders[i].mode = mode
			return
		}
	}
	e.holders = append(e.holders, holder{txn: txn, mode: mode})
}

// removeHolder drops txn from the entry's holders, preserving order.
func (e *lockEntry) removeHolder(txn TxnID) {
	for i := range e.holders {
		if e.holders[i].txn == txn {
			e.holders = append(e.holders[:i], e.holders[i+1:]...)
			return
		}
	}
}

// Stats are the lock manager's counters (the paper's "lock behavior"
// statistics).
type Stats struct {
	Requests  int64
	Conflicts int64 // requests that had to wait
	Deadlocks int64
	Upgrades  int64
}

// Sub returns s-o field-wise; the engine reports measurement-window
// deltas with it. Keep Sub and Add in sync when adding counters.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Requests:  s.Requests - o.Requests,
		Conflicts: s.Conflicts - o.Conflicts,
		Deadlocks: s.Deadlocks - o.Deadlocks,
		Upgrades:  s.Upgrades - o.Upgrades,
	}
}

// Add returns s+o field-wise; cluster aggregation sums per-node stats
// with it.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Requests:  s.Requests + o.Requests,
		Conflicts: s.Conflicts + o.Conflicts,
		Deadlocks: s.Deadlocks + o.Deadlocks,
		Upgrades:  s.Upgrades + o.Upgrades,
	}
}

// heldLock records one lock a transaction holds, in acquisition order.
type heldLock struct {
	g    Granule
	mode Mode
}

// Manager is the lock manager. It is engine-agnostic: when a queued request
// is eventually granted, the onGrant callback fires (the engine uses it to
// resume the waiting transaction's continuation).
type Manager struct {
	locks   map[Granule]*lockEntry
	held    map[TxnID][]heldLock
	pending map[TxnID]Granule
	onGrant func(TxnID)
	stats   Stats

	// Freelists for the two per-request allocations of the steady state:
	// granule lock records (pushed when a granule's entry empties, popped
	// on first conflict-free use of a new granule) and per-transaction
	// held-lock lists (pushed at ReleaseAll, popped at a transaction's
	// first grant). Recycled objects follow the pool reset contract:
	// freeing poisons (under poolPoison), popping resets — see DESIGN.md
	// §13.
	freeEntries []*lockEntry
	freeHeld    [][]heldLock

	// Reusable scratch for wouldDeadlock's wait-for-graph search.
	dlVisited map[TxnID]bool
	dlStack   []TxnID
}

// poolPoison, when true, overwrites freed pool objects with sentinel
// garbage so a missing reset line surfaces as corrupt state in tests
// instead of a silent metric skew in production. Tests flip it; the
// default build pays nothing.
var poolPoison = false

// SetPoolPoison toggles freelist poisoning — a debug hook for the
// pool-contract tests (including cross-package ones); never enable it in
// production runs.
func SetPoolPoison(on bool) { poolPoison = on }

// NewManager creates a lock manager. onGrant may be nil if no transaction
// ever waits (e.g. single-user tests).
func NewManager(onGrant func(TxnID)) *Manager {
	return &Manager{
		locks:   make(map[Granule]*lockEntry),
		held:    make(map[TxnID][]heldLock),
		pending: make(map[TxnID]Granule),
		onGrant: onGrant,
	}
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// heldMode returns txn's hold on g, if any.
func (m *Manager) heldMode(txn TxnID, g Granule) (Mode, bool) {
	for _, h := range m.held[txn] {
		if h.g == g {
			return h.mode, true
		}
	}
	return 0, false
}

// HeldCount returns how many locks txn currently holds.
func (m *Manager) HeldCount(txn TxnID) int { return len(m.held[txn]) }

// Holds reports whether txn holds g in at least the given mode.
func (m *Manager) Holds(txn TxnID, g Granule, mode Mode) bool {
	held, ok := m.heldMode(txn, g)
	return ok && (held == Write || mode == Read)
}

// Acquire requests g in the given mode for txn.
//
//   - Granted: the lock is held (strict 2PL: it stays held until ReleaseAll).
//   - Wait: the request conflicts and is queued FCFS (upgrades are placed
//     ahead of non-upgrades); onGrant(txn) fires when it is granted.
//   - Deadlock: granting would close a wait-for cycle; the request is NOT
//     queued and the caller must abort txn (the paper aborts the transaction
//     causing the deadlock).
//
// A transaction may wait for at most one lock at a time.
func (m *Manager) Acquire(txn TxnID, g Granule, mode Mode) Result {
	m.stats.Requests++
	if _, waiting := m.pending[txn]; waiting {
		panic(fmt.Sprintf("cc: txn %d acquiring while already waiting", txn))
	}

	held, holdsIt := m.heldMode(txn, g)
	if holdsIt && (held == Write || mode == Read) {
		return Granted // already sufficient
	}

	e := m.locks[g]
	if e == nil {
		e = m.newEntry()
		m.locks[g] = e
	}

	upgrade := holdsIt && held == Read && mode == Write
	if upgrade {
		m.stats.Upgrades++
	}

	if e.compatible(txn, mode) && (len(e.queue) == 0 || upgrade) {
		// Upgrades may bypass the queue: the upgrader already holds Read,
		// so queued conflicting requests cannot run anyway.
		m.grant(txn, g, e, mode)
		return Granted
	}

	// Denied: deadlock check before queueing (section 3.2: "deadlock checks
	// are performed for every denied lock request").
	m.stats.Conflicts++
	if m.wouldDeadlock(txn, g, e, upgrade) {
		m.stats.Deadlocks++
		return Deadlock
	}

	req := request{txn: txn, mode: mode, upgrade: upgrade}
	if upgrade {
		// Upgrades queue ahead of non-upgrade requests.
		pos := 0
		for pos < len(e.queue) && e.queue[pos].upgrade {
			pos++
		}
		e.queue = append(e.queue, request{})
		copy(e.queue[pos+1:], e.queue[pos:])
		e.queue[pos] = req
	} else {
		e.queue = append(e.queue, req)
	}
	m.pending[txn] = g
	return Wait
}

// newEntry pops a recycled granule record off the freelist (resetting it
// per the pool contract) or allocates a fresh one.
func (m *Manager) newEntry() *lockEntry {
	n := len(m.freeEntries)
	if n == 0 {
		return &lockEntry{}
	}
	e := m.freeEntries[n-1]
	m.freeEntries[n-1] = nil
	m.freeEntries = m.freeEntries[:n-1]
	e.holders = e.holders[:0]
	e.queue = e.queue[:0]
	return e
}

// freeEntry returns an emptied granule record to the freelist. Under
// poolPoison the backing arrays are filled with sentinel garbage beyond
// the (zero) length, so a deleted reset line in newEntry is caught by the
// pool-contract tests rather than leaking stale holders.
func (m *Manager) freeEntry(e *lockEntry) {
	if poolPoison {
		h := e.holders[:cap(e.holders)]
		for i := range h {
			h[i] = holder{txn: -1, mode: ^Mode(0)}
		}
		e.holders = h
		q := e.queue[:cap(e.queue)]
		for i := range q {
			q[i] = request{txn: -1, mode: ^Mode(0), upgrade: true}
		}
		e.queue = q
	}
	m.freeEntries = append(m.freeEntries, e)
}

// grant records txn as holding g in mode.
func (m *Manager) grant(txn TxnID, g Granule, e *lockEntry, mode Mode) {
	e.setHolder(txn, mode)
	locks := m.held[txn]
	for i := range locks {
		if locks[i].g == g {
			locks[i].mode = mode
			return
		}
	}
	if locks == nil {
		// First lock of the transaction: reuse a released list.
		if n := len(m.freeHeld); n > 0 {
			locks = m.freeHeld[n-1][:0]
			m.freeHeld[n-1] = nil
			m.freeHeld = m.freeHeld[:n-1]
		}
	}
	m.held[txn] = append(locks, heldLock{g: g, mode: mode})
}

// ReleaseAll releases every lock txn holds (commit phase 2 or abort) and
// grants any now-compatible queued requests. If txn is still waiting for a
// lock (abort while blocked), the pending request is removed first.
//
// Locks are released in sorted granule order, NOT map order: the release
// order decides which queued waiter is granted (and scheduled) first, so a
// randomized order would make whole simulation runs nondeterministic under
// contention.
func (m *Manager) ReleaseAll(txn TxnID) {
	if g, waiting := m.pending[txn]; waiting {
		m.removeWaiter(txn, g)
	}
	locks := m.held[txn]
	delete(m.held, txn)
	// Insertion sort into granule order: lock sets are small (a handful of
	// granules), and this avoids the sort.Slice allocation per commit.
	for i := 1; i < len(locks); i++ {
		for j := i; j > 0 && granuleLess(locks[j].g, locks[j-1].g); j-- {
			locks[j], locks[j-1] = locks[j-1], locks[j]
		}
	}
	for _, h := range locks {
		e := m.locks[h.g]
		e.removeHolder(txn)
		m.dispatch(h.g, e)
	}
	if cap(locks) > 0 {
		if poolPoison {
			l := locks[:cap(locks)]
			for i := range l {
				l[i] = heldLock{g: Granule{Partition: -1, ID: -1}, mode: ^Mode(0)}
			}
			locks = l
		}
		m.freeHeld = append(m.freeHeld, locks[:0])
	}
}

// granuleLess orders granules by (Partition, ID) — the deterministic lock
// release order.
func granuleLess(a, b Granule) bool {
	if a.Partition != b.Partition {
		return a.Partition < b.Partition
	}
	return a.ID < b.ID
}

// removeWaiter deletes txn's queued request on g and re-dispatches (removing
// a waiter can unblock requests behind it).
func (m *Manager) removeWaiter(txn TxnID, g Granule) {
	delete(m.pending, txn)
	e := m.locks[g]
	if e == nil {
		return
	}
	for i := range e.queue {
		if e.queue[i].txn == txn {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	m.dispatch(g, e)
}

// dispatch grants queued requests from the head while they are compatible,
// firing onGrant for each, and garbage-collects empty entries.
func (m *Manager) dispatch(g Granule, e *lockEntry) {
	for len(e.queue) > 0 {
		head := e.queue[0]
		if head.upgrade {
			// Grantable only when the upgrader is the sole holder.
			if len(e.holders) != 1 || e.holders[0].txn != head.txn {
				break
			}
		} else if !e.compatible(head.txn, head.mode) {
			break
		}
		// Pop by copy-down, not reslicing, so the queue's backing array
		// keeps its front capacity across the entry's recycled lifetimes.
		copy(e.queue, e.queue[1:])
		e.queue[len(e.queue)-1] = request{}
		e.queue = e.queue[:len(e.queue)-1]
		delete(m.pending, head.txn)
		m.grant(head.txn, g, e, head.mode)
		if m.onGrant != nil {
			m.onGrant(head.txn)
		}
	}
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(m.locks, g)
		m.freeEntry(e)
	}
}

// wouldDeadlock reports whether txn waiting on e (for granule g) would close
// a cycle in the wait-for graph. The requester waits for the lock's current
// holders and, unless it is an upgrade, for every already-queued waiter.
func (m *Manager) wouldDeadlock(txn TxnID, g Granule, e *lockEntry, upgrade bool) bool {
	// Iterative depth-first search over "t waits for u" edges looking for
	// txn, on scratch reused across calls (a deadlock check runs on every
	// denied request, so per-check allocation would dominate contended
	// workloads). Reachability is order-independent, so the stack
	// discipline returns the same verdict as the recursive formulation.
	if m.dlVisited == nil {
		m.dlVisited = make(map[TxnID]bool)
	} else {
		clear(m.dlVisited)
	}
	st := m.dlStack[:0]
	// Direct blockers of the hypothetical request.
	for _, h := range e.holders {
		if h.txn != txn {
			st = append(st, h.txn)
		}
	}
	if !upgrade {
		for _, q := range e.queue {
			if q.txn != txn {
				st = append(st, q.txn)
			}
		}
	}
	found := false
	for len(st) > 0 {
		t := st[len(st)-1]
		st = st[:len(st)-1]
		if t == txn {
			found = true
			break
		}
		if m.dlVisited[t] {
			continue
		}
		m.dlVisited[t] = true
		wg, waiting := m.pending[t]
		if !waiting {
			continue
		}
		we := m.locks[wg]
		if we == nil {
			continue
		}
		for _, h := range we.holders {
			if h.txn != t {
				st = append(st, h.txn)
			}
		}
		for _, q := range we.queue {
			if q.txn != t {
				st = append(st, q.txn)
			}
		}
	}
	m.dlStack = st[:0]
	return found
}
