package cc

import (
	"testing"
	"testing/quick"
)

// TestWriteGrantOrderFCFS: conflicting write requests on one granule are
// granted strictly in request order.
func TestWriteGrantOrderFCFS(t *testing.T) {
	f := func(n uint8) bool {
		waiters := int(n%10) + 2
		var granted []TxnID
		m := NewManager(func(txn TxnID) { granted = append(granted, txn) })
		m.Acquire(1, g(0, 1), Write)
		for i := 2; i <= waiters+1; i++ {
			if m.Acquire(TxnID(i), g(0, 1), Write) != Wait {
				return false
			}
		}
		// Release one by one; each release grants exactly the next waiter.
		m.ReleaseAll(1)
		for i := 2; i <= waiters+1; i++ {
			m.ReleaseAll(TxnID(i))
		}
		if len(granted) != waiters {
			return false
		}
		for i, txn := range granted {
			if txn != TxnID(i+2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleLockTransactionsNeverDeadlock: transactions that each request
// only one granule can chain but never cycle.
func TestSingleLockTransactionsNeverDeadlock(t *testing.T) {
	type step struct {
		Txn  uint8
		Gran uint8
		W    bool
	}
	f := func(steps []step) bool {
		m := NewManager(func(TxnID) {})
		busy := map[TxnID]bool{} // requested its single lock already
		for _, s := range steps {
			txn := TxnID(s.Txn%8) + 1
			if busy[txn] {
				continue
			}
			mode := Read
			if s.W {
				mode = Write
			}
			if m.Acquire(txn, g(0, int64(s.Gran%8)), mode) == Deadlock {
				return false
			}
			busy[txn] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderedAcquisitionDeadlockFree: when every transaction acquires its
// granules in globally ascending order, no deadlock can occur even with
// FCFS queue edges (holder edges strictly increase the waited-on granule,
// so the wait-for graph cannot cycle). This is the design argument behind
// Debit-Credit's fixed record-type order (section 3.1).
func TestOrderedAcquisitionDeadlockFree(t *testing.T) {
	type step struct {
		Txn   uint8
		Grans [4]uint8
	}
	f := func(steps []step) bool {
		m := NewManager(func(TxnID) {})
		waiting := map[TxnID]bool{}
		highWater := map[TxnID]int64{} // largest granule requested so far
		for _, s := range steps {
			txn := TxnID(s.Txn%6) + 1
			if waiting[txn] {
				continue
			}
			grans := map[int64]bool{}
			for _, raw := range s.Grans {
				grans[int64(raw%16)] = true
			}
			for id := int64(0); id < 16; id++ {
				// Global per-transaction ascending order across all steps.
				if !grans[id] || (highWater[txn] > 0 && id <= highWater[txn]) {
					continue
				}
				highWater[txn] = id
				switch m.Acquire(txn, g(0, id), Write) {
				case Deadlock:
					return false // impossible under ordered acquisition
				case Wait:
					waiting[txn] = true
				}
				if waiting[txn] {
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueEdgeDeadlock documents that FCFS queue positions create real
// wait-for edges: T1(holds 1) waits on 5; T3 (violating the global order:
// it holds 7) queues on 5 behind T1; T2(holds 5) then requests 7 —
// T2→T3→T1(queue edge)→T2 is a genuine deadlock under strict FCFS, closed
// through a queue position rather than a held lock.
func TestQueueEdgeDeadlock(t *testing.T) {
	m := NewManager(func(TxnID) {})
	if m.Acquire(1, g(0, 1), Write) != Granted {
		t.Fatal("setup")
	}
	if m.Acquire(2, g(0, 5), Write) != Granted {
		t.Fatal("setup")
	}
	if m.Acquire(3, g(0, 2), Write) != Granted {
		t.Fatal("setup")
	}
	if m.Acquire(3, g(0, 7), Write) != Granted {
		t.Fatal("setup")
	}
	if m.Acquire(1, g(0, 5), Write) != Wait {
		t.Fatal("T1 should wait on 5")
	}
	if m.Acquire(3, g(0, 5), Write) != Wait { // out of order: T3 holds 7
		t.Fatal("T3 should queue behind T1")
	}
	// T2 closes the cycle through the queue edge T3→T1.
	if m.Acquire(2, g(0, 7), Write) != Deadlock {
		t.Fatal("FCFS queue deadlock not detected")
	}
}

// TestStrictTwoPhase: no granule is ever available to a conflicting
// requester before the holder's ReleaseAll.
func TestStrictTwoPhase(t *testing.T) {
	m := NewManager(func(TxnID) {})
	m.Acquire(1, g(0, 1), Write)
	m.Acquire(1, g(0, 2), Write)
	// A second transaction conflicts on both.
	if m.Acquire(2, g(0, 1), Read) != Wait {
		t.Fatal("should wait")
	}
	// Nothing 1 does before ReleaseAll may free the lock: acquiring more
	// locks, re-acquiring held ones...
	m.Acquire(1, g(0, 3), Write)
	m.Acquire(1, g(0, 1), Write)
	if m.Holds(2, g(0, 1), Read) {
		t.Fatal("lock leaked before release")
	}
	m.ReleaseAll(1)
	if !m.Holds(2, g(0, 1), Read) {
		t.Fatal("waiter not granted at release")
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := NewManager(func(TxnID) {})
	m.Acquire(1, g(0, 1), Read)
	m.Acquire(1, g(0, 1), Write) // upgrade, sole holder
	m.Acquire(2, g(0, 1), Write) // conflict
	s := m.Stats()
	if s.Requests != 3 || s.Upgrades != 1 || s.Conflicts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
