package cc

import "testing"

// TestGlobalMessageAccounting: requests cost a message pair on the
// requesting node, releases one message, and grants route through onGrant
// exactly as with a local manager.
func TestGlobalMessageAccounting(t *testing.T) {
	var granted []TxnID
	g := NewGlobal(2, func(txn TxnID) { granted = append(granted, txn) })
	gr := Granule{Partition: 0, ID: 1}

	if res := g.AcquireFrom(0, 1, gr, Write); res != Granted {
		t.Fatalf("first acquire = %v", res)
	}
	if res := g.AcquireFrom(1, 2, gr, Write); res != Wait {
		t.Fatalf("conflicting acquire = %v", res)
	}
	if g.Messages(0) != 2 || g.Messages(1) != 2 {
		t.Fatalf("messages = %d/%d, want 2/2", g.Messages(0), g.Messages(1))
	}
	g.ReleaseAllFrom(0, 1)
	if len(granted) != 1 || granted[0] != 2 {
		t.Fatalf("granted = %v, want [2]", granted)
	}
	if g.Messages(0) != 3 {
		t.Fatalf("messages(0) = %d after release, want 3", g.Messages(0))
	}
	if g.TotalMessages() != 5 {
		t.Fatalf("total messages = %d, want 5", g.TotalMessages())
	}
	if st := g.Stats(); st.Requests != 2 || st.Conflicts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	g.ReleaseAllFrom(1, 2)
}

func TestGlobalRejectsZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGlobal(0, nil) must panic")
		}
	}()
	NewGlobal(0, nil)
}
