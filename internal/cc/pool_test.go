package cc

import "testing"

// TestLockEntryPoolResetContract pins the freelist reset contract: a
// recycled granule record and a recycled held-lock list must present fully
// clean state to their next user. poolPoison fills freed backing arrays
// with sentinel garbage, so if any reset line in newEntry or the freeHeld
// pop is deleted, the stale holders/queue/locks become visible here.
func TestLockEntryPoolResetContract(t *testing.T) {
	poolPoison = true
	defer func() { poolPoison = false }()

	m := NewManager(nil)
	g := Granule{Partition: 1, ID: 42}
	// Dirty every field of the entry: shared holders plus a queued writer.
	m.Acquire(1, g, Read)
	m.Acquire(2, g, Read)
	if r := m.Acquire(3, g, Write); r != Wait {
		t.Fatalf("writer behind readers: %v, want Wait", r)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2) // writer granted
	m.ReleaseAll(3) // entry empties: poisoned and freed
	if len(m.freeEntries) == 0 {
		t.Fatal("emptied entry was not returned to the freelist")
	}
	if len(m.freeHeld) == 0 {
		t.Fatal("released held-lock lists were not returned to the freelist")
	}

	// Recycle onto a different granule for a different transaction.
	g2 := Granule{Partition: 2, ID: 7}
	if r := m.Acquire(7, g2, Write); r != Granted {
		t.Fatalf("acquire on recycled entry: %v, want Granted", r)
	}
	e := m.locks[g2]
	if len(e.holders) != 1 || e.holders[0] != (holder{txn: 7, mode: Write}) {
		t.Fatalf("recycled entry carries stale holders: %+v", e.holders)
	}
	if len(e.queue) != 0 {
		t.Fatalf("recycled entry carries stale queue: %+v", e.queue)
	}
	if m.HeldCount(7) != 1 || !m.Holds(7, g2, Write) {
		t.Fatalf("recycled held list corrupt: count=%d", m.HeldCount(7))
	}
	// Poisoned queue capacity must not leak into conflict decisions.
	if r := m.Acquire(8, g2, Read); r != Wait {
		t.Fatalf("conflicting read on recycled entry: %v, want Wait", r)
	}
	m.ReleaseAll(7)
	if !m.Holds(8, g2, Read) {
		t.Fatal("queued reader not granted after recycled writer released")
	}
	m.ReleaseAll(8)
}

// TestLockManagerSteadyStateZeroAlloc pins the headline discipline: once
// the freelists are warm, an acquire-all/release-all transaction cycle
// allocates nothing.
func TestLockManagerSteadyStateZeroAlloc(t *testing.T) {
	m := NewManager(nil)
	txn := TxnID(0)
	allocs := testing.AllocsPerRun(100, func() {
		txn++
		for g := int64(0); g < 8; g++ {
			m.Acquire(txn, Granule{Partition: 0, ID: g}, Write)
		}
		m.ReleaseAll(txn)
	})
	if allocs != 0 {
		t.Fatalf("steady-state lock cycle allocates %.0f/op, want 0", allocs)
	}
}
