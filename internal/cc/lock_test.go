package cc

import (
	"testing"
	"testing/quick"
)

func g(p int, id int64) Granule { return Granule{Partition: p, ID: id} }

func TestReadLocksShared(t *testing.T) {
	m := NewManager(nil)
	if m.Acquire(1, g(0, 1), Read) != Granted {
		t.Fatal("first read not granted")
	}
	if m.Acquire(2, g(0, 1), Read) != Granted {
		t.Fatal("second read not granted")
	}
	if !m.Holds(1, g(0, 1), Read) || !m.Holds(2, g(0, 1), Read) {
		t.Fatal("holders not recorded")
	}
}

func TestWriteExcludes(t *testing.T) {
	var granted []TxnID
	m := NewManager(func(txn TxnID) { granted = append(granted, txn) })
	if m.Acquire(1, g(0, 1), Write) != Granted {
		t.Fatal("first write not granted")
	}
	if m.Acquire(2, g(0, 1), Write) != Wait {
		t.Fatal("conflicting write did not wait")
	}
	if m.Acquire(3, g(0, 1), Read) != Wait {
		t.Fatal("conflicting read did not wait")
	}
	m.ReleaseAll(1)
	if len(granted) != 1 || granted[0] != 2 {
		t.Fatalf("grant order = %v, want [2] (FCFS)", granted)
	}
	m.ReleaseAll(2)
	if len(granted) != 2 || granted[1] != 3 {
		t.Fatalf("grant order = %v, want [2 3]", granted)
	}
}

func TestFCFSNoStarvation(t *testing.T) {
	// A read arriving after a queued write must not jump the queue even
	// though it is compatible with the current read holders.
	m := NewManager(func(TxnID) {})
	m.Acquire(1, g(0, 1), Read)
	if m.Acquire(2, g(0, 1), Write) != Wait {
		t.Fatal("write should wait")
	}
	if m.Acquire(3, g(0, 1), Read) != Wait {
		t.Fatal("read must queue behind waiting write")
	}
}

func TestBatchReadGrant(t *testing.T) {
	var granted []TxnID
	m := NewManager(func(txn TxnID) { granted = append(granted, txn) })
	m.Acquire(1, g(0, 1), Write)
	m.Acquire(2, g(0, 1), Read)
	m.Acquire(3, g(0, 1), Read)
	m.ReleaseAll(1)
	if len(granted) != 2 {
		t.Fatalf("granted = %v, want both reads at once", granted)
	}
}

func TestReacquireHeldLock(t *testing.T) {
	m := NewManager(nil)
	m.Acquire(1, g(0, 1), Write)
	if m.Acquire(1, g(0, 1), Write) != Granted {
		t.Fatal("re-acquire of held write must be granted")
	}
	if m.Acquire(1, g(0, 1), Read) != Granted {
		t.Fatal("read under held write must be granted")
	}
	if got := m.Stats().Requests; got != 3 {
		t.Fatalf("requests = %d", got)
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := NewManager(nil)
	m.Acquire(1, g(0, 1), Read)
	if m.Acquire(1, g(0, 1), Write) != Granted {
		t.Fatal("sole-holder upgrade must be granted")
	}
	if !m.Holds(1, g(0, 1), Write) {
		t.Fatal("upgrade not recorded")
	}
	if m.Stats().Upgrades != 1 {
		t.Fatal("upgrade not counted")
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	var granted []TxnID
	m := NewManager(func(txn TxnID) { granted = append(granted, txn) })
	m.Acquire(1, g(0, 1), Read)
	m.Acquire(2, g(0, 1), Read)
	if m.Acquire(1, g(0, 1), Write) != Wait {
		t.Fatal("upgrade with other reader must wait")
	}
	m.ReleaseAll(2)
	if len(granted) != 1 || granted[0] != 1 {
		t.Fatalf("granted = %v, want [1]", granted)
	}
	if !m.Holds(1, g(0, 1), Write) {
		t.Fatal("upgrade not completed")
	}
}

func TestUpgradeHasPriorityOverQueuedWrites(t *testing.T) {
	var granted []TxnID
	m := NewManager(func(txn TxnID) { granted = append(granted, txn) })
	m.Acquire(1, g(0, 1), Read)
	m.Acquire(2, g(0, 1), Read)
	if m.Acquire(3, g(0, 1), Write) != Wait {
		t.Fatal("fresh write must wait")
	}
	if m.Acquire(1, g(0, 1), Write) != Wait {
		t.Fatal("upgrade must wait for reader 2")
	}
	m.ReleaseAll(2)
	// Upgrade (txn 1) must be granted before the earlier-queued write (3).
	if len(granted) == 0 || granted[0] != 1 {
		t.Fatalf("granted = %v, want upgrade first", granted)
	}
	m.ReleaseAll(1)
	if granted[len(granted)-1] != 3 {
		t.Fatalf("granted = %v, want 3 last", granted)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager(func(TxnID) {})
	m.Acquire(1, g(0, 1), Write)
	m.Acquire(2, g(0, 2), Write)
	if m.Acquire(1, g(0, 2), Write) != Wait {
		t.Fatal("1 should wait for 2")
	}
	// 2 requesting 1's lock closes the cycle: 2 must be refused.
	if m.Acquire(2, g(0, 1), Write) != Deadlock {
		t.Fatal("deadlock not detected")
	}
	if m.Stats().Deadlocks != 1 {
		t.Fatal("deadlock not counted")
	}
	// Victim aborts: releasing its locks lets 1 proceed.
	m.ReleaseAll(2)
	if !m.Holds(1, g(0, 2), Write) {
		t.Fatal("survivor not granted after victim release")
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := NewManager(func(TxnID) {})
	m.Acquire(1, g(0, 1), Write)
	m.Acquire(2, g(0, 2), Write)
	m.Acquire(3, g(0, 3), Write)
	if m.Acquire(1, g(0, 2), Write) != Wait {
		t.Fatal("1→2 should wait")
	}
	if m.Acquire(2, g(0, 3), Write) != Wait {
		t.Fatal("2→3 should wait")
	}
	if m.Acquire(3, g(0, 1), Write) != Deadlock {
		t.Fatal("three-way cycle not detected")
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two readers both upgrading: classic conversion deadlock.
	m := NewManager(func(TxnID) {})
	m.Acquire(1, g(0, 1), Read)
	m.Acquire(2, g(0, 1), Read)
	if m.Acquire(1, g(0, 1), Write) != Wait {
		t.Fatal("first upgrade should wait")
	}
	if m.Acquire(2, g(0, 1), Write) != Deadlock {
		t.Fatal("second upgrade must be a deadlock")
	}
}

func TestNoFalseDeadlock(t *testing.T) {
	m := NewManager(func(TxnID) {})
	m.Acquire(1, g(0, 1), Write)
	if m.Acquire(2, g(0, 1), Write) != Wait {
		t.Fatal("should wait")
	}
	// 3 waiting on the same lock is a chain, not a cycle.
	if m.Acquire(3, g(0, 1), Write) != Wait {
		t.Fatal("chain misreported as deadlock")
	}
}

func TestAbortWhileWaiting(t *testing.T) {
	var granted []TxnID
	m := NewManager(func(txn TxnID) { granted = append(granted, txn) })
	m.Acquire(1, g(0, 1), Write)
	m.Acquire(2, g(0, 1), Write)
	m.Acquire(3, g(0, 1), Write)
	// 2 aborts while queued; its request must vanish.
	m.ReleaseAll(2)
	m.ReleaseAll(1)
	if len(granted) != 1 || granted[0] != 3 {
		t.Fatalf("granted = %v, want [3]", granted)
	}
}

func TestReleaseAllClearsEverything(t *testing.T) {
	m := NewManager(nil)
	m.Acquire(1, g(0, 1), Write)
	m.Acquire(1, g(0, 2), Read)
	m.Acquire(1, g(1, 1), Write)
	if m.HeldCount(1) != 3 {
		t.Fatalf("held = %d", m.HeldCount(1))
	}
	m.ReleaseAll(1)
	if m.HeldCount(1) != 0 {
		t.Fatal("locks remain after ReleaseAll")
	}
	if len(m.locks) != 0 {
		t.Fatalf("%d lock entries leaked", len(m.locks))
	}
}

func TestDistinctGranulesIndependent(t *testing.T) {
	m := NewManager(nil)
	if m.Acquire(1, g(0, 1), Write) != Granted {
		t.Fatal("not granted")
	}
	if m.Acquire(2, g(0, 2), Write) != Granted {
		t.Fatal("different page must be independent")
	}
	if m.Acquire(3, g(1, 1), Write) != Granted {
		t.Fatal("different partition must be independent")
	}
}

func TestConflictCounter(t *testing.T) {
	m := NewManager(func(TxnID) {})
	m.Acquire(1, g(0, 1), Write)
	m.Acquire(2, g(0, 1), Write)
	m.Acquire(3, g(0, 2), Write)
	s := m.Stats()
	if s.Requests != 3 || s.Conflicts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// Property: under random workloads, at most one Write holder per granule,
// never Read+Write holders coexisting, and all entries drain when every
// transaction releases.
func TestLockInvariants(t *testing.T) {
	type op struct {
		Txn  uint8
		Page uint8
		Mode uint8
	}
	f := func(ops []op) bool {
		m := NewManager(func(TxnID) {})
		active := map[TxnID]bool{}
		waiting := map[TxnID]bool{}
		for _, o := range ops {
			txn := TxnID(o.Txn%8) + 1
			if waiting[txn] {
				continue // a waiting txn cannot issue more requests
			}
			mode := Read
			if o.Mode%2 == 1 {
				mode = Write
			}
			gr := g(0, int64(o.Page%16))
			switch m.Acquire(txn, gr, mode) {
			case Granted:
				active[txn] = true
			case Wait:
				active[txn] = true
				waiting[txn] = true
			case Deadlock:
				m.ReleaseAll(txn)
				delete(active, txn)
			}
			// Check mutual exclusion invariant on every entry.
			for _, e := range m.locks {
				writers, readers := 0, 0
				for _, held := range e.holders {
					if held.mode == Write {
						writers++
					} else {
						readers++
					}
				}
				if writers > 1 || (writers == 1 && readers > 0) {
					return false
				}
			}
		}
		// Drain: release every transaction; grants may cascade. A waiter
		// that is granted leaves the waiting set — simulate by releasing
		// repeatedly until the table is empty.
		for i := 0; i < 16; i++ {
			for txn := TxnID(1); txn <= 8; txn++ {
				m.ReleaseAll(txn)
			}
		}
		return len(m.locks) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireWhileWaitingPanics(t *testing.T) {
	m := NewManager(func(TxnID) {})
	m.Acquire(1, g(0, 1), Write)
	m.Acquire(2, g(0, 1), Write) // 2 now waits
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Acquire(2, g(0, 2), Read)
}
