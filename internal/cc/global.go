package cc

import "fmt"

// Global is the cluster-wide lock manager of a multi-node data-sharing
// configuration (section 5 of the paper: extended storage as globally
// accessible storage shared by multiple transaction systems). All nodes
// share one lock table, so conflicts and deadlocks span the cluster; the
// price is message traffic, which Global accounts per node so the engine
// can charge the corresponding CPU pathlength and communication delay.
//
// Message accounting: a lock request is a request/response pair (2
// messages); releasing a transaction's locks is one message (the response
// is not waited for). Lock grants to queued waiters ride on the release
// processing and are folded into the request pair.
//
// Threading: Global is not internally synchronized. The coupled cluster
// engine calls it from its single kernel; the parallel (PDES) engine
// calls it only at synchronization barriers, on the coordinator, while
// every node kernel is quiescent — in both cases calls are serial.
type Global struct {
	m    *Manager
	msgs []int64
}

// NewGlobal creates a lock manager shared by the given number of nodes.
// onGrant fires when a queued request is granted; the cluster routes it to
// the owning node. Transaction ids must be unique across the cluster.
func NewGlobal(nodes int, onGrant func(TxnID)) *Global {
	if nodes <= 0 {
		panic(fmt.Sprintf("cc: global lock manager for %d nodes", nodes))
	}
	return &Global{m: NewManager(onGrant), msgs: make([]int64, nodes)}
}

// AcquireFrom requests a lock on behalf of node, counting the
// request/response message pair. Semantics are Manager.Acquire.
func (g *Global) AcquireFrom(node int, txn TxnID, gr Granule, mode Mode) Result {
	g.msgs[node] += 2
	return g.m.Acquire(txn, gr, mode)
}

// ReleaseAllFrom releases every lock txn holds on behalf of node, counting
// the release message. Semantics are Manager.ReleaseAll.
func (g *Global) ReleaseAllFrom(node int, txn TxnID) {
	g.msgs[node]++
	g.m.ReleaseAll(txn)
}

// Stats returns the shared lock table's counters.
func (g *Global) Stats() Stats { return g.m.Stats() }

// Messages returns the messages node has sent so far.
func (g *Global) Messages(node int) int64 { return g.msgs[node] }

// TotalMessages returns the cluster-wide message count.
func (g *Global) TotalMessages() int64 {
	var total int64
	for _, m := range g.msgs {
		total += m
	}
	return total
}
