package costmodel

import (
	"strings"
	"testing"
)

func TestTable21Bands(t *testing.T) {
	tbl := Table21()
	if len(tbl) != 5 {
		t.Fatalf("table has %d rows", len(tbl))
	}
	// Paper's ordering: main memory > extended memory > SSD ≈ disk cache > disk.
	if !(tbl[MainMemory].PricePerMB.Mid() > tbl[ExtendedMemory].PricePerMB.Mid()) {
		t.Error("main memory must cost more than extended memory")
	}
	if !(tbl[ExtendedMemory].PricePerMB.Mid() > tbl[SolidStateDisk].PricePerMB.Mid()) {
		t.Error("extended memory must cost more than SSD")
	}
	if !(tbl[SolidStateDisk].PricePerMB.Mid() > tbl[Disk].PricePerMB.Mid()) {
		t.Error("SSD must cost more than disk")
	}
	// "Main memory is twice as expensive as extended memory (per MB)".
	ratio := tbl[MainMemory].PricePerMB.Mid() / tbl[ExtendedMemory].PricePerMB.Mid()
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("MM/EM price ratio = %v, want ~2", ratio)
	}
	// Access-time ordering: EM << SSD << disk.
	if !(tbl[ExtendedMemory].AccessMS.Hi < tbl[SolidStateDisk].AccessMS.Lo) {
		t.Error("extended memory must be faster than SSD")
	}
	if !(tbl[SolidStateDisk].AccessMS.Hi < tbl[Disk].AccessMS.Lo) {
		t.Error("SSD must be faster than disk")
	}
}

func TestBandMid(t *testing.T) {
	if got := (Band{10, 20}).Mid(); got != 15 {
		t.Fatalf("mid = %v", got)
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Label = "test"
	b.Add("db on disk", Disk, 1000)
	b.AddPages("buffer", MainMemory, 2000)
	b.Add("skipped", Disk, 0) // zero-size components are dropped
	if len(b.Components) != 2 {
		t.Fatalf("components = %d", len(b.Components))
	}
	// 1000 MB at $11.5/MB + 2000 pages = 7.8125 MB at $3000/MB.
	want := 1000*11.5 + 2000*PageMB*3000
	if got := b.Total(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("total = %v, want ~%v", got, want)
	}
	out := b.Render()
	for _, s := range []string{"test", "db on disk", "buffer", "main memory"} {
		if !strings.Contains(out, s) {
			t.Fatalf("render missing %q:\n%s", s, out)
		}
	}
}

func TestStorageTypeString(t *testing.T) {
	for ty, want := range map[StorageType]string{
		MainMemory: "main memory", ExtendedMemory: "extended memory",
		SolidStateDisk: "solid-state disk", DiskCache: "disk cache", Disk: "disk",
	} {
		if ty.String() != want {
			t.Fatalf("%d.String() = %q", ty, ty.String())
		}
	}
	if !strings.Contains(StorageType(42).String(), "42") {
		t.Fatal("unknown type must render its number")
	}
}

func TestRenderTable21(t *testing.T) {
	out := RenderTable21()
	for _, s := range []string{"Table 2.1", "main memory", "disk", "us", "ms"} {
		if !strings.Contains(out, s) {
			t.Fatalf("render missing %q:\n%s", s, out)
		}
	}
}

func TestPageMB(t *testing.T) {
	// 256 pages of 4KB = 1 MB.
	if got := 256 * PageMB; got != 1.0 {
		t.Fatalf("256 pages = %v MB", got)
	}
}
