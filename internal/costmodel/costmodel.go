// Package costmodel implements the storage cost considerations of section 2
// (Table 2.1): approximate 1990 mainframe prices per megabyte and access
// times per 4KB page for each level of the extended storage hierarchy, plus
// cost estimation for complete storage configurations. The paper uses these
// numbers to argue which combinations of intermediate storage types are
// cost-effective.
package costmodel

import (
	"fmt"
	"strings"
)

// StorageType is one level of the extended storage hierarchy.
type StorageType int

// Hierarchy levels of Fig 2.1.
const (
	MainMemory StorageType = iota
	ExtendedMemory
	SolidStateDisk
	DiskCache
	Disk
)

func (t StorageType) String() string {
	switch t {
	case MainMemory:
		return "main memory"
	case ExtendedMemory:
		return "extended memory"
	case SolidStateDisk:
		return "solid-state disk"
	case DiskCache:
		return "disk cache"
	case Disk:
		return "disk"
	default:
		return fmt.Sprintf("StorageType(%d)", int(t))
	}
}

// Band is a [low, high] range.
type Band struct {
	Lo, Hi float64
}

// Mid returns the band's midpoint.
func (b Band) Mid() float64 { return (b.Lo + b.Hi) / 2 }

// Entry is one row of Table 2.1.
type Entry struct {
	PricePerMB Band // US-$ per MB (large systems, ~1990)
	AccessMS   Band // access time per 4KB page, milliseconds
}

// Table21 returns the paper's Table 2.1. Main memory is about twice the
// price of extended memory; the disk-cache price (a "?" in the paper) is
// assumed comparable to SSD store since both are controller semiconductor
// memory.
func Table21() map[StorageType]Entry {
	return map[StorageType]Entry{
		MainMemory:     {PricePerMB: Band{2000, 4000}, AccessMS: Band{0.00001, 0.0001}},
		ExtendedMemory: {PricePerMB: Band{1000, 2000}, AccessMS: Band{0.01, 0.1}},
		SolidStateDisk: {PricePerMB: Band{500, 1000}, AccessMS: Band{1, 3}},
		DiskCache:      {PricePerMB: Band{500, 1000}, AccessMS: Band{1, 3}},
		Disk:           {PricePerMB: Band{3, 20}, AccessMS: Band{10, 20}},
	}
}

// PageMB is the size of one 4KB database page in megabytes.
const PageMB = 4.0 / 1024.0

// Component is one priced part of a storage configuration.
type Component struct {
	Label string
	Type  StorageType
	MB    float64
}

// Cost returns the component's midpoint cost in dollars.
func (c Component) Cost() float64 { return c.MB * Table21()[c.Type].PricePerMB.Mid() }

// Breakdown is a priced storage configuration.
type Breakdown struct {
	Label      string
	Components []Component
}

// Add appends a component; zero-size components are skipped.
func (b *Breakdown) Add(label string, t StorageType, mb float64) {
	if mb <= 0 {
		return
	}
	b.Components = append(b.Components, Component{Label: label, Type: t, MB: mb})
}

// AddPages prices page frames of the given storage type.
func (b *Breakdown) AddPages(label string, t StorageType, pages int64) {
	b.Add(label, t, float64(pages)*PageMB)
}

// Total returns the midpoint total cost in dollars.
func (b *Breakdown) Total() float64 {
	sum := 0.0
	for _, c := range b.Components {
		sum += c.Cost()
	}
	return sum
}

// Render formats the breakdown.
func (b *Breakdown) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: total $%.0f\n", b.Label, b.Total())
	for _, c := range b.Components {
		fmt.Fprintf(&sb, "  %-28s %-16s %10.1f MB  $%.0f\n", c.Label, c.Type, c.MB, c.Cost())
	}
	return sb.String()
}

// RenderTable21 renders the price/latency table itself.
func RenderTable21() string {
	var sb strings.Builder
	sb.WriteString("Table 2.1: storage price and access time (approx. 1990, large systems)\n")
	fmt.Fprintf(&sb, "%-18s %16s %22s\n", "storage type", "price [$/MB]", "access per 4KB page")
	order := []StorageType{MainMemory, ExtendedMemory, SolidStateDisk, DiskCache, Disk}
	t := Table21()
	for _, ty := range order {
		e := t[ty]
		fmt.Fprintf(&sb, "%-18s %7.0f - %6.0f %12s\n",
			ty.String(), e.PricePerMB.Lo, e.PricePerMB.Hi, fmtAccess(e.AccessMS))
	}
	return sb.String()
}

func fmtAccess(b Band) string {
	if b.Hi < 1 {
		return fmt.Sprintf("%.0f - %.0f us", b.Lo*1000, b.Hi*1000)
	}
	return fmt.Sprintf("%.0f - %.0f ms", b.Lo, b.Hi)
}
