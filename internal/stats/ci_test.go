package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanCI95(t *testing.T) {
	cases := []struct {
		name     string
		values   []float64
		mean, ci float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{3.5}, 3.5, 0},
		{"identical", []float64{2, 2, 2, 2}, 2, 0},
		// sd=sqrt(2), n=2, df=1: t=12.706 -> half = 12.706*sqrt(2)/sqrt(2)
		{"pair", []float64{4, 6}, 5, 12.706},
		// sd=sqrt(2.5), n=5, df=4: t=2.776 -> half = 2.776*sd/sqrt(5)
		{"five", []float64{1, 2, 3, 4, 5}, 3, 2.776 * math.Sqrt(2.5) / math.Sqrt(5)},
	}
	for _, c := range cases {
		mean, ci := MeanCI95(c.values)
		if math.Abs(mean-c.mean) > 1e-9 || math.Abs(ci-c.ci) > 1e-9 {
			t.Errorf("%s: MeanCI95 = (%v, %v), want (%v, %v)", c.name, mean, ci, c.mean, c.ci)
		}
	}
}

// TestMeanCI95LargeSampleUsesNormal: past 30 degrees of freedom the helper
// falls back to the 1.96 normal critical value.
func TestMeanCI95LargeSampleUsesNormal(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i % 2) // sd ≈ 0.5025
	}
	mean, ci := MeanCI95(values)
	sd := math.Sqrt(100.0 / 4.0 / 99.0 * 100.0 / 100.0) // sample sd of alternating 0/1
	want := 1.96 * sd / 10
	if math.Abs(mean-0.5) > 1e-9 || math.Abs(ci-want) > 1e-6 {
		t.Errorf("MeanCI95 = (%v, %v), want (0.5, %v)", mean, ci, want)
	}
}

func TestMeanCI95MatchesSummaryMean(t *testing.T) {
	values := []float64{3.1, 4.1, 5.9, 2.6, 5.3}
	s := NewSummary("x", false)
	for _, v := range values {
		s.Add(v)
	}
	mean, _ := MeanCI95(values)
	if math.Abs(mean-s.Mean()) > 1e-12 {
		t.Errorf("MeanCI95 mean %v != Summary mean %v", mean, s.Mean())
	}
}

func TestFigureRenderWithCI(t *testing.T) {
	fig := &Figure{Title: "T", XLabel: "x", X: []float64{1, 2}}
	if err := fig.AddSeriesCI("a", []float64{10, 20}, []float64{0.5, 1.25}); err != nil {
		t.Fatal(err)
	}
	if err := fig.AddSeries("b", []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	out := fig.Render()
	for _, want := range []string{"10.00±0.50", "20.00±1.25", "3.00", "4.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "3.00±") {
		t.Errorf("single-run series must not carry ±:\n%s", out)
	}
}

func TestAddSeriesCIValidates(t *testing.T) {
	fig := &Figure{X: []float64{1, 2}}
	if err := fig.AddSeriesCI("bad", []float64{1, 2}, []float64{0.1}); err == nil {
		t.Fatal("mismatched CI length must error")
	}
	if err := fig.AddSeriesCI("bad", []float64{1}, nil); err == nil {
		t.Fatal("mismatched point count must error")
	}
}

func TestTableRenderWithCI(t *testing.T) {
	tbl := NewTable("T", "c", []string{"r1", "r2"}, []string{"a"})
	tbl.SetCI(0, 0, 66.7, 1.2)
	tbl.Set(1, 0, 10)
	out := tbl.Render()
	if !strings.Contains(out, "66.7±1.2") {
		t.Errorf("render missing CI cell:\n%s", out)
	}
	// Unset CI cells render a zero half-width rather than dropping the ±,
	// keeping the column grid rectangular.
	if !strings.Contains(out, "10.0±0.0") {
		t.Errorf("render missing plain cell:\n%s", out)
	}
}
