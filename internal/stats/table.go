package stats

import (
	"fmt"
	"strings"
)

// Series is one labelled curve of an experiment figure: y-values over a
// shared x-axis (e.g. response time over arrival rate).
type Series struct {
	Label  string
	Points []float64
	// CI holds the 95%-confidence half-widths of replicated points; nil for
	// single-run series. When present, cells render as "mean±ci".
	CI []float64
}

// Figure collects several series over one x-axis and renders them as the
// aligned text table the experiment harness prints for each paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// AddSeries appends a curve. The number of points must match the x-axis.
func (f *Figure) AddSeries(label string, points []float64) error {
	return f.AddSeriesCI(label, points, nil)
}

// AddSeriesCI appends a curve with per-point 95%-confidence half-widths
// from replicated runs. A nil ci is a single-run series.
func (f *Figure) AddSeriesCI(label string, points, ci []float64) error {
	if len(points) != len(f.X) {
		return fmt.Errorf("stats: series %q has %d points, axis has %d", label, len(points), len(f.X))
	}
	if ci != nil && len(ci) != len(points) {
		return fmt.Errorf("stats: series %q has %d CI values for %d points", label, len(ci), len(points))
	}
	f.Series = append(f.Series, Series{Label: label, Points: points, CI: ci})
	return nil
}

// Render produces an aligned text table: one row per x value, one column per
// series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	if f.YLabel != "" {
		fmt.Fprintf(&b, "(y: %s)\n", f.YLabel)
	}

	headers := make([]string, 0, len(f.Series)+1)
	headers = append(headers, f.XLabel)
	for _, s := range f.Series {
		headers = append(headers, s.Label)
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	rows := make([][]string, len(f.X))
	for r := range f.X {
		row := make([]string, len(headers))
		row[0] = trimNum(f.X[r])
		for c, s := range f.Series {
			row[c+1] = cellText(s.Points[r], s.CI, r, "%.2f")
		}
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
		rows[r] = row
	}

	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// cellText formats one cell, appending "±ci" when the series carries
// replication confidence intervals.
func cellText(v float64, ci []float64, i int, format string) string {
	if ci == nil {
		return fmt.Sprintf(format, v)
	}
	return fmt.Sprintf(format+"±"+format, v, ci[i])
}

// trimNum formats an x-axis value without trailing zeros.
func trimNum(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// Table is a labelled grid (e.g. the hit-ratio tables 4.2a/b): row labels ×
// column labels with float cells.
type Table struct {
	Title   string
	Corner  string
	Columns []string
	RowLbls []string
	Cells   [][]float64
	// CIs holds per-cell 95%-confidence half-widths from replicated runs;
	// nil until SetCI is first called. When present, cells render as
	// "mean±ci".
	CIs [][]float64
}

// NewTable allocates a table of the given shape with zeroed cells.
func NewTable(title, corner string, rows, cols []string) *Table {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &Table{Title: title, Corner: corner, Columns: cols, RowLbls: rows, Cells: cells}
}

// Set writes one cell.
func (t *Table) Set(row, col int, v float64) { t.Cells[row][col] = v }

// SetCI writes one cell together with the 95%-confidence half-width of its
// replicated mean.
func (t *Table) SetCI(row, col int, v, ci float64) {
	if t.CIs == nil {
		t.CIs = make([][]float64, len(t.RowLbls))
		for i := range t.CIs {
			t.CIs[i] = make([]float64, len(t.Columns))
		}
	}
	t.Cells[row][col] = v
	t.CIs[row][col] = ci
}

// Render produces an aligned text table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	headers := append([]string{t.Corner}, t.Columns...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	body := make([][]string, len(t.RowLbls))
	for r, lbl := range t.RowLbls {
		row := make([]string, len(headers))
		row[0] = lbl
		for c := range t.Columns {
			var rowCI []float64
			if t.CIs != nil {
				rowCI = t.CIs[r]
			}
			row[c+1] = cellText(t.Cells[r][c], rowCI, c, "%.1f")
		}
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
		body[r] = row
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, row := range body {
		writeRow(row)
	}
	return b.String()
}
