package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary("resp", false)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-9 {
		t.Fatalf("var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Fatalf("sum = %v", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary("empty", false)
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 || s.CI95() != 0 {
		t.Fatal("empty summary must be all zeros")
	}
}

func TestSummarySingleValue(t *testing.T) {
	s := NewSummary("one", false)
	s.Add(42)
	if s.Mean() != 42 || s.Var() != 0 || s.StdDev() != 0 {
		t.Fatalf("single-value summary wrong: %v", s)
	}
}

// Property: Welford mean matches direct sum/count for any input.
func TestWelfordMatchesDirect(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSummary("q", false)
		sum := 0.0
		for _, v := range raw {
			s.Add(float64(v))
			sum += float64(v)
		}
		direct := sum / float64(len(raw))
		return math.Abs(s.Mean()-direct) < 1e-6*(1+math.Abs(direct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentiles(t *testing.T) {
	s := NewSummary("p", true)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(1); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Percentile(0.95); math.Abs(got-95.05) > 1e-9 {
		t.Fatalf("p95 = %v", got)
	}
}

func TestPercentileWithoutKeepPanics(t *testing.T) {
	s := NewSummary("nokeep", false)
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Percentile(0.5)
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := NewSummary("s", false)
	big := NewSummary("b", false)
	vals := []float64{1, 2, 3, 4, 5}
	for _, v := range vals {
		small.Add(v)
	}
	for i := 0; i < 100; i++ {
		for _, v := range vals {
			big.Add(v)
		}
	}
	if big.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: small=%v big=%v", small.CI95(), big.CI95())
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio must be 0")
	}
	for i := 0; i < 10; i++ {
		r.Observe(i < 7)
	}
	if math.Abs(r.Value()-0.7) > 1e-12 || math.Abs(r.Percent()-70) > 1e-9 {
		t.Fatalf("ratio = %v", r.Value())
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "ios"}
	c.Inc()
	c.Add(9)
	if c.Count != 10 {
		t.Fatalf("count = %d", c.Count)
	}
	if got := c.Rate(5); got != 2 {
		t.Fatalf("rate = %v", got)
	}
	if got := c.Rate(0); got != 0 {
		t.Fatalf("rate at zero elapsed = %v", got)
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{Title: "Fig X", XLabel: "TPS", YLabel: "ms", X: []float64{10, 100, 700}}
	if err := f.AddSeries("disk", []float64{40.1, 41.2, 80.9}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSeries("NVEM", []float64{5.1, 5.2, 9.3}); err != nil {
		t.Fatal(err)
	}
	out := f.Render()
	for _, want := range []string{"Fig X", "TPS", "disk", "NVEM", "700", "80.90"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+1+3 { // title, ylabel, header, 3 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestFigureSeriesLengthMismatch(t *testing.T) {
	f := Figure{Title: "t", XLabel: "x", X: []float64{1, 2}}
	if err := f.AddSeries("bad", []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table 4.2a", "cache", []string{"main memory", "NVEM 1000"}, []string{"200", "500"})
	tb.Set(0, 0, 53.7)
	tb.Set(0, 1, 59.6)
	tb.Set(1, 0, 14.8)
	tb.Set(1, 1, 11.0)
	out := tb.Render()
	for _, want := range []string{"Table 4.2a", "main memory", "53.7", "11.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTrimNum(t *testing.T) {
	cases := map[float64]string{10: "10", 0.5: "0.5", 2.25: "2.25", 700: "700"}
	for in, want := range cases {
		if got := trimNum(in); got != want {
			t.Fatalf("trimNum(%v) = %q, want %q", in, got, want)
		}
	}
}
