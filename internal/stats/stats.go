// Package stats provides the measurement substrate for TPSIM: streaming
// summaries (Welford), counters and ratios, percentile tracking, and
// tabular series formatting used by the experiment harness to print
// paper-style rows.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of observations with O(1) memory using
// Welford's algorithm, optionally keeping the raw values for percentiles.
type Summary struct {
	name string

	n         int64
	mean      float64
	m2        float64
	min, max  float64
	keep      bool
	values    []float64
	sumDirect float64
}

// NewSummary creates a summary. If keepValues is true, raw observations are
// retained so Percentile can be computed.
func NewSummary(name string, keepValues bool) *Summary {
	return &Summary{name: name, keep: keepValues, min: math.Inf(1), max: math.Inf(-1)}
}

// Name returns the summary's label.
func (s *Summary) Name() string { return s.name }

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	s.sumDirect += x
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if s.keep {
		s.values = append(s.values, x)
	}
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sumDirect }

// Var returns the sample variance (0 when fewer than two observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// CI95 returns the half-width of a 95% confidence interval for the mean
// using the normal approximation (adequate for the thousands of
// transactions a simulation run observes).
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// tCrit95 holds two-tailed 95% Student-t critical values for 1..30 degrees
// of freedom; larger samples use the normal approximation (1.96). Replicated
// experiments have few replications, so the t correction matters there.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// MeanCI95 returns the sample mean of values and the half-width of its 95%
// confidence interval using the Student-t distribution (replications are
// few, so the normal approximation would be too tight). Fewer than two
// values yield a zero half-width.
func MeanCI95(values []float64) (mean, half float64) {
	n := len(values)
	if n == 0 {
		return 0, 0
	}
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var m2 float64
	for _, v := range values {
		d := v - mean
		m2 += d * d
	}
	sd := math.Sqrt(m2 / float64(n-1))
	t := 1.96
	if df := n - 1; df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	return mean, t * sd / math.Sqrt(float64(n))
}

// MeanCI95Seq is MeanCI95 over a virtual sequence: at(i) yields the i-th
// of n values. Callers aggregating a metric over stored results use it to
// avoid materializing a value slice; the two-pass summation order matches
// MeanCI95 exactly, so both produce bit-identical statistics.
func MeanCI95Seq(n int, at func(i int) float64) (mean, half float64) {
	if n == 0 {
		return 0, 0
	}
	for i := 0; i < n; i++ {
		mean += at(i)
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var m2 float64
	for i := 0; i < n; i++ {
		d := at(i) - mean
		m2 += d * d
	}
	sd := math.Sqrt(m2 / float64(n-1))
	t := 1.96
	if df := n - 1; df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	return mean, t * sd / math.Sqrt(float64(n))
}

// Percentile returns the p-quantile (0 <= p <= 1) of retained values. It
// panics if the summary was created without keepValues.
func (s *Summary) Percentile(p float64) float64 {
	if !s.keep {
		panic("stats: Percentile on summary without kept values")
	}
	if len(s.values) == 0 {
		return 0
	}
	sorted := make([]float64, len(s.values))
	copy(sorted, s.values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := p * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String formats the summary for logs.
func (s *Summary) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		s.name, s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Ratio tracks hits over trials, the metric behind every hit-ratio table in
// the paper.
type Ratio struct {
	Hits   int64
	Trials int64
}

// Observe records one trial.
func (r *Ratio) Observe(hit bool) {
	r.Trials++
	if hit {
		r.Hits++
	}
}

// Value returns hits/trials (0 when no trials).
func (r *Ratio) Value() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Trials)
}

// Percent returns the ratio as a percentage.
func (r *Ratio) Percent() float64 { return 100 * r.Value() }

// Counter is a named monotone event counter.
type Counter struct {
	Name  string
	Count int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Count++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.Count += n }

// Rate returns count per unit of elapsed time.
func (c *Counter) Rate(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Count) / elapsed
}
