// Package trace implements TPSIM's trace-driven workload path: a database
// trace format with reader and writer, aggregate statistics, a synthetic
// generator that reproduces the published characteristics of the paper's
// real-life trace (section 4.6), and an adapter that feeds a trace into the
// simulation engine as a workload source.
//
// The original trace (from a production IBM installation) is not available;
// see DESIGN.md section 2 for the substitution argument.
package trace

import (
	"fmt"
)

// Ref is a single page reference of a traced transaction.
type Ref struct {
	File  int
	Page  int64
	Write bool
}

// Tx is one traced transaction: its type and ordered page references.
type Tx struct {
	Type int
	Refs []Ref
}

// Update reports whether the transaction writes at least one page.
func (t *Tx) Update() bool {
	for i := range t.Refs {
		if t.Refs[i].Write {
			return true
		}
	}
	return false
}

// Trace is a recorded (or synthesized) workload: a set of database files and
// a sequence of transactions referencing their pages.
type Trace struct {
	// FilePages gives the size in pages of each database file; file ids in
	// Refs index into it.
	FilePages []int64
	// TypeNames optionally labels the transaction types.
	TypeNames []string
	Txs       []Tx
}

// NumFiles returns the number of database files.
func (tr *Trace) NumFiles() int { return len(tr.FilePages) }

// Validate checks referential integrity: every reference must name an
// existing file and a page within its bounds, and every transaction must
// have a known type and at least one reference.
func (tr *Trace) Validate() error {
	if len(tr.FilePages) == 0 {
		return fmt.Errorf("trace: no files")
	}
	for f, pages := range tr.FilePages {
		if pages <= 0 {
			return fmt.Errorf("trace: file %d has %d pages", f, pages)
		}
	}
	for i := range tr.Txs {
		tx := &tr.Txs[i]
		if tx.Type < 0 {
			return fmt.Errorf("trace: tx %d has negative type", i)
		}
		if len(tr.TypeNames) > 0 && tx.Type >= len(tr.TypeNames) {
			return fmt.Errorf("trace: tx %d type %d out of range", i, tx.Type)
		}
		if len(tx.Refs) == 0 {
			return fmt.Errorf("trace: tx %d has no references", i)
		}
		for j, r := range tx.Refs {
			if r.File < 0 || r.File >= len(tr.FilePages) {
				return fmt.Errorf("trace: tx %d ref %d: file %d out of range", i, j, r.File)
			}
			if r.Page < 0 || r.Page >= tr.FilePages[r.File] {
				return fmt.Errorf("trace: tx %d ref %d: page %d out of range for file %d",
					i, j, r.Page, r.File)
			}
		}
	}
	return nil
}

// Stats are the aggregate characteristics of a trace, matching the numbers
// the paper reports for its real-life workload.
type Stats struct {
	NumTxs        int
	NumTypes      int
	NumAccesses   int64
	NumWrites     int64
	UpdateTxs     int
	DistinctPages int
	MaxTxSize     int
	TotalPages    int64 // database size in pages
}

// WriteFrac returns the fraction of accesses that are writes.
func (s Stats) WriteFrac() float64 {
	if s.NumAccesses == 0 {
		return 0
	}
	return float64(s.NumWrites) / float64(s.NumAccesses)
}

// UpdateTxFrac returns the fraction of transactions performing updates.
func (s Stats) UpdateTxFrac() float64 {
	if s.NumTxs == 0 {
		return 0
	}
	return float64(s.UpdateTxs) / float64(s.NumTxs)
}

// ComputeStats scans the trace and returns its aggregate characteristics.
func (tr *Trace) ComputeStats() Stats {
	s := Stats{NumTxs: len(tr.Txs)}
	types := map[int]struct{}{}
	type pageKey struct {
		file int
		page int64
	}
	distinct := map[pageKey]struct{}{}
	for i := range tr.Txs {
		tx := &tr.Txs[i]
		types[tx.Type] = struct{}{}
		if len(tx.Refs) > s.MaxTxSize {
			s.MaxTxSize = len(tx.Refs)
		}
		update := false
		for _, r := range tx.Refs {
			s.NumAccesses++
			if r.Write {
				s.NumWrites++
				update = true
			}
			distinct[pageKey{r.File, r.Page}] = struct{}{}
		}
		if update {
			s.UpdateTxs++
		}
	}
	s.NumTypes = len(types)
	s.DistinctPages = len(distinct)
	for _, p := range tr.FilePages {
		s.TotalPages += p
	}
	return s
}
