package trace

import "fmt"

// LoadTimeline derives a rate timeline from a trace for trace-driven rate
// replay (workload.ArrivalReplay): the recorded transaction sequence is cut
// into `buckets` equal slices — recorded position standing in for time, as
// the TPSIM-TRACE format carries no timestamps — and each slice's share of
// the total reference volume becomes its rate multiplier. The multipliers
// are normalized to average 1, so feeding them into an ArrivalSpec at some
// mean rate replays the recorded load shape at that rate.
func LoadTimeline(tr *Trace, buckets int) ([]float64, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("trace: timeline buckets = %d", buckets)
	}
	n := len(tr.Txs)
	if n < buckets {
		return nil, fmt.Errorf("trace: %d transactions cannot fill %d timeline buckets", n, buckets)
	}
	vol := make([]float64, buckets)
	total := 0.0
	for i := range tr.Txs {
		refs := float64(len(tr.Txs[i].Refs))
		vol[i*buckets/n] += refs
		total += refs
	}
	mult := make([]float64, buckets)
	for i, v := range vol {
		mult[i] = v * float64(buckets) / total
	}
	return mult, nil
}
