package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzTraceRead fuzzes the line-oriented trace parser. Read must never
// panic and never allocate proportionally to header-declared counts, and
// every input it accepts must satisfy the trace invariants and round-trip
// byte-stably through Write → Read.
func FuzzTraceRead(f *testing.F) {
	// A well-formed trace with every section present.
	full := strings.Join([]string{
		"TPSIM-TRACE 1",
		"FILES 2",
		"FILE 0 100",
		"FILE 1 50",
		"TYPES 2",
		"TYPE 0 debit credit",
		"TYPE 1 query",
		"TX 0 2",
		"R 0 5",
		"W 1 49",
		"TX 1 1",
		"R 1 0",
		"END",
	}, "\n") + "\n"
	f.Add([]byte(full))
	f.Add([]byte("TPSIM-TRACE 1\nFILES 1\nFILE 0 10\nTX 0 1\nW 0 9\nEND\n"))
	f.Add([]byte("TPSIM-TRACE 1\nFILES 1\nFILE 0 10\n# comment\n\nEND\n"))
	// Adversarial seeds: truncations, huge declared counts, trailing junk,
	// sign confusion, wrong ids.
	f.Add([]byte(""))
	f.Add([]byte("TPSIM-TRACE 1"))
	f.Add([]byte("TPSIM-TRACE 1\nFILES 999999999\n"))
	f.Add([]byte("TPSIM-TRACE 1\nFILES 1\nFILE 0 10\nTX 0 2147483647\nR 0 1\n"))
	f.Add([]byte("TPSIM-TRACE 1\nFILES 1 junk\nFILE 0 10\nEND\n"))
	f.Add([]byte("TPSIM-TRACE 1\nFILES 1\nFILE 0 10 junk\nEND\n"))
	f.Add([]byte("TPSIM-TRACE 1\nFILES 1\nFILE 1 10\nEND\n"))
	f.Add([]byte("TPSIM-TRACE 1\nFILES 1\nFILE 0 -5\nEND\n"))
	f.Add([]byte("TPSIM-TRACE 1\nFILES 1\nFILE 0 10\nTYPES 1\nTYPE 0 t\nTX 9 1\nR 0 1\nEND\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only property is "no panic"
		}
		// Accepted input must satisfy the trace invariants…
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("Read accepted a trace that fails Validate: %v", verr)
		}
		// …and round-trip: what Write emits, Read must accept and parse to
		// the same value.
		var buf bytes.Buffer
		if werr := Write(&buf, tr); werr != nil {
			t.Fatalf("Write failed on accepted trace: %v", werr)
		}
		tr2, rerr := Read(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("round-trip re-read failed: %v\nserialized:\n%s", rerr, buf.String())
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round-trip mismatch:\nfirst:  %+v\nsecond: %+v", tr, tr2)
		}
	})
}

// TestReadRejectsTrailingGarbage pins the strict-parsing contract the old
// fmt.Sscanf-based parser violated: counts and numeric fields followed by
// junk must be rejected, not silently truncated.
func TestReadRejectsTrailingGarbage(t *testing.T) {
	bad := map[string]string{
		"files count junk": "TPSIM-TRACE 1\nFILES 1 junk\nFILE 0 10\nEND\n",
		"file line junk":   "TPSIM-TRACE 1\nFILES 1\nFILE 0 10 junk\nEND\n",
		"types count junk": "TPSIM-TRACE 1\nFILES 1\nFILE 0 10\nTYPES 1 junk\nTYPE 0 t\nEND\n",
		"tx line junk":     "TPSIM-TRACE 1\nFILES 1\nFILE 0 10\nTX 0 1 junk\nR 0 1\nEND\n",
		"ref line junk":    "TPSIM-TRACE 1\nFILES 1\nFILE 0 10\nTX 0 1\nR 0 1 junk\nEND\n",
		"hex count":        "TPSIM-TRACE 1\nFILES 0x1\nFILE 0 10\nEND\n",
	}
	for name, in := range bad {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReadHugeDeclaredCountsBounded ensures header-declared sizes cannot
// force allocations before their entries actually parse: a tiny input
// claiming a billion files must fail fast and cheaply.
func TestReadHugeDeclaredCountsBounded(t *testing.T) {
	huge := "TPSIM-TRACE 1\nFILES 1000000000\nFILE 0 10\n"
	if _, err := Read(strings.NewReader(huge)); err == nil {
		t.Fatal("truncated huge-count trace accepted")
	}
	hugeTx := "TPSIM-TRACE 1\nFILES 1\nFILE 0 10\nTX 0 1000000000\nR 0 1\n"
	if _, err := Read(strings.NewReader(hugeTx)); err == nil {
		t.Fatal("truncated huge-tx trace accepted")
	}
}
