package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func tinyTrace() *Trace {
	return &Trace{
		FilePages: []int64{100, 50},
		TypeNames: []string{"query", "update"},
		Txs: []Tx{
			{Type: 0, Refs: []Ref{{File: 0, Page: 3}, {File: 1, Page: 7}}},
			{Type: 1, Refs: []Ref{{File: 0, Page: 99, Write: true}}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := tinyTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]func(*Trace){
		"no files":      func(tr *Trace) { tr.FilePages = nil },
		"zero pages":    func(tr *Trace) { tr.FilePages[0] = 0 },
		"neg type":      func(tr *Trace) { tr.Txs[0].Type = -1 },
		"type range":    func(tr *Trace) { tr.Txs[0].Type = 5 },
		"no refs":       func(tr *Trace) { tr.Txs[0].Refs = nil },
		"bad file":      func(tr *Trace) { tr.Txs[0].Refs[0].File = 9 },
		"page overflow": func(tr *Trace) { tr.Txs[0].Refs[0].Page = 100 },
		"neg page":      func(tr *Trace) { tr.Txs[0].Refs[0].Page = -1 },
	}
	for name, mutate := range cases {
		tr := tinyTrace()
		mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestComputeStats(t *testing.T) {
	s := tinyTrace().ComputeStats()
	if s.NumTxs != 2 || s.NumTypes != 2 || s.NumAccesses != 3 || s.NumWrites != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.UpdateTxs != 1 || s.DistinctPages != 3 || s.MaxTxSize != 2 || s.TotalPages != 150 {
		t.Fatalf("stats = %+v", s)
	}
	if s.WriteFrac() != 1.0/3.0 || s.UpdateTxFrac() != 0.5 {
		t.Fatalf("fracs = %v %v", s.WriteFrac(), s.UpdateTxFrac())
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := tinyTrace()
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Txs) != len(orig.Txs) || got.NumFiles() != orig.NumFiles() {
		t.Fatalf("shape mismatch: %+v", got)
	}
	for i := range orig.Txs {
		if got.Txs[i].Type != orig.Txs[i].Type || len(got.Txs[i].Refs) != len(orig.Txs[i].Refs) {
			t.Fatalf("tx %d mismatch", i)
		}
		for j := range orig.Txs[i].Refs {
			if got.Txs[i].Refs[j] != orig.Txs[i].Refs[j] {
				t.Fatalf("ref %d/%d mismatch: %+v vs %+v", i, j, got.Txs[i].Refs[j], orig.Txs[i].Refs[j])
			}
		}
	}
	if got.TypeNames[1] != "update" {
		t.Fatalf("type names lost: %v", got.TypeNames)
	}
}

func TestRoundTripSynthetic(t *testing.T) {
	spec := DefaultRealLifeSpec()
	// Shrink for test speed: a few hundred transactions.
	for i := range spec.Types {
		spec.Types[i].Count = (spec.Types[i].Count + 49) / 50
	}
	orig := GenerateFromSpec(spec, 7)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	so, sg := orig.ComputeStats(), got.ComputeStats()
	if so != sg {
		t.Fatalf("stats changed in round trip:\n%+v\n%+v", so, sg)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "NOT-A-TRACE\n",
		"no files":     "TPSIM-TRACE 1\n",
		"files zero":   "TPSIM-TRACE 1\nFILES 0\nEND\n",
		"file order":   "TPSIM-TRACE 1\nFILES 2\nFILE 1 10\nFILE 0 10\nEND\n",
		"bad tx":       "TPSIM-TRACE 1\nFILES 1\nFILE 0 10\nTX x y\nEND\n",
		"truncated tx": "TPSIM-TRACE 1\nFILES 1\nFILE 0 10\nTX 0 2\nR 0 1\nEND\n",
		"bad ref op":   "TPSIM-TRACE 1\nFILES 1\nFILE 0 10\nTX 0 1\nX 0 1\nEND\n",
		"page range":   "TPSIM-TRACE 1\nFILES 1\nFILE 0 10\nTX 0 1\nR 0 10\nEND\n",
		"missing end":  "TPSIM-TRACE 1\nFILES 1\nFILE 0 10\nTX 0 1\nR 0 1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "# comment\nTPSIM-TRACE 1\n\nFILES 1\nFILE 0 10\n# another\nTX 0 1\nR 0 5\nEND\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Txs) != 1 {
		t.Fatalf("txs = %d", len(tr.Txs))
	}
}

func TestSourceReplay(t *testing.T) {
	tr := tinyTrace()
	src, err := NewSource(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumTypes() != 1 || src.Len() != 2 {
		t.Fatalf("source shape wrong")
	}
	name, rate := src.TypeInfo(0)
	if name != "trace-replay" || rate != 100 {
		t.Fatalf("TypeInfo = %q %v", name, rate)
	}
	s := rng.NewStream(1, "t")
	first := src.Next(0, s)
	if first.TypeName != "query" || len(first.Accesses) != 2 {
		t.Fatalf("first tx = %+v", first)
	}
	if first.Accesses[0].Page != 3 || first.Accesses[0].Partition != 0 {
		t.Fatalf("first access = %+v", first.Accesses[0])
	}
	second := src.Next(0, s)
	if !second.Accesses[0].Write {
		t.Fatal("write flag lost")
	}
	// Wrap-around.
	third := src.Next(0, s)
	if third.TypeName != "query" {
		t.Fatal("source did not wrap")
	}
}

func TestSourceErrors(t *testing.T) {
	if _, err := NewSource(tinyTrace(), 0); err == nil {
		t.Fatal("zero rate must error")
	}
	bad := tinyTrace()
	bad.Txs[0].Refs[0].File = 42
	if _, err := NewSource(bad, 10); err == nil {
		t.Fatal("invalid trace must error")
	}
	empty := &Trace{FilePages: []int64{10}}
	if _, err := NewSource(empty, 10); err == nil {
		t.Fatal("empty trace must error")
	}
}

func TestSourcePartitions(t *testing.T) {
	src, _ := NewSource(tinyTrace(), 10)
	parts := src.Partitions()
	if len(parts) != 2 || parts[0].NumObjects != 100 || parts[1].NumObjects != 50 {
		t.Fatalf("partitions = %+v", parts)
	}
	for _, p := range parts {
		if p.BlockFactor != 1 {
			t.Fatal("trace partitions must be page-granular")
		}
	}
}

func TestTypeHistogram(t *testing.T) {
	tr := tinyTrace()
	h := tr.TypeHistogram()
	if len(h) != 2 || h[0] != 1 || h[1] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestHottestPages(t *testing.T) {
	tr := &Trace{
		FilePages: []int64{10},
		Txs: []Tx{
			{Type: 0, Refs: []Ref{{Page: 5}, {Page: 5}, {Page: 5}, {Page: 2}, {Page: 2}, {Page: 9}}},
		},
	}
	top := tr.HottestPages(2)
	if len(top) != 2 || top[0].Page != 5 || top[1].Page != 2 {
		t.Fatalf("hottest = %+v", top)
	}
}
