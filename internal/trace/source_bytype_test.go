package trace

import (
	"testing"

	"repro/internal/rng"
)

func TestSourceByTypeReplaysPerType(t *testing.T) {
	tr := &Trace{
		FilePages: []int64{100},
		TypeNames: []string{"query", "update"},
		Txs: []Tx{
			{Type: 0, Refs: []Ref{{Page: 1}}},
			{Type: 1, Refs: []Ref{{Page: 2, Write: true}}},
			{Type: 0, Refs: []Ref{{Page: 3}}},
			{Type: 1, Refs: []Ref{{Page: 4, Write: true}}},
			{Type: 0, Refs: []Ref{{Page: 5}}},
		},
	}
	src, err := NewSourceByType(tr, []float64{30, 10})
	if err != nil {
		t.Fatal(err)
	}
	if src.NumTypes() != 2 {
		t.Fatalf("NumTypes = %d", src.NumTypes())
	}
	name, rate := src.TypeInfo(0)
	if name != "query" || rate != 30 {
		t.Fatalf("type 0 = %q %v", name, rate)
	}
	name, rate = src.TypeInfo(1)
	if name != "update" || rate != 10 {
		t.Fatalf("type 1 = %q %v", name, rate)
	}
	s := rng.NewStream(1, "t")
	// Type 0 stream yields its transactions in original order, wrapping.
	wantPages := []int64{1, 3, 5, 1}
	for k, want := range wantPages {
		tx := src.Next(0, s)
		if tx.Type != 0 || tx.Accesses[0].Page != want {
			t.Fatalf("type-0 draw %d: got type %d page %d, want page %d",
				k, tx.Type, tx.Accesses[0].Page, want)
		}
	}
	// Type 1 stream independent of type 0's position.
	tx := src.Next(1, s)
	if tx.Type != 1 || tx.Accesses[0].Page != 2 || !tx.Accesses[0].Write {
		t.Fatalf("type-1 draw = %+v", tx)
	}
}

func TestSourceByTypeValidation(t *testing.T) {
	tr := tinyTrace() // types 0 and 1
	if _, err := NewSourceByType(tr, []float64{10}); err == nil {
		t.Fatal("missing rate for type 1 must error")
	}
	if _, err := NewSourceByType(tr, []float64{10, -1}); err == nil {
		t.Fatal("negative rate must error")
	}
	if _, err := NewSourceByType(tr, []float64{10, 10, 10}); err == nil {
		t.Fatal("rate for a type with no transactions must error")
	}
	// Zero rate for an absent type is fine.
	if _, err := NewSourceByType(tr, []float64{10, 10, 0}); err != nil {
		t.Fatal(err)
	}
	empty := &Trace{FilePages: []int64{10}}
	if _, err := NewSourceByType(empty, []float64{1}); err == nil {
		t.Fatal("empty trace must error")
	}
	bad := tinyTrace()
	bad.Txs[0].Refs[0].Page = 1000
	if _, err := NewSourceByType(bad, []float64{1, 1}); err == nil {
		t.Fatal("invalid trace must error")
	}
}

func TestSourceByTypeZeroRateDisablesType(t *testing.T) {
	tr := tinyTrace()
	src, err := NewSourceByType(tr, []float64{10, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, rate := src.TypeInfo(1); rate != 0 {
		t.Fatalf("type 1 rate = %v, want 0 (disabled)", rate)
	}
}
