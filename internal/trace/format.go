package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk trace format is line-oriented text:
//
//	TPSIM-TRACE 1
//	FILES <n>
//	FILE <id> <pages>           (n lines)
//	TYPES <k>                   (optional; followed by k TYPE lines)
//	TYPE <id> <name>
//	TX <type> <nrefs>
//	R <file> <page>             (or W <file> <page>), nrefs lines
//	END
//
// It is easy to produce from any real DBMS trace and diffs cleanly.

const formatHeader = "TPSIM-TRACE 1"

// Write serializes the trace.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, formatHeader)
	fmt.Fprintf(bw, "FILES %d\n", len(tr.FilePages))
	for id, pages := range tr.FilePages {
		fmt.Fprintf(bw, "FILE %d %d\n", id, pages)
	}
	if len(tr.TypeNames) > 0 {
		fmt.Fprintf(bw, "TYPES %d\n", len(tr.TypeNames))
		for id, name := range tr.TypeNames {
			fmt.Fprintf(bw, "TYPE %d %s\n", id, name)
		}
	}
	for i := range tr.Txs {
		tx := &tr.Txs[i]
		fmt.Fprintf(bw, "TX %d %d\n", tx.Type, len(tx.Refs))
		for _, r := range tx.Refs {
			op := byte('R')
			if r.Write {
				op = 'W'
			}
			fmt.Fprintf(bw, "%c %d %d\n", op, r.File, r.Page)
		}
	}
	fmt.Fprintln(bw, "END")
	return bw.Flush()
}

// maxPrealloc caps slice capacity reserved from header-declared counts.
// Declared sizes are untrusted input: a tiny file claiming a billion
// entries must not allocate gigabytes before a single entry is parsed.
// Larger traces still load — growth just falls back to append.
const maxPrealloc = 1 << 16

// prealloCap clamps an untrusted count to a safe initial capacity.
func prealloCap(n int) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

// countLine strictly parses "<keyword> <n>" — exactly two fields, nothing
// trailing (fmt.Sscanf would silently accept garbage after the count).
func countLine(s, keyword string) (int, bool) {
	fields := strings.Fields(s)
	if len(fields) != 2 || fields[0] != keyword {
		return 0, false
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, false
	}
	return n, true
}

// Read parses a trace and validates it. The parser is strict: every line
// must have exactly its format's fields, so trailing garbage is rejected
// rather than silently dropped.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	next := func() (string, error) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, nil
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("trace: line %d: %s", line, fmt.Sprintf(format, args...))
	}

	hdr, err := next()
	if err != nil {
		return nil, fail("missing header: %v", err)
	}
	if hdr != formatHeader {
		return nil, fail("bad header %q", hdr)
	}

	tr := &Trace{}
	s, err := next()
	if err != nil {
		return nil, fail("missing FILES: %v", err)
	}
	nFiles, ok := countLine(s, "FILES")
	if !ok || nFiles <= 0 {
		return nil, fail("bad FILES line %q", s)
	}
	tr.FilePages = make([]int64, 0, prealloCap(nFiles))
	for i := 0; i < nFiles; i++ {
		s, err := next()
		if err != nil {
			return nil, fail("missing FILE: %v", err)
		}
		fields := strings.Fields(s)
		if len(fields) != 3 || fields[0] != "FILE" {
			return nil, fail("bad FILE line %q", s)
		}
		id, err1 := strconv.Atoi(fields[1])
		pages, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fail("bad FILE line %q", s)
		}
		if id != i {
			return nil, fail("FILE id %d out of order, want %d", id, i)
		}
		tr.FilePages = append(tr.FilePages, pages)
	}

	s, err = next()
	if err != nil {
		return nil, fail("truncated after files: %v", err)
	}
	if strings.HasPrefix(s, "TYPES ") {
		nTypes, ok := countLine(s, "TYPES")
		if !ok || nTypes <= 0 {
			return nil, fail("bad TYPES line %q", s)
		}
		tr.TypeNames = make([]string, 0, prealloCap(nTypes))
		for i := 0; i < nTypes; i++ {
			s, err := next()
			if err != nil {
				return nil, fail("missing TYPE: %v", err)
			}
			parts := strings.SplitN(s, " ", 3)
			if len(parts) != 3 || parts[0] != "TYPE" {
				return nil, fail("bad TYPE line %q", s)
			}
			id, err := strconv.Atoi(parts[1])
			if err != nil || id != i {
				return nil, fail("TYPE id %q out of order", parts[1])
			}
			tr.TypeNames = append(tr.TypeNames, parts[2])
		}
		s, err = next()
		if err != nil {
			return nil, fail("truncated after types: %v", err)
		}
	}

	for s != "END" {
		fields := strings.Fields(s)
		if len(fields) != 3 || fields[0] != "TX" {
			return nil, fail("bad TX line %q", s)
		}
		typ, err1 := strconv.Atoi(fields[1])
		nRefs, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, fail("bad TX line %q", s)
		}
		if nRefs <= 0 {
			return nil, fail("TX with %d refs", nRefs)
		}
		tx := Tx{Type: typ, Refs: make([]Ref, 0, prealloCap(nRefs))}
		for i := 0; i < nRefs; i++ {
			s, err := next()
			if err != nil {
				return nil, fail("truncated tx: %v", err)
			}
			fields := strings.Fields(s)
			if len(fields) != 3 || (fields[0] != "R" && fields[0] != "W") {
				return nil, fail("bad ref line %q", s)
			}
			file, err1 := strconv.Atoi(fields[1])
			page, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fail("bad ref numbers %q", s)
			}
			tx.Refs = append(tx.Refs, Ref{File: file, Page: page, Write: fields[0] == "W"})
		}
		tr.Txs = append(tr.Txs, tx)
		s, err = next()
		if err != nil {
			return nil, fail("missing END: %v", err)
		}
	}

	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
