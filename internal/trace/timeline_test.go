package trace

import (
	"math"
	"testing"
)

func timelineTrace() *Trace {
	tr := &Trace{FilePages: []int64{100}}
	// 8 transactions with reference volumes 1..8: total 36.
	for i := 1; i <= 8; i++ {
		tx := Tx{Type: 0}
		for j := 0; j < i; j++ {
			tx.Refs = append(tx.Refs, Ref{File: 0, Page: int64(j)})
		}
		tr.Txs = append(tr.Txs, tx)
	}
	return tr
}

// TestLoadTimelineShape: buckets split the recorded sequence evenly and the
// multipliers are the normalized per-slice reference volumes.
func TestLoadTimelineShape(t *testing.T) {
	mult, err := LoadTimeline(timelineTrace(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Slices of 2 txs: volumes 3, 7, 11, 15 of total 36 → ×4/36.
	want := []float64{12.0 / 36, 28.0 / 36, 44.0 / 36, 60.0 / 36}
	if len(mult) != 4 {
		t.Fatalf("got %d buckets, want 4", len(mult))
	}
	mean := 0.0
	for i := range mult {
		if math.Abs(mult[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, mult[i], want[i])
		}
		mean += mult[i]
	}
	if math.Abs(mean/4-1) > 1e-12 {
		t.Fatalf("multipliers average %v, want 1", mean/4)
	}
}

// TestLoadTimelineFeedsReplay: a derived timeline passes the replay spec's
// validation (all multipliers positive).
func TestLoadTimelineFeedsReplay(t *testing.T) {
	mult, err := LoadTimeline(GenerateRealLife(42), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(mult) != 16 {
		t.Fatalf("got %d buckets", len(mult))
	}
	for i, m := range mult {
		if m <= 0 {
			t.Fatalf("bucket %d multiplier %v <= 0", i, m)
		}
	}
}

// TestLoadTimelineErrors covers the failure modes.
func TestLoadTimelineErrors(t *testing.T) {
	tr := timelineTrace()
	if _, err := LoadTimeline(tr, 0); err == nil {
		t.Error("0 buckets accepted")
	}
	if _, err := LoadTimeline(tr, 9); err == nil {
		t.Error("more buckets than transactions accepted")
	}
	if _, err := LoadTimeline(&Trace{}, 1); err == nil {
		t.Error("invalid trace accepted")
	}
}
