package trace

import (
	"sort"

	"repro/internal/rng"
)

// RealLifeSpec describes the synthetic stand-in for the paper's real-life
// trace (section 4.6). The defaults reproduce the published aggregate
// characteristics: >17,500 transactions of twelve types, ~1M page accesses,
// ~66,000 distinct pages in 13 files, ~4 GB database, ~20% update
// transactions, ~1.6% write accesses, and one ad-hoc query type with more
// than 11,000 accesses.
type RealLifeSpec struct {
	FilePages   []int64 // sizes of the 13 database files (pages)
	ActivePages []int64 // per-file actively referenced region (pages)
	Types       []RealLifeType
}

// RealLifeType describes one transaction type of the synthetic trace.
type RealLifeType struct {
	Name      string
	Count     int     // transactions of this type
	MeanSize  float64 // mean page references per transaction
	FixedSize bool    // size is exact rather than exponential
	WriteProb float64 // per-access write probability (update types)
	Update    bool    // update type: at least one write per transaction
	Scan      bool    // sequential scan instead of skewed random access
	FileBias  []float64
}

// DefaultRealLifeSpec returns the calibrated specification.
func DefaultRealLifeSpec() RealLifeSpec {
	// 13 files totalling ~1M 4KB pages ≈ 4 GB.
	filePages := []int64{
		300_000, 200_000, 150_000, 100_000, 80_000, 60_000, 40_000,
		30_000, 20_000, 10_000, 5_000, 3_000, 2_000,
	}
	// Actively referenced regions: ~51,500 pages; the ad-hoc scans add
	// ~23,000 more distinct pages beyond the active regions.
	active := []int64{
		12_000, 9_000, 7_500, 6_000, 5_000, 4_000, 2_500,
		2_000, 1_500, 1_000, 500, 300, 200,
	}
	// File bias vectors concentrate each type on a few files, giving the
	// inter-transaction-type locality a reference matrix would express.
	big := []float64{5, 4, 3, 2, 1, 1, 0.5, 0.5, 0.2, 0.2, 0.1, 0.1, 0.1}
	mid := []float64{1, 2, 4, 4, 2, 1, 1, 0.5, 0.5, 0.2, 0.1, 0.1, 0.1}
	sml := []float64{0.2, 0.5, 1, 1, 2, 3, 3, 2, 2, 1, 0.5, 0.3, 0.2}
	adm := []float64{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 3, 2}
	return RealLifeSpec{
		FilePages:   filePages,
		ActivePages: active,
		Types: []RealLifeType{
			{Name: "adhoc-query", Count: 2, MeanSize: 11_500, FixedSize: true, Scan: true,
				FileBias: []float64{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
			{Name: "lookup-a", Count: 4_000, MeanSize: 20, FileBias: big},
			{Name: "lookup-b", Count: 3_000, MeanSize: 40, FileBias: mid},
			{Name: "report-a", Count: 2_400, MeanSize: 60, FileBias: big},
			{Name: "report-b", Count: 2_000, MeanSize: 80, FileBias: mid},
			{Name: "analysis-a", Count: 1_200, MeanSize: 100, FileBias: sml},
			{Name: "analysis-b", Count: 800, MeanSize: 150, FileBias: mid},
			{Name: "batch-scan", Count: 400, MeanSize: 200, Scan: true, FileBias: big},
			{Name: "misc-query", Count: 278, MeanSize: 60, FileBias: sml},
			{Name: "update-small", Count: 2_000, MeanSize: 25, WriteProb: 0.14, Update: true, FileBias: adm},
			{Name: "update-med", Count: 1_000, MeanSize: 40, WriteProb: 0.14, Update: true, FileBias: mid},
			{Name: "update-large", Count: 520, MeanSize: 50, WriteProb: 0.13, Update: true, FileBias: sml},
		},
	}
}

// GenerateRealLife builds the synthetic real-life trace from the default
// spec and the given seed. The result is shuffled into a single interleaved
// arrival order, validated, and ready for simulation or serialization.
func GenerateRealLife(seed int64) *Trace {
	return GenerateFromSpec(DefaultRealLifeSpec(), seed)
}

// GenerateFromSpec builds a synthetic trace from an explicit specification.
func GenerateFromSpec(spec RealLifeSpec, seed int64) *Trace {
	s := rng.NewStream(seed, "trace-synth")
	tr := &Trace{FilePages: spec.FilePages}
	for _, tt := range spec.Types {
		tr.TypeNames = append(tr.TypeNames, tt.Name)
	}

	// Two-level 90/10 skew within each file's active region (the paper's
	// generalized b/c rule, section 3.1): 81% of accesses go to the hottest
	// 1% of pages, 9% to the next 9%, 10% to the remaining 90%. This yields
	// the ~84% main-memory hit ratio at a 2000-page buffer the paper
	// reports for its real-life trace (section 4.6).
	pageIn := func(file int) int64 {
		activeN := spec.ActivePages[file]
		hot2 := int64(float64(activeN) * 0.01)
		if hot2 < 1 {
			hot2 = 1
		}
		hot1 := int64(float64(activeN) * 0.10)
		if hot1 <= hot2 {
			hot1 = hot2 + 1
		}
		if hot1 > activeN {
			hot1 = activeN
		}
		u := s.Float64()
		switch {
		case u < 0.81:
			return s.Int63n(hot2)
		case u < 0.90 && hot1 > hot2:
			return hot2 + s.Int63n(hot1-hot2)
		case activeN > hot1:
			return hot1 + s.Int63n(activeN-hot1)
		default:
			return s.Int63n(activeN)
		}
	}

	// Ad-hoc scans read outside the active regions, so they contribute
	// fresh distinct pages like the paper's one-off ad-hoc query.
	adhocNext := spec.ActivePages[0]

	for typeID, tt := range spec.Types {
		bias, err := rng.NewDiscrete(tt.FileBias)
		if err != nil {
			panic("trace: bad file bias for type " + tt.Name)
		}
		for c := 0; c < tt.Count; c++ {
			n := int(tt.MeanSize + 0.5)
			if !tt.FixedSize {
				n = s.ExpInt(tt.MeanSize, 1)
			}
			tx := Tx{Type: typeID, Refs: make([]Ref, 0, n)}
			switch {
			case tt.Scan && tt.FixedSize:
				// Ad-hoc query: scan fresh pages of file 0.
				file := 0
				for i := 0; i < n; i++ {
					page := adhocNext % spec.FilePages[file]
					adhocNext++
					tx.Refs = append(tx.Refs, Ref{File: file, Page: page})
				}
			case tt.Scan:
				// Batch scan: consecutive pages within the active region.
				file := bias.Sample(s)
				start := s.Int63n(spec.ActivePages[file])
				for i := 0; i < n; i++ {
					page := (start + int64(i)) % spec.ActivePages[file]
					tx.Refs = append(tx.Refs, Ref{File: file, Page: page})
				}
			default:
				for i := 0; i < n; i++ {
					write := tt.Update && s.Bool(tt.WriteProb)
					// Intra-transaction locality: real transactions
					// re-reference their own recent pages (index → record →
					// index patterns), which is what keeps even very small
					// main-memory buffers useful in Fig 4.6.
					if !write && len(tx.Refs) > 0 && s.Bool(0.35) {
						back := s.Intn(min(len(tx.Refs), 8)) + 1
						prev := tx.Refs[len(tx.Refs)-back]
						tx.Refs = append(tx.Refs, Ref{File: prev.File, Page: prev.Page})
						continue
					}
					file := bias.Sample(s)
					var page int64
					if write {
						// Updates hit individual records spread across the
						// active region rather than the read-hot pages the
						// query types convoy on; with only 1.6% writes this
						// keeps lock contention as modest as the paper's
						// trace runs show (FORCE ≈ NOFORCE, section 4.6).
						page = s.Int63n(spec.ActivePages[file])
					} else {
						page = pageIn(file)
					}
					tx.Refs = append(tx.Refs, Ref{File: file, Page: page, Write: write})
				}
			}
			if tt.Update && !tx.Update() {
				// Update transactions always write at least one page.
				tx.Refs[s.Intn(len(tx.Refs))].Write = true
			}
			tr.Txs = append(tr.Txs, tx)
		}
	}

	shuffleTxs(tr.Txs, s)
	return tr
}

// shuffleTxs interleaves transaction types into one arrival order
// (Fisher-Yates on a deterministic stream).
func shuffleTxs(txs []Tx, s *rng.Stream) {
	for i := len(txs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		txs[i], txs[j] = txs[j], txs[i]
	}
}

// TypeHistogram counts transactions per type, sorted by type id; useful for
// reporting and tests.
func (tr *Trace) TypeHistogram() []int {
	maxType := -1
	for i := range tr.Txs {
		if tr.Txs[i].Type > maxType {
			maxType = tr.Txs[i].Type
		}
	}
	counts := make([]int, maxType+1)
	for i := range tr.Txs {
		counts[tr.Txs[i].Type]++
	}
	return counts
}

// HottestPages returns the n most-referenced (file, page) pairs; used by
// diagnostics in cmd/tracegen.
func (tr *Trace) HottestPages(n int) []Ref {
	type key struct {
		file int
		page int64
	}
	counts := map[key]int{}
	for i := range tr.Txs {
		for _, r := range tr.Txs[i].Refs {
			counts[key{r.File, r.Page}]++
		}
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ca, cb := counts[keys[a]], counts[keys[b]]
		if ca != cb {
			return ca > cb
		}
		if keys[a].file != keys[b].file {
			return keys[a].file < keys[b].file
		}
		return keys[a].page < keys[b].page
	})
	if n > len(keys) {
		n = len(keys)
	}
	out := make([]Ref, n)
	for i := 0; i < n; i++ {
		out[i] = Ref{File: keys[i].file, Page: keys[i].page}
	}
	return out
}
