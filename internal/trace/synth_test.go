package trace

import (
	"testing"
)

// TestRealLifeMatchesPublishedCharacteristics checks the synthetic trace
// against the aggregate numbers the paper reports for its real-life
// workload (section 4.6). This is the substitution contract of DESIGN.md.
func TestRealLifeMatchesPublishedCharacteristics(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace generation in -short mode")
	}
	tr := GenerateRealLife(42)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := tr.ComputeStats()

	// "more than 17.500 transactions"
	if s.NumTxs < 17_500 || s.NumTxs > 18_500 {
		t.Errorf("NumTxs = %d, want ~17,600", s.NumTxs)
	}
	// "twelve transaction types"
	if s.NumTypes != 12 {
		t.Errorf("NumTypes = %d, want 12", s.NumTypes)
	}
	// "1 million database accesses" (within 10%)
	if s.NumAccesses < 900_000 || s.NumAccesses > 1_100_000 {
		t.Errorf("NumAccesses = %d, want ~1M", s.NumAccesses)
	}
	// "the largest transaction (an ad-hoc query) performs more than
	// 11.000 accesses"
	if s.MaxTxSize < 11_000 {
		t.Errorf("MaxTxSize = %d, want > 11,000", s.MaxTxSize)
	}
	// "13 files", "database size is about 4 GB" (1M 4KB pages)
	if len(tr.FilePages) != 13 {
		t.Errorf("files = %d, want 13", len(tr.FilePages))
	}
	if s.TotalPages < 900_000 || s.TotalPages > 1_100_000 {
		t.Errorf("TotalPages = %d, want ~1M (4 GB)", s.TotalPages)
	}
	// "merely 66.000 different pages ... were referenced" (±20%)
	if s.DistinctPages < 52_000 || s.DistinctPages > 80_000 {
		t.Errorf("DistinctPages = %d, want ~66,000", s.DistinctPages)
	}
	// "about 20% of the transactions perform updates"
	if f := s.UpdateTxFrac(); f < 0.18 || f > 0.22 {
		t.Errorf("UpdateTxFrac = %v, want ~0.20", f)
	}
	// "only 1.6% of all database accesses are writes"
	if f := s.WriteFrac(); f < 0.012 || f > 0.020 {
		t.Errorf("WriteFrac = %v, want ~0.016", f)
	}
}

func TestRealLifeDeterministic(t *testing.T) {
	spec := DefaultRealLifeSpec()
	for i := range spec.Types {
		spec.Types[i].Count = (spec.Types[i].Count + 99) / 100
	}
	a := GenerateFromSpec(spec, 7)
	b := GenerateFromSpec(spec, 7)
	sa, sb := a.ComputeStats(), b.ComputeStats()
	if sa != sb {
		t.Fatalf("same seed produced different traces:\n%+v\n%+v", sa, sb)
	}
	c := GenerateFromSpec(spec, 8)
	if a.ComputeStats() == c.ComputeStats() {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func TestRealLifeUpdateTxsAlwaysWrite(t *testing.T) {
	spec := DefaultRealLifeSpec()
	for i := range spec.Types {
		spec.Types[i].Count = (spec.Types[i].Count + 49) / 50
	}
	tr := GenerateFromSpec(spec, 3)
	for i := range tr.Txs {
		tx := &tr.Txs[i]
		name := tr.TypeNames[tx.Type]
		isUpdateType := false
		for _, tt := range spec.Types {
			if tt.Name == name {
				isUpdateType = tt.Update
			}
		}
		if isUpdateType && !tx.Update() {
			t.Fatalf("update-type tx %d has no writes", i)
		}
		if !isUpdateType && tx.Update() {
			t.Fatalf("read-only-type tx %d has writes", i)
		}
	}
}

func TestRealLifeTypeInterleaving(t *testing.T) {
	spec := DefaultRealLifeSpec()
	for i := range spec.Types {
		spec.Types[i].Count = (spec.Types[i].Count + 99) / 100
	}
	tr := GenerateFromSpec(spec, 5)
	// After shuffling, the first quarter of the trace must contain more
	// than one transaction type (no sorted blocks).
	quarter := tr.Txs[:len(tr.Txs)/4]
	types := map[int]struct{}{}
	for i := range quarter {
		types[quarter[i].Type] = struct{}{}
	}
	if len(types) < 2 {
		t.Fatalf("first quarter has only %d types — not interleaved", len(types))
	}
}
