package trace

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/workload"
)

// Source adapts a Trace to the workload.Generator interface so the engine
// can replay it. As in the paper (section 3.1), either a common arrival
// rate preserves the original execution order of the whole trace, or a
// separate arrival rate is given per transaction type and each type replays
// its own transactions in original order. When a stream is exhausted the
// source wraps around (steady-state experiments need an unbounded stream).
type Source struct {
	tr     *Trace
	rate   float64 // common-rate mode
	next   int
	rates  []float64 // per-type mode
	byType [][]int   // per-type transaction indices in original order
	posTyp []int
}

// NewSource creates a replay source submitting the whole trace as one
// transaction stream at rate transactions per second, preserving the
// original execution order.
func NewSource(tr *Trace, rate float64) (*Source, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if rate <= 0 {
		return nil, fmt.Errorf("trace: arrival rate %v", rate)
	}
	if len(tr.Txs) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return &Source{tr: tr, rate: rate}, nil
}

// NewSourceByType creates a replay source with a separate arrival rate per
// transaction type (rates[i] is TPS for type i; a zero rate disables the
// type). The number of rates must cover every type id in the trace.
func NewSourceByType(tr *Trace, rates []float64) (*Source, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if len(tr.Txs) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	byType := make([][]int, len(rates))
	for i := range tr.Txs {
		typ := tr.Txs[i].Type
		if typ >= len(rates) {
			return nil, fmt.Errorf("trace: tx type %d has no arrival rate (%d given)", typ, len(rates))
		}
		byType[typ] = append(byType[typ], i)
	}
	for i, r := range rates {
		if r < 0 {
			return nil, fmt.Errorf("trace: type %d arrival rate %v", i, r)
		}
		if r > 0 && len(byType[i]) == 0 {
			return nil, fmt.Errorf("trace: type %d has rate %v but no transactions", i, r)
		}
	}
	return &Source{tr: tr, rates: rates, byType: byType, posTyp: make([]int, len(rates))}, nil
}

// Partitions derives the database partitions for the engine: one per trace
// file, page-granular (block factor 1, so object ids equal page ids).
func (s *Source) Partitions() []workload.Partition {
	parts := make([]workload.Partition, len(s.tr.FilePages))
	for f, pages := range s.tr.FilePages {
		parts[f] = workload.Partition{
			Name:        fmt.Sprintf("file-%d", f),
			NumObjects:  pages,
			BlockFactor: 1,
		}
	}
	return parts
}

// NumTypes implements workload.Generator: one stream in common-rate mode,
// one stream per transaction type in per-type mode.
func (s *Source) NumTypes() int {
	if s.byType != nil {
		return len(s.rates)
	}
	return 1
}

// TypeInfo implements workload.Generator.
func (s *Source) TypeInfo(i int) (string, float64) {
	if s.byType == nil {
		return "trace-replay", s.rate
	}
	name := fmt.Sprintf("type-%d", i)
	if i < len(s.tr.TypeNames) {
		name = s.tr.TypeNames[i]
	}
	return name, s.rates[i]
}

// Len returns the number of transactions in the underlying trace.
func (s *Source) Len() int { return len(s.tr.Txs) }

// Next implements workload.Generator: it converts the next traced
// transaction of the stream into engine accesses.
func (s *Source) Next(i int, _ *rng.Stream) workload.Tx {
	var tx *Tx
	if s.byType != nil {
		list := s.byType[i]
		tx = &s.tr.Txs[list[s.posTyp[i]%len(list)]]
		s.posTyp[i]++
	} else {
		tx = &s.tr.Txs[s.next%len(s.tr.Txs)]
		s.next++
	}
	out := workload.Tx{Type: tx.Type, Accesses: make([]workload.Access, len(tx.Refs))}
	if len(s.tr.TypeNames) > tx.Type {
		out.TypeName = s.tr.TypeNames[tx.Type]
	}
	for i, r := range tx.Refs {
		out.Accesses[i] = workload.Access{
			Partition: r.File,
			Object:    r.Page, // page-granular traces: object == page
			Page:      r.Page,
			Write:     r.Write,
		}
	}
	return out
}
