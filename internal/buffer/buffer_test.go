package buffer

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/storage"
)

// testHost implements Host with zero-cost CPU bursts and real NVEM/device
// delays, counting calls.
type testHost struct {
	s         *sim.Sim
	nvem      *storage.NVEM
	ioCalls   int
	syncCalls int
	nvemCalls int
}

func (h *testHost) IOOverhead(_ *sim.Process, k func()) {
	h.ioCalls++
	k()
}

func (h *testHost) SyncDeviceIO(p *sim.Process, dev func(done func()), k func()) {
	h.syncCalls++
	dev(k)
}

func (h *testHost) NVEMTransfer(p *sim.Process, k func()) {
	h.nvemCalls++
	if h.nvem != nil {
		h.nvem.Access(p, k)
		return
	}
	k()
}

func (h *testHost) SpawnAsync(name string, fn func(p *sim.Process)) {
	h.s.Spawn(name, 0, fn)
}

func (h *testHost) Sim() *sim.Sim { return h.s }

// rig bundles a simulation, devices and a buffer manager for tests.
type rig struct {
	s    *sim.Sim
	host *testHost
	m    *Manager
	unit *storage.DiskUnit
}

func key(part int, page int64) storage.PageKey {
	return storage.PageKey{Partition: part, Page: page}
}

// fixB, forceB and writeLogB drive the manager's continuation API
// blocking-style from test scripts.
func fixB(b *sim.BlockingProcess, m *Manager, k storage.PageKey, write bool) {
	b.Await(func(done func()) { m.Fix(b.Proc(), k, write, done) })
}

func forceB(b *sim.BlockingProcess, m *Manager, keys ...storage.PageKey) {
	b.Await(func(done func()) { m.ForcePages(b.Proc(), keys, done) })
}

func writeLogB(b *sim.BlockingProcess, m *Manager) {
	b.Await(func(done func()) { m.WriteLog(b.Proc(), done) })
}

// newRig builds a one-partition, one-disk-unit setup with the given buffer
// configuration applied to partition 0 and the log on the same unit.
func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	s := sim.New()
	unitCfg := storage.DiskUnitConfig{
		Name: "u0", Type: storage.Regular,
		NumControllers: 4, ContrDelay: 1, TransDelay: 0.4,
		NumDisks: 4, DiskDelay: 15,
	}
	unit, err := storage.NewDiskUnit(s, unitCfg, rng.NewStream(1, "unit"))
	if err != nil {
		t.Fatal(err)
	}
	var nvem *storage.NVEM
	if cfg.UsesNVEM() {
		nvem, err = storage.NewNVEM(s, 1, 0.05)
		if err != nil {
			t.Fatal(err)
		}
	}
	host := &testHost{s: s, nvem: nvem}
	names := make([]string, len(cfg.Partitions))
	for i := range names {
		names[i] = "p"
	}
	m, err := New(cfg, names, []*storage.DiskUnit{unit}, nvem, host)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{s: s, host: host, m: m, unit: unit}
}

// drive runs fn as a blocking-style simulation process and completes all
// events.
func (r *rig) drive(fn func(b *sim.BlockingProcess)) {
	r.s.SpawnBlocking("driver", 0, fn)
	r.s.RunAll()
}

func baseCfg() Config {
	return Config{
		BufferSize: 3,
		Logging:    true,
		Partitions: []PartitionAlloc{{DiskUnit: 0}},
		Log:        LogAlloc{DiskUnit: 0},
	}
}

func TestMMHitMiss(t *testing.T) {
	r := newRig(t, baseCfg())
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), false) // miss
		fixB(b, r.m, key(0, 1), false) // hit
		fixB(b, r.m, key(0, 2), false) // miss
	})
	st := r.m.Stats()
	if st.Fixes != 3 || st.MMHits != 1 || st.DeviceReads != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if hr := r.m.HitRatioMM(); hr != 1.0/3.0 {
		t.Fatalf("hit ratio = %v", hr)
	}
}

func TestLRUReplacementCleanVictim(t *testing.T) {
	r := newRig(t, baseCfg())
	r.drive(func(b *sim.BlockingProcess) {
		for page := int64(1); page <= 4; page++ { // buffer holds 3
			fixB(b, r.m, key(0, page), false)
		}
		fixB(b, r.m, key(0, 1), false) // page 1 was evicted: miss again
	})
	st := r.m.Stats()
	if st.DeviceReads != 5 {
		t.Fatalf("device reads = %d, want 5", st.DeviceReads)
	}
	if st.VictimWrites != 0 || st.CleanDrops != 2 {
		t.Fatalf("clean victims mishandled: %+v", st)
	}
}

func TestDirtyVictimSynchronousWriteBack(t *testing.T) {
	r := newRig(t, baseCfg())
	var dirtyMiss, cleanMiss sim.Time
	const rounds = 200
	r.drive(func(b *sim.BlockingProcess) {
		// Dirty working set: every miss evicts a dirty page (sync write +
		// read, ~32.8 ms average).
		for i := int64(0); i < rounds; i++ {
			start := b.Now()
			fixB(b, r.m, key(0, i), true)
			dirtyMiss += b.Now() - start
		}
		// Drain to clean by switching to read-only misses on fresh pages
		// (every victim from here on was fixed read-only).
		for i := int64(rounds); i < rounds+3; i++ {
			fixB(b, r.m, key(0, i), false)
		}
		for i := int64(rounds + 3); i < 2*rounds; i++ {
			start := b.Now()
			fixB(b, r.m, key(0, i), false)
			cleanMiss += b.Now() - start
		}
	})
	st := r.m.Stats()
	if st.VictimWrites == 0 {
		t.Fatal("no synchronous victim writes recorded")
	}
	meanDirty := dirtyMiss / rounds
	meanClean := cleanMiss / (rounds - 3)
	// Dirty misses pay two device accesses, clean misses one.
	if meanDirty < meanClean*1.5 {
		t.Fatalf("dirty miss %.2f vs clean miss %.2f: victim write not synchronous",
			meanDirty, meanClean)
	}
}

func TestMMResidentAlwaysHits(t *testing.T) {
	cfg := baseCfg()
	cfg.Partitions[0] = PartitionAlloc{MMResident: true}
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		for page := int64(0); page < 100; page++ {
			fixB(b, r.m, key(0, page), true)
		}
	})
	st := r.m.Stats()
	if st.MMHits != 100 || st.DeviceReads != 0 || st.ResidentFixes != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if r.m.MMLen() != 0 {
		t.Fatal("MM-resident pages must not occupy buffer frames")
	}
}

func TestNVEMResidentPartition(t *testing.T) {
	cfg := baseCfg()
	cfg.Partitions[0] = PartitionAlloc{NVEMResident: true}
	r := newRig(t, cfg)
	var elapsed sim.Time
	r.drive(func(b *sim.BlockingProcess) {
		start := b.Now()
		fixB(b, r.m, key(0, 1), true)  // NVEM read, 0.05ms
		fixB(b, r.m, key(0, 2), true)  // NVEM read
		fixB(b, r.m, key(0, 3), true)  // NVEM read
		fixB(b, r.m, key(0, 4), false) // evicts dirty 1: NVEM write + NVEM read
		elapsed = b.Now() - start
	})
	st := r.m.Stats()
	if st.NVEMReads != 4 || st.DeviceReads != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if r.host.nvemCalls != 5 { // 4 reads + 1 dirty victim write
		t.Fatalf("nvem calls = %d, want 5", r.host.nvemCalls)
	}
	if elapsed > 1 {
		t.Fatalf("elapsed = %v: NVEM accesses must be fast", elapsed)
	}
	if r.unit.Stats().Reads+r.unit.Stats().Writes != 0 {
		t.Fatal("NVEM-resident partition touched the disk unit")
	}
}

func nvemCacheCfg(mmSize, nvemSize int) Config {
	return Config{
		BufferSize:    mmSize,
		Logging:       false,
		NVEMCacheSize: nvemSize,
		Partitions: []PartitionAlloc{
			{DiskUnit: 0, NVEMCache: true, NVEMCacheMode: MigrateAll},
		},
		Log: LogAlloc{DiskUnit: 0},
	}
}

func TestNVEMCacheMigrationAndHit(t *testing.T) {
	r := newRig(t, nvemCacheCfg(2, 2))
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)
		fixB(b, r.m, key(0, 2), false)
		fixB(b, r.m, key(0, 3), false) // evicts 1 (dirty) → NVEM + async write
		fixB(b, r.m, key(0, 1), false) // NVEM hit
	})
	st := r.m.Stats()
	// Two victims migrate under MigrateAll: dirty page 1 (when 3 is fixed)
	// and clean page 2 (when 1 is promoted back).
	if st.VictimToNVEM != 2 {
		t.Fatalf("victims to NVEM = %d, want 2", st.VictimToNVEM)
	}
	if st.NVEMCacheHits != 1 {
		t.Fatalf("NVEM hits = %d", st.NVEMCacheHits)
	}
	if st.AsyncDiskWrites != 1 {
		t.Fatalf("async writes = %d (dirty page must destage)", st.AsyncDiskWrites)
	}
	if st.VictimWrites != 0 {
		t.Fatal("NVEM-cached partition must not write victims synchronously")
	}
}

func TestNOFORCESingleCopyInvariant(t *testing.T) {
	r := newRig(t, nvemCacheCfg(2, 4))
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), false)
		fixB(b, r.m, key(0, 2), false)
		fixB(b, r.m, key(0, 3), false) // 1 → NVEM
		if r.m.NVEMCacheLen() != 1 {
			t.Errorf("NVEM len = %d, want 1", r.m.NVEMCacheLen())
		}
		fixB(b, r.m, key(0, 1), false) // NVEM hit: copy must leave NVEM
		if r.m.NVEMCacheLen() != 1 {   // page 2 migrated down, page 1 left
			t.Errorf("NVEM len = %d after promotion, want 1 (page 2)", r.m.NVEMCacheLen())
		}
	})
	if r.m.Stats().NVEMCacheHits != 1 {
		t.Fatalf("stats = %+v", r.m.Stats())
	}
}

// TestAggregateLRUEquivalence verifies the paper's key NOFORCE result: main
// memory plus NVEM cache achieves exactly the combined hit ratio of a single
// main-memory buffer of the aggregate size (section 4.5).
func TestAggregateLRUEquivalence(t *testing.T) {
	refString := func() []int64 {
		s := rng.NewStream(99, "refs")
		var out []int64
		for i := 0; i < 4000; i++ {
			// 80/20 skew over 600 pages: plenty of capacity misses for
			// buffers of aggregate size 100.
			if s.Bool(0.8) {
				out = append(out, s.Int63n(120))
			} else {
				out = append(out, 120+s.Int63n(480))
			}
		}
		return out
	}()

	run := func(mm, nvem int) (combined int64) {
		var cfg Config
		if nvem > 0 {
			cfg = nvemCacheCfg(mm, nvem)
		} else {
			cfg = Config{
				BufferSize: mm,
				Partitions: []PartitionAlloc{{DiskUnit: 0}},
				Log:        LogAlloc{DiskUnit: 0},
			}
		}
		r := newRig(t, cfg)
		r.drive(func(b *sim.BlockingProcess) {
			for _, page := range refString {
				fixB(b, r.m, key(0, page), false)
			}
		})
		st := r.m.Stats()
		return st.MMHits + st.NVEMCacheHits
	}

	single := run(100, 0)
	for _, split := range [][2]int{{50, 50}, {20, 80}, {80, 20}} {
		got := run(split[0], split[1])
		if got != single {
			t.Errorf("split %v combined hits = %d, want %d (aggregate LRU equivalence)",
				split, got, single)
		}
	}
}

func TestMigrateModeModifiedOnly(t *testing.T) {
	cfg := nvemCacheCfg(1, 4)
	cfg.Partitions[0].NVEMCacheMode = MigrateModified
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)  // dirty
		fixB(b, r.m, key(0, 2), false) // evicts 1 → migrates (modified)
		fixB(b, r.m, key(0, 3), false) // evicts 2 (clean) → dropped
	})
	st := r.m.Stats()
	if st.VictimToNVEM != 1 || st.CleanDrops != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMigrateModeUnmodifiedOnly(t *testing.T) {
	cfg := nvemCacheCfg(1, 4)
	cfg.Partitions[0].NVEMCacheMode = MigrateUnmodified
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)  // dirty
		fixB(b, r.m, key(0, 2), false) // evicts dirty 1 → sync device write
		fixB(b, r.m, key(0, 3), false) // evicts clean 2 → migrates
	})
	st := r.m.Stats()
	if st.VictimToNVEM != 1 || st.VictimWrites != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func wbCfg(wbSize int) Config {
	return Config{
		BufferSize:          2,
		Logging:             false,
		NVEMWriteBufferSize: wbSize,
		Partitions: []PartitionAlloc{
			{DiskUnit: 0, NVEMWriteBuffer: true},
		},
		Log: LogAlloc{DiskUnit: 0},
	}
}

func TestWriteBufferAbsorbsVictimWrites(t *testing.T) {
	r := newRig(t, wbCfg(10))
	var missDelay sim.Time
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)
		fixB(b, r.m, key(0, 2), true)
		start := b.Now()
		fixB(b, r.m, key(0, 3), false) // dirty victim → write buffer
		missDelay = b.Now() - start
	})
	st := r.m.Stats()
	if st.VictimToWB != 1 || st.VictimWrites != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Only the read is synchronous: ~16.4ms average, not ~33.
	if missDelay > 60 {
		t.Fatalf("miss delay = %v: write must have been absorbed", missDelay)
	}
	if st.AsyncDiskWrites != 1 {
		t.Fatalf("async writes = %d", st.AsyncDiskWrites)
	}
	if r.m.WriteBufferInUse() != 0 {
		t.Fatal("write buffer frame not freed after destage")
	}
}

func TestWriteBufferFullFallsBackSync(t *testing.T) {
	cfg := wbCfg(1)
	// Block the destage by making the disk very slow.
	slow := storage.DiskUnitConfig{
		Name: "slow", Type: storage.Regular,
		NumControllers: 1, ContrDelay: 0.1, TransDelay: 0,
		NumDisks: 1, DiskDelay: 100000,
	}
	s := sim.New()
	unit, err := storage.NewDiskUnit(s, slow, rng.NewStream(2, "slow"))
	if err != nil {
		t.Fatal(err)
	}
	nvem, _ := storage.NewNVEM(s, 1, 0.05)
	host := &testHost{s: s, nvem: nvem}
	m, err := New(cfg, []string{"p"}, []*storage.DiskUnit{unit}, nvem, host)
	if err != nil {
		t.Fatal(err)
	}
	s.SpawnBlocking("driver", 0, func(b *sim.BlockingProcess) {
		fixB(b, m, key(0, 1), true)
		fixB(b, m, key(0, 2), true)
		fixB(b, m, key(0, 3), true) // victim 1 → WB (now full, destage stuck)
		fixB(b, m, key(0, 4), true) // victim → WB full → sync write
	})
	s.Run(1_000_000)
	st := m.Stats()
	if st.VictimToWB != 1 || st.WBFullSync != 1 {
		t.Fatalf("stats = %+v", st)
	}
	s.RunAll()
}

func TestLogWriteNVEMResident(t *testing.T) {
	cfg := baseCfg()
	cfg.Log = LogAlloc{NVEMResident: true}
	r := newRig(t, cfg)
	var logDelay sim.Time
	r.drive(func(b *sim.BlockingProcess) {
		start := b.Now()
		writeLogB(b, r.m)
		logDelay = b.Now() - start
	})
	if r.m.Stats().LogWrites != 1 {
		t.Fatal("log write not counted")
	}
	if logDelay != 0.05 {
		t.Fatalf("log delay = %v, want 0.05 (one NVEM transfer)", logDelay)
	}
	if r.unit.Stats().Writes != 0 {
		t.Fatal("NVEM-resident log touched the disk")
	}
}

func TestLogWriteThroughWriteBuffer(t *testing.T) {
	cfg := baseCfg()
	cfg.Log = LogAlloc{DiskUnit: 0, NVEMWriteBuffer: true}
	cfg.NVEMWriteBufferSize = 5
	r := newRig(t, cfg)
	var logDelay sim.Time
	r.drive(func(b *sim.BlockingProcess) {
		start := b.Now()
		writeLogB(b, r.m)
		logDelay = b.Now() - start
	})
	if logDelay > 1 {
		t.Fatalf("log delay = %v: WB log write must be at NVEM speed", logDelay)
	}
	if r.unit.Stats().Writes != 1 {
		t.Fatal("log destage missing")
	}
}

func TestLogWriteToDisk(t *testing.T) {
	r := newRig(t, baseCfg())
	var logDelay sim.Time
	r.drive(func(b *sim.BlockingProcess) {
		start := b.Now()
		writeLogB(b, r.m)
		logDelay = b.Now() - start
	})
	if logDelay < 1 {
		t.Fatalf("log delay = %v: disk log write must be synchronous", logDelay)
	}
	if r.m.Stats().LogWrites != 1 || r.unit.Stats().Writes != 1 {
		t.Fatal("log write not issued")
	}
}

func TestLoggingDisabled(t *testing.T) {
	cfg := baseCfg()
	cfg.Logging = false
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) { writeLogB(b, r.m) })
	if r.m.Stats().LogWrites != 0 {
		t.Fatal("log write issued despite Logging=false")
	}
}

func TestForcePagesWritesAndCleans(t *testing.T) {
	cfg := baseCfg()
	cfg.Force = true
	cfg.BufferSize = 10
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)
		fixB(b, r.m, key(0, 2), true)
		forceB(b, r.m, key(0, 1), key(0, 2))
		// Pages stay buffered and clean: next fix is a hit and a later
		// eviction needs no write.
		fixB(b, r.m, key(0, 1), false)
	})
	st := r.m.Stats()
	if st.ForceWrites != 2 {
		t.Fatalf("force writes = %d", st.ForceWrites)
	}
	if r.unit.Stats().Writes != 2 {
		t.Fatalf("unit writes = %d", r.unit.Stats().Writes)
	}
	if st.MMHits != 1 {
		t.Fatalf("hits = %d: forced page must stay buffered", st.MMHits)
	}
}

func TestForceNoforceConfigIgnoresForcePages(t *testing.T) {
	r := newRig(t, baseCfg()) // NOFORCE
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)
		forceB(b, r.m, key(0, 1))
	})
	if r.m.Stats().ForceWrites != 0 {
		t.Fatal("NOFORCE must not force pages")
	}
}

func TestForceWithNVEMCacheReplicates(t *testing.T) {
	cfg := nvemCacheCfg(4, 4)
	cfg.Force = true
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)
		forceB(b, r.m, key(0, 1))
	})
	// Page must now be in BOTH main memory and NVEM (replication).
	if r.m.NVEMCacheLen() != 1 {
		t.Fatalf("NVEM len = %d, want 1", r.m.NVEMCacheLen())
	}
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), false)
	})
	if r.m.Stats().MMHits != 1 {
		t.Fatal("forced page must remain in main memory")
	}
	if r.m.Stats().AsyncDiskWrites != 1 {
		t.Fatalf("async writes = %d", r.m.Stats().AsyncDiskWrites)
	}
}

func TestForcePrefersCleanVictims(t *testing.T) {
	cfg := baseCfg()
	cfg.Force = true
	cfg.BufferSize = 3
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), false) // clean, oldest
		fixB(b, r.m, key(0, 2), true)  // dirty (uncommitted)
		fixB(b, r.m, key(0, 3), true)  // dirty
		fixB(b, r.m, key(0, 4), false) // victim should be clean page 1
	})
	st := r.m.Stats()
	if st.VictimWrites != 0 {
		t.Fatalf("victim writes = %d: FORCE should have found a clean victim", st.VictimWrites)
	}
}

func TestForceSkipsAlreadyCleanAndEvicted(t *testing.T) {
	cfg := baseCfg()
	cfg.Force = true
	cfg.BufferSize = 10
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)
		forceB(b, r.m, key(0, 1))
		// Second force of the same (now clean) page must be a no-op, as is
		// forcing a page that was never buffered.
		forceB(b, r.m, key(0, 1), key(0, 99))
	})
	if got := r.m.Stats().ForceWrites; got != 1 {
		t.Fatalf("force writes = %d, want 1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	mk := func(mutate func(*Config)) error {
		cfg := baseCfg()
		mutate(&cfg)
		names := []string{"p0"} // one real partition
		s := sim.New()
		unit, _ := storage.NewDiskUnit(s, storage.DiskUnitConfig{
			Name: "u", Type: storage.Regular, NumControllers: 1, ContrDelay: 1,
			TransDelay: 0.4, NumDisks: 1, DiskDelay: 15,
		}, rng.NewStream(1, "u"))
		_, err := New(cfg, names, []*storage.DiskUnit{unit}, nil, &testHost{s: s})
		return err
	}
	cases := map[string]func(*Config){
		"zero buffer":    func(c *Config) { c.BufferSize = 0 },
		"both resident":  func(c *Config) { c.Partitions[0] = PartitionAlloc{MMResident: true, NVEMResident: true} },
		"resident+cache": func(c *Config) { c.Partitions[0] = PartitionAlloc{MMResident: true, NVEMCache: true} },
		"bad unit":       func(c *Config) { c.Partitions[0].DiskUnit = 5 },
		"cache+wb":       func(c *Config) { c.Partitions[0] = PartitionAlloc{NVEMCache: true, NVEMWriteBuffer: true} },
		"log unit":       func(c *Config) { c.Log.DiskUnit = 9 },
		"log res+wb":     func(c *Config) { c.Log = LogAlloc{NVEMResident: true, NVEMWriteBuffer: true} },
		"cache no size":  func(c *Config) { c.Partitions[0] = PartitionAlloc{NVEMCache: true}; c.NVEMCacheSize = 0 },
		"wb no size":     func(c *Config) { c.Partitions[0] = PartitionAlloc{NVEMWriteBuffer: true} },
		"nvem wo store":  func(c *Config) { c.Log = LogAlloc{NVEMResident: true} },
		"wrong nparts":   func(c *Config) { c.Partitions = append(c.Partitions, PartitionAlloc{}) },
	}
	for name, mutate := range cases {
		if err := mk(mutate); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
