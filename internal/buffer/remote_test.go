package buffer

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/storage"
)

// loopbackBus resolves shared-cache operations against the same manager's
// coordinator entry points with zero delay — the unit-test stand-in for
// the PDES interconnect, which only adds latency between the same calls.
type loopbackBus struct{ m *Manager }

func (b *loopbackBus) Probe(key storage.PageKey, k func(hit, dirty bool)) {
	k(b.m.ApplySharedProbe(key))
}

func (b *loopbackBus) Put(key storage.PageKey, dirty bool) {
	b.m.ApplySharedPut(key, dirty)
}

// newRemoteRig mirrors newRig but wires the manager in remote mode: the
// shared NVEM cache sits behind a loopback bus.
func newRemoteRig(t *testing.T, cfg Config, frames int) *rig {
	t.Helper()
	s := sim.New()
	unitCfg := storage.DiskUnitConfig{
		Name: "u0", Type: storage.Regular,
		NumControllers: 4, ContrDelay: 1, TransDelay: 0.4,
		NumDisks: 4, DiskDelay: 15,
	}
	unit, err := storage.NewDiskUnit(s, unitCfg, rng.NewStream(1, "unit"))
	if err != nil {
		t.Fatal(err)
	}
	nvem, err := storage.NewNVEM(s, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	host := &testHost{s: s, nvem: nvem}
	names := make([]string, len(cfg.Partitions))
	for i := range names {
		names[i] = "p"
	}
	shared, err := NewSharedNVEMCache(frames)
	if err != nil {
		t.Fatal(err)
	}
	bus := &loopbackBus{}
	m, err := NewRemote(cfg, names, []*storage.DiskUnit{unit}, nvem, host, shared, bus)
	if err != nil {
		t.Fatal(err)
	}
	bus.m = m
	return &rig{s: s, host: host, m: m, unit: unit}
}

// TestFixRemoteSharedCache drives the remote fix path end to end under
// NOFORCE with deferred destage: victims migrate into the shared cache
// over the bus, a later probe hit promotes the deferred-dirty copy back
// up (single-copy management), and misses fall through to device reads.
func TestFixRemoteSharedCache(t *testing.T) {
	cfg := Config{
		BufferSize:          2,
		NVEMCacheSize:       4,
		NVEMDeferredDestage: true,
		Partitions: []PartitionAlloc{
			{DiskUnit: 0, NVEMCache: true, NVEMCacheMode: MigrateAll},
		},
	}
	r := newRemoteRig(t, cfg, 4)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)  // miss, probe miss, device read
		fixB(b, r.m, key(0, 2), false) // miss, probe miss, device read
		fixB(b, r.m, key(0, 3), false) // victim 1 (dirty) migrates; miss
		fixB(b, r.m, key(0, 1), false) // victim 2 (clean) migrates; probe hit
	})
	st := r.m.Stats()
	if st.DeviceReads != 3 || st.NVEMCacheHits != 1 || st.VictimToNVEM != 2 {
		t.Fatalf("remote fix stats: %+v", st)
	}
	// Page 1's probe hit removed it from the shared cache; only page 2
	// (the clean migrant) remains.
	if r.m.NVEMCacheLen() != 1 {
		t.Fatalf("shared cache occupancy = %d, want 1", r.m.NVEMCacheLen())
	}
	// The deferred-dirty copy promoted: page 1's frame carries the
	// modification written before it was replaced.
	if f, ok := r.m.mm.Peek(key(0, 1)); !ok || !f.dirty {
		t.Fatalf("promoted copy not dirty in MM: ok=%v frame=%+v", ok, f)
	}
}

// TestFixRemoteVictimFromPlainPartition pins the remote path's victim
// disposal when the replaced frame belongs to a partition without NVEM
// caching: a dirty victim pays a synchronous device write, a clean one is
// dropped.
func TestFixRemoteVictimFromPlainPartition(t *testing.T) {
	cfg := Config{
		BufferSize:    2,
		NVEMCacheSize: 4,
		Partitions: []PartitionAlloc{
			{DiskUnit: 0},
			{DiskUnit: 0, NVEMCache: true, NVEMCacheMode: MigrateAll},
		},
	}
	r := newRemoteRig(t, cfg, 4)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)  // plain partition, fills MM
		fixB(b, r.m, key(0, 2), false) // plain partition, fills MM
		fixB(b, r.m, key(1, 1), false) // remote fix; dirty plain victim
		fixB(b, r.m, key(1, 2), false) // remote fix; clean plain victim
	})
	st := r.m.Stats()
	if st.VictimWrites != 1 || st.CleanDrops != 1 || st.DeviceReads != 4 {
		t.Fatalf("plain-victim disposal stats: %+v", st)
	}
}
