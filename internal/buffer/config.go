package buffer

import "fmt"

// MigrateMode selects which pages replaced from the main-memory buffer
// migrate into the NVEM second-level cache (parameter CachingNVEM of Table
// 3.3). The paper finds migrating all pages gives the best NVEM hit ratios
// (section 4.6).
type MigrateMode uint8

// Migration modes for the NVEM cache.
const (
	MigrateAll        MigrateMode = iota // modified and unmodified pages
	MigrateModified                      // only modified pages
	MigrateUnmodified                    // only unmodified pages
)

func (m MigrateMode) String() string {
	switch m {
	case MigrateAll:
		return "all"
	case MigrateModified:
		return "modified"
	case MigrateUnmodified:
		return "unmodified"
	default:
		return fmt.Sprintf("MigrateMode(%d)", uint8(m))
	}
}

// PartitionAlloc places one database partition in the storage hierarchy
// (the 17 possibilities of Fig 3.2): main-memory resident, NVEM resident, or
// on a disk-unit — optionally with an NVEM second-level cache and/or an NVEM
// write buffer in front of the disk-unit.
type PartitionAlloc struct {
	MMResident   bool
	NVEMResident bool
	// DiskUnit indexes the engine's disk-unit list when the partition is
	// neither MM- nor NVEM-resident.
	DiskUnit int
	// SyncAccess selects synchronous device access for this partition
	// (parameter AccessMode of Table 3.3): the CPU stays busy until the
	// read or write completes instead of being released for the I/O.
	SyncAccess bool

	// NVEMCache caches this partition's pages in the NVEM second-level
	// buffer when they are replaced from main memory.
	NVEMCache bool
	// NVEMCacheMode selects which replaced pages migrate.
	NVEMCacheMode MigrateMode
	// NVEMWriteBuffer routes this partition's page writes through the NVEM
	// write buffer (asynchronous disk update).
	NVEMWriteBuffer bool
}

// Validate checks a single partition allocation.
func (a *PartitionAlloc) Validate(name string, numUnits int) error {
	if a.MMResident && a.NVEMResident {
		return fmt.Errorf("buffer: %s: both MM- and NVEM-resident", name)
	}
	resident := a.MMResident || a.NVEMResident
	if resident && (a.NVEMCache || a.NVEMWriteBuffer) {
		return fmt.Errorf("buffer: %s: resident partitions take no cache/write buffer", name)
	}
	if !resident && (a.DiskUnit < 0 || a.DiskUnit >= numUnits) {
		return fmt.Errorf("buffer: %s: disk unit %d out of range", name, a.DiskUnit)
	}
	if a.NVEMCache && a.NVEMWriteBuffer {
		// The NVEM cache already absorbs writes; a write buffer on top is
		// meaningless (Fig 3.2 footnote 4).
		return fmt.Errorf("buffer: %s: NVEM cache and NVEM write buffer are exclusive", name)
	}
	return nil
}

// LogAlloc places the log file (section 3.3): NVEM-resident, or on a
// disk-unit (SSD, disk with write-buffer cache, plain disk), optionally
// through the NVEM write buffer.
type LogAlloc struct {
	NVEMResident    bool
	DiskUnit        int
	NVEMWriteBuffer bool
}

// Validate checks the log allocation.
func (a *LogAlloc) Validate(numUnits int) error {
	if a.NVEMResident && a.NVEMWriteBuffer {
		return fmt.Errorf("buffer: log: NVEM-resident log needs no write buffer")
	}
	if !a.NVEMResident && (a.DiskUnit < 0 || a.DiskUnit >= numUnits) {
		return fmt.Errorf("buffer: log: disk unit %d out of range", a.DiskUnit)
	}
	return nil
}

// Config parameterizes the buffer manager (the BM rows of Table 3.3).
type Config struct {
	// BufferSize is the main-memory database buffer size in page frames.
	BufferSize int
	// Force selects the FORCE update strategy (all pages modified by a
	// transaction written to non-volatile storage at commit); false is
	// NOFORCE with fuzzy checkpointing (no extra commit writes).
	Force bool
	// Logging disables the commit log write when false.
	Logging bool

	// GroupCommit batches the log writes of concurrently committing
	// transactions into one log I/O (the optimization footnote 3 notes the
	// paper's base model omits — and which section 4.2 argues NV memory
	// makes unnecessary). Committers wait up to GroupCommitWaitMS for the
	// group's shared write.
	GroupCommit       bool
	GroupCommitWaitMS float64

	// AsyncReplacement writes dirty victim pages to disk asynchronously
	// instead of stalling the replacing transaction (the "more
	// sophisticated buffer manager" of section 4.3). Without NV memory this
	// recovers most of the write-buffer benefit in software.
	AsyncReplacement bool

	// CheckpointIntervalMS, when positive, runs the fuzzy-checkpoint
	// daemon: every interval the dirty main-memory frames are flushed
	// asynchronously and a checkpoint record is logged, bounding the redo
	// log a restart must scan (section 3.2: NOFORCE "in combination with
	// fuzzy checkpoints"). Requires Logging.
	CheckpointIntervalMS float64

	// NVEMDeferredDestage defers the disk update of modified pages in the
	// NVEM cache until they are evicted from NVEM, saving disk writes for
	// pages modified repeatedly (the alternative propagation policy
	// discussed in section 3.2). The eviction then pays an extra NVEM→MM
	// transfer before the asynchronous disk write.
	NVEMDeferredDestage bool

	// NVEMCacheSize is the NVEM second-level buffer size in frames (0 when
	// no partition uses NVEM caching).
	NVEMCacheSize int
	// NVEMWriteBufferSize bounds pages buffered in the NVEM write buffer
	// awaiting their asynchronous disk write (0 when unused).
	NVEMWriteBufferSize int

	Partitions []PartitionAlloc
	Log        LogAlloc
}

// Validate checks the configuration against the number of configured
// disk-units and partition names (for messages).
func (c *Config) Validate(partitionNames []string, numUnits int) error {
	if c.BufferSize <= 0 {
		return fmt.Errorf("buffer: BufferSize = %d", c.BufferSize)
	}
	if len(c.Partitions) != len(partitionNames) {
		return fmt.Errorf("buffer: %d allocations for %d partitions", len(c.Partitions), len(partitionNames))
	}
	needNVEMCache := false
	needWB := false
	for i := range c.Partitions {
		if err := c.Partitions[i].Validate(partitionNames[i], numUnits); err != nil {
			return err
		}
		needNVEMCache = needNVEMCache || c.Partitions[i].NVEMCache
		needWB = needWB || c.Partitions[i].NVEMWriteBuffer
	}
	if err := c.Log.Validate(numUnits); err != nil {
		return err
	}
	needWB = needWB || c.Log.NVEMWriteBuffer
	if needNVEMCache && c.NVEMCacheSize <= 0 {
		return fmt.Errorf("buffer: NVEM caching enabled but NVEMCacheSize = %d", c.NVEMCacheSize)
	}
	if needWB && c.NVEMWriteBufferSize <= 0 {
		return fmt.Errorf("buffer: NVEM write buffer enabled but NVEMWriteBufferSize = %d", c.NVEMWriteBufferSize)
	}
	if c.GroupCommit && c.GroupCommitWaitMS <= 0 {
		return fmt.Errorf("buffer: GroupCommit requires GroupCommitWaitMS > 0")
	}
	if c.GroupCommit && !c.Logging {
		return fmt.Errorf("buffer: GroupCommit without Logging")
	}
	if c.CheckpointIntervalMS < 0 {
		return fmt.Errorf("buffer: CheckpointIntervalMS = %v", c.CheckpointIntervalMS)
	}
	if c.CheckpointIntervalMS > 0 && !c.Logging {
		return fmt.Errorf("buffer: checkpointing without Logging")
	}
	return nil
}

// UsesNVEM reports whether any allocation touches NVEM (residence, cache or
// write buffer), i.e. whether the engine must configure an NVEM store.
func (c *Config) UsesNVEM() bool {
	if c.Log.NVEMResident || c.Log.NVEMWriteBuffer {
		return true
	}
	for i := range c.Partitions {
		a := &c.Partitions[i]
		if a.NVEMResident || a.NVEMCache || a.NVEMWriteBuffer {
			return true
		}
	}
	return false
}
