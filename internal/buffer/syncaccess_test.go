package buffer

import (
	"testing"

	"repro/internal/sim"
)

func TestSyncAccessUsesSyncDeviceIO(t *testing.T) {
	cfg := baseCfg()
	cfg.Partitions[0].SyncAccess = true
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)  // sync read
		fixB(b, r.m, key(0, 2), true)  // sync read
		fixB(b, r.m, key(0, 3), true)  // sync read
		fixB(b, r.m, key(0, 4), false) // sync victim write + sync read
	})
	if r.host.syncCalls != 5 {
		t.Fatalf("sync device calls = %d, want 5 (4 reads + 1 victim write)", r.host.syncCalls)
	}
	if r.host.ioCalls != 0 {
		t.Fatalf("async IO overhead calls = %d, want 0 for a synchronous partition", r.host.ioCalls)
	}
}

func TestSyncAccessForceWrites(t *testing.T) {
	cfg := baseCfg()
	cfg.Force = true
	cfg.BufferSize = 10
	cfg.Partitions[0].SyncAccess = true
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)
		forceB(b, r.m, key(0, 1))
	})
	// 1 sync read + 1 sync force write.
	if r.host.syncCalls != 2 {
		t.Fatalf("sync device calls = %d, want 2", r.host.syncCalls)
	}
}

func TestAsyncDefaultKeepsIOOverheadPath(t *testing.T) {
	r := newRig(t, baseCfg()) // SyncAccess false
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), false)
	})
	if r.host.syncCalls != 0 || r.host.ioCalls != 1 {
		t.Fatalf("sync=%d io=%d, want 0/1", r.host.syncCalls, r.host.ioCalls)
	}
}
