package buffer

import (
	"testing"

	"repro/internal/sim"
)

// ckptCfg is baseCfg with a large enough buffer and the checkpoint
// daemon enabled.
func ckptCfg(intervalMS float64) Config {
	cfg := baseCfg()
	cfg.BufferSize = 8
	cfg.CheckpointIntervalMS = intervalMS
	return cfg
}

func TestCheckpointValidation(t *testing.T) {
	cfg := ckptCfg(-1)
	if err := cfg.Validate([]string{"p"}, 1); err == nil {
		t.Fatal("negative interval must fail validation")
	}
	cfg = ckptCfg(100)
	cfg.Logging = false
	if err := cfg.Validate([]string{"p"}, 1); err == nil {
		t.Fatal("checkpointing without logging must fail validation")
	}
}

// TestCheckpointFlushesDirtyPages: the daemon flushes the dirty frames,
// counts the checkpoint, and resets the since-checkpoint log length.
// Assertions happen outside the blocking body (a Fatalf inside it would
// park the hand-off shim).
func TestCheckpointFlushesDirtyPages(t *testing.T) {
	r := newRig(t, ckptCfg(500))
	var dirtyBefore, dirtyAfter int
	var logBefore, logAfter int64
	r.drive(func(b *sim.BlockingProcess) {
		for page := int64(1); page <= 3; page++ {
			fixB(b, r.m, key(0, page), true)
		}
		writeLogB(b, r.m)
		dirtyBefore, logBefore = r.m.DirtyPages(), r.m.LogSinceCkpt()
		b.Hold(600) // across the first checkpoint
		dirtyAfter, logAfter = r.m.DirtyPages(), r.m.LogSinceCkpt()
		r.m.StopCheckpoints()
	})
	if dirtyBefore != 3 || logBefore != 1 {
		t.Fatalf("before checkpoint: dirty=%d log=%d, want 3/1", dirtyBefore, logBefore)
	}
	if dirtyAfter != 0 || logAfter != 0 {
		t.Fatalf("after checkpoint: dirty=%d log=%d, want 0/0", dirtyAfter, logAfter)
	}
	st := r.m.Stats()
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoint completed")
	}
	if st.CkptWrites != 3 {
		t.Fatalf("checkpoint writes = %d, want 3", st.CkptWrites)
	}
	// Each completed checkpoint also logged one checkpoint record.
	if st.LogWrites < st.Checkpoints {
		t.Fatalf("log writes %d < checkpoints %d", st.LogWrites, st.Checkpoints)
	}
}

// TestCheckpointDirtyKeysOrder: DirtyKeys reports MRU→LRU order.
func TestCheckpointDirtyKeysOrder(t *testing.T) {
	cfg := ckptCfg(0) // no daemon; bookkeeping only
	cfg.CheckpointIntervalMS = 0
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)
		fixB(b, r.m, key(0, 2), false)
		fixB(b, r.m, key(0, 3), true)
	})
	keys := r.m.DirtyKeys()
	if len(keys) != 2 || keys[0] != key(0, 3) || keys[1] != key(0, 1) {
		t.Fatalf("dirty keys = %v, want [p0/3 p0/1]", keys)
	}
}

// TestStopCheckpointsEndsDaemon: after StopCheckpoints the event heap
// drains — RunAll terminates and no further checkpoints run.
func TestStopCheckpointsEndsDaemon(t *testing.T) {
	r := newRig(t, ckptCfg(50))
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)
		b.Hold(120)
		r.m.StopCheckpoints()
	})
	before := r.m.Stats().Checkpoints
	if before == 0 {
		t.Fatal("no checkpoint before stop")
	}
	r.s.Run(r.s.Now() + 1000)
	if after := r.m.Stats().Checkpoints; after != before {
		t.Fatalf("daemon kept checkpointing after stop: %d -> %d", before, after)
	}
}

// TestCrashClearsVolatileOnly: Crash empties the main-memory buffer but
// keeps the (non-volatile) NVEM cache.
func TestCrashClearsVolatileOnly(t *testing.T) {
	cfg := baseCfg()
	cfg.BufferSize = 2
	cfg.NVEMCacheSize = 4
	cfg.Partitions[0].NVEMCache = true
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		for page := int64(1); page <= 4; page++ { // overflow MM into NVEM
			fixB(b, r.m, key(0, page), false)
		}
	})
	if r.m.MMLen() == 0 || r.m.NVEMCacheLen() == 0 {
		t.Fatalf("setup: mm=%d nvem=%d", r.m.MMLen(), r.m.NVEMCacheLen())
	}
	nvemBefore := r.m.NVEMCacheLen()
	r.m.Crash()
	if r.m.MMLen() != 0 {
		t.Fatalf("MM survived the crash: %d frames", r.m.MMLen())
	}
	if r.m.NVEMCacheLen() != nvemBefore {
		t.Fatalf("NVEM cache did not survive: %d -> %d", nvemBefore, r.m.NVEMCacheLen())
	}
}

// TestRecoveryScanDeviceVsNVEM: the simulated log scan pays device reads
// for a disk log and NVEM transfers for an NVEM-resident log.
func TestRecoveryScanDeviceVsNVEM(t *testing.T) {
	r := newRig(t, baseCfg())
	readsBefore := r.unit.Stats().Reads
	var scanned bool
	r.drive(func(b *sim.BlockingProcess) {
		b.Await(func(done func()) {
			r.m.RecoveryScan(b.Proc(), 5, func() { scanned = true; done() })
		})
	})
	if !scanned {
		t.Fatal("scan never completed")
	}
	if got := r.unit.Stats().Reads - readsBefore; got != 5 {
		t.Fatalf("disk log scan issued %d reads, want 5", got)
	}

	cfg := baseCfg()
	cfg.Log = LogAlloc{NVEMResident: true}
	rn := newRig(t, cfg)
	rn.drive(func(b *sim.BlockingProcess) {
		b.Await(func(done func()) {
			rn.m.RecoveryScan(b.Proc(), 5, done)
		})
	})
	if rn.host.nvemCalls != 5 {
		t.Fatalf("NVEM log scan made %d transfers, want 5", rn.host.nvemCalls)
	}
	if got := rn.m.LogSinceCkpt(); got != 0 {
		t.Fatalf("log since ckpt after scan = %d, want 0", got)
	}
}

// TestResumeCheckpointsAfterStop: a new daemon incarnation resumes
// checkpointing, and the old incarnation's stale tick is fenced off by
// the generation counter (no double daemon).
func TestResumeCheckpointsAfterStop(t *testing.T) {
	r := newRig(t, ckptCfg(100))
	var atStop, afterDead, afterResume int64
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)
		b.Hold(250)
		r.m.StopCheckpoints()
		atStop = r.m.Stats().Checkpoints
		b.Hold(300) // stale tick fires and must exit
		afterDead = r.m.Stats().Checkpoints
		r.m.ResumeCheckpoints()
		b.Hold(300)
		afterResume = r.m.Stats().Checkpoints
		r.m.StopCheckpoints()
	})
	if atStop == 0 {
		t.Fatal("no checkpoint before stop")
	}
	if afterDead != atStop {
		t.Fatalf("stopped daemon kept checkpointing: %d -> %d", atStop, afterDead)
	}
	if afterResume <= afterDead {
		t.Fatalf("resume did not restart checkpointing: %d -> %d", afterDead, afterResume)
	}
}
