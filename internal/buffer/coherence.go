package buffer

// This file holds the multi-node data-sharing support: a cluster-shared
// NVEM second-level cache and the buffer-coherence hook the cluster
// invokes when a remote node modifies a page. The coherence rule is
// write-invalidate: before a node fixes a page for writing, every other
// node's main-memory copy is dropped; the single current version of a
// dirty copy is handed off to the shared NVEM cache (or its NVEM home /
// disk), so the writer — and any later reader — finds it there instead
// of reading a stale disk copy.

import (
	"fmt"

	"repro/internal/lru"
	"repro/internal/sim"
	"repro/internal/storage"
)

// SharedNVEMCache is an NVEM second-level database cache shared by every
// node of a data-sharing cluster: a page destaged into it by one node is
// hittable by all others. Construct it once and hand it to each node's
// manager via NewShared; the managers then operate on the one cache under
// their usual migration and destage policies.
type SharedNVEMCache struct {
	cache *lru.Cache[storage.PageKey, nvemFrame]
}

// NewSharedNVEMCache allocates the cluster-shared cache.
func NewSharedNVEMCache(frames int) (*SharedNVEMCache, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("buffer: shared NVEM cache size %d", frames)
	}
	return &SharedNVEMCache{cache: lru.New[storage.PageKey, nvemFrame](frames)}, nil
}

// Len returns the number of occupied shared-cache frames.
func (c *SharedNVEMCache) Len() int { return c.cache.Len() }

// NewShared builds a node's buffer manager whose NVEM second-level cache
// is the cluster-shared cache instead of a private one. cfg still
// validates as usual (cfg.NVEMCacheSize sizes the allocation check); the
// shared cache's capacity wins. A nil shared is equivalent to New.
func NewShared(cfg Config, partitionNames []string, units []*storage.DiskUnit,
	nvem *storage.NVEM, host Host, shared *SharedNVEMCache) (*Manager, error) {
	return newManager(cfg, partitionNames, units, nvem, host, shared, nil)
}

// NewRemote builds a node's buffer manager for a parallel (PDES) cluster
// with a shared NVEM cache: every shared-cache operation travels through
// remote — a lookahead-respecting interconnect — instead of touching the
// structure, and the cluster coordinator applies it at a barrier via
// ApplySharedProbe / ApplySharedPut. shared is kept only for those entry
// points and for occupancy reporting.
func NewRemote(cfg Config, partitionNames []string, units []*storage.DiskUnit,
	nvem *storage.NVEM, host Host, shared *SharedNVEMCache, remote RemoteNVEMCache) (*Manager, error) {
	return newManager(cfg, partitionNames, units, nvem, host, shared, remote)
}

// Invalidate drops this node's copies of key because a remote node is
// about to modify the page. A private NVEM-cache copy is stale after the
// remote write and is dropped alongside the main-memory frame; a
// cluster-shared cache copy is the single global version and stays. A
// clean main-memory copy is simply discarded. A dirty copy is the only
// current version, so it is handed off before the remote write proceeds:
// into the cluster-shared NVEM cache when the partition uses it (the disk
// update then follows the cache's destage policy), back to its NVEM home
// for NVEM-resident partitions, or asynchronously to disk — never into a
// private cache, where the remote writer could not hit it. The hand-off
// transfer time is charged to this node in the background — the remote
// writer is not delayed by it. Reports whether a main-memory copy existed
// and whether it was dirty.
func (m *Manager) Invalidate(key storage.PageKey) (had, dirty bool) {
	f, ok := m.mm.Peek(key)
	if m.nvemCache != nil && !m.sharedNVEM {
		if cf, inCache := m.nvemCache.Peek(key); inCache {
			m.nvemCache.Remove(key)
			if cf.dirty && !(ok && f.dirty) {
				// Deferred destage left the current version here (no
				// newer dirty main-memory copy exists); it must reach
				// disk before the stale disk copy is read, paying the
				// same NVEM→MM transfer as an LRU eviction.
				m.destageFromNVEM(key)
			}
		}
	}
	if !ok {
		return false, false
	}
	m.mm.Remove(key)
	if !f.dirty {
		return true, false
	}
	a := m.alloc(key.Partition)
	switch {
	case a.NVEMResident:
		// Write the current version back to its NVEM home.
		m.host.SpawnAsync("coherence-handoff", func(ap *sim.Process) {
			m.host.NVEMTransfer(ap, nop)
		})
	case a.NVEMCache && m.sharedNVEM:
		m.insertNVEM(key, true)
		if !m.cfg.NVEMDeferredDestage {
			m.startAsyncWrite(key)
		}
		m.host.SpawnAsync("coherence-handoff", func(ap *sim.Process) {
			m.host.NVEMTransfer(ap, nop)
		})
	default:
		m.startAsyncWrite(key)
	}
	return true, true
}
