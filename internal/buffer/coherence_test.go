package buffer

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/storage"
)

// twoNodeRig builds two buffer managers that share one disk unit, one NVEM
// store and one shared NVEM second-level cache — the buffer-level shape of
// a two-node data-sharing cluster.
func twoNodeRig(t *testing.T, bufferSize, sharedFrames int) (s *sim.Sim, a, b *Manager, shared *SharedNVEMCache) {
	t.Helper()
	s = sim.New()
	unit, err := storage.NewDiskUnit(s, storage.DiskUnitConfig{
		Name: "u0", Type: storage.Regular,
		NumControllers: 4, ContrDelay: 1, TransDelay: 0.4,
		NumDisks: 4, DiskDelay: 15,
	}, rng.NewStream(1, "unit"))
	if err != nil {
		t.Fatal(err)
	}
	nvem, err := storage.NewNVEM(s, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	shared, err = NewSharedNVEMCache(sharedFrames)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		BufferSize:    bufferSize,
		Logging:       false,
		NVEMCacheSize: sharedFrames,
		Partitions:    []PartitionAlloc{{DiskUnit: 0, NVEMCache: true, NVEMCacheMode: MigrateAll}},
		Log:           LogAlloc{DiskUnit: 0},
	}
	mk := func() *Manager {
		host := &testHost{s: s, nvem: nvem}
		m, err := NewShared(cfg, []string{"p"}, []*storage.DiskUnit{unit}, nvem, host, shared)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	return s, mk(), mk(), shared
}

// TestSharedNVEMCacheCrossNodeHit: a page node A destages into the shared
// cache must be hittable by node B.
func TestSharedNVEMCacheCrossNodeHit(t *testing.T) {
	s, a, b, _ := twoNodeRig(t, 1, 10)
	s.SpawnBlocking("driver", 0, func(bp *sim.BlockingProcess) {
		fixB(bp, a, key(0, 1), false) // A reads page 1
		fixB(bp, a, key(0, 2), false) // evicts page 1 into the shared cache
		fixB(bp, b, key(0, 1), false) // B must hit it there
	})
	s.RunAll()
	if got := a.Stats().VictimToNVEM; got != 1 {
		t.Fatalf("node A migrated %d victims into the shared cache, want 1", got)
	}
	if got := b.Stats().NVEMCacheHits; got != 1 {
		t.Fatalf("node B NVEM cache hits = %d, want 1 (cross-node hit)", got)
	}
	if got := b.Stats().DeviceReads; got != 0 {
		t.Fatalf("node B read the device %d times despite the shared-cache copy", got)
	}
}

// TestInvalidateCleanCopy: invalidating a clean remote copy drops it so the
// next local fix misses.
func TestInvalidateCleanCopy(t *testing.T) {
	s, a, _, _ := twoNodeRig(t, 2, 10)
	s.SpawnBlocking("driver", 0, func(bp *sim.BlockingProcess) {
		fixB(bp, a, key(0, 1), false)
	})
	s.RunAll()
	had, dirty := a.Invalidate(key(0, 1))
	if !had || dirty {
		t.Fatalf("Invalidate = (%v, %v), want (true, false)", had, dirty)
	}
	if a.MMLen() != 0 {
		t.Fatalf("MM still holds %d frames after invalidation", a.MMLen())
	}
	if had, _ := a.Invalidate(key(0, 1)); had {
		t.Fatal("second invalidation found a copy")
	}
}

// TestInvalidatePrivateNVEMCacheCopy: a private (non-shared) NVEM cache
// copy is stale after a remote write and must be dropped with the MM
// frame — the next local fix pays the device read again.
func TestInvalidatePrivateNVEMCacheCopy(t *testing.T) {
	r := newRig(t, Config{
		BufferSize:    1,
		NVEMCacheSize: 10,
		Partitions:    []PartitionAlloc{{DiskUnit: 0, NVEMCache: true, NVEMCacheMode: MigrateAll}},
		Log:           LogAlloc{DiskUnit: 0},
	})
	r.drive(func(bp *sim.BlockingProcess) {
		fixB(bp, r.m, key(0, 1), false) // read page 1
		fixB(bp, r.m, key(0, 2), false) // evict page 1 into the private cache
	})
	if r.m.NVEMCacheLen() != 1 {
		t.Fatalf("private cache holds %d frames, want 1", r.m.NVEMCacheLen())
	}
	if had, _ := r.m.Invalidate(key(0, 1)); had {
		t.Fatal("page 1 must not be in main memory")
	}
	if r.m.NVEMCacheLen() != 0 {
		t.Fatal("stale private-cache copy survived invalidation")
	}
	reads := r.m.Stats().DeviceReads
	r.drive(func(bp *sim.BlockingProcess) {
		fixB(bp, r.m, key(0, 1), false)
	})
	if got := r.m.Stats().DeviceReads; got != reads+1 {
		t.Fatalf("refetch after invalidation read the device %d times, want %d", got-reads, 1)
	}
}

// TestInvalidateDirtyHandoff: invalidating a dirty copy hands the current
// version off to the shared NVEM cache, where the writer (or any reader)
// can hit it instead of reading a stale disk copy.
func TestInvalidateDirtyHandoff(t *testing.T) {
	s, a, b, _ := twoNodeRig(t, 2, 10)
	s.SpawnBlocking("driver", 0, func(bp *sim.BlockingProcess) {
		fixB(bp, a, key(0, 1), true) // A modifies page 1
	})
	s.RunAll()
	had, dirty := a.Invalidate(key(0, 1))
	if !had || !dirty {
		t.Fatalf("Invalidate = (%v, %v), want (true, true)", had, dirty)
	}
	s.SpawnBlocking("driver2", 0, func(bp *sim.BlockingProcess) {
		fixB(bp, b, key(0, 1), true) // B picks the page up from the shared cache
	})
	s.RunAll()
	if got := b.Stats().NVEMCacheHits; got != 1 {
		t.Fatalf("writer missed the handed-off copy: %+v", b.Stats())
	}
}
