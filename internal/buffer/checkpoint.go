package buffer

// This file holds the crash-recovery support of the buffer manager: the
// fuzzy-checkpoint daemon (periodic asynchronous dirty-page flush that
// bounds the redo log a restart must scan), the dirty-page and
// since-checkpoint log bookkeeping the recovery model reads, the crash
// hook that clears the volatile buffer state, and the simulated redo log
// scan. NOFORCE is only viable with this machinery (section 3.2: "fuzzy
// checkpoints"); the restart-time experiments in internal/experiments
// drive it.

import (
	"repro/internal/lru"
	"repro/internal/sim"
	"repro/internal/storage"
)

// LogSinceCkpt returns the redo log length: log pages written since the
// last completed fuzzy checkpoint (or since the start of the run when no
// checkpoint has completed yet).
func (m *Manager) LogSinceCkpt() int64 { return m.logSinceCkpt }

// DirtyKeys returns the keys of the dirty main-memory frames, most- to
// least-recently used. The order is the LRU chain's, so it is
// deterministic; the checkpoint daemon flushes in it and crash recovery
// redoes in it.
func (m *Manager) DirtyKeys() []storage.PageKey { return m.appendDirtyKeys(nil) }

// appendDirtyKeys appends the dirty keys to out (the checkpoint daemon
// passes its recycled scratch; DirtyKeys passes nil because its callers —
// recovery snapshots — retain the result).
func (m *Manager) appendDirtyKeys(out []storage.PageKey) []storage.PageKey {
	m.mm.Each(func(k storage.PageKey, f frame) bool {
		if f.dirty {
			out = append(out, k)
		}
		return true
	})
	return out
}

// DirtyPages counts the dirty main-memory frames.
func (m *Manager) DirtyPages() int {
	n := 0
	m.mm.Each(func(_ storage.PageKey, f frame) bool {
		if f.dirty {
			n++
		}
		return true
	})
	return n
}

// StopCheckpoints makes the checkpoint daemon exit at its next tick: a
// crashed node cannot checkpoint, and a drain-to-empty run (restart
// measurement) must terminate.
func (m *Manager) StopCheckpoints() { m.ckptGen++ }

// ResumeCheckpoints starts a fresh checkpoint daemon after a recovered
// node rejoins (no-op when checkpointing is not configured). The cadence
// re-anchors at the resume instant; a stale tick of the stopped daemon
// is fenced off by the generation counter.
func (m *Manager) ResumeCheckpoints() {
	if m.cfg.CheckpointIntervalMS > 0 {
		m.startCheckpointDaemon()
	}
}

// startCheckpointDaemon spawns the fuzzy-checkpoint process on a fixed
// cadence: a checkpoint begins at every multiple of CheckpointIntervalMS
// (skipping beats a long flush overran — checkpoints never overlap), so
// the redo log length at any instant is bounded by the interval plus one
// flush, independent of how long earlier flushes took.
func (m *Manager) startCheckpointDaemon() {
	gen := m.ckptGen
	m.host.SpawnAsync("checkpoint", func(p *sim.Process) {
		interval := m.cfg.CheckpointIntervalMS
		next := p.Now() + interval
		var tick func()
		tick = func() {
			if m.ckptGen != gen {
				return
			}
			m.fuzzyCheckpoint(p, gen, func() {
				now := p.Now()
				for next <= now {
					next += interval
				}
				p.Hold(next-now, tick)
			})
		}
		p.Hold(interval, tick)
	})
}

// fuzzyCheckpoint flushes every dirty main-memory frame without blocking
// transactions: the flush set is fixed at checkpoint begin and written by
// concurrent asynchronous writer processes (the devices serialize them),
// so pages re-modified during the flush stay dirty for the next
// checkpoint and transactions only feel the extra device load. Once all
// writes and the checkpoint log record are durable the redo log length
// resets, then k runs. A crash mid-flush abandons the checkpoint: device
// writes already issued complete (in-flight I/O survives), but the gen
// fence stops every later continuation, so no checkpoint record is
// written and the redo log length stays for the recovery snapshot.
func (m *Manager) fuzzyCheckpoint(p *sim.Process, gen int, k func()) {
	m.stats.Checkpoints++
	m.ckptKeys = m.appendDirtyKeys(m.ckptKeys[:0])
	keys := m.ckptKeys
	for _, key := range keys {
		m.mm.Update(key, frame{dirty: false})
	}
	finish := func() {
		if m.ckptGen != gen {
			return
		}
		done := func() {
			m.logSinceCkpt = 0
			k()
		}
		if m.cfg.Logging {
			m.writeLogPage(p, done) // checkpoint record
			return
		}
		done()
	}
	if len(keys) == 0 {
		finish()
		return
	}
	// One pooled flush op per page (each a +0 event, matching the writer
	// processes they replace); the flush set is the recycled scratch, which
	// is safe to reuse next checkpoint because every op copied its key.
	m.ckptRemaining = len(keys)
	m.ckptFinish = finish
	for _, key := range keys {
		m.stats.CkptWrites++
		op := m.getAsyncOp()
		op.key, op.gen = key, gen
		op.state = ckFlush
		m.sim.Schedule(0, op.step)
	}
}

// Crash clears the buffer manager's volatile state: every main-memory
// frame is lost, as are the continuations of in-flight group commits.
// Non-volatile state survives — the NVEM cache (private or shared), the
// NVEM write buffer with its in-flight destages, and everything on the
// devices. The since-checkpoint log counter is left for the recovery
// snapshot; RecoveryScan resets it once the log has been replayed.
func (m *Manager) Crash() {
	m.mm = lru.New[storage.PageKey, frame](m.cfg.BufferSize)
	m.gcWaiters = nil
}

// RecoveryScan reads n redo log pages sequentially through the log
// allocation — NVEM transfers for an NVEM-resident log, device reads
// otherwise — then resets the since-checkpoint counter and runs k. This
// is the device-dependent log scan of a restart: its duration is what
// separates NVEM, SSD and disk log placements.
func (m *Manager) RecoveryScan(p *sim.Process, n int64, k func()) {
	var i int64
	var step func()
	step = func() {
		if i == n {
			m.logSinceCkpt = 0
			k()
			return
		}
		key := storage.PageKey{Partition: m.logPartition, Page: m.logNext - n + i}
		i++
		if m.cfg.Log.NVEMResident {
			m.host.NVEMTransfer(p, step)
			return
		}
		m.host.IOOverhead(p, func() {
			m.units[m.cfg.Log.DiskUnit].Read(p, key, step)
		})
	}
	step()
}
