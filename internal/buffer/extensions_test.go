package buffer

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/storage"
)

func TestGroupCommitBatchesLogWrites(t *testing.T) {
	cfg := baseCfg()
	cfg.GroupCommit = true
	cfg.GroupCommitWaitMS = 5
	r := newRig(t, cfg)
	done := 0
	// Five transactions commit within one group window.
	for i := 0; i < 5; i++ {
		r.s.Spawn("committer", sim.Time(i), func(p *sim.Process) {
			r.m.WriteLog(p, func() { done++ })
		})
	}
	r.s.RunAll()
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	st := r.m.Stats()
	if st.GroupCommits != 1 {
		t.Fatalf("group commits = %d, want 1", st.GroupCommits)
	}
	if st.LogWrites != 1 {
		t.Fatalf("log writes = %d, want 1 (one I/O for the group)", st.LogWrites)
	}
	if r.unit.Stats().Writes != 1 {
		t.Fatalf("unit writes = %d", r.unit.Stats().Writes)
	}
}

func TestGroupCommitSeparateWindows(t *testing.T) {
	cfg := baseCfg()
	cfg.GroupCommit = true
	cfg.GroupCommitWaitMS = 2
	r := newRig(t, cfg)
	var finish []sim.Time
	for _, at := range []sim.Time{0, 100} { // far apart: two groups
		r.s.Spawn("committer", at, func(p *sim.Process) {
			r.m.WriteLog(p, func() { finish = append(finish, p.Now()) })
		})
	}
	r.s.RunAll()
	st := r.m.Stats()
	if st.GroupCommits != 2 || st.LogWrites != 2 {
		t.Fatalf("stats = %+v, want two separate groups", st)
	}
	// Each committer waited at least the group window.
	if len(finish) != 2 || finish[0] < 2 || finish[1] < 102 {
		t.Fatalf("finish times %v: group window not respected", finish)
	}
}

func TestGroupCommitValidation(t *testing.T) {
	cfg := baseCfg()
	cfg.GroupCommit = true // missing wait
	if err := cfg.Validate([]string{"p"}, 1); err == nil {
		t.Fatal("group commit without window must error")
	}
	cfg.GroupCommitWaitMS = 5
	cfg.Logging = false
	if err := cfg.Validate([]string{"p"}, 1); err == nil {
		t.Fatal("group commit without logging must error")
	}
}

func TestAsyncReplacementAvoidsSyncVictimWrite(t *testing.T) {
	cfg := baseCfg()
	cfg.AsyncReplacement = true
	r := newRig(t, cfg)
	var missDelay sim.Time
	r.drive(func(b *sim.BlockingProcess) {
		for page := int64(1); page <= 3; page++ {
			fixB(b, r.m, key(0, page), true)
		}
		start := b.Now()
		fixB(b, r.m, key(0, 4), false) // dirty victim handled in background
		missDelay = b.Now() - start
	})
	st := r.m.Stats()
	if st.VictimWrites != 0 || st.VictimAsync != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AsyncDiskWrites != 1 {
		t.Fatalf("async writes = %d", st.AsyncDiskWrites)
	}
	// Only the read is synchronous: well under two device accesses.
	if missDelay > 60 {
		t.Fatalf("miss delay = %v with async replacement", missDelay)
	}
	if r.unit.Stats().Writes != 1 {
		t.Fatal("victim write never reached the device")
	}
}

func TestDeferredDestageSavesDiskWrites(t *testing.T) {
	// FORCE + NVEM cache: a page forced repeatedly is written to disk once
	// under deferred destage (at NVEM eviction) instead of once per force.
	mk := func(deferred bool) (Stats, storage.DiskUnitStats) {
		cfg := nvemCacheCfg(4, 2)
		cfg.Force = true
		cfg.NVEMDeferredDestage = deferred
		r := newRig(t, cfg)
		r.drive(func(b *sim.BlockingProcess) {
			for i := 0; i < 5; i++ {
				fixB(b, r.m, key(0, 1), true)
				forceB(b, r.m, key(0, 1))
			}
			// Evict page 1 from the 2-frame NVEM cache (if cached there).
			fixB(b, r.m, key(0, 2), true)
			forceB(b, r.m, key(0, 2))
			fixB(b, r.m, key(0, 3), true)
			forceB(b, r.m, key(0, 3))
			fixB(b, r.m, key(0, 4), true)
			forceB(b, r.m, key(0, 4))
		})
		return r.m.Stats(), r.unit.Stats()
	}
	immStats, immUnit := mk(false)
	defStats, defUnit := mk(true)
	if immUnit.Writes <= defUnit.Writes {
		t.Fatalf("deferred destage must reduce disk writes: immediate=%d deferred=%d",
			immUnit.Writes, defUnit.Writes)
	}
	if defStats.NVEMEvictWrites == 0 {
		t.Fatal("deferred destage never destaged on eviction")
	}
	if immStats.NVEMEvictWrites != 0 {
		t.Fatal("immediate propagation must not destage on eviction")
	}
}

func TestDeferredDestagePromotionKeepsDirty(t *testing.T) {
	// NOFORCE + deferred destage: a dirty page promoted from NVEM to MM
	// must stay dirty, so its modification eventually reaches disk.
	cfg := nvemCacheCfg(2, 4)
	cfg.NVEMDeferredDestage = true
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true) // dirty
		fixB(b, r.m, key(0, 2), false)
		fixB(b, r.m, key(0, 3), false) // 1 → NVEM, dirty, NOT destaged
		if got := r.m.Stats().AsyncDiskWrites; got != 0 {
			t.Errorf("deferred mode destaged immediately (%d writes)", got)
		}
		fixB(b, r.m, key(0, 1), false) // promote dirty page back to MM
		// Push it out again via a NON-caching... the partition caches, so
		// it goes back to NVEM dirty; instead verify the MM frame is dirty
		// by forcing an eviction chain later. Here we check the promoted
		// frame state indirectly: evict it to NVEM and then evict from NVEM.
		fixB(b, r.m, key(0, 4), false)
		fixB(b, r.m, key(0, 5), false) // fills NVEM with {2,3,1-dirty,4}-ish
		fixB(b, r.m, key(0, 6), false)
		fixB(b, r.m, key(0, 7), false) // NVEM (cap 4) starts evicting
		fixB(b, r.m, key(0, 8), false)
		fixB(b, r.m, key(0, 9), false)
		fixB(b, r.m, key(0, 10), false) // pushes the dirty page out of NVEM
	})
	st := r.m.Stats()
	if st.NVEMEvictWrites == 0 {
		t.Fatal("dirty page never destaged — modification lost")
	}
	if r.unit.Stats().Writes == 0 {
		t.Fatal("no disk write reached the device")
	}
}
