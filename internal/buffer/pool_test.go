package buffer

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/storage"
)

// TestBufOpPoolResetContract pins the bufOp freelist reset contract: with
// poolPoison filling freed ops with sentinel garbage, recycled ops must
// behave exactly like fresh ones. A deleted reset line in an issue path
// leaves the poison in place — the sentinel state 0xff panics run(), and a
// stale key/victim corrupts the statistics asserted here.
func TestBufOpPoolResetContract(t *testing.T) {
	poolPoison = true
	defer func() { poolPoison = false }()

	r := newRig(t, baseCfg())
	r.drive(func(b *sim.BlockingProcess) {
		// Dirty every op field: three filling misses, then a miss with a
		// dirty victim (synchronous write-back + device read), then a log
		// write. Each recycles at least one op through the freelist.
		for pg := int64(1); pg <= 4; pg++ {
			fixB(b, r.m, key(0, pg), true)
		}
		writeLogB(b, r.m)
	})
	if r.m.freeOps == nil {
		t.Fatal("completed operations were not returned to the freelist")
	}
	if op := r.m.freeOps; op.state != 0xff || op.key != (storage.PageKey{Partition: -1, Page: -1}) {
		t.Fatalf("freed op not poisoned: state=%d key=%+v", op.state, op.key)
	}

	// Recycle poisoned ops through every hot stage again and verify the
	// outcome is exactly what fresh ops would produce.
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 5), true) // miss, dirty victim
		fixB(b, r.m, key(0, 5), true) // MM hit, no op
		writeLogB(b, r.m)
	})
	st := r.m.Stats()
	if st.DeviceReads != 5 || st.VictimWrites != 2 || st.MMHits != 1 || st.LogWrites != 2 {
		t.Fatalf("recycled ops skewed stats: %+v", st)
	}
	if r.m.MMLen() != 3 {
		t.Fatalf("MM occupancy = %d, want 3", r.m.MMLen())
	}
}

// TestForceOpPoolResetContract recycles the commit-set walker (fcLoop and
// friends) under poison: the second transaction's force set must not see
// the first's keys or cursor.
func TestForceOpPoolResetContract(t *testing.T) {
	poolPoison = true
	defer func() { poolPoison = false }()

	cfg := baseCfg()
	cfg.BufferSize = 8
	cfg.Force = true
	r := newRig(t, cfg)
	r.drive(func(b *sim.BlockingProcess) {
		fixB(b, r.m, key(0, 1), true)
		fixB(b, r.m, key(0, 2), true)
		forceB(b, r.m, key(0, 1), key(0, 2))
		// Recycled walker with a different, shorter set; page 2 is already
		// clean, so exactly one more force write must happen.
		fixB(b, r.m, key(0, 3), true)
		forceB(b, r.m, key(0, 3), key(0, 2))
	})
	if st := r.m.Stats(); st.ForceWrites != 3 {
		t.Fatalf("ForceWrites = %d, want 3", st.ForceWrites)
	}
}

// TestGroupCommitWaiterBufferRecycled pins the group-commit waiter-slice
// recycling: after a group flushes, its buffer returns to gcFree and the
// next group reuses it without re-delivering stale continuations.
func TestGroupCommitWaiterBufferRecycled(t *testing.T) {
	poolPoison = true
	defer func() { poolPoison = false }()

	cfg := baseCfg()
	cfg.GroupCommit = true
	cfg.GroupCommitWaitMS = 1
	r := newRig(t, cfg)
	commits := 0
	group := func() {
		for i := 0; i < 3; i++ {
			r.s.Spawn("txn", 0, func(p *sim.Process) {
				r.m.WriteLog(p, func() { commits++ })
			})
		}
		r.s.RunAll()
	}
	group()
	if len(r.m.gcFree) != 1 {
		t.Fatalf("flushed group's waiter buffer not recycled: gcFree=%d", len(r.m.gcFree))
	}
	group()
	st := r.m.Stats()
	if commits != 6 || st.GroupCommits != 2 || st.LogWrites != 2 {
		t.Fatalf("recycled group misbehaved: commits=%d stats=%+v", commits, st)
	}
	if len(r.m.gcFree) != 1 {
		t.Fatalf("second group's buffer not recycled: gcFree=%d", len(r.m.gcFree))
	}
}

// TestBufferSteadyStateZeroAlloc pins the headline discipline: once the
// freelists and the kernel's calendar queue are warm, the miss/write-back/
// log cycle — fix with dirty victim, device read, log write — allocates
// nothing. The rig's delays are deterministic, so this is a stable bound,
// not a flaky one.
func TestBufferSteadyStateZeroAlloc(t *testing.T) {
	cfg := baseCfg()
	cfg.BufferSize = 2
	r := newRig(t, cfg)
	p := r.s.NewProcess("driver")
	noop := func() {}
	cycle := func() {
		for pg := int64(1); pg <= 4; pg++ {
			r.m.Fix(p, key(0, pg), true, noop)
			r.m.WriteLog(p, noop)
			r.s.RunAll()
		}
	}
	for i := 0; i < 300; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("steady-state buffer cycle allocates %.2f/op, want 0", allocs)
	}
}
