// Package buffer implements TPSIM's buffer manager (BM, section 3.2): the
// global-LRU main-memory database buffer, the NVEM second-level database
// cache with its migration modes and NOFORCE single-copy management, the
// NVEM write buffer, logging, and the FORCE/NOFORCE update strategies.
package buffer

import (
	"fmt"

	"repro/internal/lru"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Host is the buffer manager's view of the computing module. The engine
// implements it: CPU overhead per I/O (InstrIO), the CPU-synchronous NVEM
// page transfer (InstrNVEM + NVEM delay with the CPU held), and spawning of
// asynchronous writer processes. All delay-charging methods are
// continuation-style: they run k once the charged simulated time has
// elapsed.
type Host interface {
	// IOOverhead charges the CPU overhead of one I/O to process p, then
	// runs k.
	IOOverhead(p *sim.Process, k func())
	// SyncDeviceIO charges the I/O overhead and runs the device access dev
	// with the CPU held (AccessMode=synchronous, Table 3.3); dev must call
	// its argument when the device completes, after which the CPU is
	// released and k runs.
	SyncDeviceIO(p *sim.Process, dev func(done func()), k func())
	// NVEMTransfer performs one page transfer between main memory and NVEM
	// with the CPU held (synchronous access, section 2), then runs k.
	NVEMTransfer(p *sim.Process, k func())
	// SpawnAsync starts a background process (asynchronous disk updates).
	SpawnAsync(name string, fn func(p *sim.Process))
}

// nop is the terminal continuation of asynchronous writer processes.
func nop() {}

// RemoteNVEMCache routes shared-NVEM-cache operations over a cluster
// interconnect instead of touching the cache structure directly. The
// parallel engine implements it with lookahead messages: a Probe's verdict
// arrives NVEMAccessDelayMS later on the requesting node, and a Put is a
// one-way insert applied at the same latency. A manager built with
// NewRemote never touches the shared cache from its own kernel — the
// cluster coordinator applies the operations through ApplySharedProbe and
// ApplySharedPut while every kernel is quiescent.
type RemoteNVEMCache interface {
	// Probe looks key up in the shared cache; k runs on the requesting
	// node once the verdict arrives. Under NOFORCE a hit removes the
	// cached copy (single-copy promotion) and reports whether it carried
	// a deferred-destage modification; under FORCE the copy stays and its
	// recency is refreshed.
	Probe(key storage.PageKey, k func(hit, dirty bool))
	// Put inserts key into the shared cache (one-way).
	Put(key storage.PageKey, dirty bool)
}

// Stats are the buffer manager's counters.
type Stats struct {
	Fixes         int64 // page requests
	MMHits        int64 // satisfied in the main-memory buffer
	ResidentFixes int64 // fixes to MM-resident partitions (always hits)
	NVEMCacheHits int64 // MM misses satisfied in the NVEM cache
	NVEMReads     int64 // MM misses to NVEM-resident partitions
	DeviceReads   int64 // MM misses served by a disk-unit

	VictimWrites    int64 // dirty victims written synchronously to a device
	VictimAsync     int64 // dirty victims written by asynchronous replacement
	VictimToWB      int64 // dirty victims absorbed by the NVEM write buffer
	VictimToNVEM    int64 // victims migrated into the NVEM cache
	CleanDrops      int64 // clean victims dropped without migration
	WBFullSync      int64 // write-buffer-full fallbacks to synchronous writes
	AsyncDiskWrites int64 // asynchronous disk updates started
	NVEMEvictWrites int64 // deferred destages triggered by NVEM eviction

	ForceWrites  int64 // pages forced at commit (FORCE)
	LogWrites    int64 // physical log page writes
	GroupCommits int64 // log groups flushed (group commit)

	Checkpoints int64 // fuzzy checkpoints completed by the daemon
	CkptWrites  int64 // dirty pages flushed by checkpoints
}

// Sub returns s-o field-wise; the engine reports measurement-window
// deltas with it. Keep Sub and Add in sync when adding counters.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Fixes:           s.Fixes - o.Fixes,
		MMHits:          s.MMHits - o.MMHits,
		ResidentFixes:   s.ResidentFixes - o.ResidentFixes,
		NVEMCacheHits:   s.NVEMCacheHits - o.NVEMCacheHits,
		NVEMReads:       s.NVEMReads - o.NVEMReads,
		DeviceReads:     s.DeviceReads - o.DeviceReads,
		VictimWrites:    s.VictimWrites - o.VictimWrites,
		VictimAsync:     s.VictimAsync - o.VictimAsync,
		VictimToWB:      s.VictimToWB - o.VictimToWB,
		VictimToNVEM:    s.VictimToNVEM - o.VictimToNVEM,
		CleanDrops:      s.CleanDrops - o.CleanDrops,
		WBFullSync:      s.WBFullSync - o.WBFullSync,
		AsyncDiskWrites: s.AsyncDiskWrites - o.AsyncDiskWrites,
		NVEMEvictWrites: s.NVEMEvictWrites - o.NVEMEvictWrites,
		ForceWrites:     s.ForceWrites - o.ForceWrites,
		LogWrites:       s.LogWrites - o.LogWrites,
		GroupCommits:    s.GroupCommits - o.GroupCommits,
		Checkpoints:     s.Checkpoints - o.Checkpoints,
		CkptWrites:      s.CkptWrites - o.CkptWrites,
	}
}

// Add returns s+o field-wise; cluster aggregation sums per-node stats
// with it.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Fixes:           s.Fixes + o.Fixes,
		MMHits:          s.MMHits + o.MMHits,
		ResidentFixes:   s.ResidentFixes + o.ResidentFixes,
		NVEMCacheHits:   s.NVEMCacheHits + o.NVEMCacheHits,
		NVEMReads:       s.NVEMReads + o.NVEMReads,
		DeviceReads:     s.DeviceReads + o.DeviceReads,
		VictimWrites:    s.VictimWrites + o.VictimWrites,
		VictimAsync:     s.VictimAsync + o.VictimAsync,
		VictimToWB:      s.VictimToWB + o.VictimToWB,
		VictimToNVEM:    s.VictimToNVEM + o.VictimToNVEM,
		CleanDrops:      s.CleanDrops + o.CleanDrops,
		WBFullSync:      s.WBFullSync + o.WBFullSync,
		AsyncDiskWrites: s.AsyncDiskWrites + o.AsyncDiskWrites,
		NVEMEvictWrites: s.NVEMEvictWrites + o.NVEMEvictWrites,
		ForceWrites:     s.ForceWrites + o.ForceWrites,
		LogWrites:       s.LogWrites + o.LogWrites,
		GroupCommits:    s.GroupCommits + o.GroupCommits,
		Checkpoints:     s.Checkpoints + o.Checkpoints,
		CkptWrites:      s.CkptWrites + o.CkptWrites,
	}
}

// PartitionStats is the per-partition hit breakdown.
type PartitionStats struct {
	Fixes    int64
	MMHits   int64
	NVEMHits int64
}

// frame is a main-memory buffer frame.
type frame struct {
	dirty bool
}

// nvemFrame is an NVEM-cache frame; dirty is only possible under deferred
// destage (otherwise the disk write started when the page entered NVEM).
type nvemFrame struct {
	dirty bool
}

// Manager is the buffer manager.
type Manager struct {
	cfg   Config
	host  Host
	units []*storage.DiskUnit
	nvem  *storage.NVEM

	mm         *lru.Cache[storage.PageKey, frame]
	nvemCache  *lru.Cache[storage.PageKey, nvemFrame]
	sharedNVEM bool // the NVEM cache is the cluster-shared one, not private

	// Remote mode (NewRemote): shared-cache operations travel over the
	// interconnect instead of touching the structure. nvemCache stays nil
	// so no node-side path can reach the shared structure by accident;
	// remoteShared is only dereferenced by the ApplyShared* entry points
	// the cluster coordinator calls at barriers.
	remote       RemoteNVEMCache
	remoteShared *SharedNVEMCache

	wbInUse int

	logPartition int
	logNext      int64
	gcWaiters    []func()

	// Checkpoint / recovery bookkeeping (checkpoint.go). ckptGen fences
	// daemon incarnations: StopCheckpoints bumps it, stale ticks exit.
	logSinceCkpt int64
	ckptGen      int

	stats     Stats
	partStats []PartitionStats
}

// New builds a buffer manager. units must cover every DiskUnit index in the
// configuration; nvem may be nil when cfg.UsesNVEM() is false.
func New(cfg Config, partitionNames []string, units []*storage.DiskUnit, nvem *storage.NVEM, host Host) (*Manager, error) {
	return newManager(cfg, partitionNames, units, nvem, host, nil, nil)
}

// newManager is the shared constructor: with a non-nil shared cache the
// manager operates on the cluster-shared NVEM cache and allocates no
// private one; with a remote bus as well, it reaches that cache only
// through the bus (NewRemote).
func newManager(cfg Config, partitionNames []string, units []*storage.DiskUnit,
	nvem *storage.NVEM, host Host, shared *SharedNVEMCache, remote RemoteNVEMCache) (*Manager, error) {
	if err := cfg.Validate(partitionNames, len(units)); err != nil {
		return nil, err
	}
	if cfg.UsesNVEM() && nvem == nil {
		return nil, fmt.Errorf("buffer: configuration uses NVEM but no NVEM store given")
	}
	m := &Manager{
		cfg:          cfg,
		host:         host,
		units:        units,
		nvem:         nvem,
		mm:           lru.New[storage.PageKey, frame](cfg.BufferSize),
		logPartition: len(cfg.Partitions),
		partStats:    make([]PartitionStats, len(cfg.Partitions)),
	}
	switch {
	case remote != nil:
		if shared == nil {
			return nil, fmt.Errorf("buffer: remote NVEM bus without a shared cache")
		}
		m.remote = remote
		m.remoteShared = shared
		m.sharedNVEM = true
	case shared != nil:
		m.nvemCache = shared.cache
		m.sharedNVEM = true
	case cfg.NVEMCacheSize > 0:
		m.nvemCache = lru.New[storage.PageKey, nvemFrame](cfg.NVEMCacheSize)
	}
	if cfg.CheckpointIntervalMS > 0 {
		m.startCheckpointDaemon()
	}
	return m, nil
}

// Stats returns a copy of the global counters.
func (m *Manager) Stats() Stats { return m.stats }

// PartitionStats returns a copy of the per-partition counters.
func (m *Manager) PartitionStats() []PartitionStats {
	out := make([]PartitionStats, len(m.partStats))
	copy(out, m.partStats)
	return out
}

// MMLen returns the number of occupied main-memory frames.
func (m *Manager) MMLen() int { return m.mm.Len() }

// NVEMCacheLen returns the number of occupied NVEM cache frames (the
// cluster-shared cache's occupancy in shared or remote mode).
func (m *Manager) NVEMCacheLen() int {
	if m.remoteShared != nil {
		return m.remoteShared.cache.Len()
	}
	if m.nvemCache == nil {
		return 0
	}
	return m.nvemCache.Len()
}

// WriteBufferInUse returns the pages currently buffered in the NVEM write
// buffer awaiting their disk update.
func (m *Manager) WriteBufferInUse() int { return m.wbInUse }

// alloc returns the partition's allocation.
func (m *Manager) alloc(partition int) *PartitionAlloc { return &m.cfg.Partitions[partition] }

// unitOf returns the disk-unit backing the partition.
func (m *Manager) unitOf(partition int) *storage.DiskUnit {
	return m.units[m.alloc(partition).DiskUnit]
}

// Fix brings the page into the main-memory buffer on behalf of process p
// and marks it dirty if write is set, then runs k. It delays p for whatever
// the storage hierarchy charges: nothing on an MM hit, an NVEM transfer on
// an NVEM hit, or a device read (plus a possible synchronous victim
// write-back) on a full miss. TPSIM replaces synchronously — asynchronous
// replacement is exactly the optimization the paper shows NV memory makes
// unnecessary (footnote 3).
func (m *Manager) Fix(p *sim.Process, key storage.PageKey, write bool, k func()) {
	m.stats.Fixes++
	ps := &m.partStats[key.Partition]
	ps.Fixes++
	a := m.alloc(key.Partition)

	if a.MMResident {
		// Memory-resident partitions: 100% hit ratio, NOFORCE propagation.
		m.stats.MMHits++
		m.stats.ResidentFixes++
		ps.MMHits++
		k()
		return
	}

	if f, ok := m.mm.Get(key); ok {
		m.stats.MMHits++
		ps.MMHits++
		if write && !f.dirty {
			m.mm.Update(key, frame{dirty: true})
		}
		k()
		return
	}

	if a.NVEMCache && m.remote != nil {
		m.fixRemote(p, key, write, ps, k)
		return
	}

	// Main-memory miss. Probe the NVEM cache before replacing: under
	// NOFORCE the requested page leaves the NVEM cache as it migrates up,
	// which keeps MM+NVEM an exact aggregate LRU — the victim migrating
	// down must never evict the page being promoted.
	nvemHit := a.NVEMCache && m.nvemCache != nil && m.nvemCacheHas(key)
	nvemDirty := false
	if nvemHit && !m.cfg.Force {
		// NOFORCE: a page lives in at most one of MM and NVEM. Under
		// deferred destage a dirty NVEM copy promotes to a dirty MM frame
		// so the pending modification is not lost.
		f, _ := m.nvemCache.Remove(key)
		nvemDirty = f.dirty
	}

	// Victim selection and registration of the new page happen atomically
	// (no simulated time in between): a concurrent fixer can neither steal
	// the freed slot (which would make the later Put silently drop a dirty
	// LRU page) nor start a duplicate fetch of the same page (fetch
	// coalescing — this yields the paper's 95% HISTORY hit ratio, one miss
	// per blocking factor). The victim's write-back and the page transfer
	// are paid afterwards.
	victim, victimDirty, haveVictim := m.reserveFrame()
	m.mm.Put(key, frame{dirty: write || nvemDirty})
	fetch := func() {
		switch {
		case a.NVEMResident:
			m.stats.NVEMReads++
			m.host.NVEMTransfer(p, k)
		case nvemHit:
			m.stats.NVEMCacheHits++
			ps.NVEMHits++
			m.host.NVEMTransfer(p, func() {
				if m.cfg.Force {
					// FORCE: replication is unavoidable (section 3.2); keep
					// the NVEM copy, refresh its recency.
					m.nvemCache.Touch(key)
				}
				k()
			})
		default:
			m.stats.DeviceReads++
			m.deviceRead(p, key, k)
		}
	}
	if haveVictim {
		m.disposeVictim(p, victim, victimDirty, fetch)
		return
	}
	fetch()
}

// fixRemote serves a main-memory miss on a shared-NVEM-cache partition
// when the cache sits across the interconnect (remote mode): the probe
// travels as a cross-node message and its verdict arrives one
// NVEMAccessDelayMS later, after which the page transfer (hit) or device
// read (miss) proceeds as usual. The frame is reserved and registered
// before the probe departs — fetch coalescing works exactly as on the
// local path, so a concurrent fixer neither steals the freed slot nor
// starts a duplicate fetch.
func (m *Manager) fixRemote(p *sim.Process, key storage.PageKey, write bool, ps *PartitionStats, k func()) {
	victim, victimDirty, haveVictim := m.reserveFrame()
	m.mm.Put(key, frame{dirty: write})
	fetch := func() {
		m.remote.Probe(key, func(hit, dirty bool) {
			if dirty {
				// NOFORCE promotion of a deferred-dirty copy: the pending
				// modification rides up with the page. If the frame was
				// replaced while the probe was in flight the page went out
				// clean, so the promoted modification still has to reach
				// disk on its own.
				if _, ok := m.mm.Peek(key); ok {
					m.mm.Update(key, frame{dirty: true})
				} else {
					m.startAsyncWrite(key)
				}
			}
			if hit {
				m.stats.NVEMCacheHits++
				ps.NVEMHits++
				m.host.NVEMTransfer(p, k)
				return
			}
			m.stats.DeviceReads++
			m.deviceRead(p, key, k)
		})
	}
	if haveVictim {
		m.disposeVictim(p, victim, victimDirty, fetch)
		return
	}
	fetch()
}

// ApplySharedProbe resolves one remote Probe against the cluster-shared
// cache. The coordinator calls it at a barrier (kernels quiescent) in
// message-arrival order, which makes the examination equivalent to one at
// the arrival instant. Under FORCE a hit keeps the copy and refreshes its
// recency; under NOFORCE the copy leaves the cache as it promotes
// (single-copy management), carrying its deferred-destage dirty bit.
func (m *Manager) ApplySharedProbe(key storage.PageKey) (hit, dirty bool) {
	c := m.remoteShared.cache
	f, ok := c.Peek(key)
	if !ok {
		return false, false
	}
	if m.cfg.Force {
		c.Touch(key)
		return true, false
	}
	c.Remove(key)
	return true, f.dirty
}

// ApplySharedPut resolves one remote Put against the cluster-shared
// cache, on the sending node's manager so an evicted deferred-dirty frame
// destages through that node's (quiescent) kernel — mirroring the coupled
// mode, where whoever's insert triggers the eviction pays the destage.
func (m *Manager) ApplySharedPut(key storage.PageKey, dirty bool) {
	m.putNVEMInto(m.remoteShared.cache, key, dirty)
}

// deviceRead reads a page from its partition's disk-unit, honouring the
// partition's access mode (synchronous access keeps the CPU busy).
func (m *Manager) deviceRead(p *sim.Process, key storage.PageKey, k func()) {
	unit := m.unitOf(key.Partition)
	if m.alloc(key.Partition).SyncAccess {
		m.host.SyncDeviceIO(p, func(done func()) { unit.Read(p, key, done) }, k)
		return
	}
	m.host.IOOverhead(p, func() { unit.Read(p, key, k) })
}

// devicePartitionWrite writes a page to its partition's disk-unit,
// honouring the partition's access mode.
func (m *Manager) devicePartitionWrite(p *sim.Process, key storage.PageKey, k func()) {
	unit := m.unitOf(key.Partition)
	if m.alloc(key.Partition).SyncAccess {
		m.host.SyncDeviceIO(p, func(done func()) { unit.Write(p, key, done) }, k)
		return
	}
	m.host.IOOverhead(p, func() { unit.Write(p, key, k) })
}

// nvemCacheHas probes the NVEM cache without touching recency (recency is
// handled by the caller depending on the update strategy).
func (m *Manager) nvemCacheHas(key storage.PageKey) bool {
	_, ok := m.nvemCache.Peek(key)
	return ok
}

// reserveFrame removes a victim frame when the buffer is full, returning
// its identity for later disposal. Under FORCE the oldest clean frame is
// preferred (there almost always is one — footnote 7); under NOFORCE strict
// LRU is used.
func (m *Manager) reserveFrame() (victim storage.PageKey, dirty, haveVictim bool) {
	if m.mm.Len() < m.mm.Cap() {
		return storage.PageKey{}, false, false
	}
	var ok bool
	if m.cfg.Force {
		victim, ok = m.mm.FindOldest(func(_ storage.PageKey, f frame) bool { return !f.dirty })
	}
	if !ok {
		victim, ok = m.mm.Oldest()
	}
	if !ok {
		return storage.PageKey{}, false, false // capacity > 0; defensive
	}
	f, _ := m.mm.Peek(victim)
	m.mm.Remove(victim)
	return victim, f.dirty, true
}

// disposeVictim routes a replaced page according to its partition's
// allocation: into the NVEM cache (with asynchronous disk update for dirty
// pages), through the NVEM write buffer, or synchronously to the device.
// k runs once the victim stops delaying p.
func (m *Manager) disposeVictim(p *sim.Process, key storage.PageKey, dirty bool, k func()) {
	a := m.alloc(key.Partition)

	if a.NVEMCache && (m.nvemCache != nil || m.remote != nil) {
		migrate := a.NVEMCacheMode == MigrateAll ||
			(dirty && a.NVEMCacheMode == MigrateModified) ||
			(!dirty && a.NVEMCacheMode == MigrateUnmodified)
		if migrate {
			m.migrateToNVEM(p, key, dirty, k)
			return
		}
	}

	if !dirty {
		if a.NVEMResident {
			// Nothing to do: the permanent copy is in NVEM already.
			k()
			return
		}
		m.stats.CleanDrops++
		k()
		return
	}

	switch {
	case a.NVEMResident:
		// Write the page back to its NVEM home (synchronous, fast).
		m.host.NVEMTransfer(p, k)
	case a.NVEMWriteBuffer:
		m.writeViaWB(p, key, k)
	case m.cfg.AsyncReplacement:
		// Footnote 3's software optimization: the replacement write happens
		// in the background; only the read delays the transaction.
		m.stats.VictimAsync++
		unit := m.unitOf(key.Partition)
		m.host.SpawnAsync("async-replace", func(ap *sim.Process) {
			m.stats.AsyncDiskWrites++
			m.host.IOOverhead(ap, func() { unit.Write(ap, key, nop) })
		})
		k()
	default:
		// Device write before the read can proceed (the transaction waits
		// for it either way; SyncAccess additionally holds the CPU).
		m.stats.VictimWrites++
		m.devicePartitionWrite(p, key, k)
	}
}

// migrateToNVEM inserts a page replaced from main memory into the NVEM
// second-level cache. With immediate propagation (the paper's simple
// scheme, section 3.2) the disk write of a modified page starts right away
// and asynchronously, so NVEM frames are always replaceable without delay —
// eviction is a drop. Under deferred destage the page stays dirty in NVEM
// and the disk write happens only when NVEM evicts it (paying an extra
// NVEM→MM transfer then), saving disk writes for re-modified pages.
func (m *Manager) migrateToNVEM(p *sim.Process, key storage.PageKey, dirty bool, k func()) {
	m.stats.VictimToNVEM++
	m.host.NVEMTransfer(p, func() {
		m.insertNVEM(key, dirty)
		if dirty && !m.cfg.NVEMDeferredDestage {
			m.startAsyncWrite(key)
		}
		k()
	})
}

// insertNVEM routes an NVEM-cache insert: over the interconnect in remote
// mode, directly into the (private or shared) cache structure otherwise.
func (m *Manager) insertNVEM(key storage.PageKey, dirty bool) {
	if m.remote != nil {
		m.remote.Put(key, dirty)
		return
	}
	m.putNVEM(key, dirty)
}

// putNVEM inserts into the NVEM cache, destaging an evicted deferred-dirty
// page in the background.
func (m *Manager) putNVEM(key storage.PageKey, dirty bool) {
	m.putNVEMInto(m.nvemCache, key, dirty)
}

// putNVEMInto is the insert body, shared between the node-local cache and
// the coordinator-applied shared cache (ApplySharedPut).
func (m *Manager) putNVEMInto(c *lru.Cache[storage.PageKey, nvemFrame], key storage.PageKey, dirty bool) {
	if !m.cfg.NVEMDeferredDestage {
		dirty = false // disk copy is (being made) current
	}
	evictedKey, evictedFrame, evicted := c.Put(key, nvemFrame{dirty: dirty})
	if !evicted || !evictedFrame.dirty {
		return
	}
	m.destageFromNVEM(evictedKey)
}

// destageFromNVEM starts the deferred destage of a dirty NVEM frame that
// is leaving the cache: the page must pass through main memory on its way
// to disk (section 2: NVEM↔disk transfers go through the accessing
// system), then the asynchronous disk write.
func (m *Manager) destageFromNVEM(key storage.PageKey) {
	m.stats.NVEMEvictWrites++
	unit := m.deviceUnitFor(key)
	m.host.SpawnAsync("nvem-evict-destage", func(ap *sim.Process) {
		m.host.NVEMTransfer(ap, func() {
			m.stats.AsyncDiskWrites++
			m.host.IOOverhead(ap, func() { unit.Write(ap, key, nop) })
		})
	})
}

// writeViaWB absorbs a page write in the NVEM write buffer: the caller
// continues after the NVEM transfer while the disk copy is updated
// asynchronously. When every write-buffer frame is still awaiting its disk
// update, the write falls back to a synchronous device write (the same
// saturation behaviour as a full non-volatile disk cache).
func (m *Manager) writeViaWB(p *sim.Process, key storage.PageKey, k func()) {
	if m.wbInUse >= m.cfg.NVEMWriteBufferSize {
		m.stats.WBFullSync++
		m.stats.VictimWrites++
		m.host.IOOverhead(p, func() { m.deviceWriteFor(p, key, k) })
		return
	}
	m.wbInUse++
	m.stats.VictimToWB++
	m.host.NVEMTransfer(p, func() {
		unit := m.deviceUnitFor(key)
		m.host.SpawnAsync("wb-destage", func(ap *sim.Process) {
			m.stats.AsyncDiskWrites++
			m.host.IOOverhead(ap, func() {
				unit.Write(ap, key, func() { m.wbInUse-- })
			})
		})
		k()
	})
}

// deviceUnitFor resolves the disk-unit for a page, treating the log
// partition specially.
func (m *Manager) deviceUnitFor(key storage.PageKey) *storage.DiskUnit {
	if key.Partition == m.logPartition {
		return m.units[m.cfg.Log.DiskUnit]
	}
	return m.unitOf(key.Partition)
}

func (m *Manager) deviceWriteFor(p *sim.Process, key storage.PageKey, k func()) {
	m.deviceUnitFor(key).Write(p, key, k)
}

// startAsyncWrite begins the immediate asynchronous disk update for a
// modified page that entered the NVEM cache.
func (m *Manager) startAsyncWrite(key storage.PageKey) {
	unit := m.deviceUnitFor(key)
	m.host.SpawnAsync("nvem-destage", func(ap *sim.Process) {
		m.stats.AsyncDiskWrites++
		m.host.IOOverhead(ap, func() { unit.Write(ap, key, nop) })
	})
}

// ForcePages implements commit phase 1 under FORCE: every page the
// transaction modified is written to non-volatile storage, and its
// main-memory copy becomes clean but stays buffered (replication with the
// NVEM cache is accepted, section 3.2). Pages already replaced from the
// buffer were written out at replacement and are skipped. k runs once every
// force write has completed.
func (m *Manager) ForcePages(p *sim.Process, keys []storage.PageKey, k func()) {
	if !m.cfg.Force {
		k()
		return
	}
	i := 0
	var step func()
	step = func() {
		for i < len(keys) {
			key := keys[i]
			i++
			a := m.alloc(key.Partition)
			if a.MMResident {
				continue // memory-resident partitions use NOFORCE propagation
			}
			f, inMM := m.mm.Peek(key)
			if inMM && !f.dirty {
				continue // already forced by an earlier access of this txn
			}
			if !inMM {
				continue // replaced earlier; written out during replacement
			}
			m.stats.ForceWrites++
			after := func() {
				m.mm.Update(key, frame{dirty: false})
				step()
			}
			switch {
			case a.NVEMResident:
				m.host.NVEMTransfer(p, after)
			case a.NVEMCache && (m.nvemCache != nil || m.remote != nil):
				// Force into the NVEM cache; MM copy stays (replication).
				// Deferred destage pays off exactly here: re-forced pages
				// overwrite their dirty NVEM copy without another disk write.
				m.host.NVEMTransfer(p, func() {
					m.insertNVEM(key, true)
					if !m.cfg.NVEMDeferredDestage {
						m.startAsyncWrite(key)
					}
					after()
				})
			case a.NVEMWriteBuffer:
				m.writeViaWB(p, key, after)
			default:
				m.devicePartitionWrite(p, key, after)
			}
			return
		}
		k()
	}
	step()
}

// WriteLog implements the commit log write: one page per update transaction
// (section 3.2), appended sequentially and routed by the log allocation,
// with k running once the write is durable. Under group commit the caller
// joins the open group and k waits for the group's single shared log write.
func (m *Manager) WriteLog(p *sim.Process, k func()) {
	if !m.cfg.Logging {
		k()
		return
	}
	if !m.cfg.GroupCommit {
		m.writeLogPage(p, k)
		return
	}
	m.gcWaiters = append(m.gcWaiters, k)
	if len(m.gcWaiters) == 1 {
		// Group leader: open the group and flush it after the group window.
		m.host.SpawnAsync("group-commit", func(ap *sim.Process) {
			ap.Hold(m.cfg.GroupCommitWaitMS, func() {
				waiters := m.gcWaiters
				m.gcWaiters = nil
				m.stats.GroupCommits++
				// One I/O carries the whole group's log data.
				m.writeLogPage(ap, func() {
					for _, w := range waiters {
						ap.Sim().Schedule(0, w)
					}
				})
			})
		})
	}
}

// writeLogPage performs one physical log page write, then k.
func (m *Manager) writeLogPage(p *sim.Process, k func()) {
	m.stats.LogWrites++
	m.logSinceCkpt++
	key := storage.PageKey{Partition: m.logPartition, Page: m.logNext}
	m.logNext++
	switch {
	case m.cfg.Log.NVEMResident:
		m.host.NVEMTransfer(p, k)
	case m.cfg.Log.NVEMWriteBuffer:
		m.writeViaWB(p, key, k)
	default:
		m.host.IOOverhead(p, func() {
			m.units[m.cfg.Log.DiskUnit].Write(p, key, k)
		})
	}
}

// HitRatioMM returns the overall main-memory hit ratio.
func (m *Manager) HitRatioMM() float64 {
	if m.stats.Fixes == 0 {
		return 0
	}
	return float64(m.stats.MMHits) / float64(m.stats.Fixes)
}

// HitRatioNVEM returns NVEM-cache hits as a fraction of all fixes (the
// "additional hit ratio" of Tables 4.2a/b).
func (m *Manager) HitRatioNVEM() float64 {
	if m.stats.Fixes == 0 {
		return 0
	}
	return float64(m.stats.NVEMCacheHits) / float64(m.stats.Fixes)
}
