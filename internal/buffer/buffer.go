// Package buffer implements TPSIM's buffer manager (BM, section 3.2): the
// global-LRU main-memory database buffer, the NVEM second-level database
// cache with its migration modes and NOFORCE single-copy management, the
// NVEM write buffer, logging, and the FORCE/NOFORCE update strategies.
package buffer

import (
	"fmt"

	"repro/internal/lru"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Host is the buffer manager's view of the computing module. The engine
// implements it: CPU overhead per I/O (InstrIO), the CPU-synchronous NVEM
// page transfer (InstrNVEM + NVEM delay with the CPU held), and spawning of
// asynchronous writer processes. All delay-charging methods are
// continuation-style: they run k once the charged simulated time has
// elapsed.
type Host interface {
	// IOOverhead charges the CPU overhead of one I/O to process p, then
	// runs k.
	IOOverhead(p *sim.Process, k func())
	// SyncDeviceIO charges the I/O overhead and runs the device access dev
	// with the CPU held (AccessMode=synchronous, Table 3.3); dev must call
	// its argument when the device completes, after which the CPU is
	// released and k runs.
	SyncDeviceIO(p *sim.Process, dev func(done func()), k func())
	// NVEMTransfer performs one page transfer between main memory and NVEM
	// with the CPU held (synchronous access, section 2), then runs k.
	NVEMTransfer(p *sim.Process, k func())
	// SpawnAsync starts a background process (asynchronous disk updates).
	SpawnAsync(name string, fn func(p *sim.Process))
	// Sim returns the simulation the module runs in. The manager schedules
	// its pooled asynchronous operations on it directly — a fresh spawned
	// process per background write would defeat the pooling.
	Sim() *sim.Sim
}

// nop is the terminal continuation of asynchronous writer processes.
func nop() {}

// RemoteNVEMCache routes shared-NVEM-cache operations over a cluster
// interconnect instead of touching the cache structure directly. The
// parallel engine implements it with lookahead messages: a Probe's verdict
// arrives NVEMAccessDelayMS later on the requesting node, and a Put is a
// one-way insert applied at the same latency. A manager built with
// NewRemote never touches the shared cache from its own kernel — the
// cluster coordinator applies the operations through ApplySharedProbe and
// ApplySharedPut while every kernel is quiescent.
type RemoteNVEMCache interface {
	// Probe looks key up in the shared cache; k runs on the requesting
	// node once the verdict arrives. Under NOFORCE a hit removes the
	// cached copy (single-copy promotion) and reports whether it carried
	// a deferred-destage modification; under FORCE the copy stays and its
	// recency is refreshed.
	Probe(key storage.PageKey, k func(hit, dirty bool))
	// Put inserts key into the shared cache (one-way).
	Put(key storage.PageKey, dirty bool)
}

// Stats are the buffer manager's counters.
type Stats struct {
	Fixes         int64 // page requests
	MMHits        int64 // satisfied in the main-memory buffer
	ResidentFixes int64 // fixes to MM-resident partitions (always hits)
	NVEMCacheHits int64 // MM misses satisfied in the NVEM cache
	NVEMReads     int64 // MM misses to NVEM-resident partitions
	DeviceReads   int64 // MM misses served by a disk-unit

	VictimWrites    int64 // dirty victims written synchronously to a device
	VictimAsync     int64 // dirty victims written by asynchronous replacement
	VictimToWB      int64 // dirty victims absorbed by the NVEM write buffer
	VictimToNVEM    int64 // victims migrated into the NVEM cache
	CleanDrops      int64 // clean victims dropped without migration
	WBFullSync      int64 // write-buffer-full fallbacks to synchronous writes
	AsyncDiskWrites int64 // asynchronous disk updates started
	NVEMEvictWrites int64 // deferred destages triggered by NVEM eviction

	ForceWrites  int64 // pages forced at commit (FORCE)
	LogWrites    int64 // physical log page writes
	GroupCommits int64 // log groups flushed (group commit)

	Checkpoints int64 // fuzzy checkpoints completed by the daemon
	CkptWrites  int64 // dirty pages flushed by checkpoints
}

// Sub returns s-o field-wise; the engine reports measurement-window
// deltas with it. Keep Sub and Add in sync when adding counters.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Fixes:           s.Fixes - o.Fixes,
		MMHits:          s.MMHits - o.MMHits,
		ResidentFixes:   s.ResidentFixes - o.ResidentFixes,
		NVEMCacheHits:   s.NVEMCacheHits - o.NVEMCacheHits,
		NVEMReads:       s.NVEMReads - o.NVEMReads,
		DeviceReads:     s.DeviceReads - o.DeviceReads,
		VictimWrites:    s.VictimWrites - o.VictimWrites,
		VictimAsync:     s.VictimAsync - o.VictimAsync,
		VictimToWB:      s.VictimToWB - o.VictimToWB,
		VictimToNVEM:    s.VictimToNVEM - o.VictimToNVEM,
		CleanDrops:      s.CleanDrops - o.CleanDrops,
		WBFullSync:      s.WBFullSync - o.WBFullSync,
		AsyncDiskWrites: s.AsyncDiskWrites - o.AsyncDiskWrites,
		NVEMEvictWrites: s.NVEMEvictWrites - o.NVEMEvictWrites,
		ForceWrites:     s.ForceWrites - o.ForceWrites,
		LogWrites:       s.LogWrites - o.LogWrites,
		GroupCommits:    s.GroupCommits - o.GroupCommits,
		Checkpoints:     s.Checkpoints - o.Checkpoints,
		CkptWrites:      s.CkptWrites - o.CkptWrites,
	}
}

// Add returns s+o field-wise; cluster aggregation sums per-node stats
// with it.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Fixes:           s.Fixes + o.Fixes,
		MMHits:          s.MMHits + o.MMHits,
		ResidentFixes:   s.ResidentFixes + o.ResidentFixes,
		NVEMCacheHits:   s.NVEMCacheHits + o.NVEMCacheHits,
		NVEMReads:       s.NVEMReads + o.NVEMReads,
		DeviceReads:     s.DeviceReads + o.DeviceReads,
		VictimWrites:    s.VictimWrites + o.VictimWrites,
		VictimAsync:     s.VictimAsync + o.VictimAsync,
		VictimToWB:      s.VictimToWB + o.VictimToWB,
		VictimToNVEM:    s.VictimToNVEM + o.VictimToNVEM,
		CleanDrops:      s.CleanDrops + o.CleanDrops,
		WBFullSync:      s.WBFullSync + o.WBFullSync,
		AsyncDiskWrites: s.AsyncDiskWrites + o.AsyncDiskWrites,
		NVEMEvictWrites: s.NVEMEvictWrites + o.NVEMEvictWrites,
		ForceWrites:     s.ForceWrites + o.ForceWrites,
		LogWrites:       s.LogWrites + o.LogWrites,
		GroupCommits:    s.GroupCommits + o.GroupCommits,
		Checkpoints:     s.Checkpoints + o.Checkpoints,
		CkptWrites:      s.CkptWrites + o.CkptWrites,
	}
}

// PartitionStats is the per-partition hit breakdown.
type PartitionStats struct {
	Fixes    int64
	MMHits   int64
	NVEMHits int64
}

// frame is a main-memory buffer frame.
type frame struct {
	dirty bool
}

// nvemFrame is an NVEM-cache frame; dirty is only possible under deferred
// destage (otherwise the disk write started when the page entered NVEM).
type nvemFrame struct {
	dirty bool
}

// Manager is the buffer manager.
type Manager struct {
	cfg   Config
	host  Host
	units []*storage.DiskUnit
	nvem  *storage.NVEM

	mm         *lru.Cache[storage.PageKey, frame]
	nvemCache  *lru.Cache[storage.PageKey, nvemFrame]
	sharedNVEM bool // the NVEM cache is the cluster-shared one, not private

	// Remote mode (NewRemote): shared-cache operations travel over the
	// interconnect instead of touching the structure. nvemCache stays nil
	// so no node-side path can reach the shared structure by accident;
	// remoteShared is only dereferenced by the ApplyShared* entry points
	// the cluster coordinator calls at barriers.
	remote       RemoteNVEMCache
	remoteShared *SharedNVEMCache

	wbInUse int

	logPartition int
	logNext      int64
	gcWaiters    []func()

	// Checkpoint / recovery bookkeeping (checkpoint.go). ckptGen fences
	// daemon incarnations: StopCheckpoints bumps it, stale ticks exit.
	logSinceCkpt int64
	ckptGen      int

	stats     Stats
	partStats []PartitionStats

	// Zero-allocation machinery for the steady-state paths: the kernel the
	// manager schedules on, the pooled operation records replacing per-call
	// continuation closures, recycled group-commit waiter buffers, the
	// checkpoint dirty-key scratch, and the shared countdown of the
	// checkpoint flush in flight. The manager belongs to one kernel, so
	// none of it needs synchronization.
	sim      *sim.Sim
	freeOps  *bufOp
	gcFree   [][]func()
	ckptKeys []storage.PageKey
	// ckptRemaining/ckptFinish track the one (non-overlapping) checkpoint
	// flush in flight; stale flush ops are fenced by their gen snapshot.
	ckptRemaining int
	ckptFinish    func()
}

// poolPoison, when true, fills freed bufOps with sentinel garbage so a
// missing reset in an issue path surfaces in the pool-contract tests.
var poolPoison = false

// SetPoolPoison toggles freelist poisoning — a debug hook for the
// pool-contract tests (including cross-package ones); never enable it in
// production runs.
func SetPoolPoison(on bool) { poolPoison = on }

// bufOp stages. Each value names the action taken when step next fires;
// issue sites set the state (and any successor via the documented flow)
// before handing step to a host, device or kernel continuation slot.
const (
	fxFetch      uint8 = iota // victim disposed: fetch the missed page
	fxMigrated                // victim's NVEM transfer done: insert, then fetch
	fxNVEMTouch               // NVEM-hit transfer done: FORCE recency, then done
	fxReadIO                  // I/O overhead charged: issue the device read
	fxVictimIO                // I/O overhead charged: issue the victim write
	fxDone                    // fix complete: run the caller's continuation
	fcLoop                    // force next eligible page of the commit set
	fcNVEM                    // force transfer done: insert into the NVEM cache
	fcWriteIO                 // I/O overhead charged: issue the force write
	fcAfter                   // one force write durable: clean the frame, loop
	wbFull                    // write-buffer full: issue the synchronous write
	wbStored                  // page absorbed in the write buffer: start destage
	lgIO                      // I/O overhead charged: issue the log page write
	axEvict                   // NVEM-evict destage: page passes through MM first
	axWriteStart              // async disk update: charge the I/O overhead
	axWrite                   // overhead charged: issue the async device write
	axDone                    // async write durable: release WB frame if any
	ckFlush                   // checkpoint flush of one page: route by allocation
	ckWriteIO                 // overhead charged: issue the checkpoint write
	ckDone                    // one checkpoint page durable: count down
	gcOpen                    // group opened: wait out the group-commit window
	gcFlush                   // window over: write the group's single log page
	gcDone                    // group log write durable: wake every waiter
)

// bufOp is one in-flight buffer-manager operation — a fix miss, an
// asynchronous write, a force/checkpoint/log write or a commit group —
// pooled on the manager's freelist. step is bound once at allocation and
// the state field selects the next stage, replacing the per-call closure
// chains: event order, RNG-draw order and statistics order are identical
// to the closure formulation. proc is the op's own process identity for
// background work (created lazily, reused for the op's whole pooled
// lifetime); p is the foreground caller's process.
type bufOp struct {
	m           *Manager
	p           *sim.Process
	proc        *sim.Process
	key         storage.PageKey
	victim      storage.PageKey
	k           func()
	ps          *PartitionStats
	keys        []storage.PageKey // ForcePages commit set (caller-owned)
	waiters     []func()          // group-commit waiters being flushed
	i           int               // ForcePages cursor
	gen         int               // checkpoint generation fence
	nvemHit     bool
	victimDirty bool
	wb          bool // async write must release a write-buffer frame
	state       uint8
	step        func()
	next        *bufOp // freelist link
}

// getOp pops a recycled op or allocates one with its step bound.
func (m *Manager) getOp() *bufOp {
	op := m.freeOps
	if op == nil {
		op = &bufOp{m: m}
		op.step = op.run
		return op
	}
	m.freeOps = op.next
	op.next = nil
	return op
}

// getAsyncOp is getOp plus the op's own background process identity.
func (m *Manager) getAsyncOp() *bufOp {
	op := m.getOp()
	if op.proc == nil {
		op.proc = m.sim.NewProcess("bm-async")
	}
	return op
}

// putOp returns a finished op to the freelist, dropping its references.
// proc intentionally survives: it is the op's identity, not request state.
func (m *Manager) putOp(op *bufOp) {
	op.p, op.k, op.ps, op.keys, op.waiters = nil, nil, nil, nil, nil
	if poolPoison {
		op.key = storage.PageKey{Partition: -1, Page: -1}
		op.victim = storage.PageKey{Partition: -1, Page: -1}
		op.i, op.gen = -1, -1
		op.nvemHit, op.victimDirty, op.wb = true, true, true
		op.state = 0xff
	}
	op.next = m.freeOps
	m.freeOps = op
}

// run advances the operation by one stage. It is the single continuation
// handed out for every pooled path; sync stages tail-call it directly.
func (op *bufOp) run() {
	m := op.m
	switch op.state {
	case fxFetch:
		a := m.alloc(op.key.Partition)
		switch {
		case a.NVEMResident:
			m.stats.NVEMReads++
			op.state = fxDone
			m.host.NVEMTransfer(op.p, op.step)
		case op.nvemHit:
			m.stats.NVEMCacheHits++
			op.ps.NVEMHits++
			op.state = fxNVEMTouch
			m.host.NVEMTransfer(op.p, op.step)
		default:
			m.stats.DeviceReads++
			if a.SyncAccess {
				op.state = fxDone
				m.deviceRead(op.p, op.key, op.step)
			} else {
				op.state = fxReadIO
				m.host.IOOverhead(op.p, op.step)
			}
		}
	case fxMigrated:
		m.insertNVEM(op.victim, op.victimDirty)
		if op.victimDirty && !m.cfg.NVEMDeferredDestage {
			m.startAsyncWrite(op.victim)
		}
		op.state = fxFetch
		op.run()
	case fxNVEMTouch:
		if m.cfg.Force {
			// FORCE: replication is unavoidable (section 3.2); keep the
			// NVEM copy, refresh its recency.
			m.nvemCache.Touch(op.key)
		}
		op.state = fxDone
		op.run()
	case fxReadIO:
		op.state = fxDone
		m.unitOf(op.key.Partition).Read(op.p, op.key, op.step)
	case fxVictimIO:
		op.state = fxFetch
		m.unitOf(op.victim.Partition).Write(op.p, op.victim, op.step)
	case fxDone:
		k := op.k
		m.putOp(op)
		k()

	case fcLoop:
		for op.i < len(op.keys) {
			key := op.keys[op.i]
			op.i++
			a := m.alloc(key.Partition)
			if a.MMResident {
				continue // memory-resident partitions use NOFORCE propagation
			}
			f, inMM := m.mm.Peek(key)
			if inMM && !f.dirty {
				continue // already forced by an earlier access of this txn
			}
			if !inMM {
				continue // replaced earlier; written out during replacement
			}
			m.stats.ForceWrites++
			op.key = key
			switch {
			case a.NVEMResident:
				op.state = fcAfter
				m.host.NVEMTransfer(op.p, op.step)
			case a.NVEMCache && (m.nvemCache != nil || m.remote != nil):
				// Force into the NVEM cache; MM copy stays (replication).
				// Deferred destage pays off exactly here: re-forced pages
				// overwrite their dirty NVEM copy without another disk write.
				op.state = fcNVEM
				m.host.NVEMTransfer(op.p, op.step)
			case a.NVEMWriteBuffer:
				op.state = fcAfter
				m.writeViaWB(op.p, key, op.step)
			default:
				if a.SyncAccess {
					op.state = fcAfter
					m.devicePartitionWrite(op.p, key, op.step)
				} else {
					op.state = fcWriteIO
					m.host.IOOverhead(op.p, op.step)
				}
			}
			return
		}
		k := op.k
		m.putOp(op)
		k()
	case fcNVEM:
		m.insertNVEM(op.key, true)
		if !m.cfg.NVEMDeferredDestage {
			m.startAsyncWrite(op.key)
		}
		op.state = fcAfter
		op.run()
	case fcWriteIO:
		op.state = fcAfter
		m.unitOf(op.key.Partition).Write(op.p, op.key, op.step)
	case fcAfter:
		m.mm.Update(op.key, frame{dirty: false})
		op.state = fcLoop
		op.run()

	case wbFull:
		p, key, k := op.p, op.key, op.k
		m.putOp(op)
		m.deviceWriteFor(p, key, k)
	case wbStored:
		key, k := op.key, op.k
		m.putOp(op)
		m.asyncWrite(key, true)
		k()

	case lgIO:
		p, key, k := op.p, op.key, op.k
		m.putOp(op)
		m.units[m.cfg.Log.DiskUnit].Write(p, key, k)

	case axEvict:
		op.state = axWriteStart
		m.host.NVEMTransfer(op.proc, op.step)
	case axWriteStart:
		m.stats.AsyncDiskWrites++
		op.state = axWrite
		m.host.IOOverhead(op.proc, op.step)
	case axWrite:
		op.state = axDone
		m.deviceUnitFor(op.key).Write(op.proc, op.key, op.step)
	case axDone:
		if op.wb {
			m.wbInUse--
		}
		m.putOp(op)

	case ckFlush:
		a := m.alloc(op.key.Partition)
		switch {
		case a.MMResident:
			op.state = ckDone
			op.run()
		case a.NVEMResident:
			op.state = ckDone
			m.host.NVEMTransfer(op.proc, op.step)
		case a.NVEMWriteBuffer:
			op.state = ckDone
			m.writeViaWB(op.proc, op.key, op.step)
		default:
			if a.SyncAccess {
				op.state = ckDone
				m.devicePartitionWrite(op.proc, op.key, op.step)
			} else {
				op.state = ckWriteIO
				m.host.IOOverhead(op.proc, op.step)
			}
		}
	case ckWriteIO:
		op.state = ckDone
		m.unitOf(op.key.Partition).Write(op.proc, op.key, op.step)
	case ckDone:
		gen := op.gen
		m.putOp(op)
		if m.ckptGen != gen {
			return // checkpointing was stopped while this flush was in flight
		}
		m.ckptRemaining--
		if m.ckptRemaining == 0 {
			m.ckptFinish()
		}

	case gcOpen:
		op.state = gcFlush
		op.proc.Hold(m.cfg.GroupCommitWaitMS, op.step)
	case gcFlush:
		op.waiters = m.gcWaiters
		m.gcWaiters = nil
		m.stats.GroupCommits++
		// One I/O carries the whole group's log data.
		op.state = gcDone
		m.writeLogPage(op.proc, op.step)
	case gcDone:
		ws := op.waiters
		op.waiters = nil
		for i, w := range ws {
			m.sim.Schedule(0, w)
			ws[i] = nil
		}
		if cap(ws) > 0 {
			m.gcFree = append(m.gcFree, ws[:0])
		}
		m.putOp(op)

	default:
		panic(fmt.Sprintf("buffer: bufOp in invalid state %d", op.state))
	}
}

// asyncWrite starts a pooled background disk update of key: one +0 event
// (matching the process spawn it replaces), the per-I/O CPU overhead, then
// the device write. wb marks a write-buffer destage, whose completion
// releases the buffered frame.
func (m *Manager) asyncWrite(key storage.PageKey, wb bool) {
	op := m.getAsyncOp()
	op.key, op.wb = key, wb
	op.state = axWriteStart
	m.sim.Schedule(0, op.step)
}

// New builds a buffer manager. units must cover every DiskUnit index in the
// configuration; nvem may be nil when cfg.UsesNVEM() is false.
func New(cfg Config, partitionNames []string, units []*storage.DiskUnit, nvem *storage.NVEM, host Host) (*Manager, error) {
	return newManager(cfg, partitionNames, units, nvem, host, nil, nil)
}

// newManager is the shared constructor: with a non-nil shared cache the
// manager operates on the cluster-shared NVEM cache and allocates no
// private one; with a remote bus as well, it reaches that cache only
// through the bus (NewRemote).
func newManager(cfg Config, partitionNames []string, units []*storage.DiskUnit,
	nvem *storage.NVEM, host Host, shared *SharedNVEMCache, remote RemoteNVEMCache) (*Manager, error) {
	if err := cfg.Validate(partitionNames, len(units)); err != nil {
		return nil, err
	}
	if cfg.UsesNVEM() && nvem == nil {
		return nil, fmt.Errorf("buffer: configuration uses NVEM but no NVEM store given")
	}
	m := &Manager{
		cfg:          cfg,
		host:         host,
		units:        units,
		nvem:         nvem,
		mm:           lru.New[storage.PageKey, frame](cfg.BufferSize),
		logPartition: len(cfg.Partitions),
		partStats:    make([]PartitionStats, len(cfg.Partitions)),
		sim:          host.Sim(),
	}
	switch {
	case remote != nil:
		if shared == nil {
			return nil, fmt.Errorf("buffer: remote NVEM bus without a shared cache")
		}
		m.remote = remote
		m.remoteShared = shared
		m.sharedNVEM = true
	case shared != nil:
		m.nvemCache = shared.cache
		m.sharedNVEM = true
	case cfg.NVEMCacheSize > 0:
		m.nvemCache = lru.New[storage.PageKey, nvemFrame](cfg.NVEMCacheSize)
	}
	if cfg.CheckpointIntervalMS > 0 {
		m.startCheckpointDaemon()
	}
	return m, nil
}

// Stats returns a copy of the global counters.
func (m *Manager) Stats() Stats { return m.stats }

// PartitionStats returns a copy of the per-partition counters.
func (m *Manager) PartitionStats() []PartitionStats {
	out := make([]PartitionStats, len(m.partStats))
	copy(out, m.partStats)
	return out
}

// MMLen returns the number of occupied main-memory frames.
func (m *Manager) MMLen() int { return m.mm.Len() }

// NVEMCacheLen returns the number of occupied NVEM cache frames (the
// cluster-shared cache's occupancy in shared or remote mode).
func (m *Manager) NVEMCacheLen() int {
	if m.remoteShared != nil {
		return m.remoteShared.cache.Len()
	}
	if m.nvemCache == nil {
		return 0
	}
	return m.nvemCache.Len()
}

// WriteBufferInUse returns the pages currently buffered in the NVEM write
// buffer awaiting their disk update.
func (m *Manager) WriteBufferInUse() int { return m.wbInUse }

// alloc returns the partition's allocation.
func (m *Manager) alloc(partition int) *PartitionAlloc { return &m.cfg.Partitions[partition] }

// unitOf returns the disk-unit backing the partition.
func (m *Manager) unitOf(partition int) *storage.DiskUnit {
	return m.units[m.alloc(partition).DiskUnit]
}

// Fix brings the page into the main-memory buffer on behalf of process p
// and marks it dirty if write is set, then runs k. It delays p for whatever
// the storage hierarchy charges: nothing on an MM hit, an NVEM transfer on
// an NVEM hit, or a device read (plus a possible synchronous victim
// write-back) on a full miss. TPSIM replaces synchronously — asynchronous
// replacement is exactly the optimization the paper shows NV memory makes
// unnecessary (footnote 3).
func (m *Manager) Fix(p *sim.Process, key storage.PageKey, write bool, k func()) {
	m.stats.Fixes++
	ps := &m.partStats[key.Partition]
	ps.Fixes++
	a := m.alloc(key.Partition)

	if a.MMResident {
		// Memory-resident partitions: 100% hit ratio, NOFORCE propagation.
		m.stats.MMHits++
		m.stats.ResidentFixes++
		ps.MMHits++
		k()
		return
	}

	if f, ok := m.mm.Get(key); ok {
		m.stats.MMHits++
		ps.MMHits++
		if write && !f.dirty {
			m.mm.Update(key, frame{dirty: true})
		}
		k()
		return
	}

	if a.NVEMCache && m.remote != nil {
		m.fixRemote(p, key, write, ps, k)
		return
	}

	// Main-memory miss. Probe the NVEM cache before replacing: under
	// NOFORCE the requested page leaves the NVEM cache as it migrates up,
	// which keeps MM+NVEM an exact aggregate LRU — the victim migrating
	// down must never evict the page being promoted.
	nvemHit := a.NVEMCache && m.nvemCache != nil && m.nvemCacheHas(key)
	nvemDirty := false
	if nvemHit && !m.cfg.Force {
		// NOFORCE: a page lives in at most one of MM and NVEM. Under
		// deferred destage a dirty NVEM copy promotes to a dirty MM frame
		// so the pending modification is not lost.
		f, _ := m.nvemCache.Remove(key)
		nvemDirty = f.dirty
	}

	// Victim selection and registration of the new page happen atomically
	// (no simulated time in between): a concurrent fixer can neither steal
	// the freed slot (which would make the later Put silently drop a dirty
	// LRU page) nor start a duplicate fetch of the same page (fetch
	// coalescing — this yields the paper's 95% HISTORY hit ratio, one miss
	// per blocking factor). The victim's write-back and the page transfer
	// are paid afterwards.
	victim, victimDirty, haveVictim := m.reserveFrame()
	m.mm.Put(key, frame{dirty: write || nvemDirty})
	op := m.getOp()
	op.p, op.key, op.k, op.ps = p, key, k, ps
	op.nvemHit = nvemHit
	op.state = fxFetch
	if haveVictim {
		op.victim, op.victimDirty = victim, victimDirty
		m.disposeVictimOp(op)
		return
	}
	op.run()
}

// disposeVictimOp routes op.victim according to its partition's allocation
// (the pooled formulation of disposeVictim); op continues at op.state —
// fxFetch — once the victim stops delaying the fixer.
func (m *Manager) disposeVictimOp(op *bufOp) {
	key, dirty := op.victim, op.victimDirty
	a := m.alloc(key.Partition)

	if a.NVEMCache && (m.nvemCache != nil || m.remote != nil) {
		migrate := a.NVEMCacheMode == MigrateAll ||
			(dirty && a.NVEMCacheMode == MigrateModified) ||
			(!dirty && a.NVEMCacheMode == MigrateUnmodified)
		if migrate {
			m.stats.VictimToNVEM++
			op.state = fxMigrated
			m.host.NVEMTransfer(op.p, op.step)
			return
		}
	}

	if !dirty {
		if !a.NVEMResident {
			m.stats.CleanDrops++
		}
		op.run()
		return
	}

	switch {
	case a.NVEMResident:
		// Write the page back to its NVEM home (synchronous, fast).
		m.host.NVEMTransfer(op.p, op.step)
	case a.NVEMWriteBuffer:
		m.writeViaWB(op.p, key, op.step)
	case m.cfg.AsyncReplacement:
		// Footnote 3's software optimization: the replacement write happens
		// in the background; only the read delays the transaction.
		m.stats.VictimAsync++
		m.asyncWrite(key, false)
		op.run()
	default:
		// Device write before the read can proceed (the transaction waits
		// for it either way; SyncAccess additionally holds the CPU).
		m.stats.VictimWrites++
		if m.alloc(key.Partition).SyncAccess {
			m.devicePartitionWrite(op.p, key, op.step)
		} else {
			op.state = fxVictimIO
			m.host.IOOverhead(op.p, op.step)
		}
	}
}

// fixRemote serves a main-memory miss on a shared-NVEM-cache partition
// when the cache sits across the interconnect (remote mode): the probe
// travels as a cross-node message and its verdict arrives one
// NVEMAccessDelayMS later, after which the page transfer (hit) or device
// read (miss) proceeds as usual. The frame is reserved and registered
// before the probe departs — fetch coalescing works exactly as on the
// local path, so a concurrent fixer neither steals the freed slot nor
// starts a duplicate fetch.
func (m *Manager) fixRemote(p *sim.Process, key storage.PageKey, write bool, ps *PartitionStats, k func()) {
	victim, victimDirty, haveVictim := m.reserveFrame()
	m.mm.Put(key, frame{dirty: write})
	fetch := func() {
		m.remote.Probe(key, func(hit, dirty bool) {
			if dirty {
				// NOFORCE promotion of a deferred-dirty copy: the pending
				// modification rides up with the page. If the frame was
				// replaced while the probe was in flight the page went out
				// clean, so the promoted modification still has to reach
				// disk on its own.
				if _, ok := m.mm.Peek(key); ok {
					m.mm.Update(key, frame{dirty: true})
				} else {
					m.startAsyncWrite(key)
				}
			}
			if hit {
				m.stats.NVEMCacheHits++
				ps.NVEMHits++
				m.host.NVEMTransfer(p, k)
				return
			}
			m.stats.DeviceReads++
			m.deviceRead(p, key, k)
		})
	}
	if haveVictim {
		m.disposeVictim(p, victim, victimDirty, fetch)
		return
	}
	fetch()
}

// ApplySharedProbe resolves one remote Probe against the cluster-shared
// cache. The coordinator calls it at a barrier (kernels quiescent) in
// message-arrival order, which makes the examination equivalent to one at
// the arrival instant. Under FORCE a hit keeps the copy and refreshes its
// recency; under NOFORCE the copy leaves the cache as it promotes
// (single-copy management), carrying its deferred-destage dirty bit.
func (m *Manager) ApplySharedProbe(key storage.PageKey) (hit, dirty bool) {
	c := m.remoteShared.cache
	f, ok := c.Peek(key)
	if !ok {
		return false, false
	}
	if m.cfg.Force {
		c.Touch(key)
		return true, false
	}
	c.Remove(key)
	return true, f.dirty
}

// ApplySharedPut resolves one remote Put against the cluster-shared
// cache, on the sending node's manager so an evicted deferred-dirty frame
// destages through that node's (quiescent) kernel — mirroring the coupled
// mode, where whoever's insert triggers the eviction pays the destage.
func (m *Manager) ApplySharedPut(key storage.PageKey, dirty bool) {
	m.putNVEMInto(m.remoteShared.cache, key, dirty)
}

// deviceRead reads a page from its partition's disk-unit, honouring the
// partition's access mode (synchronous access keeps the CPU busy).
func (m *Manager) deviceRead(p *sim.Process, key storage.PageKey, k func()) {
	unit := m.unitOf(key.Partition)
	if m.alloc(key.Partition).SyncAccess {
		m.host.SyncDeviceIO(p, func(done func()) { unit.Read(p, key, done) }, k)
		return
	}
	m.host.IOOverhead(p, func() { unit.Read(p, key, k) })
}

// devicePartitionWrite writes a page to its partition's disk-unit,
// honouring the partition's access mode.
func (m *Manager) devicePartitionWrite(p *sim.Process, key storage.PageKey, k func()) {
	unit := m.unitOf(key.Partition)
	if m.alloc(key.Partition).SyncAccess {
		m.host.SyncDeviceIO(p, func(done func()) { unit.Write(p, key, done) }, k)
		return
	}
	m.host.IOOverhead(p, func() { unit.Write(p, key, k) })
}

// nvemCacheHas probes the NVEM cache without touching recency (recency is
// handled by the caller depending on the update strategy).
func (m *Manager) nvemCacheHas(key storage.PageKey) bool {
	_, ok := m.nvemCache.Peek(key)
	return ok
}

// reserveFrame removes a victim frame when the buffer is full, returning
// its identity for later disposal. Under FORCE the oldest clean frame is
// preferred (there almost always is one — footnote 7); under NOFORCE strict
// LRU is used.
func (m *Manager) reserveFrame() (victim storage.PageKey, dirty, haveVictim bool) {
	if m.mm.Len() < m.mm.Cap() {
		return storage.PageKey{}, false, false
	}
	var ok bool
	if m.cfg.Force {
		victim, ok = m.mm.FindOldest(func(_ storage.PageKey, f frame) bool { return !f.dirty })
	}
	if !ok {
		victim, ok = m.mm.Oldest()
	}
	if !ok {
		return storage.PageKey{}, false, false // capacity > 0; defensive
	}
	f, _ := m.mm.Peek(victim)
	m.mm.Remove(victim)
	return victim, f.dirty, true
}

// disposeVictim routes a replaced page according to its partition's
// allocation: into the NVEM cache (with asynchronous disk update for dirty
// pages), through the NVEM write buffer, or synchronously to the device.
// k runs once the victim stops delaying p.
func (m *Manager) disposeVictim(p *sim.Process, key storage.PageKey, dirty bool, k func()) {
	a := m.alloc(key.Partition)

	if a.NVEMCache && (m.nvemCache != nil || m.remote != nil) {
		migrate := a.NVEMCacheMode == MigrateAll ||
			(dirty && a.NVEMCacheMode == MigrateModified) ||
			(!dirty && a.NVEMCacheMode == MigrateUnmodified)
		if migrate {
			m.migrateToNVEM(p, key, dirty, k)
			return
		}
	}

	if !dirty {
		if a.NVEMResident {
			// Nothing to do: the permanent copy is in NVEM already.
			k()
			return
		}
		m.stats.CleanDrops++
		k()
		return
	}

	switch {
	case a.NVEMResident:
		// Write the page back to its NVEM home (synchronous, fast).
		m.host.NVEMTransfer(p, k)
	case a.NVEMWriteBuffer:
		m.writeViaWB(p, key, k)
	case m.cfg.AsyncReplacement:
		// Footnote 3's software optimization: the replacement write happens
		// in the background; only the read delays the transaction.
		m.stats.VictimAsync++
		m.asyncWrite(key, false)
		k()
	default:
		// Device write before the read can proceed (the transaction waits
		// for it either way; SyncAccess additionally holds the CPU).
		m.stats.VictimWrites++
		m.devicePartitionWrite(p, key, k)
	}
}

// migrateToNVEM inserts a page replaced from main memory into the NVEM
// second-level cache. With immediate propagation (the paper's simple
// scheme, section 3.2) the disk write of a modified page starts right away
// and asynchronously, so NVEM frames are always replaceable without delay —
// eviction is a drop. Under deferred destage the page stays dirty in NVEM
// and the disk write happens only when NVEM evicts it (paying an extra
// NVEM→MM transfer then), saving disk writes for re-modified pages.
func (m *Manager) migrateToNVEM(p *sim.Process, key storage.PageKey, dirty bool, k func()) {
	m.stats.VictimToNVEM++
	m.host.NVEMTransfer(p, func() {
		m.insertNVEM(key, dirty)
		if dirty && !m.cfg.NVEMDeferredDestage {
			m.startAsyncWrite(key)
		}
		k()
	})
}

// insertNVEM routes an NVEM-cache insert: over the interconnect in remote
// mode, directly into the (private or shared) cache structure otherwise.
func (m *Manager) insertNVEM(key storage.PageKey, dirty bool) {
	if m.remote != nil {
		m.remote.Put(key, dirty)
		return
	}
	m.putNVEM(key, dirty)
}

// putNVEM inserts into the NVEM cache, destaging an evicted deferred-dirty
// page in the background.
func (m *Manager) putNVEM(key storage.PageKey, dirty bool) {
	m.putNVEMInto(m.nvemCache, key, dirty)
}

// putNVEMInto is the insert body, shared between the node-local cache and
// the coordinator-applied shared cache (ApplySharedPut).
func (m *Manager) putNVEMInto(c *lru.Cache[storage.PageKey, nvemFrame], key storage.PageKey, dirty bool) {
	if !m.cfg.NVEMDeferredDestage {
		dirty = false // disk copy is (being made) current
	}
	evictedKey, evictedFrame, evicted := c.Put(key, nvemFrame{dirty: dirty})
	if !evicted || !evictedFrame.dirty {
		return
	}
	m.destageFromNVEM(evictedKey)
}

// destageFromNVEM starts the deferred destage of a dirty NVEM frame that
// is leaving the cache: the page must pass through main memory on its way
// to disk (section 2: NVEM↔disk transfers go through the accessing
// system), then the asynchronous disk write.
func (m *Manager) destageFromNVEM(key storage.PageKey) {
	m.stats.NVEMEvictWrites++
	op := m.getAsyncOp()
	op.key, op.wb = key, false
	op.state = axEvict
	m.sim.Schedule(0, op.step)
}

// writeViaWB absorbs a page write in the NVEM write buffer: the caller
// continues after the NVEM transfer while the disk copy is updated
// asynchronously. When every write-buffer frame is still awaiting its disk
// update, the write falls back to a synchronous device write (the same
// saturation behaviour as a full non-volatile disk cache).
func (m *Manager) writeViaWB(p *sim.Process, key storage.PageKey, k func()) {
	op := m.getOp()
	op.p, op.key, op.k = p, key, k
	if m.wbInUse >= m.cfg.NVEMWriteBufferSize {
		m.stats.WBFullSync++
		m.stats.VictimWrites++
		op.state = wbFull
		m.host.IOOverhead(p, op.step)
		return
	}
	m.wbInUse++
	m.stats.VictimToWB++
	op.state = wbStored
	m.host.NVEMTransfer(p, op.step)
}

// deviceUnitFor resolves the disk-unit for a page, treating the log
// partition specially.
func (m *Manager) deviceUnitFor(key storage.PageKey) *storage.DiskUnit {
	if key.Partition == m.logPartition {
		return m.units[m.cfg.Log.DiskUnit]
	}
	return m.unitOf(key.Partition)
}

func (m *Manager) deviceWriteFor(p *sim.Process, key storage.PageKey, k func()) {
	m.deviceUnitFor(key).Write(p, key, k)
}

// startAsyncWrite begins the immediate asynchronous disk update for a
// modified page that entered the NVEM cache.
func (m *Manager) startAsyncWrite(key storage.PageKey) {
	m.asyncWrite(key, false)
}

// ForcePages implements commit phase 1 under FORCE: every page the
// transaction modified is written to non-volatile storage, and its
// main-memory copy becomes clean but stays buffered (replication with the
// NVEM cache is accepted, section 3.2). Pages already replaced from the
// buffer were written out at replacement and are skipped. k runs once every
// force write has completed.
func (m *Manager) ForcePages(p *sim.Process, keys []storage.PageKey, k func()) {
	if !m.cfg.Force {
		k()
		return
	}
	op := m.getOp()
	op.p, op.k, op.keys, op.i = p, k, keys, 0
	op.state = fcLoop
	op.run()
}

// WriteLog implements the commit log write: one page per update transaction
// (section 3.2), appended sequentially and routed by the log allocation,
// with k running once the write is durable. Under group commit the caller
// joins the open group and k waits for the group's single shared log write.
func (m *Manager) WriteLog(p *sim.Process, k func()) {
	if !m.cfg.Logging {
		k()
		return
	}
	if !m.cfg.GroupCommit {
		m.writeLogPage(p, k)
		return
	}
	if m.gcWaiters == nil {
		if n := len(m.gcFree); n > 0 {
			m.gcWaiters = m.gcFree[n-1]
			m.gcFree[n-1] = nil
			m.gcFree = m.gcFree[:n-1]
		}
	}
	m.gcWaiters = append(m.gcWaiters, k)
	if len(m.gcWaiters) == 1 {
		// Group leader: open the group (one +0 event, matching the process
		// spawn it replaces) and flush it after the group window.
		op := m.getAsyncOp()
		op.state = gcOpen
		m.sim.Schedule(0, op.step)
	}
}

// writeLogPage performs one physical log page write, then k.
func (m *Manager) writeLogPage(p *sim.Process, k func()) {
	m.stats.LogWrites++
	m.logSinceCkpt++
	key := storage.PageKey{Partition: m.logPartition, Page: m.logNext}
	m.logNext++
	switch {
	case m.cfg.Log.NVEMResident:
		m.host.NVEMTransfer(p, k)
	case m.cfg.Log.NVEMWriteBuffer:
		m.writeViaWB(p, key, k)
	default:
		op := m.getOp()
		op.p, op.key, op.k = p, key, k
		op.state = lgIO
		m.host.IOOverhead(p, op.step)
	}
}

// HitRatioMM returns the overall main-memory hit ratio.
func (m *Manager) HitRatioMM() float64 {
	if m.stats.Fixes == 0 {
		return 0
	}
	return float64(m.stats.MMHits) / float64(m.stats.Fixes)
}

// HitRatioNVEM returns NVEM-cache hits as a fraction of all fixes (the
// "additional hit ratio" of Tables 4.2a/b).
func (m *Manager) HitRatioNVEM() float64 {
	if m.stats.Fixes == 0 {
		return 0
	}
	return float64(m.stats.NVEMCacheHits) / float64(m.stats.Fixes)
}
