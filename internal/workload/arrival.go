package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// This file is the pluggable arrival-process layer: the engine no longer
// hardcodes exponential interarrivals but asks an ArrivalProcess for every
// gap. One process instance serves one arrival stream (one node × one
// transaction type), so implementations may carry state (the MMPP state
// machine does). All randomness comes from the stream the engine passes in,
// which is what keeps runs byte-identical across worker counts.

// ArrivalProcess generates the interarrival gaps of one arrival stream.
type ArrivalProcess interface {
	// NextGapMS returns the gap (milliseconds) between the arrival at
	// simulated time now and the next one, drawing randomness from s.
	NextGapMS(now float64, s *rng.Stream) float64
}

// ArrivalKind selects the arrival-process family of an ArrivalSpec.
type ArrivalKind int

// Arrival-process families.
const (
	// ArrivalPoisson is the classic time-homogeneous Poisson process of
	// the paper's evaluation (exponential interarrivals at a fixed rate).
	ArrivalPoisson ArrivalKind = iota
	// ArrivalMMPP is a two-state Markov-modulated Poisson process: a base
	// state and a burst state with a higher rate, with exponentially
	// distributed sojourn times, parameterized so the long-run mean rate
	// equals the configured rate.
	ArrivalMMPP
	// ArrivalDiurnal modulates the rate sinusoidally around the mean —
	// the compressed day/night load cycle.
	ArrivalDiurnal
	// ArrivalSpike multiplies the rate inside one scheduled window,
	// alignable with a cluster failure injection so the spike lands
	// mid-recovery.
	ArrivalSpike
	// ArrivalClosedLoop replaces the rate clock with N terminals: each
	// terminal thinks for an exponential time, submits one transaction,
	// and thinks again when it completes. There is no interarrival
	// process — the engine drives arrivals from completions — so
	// NewProcess rejects this kind; the configured rate is ignored.
	ArrivalClosedLoop
	// ArrivalReplay modulates a Poisson process by a recorded rate
	// timeline: piecewise-constant multipliers over fixed-width buckets,
	// cycled past the end. trace.LoadTimeline derives such a timeline
	// from a recorded trace.
	ArrivalReplay
)

func (k ArrivalKind) String() string {
	switch k {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalMMPP:
		return "mmpp"
	case ArrivalDiurnal:
		return "diurnal"
	case ArrivalSpike:
		return "spike"
	case ArrivalClosedLoop:
		return "closedloop"
	case ArrivalReplay:
		return "replay"
	default:
		return fmt.Sprintf("ArrivalKind(%d)", int(k))
	}
}

// DefaultBurstMeanMS is the mean burst-state sojourn when an MMPP spec
// leaves BurstMeanMS zero.
const DefaultBurstMeanMS = 500.0

// ArrivalSpec describes an arrival process independently of the rate: the
// engine instantiates one process per arrival stream from the spec and the
// stream's configured mean rate. The zero value is the plain Poisson
// process, so existing configurations are untouched.
type ArrivalSpec struct {
	Kind ArrivalKind

	// MMPP (Kind == ArrivalMMPP). The burst state runs at BurstFactor ×
	// the mean rate and covers BurstFrac of the time in the long run; the
	// base-state rate is derived so the overall mean rate is preserved,
	// which requires BurstFactor·BurstFrac < 1. BurstMeanMS is the mean
	// burst sojourn (0 → DefaultBurstMeanMS); the base-state sojourn
	// follows from BurstFrac.
	BurstFactor float64
	BurstFrac   float64
	BurstMeanMS float64

	// Diurnal (Kind == ArrivalDiurnal): rate(t) = mean · (1 + Amplitude ·
	// sin(2π·(t-origin)/PeriodMS + PhaseRad)). Amplitude must stay below 1
	// so the rate never reaches zero.
	Amplitude float64
	PeriodMS  float64
	PhaseRad  float64

	// Spike (Kind == ArrivalSpike): the rate is multiplied by SpikeFactor
	// over [SpikeAtMS, SpikeAtMS+SpikeDurMS), both offsets into the
	// measurement window (the same clock FailureConfig.CrashAtMS uses, so
	// a spike is trivially aligned with a crash).
	SpikeFactor float64
	SpikeAtMS   float64
	SpikeDurMS  float64

	// Closed loop (Kind == ArrivalClosedLoop): Terminals emulated users
	// per arrival stream, each thinking for an exponential time with mean
	// ThinkMS between its transactions. ThinkMS must be positive — a
	// zero think time would let a terminal resubmit at the same simulated
	// instant forever.
	Terminals int
	ThinkMS   float64

	// Replay (Kind == ArrivalReplay): the rate is multiplied by
	// RateMultipliers[i] over the i-th RateBucketMS-wide bucket past the
	// origin, cycling once the timeline is exhausted. Multipliers should
	// average 1 so the configured rate stays the long-run mean.
	RateBucketMS    float64
	RateMultipliers []float64
}

// Validate checks the spec's parameters for its kind.
func (a *ArrivalSpec) Validate() error {
	switch a.Kind {
	case ArrivalPoisson:
		return nil
	case ArrivalMMPP:
		switch {
		case a.BurstFactor < 1:
			return fmt.Errorf("workload: MMPP BurstFactor = %v, want >= 1", a.BurstFactor)
		case a.BurstFrac <= 0 || a.BurstFrac >= 1:
			return fmt.Errorf("workload: MMPP BurstFrac = %v, want in (0, 1)", a.BurstFrac)
		case a.BurstFactor*a.BurstFrac >= 1:
			return fmt.Errorf("workload: MMPP BurstFactor·BurstFrac = %v, want < 1 (base rate would be negative)",
				a.BurstFactor*a.BurstFrac)
		case a.BurstMeanMS < 0:
			return fmt.Errorf("workload: MMPP BurstMeanMS = %v", a.BurstMeanMS)
		}
		return nil
	case ArrivalDiurnal:
		switch {
		case a.Amplitude < 0 || a.Amplitude >= 1:
			return fmt.Errorf("workload: diurnal Amplitude = %v, want in [0, 1)", a.Amplitude)
		case a.PeriodMS <= 0:
			return fmt.Errorf("workload: diurnal PeriodMS = %v", a.PeriodMS)
		}
		return nil
	case ArrivalSpike:
		switch {
		case a.SpikeFactor <= 0:
			return fmt.Errorf("workload: spike SpikeFactor = %v", a.SpikeFactor)
		case a.SpikeAtMS < 0:
			return fmt.Errorf("workload: spike SpikeAtMS = %v", a.SpikeAtMS)
		case a.SpikeDurMS <= 0:
			return fmt.Errorf("workload: spike SpikeDurMS = %v", a.SpikeDurMS)
		}
		return nil
	case ArrivalClosedLoop:
		switch {
		case a.Terminals <= 0:
			return fmt.Errorf("workload: closed loop Terminals = %d", a.Terminals)
		case a.ThinkMS <= 0:
			return fmt.Errorf("workload: closed loop ThinkMS = %v, want > 0", a.ThinkMS)
		}
		return nil
	case ArrivalReplay:
		switch {
		case a.RateBucketMS <= 0:
			return fmt.Errorf("workload: replay RateBucketMS = %v", a.RateBucketMS)
		case len(a.RateMultipliers) == 0:
			return fmt.Errorf("workload: replay needs at least one rate multiplier")
		}
		for i, m := range a.RateMultipliers {
			if m <= 0 {
				return fmt.Errorf("workload: replay RateMultipliers[%d] = %v", i, m)
			}
		}
		return nil
	default:
		return fmt.Errorf("workload: unknown arrival kind %d", int(a.Kind))
	}
}

// NewProcess instantiates the spec for one arrival stream. rate is the
// stream's mean arrival rate in transactions per second; originMS anchors
// the window-relative parameters (spike offsets, diurnal phase) — the
// engine passes the warmup length so "SpikeAtMS into the measurement
// window" lands at the right simulated instant.
func (a *ArrivalSpec) NewProcess(rate, originMS float64) (ArrivalProcess, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate = %v", rate)
	}
	meanGap := 1000.0 / rate
	switch a.Kind {
	case ArrivalPoisson:
		return &Poisson{MeanGapMS: meanGap}, nil
	case ArrivalMMPP:
		burstMean := a.BurstMeanMS
		if burstMean == 0 {
			burstMean = DefaultBurstMeanMS
		}
		f := a.BurstFrac
		burstRate := a.BurstFactor * rate
		baseRate := rate * (1 - f*a.BurstFactor) / (1 - f)
		return &MMPP{
			BaseGapMS:   1000.0 / baseRate,
			BurstGapMS:  1000.0 / burstRate,
			BaseMeanMS:  burstMean * (1 - f) / f,
			BurstMeanMS: burstMean,
		}, nil
	case ArrivalDiurnal:
		return &Diurnal{
			MeanGapMS: meanGap,
			Amplitude: a.Amplitude,
			PeriodMS:  a.PeriodMS,
			PhaseRad:  a.PhaseRad,
			OriginMS:  originMS,
		}, nil
	case ArrivalClosedLoop:
		return nil, fmt.Errorf("workload: closed loop has no interarrival process (the engine drives arrivals from completions)")
	case ArrivalReplay:
		return &Replay{
			MeanGapMS:   meanGap,
			BucketMS:    a.RateBucketMS,
			Multipliers: append([]float64(nil), a.RateMultipliers...),
			OriginMS:    originMS,
		}, nil
	default: // ArrivalSpike
		return &Spike{
			MeanGapMS: meanGap,
			Factor:    a.SpikeFactor,
			StartMS:   originMS + a.SpikeAtMS,
			EndMS:     originMS + a.SpikeAtMS + a.SpikeDurMS,
		}, nil
	}
}

// Poisson draws exponential interarrivals at a fixed rate — the default
// process and the one the paper's evaluation uses throughout. It performs
// exactly one exponential draw per arrival, which keeps runs byte-identical
// with the pre-refactor engine.
type Poisson struct {
	MeanGapMS float64
}

// NextGapMS implements ArrivalProcess.
func (p *Poisson) NextGapMS(_ float64, s *rng.Stream) float64 {
	return s.Exp(p.MeanGapMS)
}

// MMPP is a two-state Markov-modulated Poisson process: interarrivals are
// exponential at the current state's rate, and the state (base/burst)
// switches after exponentially distributed sojourns. Gaps are generated
// exactly by competing clocks: a candidate gap is drawn at the current
// state's rate, and if the state switches first, time advances to the
// switch and the remainder is redrawn at the new state's rate — which by
// memorylessness reproduces the true MMPP, with no bias at any burst
// factor. Every arrival lands strictly before switchAt, so the process
// maintains now < switchAt between calls.
type MMPP struct {
	BaseGapMS   float64 // mean interarrival gap in the base state
	BurstGapMS  float64 // mean interarrival gap in the burst state
	BaseMeanMS  float64 // mean base-state sojourn
	BurstMeanMS float64 // mean burst-state sojourn

	inBurst  bool
	switchAt float64
	started  bool
}

// NextGapMS implements ArrivalProcess.
func (m *MMPP) NextGapMS(now float64, s *rng.Stream) float64 {
	if !m.started {
		m.started = true
		m.switchAt = now + s.Exp(m.BaseMeanMS)
	}
	t := now
	for {
		gap := m.BaseGapMS
		if m.inBurst {
			gap = m.BurstGapMS
		}
		arriveAt := t + s.Exp(gap)
		if arriveAt < m.switchAt {
			return arriveAt - now
		}
		t = m.switchAt
		m.inBurst = !m.inBurst
		if m.inBurst {
			m.switchAt += s.Exp(m.BurstMeanMS)
		} else {
			m.switchAt += s.Exp(m.BaseMeanMS)
		}
	}
}

// Diurnal modulates the arrival rate sinusoidally around the mean: a
// compressed day/night cycle. Each gap is exponential at the rate holding
// at the previous arrival (the standard slowly-varying approximation of an
// inhomogeneous Poisson process; the sine averages out, so the long-run
// mean rate is the configured one).
type Diurnal struct {
	MeanGapMS float64
	Amplitude float64
	PeriodMS  float64
	PhaseRad  float64
	OriginMS  float64
}

// NextGapMS implements ArrivalProcess.
func (d *Diurnal) NextGapMS(now float64, s *rng.Stream) float64 {
	mod := 1 + d.Amplitude*math.Sin(2*math.Pi*(now-d.OriginMS)/d.PeriodMS+d.PhaseRad)
	return s.Exp(d.MeanGapMS / mod)
}

// Spike multiplies the rate inside one scheduled window (absolute simulated
// milliseconds, precomputed from the window-relative spec) and is Poisson
// at the mean rate outside it.
type Spike struct {
	MeanGapMS float64
	Factor    float64
	StartMS   float64
	EndMS     float64
}

// NextGapMS implements ArrivalProcess.
func (sp *Spike) NextGapMS(now float64, s *rng.Stream) float64 {
	gap := sp.MeanGapMS
	if now >= sp.StartMS && now < sp.EndMS {
		gap /= sp.Factor
	}
	return s.Exp(gap)
}

// Replay modulates a Poisson process by a recorded rate timeline:
// piecewise-constant multipliers over BucketMS-wide buckets past OriginMS,
// cycled once the timeline is exhausted (times before the origin — i.e.
// warmup — use the first bucket). Like Diurnal, each gap is exponential at
// the rate holding at the previous arrival, the slowly-varying
// approximation of the inhomogeneous Poisson process.
type Replay struct {
	MeanGapMS   float64
	BucketMS    float64
	Multipliers []float64
	OriginMS    float64
}

// NextGapMS implements ArrivalProcess.
func (r *Replay) NextGapMS(now float64, s *rng.Stream) float64 {
	bucket := 0
	if now > r.OriginMS {
		bucket = int((now-r.OriginMS)/r.BucketMS) % len(r.Multipliers)
	}
	return s.Exp(r.MeanGapMS / r.Multipliers[bucket])
}
