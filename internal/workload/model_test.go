package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func validModel() *Model {
	return &Model{
		Partitions: []Partition{
			{Name: "small", NumObjects: 10_000, BlockFactor: 10, Subpartitions: BCRule(0.8, 0.2)},
			{Name: "large", NumObjects: 100_000, BlockFactor: 10},
		},
		TxTypes: []TxType{
			{Name: "upd", ArrivalRate: 100, TxSize: 10, WriteProb: 1, VarSize: true, RefRow: []float64{0.8, 0.2}},
		},
	}
}

func TestModelValidateOK(t *testing.T) {
	if err := validModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidateCatchesErrors(t *testing.T) {
	cases := map[string]func(*Model){
		"no partitions":    func(m *Model) { m.Partitions = nil },
		"no tx types":      func(m *Model) { m.TxTypes = nil },
		"zero objects":     func(m *Model) { m.Partitions[0].NumObjects = 0 },
		"zero blockfactor": func(m *Model) { m.Partitions[0].BlockFactor = 0 },
		"bad subpart size": func(m *Model) { m.Partitions[0].Subpartitions = []Subpartition{{0.5, 1.0}} },
		"bad subpart prob": func(m *Model) {
			m.Partitions[0].Subpartitions = []Subpartition{{0.5, 0.3}, {0.5, 0.3}}
		},
		"negative rate":   func(m *Model) { m.TxTypes[0].ArrivalRate = -1 },
		"tiny txsize":     func(m *Model) { m.TxTypes[0].TxSize = 0 },
		"bad writeprob":   func(m *Model) { m.TxTypes[0].WriteProb = 1.5 },
		"short refrow":    func(m *Model) { m.TxTypes[0].RefRow = []float64{1} },
		"refrow not 1":    func(m *Model) { m.TxTypes[0].RefRow = []float64{0.8, 0.1} },
		"negative refrow": func(m *Model) { m.TxTypes[0].RefRow = []float64{1.5, -0.5} },
	}
	for name, mutate := range cases {
		m := validModel()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestPartitionPages(t *testing.T) {
	p := Partition{Name: "p", NumObjects: 95, BlockFactor: 10}
	if got := p.NumPages(); got != 10 {
		t.Fatalf("NumPages = %d, want 10", got)
	}
	if got := p.PageOf(0); got != 0 {
		t.Fatalf("PageOf(0) = %d", got)
	}
	if got := p.PageOf(94); got != 9 {
		t.Fatalf("PageOf(94) = %d", got)
	}
}

func TestBCRule(t *testing.T) {
	sp := BCRule(0.9, 0.1)
	if len(sp) != 2 {
		t.Fatalf("len = %d", len(sp))
	}
	if sp[0].SizeFrac != 0.1 || sp[0].AccessProb != 0.9 {
		t.Fatalf("hot slice = %+v", sp[0])
	}
	if math.Abs(sp[0].SizeFrac+sp[1].SizeFrac-1) > 1e-12 {
		t.Fatal("sizes must sum to 1")
	}
}

func TestTxUpdate(t *testing.T) {
	tx := Tx{Accesses: []Access{{Write: false}, {Write: false}}}
	if tx.Update() {
		t.Fatal("read-only tx reported update")
	}
	tx.Accesses[1].Write = true
	if !tx.Update() {
		t.Fatal("update tx not detected")
	}
}

// Property: PageOf is monotone and within [0, NumPages) for any object.
func TestPageOfBounds(t *testing.T) {
	f := func(objects uint32, bf uint8, probe uint32) bool {
		n := int64(objects%1_000_000) + 1
		b := int(bf%64) + 1
		p := Partition{Name: "q", NumObjects: n, BlockFactor: b}
		obj := int64(probe) % n
		page := p.PageOf(obj)
		return page >= 0 && page < p.NumPages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Regression: a Sequential (append-only) partition hands PageOf its raw
// append cursor, which exceeds NumObjects once the file has been filled and
// cycled. The unclamped mapping object/blockFactor then named pages past
// NumPages()-1 — pages no device allocation contains. Out-of-range objects
// must wrap onto the valid page range.
func TestPageOfSequentialOverflowClamped(t *testing.T) {
	p := Partition{Name: "HISTORY", NumObjects: 100, BlockFactor: 20, Sequential: true}
	if np := p.NumPages(); np != 5 {
		t.Fatalf("NumPages = %d, want 5", np)
	}
	// The boundary case that escaped: the first object past the end.
	if page := p.PageOf(100); page < 0 || page >= 5 {
		t.Fatalf("PageOf(100) = %d, outside [0, 5): append cursor past NumObjects unclamped", page)
	}
	// Any cursor position, arbitrarily far past the end, stays in range
	// and keeps advancing page-by-page every BlockFactor objects.
	for cursor := int64(0); cursor < 1_000; cursor++ {
		page := p.PageOf(cursor)
		if page < 0 || page >= 5 {
			t.Fatalf("PageOf(%d) = %d, outside [0, 5)", cursor, page)
		}
		if want := (cursor / 20) % 5; page != want {
			t.Fatalf("PageOf(%d) = %d, want wrap-around page %d", cursor, page, want)
		}
	}
	// Negative objects (a buggy caller) must not produce negative pages.
	if page := p.PageOf(-1); page < 0 || page >= 5 {
		t.Fatalf("PageOf(-1) = %d, outside [0, 5)", page)
	}
}

// TestPartitionAccessValidation: the per-partition access spec is validated
// with the partition, and skew is mutually exclusive with subpartitions.
func TestPartitionAccessValidation(t *testing.T) {
	bad := Partition{Name: "p", NumObjects: 100, BlockFactor: 10,
		Access: AccessSpec{Kind: AccessZipf, Theta: 2}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid Access spec accepted")
	}
	both := Partition{Name: "p", NumObjects: 100, BlockFactor: 10,
		Subpartitions: BCRule(0.8, 0.2),
		Access:        AccessSpec{Kind: AccessZipf, Theta: 0.8}}
	if err := both.Validate(); err == nil {
		t.Error("Access skew + Subpartitions accepted")
	}
	ok := Partition{Name: "p", NumObjects: 100, BlockFactor: 10,
		Access: AccessSpec{Kind: AccessHotSpot, HotAccessFrac: 0.9, HotDataFrac: 0.1}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid skewed partition rejected: %v", err)
	}
}
