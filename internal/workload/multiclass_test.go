package workload

import (
	"testing"

	"repro/internal/rng"
)

// TestClassMixModel: the standard mix builds a valid model whose generator
// emits each class against the right partitions.
func TestClassMixModel(t *testing.T) {
	m, err := ClassMixModel(DefaultClassMix(100, 20, 2), AccessSpec{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewSynthetic(m)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTypes() != 3 {
		t.Fatalf("NumTypes = %d, want 3", g.NumTypes())
	}
	name, rate := g.TypeInfo(2)
	if name != "batch-scan" || rate != 2 {
		t.Fatalf("TypeInfo(2) = %q/%v, want batch-scan/2", name, rate)
	}
	s := rng.NewStream(9, "workload")
	// Batch scans walk consecutive ORDERS objects, read-only.
	tx := g.Next(2, s)
	if len(tx.Accesses) != 400 {
		t.Fatalf("scan size %d, want 400", len(tx.Accesses))
	}
	for i, a := range tx.Accesses {
		if a.Partition != 1 {
			t.Fatalf("scan access %d in partition %d, want ORDERS(1)", i, a.Partition)
		}
		if a.Write {
			t.Fatalf("scan access %d is a write", i)
		}
	}
	// Short updates mostly write.
	writes, total := 0, 0
	for i := 0; i < 500; i++ {
		for _, a := range g.Next(0, s).Accesses {
			total++
			if a.Write {
				writes++
			}
		}
	}
	if frac := float64(writes) / float64(total); frac < 0.7 || frac > 0.9 {
		t.Fatalf("short-update write fraction %v, want ~0.8", frac)
	}
}

// TestClassMixSkewApplied: a CUSTOMER hot-spot spec reaches the synthetic
// generator's object draw.
func TestClassMixSkewApplied(t *testing.T) {
	skew := AccessSpec{Kind: AccessHotSpot, HotAccessFrac: 0.95, HotDataFrac: 0.01}
	m, err := ClassMixModel(DefaultClassMix(100, 0, 0), skew)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewSynthetic(m)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.NewStream(4, "workload")
	hotSize := int64(0.01 * float64(ClassMixCustomerObjects))
	hot, n := 0, 0
	for i := 0; i < 3_000; i++ {
		for _, a := range g.Next(0, s).Accesses {
			if a.Partition != 0 {
				continue
			}
			n++
			if a.Object < hotSize {
				hot++
			}
		}
	}
	if frac := float64(hot) / float64(n); frac < 0.9 {
		t.Fatalf("hot CUSTOMER fraction %v, want ~0.95", frac)
	}
}

// TestClassMixValidation: empty class lists and invalid specs are rejected.
func TestClassMixValidation(t *testing.T) {
	if _, err := ClassMixModel(nil, AccessSpec{}); err == nil {
		t.Error("empty class list accepted")
	}
	if _, err := ClassMixModel([]ClassSpec{{Name: "x", Rate: 1, Size: 0}}, AccessSpec{}); err == nil {
		t.Error("zero-size class accepted")
	}
	if _, err := ClassMixModel(DefaultClassMix(1, 1, 1),
		AccessSpec{Kind: AccessZipf, Theta: 7}); err == nil {
		t.Error("invalid skew accepted")
	}
}
