package workload

import "fmt"

// This file builds the standard multi-class mix: several transaction
// classes — short updates, long read-mostly queries, batch scans — sharing
// one two-partition database, so they compete for the same buffer, devices
// and locks. It is a thin layer over the general synthetic model: the mix
// is just a Model with a conventional database and per-class TxTypes, used
// by the workload.multiclass experiment and the JSON config's
// workload.classes shorthand.

// Class-mix database dimensions. CUSTOMER is the randomly accessed
// relation, ORDERS the one batch scans walk sequentially.
const (
	ClassMixCustomerObjects = 1_000_000
	ClassMixCustomerBF      = 10
	ClassMixOrdersObjects   = 400_000
	ClassMixOrdersBF        = 20
)

// ClassSpec describes one transaction class of the standard mix.
type ClassSpec struct {
	Name      string
	Rate      float64 // arrivals per second
	Size      float64 // mean object accesses per transaction
	WriteProb float64
	// Sequential classes scan consecutive ORDERS objects (batch scans);
	// random classes draw 70% CUSTOMER / 30% ORDERS.
	Sequential bool
	// VarSize draws the size exponentially around the mean.
	VarSize bool
}

// ClassMixModel builds the standard two-partition multi-class model from
// the class list. Skew applies to the CUSTOMER object draw of the random
// classes (uniform zero value).
func ClassMixModel(classes []ClassSpec, skew AccessSpec) (*Model, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("workload: class mix needs at least one class")
	}
	m := &Model{
		Partitions: []Partition{
			{Name: "CUSTOMER", NumObjects: ClassMixCustomerObjects, BlockFactor: ClassMixCustomerBF, Access: skew},
			{Name: "ORDERS", NumObjects: ClassMixOrdersObjects, BlockFactor: ClassMixOrdersBF},
		},
	}
	for _, c := range classes {
		row := []float64{0.7, 0.3}
		if c.Sequential {
			row = []float64{0, 1}
		}
		m.TxTypes = append(m.TxTypes, TxType{
			Name:        c.Name,
			ArrivalRate: c.Rate,
			TxSize:      c.Size,
			WriteProb:   c.WriteProb,
			Sequential:  c.Sequential,
			VarSize:     c.VarSize,
			RefRow:      row,
		})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// DefaultClassMix returns the conventional three-class TPC-C-style mix:
// short updates, long read-mostly queries, and batch scans, at the given
// per-class arrival rates.
func DefaultClassMix(updateTPS, readTPS, scanTPS float64) []ClassSpec {
	return []ClassSpec{
		{Name: "short-update", Rate: updateTPS, Size: 6, WriteProb: 0.8},
		{Name: "read-mostly", Rate: readTPS, Size: 24, WriteProb: 0.02, VarSize: true},
		{Name: "batch-scan", Rate: scanTPS, Size: 400, Sequential: true},
	}
}
