package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// This file is the access-distribution seam: generators no longer hardwire
// a uniform object draw inside a partition (or subpartition) but delegate to
// an AccessDist. The uniform implementation performs exactly one Int63n per
// draw — byte-identical to the pre-seam generators — so every existing
// configuration is untouched. The skewed implementations (Zipf, hot-spot)
// concentrate references on a hot set of low-numbered objects, which the
// block-structured page mapping turns into a hot set of pages: the regime
// where a second-level NVEM cache pays off exactly when the hot set almost
// fits.

// AccessDist draws object indices in [0, n) for one partition's accesses.
// Implementations may memoize derived constants but must be pure functions
// of (n, the stream): the engine relies on draws being reproducible across
// decoy-instance interleavings for byte-identical parallel runs.
type AccessDist interface {
	// Draw returns an object index in [0, n), drawing randomness from s.
	Draw(n int64, s *rng.Stream) int64
}

// AccessKind selects the access-distribution family of an AccessSpec.
type AccessKind int

// Access-distribution families.
const (
	// AccessUniform draws every object with equal probability — the
	// default, matching the pre-seam generators draw for draw.
	AccessUniform AccessKind = iota
	// AccessZipf draws object ranks from a Zipf-like power law with
	// exponent Theta in (0, 1): rank r is drawn with probability
	// proportional to r^(-Theta), so low-numbered objects are hot.
	AccessZipf
	// AccessHotSpot sends HotAccessFrac of the draws uniformly into the
	// first HotDataFrac of the objects and the rest uniformly into the
	// remainder (the classic "p% of accesses to q% of the data" rule).
	AccessHotSpot
)

func (k AccessKind) String() string {
	switch k {
	case AccessUniform:
		return "uniform"
	case AccessZipf:
		return "zipf"
	case AccessHotSpot:
		return "hotspot"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// AccessSpec describes an access distribution declaratively, so configs and
// JSON files can carry it. The zero value is the uniform distribution.
type AccessSpec struct {
	Kind AccessKind

	// Zipf (Kind == AccessZipf): the skew exponent, in (0, 1). Higher
	// Theta is more skewed; 0.8 is the conventional "80/20-ish" setting.
	Theta float64

	// Hot-spot (Kind == AccessHotSpot): HotAccessFrac (p) of the accesses
	// go to the first HotDataFrac (q) of the objects. Requires
	// 0 < q < 1 and q <= p < 1 (p >= q keeps the hot set actually hot).
	HotAccessFrac float64
	HotDataFrac   float64
}

// Validate checks the spec's parameters for its kind.
func (a *AccessSpec) Validate() error {
	switch a.Kind {
	case AccessUniform:
		return nil
	case AccessZipf:
		if a.Theta <= 0 || a.Theta >= 1 {
			return fmt.Errorf("workload: zipf Theta = %v, want in (0, 1)", a.Theta)
		}
		return nil
	case AccessHotSpot:
		switch {
		case a.HotDataFrac <= 0 || a.HotDataFrac >= 1:
			return fmt.Errorf("workload: hot-spot HotDataFrac = %v, want in (0, 1)", a.HotDataFrac)
		case a.HotAccessFrac < a.HotDataFrac || a.HotAccessFrac >= 1:
			return fmt.Errorf("workload: hot-spot HotAccessFrac = %v, want in [HotDataFrac, 1)",
				a.HotAccessFrac)
		}
		return nil
	default:
		return fmt.Errorf("workload: unknown access kind %d", int(a.Kind))
	}
}

// New instantiates the spec. The returned distribution is stateless apart
// from memoized constants, so one instance may serve many partitions.
func (a *AccessSpec) New() (AccessDist, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	switch a.Kind {
	case AccessUniform:
		return UniformAccess{}, nil
	case AccessZipf:
		return &ZipfAccess{Theta: a.Theta}, nil
	default: // AccessHotSpot
		return &HotSpotAccess{AccessFrac: a.HotAccessFrac, DataFrac: a.HotDataFrac}, nil
	}
}

// UniformAccess draws every object with equal probability. It performs
// exactly one Int63n per draw, which keeps pre-seam configurations
// byte-identical.
type UniformAccess struct{}

// Draw implements AccessDist.
func (UniformAccess) Draw(n int64, s *rng.Stream) int64 {
	return s.Int63n(n)
}

// ZipfAccess draws object ranks from a continuous power-law approximation
// of the Zipf distribution with exponent Theta in (0, 1): inverting the CDF
// of the density f(x) ∝ x^(-Theta) over [1, n] gives
//
//	x = ((n^(1-Theta) - 1)·u + 1)^(1/(1-Theta)),  u ~ U[0,1)
//
// and rank floor(x)-1 is returned. One uniform draw and two Pow calls per
// access — O(1) regardless of n, unlike the exact discrete Zipf whose
// normalization costs O(n) (prohibitive at the benchmark's 50M accounts).
// The approximation preserves the defining property (frequency of rank r
// falls off as r^(-Theta)) to within a few percent across the whole range.
type ZipfAccess struct {
	Theta float64

	memoN     int64
	memoScale float64
}

// Draw implements AccessDist.
func (z *ZipfAccess) Draw(n int64, s *rng.Stream) int64 {
	if n <= 1 {
		s.Float64() // keep the draw count independent of n
		return 0
	}
	if z.memoN != n {
		z.memoN = n
		z.memoScale = math.Pow(float64(n), 1-z.Theta) - 1
	}
	u := s.Float64()
	x := math.Pow(z.memoScale*u+1, 1/(1-z.Theta))
	obj := int64(x) - 1
	if obj < 0 {
		obj = 0
	}
	if obj >= n {
		obj = n - 1
	}
	return obj
}

// HotSpotAccess implements the p/q rule: AccessFrac of the draws land
// uniformly in the first DataFrac·n objects, the rest uniformly in the
// remainder. The hot set is at least one object and at most n-1, so both
// regions are always non-empty.
type HotSpotAccess struct {
	AccessFrac float64 // p: fraction of accesses into the hot set
	DataFrac   float64 // q: fraction of objects forming the hot set
}

// HotObjects returns the hot-set size for a partition of n objects.
func (h *HotSpotAccess) HotObjects(n int64) int64 {
	hot := int64(h.DataFrac * float64(n))
	if hot < 1 {
		hot = 1
	}
	if hot > n-1 {
		hot = n - 1
	}
	return hot
}

// Draw implements AccessDist.
func (h *HotSpotAccess) Draw(n int64, s *rng.Stream) int64 {
	if n <= 1 {
		s.Bool(h.AccessFrac)
		s.Int63n(1)
		return 0
	}
	hot := h.HotObjects(n)
	if s.Bool(h.AccessFrac) {
		return s.Int63n(hot)
	}
	return hot + s.Int63n(n-hot)
}
