package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestDebitCreditDefaults(t *testing.T) {
	cfg := DefaultDebitCreditConfig(500)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := NewDebitCredit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parts := g.Partitions()
	if len(parts) != 3 {
		t.Fatalf("clustered layout has %d partitions, want 3", len(parts))
	}
	// Table 4.1: 500 BRANCH/TELLER pages and 5 million ACCOUNT pages.
	if got := parts[DCBranch].NumPages(); got != 500 {
		t.Fatalf("BRANCH/TELLER pages = %d, want 500", got)
	}
	if got := parts[DCAccount].NumPages(); got != 5_000_000 {
		t.Fatalf("ACCOUNT pages = %d, want 5,000,000", got)
	}
}

func TestDebitCreditValidation(t *testing.T) {
	bad := DefaultDebitCreditConfig(100)
	bad.NumBranches = 0
	if _, err := NewDebitCredit(bad); err == nil {
		t.Fatal("expected error for zero branches")
	}
	bad = DefaultDebitCreditConfig(100)
	bad.HomeAccountProb = 1.5
	if _, err := NewDebitCredit(bad); err == nil {
		t.Fatal("expected error for bad K")
	}
	bad = DefaultDebitCreditConfig(100)
	bad.HistoryBlockFactor = 0
	if _, err := NewDebitCredit(bad); err == nil {
		t.Fatal("expected error for zero history block factor")
	}
}

func TestDebitCreditTransactionShape(t *testing.T) {
	g, err := NewDebitCredit(DefaultDebitCreditConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	s := rng.NewStream(1, "dc")
	for i := 0; i < 1000; i++ {
		tx := g.Next(0, s)
		if len(tx.Accesses) != 4 {
			t.Fatalf("tx has %d accesses, want 4", len(tx.Accesses))
		}
		for _, a := range tx.Accesses {
			if !a.Write {
				t.Fatal("Debit-Credit accesses must all be writes")
			}
		}
		// Order: ACCOUNT, HISTORY, TELLER, BRANCH.
		if tx.Accesses[0].Partition != DCAccount {
			t.Fatal("first access must be ACCOUNT")
		}
		if tx.Accesses[1].Partition != g.HistoryPartition() {
			t.Fatal("second access must be HISTORY")
		}
		// With clustering, teller and branch share the page.
		if tx.Accesses[2].Page != tx.Accesses[3].Page {
			t.Fatal("clustered TELLER and BRANCH must share a page")
		}
		// Only three distinct pages.
		distinct := map[[2]int64]struct{}{}
		for _, a := range tx.Accesses {
			distinct[[2]int64{int64(a.Partition), a.Page}] = struct{}{}
		}
		if len(distinct) != 3 {
			t.Fatalf("tx touches %d distinct pages, want 3", len(distinct))
		}
	}
}

func TestDebitCreditHistoryAppends(t *testing.T) {
	g, _ := NewDebitCredit(DefaultDebitCreditConfig(500))
	s := rng.NewStream(2, "dc")
	for i := 0; i < 100; i++ {
		tx := g.Next(0, s)
		h := tx.Accesses[1]
		if h.Object != int64(i) {
			t.Fatalf("history append %d went to object %d", i, h.Object)
		}
		if h.Page != int64(i/20) {
			t.Fatalf("history page = %d for record %d", h.Page, i)
		}
	}
}

func TestDebitCreditHomeAccountFraction(t *testing.T) {
	cfg := DefaultDebitCreditConfig(500)
	cfg.NumAccounts = 5_000_000 // smaller for test speed
	g, err := NewDebitCredit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.NewStream(3, "dc")
	accPerBr := cfg.NumAccounts / cfg.NumBranches
	home, n := 0, 20000
	for i := 0; i < n; i++ {
		tx := g.Next(0, s)
		accountBranch := tx.Accesses[0].Object / accPerBr
		branchPage := tx.Accesses[3].Page // clustered: page == branch id
		if accountBranch == branchPage {
			home++
		}
	}
	frac := float64(home) / float64(n)
	if math.Abs(frac-0.85) > 0.01 {
		t.Fatalf("home-account fraction = %v, want ~0.85", frac)
	}
}

func TestDebitCreditUnclustered(t *testing.T) {
	cfg := DefaultDebitCreditConfig(500)
	cfg.ClusterBranchTeller = false
	g, err := NewDebitCredit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Partitions()) != 4 {
		t.Fatalf("unclustered layout has %d partitions, want 4", len(g.Partitions()))
	}
	s := rng.NewStream(4, "dc")
	tx := g.Next(0, s)
	if len(tx.Accesses) != 4 {
		t.Fatalf("tx has %d accesses", len(tx.Accesses))
	}
	// Four distinct (partition, page) pairs: no clustering.
	distinct := map[[2]int64]struct{}{}
	for _, a := range tx.Accesses {
		distinct[[2]int64{int64(a.Partition), a.Page}] = struct{}{}
	}
	if len(distinct) != 4 {
		t.Fatalf("tx touches %d distinct pages, want 4", len(distinct))
	}
}

func TestDebitCreditTellerBelongsToBranch(t *testing.T) {
	cfg := DefaultDebitCreditConfig(500)
	g, _ := NewDebitCredit(cfg)
	s := rng.NewStream(5, "dc")
	perPage := 1 + cfg.TellersPerBranch
	for i := 0; i < 1000; i++ {
		tx := g.Next(0, s)
		branch, teller := tx.Accesses[2].Object, tx.Accesses[3].Object
		if branch%perPage != 0 {
			t.Fatalf("branch object %d not page-aligned", branch)
		}
		if teller/perPage != branch/perPage {
			t.Fatalf("teller %d not in branch %d's page", teller, branch)
		}
		if teller == branch {
			t.Fatal("teller object collided with branch object")
		}
	}
}

func TestDebitCreditSingleBranch(t *testing.T) {
	cfg := DefaultDebitCreditConfig(100)
	cfg.NumBranches = 1
	cfg.NumAccounts = 1000
	g, err := NewDebitCredit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.NewStream(6, "dc")
	for i := 0; i < 100; i++ {
		tx := g.Next(0, s)
		if tx.Accesses[0].Object >= 1000 {
			t.Fatal("account out of range with a single branch")
		}
	}
}

func TestDebitCreditTypeInfo(t *testing.T) {
	g, _ := NewDebitCredit(DefaultDebitCreditConfig(250))
	if g.NumTypes() != 1 {
		t.Fatalf("NumTypes = %d", g.NumTypes())
	}
	name, rate := g.TypeInfo(0)
	if name != "debit-credit" || rate != 250 {
		t.Fatalf("TypeInfo = %q, %v", name, rate)
	}
}

// TestDebitCreditAccountSkew: the AccountSkew spec applies to the
// within-branch account draw, so the hot set is the first accounts of every
// branch — the K% home-branch correlation must survive unchanged.
func TestDebitCreditAccountSkew(t *testing.T) {
	cfg := DefaultDebitCreditConfig(500)
	cfg.NumAccounts = 5_000_000
	cfg.AccountSkew = AccessSpec{Kind: AccessHotSpot, HotAccessFrac: 0.9, HotDataFrac: 0.01}
	g, err := NewDebitCredit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.NewStream(17, "dc")
	accPerBr := cfg.NumAccounts / cfg.NumBranches
	hotPerBr := int64(0.01 * float64(accPerBr))
	hot, n := 0, 50_000
	for i := 0; i < n; i++ {
		tx := g.Next(0, s)
		if within := tx.Accesses[0].Object % accPerBr; within < hotPerBr {
			hot++
		}
	}
	if frac := float64(hot) / float64(n); math.Abs(frac-0.9) > 0.01 {
		t.Fatalf("hot within-branch fraction = %v, want ~0.9", frac)
	}
}

// TestDebitCreditRejectsBadSkew: an invalid AccountSkew fails construction.
func TestDebitCreditRejectsBadSkew(t *testing.T) {
	cfg := DefaultDebitCreditConfig(100)
	cfg.AccountSkew = AccessSpec{Kind: AccessZipf, Theta: 1.5}
	if _, err := NewDebitCredit(cfg); err == nil {
		t.Fatal("invalid AccountSkew accepted")
	}
}
