package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSyntheticRejectsInvalidModel(t *testing.T) {
	m := validModel()
	m.TxTypes[0].RefRow = []float64{0.5, 0.4}
	if _, err := NewSynthetic(m); err == nil {
		t.Fatal("expected error")
	}
}

func TestSyntheticRefMatrixFrequencies(t *testing.T) {
	m := &Model{
		Partitions: []Partition{
			{Name: "p1", NumObjects: 1000, BlockFactor: 10},
			{Name: "p2", NumObjects: 1000, BlockFactor: 10},
			{Name: "p3", NumObjects: 1000, BlockFactor: 10},
		},
		TxTypes: []TxType{
			{Name: "t", ArrivalRate: 1, TxSize: 10, WriteProb: 0.5, RefRow: []float64{0.4, 0.1, 0.5}},
		},
	}
	g, err := NewSynthetic(m)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.NewStream(1, "test")
	counts := make([]int, 3)
	total := 0
	for i := 0; i < 20000; i++ {
		tx := g.Next(0, s)
		for _, a := range tx.Accesses {
			counts[a.Partition]++
			total++
		}
	}
	want := []float64{0.4, 0.1, 0.5}
	for p, w := range want {
		got := float64(counts[p]) / float64(total)
		if math.Abs(got-w) > 0.02 {
			t.Fatalf("partition %d frequency %v, want %v", p, got, w)
		}
	}
}

func TestSyntheticBCRuleSkew(t *testing.T) {
	// 80/20 rule: hot 20% of objects should receive ~80% of accesses.
	m := &Model{
		Partitions: []Partition{
			{Name: "p", NumObjects: 10_000, BlockFactor: 10, Subpartitions: BCRule(0.8, 0.2)},
		},
		TxTypes: []TxType{
			{Name: "t", ArrivalRate: 1, TxSize: 5, WriteProb: 0, RefRow: []float64{1}},
		},
	}
	g, err := NewSynthetic(m)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.NewStream(2, "test")
	hot, total := 0, 0
	for i := 0; i < 20000; i++ {
		tx := g.Next(0, s)
		for _, a := range tx.Accesses {
			if a.Object < 2000 { // hot 20%
				hot++
			}
			total++
		}
	}
	frac := float64(hot) / float64(total)
	if math.Abs(frac-0.8) > 0.02 {
		t.Fatalf("hot fraction = %v, want ~0.8", frac)
	}
}

func TestSyntheticTwoLevel9010(t *testing.T) {
	// Paper example: two-level 90/10 as three subpartitions 81/9/10% with
	// probabilities 1/9/90%. The hottest 10% of objects get 90% of accesses.
	m := &Model{
		Partitions: []Partition{
			{Name: "p", NumObjects: 100_000, BlockFactor: 10, Subpartitions: []Subpartition{
				{SizeFrac: 0.10, AccessProb: 0.90},
				{SizeFrac: 0.09, AccessProb: 0.09},
				{SizeFrac: 0.81, AccessProb: 0.01},
			}},
		},
		TxTypes: []TxType{
			{Name: "t", ArrivalRate: 1, TxSize: 4, WriteProb: 0, RefRow: []float64{1}},
		},
	}
	g, err := NewSynthetic(m)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.NewStream(3, "test")
	buckets := make([]int, 3)
	total := 0
	for i := 0; i < 30000; i++ {
		tx := g.Next(0, s)
		for _, a := range tx.Accesses {
			switch {
			case a.Object < 10_000:
				buckets[0]++
			case a.Object < 19_000:
				buckets[1]++
			default:
				buckets[2]++
			}
			total++
		}
	}
	want := []float64{0.90, 0.09, 0.01}
	for i, w := range want {
		got := float64(buckets[i]) / float64(total)
		if math.Abs(got-w) > 0.015 {
			t.Fatalf("bucket %d frequency %v, want %v", i, got, w)
		}
	}
}

func TestSyntheticFixedAndVariableSize(t *testing.T) {
	m := validModel()
	m.TxTypes[0].VarSize = false
	m.TxTypes[0].TxSize = 10
	g, _ := NewSynthetic(m)
	s := rng.NewStream(4, "test")
	for i := 0; i < 100; i++ {
		if got := len(g.Next(0, s).Accesses); got != 10 {
			t.Fatalf("fixed size tx has %d accesses", got)
		}
	}

	m2 := validModel()
	m2.TxTypes[0].VarSize = true
	g2, _ := NewSynthetic(m2)
	sum, n := 0, 5000
	sawVariation := false
	first := -1
	for i := 0; i < n; i++ {
		l := len(g2.Next(0, s).Accesses)
		if l < 1 {
			t.Fatalf("empty transaction")
		}
		if first == -1 {
			first = l
		} else if l != first {
			sawVariation = true
		}
		sum += l
	}
	mean := float64(sum) / float64(n)
	if !sawVariation {
		t.Fatal("variable size produced constant sizes")
	}
	if math.Abs(mean-10) > 0.8 {
		t.Fatalf("mean size = %v, want ~10", mean)
	}
}

func TestSyntheticSequentialAccesses(t *testing.T) {
	m := &Model{
		Partitions: []Partition{
			{Name: "p", NumObjects: 1000, BlockFactor: 10},
		},
		TxTypes: []TxType{
			{Name: "seq", ArrivalRate: 1, TxSize: 5, WriteProb: 1, Sequential: true, RefRow: []float64{1}},
		},
	}
	g, err := NewSynthetic(m)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.NewStream(5, "test")
	for i := 0; i < 200; i++ {
		tx := g.Next(0, s)
		for k := 1; k < len(tx.Accesses); k++ {
			prev, cur := tx.Accesses[k-1].Object, tx.Accesses[k].Object
			if cur != (prev+1)%1000 {
				t.Fatalf("non-consecutive sequential access: %d then %d", prev, cur)
			}
			if tx.Accesses[k].Partition != 0 {
				t.Fatal("sequential tx crossed partitions")
			}
		}
	}
}

func TestSyntheticWriteProb(t *testing.T) {
	m := validModel()
	m.TxTypes[0].WriteProb = 0.25
	g, _ := NewSynthetic(m)
	s := rng.NewStream(6, "test")
	writes, total := 0, 0
	for i := 0; i < 10000; i++ {
		for _, a := range g.Next(0, s).Accesses {
			if a.Write {
				writes++
			}
			total++
		}
	}
	got := float64(writes) / float64(total)
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("write fraction = %v, want 0.25", got)
	}
}

func TestSyntheticObjectsInRange(t *testing.T) {
	g, err := NewSynthetic(validModel())
	if err != nil {
		t.Fatal(err)
	}
	s := rng.NewStream(7, "test")
	for i := 0; i < 5000; i++ {
		for _, a := range g.Next(0, s).Accesses {
			p := &g.Model().Partitions[a.Partition]
			if a.Object < 0 || a.Object >= p.NumObjects {
				t.Fatalf("object %d out of range for partition %q", a.Object, p.Name)
			}
			if a.Page != p.PageOf(a.Object) {
				t.Fatalf("page %d mismatches object %d", a.Page, a.Object)
			}
		}
	}
}

func TestSyntheticSequentialPartitionAppends(t *testing.T) {
	m := &Model{
		Partitions: []Partition{
			{Name: "log-like", NumObjects: 1 << 30, BlockFactor: 20, Sequential: true},
		},
		TxTypes: []TxType{
			{Name: "t", ArrivalRate: 1, TxSize: 1, WriteProb: 1, RefRow: []float64{1}},
		},
	}
	g, err := NewSynthetic(m)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.NewStream(8, "test")
	for i := 0; i < 100; i++ {
		tx := g.Next(0, s)
		if tx.Accesses[0].Object != int64(i) {
			t.Fatalf("append %d went to object %d", i, tx.Accesses[0].Object)
		}
	}
}
