package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// arrivalSpecs enumerates one representative spec per arrival-process
// family, shared by the property tests below.
func arrivalSpecs() map[string]ArrivalSpec {
	return map[string]ArrivalSpec{
		"poisson": {Kind: ArrivalPoisson},
		"mmpp":    {Kind: ArrivalMMPP, BurstFactor: 4, BurstFrac: 0.1, BurstMeanMS: 500},
		"mmpp-extreme": {Kind: ArrivalMMPP, BurstFactor: 8, BurstFrac: 0.1,
			BurstMeanMS: 500},
		"diurnal": {Kind: ArrivalDiurnal, Amplitude: 0.9, PeriodMS: 20_000},
		"spike": {Kind: ArrivalSpike, SpikeFactor: 5, SpikeAtMS: 10_000,
			SpikeDurMS: 5_000},
		// Multipliers average 1 over the cycle, so the mean-rate test's
		// expectation applies unchanged.
		"replay": {Kind: ArrivalReplay, RateBucketMS: 5_000,
			RateMultipliers: []float64{0.5, 1.5, 0.25, 1.75}},
	}
}

// simulateArrivals drives one fresh process/stream pair to the horizon and
// returns the arrival count and the full gap sequence.
func simulateArrivals(t *testing.T, spec ArrivalSpec, rate, originMS, horizonMS float64, seed int64) (int, []float64) {
	t.Helper()
	ap, err := spec.NewProcess(rate, originMS)
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	s := rng.NewStream(seed, "arrivals")
	now := 0.0
	var gaps []float64
	for now < horizonMS {
		gap := ap.NextGapMS(now, s)
		if gap < 0 || math.IsNaN(gap) || math.IsInf(gap, 0) {
			t.Fatalf("%v: bad gap %v at t=%v", spec.Kind, gap, now)
		}
		gaps = append(gaps, gap)
		now += gap
	}
	return len(gaps) - 1, gaps // last arrival fell past the horizon
}

// TestArrivalProcessDeterministic pins the determinism contract the
// parallel experiment harness relies on: a fresh process instance fed a
// fresh stream of the same seed reproduces the exact gap sequence,
// regardless of how many other instances ran in between (worker counts and
// scheduling order cannot leak in, because every stream is per-node and
// every process instance is per-stream).
func TestArrivalProcessDeterministic(t *testing.T) {
	for name, spec := range arrivalSpecs() {
		spec := spec
		t.Run(name, func(t *testing.T) {
			_, a := simulateArrivals(t, spec, 200, 5_000, 60_000, 42)
			// Interleave a decoy instance on another seed to prove
			// instances share no hidden state.
			simulateArrivals(t, spec, 200, 5_000, 60_000, 7)
			_, b := simulateArrivals(t, spec, 200, 5_000, 60_000, 42)
			if len(a) != len(b) {
				t.Fatalf("gap sequences diverge in length: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("gap %d diverges: %v vs %v", i, a[i], b[i])
				}
			}
		})
	}
}

// TestArrivalProcessMeanRate checks the long-run mean rate of every
// process converges to the configured rate. The spike process is checked
// against its analytic arrival count (the spike window adds
// (factor-1)·duration worth of extra load); the periodic and modulated
// processes run whole numbers of cycles so the modulation averages out.
func TestArrivalProcessMeanRate(t *testing.T) {
	const (
		rate    = 200.0 // TPS
		horizon = 400_000.0
		seed    = 1
	)
	for name, spec := range arrivalSpecs() {
		spec := spec
		t.Run(name, func(t *testing.T) {
			n, _ := simulateArrivals(t, spec, rate, 0, horizon, seed)
			expected := rate * horizon / 1000
			if spec.Kind == ArrivalSpike {
				expected += rate * (spec.SpikeFactor - 1) * spec.SpikeDurMS / 1000
			}
			tol := 0.05
			if spec.Kind == ArrivalMMPP {
				// Burst placement adds variance: the horizon holds ~80
				// burst/base cycles, so allow a wider band.
				tol = 0.10
			}
			if ratio := float64(n) / expected; math.Abs(ratio-1) > tol {
				t.Errorf("%s: %d arrivals, expected %.0f (ratio %.3f, tolerance %v)",
					name, n, expected, ratio, tol)
			}
		})
	}
}

// TestPoissonMatchesRawExp pins the byte-identity contract of the Poisson
// extraction: the process performs exactly one s.Exp(meanGap) per call, so
// a pre-refactor engine and the arrival-process layer draw identical
// sequences from identical streams.
func TestPoissonMatchesRawExp(t *testing.T) {
	spec := ArrivalSpec{}
	ap, err := spec.NewProcess(250, 12_000)
	if err != nil {
		t.Fatal(err)
	}
	a := rng.NewStream(99, "arrivals")
	b := rng.NewStream(99, "arrivals")
	mean := 1000.0 / 250
	for i := 0; i < 1000; i++ {
		got := ap.NextGapMS(float64(i), a)
		want := b.Exp(mean)
		if got != want {
			t.Fatalf("draw %d: NextGapMS %v != raw Exp %v", i, got, want)
		}
	}
}

// TestSpikeWindowAnchored checks the origin shift: a spike at offset S into
// the measurement window multiplies the rate exactly over
// [origin+S, origin+S+D).
func TestSpikeWindowAnchored(t *testing.T) {
	spec := ArrivalSpec{Kind: ArrivalSpike, SpikeFactor: 8, SpikeAtMS: 3_000, SpikeDurMS: 2_000}
	ap, err := spec.NewProcess(100, 6_000)
	if err != nil {
		t.Fatal(err)
	}
	sp, ok := ap.(*Spike)
	if !ok {
		t.Fatalf("got %T, want *Spike", ap)
	}
	if sp.StartMS != 9_000 || sp.EndMS != 11_000 {
		t.Fatalf("spike window [%v, %v), want [9000, 11000)", sp.StartMS, sp.EndMS)
	}
	s := rng.NewStream(5, "arrivals")
	inside, outside := 0, 0
	now := 0.0
	for now < 20_000 {
		now += ap.NextGapMS(now, s)
		if now >= 9_000 && now < 11_000 {
			inside++
		} else if now < 20_000 {
			outside++
		}
	}
	// 2 s at 800 TPS inside vs 18 s at 100 TPS outside.
	if inside < 1_200 || outside > 2_400 {
		t.Errorf("spike misplaced: %d arrivals inside window, %d outside", inside, outside)
	}
}

// TestArrivalSpecValidate covers the parameter constraints of each family.
func TestArrivalSpecValidate(t *testing.T) {
	bad := []ArrivalSpec{
		{Kind: ArrivalKind(99)},
		{Kind: ArrivalMMPP, BurstFactor: 0.5, BurstFrac: 0.1},
		{Kind: ArrivalMMPP, BurstFactor: 2, BurstFrac: 0},
		{Kind: ArrivalMMPP, BurstFactor: 2, BurstFrac: 1},
		{Kind: ArrivalMMPP, BurstFactor: 20, BurstFrac: 0.1}, // base rate negative
		{Kind: ArrivalMMPP, BurstFactor: 2, BurstFrac: 0.1, BurstMeanMS: -1},
		{Kind: ArrivalDiurnal, Amplitude: 1, PeriodMS: 1000},
		{Kind: ArrivalDiurnal, Amplitude: -0.1, PeriodMS: 1000},
		{Kind: ArrivalDiurnal, Amplitude: 0.5},
		{Kind: ArrivalSpike, SpikeFactor: 0, SpikeDurMS: 1},
		{Kind: ArrivalSpike, SpikeFactor: 2, SpikeDurMS: 0},
		{Kind: ArrivalSpike, SpikeFactor: 2, SpikeAtMS: -1, SpikeDurMS: 1},
		{Kind: ArrivalClosedLoop, Terminals: 0, ThinkMS: 100},
		{Kind: ArrivalClosedLoop, Terminals: 10, ThinkMS: 0},
		{Kind: ArrivalClosedLoop, Terminals: 10, ThinkMS: -5},
		{Kind: ArrivalReplay, RateBucketMS: 0, RateMultipliers: []float64{1}},
		{Kind: ArrivalReplay, RateBucketMS: 100},
		{Kind: ArrivalReplay, RateBucketMS: 100, RateMultipliers: []float64{1, 0}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d (%+v): Validate accepted an invalid spec", i, spec)
		}
	}
	good := []ArrivalSpec{
		{},
		{Kind: ArrivalMMPP, BurstFactor: 1, BurstFrac: 0.5},
		{Kind: ArrivalDiurnal, Amplitude: 0, PeriodMS: 1},
		{Kind: ArrivalSpike, SpikeFactor: 0.5, SpikeDurMS: 1}, // a dip is a valid "spike"
		{Kind: ArrivalClosedLoop, Terminals: 1, ThinkMS: 0.1},
		{Kind: ArrivalReplay, RateBucketMS: 100, RateMultipliers: []float64{1}},
	}
	for i, spec := range good {
		if err := spec.Validate(); err != nil {
			t.Errorf("spec %d (%+v): Validate rejected a valid spec: %v", i, spec, err)
		}
	}
	if _, err := (&ArrivalSpec{}).NewProcess(0, 0); err == nil {
		t.Error("NewProcess accepted rate 0")
	}
	if _, err := (&ArrivalSpec{Kind: ArrivalMMPP}).NewProcess(100, 0); err == nil {
		t.Error("NewProcess accepted an invalid spec")
	}
	// A closed loop has no interarrival process: the engine must branch on
	// the kind instead of instantiating one.
	if _, err := (&ArrivalSpec{Kind: ArrivalClosedLoop, Terminals: 4, ThinkMS: 100}).NewProcess(100, 0); err == nil {
		t.Error("NewProcess built a process for a closed-loop spec")
	}
}

// TestReplayBucketsAnchored checks the replay timeline: bucket i's
// multiplier holds over [origin + i·width, origin + (i+1)·width), the
// timeline cycles past its end, and pre-origin times (warm-up) use the
// first bucket.
func TestReplayBucketsAnchored(t *testing.T) {
	spec := ArrivalSpec{Kind: ArrivalReplay, RateBucketMS: 1_000,
		RateMultipliers: []float64{2, 0.5}}
	ap, err := spec.NewProcess(100, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := ap.(*Replay)
	if !ok {
		t.Fatalf("got %T, want *Replay", ap)
	}
	mean := 1000.0 / 100
	// The stream pairs draw identical exponentials, so the modulation is
	// exactly observable as the ratio of the two gaps.
	a := rng.NewStream(3, "arrivals")
	b := rng.NewStream(3, "arrivals")
	for _, tc := range []struct {
		now  float64
		mult float64
	}{
		{0, 2},        // before origin: first bucket
		{4_500, 2},    // bucket 0
		{5_500, 0.5},  // bucket 1
		{6_500, 2},    // cycled back to bucket 0
		{12_100, 2},   // several cycles later
		{13_999, 0.5}, // end of an odd bucket
	} {
		got := r.NextGapMS(tc.now, a)
		want := b.Exp(mean / tc.mult)
		if got != want {
			t.Errorf("t=%v: gap %v, want %v (multiplier %v)", tc.now, got, want, tc.mult)
		}
	}
}

// TestArrivalKindString keeps the kind names in sync with the CLI's JSON
// vocabulary.
func TestArrivalKindString(t *testing.T) {
	want := map[ArrivalKind]string{
		ArrivalPoisson:    "poisson",
		ArrivalMMPP:       "mmpp",
		ArrivalDiurnal:    "diurnal",
		ArrivalSpike:      "spike",
		ArrivalClosedLoop: "closedloop",
		ArrivalReplay:     "replay",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), name)
		}
	}
	if ArrivalKind(42).String() != "ArrivalKind(42)" {
		t.Errorf("unknown kind renders %q", ArrivalKind(42).String())
	}
}
