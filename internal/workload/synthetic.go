package workload

import (
	"fmt"

	"repro/internal/rng"
)

// Synthetic generates transactions from the general synthetic model of
// section 3.1: partition selection by the relative reference matrix, object
// selection by the partition's subpartition (generalized b/c) rule,
// sequential or random intra-transaction access, fixed or exponentially
// distributed size.
type Synthetic struct {
	model *Model

	refDist []*rng.Discrete // per tx type: partition choice
	objDist []AccessDist    // per partition: object draw (Partition.Access)
	spDist  []*rng.Discrete // per partition: subpartition choice (nil = uniform)
	// spBase[p][k] is the first object of subpartition k of partition p;
	// spSize[p][k] its object count.
	spBase [][]int64
	spSize [][]int64
	// seqTail tracks the append position of sequential partitions, shared by
	// all transaction types (like Debit-Credit's HISTORY end-of-file).
	seqTail []int64
}

// NewSynthetic validates the model and builds the sampling structures.
func NewSynthetic(m *Model) (*Synthetic, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	g := &Synthetic{
		model:   m,
		refDist: make([]*rng.Discrete, len(m.TxTypes)),
		objDist: make([]AccessDist, len(m.Partitions)),
		spDist:  make([]*rng.Discrete, len(m.Partitions)),
		spBase:  make([][]int64, len(m.Partitions)),
		spSize:  make([][]int64, len(m.Partitions)),
		seqTail: make([]int64, len(m.Partitions)),
	}
	for p := range m.Partitions {
		d, err := m.Partitions[p].Access.New()
		if err != nil {
			return nil, err
		}
		g.objDist[p] = d
	}
	for i := range m.TxTypes {
		d, err := rng.NewDiscrete(m.TxTypes[i].RefRow)
		if err != nil {
			return nil, fmt.Errorf("workload: type %q reference row: %w", m.TxTypes[i].Name, err)
		}
		g.refDist[i] = d
	}
	for p := range m.Partitions {
		part := &m.Partitions[p]
		if len(part.Subpartitions) == 0 {
			continue
		}
		probs := make([]float64, len(part.Subpartitions))
		base := make([]int64, len(part.Subpartitions))
		size := make([]int64, len(part.Subpartitions))
		var off int64
		for k, sp := range part.Subpartitions {
			probs[k] = sp.AccessProb
			base[k] = off
			size[k] = int64(sp.SizeFrac * float64(part.NumObjects))
			if size[k] < 1 {
				size[k] = 1
			}
			off += size[k]
		}
		// Absorb rounding drift into the last subpartition.
		if off != part.NumObjects {
			size[len(size)-1] += part.NumObjects - off
			if size[len(size)-1] < 1 {
				return nil, fmt.Errorf("workload: partition %q too small for its subpartitions", part.Name)
			}
		}
		d, err := rng.NewDiscrete(probs)
		if err != nil {
			return nil, fmt.Errorf("workload: partition %q subpartitions: %w", part.Name, err)
		}
		g.spDist[p] = d
		g.spBase[p] = base
		g.spSize[p] = size
	}
	return g, nil
}

// Model returns the underlying model.
func (g *Synthetic) Model() *Model { return g.model }

// NumTypes implements Generator.
func (g *Synthetic) NumTypes() int { return len(g.model.TxTypes) }

// TypeInfo implements Generator.
func (g *Synthetic) TypeInfo(i int) (string, float64) {
	tt := &g.model.TxTypes[i]
	return tt.Name, tt.ArrivalRate
}

// pickObject selects an object in partition p according to its subpartition
// access probabilities (uniform when none are defined).
func (g *Synthetic) pickObject(p int, s *rng.Stream) int64 {
	part := &g.model.Partitions[p]
	if part.Sequential {
		obj := g.seqTail[p] % part.NumObjects
		g.seqTail[p]++
		return obj
	}
	if g.spDist[p] == nil {
		return g.objDist[p].Draw(part.NumObjects, s)
	}
	k := g.spDist[p].Sample(s)
	return g.spBase[p][k] + s.Int63n(g.spSize[p][k])
}

// size draws the number of object accesses for one transaction of type tt.
func (g *Synthetic) size(tt *TxType, s *rng.Stream) int {
	if !tt.VarSize {
		return int(tt.TxSize + 0.5)
	}
	return s.ExpInt(tt.TxSize, 1)
}

// Next implements Generator: it builds one transaction of type i.
func (g *Synthetic) Next(i int, s *rng.Stream) Tx {
	tt := &g.model.TxTypes[i]
	n := g.size(tt, s)
	tx := Tx{Type: i, TypeName: tt.Name, Accesses: make([]Access, 0, n)}

	if tt.Sequential {
		// Sequential types access one partition: the first object by the
		// partition rule, then the n-1 directly following objects.
		p := g.refDist[i].Sample(s)
		part := &g.model.Partitions[p]
		first := g.pickObject(p, s)
		for k := 0; k < n; k++ {
			obj := (first + int64(k)) % part.NumObjects
			tx.Accesses = append(tx.Accesses, Access{
				Partition: p,
				Object:    obj,
				Page:      part.PageOf(obj),
				Write:     s.Bool(tt.WriteProb),
			})
		}
		return tx
	}

	for k := 0; k < n; k++ {
		p := g.refDist[i].Sample(s)
		obj := g.pickObject(p, s)
		tx.Accesses = append(tx.Accesses, Access{
			Partition: p,
			Object:    obj,
			Page:      g.model.Partitions[p].PageOf(obj),
			Write:     s.Bool(tt.WriteProb),
		})
	}
	return tx
}
