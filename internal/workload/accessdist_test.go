package workload

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// accessSpecs enumerates one representative spec per access-distribution
// family, shared by the property tests below (mirroring arrivalSpecs).
func accessSpecs() map[string]AccessSpec {
	return map[string]AccessSpec{
		"uniform":      {},
		"zipf":         {Kind: AccessZipf, Theta: 0.8},
		"zipf-mild":    {Kind: AccessZipf, Theta: 0.3},
		"hotspot":      {Kind: AccessHotSpot, HotAccessFrac: 0.9, HotDataFrac: 0.01},
		"hotspot-8020": {Kind: AccessHotSpot, HotAccessFrac: 0.8, HotDataFrac: 0.2},
	}
}

// drawMany builds a fresh distribution/stream pair and draws count objects.
func drawMany(t *testing.T, spec AccessSpec, n int64, count int, seed int64) []int64 {
	t.Helper()
	d, err := spec.New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s := rng.NewStream(seed, "workload")
	out := make([]int64, count)
	for i := range out {
		out[i] = d.Draw(n, s)
		if out[i] < 0 || out[i] >= n {
			t.Fatalf("%v: draw %d = %d outside [0, %d)", spec.Kind, i, out[i], n)
		}
	}
	return out
}

// TestAccessDistDeterministic pins the determinism contract the parallel
// experiment harness relies on: a fresh distribution fed a fresh stream of
// the same seed reproduces the exact draw sequence, regardless of decoy
// instances (with different parameters and seeds) running in between —
// memoized constants must stay pure functions of the draw arguments.
func TestAccessDistDeterministic(t *testing.T) {
	for name, spec := range accessSpecs() {
		spec := spec
		t.Run(name, func(t *testing.T) {
			a := drawMany(t, spec, 100_000, 5_000, 42)
			drawMany(t, spec, 999, 5_000, 7) // decoy: different n and seed
			b := drawMany(t, spec, 100_000, 5_000, 42)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("draw %d diverges: %d vs %d", i, a[i], b[i])
				}
			}
		})
	}
}

// TestUniformMatchesRawInt63n pins the byte-identity contract of the seam
// extraction: the uniform distribution performs exactly one s.Int63n(n) per
// draw, so a pre-seam generator and the AccessDist path consume identical
// stream sequences — which is what keeps every existing golden byte-exact.
func TestUniformMatchesRawInt63n(t *testing.T) {
	d, err := (&AccessSpec{}).New()
	if err != nil {
		t.Fatal(err)
	}
	a := rng.NewStream(99, "workload")
	b := rng.NewStream(99, "workload")
	for i := 0; i < 2_000; i++ {
		n := int64(1 + i%50_000_000)
		if got, want := d.Draw(n, a), b.Int63n(n); got != want {
			t.Fatalf("draw %d: Draw %d != raw Int63n %d", i, got, want)
		}
	}
}

// TestZipfRankSlope checks the defining power-law property: the draw
// frequency of rank r falls off as r^(-Theta). The empirical log-log slope
// over geometrically spaced rank bins must match -Theta within tolerance.
func TestZipfRankSlope(t *testing.T) {
	const (
		theta = 0.8
		n     = 100_000
		count = 2_000_000
	)
	draws := drawMany(t, AccessSpec{Kind: AccessZipf, Theta: theta}, n, count, 11)
	freq := map[int64]int{}
	for _, d := range draws {
		freq[d]++
	}
	// Geometric bins [2^k, 2^(k+1)) of ranks; the per-rank density inside
	// each bin estimates f(r) at the bin's geometric center.
	var xs, ys []float64
	for lo := int64(1); lo*2 <= n; lo *= 2 {
		hi := lo * 2
		total := 0
		for r := lo; r < hi; r++ {
			total += freq[r-1] // rank r is object r-1
		}
		if total == 0 {
			continue
		}
		density := float64(total) / float64(hi-lo)
		xs = append(xs, math.Log(math.Sqrt(float64(lo)*float64(hi))))
		ys = append(ys, math.Log(density))
	}
	if len(xs) < 5 {
		t.Fatalf("only %d usable bins", len(xs))
	}
	slope := fitSlope(xs, ys)
	if math.Abs(slope-(-theta)) > 0.08 {
		t.Errorf("rank-frequency slope = %.3f, want %.3f ± 0.08", slope, -theta)
	}
	// And the skew must be real: rank 1 alone far above uniform share.
	if f := float64(freq[0]) / count; f < 20.0/n {
		t.Errorf("rank-1 frequency %.5f barely above uniform 1/n", f)
	}
}

// fitSlope is the least-squares slope of y over x.
func fitSlope(xs, ys []float64) float64 {
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	k := float64(len(xs))
	return (k*sxy - sx*sy) / (k*sxx - sx*sx)
}

// TestHotSpotMassSplit checks the p/q contract: HotAccessFrac of the draws
// land in the first HotDataFrac·n objects, uniformly within each region.
func TestHotSpotMassSplit(t *testing.T) {
	const (
		p     = 0.9
		q     = 0.01
		n     = 200_000
		count = 500_000
	)
	spec := AccessSpec{Kind: AccessHotSpot, HotAccessFrac: p, HotDataFrac: q}
	draws := drawMany(t, spec, n, count, 23)
	hotSize := int64(q * n)
	hot := 0
	var hotSum, coldSum float64
	for _, d := range draws {
		if d < hotSize {
			hot++
			hotSum += float64(d)
		} else {
			coldSum += float64(d)
		}
	}
	if frac := float64(hot) / count; math.Abs(frac-p) > 0.005 {
		t.Errorf("hot-set mass %.4f, want %.2f ± 0.005", frac, p)
	}
	// Uniformity within each region: the mean draw sits at the region's
	// midpoint (±2% of the region width).
	if mid := float64(hotSize-1) / 2; math.Abs(hotSum/float64(hot)-mid) > 0.02*float64(hotSize) {
		t.Errorf("hot-region mean %.1f, want %.1f", hotSum/float64(hot), mid)
	}
	coldMid := float64(hotSize) + float64(n-hotSize-1)/2
	if math.Abs(coldSum/float64(count-hot)-coldMid) > 0.02*float64(n-hotSize) {
		t.Errorf("cold-region mean %.1f, want %.1f", coldSum/float64(count-hot), coldMid)
	}
}

// TestZipfConcentration sanity-checks the headline cache property the skew
// experiment banks on: at Theta=0.8, a small head of the object space
// absorbs a large share of the accesses.
func TestZipfConcentration(t *testing.T) {
	const n = 50_000
	draws := drawMany(t, AccessSpec{Kind: AccessZipf, Theta: 0.8}, n, 500_000, 5)
	sorted := append([]int64(nil), draws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Share of draws landing in the first 10% of the object space.
	idx := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= n/10 })
	if share := float64(idx) / float64(len(sorted)); share < 0.55 {
		t.Errorf("top-10%% object share = %.3f, want >= 0.55 at theta 0.8", share)
	}
}

// TestAccessDistSmallN covers the degenerate sizes: every family must stay
// in range (and keep drawing from the stream) for n = 1 and n = 2.
func TestAccessDistSmallN(t *testing.T) {
	for name, spec := range accessSpecs() {
		spec := spec
		t.Run(name, func(t *testing.T) {
			for _, n := range []int64{1, 2} {
				drawMany(t, spec, n, 100, 3)
			}
		})
	}
}

// TestAccessSpecValidate covers the parameter constraints of each family.
func TestAccessSpecValidate(t *testing.T) {
	bad := []AccessSpec{
		{Kind: AccessKind(99)},
		{Kind: AccessZipf, Theta: 0},
		{Kind: AccessZipf, Theta: 1},
		{Kind: AccessZipf, Theta: -0.5},
		{Kind: AccessHotSpot, HotAccessFrac: 0.9, HotDataFrac: 0},
		{Kind: AccessHotSpot, HotAccessFrac: 0.9, HotDataFrac: 1},
		{Kind: AccessHotSpot, HotAccessFrac: 0.05, HotDataFrac: 0.2}, // colder than uniform
		{Kind: AccessHotSpot, HotAccessFrac: 1, HotDataFrac: 0.1},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d (%+v): Validate accepted an invalid spec", i, spec)
		}
		if _, err := spec.New(); err == nil {
			t.Errorf("spec %d (%+v): New accepted an invalid spec", i, spec)
		}
	}
	good := []AccessSpec{
		{},
		{Kind: AccessZipf, Theta: 0.99},
		{Kind: AccessHotSpot, HotAccessFrac: 0.2, HotDataFrac: 0.2}, // uniform edge
	}
	for i, spec := range good {
		if err := spec.Validate(); err != nil {
			t.Errorf("spec %d (%+v): Validate rejected a valid spec: %v", i, spec, err)
		}
	}
}

// TestAccessKindString keeps the kind names in sync with the CLI's JSON
// vocabulary.
func TestAccessKindString(t *testing.T) {
	want := map[AccessKind]string{
		AccessUniform: "uniform",
		AccessZipf:    "zipf",
		AccessHotSpot: "hotspot",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), name)
		}
	}
	if AccessKind(42).String() != "AccessKind(42)" {
		t.Errorf("unknown kind renders %q", AccessKind(42).String())
	}
}
