// Package workload implements TPSIM's SOURCE component: the database model
// (partitions of objects grouped into pages) and three workload generators —
// the general synthetic model with a relative reference matrix and a
// generalized b/c access rule, the Debit-Credit benchmark generator, and a
// trace-driven generator (see package trace for the trace format itself).
package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Access is a single object reference of a transaction. The engine locks on
// either the page or the object depending on the partition's CC mode, and
// fixes the page in the buffer.
type Access struct {
	Partition int
	Object    int64
	Page      int64
	Write     bool
}

// Tx is one generated transaction: an ordered list of object accesses.
type Tx struct {
	Type     int
	TypeName string
	Accesses []Access
}

// Update reports whether the transaction writes at least one object
// (such transactions write a log page at commit).
func (t *Tx) Update() bool {
	for i := range t.Accesses {
		if t.Accesses[i].Write {
			return true
		}
	}
	return false
}

// Subpartition describes one slice of a partition under the generalized
// b/c rule (section 3.1): SizeFrac of the objects receive AccessProb of the
// partition's accesses, uniformly within the slice.
type Subpartition struct {
	SizeFrac   float64
	AccessProb float64
}

// Partition is a unit of the database: a file, relation, relation fragment
// or index. It defines the reference distribution, the device allocation
// unit, and the concurrency-control granule choice.
type Partition struct {
	Name        string
	NumObjects  int64
	BlockFactor int // objects per page
	// Subpartitions implement the generalized b/c rule. Empty means uniform.
	Subpartitions []Subpartition
	// Access is the object-draw distribution inside the partition (the zero
	// value is uniform). Mutually exclusive with Subpartitions — the b/c
	// rule already defines the skew.
	Access AccessSpec
	// Sequential marks append-only partitions (e.g. Debit-Credit HISTORY):
	// every access goes to the current end of file.
	Sequential bool
}

// NumPages returns the partition size in pages.
func (p *Partition) NumPages() int64 {
	bf := int64(p.BlockFactor)
	if bf <= 0 {
		bf = 1
	}
	return (p.NumObjects + bf - 1) / bf
}

// PageOf maps an object number to its page number. Object numbers outside
// [0, NumObjects) wrap onto the valid page range: Sequential (append-only)
// partitions hand PageOf their raw append cursor, which exceeds NumObjects
// once the file has been filled and cycled — without the wrap that mapped
// to pages past NumPages()-1, i.e. pages no device allocation contains.
func (p *Partition) PageOf(object int64) int64 {
	bf := int64(p.BlockFactor)
	if bf <= 0 {
		bf = 1
	}
	page := object / bf
	if np := p.NumPages(); page >= np || page < 0 {
		page %= np
		if page < 0 {
			page += np
		}
	}
	return page
}

// Validate checks partition consistency: positive size and block factor,
// subpartition fractions and probabilities each summing to 1.
func (p *Partition) Validate() error {
	if p.NumObjects <= 0 {
		return fmt.Errorf("workload: partition %q: NumObjects = %d", p.Name, p.NumObjects)
	}
	if p.BlockFactor <= 0 {
		return fmt.Errorf("workload: partition %q: BlockFactor = %d", p.Name, p.BlockFactor)
	}
	if err := p.Access.Validate(); err != nil {
		return fmt.Errorf("workload: partition %q: %w", p.Name, err)
	}
	if len(p.Subpartitions) == 0 {
		return nil
	}
	if p.Access.Kind != AccessUniform {
		return fmt.Errorf("workload: partition %q: Access skew and Subpartitions are mutually exclusive", p.Name)
	}
	sizeSum, probSum := 0.0, 0.0
	for i, sp := range p.Subpartitions {
		if sp.SizeFrac <= 0 || sp.AccessProb < 0 {
			return fmt.Errorf("workload: partition %q subpartition %d: size=%v prob=%v",
				p.Name, i, sp.SizeFrac, sp.AccessProb)
		}
		sizeSum += sp.SizeFrac
		probSum += sp.AccessProb
	}
	if math.Abs(sizeSum-1) > 1e-6 {
		return fmt.Errorf("workload: partition %q: subpartition sizes sum to %v, want 1", p.Name, sizeSum)
	}
	if math.Abs(probSum-1) > 1e-6 {
		return fmt.Errorf("workload: partition %q: subpartition access probs sum to %v, want 1", p.Name, probSum)
	}
	return nil
}

// BCRule builds the two subpartitions of the classic b/c rule: b% of
// accesses to c% of the objects (e.g. BCRule(0.8, 0.2) is the 80/20 rule).
func BCRule(b, c float64) []Subpartition {
	return []Subpartition{
		{SizeFrac: c, AccessProb: b},
		{SizeFrac: 1 - c, AccessProb: 1 - b},
	}
}

// TxType describes one transaction type of the synthetic model (Table 3.1).
type TxType struct {
	Name        string
	ArrivalRate float64 // transactions per second
	TxSize      float64 // mean number of object accesses
	WriteProb   float64 // probability each access is a write
	Sequential  bool    // accesses restricted to one partition, consecutive objects
	VarSize     bool    // exponential tx size over the mean, else fixed
	// RefRow is the transaction type's row of the relative reference matrix
	// (Table 3.2): the fraction of this type's accesses directed at each
	// partition. Must sum to 1 over the model's partitions.
	RefRow []float64
}

// Model is the complete synthetic database and load description.
type Model struct {
	Partitions []Partition
	TxTypes    []TxType
}

// Validate checks the model: at least one partition and type, valid
// partitions, reference-matrix rows matching the partition count and
// summing to 1, non-negative rates and probabilities.
func (m *Model) Validate() error {
	if len(m.Partitions) == 0 {
		return fmt.Errorf("workload: no partitions")
	}
	if len(m.TxTypes) == 0 {
		return fmt.Errorf("workload: no transaction types")
	}
	for i := range m.Partitions {
		if err := m.Partitions[i].Validate(); err != nil {
			return err
		}
	}
	for i := range m.TxTypes {
		tt := &m.TxTypes[i]
		if tt.ArrivalRate < 0 {
			return fmt.Errorf("workload: type %q: arrival rate %v", tt.Name, tt.ArrivalRate)
		}
		if tt.TxSize < 1 {
			return fmt.Errorf("workload: type %q: TxSize %v < 1", tt.Name, tt.TxSize)
		}
		if tt.WriteProb < 0 || tt.WriteProb > 1 {
			return fmt.Errorf("workload: type %q: WriteProb %v", tt.Name, tt.WriteProb)
		}
		if len(tt.RefRow) != len(m.Partitions) {
			return fmt.Errorf("workload: type %q: RefRow has %d entries, want %d",
				tt.Name, len(tt.RefRow), len(m.Partitions))
		}
		sum := 0.0
		for j, f := range tt.RefRow {
			if f < 0 {
				return fmt.Errorf("workload: type %q: RefRow[%d] = %v", tt.Name, j, f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("workload: type %q: RefRow sums to %v, want 1", tt.Name, sum)
		}
	}
	return nil
}

// Generator produces transactions of a single transaction type. The engine
// runs one arrival process per type, drawing interarrival times from the
// type's rate and calling Next for each arrival.
type Generator interface {
	// NumTypes returns how many transaction types the generator produces.
	NumTypes() int
	// TypeInfo returns the name and arrival rate of type i.
	TypeInfo(i int) (name string, rate float64)
	// Next generates the next transaction of type i.
	Next(i int, s *rng.Stream) Tx
}
