package workload

import (
	"fmt"

	"repro/internal/rng"
)

// Partition indices produced by the Debit-Credit generator. With clustering
// (the paper's default, section 4.1) BRANCH and TELLER share one partition
// whose pages each hold one branch record plus its tellers, so a transaction
// touches only three distinct pages.
const (
	DCAccount = 0 // ACCOUNT partition
	DCBranch  = 1 // BRANCH/TELLER partition (clustered) or BRANCH (unclustered)
	DCTeller  = 2 // TELLER partition (unclustered only)
	DCHistory = 3 // placeholder; use DebitCredit.HistoryPartition()
)

// DebitCreditConfig parameterizes the Debit-Credit benchmark generator
// (section 3.1, [An85]). The zero value is not valid; use
// DefaultDebitCreditConfig for the paper's Table 4.1 settings.
type DebitCreditConfig struct {
	NumBranches      int64
	TellersPerBranch int64
	NumAccounts      int64

	AccountBlockFactor int // objects per ACCOUNT page (10 in Table 4.1)
	TellerBlockFactor  int // objects per TELLER page, unclustered (10)
	HistoryBlockFactor int // records per HISTORY page (20)

	// HomeAccountProb is K%: the probability an ACCOUNT access goes to an
	// account of the selected branch ([An85] uses 0.85).
	HomeAccountProb float64

	// ClusterBranchTeller stores TELLER records in their BRANCH record's
	// page, reducing page accesses per transaction from four to three.
	ClusterBranchTeller bool

	// AccountSkew is the access distribution of the within-branch account
	// draw (the zero value is uniform, the benchmark's definition). Skew is
	// applied inside the selected branch, preserving the K% home-branch
	// correlation: the hot set is the first accounts of every branch, i.e.
	// HotDataFrac × (accounts/branch) ÷ block factor hot pages per branch.
	AccountSkew AccessSpec

	ArrivalRate float64 // transactions per second
}

// DefaultDebitCreditConfig returns the Table 4.1 parameter settings: 500
// branches, 10 tellers/branch, 50M accounts, block factors 10/10/20, K=85%,
// BRANCH-TELLER clustering on.
func DefaultDebitCreditConfig(arrivalRate float64) DebitCreditConfig {
	return DebitCreditConfig{
		NumBranches:         500,
		TellersPerBranch:    10,
		NumAccounts:         50_000_000,
		AccountBlockFactor:  10,
		TellerBlockFactor:   10,
		HistoryBlockFactor:  20,
		HomeAccountProb:     0.85,
		ClusterBranchTeller: true,
		ArrivalRate:         arrivalRate,
	}
}

// Validate checks the configuration.
func (c *DebitCreditConfig) Validate() error {
	switch {
	case c.NumBranches <= 0:
		return fmt.Errorf("workload: debit-credit: NumBranches = %d", c.NumBranches)
	case c.TellersPerBranch <= 0:
		return fmt.Errorf("workload: debit-credit: TellersPerBranch = %d", c.TellersPerBranch)
	case c.NumAccounts < c.NumBranches:
		return fmt.Errorf("workload: debit-credit: NumAccounts = %d < NumBranches = %d", c.NumAccounts, c.NumBranches)
	case c.AccountBlockFactor <= 0 || c.TellerBlockFactor <= 0 || c.HistoryBlockFactor <= 0:
		return fmt.Errorf("workload: debit-credit: non-positive block factor")
	case c.HomeAccountProb < 0 || c.HomeAccountProb > 1:
		return fmt.Errorf("workload: debit-credit: HomeAccountProb = %v", c.HomeAccountProb)
	case c.ArrivalRate < 0:
		return fmt.Errorf("workload: debit-credit: ArrivalRate = %v", c.ArrivalRate)
	}
	return c.AccountSkew.Validate()
}

// DebitCredit generates the Debit-Credit workload: a single transaction type
// with four object accesses (ACCOUNT, HISTORY, TELLER, BRANCH — the small
// record types last to minimize their lock holding time), 100% updates, and
// a sequentially appended HISTORY file.
type DebitCredit struct {
	cfg         DebitCreditConfig
	partitions  []Partition
	accPerBr    int64
	accDist     AccessDist
	historyTail int64
	historyPart int
}

// NewDebitCredit validates the configuration and builds the generator.
func NewDebitCredit(cfg DebitCreditConfig) (*DebitCredit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &DebitCredit{cfg: cfg, accPerBr: cfg.NumAccounts / cfg.NumBranches}
	var err error
	if g.accDist, err = cfg.AccountSkew.New(); err != nil {
		return nil, err
	}

	account := Partition{
		Name:        "ACCOUNT",
		NumObjects:  cfg.NumAccounts,
		BlockFactor: cfg.AccountBlockFactor,
	}
	history := Partition{
		Name:        "HISTORY",
		NumObjects:  1 << 50, // append-only; effectively unbounded
		BlockFactor: cfg.HistoryBlockFactor,
		Sequential:  true,
	}
	if cfg.ClusterBranchTeller {
		// One page per branch: the branch record plus its tellers.
		bt := Partition{
			Name:        "BRANCH/TELLER",
			NumObjects:  cfg.NumBranches * (1 + cfg.TellersPerBranch),
			BlockFactor: int(1 + cfg.TellersPerBranch),
		}
		g.partitions = []Partition{account, bt, history}
		g.historyPart = 2
	} else {
		branch := Partition{Name: "BRANCH", NumObjects: cfg.NumBranches, BlockFactor: 1}
		teller := Partition{
			Name:        "TELLER",
			NumObjects:  cfg.NumBranches * cfg.TellersPerBranch,
			BlockFactor: cfg.TellerBlockFactor,
		}
		g.partitions = []Partition{account, branch, teller, history}
		g.historyPart = 3
	}
	return g, nil
}

// Partitions returns the generator's database partitions, in the order used
// by the Access.Partition indices it emits.
func (g *DebitCredit) Partitions() []Partition { return g.partitions }

// HistoryPartition returns the index of the HISTORY partition.
func (g *DebitCredit) HistoryPartition() int { return g.historyPart }

// NumTypes implements Generator. Debit-Credit has one transaction type.
func (g *DebitCredit) NumTypes() int { return 1 }

// TypeInfo implements Generator.
func (g *DebitCredit) TypeInfo(int) (string, float64) {
	return "debit-credit", g.cfg.ArrivalRate
}

// Next implements Generator. Record types are referenced in the same order
// in every transaction (ACCOUNT, HISTORY, BRANCH, TELLER — the small record
// types last to keep their lock holding times short), so no deadlocks can
// occur (section 3.1).
func (g *DebitCredit) Next(_ int, s *rng.Stream) Tx {
	c := &g.cfg
	branch := s.Int63n(c.NumBranches)
	teller := s.Int63n(c.TellersPerBranch)

	// ACCOUNT: with probability K it belongs to the selected branch; the
	// within-branch account is drawn from the configured access
	// distribution (uniform by default).
	var account int64
	if s.Bool(c.HomeAccountProb) || c.NumBranches == 1 {
		account = branch*g.accPerBr + g.accDist.Draw(g.accPerBr, s)
	} else {
		other := s.Int63n(c.NumBranches - 1)
		if other >= branch {
			other++
		}
		account = other*g.accPerBr + g.accDist.Draw(g.accPerBr, s)
	}

	// HISTORY: append at end of file.
	hist := g.historyTail
	g.historyTail++

	accounts := make([]Access, 0, 4)
	accP := &g.partitions[DCAccount]
	accounts = append(accounts, Access{
		Partition: DCAccount, Object: account, Page: accP.PageOf(account), Write: true,
	})
	histP := &g.partitions[g.historyPart]
	accounts = append(accounts, Access{
		Partition: g.historyPart, Object: hist, Page: histP.PageOf(hist), Write: true,
	})
	// BRANCH before TELLER: with clustering the TELLER access then always
	// hits the page its BRANCH access just fetched (footnote 6's hit-ratio
	// pattern: ~95% BRANCH, 100% TELLER).
	if c.ClusterBranchTeller {
		btP := &g.partitions[DCBranch]
		perPage := 1 + c.TellersPerBranch
		branchObj := branch * perPage
		tellerObj := branch*perPage + 1 + teller
		accounts = append(accounts,
			Access{Partition: DCBranch, Object: branchObj, Page: btP.PageOf(branchObj), Write: true},
			Access{Partition: DCBranch, Object: tellerObj, Page: btP.PageOf(tellerObj), Write: true},
		)
	} else {
		tellerObj := branch*c.TellersPerBranch + teller
		telP := &g.partitions[DCTeller]
		brP := &g.partitions[DCBranch]
		accounts = append(accounts,
			Access{Partition: DCBranch, Object: branch, Page: brP.PageOf(branch), Write: true},
			Access{Partition: DCTeller, Object: tellerObj, Page: telP.PageOf(tellerObj), Write: true},
		)
	}
	return Tx{Type: 0, TypeName: "debit-credit", Accesses: accounts}
}
