package lru

import (
	"testing"
	"testing/quick"
)

func TestBasicPutGet(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("get 1 = %q %v", v, ok)
	}
	if c.Len() != 2 || c.Cap() != 2 {
		t.Fatalf("len/cap = %d/%d", c.Len(), c.Cap())
	}
}

func TestEvictsLRU(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	ek, ev, evicted := c.Put(3, "c")
	if !evicted || ek != 1 || ev != "a" {
		t.Fatalf("evicted %v %q %v, want 1 a true", ek, ev, evicted)
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("evicted entry still present")
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	c.Get(1) // 2 is now LRU
	ek, _, evicted := c.Put(3, "c")
	if !evicted || ek != 2 {
		t.Fatalf("evicted %v, want 2", ek)
	}
}

func TestPeekDoesNotRefresh(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	c.Peek(1) // recency unchanged: 1 is still LRU
	ek, _, _ := c.Put(3, "c")
	if ek != 1 {
		t.Fatalf("evicted %v, want 1", ek)
	}
}

func TestTouch(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if !c.Touch(1) {
		t.Fatal("touch existing failed")
	}
	if c.Touch(9) {
		t.Fatal("touch missing succeeded")
	}
	ek, _, _ := c.Put(3, "c")
	if ek != 2 {
		t.Fatalf("evicted %v, want 2 after touch", ek)
	}
}

func TestUpdate(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	if !c.Update(1, "a2") {
		t.Fatal("update failed")
	}
	if v, _ := c.Peek(1); v != "a2" {
		t.Fatalf("value = %q", v)
	}
	if c.Update(9, "x") {
		t.Fatal("update of missing key succeeded")
	}
}

func TestPutExistingReplaces(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	_, _, evicted := c.Put(1, "a2")
	if evicted {
		t.Fatal("replacing must not evict")
	}
	if v, _ := c.Get(1); v != "a2" {
		t.Fatalf("value = %q", v)
	}
}

func TestRemove(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	if v, ok := c.Remove(1); !ok || v != "a" {
		t.Fatalf("remove = %q %v", v, ok)
	}
	if _, ok := c.Remove(1); ok {
		t.Fatal("double remove succeeded")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d", c.Len())
	}
	// Slot reuse after remove.
	c.Put(2, "b")
	c.Put(3, "c")
	if c.Len() != 2 {
		t.Fatalf("len = %d after reuse", c.Len())
	}
}

func TestFindOldest(t *testing.T) {
	c := New[int, bool](4)
	c.Put(1, true)  // dirty
	c.Put(2, false) // clean
	c.Put(3, true)
	c.Put(4, false)
	// Oldest clean entry is 2.
	k, ok := c.FindOldest(func(_ int, dirty bool) bool { return !dirty })
	if !ok || k != 2 {
		t.Fatalf("oldest clean = %v %v, want 2", k, ok)
	}
	// Oldest overall is 1.
	if k, ok := c.Oldest(); !ok || k != 1 {
		t.Fatalf("oldest = %v", k)
	}
	// No entry matching.
	if _, ok := c.FindOldest(func(int, bool) bool { return false }); ok {
		t.Fatal("found nonexistent entry")
	}
}

func TestOldestEmpty(t *testing.T) {
	c := New[int, int](1)
	if _, ok := c.Oldest(); ok {
		t.Fatal("oldest on empty cache")
	}
}

func TestEachOrder(t *testing.T) {
	c := New[int, int](3)
	c.Put(1, 0)
	c.Put(2, 0)
	c.Put(3, 0)
	c.Get(1) // order MRU→LRU: 1, 3, 2
	var got []int
	c.Each(func(k, _ int) bool { got = append(got, k); return true })
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	// Early stop.
	var first []int
	c.Each(func(k, _ int) bool { first = append(first, k); return false })
	if len(first) != 1 {
		t.Fatalf("early stop visited %d", len(first))
	}
}

func TestCapacityOnePanicsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	New[int, int](0)
}

func TestCapacityOne(t *testing.T) {
	c := New[int, int](1)
	c.Put(1, 10)
	ek, _, evicted := c.Put(2, 20)
	if !evicted || ek != 1 {
		t.Fatalf("evicted = %v %v", ek, evicted)
	}
	if v, ok := c.Get(2); !ok || v != 20 {
		t.Fatalf("get = %v %v", v, ok)
	}
}

// Property: the cache behaves identically to a naive reference
// implementation under random Put/Get/Remove sequences.
func TestMatchesReferenceModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
	}
	f := func(ops []op) bool {
		c := New[uint8, int](4)
		// Reference: slice ordered MRU first.
		type entry struct {
			k uint8
			v int
		}
		var ref []entry
		find := func(k uint8) int {
			for i := range ref {
				if ref[i].k == k {
					return i
				}
			}
			return -1
		}
		val := 0
		for _, o := range ops {
			k := o.Key % 8
			switch o.Kind % 3 {
			case 0: // Put
				val++
				if i := find(k); i >= 0 {
					ref = append(ref[:i], ref[i+1:]...)
				} else if len(ref) == 4 {
					ref = ref[:3]
				}
				ref = append([]entry{{k, val}}, ref...)
				c.Put(k, val)
			case 1: // Get
				gotV, gotOK := c.Get(k)
				i := find(k)
				if (i >= 0) != gotOK {
					return false
				}
				if i >= 0 {
					if gotV != ref[i].v {
						return false
					}
					e := ref[i]
					ref = append(ref[:i], ref[i+1:]...)
					ref = append([]entry{e}, ref...)
				}
			case 2: // Remove
				_, gotOK := c.Remove(k)
				i := find(k)
				if (i >= 0) != gotOK {
					return false
				}
				if i >= 0 {
					ref = append(ref[:i], ref[i+1:]...)
				}
			}
			if c.Len() != len(ref) {
				return false
			}
		}
		// Final order check.
		var order []uint8
		c.Each(func(k uint8, _ int) bool { order = append(order, k); return true })
		if len(order) != len(ref) {
			return false
		}
		for i := range ref {
			if order[i] != ref[i].k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
