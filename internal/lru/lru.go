// Package lru provides the least-recently-used cache structure underlying
// every caching level of TPSIM: the main-memory database buffer, the NVEM
// second-level cache, and the disk-controller caches. It supports the
// predicate-based victim search non-volatile disk caches need ("replace the
// least recently accessed unmodified page", section 3.3).
package lru

// node is a doubly-linked-list element. index 0 is a sentinel.
type node[K comparable, V any] struct {
	key        K
	value      V
	prev, next int
}

// Cache is an LRU cache with O(1) Get/Put/Remove and ordered scans. The
// zero value is not usable; call New.
type Cache[K comparable, V any] struct {
	capacity int
	nodes    []node[K, V] // nodes[0] is the sentinel of the circular list
	index    map[K]int
	free     []int
}

// New creates an LRU cache holding at most capacity entries. capacity must
// be positive.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("lru: non-positive capacity")
	}
	c := &Cache[K, V]{
		capacity: capacity,
		nodes:    make([]node[K, V], 1, capacity+1),
		index:    make(map[K]int, capacity),
	}
	c.nodes[0].prev = 0
	c.nodes[0].next = 0
	return c
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int { return len(c.index) }

// Cap returns the capacity.
func (c *Cache[K, V]) Cap() int { return c.capacity }

func (c *Cache[K, V]) unlink(i int) {
	n := &c.nodes[i]
	c.nodes[n.prev].next = n.next
	c.nodes[n.next].prev = n.prev
}

// pushFront links node i as most recently used.
func (c *Cache[K, V]) pushFront(i int) {
	head := &c.nodes[0]
	n := &c.nodes[i]
	n.prev = 0
	n.next = head.next
	c.nodes[head.next].prev = i
	head.next = i
}

// Get returns the value for k and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	i, ok := c.index[k]
	if !ok {
		var zero V
		return zero, false
	}
	c.unlink(i)
	c.pushFront(i)
	return c.nodes[i].value, true
}

// Peek returns the value for k without affecting recency.
func (c *Cache[K, V]) Peek(k K) (V, bool) {
	i, ok := c.index[k]
	if !ok {
		var zero V
		return zero, false
	}
	return c.nodes[i].value, true
}

// Touch marks k most recently used if present.
func (c *Cache[K, V]) Touch(k K) bool {
	i, ok := c.index[k]
	if !ok {
		return false
	}
	c.unlink(i)
	c.pushFront(i)
	return true
}

// Update replaces the value for k (keeping its recency) if present.
func (c *Cache[K, V]) Update(k K, v V) bool {
	i, ok := c.index[k]
	if !ok {
		return false
	}
	c.nodes[i].value = v
	return true
}

// Put inserts k as most recently used. If k is present its value is
// replaced. If the cache is full, the least recently used entry is evicted
// and returned with evicted=true.
func (c *Cache[K, V]) Put(k K, v V) (evictedK K, evictedV V, evicted bool) {
	if i, ok := c.index[k]; ok {
		c.nodes[i].value = v
		c.unlink(i)
		c.pushFront(i)
		return
	}
	if len(c.index) >= c.capacity {
		tail := c.nodes[0].prev
		evictedK = c.nodes[tail].key
		evictedV = c.nodes[tail].value
		evicted = true
		c.removeIndex(tail)
	}
	var i int
	if len(c.free) > 0 {
		i = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	} else {
		c.nodes = append(c.nodes, node[K, V]{})
		i = len(c.nodes) - 1
	}
	c.nodes[i].key = k
	c.nodes[i].value = v
	c.index[k] = i
	c.pushFront(i)
	return
}

func (c *Cache[K, V]) removeIndex(i int) {
	c.unlink(i)
	delete(c.index, c.nodes[i].key)
	var zeroK K
	var zeroV V
	c.nodes[i].key = zeroK
	c.nodes[i].value = zeroV
	c.free = append(c.free, i)
}

// Remove deletes k, returning its value.
func (c *Cache[K, V]) Remove(k K) (V, bool) {
	i, ok := c.index[k]
	if !ok {
		var zero V
		return zero, false
	}
	v := c.nodes[i].value
	c.removeIndex(i)
	return v, true
}

// FindOldest scans from least to most recently used and returns the first
// key whose entry satisfies pred. Used by non-volatile disk caches to find
// the least recently used clean frame.
func (c *Cache[K, V]) FindOldest(pred func(K, V) bool) (K, bool) {
	for i := c.nodes[0].prev; i != 0; i = c.nodes[i].prev {
		if pred(c.nodes[i].key, c.nodes[i].value) {
			return c.nodes[i].key, true
		}
	}
	var zero K
	return zero, false
}

// Oldest returns the least recently used key.
func (c *Cache[K, V]) Oldest() (K, bool) {
	tail := c.nodes[0].prev
	if tail == 0 {
		var zero K
		return zero, false
	}
	return c.nodes[tail].key, true
}

// Each calls fn for every entry from most to least recently used, stopping
// if fn returns false.
func (c *Cache[K, V]) Each(fn func(K, V) bool) {
	for i := c.nodes[0].next; i != 0; i = c.nodes[i].next {
		if !fn(c.nodes[i].key, c.nodes[i].value) {
			return
		}
	}
}
