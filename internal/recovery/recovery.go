// Package recovery models crash recovery for the TPSIM engine (the
// Gray & Reuter-style redo recovery the paper's NOFORCE argument rests
// on, sections 3.2 and 4.2): after a system crash the main-memory buffer
// and every volatile cache are lost, while non-volatile tiers — NVEM
// (cache, write buffer and resident partitions), non-volatile disk
// caches, SSDs and the disks themselves — keep their pages. Restart then
// replays the redo log written since the last fuzzy checkpoint and
// re-reads the pages whose only current version was in the lost buffer.
//
// The package is the pure model: it captures the crash-time state
// (Snapshot), knows which tiers survive (CacheSurvives), and prices the
// restart from the device parameters (LogReadMS, RedoReadMS,
// Snapshot.EstimateMS). The simulated restart — the same scan and redo
// I/O executed through the real device models — lives in internal/core,
// which reports both so the analytic formula can be cross-checked
// against the event-driven run.
package recovery

import (
	"repro/internal/buffer"
	"repro/internal/storage"
)

// Snapshot captures the recovery-relevant state of a node at the instant
// it crashes. The buffer manager's checkpoint bookkeeping supplies it.
type Snapshot struct {
	// LogPages is the redo log length: log pages written since the last
	// completed fuzzy checkpoint. Restart scans all of them.
	LogPages int64
	// RedoPages counts the dirty main-memory frames lost in the crash;
	// each needs one page read (and re-application) during redo.
	RedoPages int
	// Resident is the total number of occupied main-memory frames at the
	// crash — the cold-buffer volume the rewarm phase re-reads on demand
	// after the node rejoins (it is not part of restart time; the
	// throughput ramp-back pays for it).
	Resident int
}

// Times parameterizes the analytic restart-time formula with the
// device-dependent per-page delays.
type Times struct {
	// RebootMS is the fixed failure-detection plus system-restart delay
	// before the redo scan can begin.
	RebootMS float64
	// LogReadMS is the sequential per-page read time of the log device.
	LogReadMS float64
	// RedoReadMS is the per-page read time of the database device(s) the
	// redo pass re-reads modified pages from.
	RedoReadMS float64
}

// EstimateMS is the analytic restart-time formula (DESIGN.md section 7):
//
//	restart = reboot + LogPages·logRead + RedoPages·redoRead
//
// It prices the same work the simulated restart executes, minus queueing
// (the restarting node scans alone, so contention is usually nil).
func (s Snapshot) EstimateMS(t Times) float64 {
	return t.RebootMS + float64(s.LogPages)*t.LogReadMS + float64(s.RedoPages)*t.RedoReadMS
}

// CacheSurvives reports whether a disk-unit type keeps its cache content
// across a crash: only volatile controller caches lose their pages.
// (Disk media, SSD store and non-volatile caches always survive.)
func CacheSurvives(t storage.DiskUnitType) bool {
	return t != storage.VolatileCache
}

// DeviceReadMS returns the expected per-page read time of a disk-unit
// during the restart scan: controller service plus transmission, plus a
// physical disk access unless the page is held in semiconductor store —
// SSDs always, non-volatile read caches for the recently written pages a
// redo scan touches. A write-buffer-only cache is never probed on reads,
// and a volatile cache is empty after the crash, so both pay the disk.
func DeviceReadMS(u storage.DiskUnitConfig) float64 {
	base := u.ContrDelay + u.TransDelay
	switch {
	case u.Type == storage.SSD:
		return base
	case u.Type == storage.NVCache && !u.WriteBufferOnly:
		return base
	default:
		return base + u.DiskDelay
	}
}

// LogReadMS returns the sequential per-page log read time for a log
// allocation: an NVEM-resident log reads at NVEM transfer speed; any
// disk-based allocation (including behind the NVEM write buffer, whose
// pages have been destaged to the device by restart time) reads from its
// disk-unit.
func LogReadMS(log buffer.LogAlloc, units []storage.DiskUnitConfig, nvemDelayMS float64) float64 {
	if log.NVEMResident {
		return nvemDelayMS
	}
	return DeviceReadMS(units[log.DiskUnit])
}

// RedoReadMS returns the per-page redo read time for a partition
// allocation. NVEM-resident partitions redo at NVEM speed. A partition
// with an NVEM second-level cache still redoes from its device: under
// NOFORCE a page lives in at most one of MM and NVEM, so the dirty
// frames lost in the crash had no NVEM copy. Main-memory-resident
// partitions use NOFORCE propagation with no device backing in this
// model; their redo is folded into the log scan (0 per-page cost).
func RedoReadMS(a buffer.PartitionAlloc, units []storage.DiskUnitConfig, nvemDelayMS float64) float64 {
	switch {
	case a.MMResident:
		return 0
	case a.NVEMResident:
		return nvemDelayMS
	default:
		return DeviceReadMS(units[a.DiskUnit])
	}
}
