package recovery

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
)

// Table 3.4 / 4.1-style device configurations used across the tests.
var (
	logDisk = storage.DiskUnitConfig{Name: "log", Type: storage.Regular,
		NumControllers: 2, ContrDelay: 1.0, TransDelay: 0.4, NumDisks: 8, DiskDelay: 5.0}
	logSSD = storage.DiskUnitConfig{Name: "log", Type: storage.SSD,
		NumControllers: 2, ContrDelay: 1.0, TransDelay: 0.4}
	logWB = storage.DiskUnitConfig{Name: "log", Type: storage.NVCache,
		NumControllers: 2, ContrDelay: 1.0, TransDelay: 0.4, NumDisks: 8, DiskDelay: 5.0,
		CacheSize: 500, WriteBufferOnly: true}
	dbDisk = storage.DiskUnitConfig{Name: "db", Type: storage.Regular,
		NumControllers: 12, ContrDelay: 1.0, TransDelay: 0.4, NumDisks: 96, DiskDelay: 15.0}
)

func TestEstimateMSFormula(t *testing.T) {
	s := Snapshot{LogPages: 100, RedoPages: 10}
	got := s.EstimateMS(Times{RebootMS: 500, LogReadMS: 2, RedoReadMS: 16.4})
	want := 500 + 100*2.0 + 10*16.4
	if got != want {
		t.Fatalf("EstimateMS = %v, want %v", got, want)
	}
	if e := (Snapshot{}).EstimateMS(Times{RebootMS: 7}); e != 7 {
		t.Fatalf("empty snapshot estimate = %v, want reboot only", e)
	}
}

// TestLogReadOrdering pins the device ordering the paper's recovery
// argument depends on: an NVEM-resident log scans faster than an SSD
// log, which scans faster than a magnetic-disk log.
func TestLogReadOrdering(t *testing.T) {
	units := []storage.DiskUnitConfig{dbDisk, logDisk}
	const nvemDelay = 0.05
	nvem := LogReadMS(buffer.LogAlloc{NVEMResident: true}, units, nvemDelay)
	ssd := LogReadMS(buffer.LogAlloc{DiskUnit: 1}, []storage.DiskUnitConfig{dbDisk, logSSD}, nvemDelay)
	disk := LogReadMS(buffer.LogAlloc{DiskUnit: 1}, units, nvemDelay)
	if !(nvem < ssd && ssd < disk) {
		t.Fatalf("log scan ordering violated: nvem=%v ssd=%v disk=%v", nvem, ssd, disk)
	}
}

func TestDeviceReadMS(t *testing.T) {
	if got, want := DeviceReadMS(logDisk), 6.4; got != want {
		t.Fatalf("regular disk read = %v, want %v", got, want)
	}
	if got, want := DeviceReadMS(logSSD), 1.4; got != want {
		t.Fatalf("ssd read = %v, want %v", got, want)
	}
	// A write-buffer-only NV cache is not probed on reads: disk speed.
	if got, want := DeviceReadMS(logWB), 6.4; got != want {
		t.Fatalf("write-buffer-only read = %v, want %v", got, want)
	}
	readCache := logWB
	readCache.WriteBufferOnly = false
	if got, want := DeviceReadMS(readCache), 1.4; got != want {
		t.Fatalf("nv read-cache read = %v, want %v", got, want)
	}
	vol := readCache
	vol.Type = storage.VolatileCache
	if got, want := DeviceReadMS(vol), 6.4; got != want {
		t.Fatalf("volatile cache (cleared at crash) read = %v, want %v", got, want)
	}
}

func TestRedoReadMS(t *testing.T) {
	units := []storage.DiskUnitConfig{dbDisk, logDisk}
	const nvemDelay = 0.05
	if got := RedoReadMS(buffer.PartitionAlloc{MMResident: true}, units, nvemDelay); got != 0 {
		t.Fatalf("mm-resident redo = %v, want 0", got)
	}
	if got := RedoReadMS(buffer.PartitionAlloc{NVEMResident: true}, units, nvemDelay); got != nvemDelay {
		t.Fatalf("nvem-resident redo = %v, want %v", got, nvemDelay)
	}
	// NVEM-cached partitions still redo from disk (NOFORCE exclusivity:
	// the lost dirty frames had no NVEM copy).
	withCache := buffer.PartitionAlloc{DiskUnit: 0, NVEMCache: true}
	if got, want := RedoReadMS(withCache, units, nvemDelay), 16.4; got != want {
		t.Fatalf("nvem-cached redo = %v, want %v", got, want)
	}
}

func TestCacheSurvives(t *testing.T) {
	for _, tc := range []struct {
		typ  storage.DiskUnitType
		want bool
	}{
		{storage.Regular, true},
		{storage.VolatileCache, false},
		{storage.NVCache, true},
		{storage.SSD, true},
	} {
		if got := CacheSurvives(tc.typ); got != tc.want {
			t.Errorf("CacheSurvives(%v) = %v, want %v", tc.typ, got, tc.want)
		}
	}
}
