// Package storage implements TPSIM's external device models (section 3.3):
// disk-units — regular disks, disks with volatile or non-volatile caches,
// and solid-state disks — plus the non-volatile extended memory (NVEM)
// store. Disk-units consist of one or more controllers (with an average page
// service time), a page transmission delay, and one or more disk servers;
// caching inside the controller follows the IBM 3990 management described in
// the paper.
package storage

import (
	"fmt"

	"repro/internal/lru"
	"repro/internal/rng"
	"repro/internal/sim"
)

// PageKey identifies a database page globally: partition index and page
// number within the partition. The log is modelled as its own partition.
type PageKey struct {
	Partition int
	Page      int64
}

// DiskUnitType selects the disk-unit variant (parameter DiskUnitType of
// Table 3.4).
type DiskUnitType uint8

// Disk-unit variants.
const (
	Regular       DiskUnitType = iota // plain magnetic disks
	VolatileCache                     // disk cache; write I/Os always hit the disk
	NVCache                           // non-volatile disk cache; writes satisfied in cache
	SSD                               // entire data in non-volatile semiconductor memory
)

func (t DiskUnitType) String() string {
	switch t {
	case Regular:
		return "regular"
	case VolatileCache:
		return "volatile-cache"
	case NVCache:
		return "nv-cache"
	case SSD:
		return "ssd"
	default:
		return fmt.Sprintf("DiskUnitType(%d)", uint8(t))
	}
}

// DiskUnitConfig are the per-disk-unit parameters of Table 3.4.
type DiskUnitConfig struct {
	Name           string
	Type           DiskUnitType
	NumControllers int     // disk controllers
	ContrDelay     float64 // average controller service time per page (ms)
	TransDelay     float64 // transmission time per page (ms), fixed
	NumDisks       int     // disk servers (partition striped uniformly)
	DiskDelay      float64 // average disk access time per page (ms)
	CacheSize      int     // disk-cache / write-buffer frames (cache types)

	// WriteBufferOnly configures a non-volatile cache used solely for
	// logging: no LRU read caching, the cache acts purely as a write buffer
	// (section 3.3, log allocation).
	WriteBufferOnly bool
}

// Validate checks the configuration.
func (c *DiskUnitConfig) Validate() error {
	if c.NumControllers <= 0 {
		return fmt.Errorf("storage: %s: NumControllers = %d", c.Name, c.NumControllers)
	}
	if c.ContrDelay < 0 || c.TransDelay < 0 {
		return fmt.Errorf("storage: %s: negative controller/transmission delay", c.Name)
	}
	switch c.Type {
	case Regular, VolatileCache, NVCache:
		if c.NumDisks <= 0 {
			return fmt.Errorf("storage: %s: NumDisks = %d", c.Name, c.NumDisks)
		}
		if c.DiskDelay <= 0 {
			return fmt.Errorf("storage: %s: DiskDelay = %v", c.Name, c.DiskDelay)
		}
	case SSD:
		// SSDs keep all data in semiconductor store; no disk servers needed.
	default:
		return fmt.Errorf("storage: %s: unknown type %d", c.Name, c.Type)
	}
	if (c.Type == VolatileCache || c.Type == NVCache) && c.CacheSize <= 0 {
		return fmt.Errorf("storage: %s: cache type needs CacheSize > 0", c.Name)
	}
	if c.WriteBufferOnly && c.Type != NVCache {
		return fmt.Errorf("storage: %s: WriteBufferOnly requires a non-volatile cache", c.Name)
	}
	return nil
}

// DiskUnitStats are the per-unit counters the simulation reports.
type DiskUnitStats struct {
	Reads          int64 // read I/Os issued to the unit
	Writes         int64 // write I/Os issued to the unit
	ReadHits       int64 // reads satisfied in the disk cache
	WriteHits      int64 // writes finding the page in the cache
	CacheWrites    int64 // writes satisfied at cache speed (nv caches)
	SyncDiskWrites int64 // writes forced to disk speed (all frames dirty)
	Destages       int64 // asynchronous cache→disk updates started
	DiskAccesses   int64 // physical disk server accesses (any reason)
}

// cacheFrame is a disk-cache entry: dirty means its disk copy is not yet
// current (destage in flight).
type cacheFrame struct {
	dirty bool
}

// DiskUnit models one disk-unit: a set of controllers and disk servers with
// an optional controller cache.
type DiskUnit struct {
	cfg         DiskUnitConfig
	sim         *sim.Sim
	rnd         *rng.Stream
	controllers *sim.Resource
	disks       *sim.Resource // nil for SSD
	cache       *lru.Cache[PageKey, cacheFrame]
	stats       DiskUnitStats

	// freeOps recycles diskOp records so the steady-state I/O path does
	// not allocate. The unit belongs to one kernel, so a plain intrusive
	// list needs no synchronization.
	freeOps *diskOp
}

// poolPoison, when true, fills freed diskOps with sentinel garbage so a
// missing reset in the issue path surfaces in the pool-contract tests.
var poolPoison = false

// SetPoolPoison toggles freelist poisoning — a debug hook for the
// pool-contract tests (including cross-package ones); never enable it in
// production runs.
func SetPoolPoison(on bool) { poolPoison = on }

// diskOp stages: state names the action to take when step next fires.
const (
	opPass       uint8 = iota // controller service done: transmission, then after
	opFinish                  // run the caller's continuation
	opDisk                    // one disk access, then the continuation directly
	opInsert                  // read miss: disk access, then insert a clean frame
	opInsertDone              // disk access done: insert clean frame, continuation
	opVolWrite                // volatile-cache write: refresh hit, then disk
	opNVStore                 // nv-cache write: store dirty frame, destage, continuation
	opDestage                 // destage scheduled: perform the disk access
	opDestDone                // destage disk access done: mark frame clean
)

// diskOp is one in-flight I/O of a unit, pooled on the unit's freelist. It
// replaces the nested per-stage closures of the naive formulation: step is
// bound once to run at first allocation, and the state field selects the
// next stage, so an arbitrary number of I/Os reuse the same records with
// zero steady-state allocation. Schedule and RNG-draw order are identical
// to the closure formulation — stage boundaries and Exp draws happen at
// the same event positions.
type diskOp struct {
	u     *DiskUnit
	p     *sim.Process
	key   PageKey
	k     func()
	state uint8
	after uint8 // state to enter once the controller pass completes
	step  func()
	next  *diskOp // freelist link
}

// getOp pops a recycled op or allocates one with its step bound.
func (u *DiskUnit) getOp() *diskOp {
	op := u.freeOps
	if op == nil {
		op = &diskOp{u: u}
		op.step = op.run
		return op
	}
	u.freeOps = op.next
	op.next = nil
	return op
}

// putOp returns a finished op to the freelist, dropping its references.
func (u *DiskUnit) putOp(op *diskOp) {
	op.p, op.k = nil, nil
	if poolPoison {
		op.key = PageKey{Partition: -1, Page: -1}
		op.state, op.after = 0xff, 0xff
	}
	op.next = u.freeOps
	u.freeOps = op
}

// pass starts an I/O with a controller pass: controller service plus the
// page transmission, then the after stage (the channel-oriented interface
// the closure-based controllerPass used to model).
func (u *DiskUnit) pass(p *sim.Process, key PageKey, k func(), after uint8) {
	op := u.getOp()
	op.p, op.key, op.k = p, key, k
	op.state, op.after = opPass, after
	u.controllers.Use(p, u.rnd.Exp(u.cfg.ContrDelay), op.step)
}

// run advances the op by one stage; it is the op's single pre-bound
// continuation for every resource grant, hold and scheduled event.
func (op *diskOp) run() {
	u := op.u
	switch op.state {
	case opPass:
		op.state = op.after
		if u.cfg.TransDelay > 0 {
			op.p.Hold(u.cfg.TransDelay, op.step)
			return
		}
		op.run()
	case opFinish:
		k := op.k
		u.putOp(op)
		k()
	case opDisk:
		// The caller's continuation rides the disk grant directly; the op
		// itself is done once the access is issued.
		p, k := op.p, op.k
		u.putOp(op)
		u.stats.DiskAccesses++
		u.disks.Use(p, u.rnd.Exp(u.cfg.DiskDelay), k)
	case opInsert:
		op.state = opInsertDone
		u.stats.DiskAccesses++
		u.disks.Use(op.p, u.rnd.Exp(u.cfg.DiskDelay), op.step)
	case opInsertDone:
		if !u.cfg.WriteBufferOnly {
			u.insertClean(op.key)
		}
		k := op.k
		u.putOp(op)
		k()
	case opVolWrite:
		if _, hit := u.cache.Peek(op.key); hit {
			u.stats.WriteHits++
			u.cache.Put(op.key, cacheFrame{dirty: false}) // refresh copy + LRU
		}
		p, k := op.p, op.k
		u.putOp(op)
		u.stats.DiskAccesses++
		u.disks.Use(p, u.rnd.Exp(u.cfg.DiskDelay), k)
	case opNVStore:
		key, k := op.key, op.k
		u.cache.Put(key, cacheFrame{dirty: true})
		u.startDestage(key)
		u.putOp(op)
		k()
	case opDestage:
		op.state = opDestDone
		u.stats.DiskAccesses++
		u.disks.Use(nil, u.rnd.Exp(u.cfg.DiskDelay), op.step)
	case opDestDone:
		// The frame becomes clean once the disk copy is current (it may
		// have been evicted... only clean frames are evictable, and this
		// frame was dirty, so it is still cached unless rewritten).
		if f, ok := u.cache.Peek(op.key); ok && f.dirty {
			u.cache.Update(op.key, cacheFrame{dirty: false})
		}
		u.putOp(op)
	}
}

// NewDiskUnit builds a disk-unit inside s.
func NewDiskUnit(s *sim.Sim, cfg DiskUnitConfig, rnd *rng.Stream) (*DiskUnit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	u := &DiskUnit{
		cfg:         cfg,
		sim:         s,
		rnd:         rnd,
		controllers: s.NewResource(cfg.Name+"/ctrl", cfg.NumControllers),
	}
	if cfg.Type != SSD {
		u.disks = s.NewResource(cfg.Name+"/disk", cfg.NumDisks)
	}
	if cfg.Type == VolatileCache || cfg.Type == NVCache {
		u.cache = lru.New[PageKey, cacheFrame](cfg.CacheSize)
	}
	return u, nil
}

// Config returns the unit's configuration.
func (u *DiskUnit) Config() DiskUnitConfig { return u.cfg }

// Stats returns a copy of the unit's counters.
func (u *DiskUnit) Stats() DiskUnitStats { return u.stats }

// ControllerUtilization returns the controllers' mean utilization.
func (u *DiskUnit) ControllerUtilization() float64 { return u.controllers.Utilization() }

// DiskUtilization returns the disk servers' mean utilization (0 for SSDs).
func (u *DiskUnit) DiskUtilization() float64 {
	if u.disks == nil {
		return 0
	}
	return u.disks.Utilization()
}

// Read performs a read I/O for key, delaying p for the device delay before
// running k. For cache units a read hit avoids the disk access; after a read
// miss the page is stored in the cache (possibly evicting; non-volatile
// caches only evict clean frames for read allocation, skipping allocation
// when all frames are dirty).
func (u *DiskUnit) Read(p *sim.Process, key PageKey, k func()) {
	u.stats.Reads++
	switch u.cfg.Type {
	case SSD:
		u.pass(p, key, k, opFinish)
	case Regular:
		u.pass(p, key, k, opDisk)
	case VolatileCache, NVCache:
		if !u.cfg.WriteBufferOnly {
			if _, hit := u.cache.Get(key); hit {
				u.stats.ReadHits++
				u.pass(p, key, k, opFinish)
				return
			}
		}
		u.pass(p, key, k, opInsert)
	}
}

// insertClean stores a just-read page in the cache. Volatile caches may
// evict anything (all frames are clean); non-volatile caches must keep dirty
// frames until their destage completes, so allocation is skipped when no
// clean victim exists.
func (u *DiskUnit) insertClean(key PageKey) {
	if u.cfg.Type == NVCache {
		if u.cache.Len() >= u.cache.Cap() {
			victim, ok := u.cache.FindOldest(func(_ PageKey, f cacheFrame) bool { return !f.dirty })
			if !ok {
				return // all dirty: cannot allocate
			}
			u.cache.Remove(victim)
		}
	}
	u.cache.Put(key, cacheFrame{dirty: false})
}

// Write performs a write I/O for key, delaying p until the unit signals
// completion before running k:
//
//   - Regular: controller + disk access.
//   - SSD: controller only (data lives in semiconductor memory).
//   - Volatile cache: every write results in a disk access (write-through).
//     A write hit refreshes the cached copy; a write miss leaves the cache
//     unaffected (IBM-style management, section 3.3).
//   - Non-volatile cache: the write is satisfied in the cache and the disk
//     copy updated asynchronously. On a write miss the least recently used
//     clean frame is replaced; if every frame is dirty the write goes
//     synchronously to disk.
func (u *DiskUnit) Write(p *sim.Process, key PageKey, k func()) {
	u.stats.Writes++
	switch u.cfg.Type {
	case SSD:
		u.pass(p, key, k, opFinish)
	case Regular:
		u.pass(p, key, k, opDisk)
	case VolatileCache:
		u.pass(p, key, k, opVolWrite)
	case NVCache:
		u.writeNV(p, key, k)
	}
}

// writeNV implements the non-volatile cache write path.
func (u *DiskUnit) writeNV(p *sim.Process, key PageKey, k func()) {
	if _, hit := u.cache.Peek(key); hit {
		// Write hit: always satisfiable — no replacement needed.
		u.stats.WriteHits++
		u.pass(p, key, k, opNVStore)
		return
	}
	// Write miss: need a frame; replace the LRU clean page.
	if u.cache.Len() >= u.cache.Cap() {
		victim, ok := u.cache.FindOldest(func(_ PageKey, f cacheFrame) bool { return !f.dirty })
		if !ok {
			// All cached pages have destages in flight: go directly to disk.
			u.stats.SyncDiskWrites++
			u.pass(p, key, k, opDisk)
			return
		}
		u.cache.Remove(victim)
	}
	u.pass(p, key, k, opNVStore)
}

// startDestage immediately starts the asynchronous disk update for a
// modified page stored in the non-volatile cache ("we immediately start the
// disk update when a modified page is stored in the disk cache"). The
// destage rides a pooled op through a +0 event, just like the spawned
// process it replaces, so the event order is unchanged.
func (u *DiskUnit) startDestage(key PageKey) {
	u.stats.CacheWrites++
	u.stats.Destages++
	op := u.getOp()
	op.p, op.key, op.k = nil, key, nil
	op.state, op.after = opDestage, opDestage
	u.sim.Schedule(0, op.step)
}

// CrashVolatile clears cache content that does not survive a system
// crash: a volatile controller cache loses every frame, while
// non-volatile caches, SSD store and the disk media keep their pages
// (section 3.3's durability distinction, which the recovery model's
// restart scan depends on).
func (u *DiskUnit) CrashVolatile() {
	if u.cfg.Type == VolatileCache {
		u.cache = lru.New[PageKey, cacheFrame](u.cfg.CacheSize)
	}
}

// CacheLen returns the number of cached frames (0 for cacheless units).
func (u *DiskUnit) CacheLen() int {
	if u.cache == nil {
		return 0
	}
	return u.cache.Len()
}

// DirtyFrames counts frames with destages in flight.
func (u *DiskUnit) DirtyFrames() int {
	if u.cache == nil {
		return 0
	}
	n := 0
	u.cache.Each(func(_ PageKey, f cacheFrame) bool {
		if f.dirty {
			n++
		}
		return true
	})
	return n
}

// NVEM models the non-volatile extended memory store: page transfers between
// main memory and NVEM take a fixed delay at one of NumServers ports, and
// are synchronous — the caller's CPU stays busy, which the engine models by
// keeping the CPU resource held while calling Access.
type NVEM struct {
	res   *sim.Resource
	delay float64
	count int64
}

// NewNVEM builds the NVEM store.
func NewNVEM(s *sim.Sim, servers int, delay float64) (*NVEM, error) {
	if servers <= 0 {
		return nil, fmt.Errorf("storage: NVEM servers = %d", servers)
	}
	if delay < 0 {
		return nil, fmt.Errorf("storage: NVEM delay = %v", delay)
	}
	return &NVEM{res: s.NewResource("nvem", servers), delay: delay}, nil
}

// Access performs one page transfer (read or write — symmetric), then k.
func (n *NVEM) Access(p *sim.Process, k func()) {
	n.count++
	n.res.Use(p, n.delay, k)
}

// Accesses returns the number of page transfers so far.
func (n *NVEM) Accesses() int64 { return n.count }

// Utilization returns the NVEM ports' mean utilization.
func (n *NVEM) Utilization() float64 { return n.res.Utilization() }
