package storage

import (
	"testing"

	"repro/internal/sim"
)

// TestDiskOpPoolResetContract pins the diskOp freelist reset contract:
// poolPoison fills freed ops with sentinel garbage (key {-1,-1}, state and
// after 0xff), so a deleted reset line in the issue path surfaces here as
// a panic in run() or a skewed access count, not as silent timing drift.
func TestDiskOpPoolResetContract(t *testing.T) {
	poolPoison = true
	defer func() { poolPoison = false }()

	s := sim.New()
	u, err := NewDiskUnit(s, regularCfg(), testStream())
	if err != nil {
		t.Fatal(err)
	}
	s.SpawnBlocking("driver", 0, func(b *sim.BlockingProcess) {
		bWrite(b, u, key(0, 1))
		bRead(b, u, key(0, 2))
	})
	s.RunAll()
	if u.freeOps == nil {
		t.Fatal("completed disk operations were not returned to the freelist")
	}
	if op := u.freeOps; op.key != (PageKey{Partition: -1, Page: -1}) || op.state != 0xff {
		t.Fatalf("freed diskOp not poisoned: key=%+v state=%d", op.key, op.state)
	}

	// Recycle the poisoned ops and verify they serve like fresh ones.
	done := 0
	s.SpawnBlocking("driver2", 0, func(b *sim.BlockingProcess) {
		bRead(b, u, key(0, 3))
		bWrite(b, u, key(0, 4))
		done = 2
	})
	s.RunAll()
	if done != 2 {
		t.Fatal("recycled ops did not complete their accesses")
	}
	if st := u.Stats(); st.DiskAccesses != 4 {
		t.Fatalf("DiskAccesses = %d, want 4", st.DiskAccesses)
	}
}

// TestDiskUnitSteadyStateZeroAlloc pins the pooled access path: once the
// freelist and the kernel's calendar queue are warm, read/write cycles on
// a regular unit allocate nothing. Delays are deterministic, so the bound
// is stable.
func TestDiskUnitSteadyStateZeroAlloc(t *testing.T) {
	s := sim.New()
	u, err := NewDiskUnit(s, regularCfg(), testStream())
	if err != nil {
		t.Fatal(err)
	}
	p := s.NewProcess("driver")
	noop := func() {}
	cycle := func() {
		u.Write(p, key(0, 1), noop)
		u.Read(p, key(0, 2), noop)
		s.RunAll()
	}
	for i := 0; i < 500; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("steady-state disk cycle allocates %.2f/op, want 0", allocs)
	}
}
