package storage

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

func key(p int, page int64) PageKey { return PageKey{Partition: p, Page: page} }

// fixedStream returns a stream whose Exp draws are deterministic means.
// For device tests we want exact delays, so we use a config with the rng
// only where exponential variation is acceptable; here we exploit that
// Exp(0)=0 and pass delays via TransDelay when determinism matters.
func testStream() *rng.Stream { return rng.NewStream(1, "storage-test") }

// bRead and bWrite drive the continuation-style device API blocking-style
// from test scripts.
func bRead(b *sim.BlockingProcess, u *DiskUnit, k PageKey) {
	b.Await(func(done func()) { u.Read(b.Proc(), k, done) })
}

func bWrite(b *sim.BlockingProcess, u *DiskUnit, k PageKey) {
	b.Await(func(done func()) { u.Write(b.Proc(), k, done) })
}

func regularCfg() DiskUnitConfig {
	return DiskUnitConfig{
		Name: "db", Type: Regular,
		NumControllers: 1, ContrDelay: 1, TransDelay: 0.4,
		NumDisks: 1, DiskDelay: 15,
	}
}

func TestConfigValidation(t *testing.T) {
	cases := map[string]func(*DiskUnitConfig){
		"no controllers": func(c *DiskUnitConfig) { c.NumControllers = 0 },
		"neg delay":      func(c *DiskUnitConfig) { c.ContrDelay = -1 },
		"no disks":       func(c *DiskUnitConfig) { c.NumDisks = 0 },
		"no disk delay":  func(c *DiskUnitConfig) { c.DiskDelay = 0 },
		"bad type":       func(c *DiskUnitConfig) { c.Type = 99 },
		"cache size": func(c *DiskUnitConfig) {
			c.Type = VolatileCache
			c.CacheSize = 0
		},
		"wb needs nv": func(c *DiskUnitConfig) {
			c.WriteBufferOnly = true
		},
	}
	for name, mutate := range cases {
		cfg := regularCfg()
		mutate(&cfg)
		s := sim.New()
		if _, err := NewDiskUnit(s, cfg, testStream()); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// SSD without disks is fine.
	s := sim.New()
	ssd := DiskUnitConfig{Name: "ssd", Type: SSD, NumControllers: 1, ContrDelay: 1, TransDelay: 0.4}
	if _, err := NewDiskUnit(s, ssd, testStream()); err != nil {
		t.Fatalf("SSD config rejected: %v", err)
	}
}

func TestRegularDiskTiming(t *testing.T) {
	s := sim.New()
	cfg := regularCfg()
	u, err := NewDiskUnit(s, cfg, testStream())
	if err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Time
	s.SpawnBlocking("reader", 0, func(b *sim.BlockingProcess) {
		start := b.Now()
		bRead(b, u, key(0, 1))
		elapsed = b.Now() - start
	})
	s.RunAll()
	// Exponential service: elapsed is random but positive and includes the
	// fixed transmission delay.
	if elapsed < 0.4 {
		t.Fatalf("elapsed = %v, must include transmission 0.4", elapsed)
	}
	if u.Stats().Reads != 1 || u.Stats().DiskAccesses != 1 {
		t.Fatalf("stats = %+v", u.Stats())
	}
}

func TestRegularMeanAccessTime(t *testing.T) {
	// With ContrDelay 1, TransDelay 0.4, DiskDelay 15 the mean access time
	// without queueing is 16.4 ms (section 4.1).
	s := sim.New()
	u, _ := NewDiskUnit(s, regularCfg(), testStream())
	total := sim.Time(0)
	const n = 2000
	s.SpawnBlocking("reader", 0, func(b *sim.BlockingProcess) {
		for i := 0; i < n; i++ {
			start := b.Now()
			bRead(b, u, key(0, int64(i)))
			total += b.Now() - start
		}
	})
	s.RunAll()
	mean := total / n
	if math.Abs(mean-16.4) > 0.8 {
		t.Fatalf("mean access = %v, want ~16.4", mean)
	}
}

func TestSSDMeanAccessTime(t *testing.T) {
	// SSD: controller (1ms) + transmission (0.4ms) = 1.4 ms mean.
	s := sim.New()
	cfg := DiskUnitConfig{Name: "ssd", Type: SSD, NumControllers: 1, ContrDelay: 1, TransDelay: 0.4}
	u, _ := NewDiskUnit(s, cfg, testStream())
	total := sim.Time(0)
	const n = 2000
	s.SpawnBlocking("rw", 0, func(b *sim.BlockingProcess) {
		for i := 0; i < n; i++ {
			start := b.Now()
			if i%2 == 0 {
				bRead(b, u, key(0, int64(i)))
			} else {
				bWrite(b, u, key(0, int64(i)))
			}
			total += b.Now() - start
		}
	})
	s.RunAll()
	mean := total / n
	if math.Abs(mean-1.4) > 0.1 {
		t.Fatalf("mean access = %v, want ~1.4", mean)
	}
	if u.Stats().DiskAccesses != 0 {
		t.Fatal("SSD must never access a disk")
	}
}

func TestVolatileCacheReadHit(t *testing.T) {
	s := sim.New()
	cfg := regularCfg()
	cfg.Type = VolatileCache
	cfg.CacheSize = 10
	u, _ := NewDiskUnit(s, cfg, testStream())
	s.SpawnBlocking("reader", 0, func(b *sim.BlockingProcess) {
		bRead(b, u, key(0, 1)) // miss: disk access + allocate
		bRead(b, u, key(0, 1)) // hit
	})
	s.RunAll()
	st := u.Stats()
	if st.Reads != 2 || st.ReadHits != 1 || st.DiskAccesses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVolatileCacheWriteAlwaysHitsDisk(t *testing.T) {
	s := sim.New()
	cfg := regularCfg()
	cfg.Type = VolatileCache
	cfg.CacheSize = 10
	u, _ := NewDiskUnit(s, cfg, testStream())
	s.SpawnBlocking("writer", 0, func(b *sim.BlockingProcess) {
		bWrite(b, u, key(0, 1)) // write miss: disk access, no allocation
		bRead(b, u, key(0, 1))  // still a miss (write misses don't allocate)
		bWrite(b, u, key(0, 1)) // write hit: refresh, still disk access
	})
	s.RunAll()
	st := u.Stats()
	if st.DiskAccesses != 3 {
		t.Fatalf("disk accesses = %d, want 3 (volatile cache is write-through)", st.DiskAccesses)
	}
	if st.WriteHits != 1 {
		t.Fatalf("write hits = %d, want 1", st.WriteHits)
	}
	if st.ReadHits != 0 {
		t.Fatalf("read hits = %d: write miss must not allocate", st.ReadHits)
	}
}

func TestNVCacheWriteSatisfiedInCache(t *testing.T) {
	s := sim.New()
	cfg := regularCfg()
	cfg.Type = NVCache
	cfg.CacheSize = 10
	u, _ := NewDiskUnit(s, cfg, testStream())
	var writeDelay sim.Time
	s.SpawnBlocking("writer", 0, func(b *sim.BlockingProcess) {
		start := b.Now()
		bWrite(b, u, key(0, 1)) // write miss, allocated, async destage
		writeDelay = b.Now() - start
	})
	s.RunAll()
	st := u.Stats()
	if st.CacheWrites != 1 || st.Destages != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The caller's delay must not include the 15ms disk access; the destage
	// happens asynchronously (but the disk access still occurred by RunAll).
	if writeDelay > 10 {
		t.Fatalf("write delay = %v: destage leaked into caller", writeDelay)
	}
	if st.DiskAccesses != 1 {
		t.Fatalf("disk accesses = %d: destage must update disk", st.DiskAccesses)
	}
	if u.DirtyFrames() != 0 {
		t.Fatal("frame still dirty after destage completed")
	}
}

func TestNVCacheAllDirtyFallsBackToDisk(t *testing.T) {
	s := sim.New()
	cfg := regularCfg()
	cfg.Type = NVCache
	cfg.CacheSize = 2
	cfg.DiskDelay = 1000 // destages take forever: frames stay dirty
	u, _ := NewDiskUnit(s, cfg, testStream())
	var thirdDelay sim.Time
	s.SpawnBlocking("writer", 0, func(b *sim.BlockingProcess) {
		bWrite(b, u, key(0, 1))
		bWrite(b, u, key(0, 2))
		start := b.Now()
		bWrite(b, u, key(0, 3)) // all frames dirty: synchronous disk write
		thirdDelay = b.Now() - start
	})
	s.RunAll()
	st := u.Stats()
	if st.SyncDiskWrites != 1 {
		t.Fatalf("sync disk writes = %d, want 1", st.SyncDiskWrites)
	}
	if thirdDelay < 100 {
		t.Fatalf("third write delay = %v: must include synchronous disk access", thirdDelay)
	}
}

func TestNVCacheWriteHitAlwaysPossible(t *testing.T) {
	s := sim.New()
	cfg := regularCfg()
	cfg.Type = NVCache
	cfg.CacheSize = 1
	cfg.DiskDelay = 1000
	u, _ := NewDiskUnit(s, cfg, testStream())
	delays := []sim.Time{}
	s.SpawnBlocking("writer", 0, func(b *sim.BlockingProcess) {
		for i := 0; i < 3; i++ {
			start := b.Now()
			bWrite(b, u, key(0, 1)) // rewrite same page: always a write hit
			delays = append(delays, b.Now()-start)
		}
	})
	s.RunAll()
	st := u.Stats()
	if st.WriteHits != 2 || st.SyncDiskWrites != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for i, d := range delays {
		if d > 100 {
			t.Fatalf("write %d delayed %v: write hit must stay at cache speed", i, d)
		}
	}
}

func TestNVCacheReadAllocationSkipsWhenAllDirty(t *testing.T) {
	// Policy test on internal state: read allocation must never evict a
	// dirty frame, and is skipped entirely when every frame is dirty.
	s := sim.New()
	cfg := regularCfg()
	cfg.Type = NVCache
	cfg.CacheSize = 2
	u, _ := NewDiskUnit(s, cfg, testStream())
	u.cache.Put(key(0, 1), cacheFrame{dirty: true})
	u.cache.Put(key(0, 2), cacheFrame{dirty: true})
	u.insertClean(key(0, 3))
	if u.CacheLen() != 2 {
		t.Fatalf("cache len = %d, want 2 (allocation must be skipped)", u.CacheLen())
	}
	if _, ok := u.cache.Peek(key(0, 3)); ok {
		t.Fatal("page allocated despite all frames dirty")
	}
	// With one clean frame, that frame (and only that frame) is the victim.
	u.cache.Update(key(0, 1), cacheFrame{dirty: false})
	u.insertClean(key(0, 3))
	if _, ok := u.cache.Peek(key(0, 1)); ok {
		t.Fatal("clean frame not chosen as victim")
	}
	if _, ok := u.cache.Peek(key(0, 2)); !ok {
		t.Fatal("dirty frame evicted for a read allocation")
	}
	if _, ok := u.cache.Peek(key(0, 3)); !ok {
		t.Fatal("page not allocated despite clean victim")
	}
}

func TestWriteBufferOnlyNoReadCaching(t *testing.T) {
	s := sim.New()
	cfg := regularCfg()
	cfg.Type = NVCache
	cfg.CacheSize = 100
	cfg.WriteBufferOnly = true
	u, _ := NewDiskUnit(s, cfg, testStream())
	s.SpawnBlocking("log", 0, func(b *sim.BlockingProcess) {
		bWrite(b, u, key(9, 1)) // buffered
		bRead(b, u, key(9, 2))
		bRead(b, u, key(9, 2)) // must miss: write-buffer mode has no read LRU
	})
	s.RunAll()
	st := u.Stats()
	if st.ReadHits != 0 {
		t.Fatalf("read hits = %d in write-buffer mode", st.ReadHits)
	}
	if st.CacheWrites != 1 {
		t.Fatalf("cache writes = %d", st.CacheWrites)
	}
}

func TestDiskQueueing(t *testing.T) {
	// Ten concurrent reads through one disk must serialize on the disk
	// server: total time ≈ 10 × DiskDelay.
	s := sim.New()
	cfg := regularCfg()
	u, _ := NewDiskUnit(s, cfg, testStream())
	done := 0
	for i := 0; i < 10; i++ {
		i := i
		s.Spawn("reader", 0, func(p *sim.Process) {
			u.Read(p, key(0, int64(i)), func() { done++ })
		})
	}
	end := s.RunAll()
	if done != 10 {
		t.Fatalf("done = %d", done)
	}
	if end < 100 {
		t.Fatalf("end = %v: ten 15ms-mean disk accesses can't finish that fast on one disk", end)
	}
	if u.DiskUtilization() < 0.5 {
		t.Fatalf("disk utilization = %v, expected high", u.DiskUtilization())
	}
}

func TestMultipleDisksParallel(t *testing.T) {
	s := sim.New()
	cfg := regularCfg()
	cfg.NumDisks = 10
	cfg.NumControllers = 10
	u, _ := NewDiskUnit(s, cfg, testStream())
	for i := 0; i < 10; i++ {
		i := i
		s.Spawn("reader", 0, func(p *sim.Process) { u.Read(p, key(0, int64(i)), func() {}) })
	}
	end := s.RunAll()
	if end > 120 {
		t.Fatalf("end = %v: ten disks should run these in parallel", end)
	}
}

func TestNVEM(t *testing.T) {
	s := sim.New()
	n, err := NewNVEM(s, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Time
	s.Spawn("cm", 0, func(p *sim.Process) {
		start := p.Now()
		n.Access(p, func() {
			n.Access(p, func() { elapsed = p.Now() - start })
		})
	})
	s.RunAll()
	if math.Abs(elapsed-0.1) > 1e-9 {
		t.Fatalf("elapsed = %v, want 0.1 (two 50µs transfers)", elapsed)
	}
	if n.Accesses() != 2 {
		t.Fatalf("accesses = %d", n.Accesses())
	}
}

func TestNVEMValidation(t *testing.T) {
	s := sim.New()
	if _, err := NewNVEM(s, 0, 0.05); err == nil {
		t.Fatal("zero servers must error")
	}
	if _, err := NewNVEM(s, 1, -1); err == nil {
		t.Fatal("negative delay must error")
	}
}

func TestNVEMQueueing(t *testing.T) {
	// One NVEM port: two simultaneous accesses serialize.
	s := sim.New()
	n, _ := NewNVEM(s, 1, 1)
	var last sim.Time
	for i := 0; i < 2; i++ {
		s.Spawn("cm", 0, func(p *sim.Process) {
			n.Access(p, func() { last = p.Now() })
		})
	}
	s.RunAll()
	if last != 2 {
		t.Fatalf("last = %v, want 2 (serialized)", last)
	}
}

// TestCrashVolatile: a system crash empties a volatile controller cache
// but leaves non-volatile cache content in place.
func TestCrashVolatile(t *testing.T) {
	s := sim.New()
	vol := regularCfg()
	vol.Type = VolatileCache
	vol.CacheSize = 10
	vu, _ := NewDiskUnit(s, vol, testStream())
	nv := regularCfg()
	nv.Type = NVCache
	nv.CacheSize = 10
	nu, _ := NewDiskUnit(s, nv, testStream())
	s.SpawnBlocking("loader", 0, func(b *sim.BlockingProcess) {
		bRead(b, vu, key(0, 1))
		bRead(b, nu, key(0, 1))
	})
	s.RunAll()
	if vu.CacheLen() != 1 || nu.CacheLen() != 1 {
		t.Fatalf("setup: vol=%d nv=%d cached", vu.CacheLen(), nu.CacheLen())
	}
	vu.CrashVolatile()
	nu.CrashVolatile()
	if vu.CacheLen() != 0 {
		t.Fatalf("volatile cache survived the crash: %d frames", vu.CacheLen())
	}
	if nu.CacheLen() != 1 {
		t.Fatalf("non-volatile cache lost its frame: %d", nu.CacheLen())
	}
}
