#!/bin/sh
# Runs the Go benchmark suite and emits a machine-readable snapshot as
# BENCH_<date>.json in the repository root — one point of the performance
# trajectory for the kernel/engine hot paths. Compare snapshots across
# commits (or feed two raw runs to benchstat for significance).
#
# Usage:
#   ./scripts/bench_json.sh                    # full suite, one iteration each
#   ./scripts/bench_json.sh 'SimKernel|Engine' # subset by regexp
#   BENCHTIME=2s ./scripts/bench_json.sh       # longer sampling per benchmark
set -eu
cd "$(dirname "$0")/.."
pattern="${1:-.}"
benchtime="${BENCHTIME:-1x}"
# Never clobber a committed snapshot from the same day: suffix with b, c,
# ... so intra-day before/after pairs both stay in the trajectory (and
# bench_check.sh's `sort | tail -1` still picks the newest).
out="BENCH_$(date +%Y-%m-%d).json"
for suffix in b c d e f g h i j k; do
    [ -e "$out" ] || break
    out="BENCH_$(date +%Y-%m-%d)${suffix}.json"
done
if [ -e "$out" ]; then
    echo "bench_json: all suffixed names for today exist; refusing to clobber $out" >&2
    exit 1
fi
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$tmp"

awk -v date="$(date +%Y-%m-%dT%H:%M:%S%z)" \
    -v goversion="$(go env GOVERSION)" \
    -v benchtime="$benchtime" '
/^Benchmark/ {
    name = $1
    iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        metrics = metrics sprintf("%s\"%s\": %s", (metrics == "" ? "" : ", "), $(i + 1), $i)
    }
    entries[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {%s}}", name, iters, metrics)
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", date, goversion, benchtime
    for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}' "$tmp" > "$out"

echo "wrote $out"
