#!/bin/sh
# Benchstat-style regression gate for the kernel hot path: runs
# BenchmarkKernelHeap10M fresh and compares its ns/op against the newest
# committed BENCH_<date>.json snapshot. The run must not be slower than the
# baseline by more than the tolerance (a one-iteration run on shared CI
# hardware is noisy; real regressions on a 10M-event stressor dwarf 30%).
#
# Usage:
#   ./scripts/bench_check.sh                    # default bench + tolerance
#   BENCH=BenchmarkSimKernel TOLERANCE=50 ./scripts/bench_check.sh
set -eu
cd "$(dirname "$0")/.."
bench="${BENCH:-BenchmarkKernelHeap10M}"
tolerance="${TOLERANCE:-30}" # percent slower than baseline that still passes

baseline=$(ls BENCH_*.json | sort | tail -n 1)
if [ -z "$baseline" ]; then
    echo "bench_check: no BENCH_*.json baseline committed" >&2
    exit 1
fi
old=$(sed -n "s/.*\"name\": \"${bench}\".*\"ns\/op\": \([0-9]*\).*/\1/p" "$baseline")
if [ -z "$old" ]; then
    echo "bench_check: ${bench} not found in ${baseline}" >&2
    exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench "^${bench}\$" -benchtime 1x . | tee "$tmp"
new=$(awk -v b="$bench" '$1 ~ "^"b { print $3; exit }' "$tmp")
if [ -z "$new" ]; then
    echo "bench_check: ${bench} produced no result" >&2
    exit 1
fi

awk -v old="$old" -v new="$new" -v tol="$tolerance" -v bench="$bench" -v base="$baseline" 'BEGIN {
    delta = 100 * (new - old) / old
    printf "%-24s  old %.0f ns/op (%s)  new %.0f ns/op  delta %+.1f%% (gate: +%s%%)\n",
        bench, old, base, new, delta, tol
    if (delta > tol) {
        printf "bench_check: %s regressed beyond tolerance\n", bench
        exit 1
    }
}'
echo "bench_check: ok"
