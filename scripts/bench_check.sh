#!/bin/sh
# Benchstat-style regression gate for the simulator's hot paths: runs each
# gated benchmark fresh and compares its ns/op against the newest committed
# BENCH_<date>.json snapshot. The run must not be slower than the baseline
# by more than the tolerance (a one-iteration run on shared CI hardware is
# noisy; real regressions on these stressors dwarf 30%).
#
# Allocation gate: for the pooled transaction path (EngineDebitCredit*,
# LockManager, PDESScaleout) allocs/op is additionally gated two-sided at
# ±20% against the same baseline. Allocation counts are deterministic, so
# a breach in either direction is a real change: above means the zero-alloc
# discipline regressed; below means the baseline is stale and should be
# refreshed via scripts/bench_json.sh.
#
# BenchmarkPDESScaleout additionally reports the wall-clock speedup of the
# 8-worker barrier pool over the serial coordinator; that speedup is gated
# against a floor scaled to the host's core count — 2.5x on 8+ cores,
# proportionally less below, and never under 0.6x (a broken barrier that
# burns cores spinning shows up as a collapse well past that even on one
# core).
#
# Usage:
#   ./scripts/bench_check.sh                    # default benches + tolerance
#   BENCH=BenchmarkSimKernel TOLERANCE=50 ./scripts/bench_check.sh
#   ALLOC_TOLERANCE=10 ./scripts/bench_check.sh # tighten the alloc gate
#   SPEEDUP_FLOOR=3.0 ./scripts/bench_check.sh  # override the scaled floor
set -eu
cd "$(dirname "$0")/.."
benches="${BENCH:-BenchmarkKernelHeap10M BenchmarkPDESScaleout BenchmarkEngineDebitCreditDisk BenchmarkEngineDebitCreditNVEM BenchmarkLockManager}"
tolerance="${TOLERANCE:-30}" # percent slower than baseline that still passes
alloc_tolerance="${ALLOC_TOLERANCE:-20}" # percent allocs/op drift, either way
alloc_benches="BenchmarkEngineDebitCreditDisk BenchmarkEngineDebitCreditNVEM BenchmarkLockManager BenchmarkPDESScaleout"
# Benches whose ns/op is gated. LockManager is alloc-gated only: a single
# microsecond-scale iteration is scheduler noise, not a drift signal.
ns_benches="BenchmarkKernelHeap10M BenchmarkPDESScaleout BenchmarkEngineDebitCreditDisk BenchmarkEngineDebitCreditNVEM"

baseline=$(ls BENCH_*.json | sort | tail -n 1)
if [ -z "$baseline" ]; then
    echo "bench_check: no BENCH_*.json baseline committed" >&2
    exit 1
fi

ncpu=$( (nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null) || echo 1)
speedup_floor="${SPEEDUP_FLOOR:-$(awk -v n="$ncpu" 'BEGIN {
    f = 2.5 * (n < 8 ? n : 8) / 8
    if (f < 0.6) f = 0.6
    printf "%.3f", f
}')}"

status=0
for bench in $benches; do
    old=$(sed -n "s/.*\"name\": \"${bench}\".*\"ns\/op\": \([0-9]*\).*/\1/p" "$baseline")

    tmp="$(mktemp)"
    go test -run '^$' -bench "^${bench}\$" -benchtime 1x -benchmem . | tee "$tmp"
    new=$(awk -v b="$bench" '$1 ~ "^"b { print $3; exit }' "$tmp")
    if [ -z "$new" ]; then
        echo "bench_check: ${bench} produced no result" >&2
        rm -f "$tmp"
        exit 1
    fi

    case " $ns_benches " in
    *" $bench "*) ;;
    *) old="" ;; # alloc-gated only; one micro-scale iteration is noise
    esac
    if [ -z "$old" ]; then
        # A baseline predating this benchmark (or an alloc-gated-only
        # microbenchmark): nothing to drift against.
        echo "${bench}: ns/op drift not gated"
    else
        awk -v old="$old" -v new="$new" -v tol="$tolerance" -v bench="$bench" -v base="$baseline" 'BEGIN {
            delta = 100 * (new - old) / old
            printf "%-24s  old %.0f ns/op (%s)  new %.0f ns/op  delta %+.1f%% (gate: +%s%%)\n",
                bench, old, base, new, delta, tol
            if (delta > tol) {
                printf "bench_check: %s regressed beyond tolerance\n", bench
                exit 1
            }
        }' || status=1
    fi

    case " $alloc_benches " in *" $bench "*)
        old_allocs=$(sed -n "s/.*\"name\": \"${bench}\".*\"allocs\/op\": \([0-9]*\).*/\1/p" "$baseline")
        new_allocs=$(awk -v b="$bench" '$1 ~ "^"b { for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") { print $i; exit } }' "$tmp")
        if [ -z "$new_allocs" ]; then
            echo "bench_check: ${bench} reported no allocs/op" >&2
            rm -f "$tmp"
            exit 1
        fi
        if [ -z "$old_allocs" ]; then
            echo "${bench}: no allocs/op baseline in ${baseline}, alloc gate skipped"
        else
            awk -v old="$old_allocs" -v new="$new_allocs" -v tol="$alloc_tolerance" -v bench="$bench" -v base="$baseline" 'BEGIN {
                if (old == 0) { delta = (new == 0 ? 0 : 100) } else { delta = 100 * (new - old) / old }
                printf "%-24s  old %d allocs/op (%s)  new %d allocs/op  delta %+.1f%% (gate: +/-%s%%)\n",
                    bench, old, base, new, delta, tol
                if (delta > tol) {
                    printf "bench_check: %s allocs/op regressed beyond tolerance\n", bench
                    exit 1
                }
                if (delta < -tol) {
                    printf "bench_check: %s allocs/op improved past the gate; refresh the baseline (scripts/bench_json.sh)\n", bench
                    exit 1
                }
            }' || status=1
        fi
        ;;
    esac

    if [ "$bench" = "BenchmarkPDESScaleout" ]; then
        speedup=$(awk -v b="$bench" '$1 ~ "^"b { for (i = 3; i < NF; i++) if ($(i+1) == "speedup") { print $i; exit } }' "$tmp")
        if [ -z "$speedup" ]; then
            echo "bench_check: ${bench} reported no speedup metric" >&2
            rm -f "$tmp"
            exit 1
        fi
        awk -v s="$speedup" -v floor="$speedup_floor" -v n="$ncpu" 'BEGIN {
            printf "BenchmarkPDESScaleout    speedup %.2fx (floor %.2fx on %d cores)\n", s, floor, n
            if (s + 0 < floor + 0) {
                printf "bench_check: PDES speedup below the scaled floor\n"
                exit 1
            }
        }' || status=1
    fi
    rm -f "$tmp"
done

if [ "$status" -ne 0 ]; then
    exit 1
fi
echo "bench_check: ok"
