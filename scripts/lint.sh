#!/usr/bin/env bash
# lint.sh — the repo's lint gate: gofmt, go vet, and detlint (the
# determinism-contract analyzer, DESIGN.md section 11). CI runs this
# verbatim; run it locally before pushing. Any diagnostic fails.
#
# The final step is the gate's self-test: detlint must still *catch* the
# committed seeded-violation fixture. A lint run that passes because the
# analyzer broke is worse than no lint run, so a clean tree alone is not
# accepted — the gate has to prove it can still fire.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:" && echo "$out" && exit 1
fi

echo "== go vet =="
go vet ./...

echo "== detlint (determinism contract) =="
go run ./cmd/detlint ./...

echo "== detlint self-test (seeded violations must be caught) =="
if go run ./cmd/detlint -scope=all ./internal/analysis/testdata/seeded >/dev/null 2>&1; then
  echo "FATAL: detlint exited 0 on the seeded-violation fixture."
  echo "The analyzer has been disarmed; the clean run above proves nothing."
  exit 1
fi
echo "ok: seeded fixture rejected"

echo "lint: all gates passed"
