// Benchmarks regenerating every table and figure of the paper's evaluation
// (quick-mode sweeps; run cmd/experiments for the full paper-scale output),
// plus micro-benchmarks of the simulation substrates.
//
//	go test -bench=. -benchmem
//
// Each figure benchmark reports the headline metric of its experiment as a
// custom metric so regressions in the simulated results are visible next to
// the runtime numbers.
package tpsim_test

import (
	"testing"
	"time"

	"repro"
	"repro/internal/cc"
	"repro/internal/experiments"
	"repro/internal/lru"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchOpts leaves Parallelism at its default (GOMAXPROCS), so every figure
// benchmark exercises the parallel run pool; benchSerialOpts pins one worker
// for speedup comparisons against the same workload.
var (
	benchOpts       = experiments.Options{Quick: true, Seed: 1}
	benchSerialOpts = experiments.Options{Quick: true, Seed: 1, Parallelism: 1}
)

// --- one benchmark per paper table/figure (DESIGN.md experiment index) ---

// BenchmarkFig41LogAllocation regenerates Fig 4.1 (log file allocation).
func BenchmarkFig41LogAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig41(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig42DBAllocation regenerates Fig 4.2 (database allocation).
func BenchmarkFig42DBAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig42(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: disk vs NVEM-resident response at the highest rate.
		last := len(fig.X) - 1
		b.ReportMetric(fig.Series[0].Points[last], "disk-ms")
		b.ReportMetric(fig.Series[4].Points[last], "nvem-ms")
	}
}

// BenchmarkFig43ForceVsNoforce regenerates Fig 4.3 (update strategy).
func BenchmarkFig43ForceVsNoforce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig43(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig44MMBufferSweep regenerates Fig 4.4 (caching vs MM size).
func BenchmarkFig44MMBufferSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig44(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable42aHitRatiosNoforce regenerates Table 4.2a.
func BenchmarkTable42aHitRatiosNoforce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Table42(benchOpts, false)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: the paper's 72.5% MM hit ratio at a 2000-page buffer.
		b.ReportMetric(tbl.Cells[0][len(tbl.Columns)-1], "mmhit-pct")
	}
}

// BenchmarkTable42bHitRatiosForce regenerates Table 4.2b.
func BenchmarkTable42bHitRatiosForce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table42(benchOpts, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig45SecondLevelSweep regenerates Fig 4.5 (2nd-level size).
func BenchmarkFig45SecondLevelSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig45(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig46TraceMMSweep regenerates Fig 4.6 (trace workload, MM sweep).
func BenchmarkFig46TraceMMSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig46(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig47TraceSecondLevelSweep regenerates Fig 4.7.
func BenchmarkFig47TraceSecondLevelSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig47(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig48LockContention regenerates Fig 4.8 (lock contention).
func BenchmarkFig48LockContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig48(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterScaleout regenerates the multi-node scale-out
// experiment (1/2/4-node data-sharing clusters sharing disks and NVEM).
func BenchmarkClusterScaleout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		resp, _, err := experiments.ClusterScaleout(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: shared-NVEM vs disk-only response at the widest cluster.
		last := len(resp.X) - 1
		b.ReportMetric(resp.Series[0].Points[last], "shared-nvem-ms")
		b.ReportMetric(resp.Series[1].Points[last], "disk-only-ms")
	}
}

// BenchmarkPDESScaleout measures the parallel engine's barrier fast path:
// one 64-node PDES cluster (the cluster.scaleout64 private-NVEM point,
// shortened windows) run serially (Workers = 1) and with an 8-worker pool,
// reporting the wall-clock speedup. The reports of both runs must match —
// the speedup is free of any modeling change by construction. The speedup
// metric is gated by scripts/bench_check.sh with a floor scaled to the
// host's core count (a single-core runner cannot speed anything up).
func BenchmarkPDESScaleout(b *testing.B) {
	point := func(workers int) experiments.ClusterSetup {
		return experiments.ClusterSetup{Nodes: 64, AggregateRate: 50 * 64,
			MMBuffer: 500, PrivateNVEM: 500, GlobalLocks: true,
			PDES: true, PDESWorkers: workers, WindowScale: 0.25,
			DBControllers: 2, DBDisks: 12, LogControllers: 1, LogDisks: 2}
	}
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		resSerial, err := point(1).Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		serial += time.Since(start)
		start = time.Now()
		resParallel, err := point(8).Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		parallel += time.Since(start)
		if resSerial.Report() != resParallel.Report() {
			b.Fatal("worker counts diverged — determinism contract broken")
		}
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
}

// BenchmarkClusterLocking regenerates the global-vs-local locking
// contention experiment on a two-node cluster.
func BenchmarkClusterLocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.ClusterLocking(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable21CostModel regenerates Table 2.1 with the
// cost-effectiveness analysis.
func BenchmarkTable21CostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table21(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig42DBAllocationSerial regenerates Fig 4.2 with a single pool
// worker; compare against BenchmarkFig42DBAllocation for the parallel
// speedup (output of both is byte-identical).
func BenchmarkFig42DBAllocationSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig42(benchSerialOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig41Replicated regenerates Fig 4.1 with three replications per
// sweep point (mean ± 95% CI), fanned out across all cores.
func BenchmarkFig41Replicated(b *testing.B) {
	opts := benchOpts
	opts.Replications = 3 // Parallelism stays at its GOMAXPROCS default
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig41(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (DESIGN.md A1-A4) ---

// BenchmarkAblationGroupCommit regenerates ablation A1.
func BenchmarkAblationGroupCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGroupCommit(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAsyncReplacement regenerates ablation A2.
func BenchmarkAblationAsyncReplacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAsyncReplacement(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMigrationModes regenerates ablation A3.
func BenchmarkAblationMigrationModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMigrationModes(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDestagePolicy regenerates ablation A4.
func BenchmarkAblationDestagePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDestagePolicy(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- single-configuration engine benchmarks ---

// BenchmarkEngineDebitCreditDisk runs one disk-based Debit-Credit simulation
// per iteration (the paper's baseline configuration).
func BenchmarkEngineDebitCreditDisk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DCSetup{
			Rate: 500,
			DB:   experiments.DBSpec{Kind: experiments.DBRegular},
			Log:  experiments.LogSpec{Kind: LogDiskKind},
		}.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RespMean, "resp-ms")
		b.ReportMetric(res.Throughput, "tps")
	}
}

// LogDiskKind mirrors experiments.LogDisk for readability in the benchmark.
const LogDiskKind = experiments.LogDisk

// BenchmarkEngineDebitCreditNVEM runs the NVEM-resident configuration.
func BenchmarkEngineDebitCreditNVEM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DCSetup{
			Rate: 500,
			DB:   experiments.DBSpec{Kind: experiments.DBNVEMResident},
			Log:  experiments.LogSpec{Kind: experiments.LogNVEM},
		}.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RespMean, "resp-ms")
	}
}

// BenchmarkEngineRestart runs one crash-and-restart measurement per
// iteration (the recovery.restart hot path: checkpoint daemon during the
// run, then kill, log scan and redo through the device models).
func BenchmarkEngineRestart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RecoverySetup{
			DC: experiments.DCSetup{
				Rate: 200,
				DB:   experiments.DBSpec{Kind: experiments.DBRegular},
				Log:  experiments.LogSpec{Kind: LogDiskKind},
			},
			CheckpointMS: 5_000,
			RebootMS:     500,
		}.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Restart.RestartMS, "restart-ms")
	}
}

// BenchmarkRecoveryAvailability regenerates the cluster crash/rejoin
// experiment (failure injection, arrival rerouting, redo, timeline).
func BenchmarkRecoveryAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.RecoveryAvailability(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkSimKernel measures raw event throughput of the DES kernel: one
// Hold → continuation cycle per iteration. The continuation is bound and a
// warmup chain run before the timer starts, so the timed region measures
// pure pop/push cycles — zero allocations per operation even at
// -benchtime=1x (closure construction and ring-slot capacity growth are
// one-time setup costs, not per-event costs).
func BenchmarkSimKernel(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	var p *sim.Process
	n, limit := 0, 0
	var tick func()
	tick = func() {
		if n < limit {
			n++
			p.Hold(1, tick)
		}
	}
	p = s.Spawn("ticker", 0, func(*sim.Process) {})
	limit = 256 // warm every calendar-ring slot's capacity
	p.Hold(1, tick)
	s.RunAll()
	n, limit = 0, b.N
	p.Hold(1, tick)
	b.ResetTimer()
	s.RunAll()
}

// BenchmarkKernelHeap10M pushes the event heap past 10^7 events in one
// kernel run with a resident population of 1024 concurrent timers, so the
// heap's up/down sifts work at realistic depth instead of the near-empty
// heap BenchmarkSimKernel exercises. One iteration is one full run; the
// events/op metric pins the volume so ns/op tracks per-event cost across
// the BENCH_* trajectory.
func BenchmarkKernelHeap10M(b *testing.B) {
	b.ReportAllocs()
	const (
		timers      = 1 << 10
		perTimer    = 10_240
		totalEvents = timers * perTimer // 10,485,760 > 10^7
	)
	for i := 0; i < b.N; i++ {
		s := sim.New()
		rnd := rng.NewStream(1, "heap-bench")
		for t := 0; t < timers; t++ {
			s.Spawn("timer", rnd.Float64(), func(p *sim.Process) {
				n := 0
				var tick func()
				tick = func() {
					n++
					if n < perTimer {
						// Jittered holds keep the heap genuinely unordered.
						p.Hold(0.5+rnd.Float64(), tick)
					}
				}
				tick()
			})
		}
		s.RunAll()
	}
	b.ReportMetric(totalEvents, "events/op")
}

// BenchmarkSimResource measures acquire/hold/release cycles. A warmup pass
// populates the queue-entry freelist and the calendar queue's buckets so a
// one-iteration run (the CI snapshot) measures the steady state, not
// first-touch pool growth.
func BenchmarkSimResource(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	r := s.NewResource("dev", 2)
	spawnCycles := func(n int) {
		s.Spawn("user", 0, func(p *sim.Process) {
			i := 0
			var cycle func()
			cycle = func() {
				if i < n {
					i++
					r.Use(p, 0.5, cycle)
				}
			}
			cycle()
		})
	}
	spawnCycles(64)
	s.RunAll()
	spawnCycles(b.N)
	b.ResetTimer()
	s.RunAll()
}

// BenchmarkSimBlockingShim measures the goroutine-backed compatibility shim
// for comparison with BenchmarkSimKernel (the cost the continuation kernel
// removed from the hot path).
func BenchmarkSimBlockingShim(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	s.SpawnBlocking("ticker", 0, func(bp *sim.BlockingProcess) {
		for i := 0; i < b.N; i++ {
			bp.Hold(1)
		}
	})
	b.ResetTimer()
	s.RunAll()
}

// BenchmarkLockManager measures uncontended acquire+release pairs. The
// warmup cycle builds the lock-table entries and record freelists so a
// one-iteration run measures the recycled steady state the alloc gate pins.
func BenchmarkLockManager(b *testing.B) {
	b.ReportAllocs()
	m := cc.NewManager(nil)
	for g := int64(0); g < 8; g++ {
		m.Acquire(cc.TxnID(-1), cc.Granule{Partition: 0, ID: g}, cc.Write)
	}
	m.ReleaseAll(cc.TxnID(-1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := cc.TxnID(i)
		for g := int64(0); g < 8; g++ {
			m.Acquire(txn, cc.Granule{Partition: 0, ID: g}, cc.Write)
		}
		m.ReleaseAll(txn)
	}
}

// BenchmarkLRU measures the cache structure under a skewed access mix.
func BenchmarkLRU(b *testing.B) {
	c := lru.New[int64, bool](2000)
	s := rng.NewStream(1, "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := s.Int63n(10_000)
		if _, ok := c.Get(k); !ok {
			c.Put(k, true)
		}
	}
}

// BenchmarkDebitCreditGen measures transaction generation.
func BenchmarkDebitCreditGen(b *testing.B) {
	g, err := workload.NewDebitCredit(workload.DefaultDebitCreditConfig(500))
	if err != nil {
		b.Fatal(err)
	}
	s := rng.NewStream(1, "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := g.Next(0, s)
		if len(tx.Accesses) != 4 {
			b.Fatal("bad tx")
		}
	}
}

// BenchmarkSyntheticGen measures the general synthetic generator.
func BenchmarkSyntheticGen(b *testing.B) {
	m := &workload.Model{
		Partitions: []workload.Partition{
			{Name: "hot", NumObjects: 10_000, BlockFactor: 10, Subpartitions: workload.BCRule(0.8, 0.2)},
			{Name: "cold", NumObjects: 100_000, BlockFactor: 10},
		},
		TxTypes: []workload.TxType{
			{Name: "u", ArrivalRate: 1, TxSize: 10, WriteProb: 1, VarSize: true, RefRow: []float64{0.8, 0.2}},
		},
	}
	g, err := workload.NewSynthetic(m)
	if err != nil {
		b.Fatal(err)
	}
	s := rng.NewStream(1, "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(0, s)
	}
}

// BenchmarkTraceGeneration measures synthetic real-life trace construction.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := tpsim.GenerateRealLifeTrace(int64(i + 1))
		if len(tr.Txs) == 0 {
			b.Fatal("empty trace")
		}
	}
}
